"builtin.module"() ({
  "func.func"() ({
    ^bb(%0: memref<32x32xf32>, %1: memref<32x32xf32>, %2: memref<32x32xf32>):
    %3 = "arith.constant"() {value = 65346} : () -> (i32)
    %4 = "arith.constant"() {value = 32} : () -> (index)
    %5 = "arith.constant"() {value = 0} : () -> (i32)
    %6 = "arith.constant"() {value = 16} : () -> (index)
    %7 = "arith.constant"() {value = 34} : () -> (i32)
    %8 = "arith.constant"() {value = 36} : () -> (i32)
    %9 = "arith.constant"() {value = 66} : () -> (i32)
    %10 = "arith.constant"() {value = 255} : () -> (i32)
    %11 = "arith.constant"() {value = 240} : () -> (i32)
    %12 = "arith.constant"() {value = 65280} : () -> (i32)
    %13 = "arith.constant"() {value = 0} : () -> (index)
    %14 = "arith.constant"() {value = 35} : () -> (i32)
    "accel.dma_init"(%5, %9, %12, %3, %12) : (i32, i32, i32, i32, i32) -> ()
    %15 = "accel.sendLiteral"(%10, %5) {flush = true} : (i32, i32) -> (i32)
    "scf.for"(%13, %4, %6) ({
      ^bb(%16: index):
      "scf.for"(%13, %4, %6) ({
        ^bb(%17: index):
        "scf.for"(%13, %4, %6) ({
          ^bb(%18: index):
          %19 = "accel.sendLiteral"(%7, %5) : (i32, i32) -> (i32)
          %20 = "memref.subview"(%0, %16, %18) {static_sizes = dense<[16, 16]>, static_strides = dense<[1, 1]>} : (memref<32x32xf32>, index, index) -> (memref<16x16xf32, strided<[32, 1], offset: ?>>)
          %21 = "accel.send"(%20, %19) {flush = true} : (memref<16x16xf32, strided<[32, 1], offset: ?>>, i32) -> (i32)
          %22 = "accel.sendLiteral"(%14, %5) : (i32, i32) -> (i32)
          %23 = "memref.subview"(%1, %18, %17) {static_sizes = dense<[16, 16]>, static_strides = dense<[1, 1]>} : (memref<32x32xf32>, index, index) -> (memref<16x16xf32, strided<[32, 1], offset: ?>>)
          %24 = "accel.send"(%23, %22) {flush = true} : (memref<16x16xf32, strided<[32, 1], offset: ?>>, i32) -> (i32)
          %25 = "accel.sendLiteral"(%11, %5) {flush = true} : (i32, i32) -> (i32)
          "scf.yield"() : () -> ()
        }) : (index, index, index) -> ()
        %26 = "accel.sendLiteral"(%8, %5) {flush = true} : (i32, i32) -> (i32)
        %27 = "memref.subview"(%2, %16, %17) {static_sizes = dense<[16, 16]>, static_strides = dense<[1, 1]>} : (memref<32x32xf32>, index, index) -> (memref<16x16xf32, strided<[32, 1], offset: ?>>)
        %28 = "accel.recv"(%27, %26) {mode = "accumulate"} : (memref<16x16xf32, strided<[32, 1], offset: ?>>, i32) -> (i32)
        "scf.yield"() : () -> ()
      }) : (index, index, index) -> ()
      "scf.yield"() : () -> ()
    }) : (index, index, index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "matmul_call", function_type = type((memref<32x32xf32>, memref<32x32xf32>, memref<32x32xf32>) -> ())} : () -> ()
}) : () -> ()
