"builtin.module"() ({
  "func.func"() ({
    ^bb(%0: memref<16x16xf32>, %1: memref<16x16xf32>, %2: memref<16x16xf32>):
    %3 = "arith.constant"() {value = 0} : () -> (index)
    %4 = "arith.constant"() {value = 16} : () -> (index)
    %5 = "arith.constant"() {value = 1} : () -> (index)
    "scf.for"(%3, %4, %5) ({
      ^bb(%6: index):
      %7 = "arith.constant"() {value = 0} : () -> (index)
      %8 = "arith.constant"() {value = 16} : () -> (index)
      %9 = "arith.constant"() {value = 1} : () -> (index)
      "scf.for"(%7, %8, %9) ({
        ^bb(%10: index):
        %11 = "arith.constant"() {value = 0} : () -> (index)
        %12 = "arith.constant"() {value = 16} : () -> (index)
        %13 = "arith.constant"() {value = 1} : () -> (index)
        "scf.for"(%11, %12, %13) ({
          ^bb(%14: index):
          %15 = "memref.load"(%0, %6, %14) : (memref<16x16xf32>, index, index) -> (f32)
          %16 = "memref.load"(%1, %14, %10) : (memref<16x16xf32>, index, index) -> (f32)
          %17 = "memref.load"(%2, %6, %10) : (memref<16x16xf32>, index, index) -> (f32)
          %18 = "arith.mulf"(%15, %16) : (f32, f32) -> (f32)
          %19 = "arith.addf"(%17, %18) : (f32, f32) -> (f32)
          "memref.store"(%19, %2, %6, %10) : (f32, memref<16x16xf32>, index, index) -> ()
          "scf.yield"() : () -> ()
        }) : (index, index, index) -> ()
        "scf.yield"() : () -> ()
      }) : (index, index, index) -> ()
      "scf.yield"() : () -> ()
    }) : (index, index, index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "matmul_call", function_type = type((memref<16x16xf32>, memref<16x16xf32>, memref<16x16xf32>) -> ())} : () -> ()
}) : () -> ()
