(* The serving simulator: request-stream determinism, policy
   semantics, the QCheck scheduler invariants (work conservation, FIFO
   order, determinism, conservation of requests), the differential
   latency-accounting checks against the real pipeline, the golden
   axi4mlir-serve-v1 artifact and the Perfetto export. *)

let ok = function Ok v -> v | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Synthetic oracle: the scheduler tests must not pay for (or depend
   on) real pipeline measurements, so they drive the event loop with a
   fixed service-time table. Batching is sublinear, as on the real
   engines (amortised bring-up, stationary-operand reuse). *)

let synth_service model ~batch =
  let base =
    match model with "small" -> 50.0 | "medium" -> 180.0 | _ -> 400.0
  in
  base *. (0.25 +. (0.75 *. float_of_int batch))

let synth_predict model = synth_service model ~batch:1
let synth_models = [ "small"; "medium"; "large" ]

let run_synth params requests =
  ok (Serve_sim.run ~service:synth_service ~predict:synth_predict params requests)

let stream ?(seed = 7) ?(count = 12) ?(mean_gap = 100.0) ?(models = synth_models) ()
    =
  {
    Serve_request.st_seed = seed;
    st_count = count;
    st_mean_gap = mean_gap;
    st_models = models;
  }

let params ?(accels = 2) ?(policy = Serve_policy.Fifo) ?queue_cap ?(batch_max = 4) ()
    =
  {
    Serve_sim.sp_accels = accels;
    sp_policy = policy;
    sp_queue_cap = queue_cap;
    sp_batch_max = batch_max;
  }

(* a hand-placed request, for tests that need exact arrivals *)
let rq id arrival model =
  { Serve_request.rq_id = id; rq_arrival = arrival; rq_model = model }

(* ------------------------------------------------------------------ *)
(* Request streams                                                     *)
(* ------------------------------------------------------------------ *)

let test_stream_deterministic () =
  let s = stream ~count:50 () in
  let a = ok (Serve_request.generate s) in
  let b = ok (Serve_request.generate s) in
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  List.iteri
    (fun i (r : Serve_request.t) ->
      Alcotest.(check int) "ids are positions" i r.Serve_request.rq_id;
      Alcotest.(check bool) "model from the list" true
        (List.mem r.rq_model synth_models))
    a;
  let rec sorted = function
    | (x : Serve_request.t) :: (y : Serve_request.t) :: rest ->
      x.Serve_request.rq_arrival <= y.Serve_request.rq_arrival && sorted (y :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "arrivals non-decreasing" true (sorted a);
  Alcotest.(check bool) "arrivals non-negative" true
    (List.for_all (fun (r : Serve_request.t) -> r.Serve_request.rq_arrival >= 0.0) a)

let test_stream_seed_sensitivity () =
  let a = ok (Serve_request.generate (stream ~seed:1 ~count:20 ())) in
  let b = ok (Serve_request.generate (stream ~seed:2 ~count:20 ())) in
  Alcotest.(check bool) "different seeds, different arrivals" true (a <> b)

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p50 of 1..100" 50.0 (Serve_report.percentile 50 xs);
  Alcotest.(check (float 0.0)) "p95 of 1..100" 95.0 (Serve_report.percentile 95 xs);
  Alcotest.(check (float 0.0)) "p99 of 1..100" 99.0 (Serve_report.percentile 99 xs);
  Alcotest.(check (float 0.0)) "p99 of a singleton" 42.0
    (Serve_report.percentile 99 [ 42.0 ]);
  Alcotest.(check (float 0.0)) "empty list" 0.0 (Serve_report.percentile 99 []);
  (* small n: p99's nearest rank is the maximum *)
  Alcotest.(check (float 0.0)) "p99 of 10 samples is the max" 10.0
    (Serve_report.percentile 99 (List.init 10 (fun i -> float_of_int (i + 1))))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_policy_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Serve_policy.to_string p ^ " round-trips")
        true
        (Serve_policy.of_string (Serve_policy.to_string p) = Ok p))
    Serve_policy.all;
  match Serve_policy.of_string "warp" with
  | Ok _ -> Alcotest.fail "unknown policy accepted"
  | Error msg ->
    Alcotest.(check bool) "error lists the valid policies" true
      (contains msg "fifo" && contains msg "sjf" && contains msg "batch")

(* ------------------------------------------------------------------ *)
(* Policy semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_sjf_reorders_queue () =
  (* one accelerator; a large job arrives first and two small ones pile
     up behind it while it runs *)
  let requests =
    [ rq 0 1.0 "large"; rq 1 2.0 "small"; rq 2 3.0 "small" ]
  in
  let fifo =
    run_synth (params ~accels:1 ~policy:Serve_policy.Fifo ()) requests
  in
  let sjf = run_synth (params ~accels:1 ~policy:Serve_policy.Sjf ()) requests in
  let finish o id =
    let r =
      List.find
        (fun (r : Serve_sim.request_stat) -> r.Serve_sim.rs_id = id)
        o.Serve_sim.oc_completed
    in
    r.Serve_sim.rs_finish
  in
  (* both serve the large head first (it is alone in the queue), but
     SJF keeps serving small jobs in predicted order afterwards — the
     schedules coincide here; the reorder shows with a second long job *)
  let requests2 = requests @ [ rq 3 4.0 "large" ] in
  let fifo2 =
    run_synth (params ~accels:1 ~policy:Serve_policy.Fifo ()) requests2
  in
  let sjf2 = run_synth (params ~accels:1 ~policy:Serve_policy.Sjf ()) requests2 in
  Alcotest.(check bool) "fifo serves in arrival order" true
    (finish fifo 1 < finish fifo 2);
  Alcotest.(check bool) "sjf keeps equal-cost jobs in arrival order" true
    (finish sjf 1 < finish sjf 2);
  Alcotest.(check bool) "sjf finishes the small jobs before the second large" true
    (finish sjf2 1 < finish sjf2 3 && finish sjf2 2 < finish sjf2 3);
  (* under FIFO the last small job waits for the queue ahead of it;
     under SJF it overtakes the queued large job *)
  Alcotest.(check bool) "sjf improves the small job's finish" true
    (finish sjf2 2 <= finish fifo2 2)

let test_batch_coalesces () =
  (* one accelerator busy with the first request; three same-model
     requests queue up behind it and must leave as one kernel *)
  let requests =
    [ rq 0 0.0 "medium"; rq 1 1.0 "small"; rq 2 2.0 "small"; rq 3 3.0 "small" ]
  in
  let o = run_synth (params ~accels:1 ~policy:Serve_policy.Batch ()) requests in
  let stat id =
    List.find
      (fun (r : Serve_sim.request_stat) -> r.Serve_sim.rs_id = id)
      o.Serve_sim.oc_completed
  in
  Alcotest.(check int) "two kernels total" 2 o.Serve_sim.oc_dispatches;
  let s1 = stat 1 and s2 = stat 2 and s3 = stat 3 in
  Alcotest.(check int) "batch of three" 3 s1.Serve_sim.rs_batch;
  Alcotest.(check bool) "batch members share the dispatch" true
    (s1.Serve_sim.rs_start = s2.Serve_sim.rs_start
    && s2.Serve_sim.rs_start = s3.Serve_sim.rs_start
    && s1.Serve_sim.rs_finish = s3.Serve_sim.rs_finish);
  let dur = s1.Serve_sim.rs_finish -. s1.Serve_sim.rs_start in
  Alcotest.(check (float 1e-9)) "batched service time" (synth_service "small" ~batch:3)
    dur;
  Alcotest.(check bool) "batching is cheaper than three singles" true
    (dur < 3.0 *. synth_service "small" ~batch:1)

let test_queue_cap_rejects () =
  (* burst of 6 into a capacity-2 system with one slow accelerator *)
  let requests = List.init 6 (fun i -> rq i (float_of_int i) "large") in
  let o =
    run_synth (params ~accels:1 ~policy:Serve_policy.Fifo ~queue_cap:2 ()) requests
  in
  Alcotest.(check bool) "overload rejects" true (o.Serve_sim.oc_rejected <> []);
  Alcotest.(check int) "conservation under rejection" 6
    (List.length o.Serve_sim.oc_completed + List.length o.Serve_sim.oc_rejected);
  (* the earliest arrivals were admitted; rejections hit later ones *)
  let min_rejected =
    List.fold_left
      (fun acc (r : Serve_sim.rejection) -> min acc r.Serve_sim.rj_id)
      max_int o.Serve_sim.oc_rejected
  in
  Alcotest.(check bool) "first two admitted" true (min_rejected >= 2)

let test_zero_completion_report () =
  (* an empty run: no completions, makespan 0 — summarize must not
     raise and the undefined rates must render "n/a", not 0 or nan *)
  let o = run_synth (params ~accels:2 ()) [] in
  Alcotest.(check int) "nothing completed" 0 (List.length o.Serve_sim.oc_completed);
  let s = Serve_report.summarize ~freq_mhz:100.0 Serve_policy.Fifo o in
  Alcotest.(check bool) "throughput undefined" true (s.Serve_report.sm_throughput_rps = None);
  Alcotest.(check bool) "utilization undefined" true (s.sm_utilization = None);
  Alcotest.(check (float 0.0)) "empty percentiles are 0" 0.0
    s.sm_latency.Serve_report.d_p99;
  let report =
    {
      Serve_report.rp_workloads = [ "small" ];
      rp_seed = 0;
      rp_rps = 1.0;
      rp_requests = 0;
      rp_accels = 2;
      rp_queue_cap = None;
      rp_batch_max = 1;
      rp_freq_mhz = 100.0;
      rp_platform = None;
      rp_summaries = [ s ];
    }
  in
  let rendered = Serve_report.render report in
  Alcotest.(check bool) "renders n/a for the undefined rates" true
    (contains rendered "n/a");
  (* the JSON artifact keeps the v1 field types: undefined -> 0 *)
  let policies = Json.(to_list (member "policies" (Serve_report.to_json report))) in
  Alcotest.(check (float 0.0)) "artifact throughput is 0" 0.0
    Json.(to_float (member "throughput_rps" (List.hd policies)));
  (* a heavily-rejecting run still summarizes from its survivors *)
  let burst = List.init 8 (fun i -> rq i 0.0 "large") in
  let o = run_synth (params ~accels:1 ~queue_cap:1 ()) burst in
  Alcotest.(check int) "cap 1 admits one" 1 (List.length o.Serve_sim.oc_completed);
  let s = Serve_report.summarize ~freq_mhz:100.0 Serve_policy.Fifo o in
  Alcotest.(check bool) "rates defined once anything completed" true
    (s.Serve_report.sm_throughput_rps <> None && s.sm_utilization <> None)

(* ------------------------------------------------------------------ *)
(* Telemetry reconciliation                                            *)
(* ------------------------------------------------------------------ *)

let test_telemetry_reconciles () =
  (* the tested invariant: windowed telemetry sums equal the end-of-run
     outcome totals exactly, and observing a run never changes it *)
  let requests = ok (Serve_request.generate (stream ~count:30 ~mean_gap:60.0 ())) in
  List.iter
    (fun policy ->
      let p = params ~accels:2 ~policy ~queue_cap:3 () in
      let telemetry = ok (Serve_telemetry.create ~window:500.0 ~accels:2) in
      let unobserved = run_synth p requests in
      let observed =
        ok
          (Serve_sim.run ~telemetry ~service:synth_service ~predict:synth_predict p
             requests)
      in
      Alcotest.(check bool)
        (Serve_policy.to_string policy ^ ": telemetry does not perturb the run")
        true (observed = unobserved);
      let total name = List.assoc name (Serve_telemetry.totals telemetry) in
      let n = List.length observed.Serve_sim.oc_completed in
      let r = List.length observed.Serve_sim.oc_rejected in
      Alcotest.(check (float 0.0)) "arrivals = offered" (float_of_int (n + r))
        (total Serve_telemetry.s_arrivals);
      Alcotest.(check (float 0.0)) "completions = completed" (float_of_int n)
        (total Serve_telemetry.s_completions);
      Alcotest.(check (float 0.0)) "rejections = rejected" (float_of_int r)
        (total Serve_telemetry.s_rejections);
      Alcotest.(check (float 0.0)) "kernels = dispatches"
        (float_of_int observed.Serve_sim.oc_dispatches)
        (total Serve_telemetry.s_kernels);
      (* per-accel busy cycles reconcile too (spread over windows) *)
      List.iter
        (fun (a : Serve_sim.accel_stat) ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "accel%d busy cycles" a.Serve_sim.ac_id)
            a.Serve_sim.ac_busy
            (Timeseries.total
               (Serve_telemetry.timeseries telemetry)
               (Serve_telemetry.busy_series a.Serve_sim.ac_id)))
        observed.Serve_sim.oc_accels)
    Serve_policy.all

(* ------------------------------------------------------------------ *)
(* QCheck scheduler invariants                                         *)
(* ------------------------------------------------------------------ *)

(* Derive a whole scheduling case from one integer, Fuzz_rng-style, so
   shrinking stays meaningful and every case is reproducible from its
   seed alone. *)
let case_of_seed ?policy seed =
  let rng = Fuzz_rng.derive ~seed ~index:0 in
  let count = Fuzz_rng.int_range rng 0 40 in
  let accels = Fuzz_rng.int_range rng 1 4 in
  let policy =
    match policy with Some p -> p | None -> Fuzz_rng.pick rng Serve_policy.all
  in
  let batch_max = Fuzz_rng.int_range rng 1 4 in
  let queue_cap =
    if Fuzz_rng.bool rng then Some (Fuzz_rng.int_range rng 1 8) else None
  in
  let mean_gap = float_of_int (Fuzz_rng.int_range rng 20 400) in
  let p =
    {
      Serve_sim.sp_accels = accels;
      sp_policy = policy;
      sp_queue_cap = queue_cap;
      sp_batch_max = batch_max;
    }
  in
  let requests =
    match
      Serve_request.generate
        {
          Serve_request.st_seed = seed;
          st_count = count;
          st_mean_gap = mean_gap;
          st_models = synth_models;
        }
    with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  (p, requests)

(* per-accel service intervals (deduped per dispatch), sorted *)
let service_intervals (o : Serve_sim.outcome) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Serve_sim.request_stat) ->
      let key = (r.Serve_sim.rs_accel, r.rs_start, r.rs_finish) in
      Hashtbl.replace tbl key ())
    o.Serve_sim.oc_completed;
  let by_accel = Hashtbl.create 4 in
  Hashtbl.iter
    (fun (accel, s, f) () ->
      let prev = try Hashtbl.find by_accel accel with Not_found -> [] in
      Hashtbl.replace by_accel accel ((s, f) :: prev))
    tbl;
  Hashtbl.iter
    (fun accel ivs -> Hashtbl.replace by_accel accel (List.sort compare ivs))
    by_accel;
  by_accel

let eps = 1e-6

(* is [a, b) fully inside the union of the sorted intervals? *)
let covered intervals a b =
  if b <= a +. eps then true
  else begin
    let t = ref a in
    List.iter
      (fun (s, f) -> if s <= !t +. eps && f > !t then t := f)
      intervals;
    !t >= b -. eps
  end

let prop_conservation =
  QCheck.Test.make ~name:"conservation: offered = completed + rejected" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p, requests = case_of_seed seed in
      let o = run_synth p requests in
      let ids xs = List.sort compare xs in
      let completed_ids =
        List.map (fun (r : Serve_sim.request_stat) -> r.Serve_sim.rs_id)
          o.Serve_sim.oc_completed
      in
      let rejected_ids =
        List.map (fun (r : Serve_sim.rejection) -> r.Serve_sim.rj_id)
          o.Serve_sim.oc_rejected
      in
      let all = ids (completed_ids @ rejected_ids) in
      all = List.init (List.length requests) (fun i -> i))

let prop_accounting =
  QCheck.Test.make
    ~name:"accounting: per-accel busy <= makespan (so sum <= makespan * K)"
    ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p, requests = case_of_seed seed in
      let o = run_synth p requests in
      let sum =
        List.fold_left
          (fun acc (a : Serve_sim.accel_stat) -> acc +. a.Serve_sim.ac_busy)
          0.0 o.Serve_sim.oc_accels
      in
      List.for_all
        (fun (a : Serve_sim.accel_stat) ->
          a.Serve_sim.ac_busy <= o.Serve_sim.oc_makespan +. eps)
        o.Serve_sim.oc_accels
      && sum <= (o.Serve_sim.oc_makespan *. float_of_int p.Serve_sim.sp_accels) +. eps)

let prop_determinism =
  QCheck.Test.make ~name:"determinism: same seed+policy, identical outcome" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p, requests = case_of_seed seed in
      run_synth p requests = run_synth p requests)

let prop_work_conservation =
  QCheck.Test.make
    ~name:"work conservation: no accel idles through a request's wait" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p, requests = case_of_seed seed in
      let o = run_synth p requests in
      let by_accel = service_intervals o in
      List.for_all
        (fun (r : Serve_sim.request_stat) ->
          List.init p.Serve_sim.sp_accels (fun i -> i)
          |> List.for_all (fun accel ->
                 let ivs =
                   try Hashtbl.find by_accel accel with Not_found -> []
                 in
                 covered ivs r.Serve_sim.rs_arrival r.Serve_sim.rs_start))
        o.Serve_sim.oc_completed)

let prop_fifo_order =
  QCheck.Test.make
    ~name:"fifo: per-accel service follows arrival order (no starvation)" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p, requests = case_of_seed ~policy:Serve_policy.Fifo seed in
      let o = run_synth p requests in
      List.init p.Serve_sim.sp_accels (fun i -> i)
      |> List.for_all (fun accel ->
             let mine =
               List.filter
                 (fun (r : Serve_sim.request_stat) -> r.Serve_sim.rs_accel = accel)
                 o.Serve_sim.oc_completed
               |> List.sort (fun (a : Serve_sim.request_stat) b ->
                      compare
                        (a.Serve_sim.rs_start, a.Serve_sim.rs_id)
                        (b.Serve_sim.rs_start, b.Serve_sim.rs_id))
             in
             let rec increasing = function
               | (a : Serve_sim.request_stat) :: (b : Serve_sim.request_stat) :: rest
                 ->
                 a.Serve_sim.rs_id < b.Serve_sim.rs_id && increasing (b :: rest)
               | _ -> true
             in
             increasing mine))

(* ------------------------------------------------------------------ *)
(* Differential checks against the real pipeline                       *)
(* ------------------------------------------------------------------ *)

let real_oracle () =
  Serve_cost.create (ok (Serve_cost.models_of_specs [ "matmul:16,16,16" ]))

(* what the oracle should measure, spelled out independently: the
   Best-heuristic compile+run of the single kernel, exactly as the
   bench experiments do it *)
let direct_matmul_cycles ~m ~n ~k =
  let accel = Presets.matmul ~version:Accel_matmul.V4 ~size:16 () in
  let bench = Axi4mlir.create accel in
  let options =
    match Heuristics.best accel ~m ~n ~k with
    | Some c ->
      {
        Axi4mlir.default_codegen with
        flow = Some c.Heuristics.flow;
        tiles = Some [ c.Heuristics.tm; c.Heuristics.tn; c.Heuristics.tk ];
      }
    | None -> Axi4mlir.default_codegen
  in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
  let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
  let counters =
    Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
  in
  counters.Perf_counters.cycles

let test_single_request_matches_pipeline () =
  (* single-accel FIFO serving of one request must be cycle-identical
     to the single-kernel pipeline run *)
  let oracle = real_oracle () in
  let requests = [ rq 0 10.0 "matmul:16,16,16" ] in
  let o =
    ok
      (Serve_sim.run
         ~service:(Serve_cost.service oracle)
         ~predict:(Serve_cost.predict oracle)
         (params ~accels:1 ~policy:Serve_policy.Fifo ())
         requests)
  in
  let r = List.hd o.Serve_sim.oc_completed in
  let direct = direct_matmul_cycles ~m:16 ~n:16 ~k:16 in
  Alcotest.(check (float 0.0)) "service cycles = pipeline cycles" direct
    (r.Serve_sim.rs_finish -. r.Serve_sim.rs_start);
  Alcotest.(check (float 0.0)) "no queueing for a lone request" r.Serve_sim.rs_arrival
    r.Serve_sim.rs_start;
  Alcotest.(check (float 0.0)) "makespan is the finish" r.Serve_sim.rs_finish
    o.Serve_sim.oc_makespan

let test_batched_kernel_amortises () =
  let oracle = real_oracle () in
  let s1 = Serve_cost.service oracle "matmul:16,16,16" ~batch:1 in
  let s2 = Serve_cost.service oracle "matmul:16,16,16" ~batch:2 in
  Alcotest.(check bool) "a batch of two costs more than one" true (s2 > s1);
  Alcotest.(check bool) "a batch of two costs less than two singles" true
    (s2 < 2.0 *. s1);
  (* memoisation: the same query is served from the table *)
  Alcotest.(check (float 0.0)) "memoised service is stable" s1
    (Serve_cost.service oracle "matmul:16,16,16" ~batch:1)

(* ------------------------------------------------------------------ *)
(* The axi4mlir-serve-v1 artifact                                      *)
(* ------------------------------------------------------------------ *)

let golden_specs = [ "matmul:16,16,16" ]

let golden_freq_mhz = Cost_model.default.Cost_model.cpu_freq_mhz

let golden_requests () =
  ok
    (Serve_request.generate
       {
         Serve_request.st_seed = 3;
         st_count = 6;
         st_mean_gap = golden_freq_mhz *. 1e6 /. 30000.0;
         st_models = golden_specs;
       })

let golden_report ?(policies = Serve_policy.all) () =
  (* must mirror bin/axi4mlir_serve.ml's construction for:
       --workload matmul:16,16,16 --requests 6 --accels 2 --rps 30000
       --policy all --seed 3 --batch-max 2 *)
  let oracle = Serve_cost.create (ok (Serve_cost.models_of_specs golden_specs)) in
  let reqs = golden_requests () in
  let summaries =
    List.map
      (fun policy ->
        let o =
          ok
            (Serve_sim.run
               ~service:(Serve_cost.service oracle)
               ~predict:(Serve_cost.predict oracle)
               (params ~accels:2 ~policy ~batch_max:2 ())
               reqs)
        in
        Serve_report.summarize ~freq_mhz:golden_freq_mhz policy o)
      policies
  in
  {
    Serve_report.rp_workloads = golden_specs;
    rp_seed = 3;
    rp_rps = 30000.0;
    rp_requests = 6;
    rp_accels = 2;
    rp_queue_cap = None;
    rp_batch_max = 2;
    rp_freq_mhz = golden_freq_mhz;
    rp_platform = None;
    rp_summaries = summaries;
  }

(* Regenerate (after an intentional cost-model or schema change) with:
     dune exec bin/axi4mlir_serve.exe -- --workload matmul:16,16,16 \
       --requests 6 --accels 2 --rps 30000 --policy all --seed 3 \
       --batch-max 2 --json test/golden/serve_matmul16.json *)
let read_golden path =
  let ic = open_in_bin (Filename.concat "golden" path) in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  golden

let test_golden_artifact () =
  let fresh =
    Json.to_string ~indent:1 (Serve_report.to_json (golden_report ())) ^ "\n"
  in
  Alcotest.(check string) "serve artifact matches the golden file"
    (read_golden "serve_matmul16.json") fresh

(* Regenerate with:
     dune exec bin/axi4mlir_serve.exe -- --workload matmul:16,16,16 \
       --requests 6 --accels 2 --rps 30000 --policy batch --seed 3 \
       --batch-max 2 --json test/golden/serve_batch16.json *)
let test_golden_batch_artifact () =
  let fresh =
    Json.to_string ~indent:1
      (Serve_report.to_json (golden_report ~policies:[ Serve_policy.Batch ] ()))
    ^ "\n"
  in
  Alcotest.(check string) "batch-policy artifact matches the golden file"
    (read_golden "serve_batch16.json") fresh

(* Regenerate with:
     dune exec bin/axi4mlir_serve.exe -- --workload matmul:16,16,16 \
       --requests 6 --accels 2 --rps 30000 --policy all --seed 3 \
       --batch-max 2 --window 200000 --slo 'p99<=500000' \
       --telemetry test/golden/serve_telemetry.json *)
let test_golden_telemetry_artifact () =
  let oracle = Serve_cost.create (ok (Serve_cost.models_of_specs golden_specs)) in
  let reqs = golden_requests () in
  let slo = ok (Slo.parse "p99<=500000") in
  let observed =
    List.map
      (fun policy ->
        let telemetry = ok (Serve_telemetry.create ~window:200000.0 ~accels:2) in
        let _ =
          ok
            (Serve_sim.run ~telemetry
               ~service:(Serve_cost.service oracle)
               ~predict:(Serve_cost.predict oracle)
               (params ~accels:2 ~policy ~batch_max:2 ())
               reqs)
        in
        ( Serve_policy.to_string policy,
          telemetry,
          Serve_telemetry.evaluate telemetry [ slo ] ))
      Serve_policy.all
  in
  let fresh = Json.to_string ~indent:1 (Serve_telemetry.to_json observed) ^ "\n" in
  Alcotest.(check string) "telemetry artifact matches the golden file"
    (read_golden "serve_telemetry.json") fresh;
  (* telemetry-v1 schema floor: add-only fields that must stay *)
  let doc = Serve_telemetry.to_json observed in
  Alcotest.(check string) "schema string" "axi4mlir-telemetry-v1"
    Json.(to_str (member "schema" doc));
  let first = List.hd Json.(to_list (member "policies" doc)) in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true
        (Json.member_opt field first <> None))
    [ "policy"; "window_cycles"; "accels"; "totals"; "timeseries"; "slos" ]

let test_artifact_schema () =
  (* the add-only compatibility floor: these fields must stay *)
  let doc = Serve_report.to_json (golden_report ()) in
  Alcotest.(check string) "schema string" "axi4mlir-serve-v1"
    Json.(to_str (member "schema" doc));
  Alcotest.(check int) "one summary per policy" 3
    (List.length Json.(to_list (member "policies" doc)));
  let first = List.hd Json.(to_list (member "policies" doc)) in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true
        (Json.member_opt field first <> None))
    [
      "policy";
      "requests";
      "completed";
      "rejected";
      "dispatches";
      "makespan_cycles";
      "throughput_rps";
      "utilization";
      "latency_cycles";
      "queue_cycles";
      "accels";
    ];
  (* platform is Null for a plain --accels run, so check key presence *)
  Alcotest.(check bool) "platform present (add-only)" true
    (match doc with Json.Obj kvs -> List.mem_assoc "platform" kvs | _ -> false);
  List.iter
    (fun field ->
      Alcotest.(check bool) ("latency " ^ field ^ " present") true
        (Json.member_opt field (Json.member "latency_cycles" first) <> None))
    [ "mean"; "p50"; "p95"; "p99"; "max" ];
  let first_accel = List.hd Json.(to_list (member "accels" first)) in
  List.iter
    (fun field ->
      Alcotest.(check bool) ("accel " ^ field ^ " present") true
        (Json.member_opt field first_accel <> None))
    [ "id"; "busy_cycles"; "utilization"; "requests"; "dispatches"; "engine" ];
  (* and the rendering must re-parse *)
  let reparsed = Json.of_string (Json.to_string ~indent:1 doc) in
  Alcotest.(check string) "artifact re-parses" "axi4mlir-serve-v1"
    Json.(to_str (member "schema" reparsed))

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)
(* ------------------------------------------------------------------ *)

let test_trace_export () =
  let requests =
    [ rq 0 0.0 "medium"; rq 1 1.0 "small"; rq 2 2.0 "small"; rq 3 3.0 "small" ]
  in
  let o = run_synth (params ~accels:2 ~policy:Serve_policy.Batch ()) requests in
  let tracer = Trace.create () in
  Trace.enable tracer;
  Serve_report.annotate_trace tracer o;
  let events = Trace.events tracer in
  let on_track track =
    List.filter (fun (e : Trace.event) -> e.Trace.ev_track = track) events
  in
  Alcotest.(check int) "one lifetime span per completed request"
    (List.length o.Serve_sim.oc_completed)
    (List.length (on_track Trace.serve_request_track));
  let dispatch_events =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.ev_track = Trace.serve_accel_track 0
        || e.Trace.ev_track = Trace.serve_accel_track 1)
      events
  in
  Alcotest.(check int) "one slice per dispatch" o.Serve_sim.oc_dispatches
    (List.length dispatch_events);
  let names = Serve_report.track_names o in
  Alcotest.(check bool) "request track is named" true
    (List.mem_assoc Trace.serve_request_track names);
  Alcotest.(check bool) "accel tracks are named" true
    (List.mem_assoc (Trace.serve_accel_track 0) names
    && List.mem_assoc (Trace.serve_accel_track 1) names)

let tests =
  [
    Alcotest.test_case "stream: deterministic and ordered" `Quick
      test_stream_deterministic;
    Alcotest.test_case "stream: seed sensitivity" `Quick test_stream_seed_sensitivity;
    Alcotest.test_case "percentile: nearest rank" `Quick test_percentile;
    Alcotest.test_case "policy: names and errors" `Quick test_policy_names;
    Alcotest.test_case "sjf: reorders behind a long job" `Quick test_sjf_reorders_queue;
    Alcotest.test_case "batch: coalesces same-model requests" `Quick
      test_batch_coalesces;
    Alcotest.test_case "queue cap: rejects and conserves" `Quick test_queue_cap_rejects;
    Alcotest.test_case "report: zero completions render n/a" `Quick
      test_zero_completion_report;
    Alcotest.test_case "telemetry: reconciles with the report" `Quick
      test_telemetry_reconciles;
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_accounting;
    QCheck_alcotest.to_alcotest prop_determinism;
    QCheck_alcotest.to_alcotest prop_work_conservation;
    QCheck_alcotest.to_alcotest prop_fifo_order;
    Alcotest.test_case "differential: single request = pipeline run" `Quick
      test_single_request_matches_pipeline;
    Alcotest.test_case "differential: batching amortises" `Quick
      test_batched_kernel_amortises;
    Alcotest.test_case "golden: serve artifact" `Quick test_golden_artifact;
    Alcotest.test_case "golden: batch-policy artifact" `Quick
      test_golden_batch_artifact;
    Alcotest.test_case "golden: telemetry artifact" `Quick
      test_golden_telemetry_artifact;
    Alcotest.test_case "serve-v1 schema floor" `Quick test_artifact_schema;
    Alcotest.test_case "trace: request + dispatch tracks" `Quick test_trace_export;
  ]
