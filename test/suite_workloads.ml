(* Tests for the workload layer: heuristics, ResNet-18 and TinyBERT. *)

let v4 = Presets.matmul ~version:Accel_matmul.V4 ~size:16 ()

let test_transfer_elems_formulas () =
  let m, n, k = (64, 64, 64) in
  let t ~flow = Heuristics.transfer_elems ~flow ~m ~n ~k ~tm:16 ~tn:16 ~tk:16 in
  (* Ns moves every tile every iteration: 64 iterations * 3 * 256 *)
  Alcotest.(check (float 0.0)) "Ns" (64.0 *. 3.0 *. 256.0) (t ~flow:"Ns");
  (* stationary flows strictly reduce traffic *)
  Alcotest.(check bool) "As < Ns" true (t ~flow:"As" < t ~flow:"Ns");
  Alcotest.(check bool) "Bs < Ns" true (t ~flow:"Bs" < t ~flow:"Ns");
  Alcotest.(check bool) "Cs < Ns" true (t ~flow:"Cs" < t ~flow:"Ns");
  (* A-stationary saves exactly the redundant A transfers *)
  Alcotest.(check (float 0.0)) "As saving"
    (t ~flow:"Ns" -. (float_of_int (64 - 16) /. 16.0 *. 16.0 *. 256.0))
    (t ~flow:"As")

let test_candidate_tiles () =
  let candidates = Heuristics.candidate_tiles v4 ~m:32 ~n:256 ~k:512 in
  Alcotest.(check bool) "non-empty" true (candidates <> []);
  List.iter
    (fun (tm, tn, tk) ->
      Alcotest.(check bool) "granularity" true (tm mod 16 = 0 && tn mod 16 = 0 && tk mod 16 = 0);
      Alcotest.(check bool) "divides" true (32 mod tm = 0 && 256 mod tn = 0 && 512 mod tk = 0);
      Alcotest.(check bool) "buffers" true
        (tm * tk <= 4096 && tk * tn <= 4096 && tm * tn <= 4096))
    candidates;
  (* fixed-size engines admit exactly their square tile *)
  let v3 = Presets.matmul ~version:Accel_matmul.V3 ~size:16 () in
  Alcotest.(check (list (triple int int int))) "v3 single candidate" [ (16, 16, 16) ]
    (Heuristics.candidate_tiles v3 ~m:32 ~n:32 ~k:32)

let test_square_tile_heuristic () =
  match Heuristics.square_tile v4 ~flow:"Cs" ~m:32 ~n:256 ~k:512 with
  | Some choice ->
    Alcotest.(check int) "largest feasible square" 32 choice.Heuristics.tm;
    Alcotest.(check bool) "square" true
      (choice.Heuristics.tm = choice.Heuristics.tn && choice.Heuristics.tn = choice.Heuristics.tk)
  | None -> Alcotest.fail "no square tile found"

let test_square_tile_infeasible () =
  (* dims not divisible by the granularity *)
  Alcotest.(check bool) "infeasible" true
    (Heuristics.square_tile v4 ~flow:"Ns" ~m:30 ~n:30 ~k:30 = None)

let test_best_beats_squares () =
  (* on a skinny problem the Best heuristic must be at least as good as
     every square-tile heuristic under its own cost estimate *)
  List.iter
    (fun (m, n, k) ->
      match Heuristics.best v4 ~m ~n ~k with
      | None -> Alcotest.fail "Best found nothing"
      | Some best ->
        List.iter
          (fun flow ->
            match Heuristics.square_tile v4 ~flow ~m ~n ~k with
            | None -> ()
            | Some sq ->
              let sq_cycles =
                Heuristics.estimate_cycles v4 ~cost:Cost_model.default ~flow ~m ~n ~k
                  ~tm:sq.Heuristics.tm ~tn:sq.Heuristics.tn ~tk:sq.Heuristics.tk
              in
              Alcotest.(check bool)
                (Printf.sprintf "%dx%dx%d: Best (%s %d,%d,%d: %.0f) <= %s-square (%.0f)" m
                   n k best.Heuristics.flow best.Heuristics.tm best.Heuristics.tn
                   best.Heuristics.tk best.Heuristics.predicted_cycles flow sq_cycles)
                true
                (best.Heuristics.predicted_cycles <= sq_cycles +. 1e-6))
          [ "As"; "Bs"; "Cs" ])
    (List.map
       (fun p -> match p with [ a; b; c ] -> (a, b, c) | _ -> assert false)
       (Util.permutations [ 32; 256; 512 ]))

let test_best_uses_flexibility () =
  (* for a tall-skinny problem the best tile should not be square *)
  match Heuristics.best v4 ~m:32 ~n:256 ~k:512 with
  | None -> Alcotest.fail "no choice"
  | Some c ->
    Alcotest.(check bool)
      (Printf.sprintf "non-square tiles chosen (%d,%d,%d)" c.Heuristics.tm c.Heuristics.tn
         c.Heuristics.tk)
      true
      (not (c.Heuristics.tm = c.Heuristics.tn && c.Heuristics.tn = c.Heuristics.tk))

let test_resnet_layers () =
  Alcotest.(check int) "eleven layers" 11 (List.length Resnet18.layers);
  List.iter
    (fun (l : Resnet18.layer) ->
      Alcotest.(check bool) (l.Resnet18.label ^ " fits the engine") true
        (l.Resnet18.ic * l.Resnet18.fhw * l.Resnet18.fhw <= Accel_conv.buffer_capacity_elems);
      Alcotest.(check bool) "positive output" true (l.Resnet18.ohw > 0);
      Alcotest.(check int) "output edge"
        (Gold.conv_out l.Resnet18.ihw ~fhw:l.Resnet18.fhw ~stride:l.Resnet18.stride)
        l.Resnet18.ohw;
      Alcotest.(check bool) "macs positive" true (Resnet18.macs l > 0))
    Resnet18.layers;
  (* the paper's slowdown layer exists *)
  Alcotest.(check bool) "56_64_1_128_2 present" true (Resnet18.find "56_64_1_128_2" <> None);
  Alcotest.(check bool) "unknown absent" true (Resnet18.find "nope" = None)

let test_tinybert_shapes () =
  let shapes = Tinybert.matmul_shapes ~batch:2 ~seq:128 in
  Alcotest.(check int) "six shape classes" 6 (List.length shapes);
  let find name = List.find (fun s -> s.Tinybert.mm_name = name) shapes in
  let qkv = find "qkv_proj" in
  Alcotest.(check int) "qkv count" (3 * 2 * 4) qkv.Tinybert.count;
  Alcotest.(check int) "qkv k" 312 qkv.Tinybert.k;
  let scores = find "attn_scores" in
  Alcotest.(check int) "scores per head" (12 * 2 * 4) scores.Tinybert.count;
  Alcotest.(check int) "head dim" 26 scores.Tinybert.k;
  Alcotest.(check int) "ffn up n" 1200 (find "ffn_up").Tinybert.n;
  Alcotest.(check bool) "macs in the hundreds of millions" true
    (Tinybert.total_matmul_macs ~batch:2 ~seq:128 > 300_000_000)

let test_pad16 () =
  Alcotest.(check int) "312" 320 (Tinybert.pad16 312);
  Alcotest.(check int) "26" 32 (Tinybert.pad16 26);
  Alcotest.(check int) "128" 128 (Tinybert.pad16 128)

let test_non_matmul_cycles_positive () =
  let cycles = Tinybert.non_matmul_cpu_cycles ~cost:Cost_model.default ~batch:2 ~seq:128 in
  Alcotest.(check bool) "positive" true (cycles > 0.0);
  (* should be of the same order as, but smaller than, the matmul work *)
  let macs = float_of_int (Tinybert.total_matmul_macs ~batch:2 ~seq:128) in
  Alcotest.(check bool) "smaller than matmul cycles at ~10cyc/mac" true
    (cycles < macs *. 10.0)

(* choose: the default selection the autotuner must never lose to *)

let test_choose_flexible_is_best () =
  (* on a flexible engine, choose = best *)
  match (Heuristics.choose v4 ~m:32 ~n:256 ~k:512, Heuristics.best v4 ~m:32 ~n:256 ~k:512) with
  | Some chosen, Some best ->
    Alcotest.(check string) "same flow" best.Heuristics.flow chosen.Heuristics.flow;
    Alcotest.(check (triple int int int)) "same tiles"
      (best.Heuristics.tm, best.Heuristics.tn, best.Heuristics.tk)
      (chosen.Heuristics.tm, chosen.Heuristics.tn, chosen.Heuristics.tk)
  | _ -> Alcotest.fail "choose/best found nothing on a feasible problem"

let test_choose_fixed_engine () =
  (* a fixed-size engine takes its own square tile under the config's
     selected flow *)
  let v3 = Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Cs" () in
  (match Heuristics.choose v3 ~m:32 ~n:48 ~k:64 with
  | Some c ->
    Alcotest.(check string) "selected flow" "Cs" c.Heuristics.flow;
    Alcotest.(check (triple int int int)) "square engine tile" (16, 16, 16)
      (c.Heuristics.tm, c.Heuristics.tn, c.Heuristics.tk)
  | None -> Alcotest.fail "dividing dims must be feasible");
  (* non-dividing dims: nothing feasible, the op stays on the CPU path *)
  Alcotest.(check bool) "non-dividing -> None" true
    (Heuristics.choose v3 ~m:30 ~n:32 ~k:32 = None)

(* Property: whatever choose returns fits the engine and divides the
   problem — the contract the autotuner's baseline leans on. *)
let prop_choose_fits =
  QCheck.Test.make ~name:"chosen tile divides dims and fits the buffers" ~count:80
    QCheck.(quad (1 -- 8) (1 -- 8) (1 -- 8) (0 -- 4))
    (fun (mt, nt, kt, pick) ->
      let config =
        match pick with
        | 0 -> Presets.matmul ~version:Accel_matmul.V1 ~size:8 ()
        | 1 -> Presets.matmul ~version:Accel_matmul.V2 ~size:8 ~flow:"As" ()
        | 2 -> Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Cs" ()
        | 3 -> Presets.matmul ~version:Accel_matmul.V4 ~size:8 ()
        | _ -> Presets.matmul ~version:Accel_matmul.V4 ~size:16 ()
      in
      let m, n, k = (8 * mt, 8 * nt, 8 * kt) in
      match Heuristics.choose config ~m ~n ~k with
      | None -> true (* declining is always allowed *)
      | Some { Heuristics.tm; tn; tk; _ } ->
        let cap = config.Accel_config.buffer_capacity_elems in
        m mod tm = 0 && n mod tn = 0 && k mod tk = 0
        && tm * tk <= cap && tk * tn <= cap && tm * tn <= cap)

(* Property: the transfer formula equals a direct simulation count of
   tile sends under the flow structure. *)
let prop_transfer_formula =
  QCheck.Test.make ~name:"transfer formula matches explicit enumeration" ~count:60
    QCheck.(quad (1 -- 4) (1 -- 4) (1 -- 4) (0 -- 3))
    (fun (mt, nt, kt, pick) ->
      let flow = List.nth [ "Ns"; "As"; "Bs"; "Cs" ] pick in
      let tm, tn, tk = (8, 4, 16) in
      let m, n, k = (mt * tm, nt * tn, kt * tk) in
      let a_count, b_count, c_count =
        match flow with
        | "Ns" -> (mt * nt * kt, mt * nt * kt, mt * nt * kt)
        | "As" -> (mt * kt, mt * nt * kt, mt * nt * kt)
        | "Bs" -> (mt * nt * kt, nt * kt, mt * nt * kt)
        | _ -> (mt * nt * kt, mt * nt * kt, mt * nt)
      in
      let expected =
        float_of_int ((a_count * tm * tk) + (b_count * tk * tn) + (c_count * tm * tn))
      in
      Heuristics.transfer_elems ~flow ~m ~n ~k ~tm ~tn ~tk = expected)

let tests =
  [
    Alcotest.test_case "transfer-volume formulas" `Quick test_transfer_elems_formulas;
    Alcotest.test_case "candidate tiles" `Quick test_candidate_tiles;
    Alcotest.test_case "square-tile heuristic" `Quick test_square_tile_heuristic;
    Alcotest.test_case "square-tile infeasible" `Quick test_square_tile_infeasible;
    Alcotest.test_case "Best dominates square tiles" `Quick test_best_beats_squares;
    Alcotest.test_case "Best exploits flexible tiles" `Quick test_best_uses_flexibility;
    Alcotest.test_case "ResNet-18 layer table" `Quick test_resnet_layers;
    Alcotest.test_case "TinyBERT shapes" `Quick test_tinybert_shapes;
    Alcotest.test_case "pad16" `Quick test_pad16;
    Alcotest.test_case "non-matmul cycle estimate" `Quick test_non_matmul_cycles_positive;
    Alcotest.test_case "choose: flexible engines use Best" `Quick test_choose_flexible_is_best;
    Alcotest.test_case "choose: fixed engines, square tile or CPU" `Quick
      test_choose_fixed_engine;
    QCheck_alcotest.to_alcotest prop_choose_fits;
    QCheck_alcotest.to_alcotest prop_transfer_formula;
  ]
