(* Failure-injection tests: the compiler and the simulated hardware must
   reject broken configurations loudly rather than mis-execute. *)

let host = Host_config.pynq_z2

let test_codegen_rejects_deep_flow () =
  (* a trait whose flow nests deeper than the loop nest must be caught
     by codegen even if validation were skipped *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let _, g =
    let modul = Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 () in
    match
      List.concat_map (fun f -> Ir.find_ops Linalg.is_generic f) (Ir.module_body modul)
    with
    | [ g ] -> (modul, g)
    | _ -> assert false
  in
  let trait =
    {
      Trait.dma_init_config = accel.Accel_config.dma;
      init_opcodes = [ "reset" ];
      accel_dim = [ 4; 4; 4 ];
      permutation = [ 0; 1; 2 ];
      opcode_map = accel.Accel_config.opcode_map;
      (* depth 4 > 3 loops *)
      opcode_flow = Opcode.parse_flow "(sA (sB (cC (rC))))";
      cpu_tile = [ 0; 0; 0 ];
      double_buffer = false;
    }
  in
  let annotated = Trait.attach g trait in
  let b = Builder.create () in
  match Accel_codegen.codegen_generic b ~emit_dma_init:true annotated with
  | exception Failure msg ->
    Alcotest.(check bool) "message mentions flow depth" true
      (String.length msg > 0)
  | () -> Alcotest.fail "deep flow accepted by codegen"

let test_send_idx_codegen () =
  (* an opcode using send_idx places the loop index in the stream *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let tagged =
    {
      accel with
      Accel_config.opcode_map =
        accel.Accel_config.opcode_map
        @ [ { Opcode.key = "tag"; actions = [ Opcode.Send_idx (0, 0) ] } ];
      opcode_flows = [ ("Tagged", Opcode.parse_flow "(tag sA sB cC rC)") ];
      selected_flow = "Tagged";
    }
  in
  let modul = Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 () in
  let annotated =
    Pass.run_pipeline
      [ Match_annotate.pass ~accel:tagged ~host (); Accel_codegen.pass ]
      modul
  in
  let idx_ops = Ir.find_ops (fun o -> o.Ir.name = "accel.sendIdx") annotated in
  Alcotest.(check int) "one sendIdx per opcode instance" 1 (List.length idx_ops);
  match (List.hd idx_ops).Ir.operands with
  | [ idx; _offset ] ->
    Alcotest.(check bool) "index-typed operand" true (Ty.equal idx.Ir.vty Ty.index)
  | _ -> Alcotest.fail "malformed sendIdx"

let test_device_rejects_protocol_violation () =
  (* a receive with no drain instruction: the device has no queued
     output, so the DMA engine's collection must fail *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let broken =
    {
      accel with
      Accel_config.opcode_map =
        accel.Accel_config.opcode_map
        @ [ { Opcode.key = "rOnly"; actions = [ Opcode.Recv 2 ] } ];
      opcode_flows = [ ("Broken", Opcode.parse_flow "(sA sB cC rOnly)") ];
      selected_flow = "Broken";
    }
  in
  let bench = Axi4mlir.create broken in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:4 ~n:4 ~k:4 in
  let ir = Axi4mlir.compile_matmul bench ~m:4 ~n:4 ~k:4 () in
  match Axi4mlir.run_matmul bench ir ~a ~b ~c with
  | exception Failure msg ->
    Alcotest.(check bool) "device names the shortfall" true (String.length msg > 0)
  | () -> Alcotest.fail "premature receive accepted"

let test_dma_region_overflow_detected () =
  (* an input window too small for one tile transfer *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 () in
  let tiny =
    {
      accel with
      Accel_config.dma =
        { accel.Accel_config.dma with Accel_config.input_buffer_size = 64 };
    }
  in
  let bench = Axi4mlir.create tiny in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:16 ~n:16 ~k:16 in
  let ir = Axi4mlir.compile_matmul bench ~m:16 ~n:16 ~k:16 () in
  match Axi4mlir.run_matmul bench ir ~a ~b ~c with
  | exception Failure msg ->
    Alcotest.(check bool) "overflow reported" true (String.length msg > 0)
  | () -> Alcotest.fail "DMA region overflow accepted"

let test_wrong_engine_opcodes_rejected () =
  (* drive a v1 engine with a v3 opcode map: the decoder must refuse *)
  let v1 = Presets.matmul ~version:Accel_matmul.V1 ~size:4 () in
  let v3 = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let mismatched = { v3 with Accel_config.engine = v1.Accel_config.engine } in
  let bench = Axi4mlir.create mismatched in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:4 ~n:4 ~k:4 in
  let ir = Axi4mlir.compile_matmul bench ~m:4 ~n:4 ~k:4 () in
  match Axi4mlir.run_matmul bench ir ~a ~b ~c with
  | exception Failure msg ->
    Alcotest.(check bool) "decoder names the instruction" true (String.length msg > 0)
  | () -> Alcotest.fail "mismatched micro-ISA accepted"

let test_facade_reports_unoffloadable () =
  (* the facade surfaces the skip reason instead of silently running on
     the CPU *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 () in
  let bench = Axi4mlir.create accel in
  match Axi4mlir.compile_matmul bench ~m:10 ~n:10 ~k:10 () with
  | exception Failure msg ->
    Alcotest.(check bool) "reason included" true (String.length msg > 0)
  | _ -> Alcotest.fail "non-divisible problem silently accepted"

(* ------------------------------------------------------------------ *)
(* Structured parser errors: malformed JSON configurations and counter
   snapshots must come back as field-qualified [Error]s, never as bare
   exceptions.                                                         *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nl = String.length needle in
  let rec go i = i + nl <= String.length hay && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let expect_error name result fragment =
  match result with
  | Ok _ -> Alcotest.fail (name ^ ": malformed input accepted")
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions \"%s\" (got: %s)" name fragment msg)
      true (contains msg fragment)

let test_perf_counters_structured_errors () =
  expect_error "non-object"
    (Perf_counters.of_json_result (Json.List []))
    "expected a JSON object";
  expect_error "unknown counter"
    (Perf_counters.of_json_result (Json.Obj [ ("cycels", Json.Float 1.0) ]))
    "perf_counters.cycels: unknown counter";
  expect_error "non-numeric value"
    (Perf_counters.of_json_result (Json.Obj [ ("cycles", Json.String "fast") ]))
    "perf_counters.cycles";
  (* the exception API carries the same structured message *)
  (match Perf_counters.of_json (Json.Obj [ ("bogus", Json.Float 0.0) ]) with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "of_json mirrors of_json_result" true
      (contains msg "perf_counters.bogus")
  | _ -> Alcotest.fail "unknown counter accepted");
  (* well-formed input still round-trips *)
  let c = Perf_counters.create () in
  c.Perf_counters.cycles <- 42.0;
  match Perf_counters.of_json_result (Perf_counters.to_json c) with
  | Ok c' -> Alcotest.(check (float 0.0)) "round trip" 42.0 c'.Perf_counters.cycles
  | Error msg -> Alcotest.fail msg

let valid_accel_json () = Accel_config.to_json (Presets.matmul ~version:Accel_matmul.V3 ~size:4 ())

let without_key key = function
  | Json.Obj kvs -> Json.Obj (List.remove_assoc key kvs)
  | j -> j

let with_key key v = function
  | Json.Obj kvs -> Json.Obj ((key, v) :: List.remove_assoc key kvs)
  | j -> j

let test_accel_config_structured_errors () =
  (* the valid baseline parses *)
  (match Accel_config.of_json_result (valid_accel_json ()) with
  | Ok config ->
    Alcotest.(check string) "baseline name" "v3_4" config.Accel_config.accel_name
  | Error msg -> Alcotest.fail msg);
  expect_error "non-object" (Accel_config.of_json_result Json.Null) "expected a JSON object";
  expect_error "missing name"
    (Accel_config.of_json_result (without_key "name" (valid_accel_json ())))
    "accel_config.name: missing field";
  expect_error "mistyped dims"
    (Accel_config.of_json_result (with_key "dims" (Json.String "4x4x4") (valid_accel_json ())))
    "accel_config.dims";
  expect_error "unknown engine"
    (Accel_config.of_json_result (with_key "engine" (Json.String "v9") (valid_accel_json ())))
    "accel_config.engine: unknown engine v9";
  expect_error "unknown data type"
    (Accel_config.of_json_result
       (with_key "data_type" (Json.String "f13") (valid_accel_json ())))
    "accel_config.data_type";
  expect_error "bad opcode syntax"
    (Accel_config.of_json_result
       (with_key "opcode_map" (Json.String "sA = [send(") (valid_accel_json ())))
    "accel_config.opcode_map";
  expect_error "missing dma field"
    (Accel_config.of_json_result
       (with_key "dma" (Json.Obj [ ("id", Json.Int 0) ]) (valid_accel_json ())))
    "accel_config.dma.input_address: missing field";
  (* consistency violations surface through the same channel *)
  expect_error "undefined selected flow"
    (Accel_config.of_json_result
       (with_key "flow" (Json.String "Zs") (valid_accel_json ())))
    "selected flow Zs is not defined"

let test_config_parser_structured_errors () =
  expect_error "invalid JSON" (Config_parser.parse_string_result "{ nope") "config:";
  expect_error "missing cpu section"
    (Config_parser.parse_string_result "{\"accelerator\": {}}")
    "missing \"cpu\" section";
  expect_error "missing accelerator section"
    (Config_parser.parse_string_result
       "{\"cpu\": {\"frequency_mhz\": 650.0, \"caches\": []}}")
    "missing \"accelerator\" section";
  expect_error "cpu field error"
    (Config_parser.parse_string_result "{\"cpu\": {\"caches\": []}, \"accelerator\": {}}")
    "cpu.frequency_mhz: missing field";
  expect_error "unreadable file"
    (Config_parser.parse_file_result "/nonexistent/config.json")
    "/nonexistent/config.json";
  (* the round trip through to_string stays parseable *)
  let host = Host_config.pynq_z2 in
  let accel = Presets.matmul ~version:Accel_matmul.V4 ~size:8 () in
  match Config_parser.parse_string_result (Config_parser.to_string host accel) with
  | Ok (host', accel') ->
    Alcotest.(check string) "cpu name survives" host.Host_config.cpu_name
      host'.Host_config.cpu_name;
    Alcotest.(check string) "accel name survives" accel.Accel_config.accel_name
      accel'.Accel_config.accel_name
  | Error msg -> Alcotest.fail msg

let test_fuzz_case_structured_errors () =
  expect_error "invalid JSON" (Fuzz_case.of_string_result "{") "case: invalid JSON";
  expect_error "non-object" (Fuzz_case.of_string_result "[1, 2]") "expected a JSON object";
  expect_error "missing field"
    (Fuzz_case.of_string_result "{\"engine\": \"v3\"}")
    "case.size: missing field";
  let valid = Fuzz_gen.case_at ~seed:7 ~index:0 () in
  let line = Json.to_string (Fuzz_case.to_json valid) in
  match Fuzz_case.of_string_result line with
  | Ok case -> Alcotest.(check bool) "round trip" true (Fuzz_case.equal valid case)
  | Error msg -> Alcotest.fail msg

let test_preset_lookup_structured_errors () =
  (* an unknown preset name lists every valid preset *)
  (match Presets.find_by_name "v5_16" with
  | Ok _ -> Alcotest.fail "unknown preset accepted"
  | Error msg ->
    List.iter
      (fun name ->
        Alcotest.(check bool)
          (Printf.sprintf "error lists %s (got: %s)" name msg)
          true (contains msg name))
      Presets.names);
  (* a flow the engine does not support lists the supported flows *)
  (match Presets.find_by_name ~flow:"Cs" "v2_8" with
  | Ok _ -> Alcotest.fail "v2 does not support Cs"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error lists supported flows (got: %s)" msg)
      true
      (contains msg "As" && contains msg "Bs" && contains msg "Ns"));
  expect_error "unknown conv flow" (Presets.find_by_name ~flow:"Cs" "conv2d") "Ws"

let test_workload_spec_structured_errors () =
  expect_error "garbage spec" (Tune_workload.of_spec "cube:1,2,3") "matmul:M,N,K";
  expect_error "missing dims" (Tune_workload.of_spec "matmul:64,64") "matmul";
  expect_error "non-numeric" (Tune_workload.of_spec "matmul:a,b,c") "bad workload spec";
  expect_error "filter larger than input" (Tune_workload.of_spec "conv:4,2,8,3") "conv";
  expect_error "unknown resnet layer"
    (Tune_workload.of_spec "resnet18/999_1_1_1_1")
    "unknown resnet18 layer"

(* ------------------------------------------------------------------ *)
(* Token linearity: the verifier must reject async IR where a transfer
   token is leaked, double-waited, or waited before being produced —
   with a structured [Pass.Pass_failure] naming the offending op.      *)
(* ------------------------------------------------------------------ *)

let verify_only = Pass.make "verify-only" (fun m -> m)

let token_module build =
  Dialects.register_all ();
  let f =
    Func.func_op ~name:"tokens" ~args:[] (fun b _ ->
        build b;
        Func.return_op b [])
  in
  Ir.module_op [ f ]

let expect_pass_failure name m ~op ~fragment =
  match Pass.run_pipeline [ verify_only ] m with
  | exception Pass.Pass_failure { failing_op; message; _ } ->
    Alcotest.(check string) (name ^ ": failing op named") op failing_op;
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions \"%s\" (got: %s)" name fragment message)
      true (contains message fragment)
  | _ -> Alcotest.fail (name ^ ": broken token IR verified clean")

let test_unwaited_token_rejected () =
  expect_pass_failure "leaked token"
    (token_module (fun b -> ignore (Accel.start_send b)))
    ~op:"accel.start_send" ~fragment:"is never waited"

let test_double_waited_token_rejected () =
  expect_pass_failure "double wait"
    (token_module (fun b ->
         let t = Accel.start_send b in
         Accel.wait b ~token:t;
         Accel.wait b ~token:t))
    ~op:"accel.start_send" ~fragment:"consumed 2 times (must be exactly once)"

let test_wait_on_undefined_token_rejected () =
  (* a wait whose operand was never produced trips the SSA check, which
     runs before linearity and points at the wait itself *)
  expect_pass_failure "undefined token"
    (token_module (fun b -> Accel.wait b ~token:(Ir.fresh_value Ty.token)))
    ~op:"accel.wait" ~fragment:"use of undefined value"

(* ------------------------------------------------------------------ *)
(* Serving simulator: malformed streams, policies and scheduler
   parameters must come back as structured [Error]s, never mis-run.    *)
(* ------------------------------------------------------------------ *)

let test_serve_structured_errors () =
  expect_error "unknown policy" (Serve_policy.of_string "warp") "unknown scheduling policy";
  expect_error "unknown model spec"
    (Serve_cost.models_of_specs [ "resnet19" ])
    "resnet19";
  expect_error "empty spec list" (Serve_cost.models_of_specs []) "at least one";
  let stream ?(count = 4) ?(mean_gap = 10.0) ?(models = [ "m" ]) () =
    Serve_request.generate
      { Serve_request.st_seed = 0; st_count = count; st_mean_gap = mean_gap; st_models = models }
  in
  expect_error "negative request count" (stream ~count:(-1) ()) "request count";
  expect_error "zero mean gap" (stream ~mean_gap:0.0 ()) "mean inter-arrival gap";
  expect_error "no models" (stream ~models:[] ()) "at least one model";
  let params ?(accels = 1) ?queue_cap ?(batch_max = 1) () =
    Serve_sim.validate
      {
        Serve_sim.sp_accels = accels;
        sp_policy = Serve_policy.Fifo;
        sp_queue_cap = queue_cap;
        sp_batch_max = batch_max;
      }
  in
  expect_error "zero accelerators" (params ~accels:0 ()) "at least one accelerator";
  expect_error "zero batch limit" (params ~batch_max:0 ()) "batch size limit";
  expect_error "zero queue capacity" (params ~queue_cap:0 ()) "queue capacity";
  (* a non-positive service oracle must fail the run, not hang it *)
  let requests = [ { Serve_request.rq_id = 0; rq_arrival = 0.0; rq_model = "m" } ] in
  expect_error "non-positive service time"
    (Serve_sim.run
       ~service:(fun _ ~batch:_ -> 0.0)
       ~predict:(fun _ -> 1.0)
       {
         Serve_sim.sp_accels = 1;
         sp_policy = Serve_policy.Fifo;
         sp_queue_cap = None;
         sp_batch_max = 1;
       }
       requests)
    "service cycles must be positive"

let test_slo_telemetry_structured_errors () =
  (* every malformed --slo spec must come back as a grammar-citing
     [Error] — the CLI maps these to exit 124 *)
  expect_error "empty spec" (Slo.parse "   ") "empty SLO spec";
  expect_error "unknown objective" (Slo.parse "latency<=10") "unknown SLO objective";
  expect_error "unsupported percentile" (Slo.parse "p42<=10")
    "unsupported latency percentile p42";
  expect_error "missing comparator" (Slo.parse "p99") "malformed latency objective";
  expect_error "wrong latency comparator" (Slo.parse "p99<10") "latency objectives use <=";
  expect_error "non-positive limit" (Slo.parse "p99<=0") "latency limit must be positive";
  expect_error "malformed limit" (Slo.parse "p99<=fast") "malformed latency limit";
  expect_error "wrong availability comparator"
    (Slo.parse "availability=99%")
    "availability objectives use >=";
  expect_error "availability above 100%"
    (Slo.parse "availability>=150%")
    "strictly between 0 and 100%";
  expect_error "malformed target" (Slo.parse "availability>=often")
    "malformed availability target";
  expect_error "zero burn window" (Slo.parse "p99<=10@0") "burn-rate window count must be >= 1";
  expect_error "malformed burn window" (Slo.parse "p99<=10@soon")
    "malformed burn-rate window count";
  (* valid forms normalise to the canonical rendering *)
  (match Slo.parse " p99<=250000 " with
  | Ok spec -> Alcotest.(check string) "canonical latency" "p99<=250000@4" (Slo.to_string spec)
  | Error msg -> Alcotest.fail msg);
  (match Slo.parse "availability>=0.999@6" with
  | Ok spec ->
    Alcotest.(check string) "canonical availability" "availability>=99.9%@6"
      (Slo.to_string spec)
  | Error msg -> Alcotest.fail msg);
  (* collector construction rejects degenerate parameters *)
  expect_error "zero window width" (Timeseries.create ~window:0.0) "window width must be positive";
  expect_error "negative telemetry window"
    (Serve_telemetry.create ~window:(-5.0) ~accels:1)
    "window width must be positive";
  expect_error "no accelerators"
    (Serve_telemetry.create ~window:100.0 ~accels:0)
    "accels >= 1"

let tests =
  [
    Alcotest.test_case "codegen rejects over-deep flows" `Quick test_codegen_rejects_deep_flow;
    Alcotest.test_case "send_idx code generation" `Quick test_send_idx_codegen;
    Alcotest.test_case "device rejects premature receive" `Quick
      test_device_rejects_protocol_violation;
    Alcotest.test_case "DMA region overflow detected" `Quick test_dma_region_overflow_detected;
    Alcotest.test_case "mismatched micro-ISA rejected" `Quick test_wrong_engine_opcodes_rejected;
    Alcotest.test_case "facade reports unoffloadable ops" `Quick
      test_facade_reports_unoffloadable;
    Alcotest.test_case "perf counters: structured parse errors" `Quick
      test_perf_counters_structured_errors;
    Alcotest.test_case "accel config: structured parse errors" `Quick
      test_accel_config_structured_errors;
    Alcotest.test_case "config parser: structured parse errors" `Quick
      test_config_parser_structured_errors;
    Alcotest.test_case "fuzz case: structured parse errors" `Quick
      test_fuzz_case_structured_errors;
    Alcotest.test_case "preset lookup: structured errors" `Quick
      test_preset_lookup_structured_errors;
    Alcotest.test_case "workload specs: structured errors" `Quick
      test_workload_spec_structured_errors;
    Alcotest.test_case "verifier rejects unwaited token" `Quick test_unwaited_token_rejected;
    Alcotest.test_case "verifier rejects double-waited token" `Quick
      test_double_waited_token_rejected;
    Alcotest.test_case "verifier rejects wait on undefined token" `Quick
      test_wait_on_undefined_token_rejected;
    Alcotest.test_case "serving: structured errors" `Quick test_serve_structured_errors;
    Alcotest.test_case "slo + telemetry: structured errors" `Quick
      test_slo_telemetry_structured_errors;
  ]
