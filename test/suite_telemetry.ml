(* Unit tests for the observability stack under the serving simulator:
   the windowed time-series collector (window indexing, aggregation
   semantics, nearest-rank percentiles, sparklines), the SLO burn-rate
   evaluator (budget math, multi-window fire condition, hysteresis),
   and the Chrome-trace counter-track export. *)

let mk ?(window = 10.0) () =
  match Timeseries.create ~window with
  | Ok t -> t
  | Error msg -> Alcotest.fail msg

let curve = Alcotest.(array (option (float 1e-9)))

let test_window_indexing () =
  let t = mk () in
  Timeseries.record t ~series:"a" ~t:0.0 1.0;
  Timeseries.record t ~series:"a" ~t:9.5 2.0;
  (* a boundary timestamp opens the next window: floor(10/10) = 1 *)
  Timeseries.record t ~series:"a" ~t:10.0 4.0;
  (* negative timestamps clamp into window 0 *)
  Timeseries.record t ~series:"a" ~t:(-3.0) 8.0;
  Timeseries.record t ~series:"a" ~t:35.0 16.0;
  Alcotest.(check int) "n_windows" 4 (Timeseries.n_windows t);
  Alcotest.(check (float 0.0)) "window 3 start" 30.0 (Timeseries.window_start t 3);
  Alcotest.check curve "per-window sums"
    [| Some 11.0; Some 4.0; None; Some 16.0 |]
    (Timeseries.values t "a");
  Alcotest.(check (array int)) "per-window counts" [| 3; 1; 0; 1 |] (Timeseries.counts t "a");
  Alcotest.(check (float 1e-9)) "reconciliation total" 31.0 (Timeseries.total t "a");
  Alcotest.(check (float 1e-9)) "unknown series total" 0.0 (Timeseries.total t "zzz")

let test_aggregations () =
  let t = mk () in
  List.iter
    (fun (tm, v) ->
      Timeseries.record t ~agg:Timeseries.Mean ~series:"mean" ~t:tm v;
      Timeseries.record t ~agg:Timeseries.Max ~series:"max" ~t:tm v)
    [ (1.0, 4.0); (2.0, 8.0); (3.0, 6.0) ];
  (* Last under out-of-order recording: the largest timestamp wins,
     ties broken towards the most recently recorded observation *)
  Timeseries.record t ~agg:Timeseries.Last ~series:"last" ~t:5.0 1.0;
  Timeseries.record t ~agg:Timeseries.Last ~series:"last" ~t:2.0 7.0;
  Timeseries.record t ~agg:Timeseries.Last ~series:"last" ~t:5.0 3.0;
  let first name = (Timeseries.values t name).(0) in
  Alcotest.(check (option (float 1e-9))) "mean" (Some 6.0) (first "mean");
  Alcotest.(check (option (float 1e-9))) "max" (Some 8.0) (first "max");
  Alcotest.(check (option (float 1e-9))) "last" (Some 3.0) (first "last");
  Alcotest.(check (list string)) "first-recorded order" [ "mean"; "max"; "last" ]
    (Timeseries.series_names t)

let test_shape_mismatch () =
  let t = mk () in
  Timeseries.record t ~series:"s" ~t:0.0 1.0;
  Timeseries.observe t ~series:"d" ~t:0.0 1.0;
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": shape mismatch accepted")
  in
  expect_invalid "observe on scalar" (fun () -> Timeseries.observe t ~series:"s" ~t:1.0 1.0);
  expect_invalid "record on dist" (fun () -> Timeseries.record t ~series:"d" ~t:1.0 1.0);
  expect_invalid "aggregation change" (fun () ->
      Timeseries.record t ~agg:Timeseries.Max ~series:"s" ~t:1.0 1.0);
  expect_invalid "values on dist" (fun () -> ignore (Timeseries.values t "d"));
  expect_invalid "dist_percentile on scalar" (fun () ->
      ignore (Timeseries.dist_percentile t "s" ~p:50))

let test_percentiles () =
  Alcotest.(check (option (float 0.0))) "empty list" None (Timeseries.percentile 99 []);
  let xs = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check (option (float 0.0))) "p50 of 5" (Some 3.0) (Timeseries.percentile 50 xs);
  Alcotest.(check (option (float 0.0))) "p99 of 5 = max" (Some 5.0)
    (Timeseries.percentile 99 xs);
  Alcotest.(check (option (float 0.0))) "p1 = min" (Some 1.0) (Timeseries.percentile 1 xs);
  let t = mk () in
  (* the window-2 sample lands first: out-of-order wrt recording *)
  Timeseries.observe t ~series:"lat" ~t:25.0 100.0;
  List.iter (fun v -> Timeseries.observe t ~series:"lat" ~t:v v) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.check curve "per-window p50"
    [| Some 2.0; None; Some 100.0 |]
    (Timeseries.dist_percentile t "lat" ~p:50);
  Alcotest.check curve "rolling p99 pools trailing windows"
    [| Some 4.0; Some 4.0; Some 100.0 |]
    (Timeseries.dist_rolling_percentile t "lat" ~p:99 ~windows:3);
  Alcotest.(check (array (pair int int)))
    "counts above a strict limit"
    [| (4, 2); (0, 0); (1, 1) |]
    (Timeseries.dist_counts_above t "lat" ~limit:2.0)

let test_sparkline () =
  Alcotest.(check string) "empty curve" "" (Timeseries.sparkline [||]);
  Alcotest.(check string) "empty window, floor, peak" " .@"
    (Timeseries.sparkline [| None; Some 0.0; Some 10.0 |]);
  Alcotest.(check string) "all-zero curve stays on the floor" ".."
    (Timeseries.sparkline [| Some 0.0; Some 0.0 |]);
  (* resampling takes each output cell's maximum: a one-window burst
     survives a 4-to-2 downsample *)
  Alcotest.(check string) "burst survives resampling" "@."
    (Timeseries.sparkline ~width:2 [| Some 0.0; Some 9.0; Some 0.0; Some 0.0 |])

(* ------------------------------------------------------------------ *)
(* SLO burn-rate evaluation                                            *)
(* ------------------------------------------------------------------ *)

let wd total bad = { Slo.wd_total = total; wd_bad = bad }

let spec_of text =
  match Slo.parse text with Ok s -> s | Error msg -> Alcotest.fail msg

let test_burn_math () =
  let spec = spec_of "p99<=100@2" in
  Alcotest.(check (float 1e-9)) "latency budget" 0.01 (Slo.budget spec);
  Alcotest.(check (float 1e-9)) "availability budget" 0.01
    (Slo.budget (spec_of "availability>=99%"));
  (* 2 bad of 100 against a 1% budget burns at 2x *)
  let ev = Slo.evaluate spec [| wd 100 2 |] in
  (match ev.Slo.sv_windows with
  | [ w ] ->
    Alcotest.(check (float 1e-9)) "short burn" 2.0 w.Slo.we_burn;
    Alcotest.(check (float 1e-9)) "long burn" 2.0 w.Slo.we_long_burn
  | _ -> Alcotest.fail "one window expected");
  Alcotest.(check int) "fired" 1 ev.Slo.sv_fired;
  Alcotest.(check (float 1e-9)) "budget spent" 2.0 ev.Slo.sv_budget_spent;
  Alcotest.(check bool) "not met" false (Slo.met ev);
  (* an empty run burns nothing *)
  let idle = Slo.evaluate spec [| wd 0 0; wd 0 0 |] in
  Alcotest.(check (float 1e-9)) "idle budget spent" 0.0 idle.Slo.sv_budget_spent;
  Alcotest.(check bool) "idle met" true (Slo.met idle)

let test_fire_needs_short_and_long () =
  (* a hot short window alone must not fire while the event-weighted
     long burn is still below the threshold *)
  let spec = spec_of "p99<=100@2" in
  let ev = Slo.evaluate spec [| wd 100 0; wd 100 2 |] in
  Alcotest.(check int) "no alert" 0 ev.Slo.sv_fired;
  (match List.rev ev.Slo.sv_windows with
  | last :: _ ->
    Alcotest.(check (float 1e-9)) "short burn hot" 2.0 last.Slo.we_burn;
    Alcotest.(check (float 1e-9)) "long burn cool" 1.0 last.Slo.we_long_burn
  | [] -> Alcotest.fail "windows expected");
  Alcotest.(check bool) "met at exactly 100% budget" true (Slo.met ev)

let test_hysteresis () =
  (* fire at 2x, resolve below 1x: a long burn hovering between the two
     thresholds must keep the alert latched *)
  let spec = spec_of "p99<=100@2" in
  let ev = Slo.evaluate spec [| wd 100 4; wd 100 1; wd 100 0 |] in
  (match ev.Slo.sv_transitions with
  | [ t1; t2 ] ->
    Alcotest.(check int) "fires in window 0" 0 t1.Slo.tr_window;
    Alcotest.(check bool) "firing transition" true (t1.Slo.tr_state = Slo.Firing);
    Alcotest.(check int) "stays latched through window 1, resolves in 2" 2 t2.Slo.tr_window;
    Alcotest.(check bool) "resolved transition" true (t2.Slo.tr_state = Slo.Budget_ok)
  | ts -> Alcotest.fail (Printf.sprintf "expected 2 transitions, got %d" (List.length ts)));
  Alcotest.(check int) "fired once" 1 ev.Slo.sv_fired;
  Alcotest.(check bool) "final state ok" true (ev.Slo.sv_final = Slo.Budget_ok);
  (* the rendering names the transition windows *)
  let text = Slo.render ev in
  let contains hay needle =
    let nl = String.length needle in
    let rec go i = i + nl <= String.length hay && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render mentions FIRING" true (contains text "FIRING");
  Alcotest.(check bool) "render mentions resolution" true (contains text "resolved")

(* ------------------------------------------------------------------ *)
(* Counter tracks in the Chrome-trace export                           *)
(* ------------------------------------------------------------------ *)

let test_counter_event_json () =
  let tr = Trace.create () in
  Trace.enable tr;
  Trace.counter tr ~track:Trace.serve_telemetry_track ~ts:1000.0 "serve.queue_depth" 3.0;
  let events = Trace.events tr in
  Alcotest.(check int) "one event recorded" 1 (List.length events);
  let doc = Chrome_trace.to_json ~cpu_freq_mhz:100.0 events in
  let evs = Json.to_list (Json.member "traceEvents" doc) in
  let counter =
    List.find
      (fun e ->
        match Json.member_opt "ph" e with Some (Json.String "C") -> true | _ -> false)
      evs
  in
  Alcotest.(check string) "series name" "serve.queue_depth"
    (Json.to_str (Json.member "name" counter));
  Alcotest.(check int) "telemetry track" Trace.serve_telemetry_track
    (Json.to_int (Json.member "tid" counter));
  Alcotest.(check (float 1e-9)) "cycles scale to microseconds" 10.0
    (Json.to_float (Json.member "ts" counter));
  Alcotest.(check (float 1e-9)) "value rides in args" 3.0
    (Json.to_float (Json.member "value" (Json.member "args" counter)))

let tests =
  [
    Alcotest.test_case "timeseries: window indexing" `Quick test_window_indexing;
    Alcotest.test_case "timeseries: aggregation semantics" `Quick test_aggregations;
    Alcotest.test_case "timeseries: shape mismatches rejected" `Quick test_shape_mismatch;
    Alcotest.test_case "timeseries: nearest-rank percentiles" `Quick test_percentiles;
    Alcotest.test_case "timeseries: sparkline rendering" `Quick test_sparkline;
    Alcotest.test_case "slo: burn-rate math" `Quick test_burn_math;
    Alcotest.test_case "slo: fire needs short and long burn" `Quick
      test_fire_needs_short_and_long;
    Alcotest.test_case "slo: alert hysteresis" `Quick test_hysteresis;
    Alcotest.test_case "trace: telemetry counter events" `Quick test_counter_event_json;
  ]
