let () =
  Dialects.register_all ();
  Alcotest.run "axi4mlir"
    [
      ("support", Suite_support.tests);
      ("json", Suite_json.tests);
      ("ty-affine", Suite_ty_affine.tests);
      ("opcode", Suite_opcode.tests);
      ("ir", Suite_ir.tests);
      ("parser", Suite_parser.tests);
      ("cache", Suite_cache.tests);
      ("sim", Suite_sim.tests);
      ("obs", Suite_obs.tests);
      ("critpath", Suite_critpath.tests);
      ("metrics", Suite_metrics.tests);
      ("telemetry", Suite_telemetry.tests);
      ("runtime", Suite_runtime.tests);
      ("config", Suite_config.tests);
      ("transforms", Suite_transforms.tests);
      ("interp", Suite_interp.tests);
      ("e2e", Suite_e2e.tests);
      ("workloads", Suite_workloads.tests);
      ("extensions", Suite_extensions.tests);
      ("async", Suite_async.tests);
      ("integration", Suite_integration.tests);
      ("multi-accel", Suite_multi_accel.tests);
      ("negative", Suite_negative.tests);
      ("tuner", Suite_tuner.tests);
      ("fuzz", Suite_fuzz.tests);
      ("serve", Suite_serve.tests);
      ("graph", Suite_graph.tests);
      ("platform", Suite_platform.tests);
    ]
