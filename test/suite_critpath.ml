(* Tests for the critical-path profiler and the perf doctor: the
   backward walk over hand-built event DAGs (exact segment extents and
   categories), the what-if estimator arithmetic, the exactness
   invariants on real measured runs (blocking and double-buffered), the
   doctor's rendering/remarks/metrics/trace surfaces, and a golden file
   pinning the axi4mlir-critpath-v1 artifact for one fixed workload. *)

let iv ?(agent = "host") ?not_before ?dep ?(mark = false) ?(jump = false)
    ?(offload = false) ~seq ~label ~category start finish =
  {
    Critpath.iv_seq = seq;
    iv_agent = agent;
    iv_label = label;
    iv_start = start;
    iv_finish = finish;
    iv_not_before = (match not_before with Some nb -> nb | None -> start);
    iv_dep = dep;
    iv_mark = mark;
    iv_jump = jump;
    iv_category = category;
    iv_offload = offload;
  }

let input ?(host_end = 0.0) ?(dma_transfer = 0.0) ?(accel_busy = 0.0) ~makespan
    intervals =
  {
    Critpath.in_makespan = makespan;
    in_host_end = host_end;
    in_dma_transfer = dma_transfer;
    in_accel_busy = accel_busy;
    in_intervals = intervals;
  }

let analyze_ok inp =
  match Critpath.analyze inp with
  | Ok report -> report
  | Error msg -> Alcotest.failf "analyze failed: %s" msg

let check_segment ~what (start, finish, category) (sg : Critpath.segment) =
  Alcotest.(check (float 0.0)) (what ^ " start") start sg.Critpath.sg_start;
  Alcotest.(check (float 0.0)) (what ^ " finish") finish sg.Critpath.sg_finish;
  Alcotest.(check string)
    (what ^ " category")
    (Critpath.category_name category)
    (Critpath.category_name sg.Critpath.sg_category)

let attribution report category =
  List.assoc category report.Critpath.rp_attribution

let ceiling report name =
  List.find_map
    (fun (w : Critpath.whatif) ->
      if w.Critpath.wf_name = name then Some w.Critpath.wf_speedup else None)
    report.Critpath.rp_whatifs
  |> Option.join

(* ------------------------------------------------------------------ *)
(* Hand-built DAGs                                                     *)
(* ------------------------------------------------------------------ *)

let test_empty_run () =
  let report = analyze_ok (input ~makespan:0.0 []) in
  Alcotest.(check int) "empty path" 0 (List.length report.Critpath.rp_segments);
  Alcotest.(check string) "idle run is host-bound" "host"
    (Critpath.resource_name report.Critpath.rp_binding);
  List.iter
    (fun (w : Critpath.whatif) ->
      Alcotest.(check bool) (w.Critpath.wf_name ^ " degenerates") true
        (w.Critpath.wf_speedup = None))
    report.Critpath.rp_whatifs

let test_host_only_run () =
  let report = analyze_ok (input ~makespan:100.0 ~host_end:100.0 []) in
  (match report.Critpath.rp_segments with
  | [ sg ] -> check_segment ~what:"whole run" (0.0, 100.0, Critpath.Host_compute) sg
  | segs -> Alcotest.failf "expected 1 segment, got %d" (List.length segs));
  Alcotest.(check (float 0.0)) "all cycles are host compute" 100.0
    (attribution report Critpath.Host_compute);
  Alcotest.(check string) "host-bound" "host"
    (Critpath.resource_name report.Critpath.rp_binding);
  Alcotest.(check (option (float 1e-9))) "perfect overlap cannot help" (Some 1.0)
    (ceiling report "perfect-overlap")

(* A token round trip as Dma_engine records it: the host programs a
   send (mark), the channel carries it (agent event), the device
   computes off the token (dep edge), the result streams back (dep
   edge), the host stalls on the receive token (jump mark) and drains
   the poll, then finishes serially. *)
let token_roundtrip_input () =
  input ~makespan:100.0 ~host_end:100.0 ~dma_transfer:35.0 ~accel_busy:50.0
    [
      iv ~seq:0 ~mark:true ~label:"program_send" ~category:Critpath.Dma_send 0.0 10.0;
      iv ~seq:1 ~agent:"dma0" ~label:"send" ~category:Critpath.Dma_send 10.0 30.0;
      iv ~seq:2 ~agent:"dev0" ~dep:1 ~label:"compute" ~category:Critpath.Accel_compute
        30.0 80.0;
      iv ~seq:3 ~agent:"dma0" ~dep:2 ~label:"recv" ~category:Critpath.Dma_recv 80.0 95.0;
      iv ~seq:4 ~mark:true ~jump:true ~offload:true ~dep:3 ~label:"token_stall"
        ~category:Critpath.Wait_stall 40.0 95.0;
      iv ~seq:5 ~mark:true ~offload:true ~label:"dma_poll"
        ~category:Critpath.Wait_stall 95.0 98.0;
    ]

let test_token_roundtrip_walk () =
  let report = analyze_ok (token_roundtrip_input ()) in
  (match report.Critpath.rp_segments with
  | [ a; b; c; d; e; f ] ->
    check_segment ~what:"programming" (0.0, 10.0, Critpath.Dma_send) a;
    check_segment ~what:"outbound transfer" (10.0, 30.0, Critpath.Dma_send) b;
    check_segment ~what:"device compute" (30.0, 80.0, Critpath.Accel_compute) c;
    check_segment ~what:"inbound transfer" (80.0, 95.0, Critpath.Dma_recv) d;
    check_segment ~what:"drain poll" (95.0, 98.0, Critpath.Wait_stall) e;
    check_segment ~what:"host tail" (98.0, 100.0, Critpath.Host_compute) f;
    (* the jump mark routed the walk into the agent chain: the stalled
       window is attributed to the transfer and the device, never to
       the shadowing token_stall mark *)
    Alcotest.(check string) "transfer reached through the dep edge" "dep"
      (Critpath.bound_name d.Critpath.sg_bound)
  | segs -> Alcotest.failf "expected 6 segments, got %d" (List.length segs));
  Alcotest.(check (float 0.0)) "send attribution" 30.0
    (attribution report Critpath.Dma_send);
  Alcotest.(check (float 0.0)) "recv attribution" 15.0
    (attribution report Critpath.Dma_recv);
  Alcotest.(check (float 0.0)) "compute attribution" 50.0
    (attribution report Critpath.Accel_compute);
  Alcotest.(check (float 0.0)) "stall attribution" 3.0
    (attribution report Critpath.Wait_stall);
  Alcotest.(check (float 0.0)) "host attribution" 2.0
    (attribution report Critpath.Host_compute);
  Alcotest.(check string) "the device binds this path" "accel"
    (Critpath.resource_name report.Critpath.rp_binding)

let test_token_roundtrip_whatifs () =
  let report = analyze_ok (token_roundtrip_input ()) in
  (* zero-cost DMA removes send(30) + recv(15) + stall(3) = 48 of 100 *)
  Alcotest.(check (option (float 1e-9))) "zero-cost-dma" (Some (100.0 /. 52.0))
    (ceiling report "zero-cost-dma");
  (* no transfer queued behind its channel: no slack to reclaim *)
  Alcotest.(check (option (float 1e-9))) "infinite-dma-channels" (Some 1.0)
    (ceiling report "infinite-dma-channels");
  (* the host sheds its offloadable marks (55 + 3), floor 42; the
     device (50 cycles busy) is then the busiest leg *)
  Alcotest.(check (option (float 1e-9))) "perfect-overlap" (Some 2.0)
    (ceiling report "perfect-overlap")

(* Three transfers queued on one channel; the second could have started
   30 cycles earlier on an idle channel. The walk records that slack on
   the agent-bound segment and infinite-dma-channels reclaims it. *)
let test_channel_slack () =
  let inp =
    input ~makespan:130.0 ~host_end:0.0 ~dma_transfer:100.0 ~accel_busy:30.0
      [
        iv ~seq:0 ~agent:"dma0" ~label:"send" ~category:Critpath.Dma_send 0.0 40.0;
        iv ~seq:1 ~agent:"dma0" ~not_before:10.0 ~label:"send"
          ~category:Critpath.Dma_send 40.0 90.0;
        iv ~seq:2 ~agent:"dma0" ~not_before:20.0 ~label:"send"
          ~category:Critpath.Dma_send 90.0 100.0;
        iv ~seq:3 ~agent:"dev0" ~dep:2 ~label:"compute" ~category:Critpath.Accel_compute
          100.0 130.0;
      ]
  in
  let report = analyze_ok inp in
  Alcotest.(check int) "four segments" 4 (List.length report.Critpath.rp_segments);
  let queued = List.nth report.Critpath.rp_segments 1 in
  Alcotest.(check string) "queued transfer is agent-bound" "agent"
    (Critpath.bound_name queued.Critpath.sg_bound);
  Alcotest.(check (float 0.0)) "its slack is recorded" 30.0 queued.Critpath.sg_slack;
  Alcotest.(check string) "transfer-dominated path is dma-bound" "dma"
    (Critpath.resource_name report.Critpath.rp_binding);
  Alcotest.(check (option (float 1e-9))) "infinite channels reclaim the slack"
    (Some (130.0 /. 100.0))
    (ceiling report "infinite-dma-channels");
  Alcotest.(check (option (float 1e-9))) "zero-cost-dma leaves the compute"
    (Some (130.0 /. 30.0))
    (ceiling report "zero-cost-dma")

let test_verify_rejects_corruption () =
  let inp = token_roundtrip_input () in
  let report = analyze_ok inp in
  (match Critpath.verify inp report with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "verify rejected a clean report: %s" msg);
  let gapped = { report with Critpath.rp_segments = List.tl report.Critpath.rp_segments } in
  Alcotest.(check bool) "verify catches a dropped segment" true
    (Result.is_error (Critpath.verify inp gapped));
  let inflated =
    {
      report with
      Critpath.rp_attribution =
        List.map (fun (c, v) -> (c, v +. 1.0)) report.Critpath.rp_attribution;
    }
  in
  Alcotest.(check bool) "verify catches drifted attribution" true
    (Result.is_error (Critpath.verify inp inflated))

(* ------------------------------------------------------------------ *)
(* Real measured runs                                                  *)
(* ------------------------------------------------------------------ *)

let measured_run ?(size = 4) ?(flow = "Cs") ?(dims = 8) ~double_buffer () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size ~flow () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:dims ~n:dims ~k:dims in
  let options = { Axi4mlir.default_codegen with Axi4mlir.double_buffer } in
  let ir = Axi4mlir.compile_matmul bench ~options ~m:dims ~n:dims ~k:dims () in
  let counters =
    Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
  in
  (bench, counters)

let check_run_exactness ~what ~double_buffer () =
  let bench, counters = measured_run ~double_buffer () in
  let inp = Soc.critpath_input bench.Axi4mlir.soc in
  let report = analyze_ok inp in
  Alcotest.(check (float 0.0))
    (what ^ ": path length is the reported task clock")
    counters.Perf_counters.cycles report.Critpath.rp_makespan;
  (match Critpath.verify inp report with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg);
  report

let test_blocking_run_exact () =
  let report = check_run_exactness ~what:"blocking" ~double_buffer:false () in
  (* a blocking schedule never waits on a token *)
  Alcotest.(check (float 0.0)) "no status checks on a blocking path" 0.0
    (attribution report Critpath.Status_check)

let test_double_buffered_run_exact () =
  ignore (check_run_exactness ~what:"double-buffered" ~double_buffer:true ())

(* ------------------------------------------------------------------ *)
(* The doctor's surfaces                                               *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let diagnose_run ?top_k ~double_buffer () =
  let bench, counters = measured_run ~double_buffer () in
  match Doctor.diagnose ?top_k (Soc.critpath_input bench.Axi4mlir.soc) with
  | Ok dg -> (bench, counters, dg)
  | Error msg -> Alcotest.failf "diagnose failed: %s" msg

let test_doctor_render () =
  let _, _, dg = diagnose_run ~top_k:3 ~double_buffer:false () in
  Alcotest.(check bool) "top-k respected" true (List.length dg.Doctor.dg_top <= 3);
  let text = Doctor.render dg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("diagnosis mentions " ^ needle) true (contains text needle))
    [ "binding resource"; "Critical-path attribution"; "What-if ceilings"; "host_compute" ];
  Alcotest.(check bool) "diagnosis is never empty" true (String.trim text <> "")

let test_doctor_json_schema () =
  let _, counters, dg = diagnose_run ~double_buffer:false () in
  let doc = Doctor.to_json dg in
  Alcotest.(check string) "schema tag" "axi4mlir-critpath-v1"
    (Json.to_str (Json.member "schema" doc));
  Alcotest.(check (float 0.0)) "makespan field" counters.Perf_counters.cycles
    (Json.to_float (Json.member "makespan_cycles" doc));
  let attribution = Json.member "attribution" doc in
  List.iter
    (fun cat ->
      match attribution with
      | Json.Obj fields ->
        Alcotest.(check bool)
          ("attribution names " ^ Critpath.category_name cat)
          true
          (List.mem_assoc (Critpath.category_name cat) fields)
      | _ -> Alcotest.fail "attribution is not an object")
    Critpath.categories;
  let path = Json.to_list (Json.member "critical_path" doc) in
  Alcotest.(check bool) "critical path serialised" true (path <> []);
  let binding = Json.to_str (Json.member "binding_resource" doc) in
  Alcotest.(check bool) "binding resource is a known name" true
    (List.mem binding [ "host"; "dma"; "accel" ])

let test_doctor_remarks_and_metrics () =
  let _, _, dg = diagnose_run ~double_buffer:false () in
  Remarks.enable ();
  Metrics.enable Metrics.default;
  Metrics.reset Metrics.default;
  Doctor.emit_remarks ~loc:"unit" dg;
  Doctor.emit_metrics dg;
  let remarks = Remarks.all () in
  Remarks.disable ();
  Alcotest.(check bool) "a binding-resource remark lands" true
    (List.exists (fun (r : Remarks.t) -> r.Remarks.r_name = "binding-resource") remarks);
  Alcotest.(check bool) "speedup-ceiling remarks land" true
    (List.exists (fun (r : Remarks.t) -> r.Remarks.r_name = "speedup-ceiling") remarks);
  let critpath_cycles = Metrics.total "doctor.critpath_cycles" in
  Metrics.disable Metrics.default;
  Alcotest.(check bool)
    (Printf.sprintf "doctor.critpath_cycles totals the makespan (%.1f)" critpath_cycles)
    true
    (Float.abs (critpath_cycles -. dg.Doctor.dg_report.Critpath.rp_makespan)
    <= 1e-6 *. Float.max 1.0 dg.Doctor.dg_report.Critpath.rp_makespan)

let test_doctor_trace_highlight () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Cs" () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:8 ~n:8 ~k:8 in
  let ir = Axi4mlir.compile_matmul bench ~m:8 ~n:8 ~k:8 () in
  let tracer = Axi4mlir.enable_tracing bench in
  let _ = Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ir ~a ~b ~c) in
  let before = List.length (Trace.events tracer) in
  let dg =
    match Doctor.diagnose (Soc.critpath_input bench.Axi4mlir.soc) with
    | Ok dg -> dg
    | Error msg -> Alcotest.failf "diagnose failed: %s" msg
  in
  Doctor.annotate_trace tracer dg;
  let events = Trace.events tracer in
  Alcotest.(check bool) "annotation adds events" true (List.length events > before);
  let highlights =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.ev_track = Trace.critpath_track
        &&
        match e.Trace.ev_kind with Trace.Complete _ -> true | _ -> false)
      events
  in
  Alcotest.(check int) "one highlight slice per path segment"
    (List.length dg.Doctor.dg_report.Critpath.rp_segments)
    (List.length highlights);
  (* consecutive segments are connected by flow arrows with fresh ids *)
  let flow_ids =
    List.filter_map
      (fun (e : Trace.event) ->
        if e.Trace.ev_track <> Trace.critpath_track then None
        else
          match e.Trace.ev_kind with
          | Trace.Flow_start id -> Some id
          | _ -> None)
      events
  in
  let expected_arrows =
    max 0 (List.length dg.Doctor.dg_report.Critpath.rp_segments - 1)
  in
  Alcotest.(check int) "one arrow per handoff" expected_arrows (List.length flow_ids);
  Alcotest.(check int) "arrow ids are unique"
    (List.length flow_ids)
    (List.length (List.sort_uniq compare flow_ids))

(* ------------------------------------------------------------------ *)
(* Golden artifact                                                     *)
(* ------------------------------------------------------------------ *)

(* Pins the axi4mlir-critpath-v1 artifact byte-for-byte for one fixed
   workload/config — the simulator is deterministic, so any diff means
   either the cost model or the analysis changed. Regenerate after an
   intentional change with:
     dune exec bin/axi4mlir_run.exe -- \
       --config examples/configs/v3_16_cs.json --matmul 16,16,16 \
       --critical-path test/golden/critpath_v3_16_cs_16.json *)
let test_golden_artifact () =
  let host, accel =
    Config_parser.parse_file
      (Filename.concat (Filename.concat ".." "examples/configs") "v3_16_cs.json")
  in
  let bench = Axi4mlir.create ~host accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:16 ~n:16 ~k:16 in
  let ir = Axi4mlir.compile_matmul bench ~m:16 ~n:16 ~k:16 () in
  let _ = Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ir ~a ~b ~c) in
  let dg =
    match Doctor.diagnose (Soc.critpath_input bench.Axi4mlir.soc) with
    | Ok dg -> dg
    | Error msg -> Alcotest.failf "diagnose failed: %s" msg
  in
  let path = Filename.concat "golden" "critpath_v3_16_cs_16.json" in
  let ic = open_in_bin path in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let fresh = Json.to_string ~indent:1 (Doctor.to_json dg) ^ "\n" in
  Alcotest.(check string) "critpath artifact matches the golden file" golden fresh

let tests =
  [
    Alcotest.test_case "empty run" `Quick test_empty_run;
    Alcotest.test_case "host-only run" `Quick test_host_only_run;
    Alcotest.test_case "token round trip: walk" `Quick test_token_roundtrip_walk;
    Alcotest.test_case "token round trip: what-ifs" `Quick test_token_roundtrip_whatifs;
    Alcotest.test_case "channel slack feeds infinite-dma" `Quick test_channel_slack;
    Alcotest.test_case "verify rejects corruption" `Quick test_verify_rejects_corruption;
    Alcotest.test_case "blocking run: exact invariants" `Quick test_blocking_run_exact;
    Alcotest.test_case "double-buffered run: exact invariants" `Quick
      test_double_buffered_run_exact;
    Alcotest.test_case "doctor renders a diagnosis" `Quick test_doctor_render;
    Alcotest.test_case "doctor JSON carries the v1 schema" `Quick test_doctor_json_schema;
    Alcotest.test_case "doctor remarks and metrics" `Quick test_doctor_remarks_and_metrics;
    Alcotest.test_case "doctor highlights the trace" `Quick test_doctor_trace_highlight;
    Alcotest.test_case "golden: critpath artifact" `Quick test_golden_artifact;
  ]
