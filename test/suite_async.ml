(* Tests for the asynchronous DMA timeline and the double-buffer
   software-pipelining pass: timeline determinism and tie-breaking,
   bit-compatibility of the blocking path, and the end-to-end overlap
   win (identical outputs, identical DMA traffic, fewer cycles). *)

let ( => ) name b = Alcotest.(check bool) name true b

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_timeline_determinism () =
  let build () =
    let tl = Timeline.create () in
    let dma = Timeline.add_agent tl ~name:"dma0" in
    let acc = Timeline.add_agent tl ~name:"accel" in
    let f1 = Timeline.schedule tl dma ~not_before:10.0 ~duration:100.0 ~label:"send" () in
    let f2 = Timeline.schedule tl acc ~not_before:f1 ~duration:50.0 ~label:"compute" () in
    let f3 = Timeline.schedule tl dma ~not_before:20.0 ~duration:30.0 ~label:"send" () in
    ( (f1, f2, f3),
      Timeline.makespan tl,
      List.map (fun e -> (e.Timeline.ev_label, e.Timeline.ev_start)) (Timeline.events tl)
    )
  in
  let a = build () and b = build () in
  Alcotest.(check bool) "two identical runs agree exactly" true (a = b);
  let (f1, f2, f3), makespan, _ = a in
  Alcotest.(check (float 0.0)) "first transfer" 110.0 f1;
  Alcotest.(check (float 0.0)) "dependent compute" 160.0 f2;
  (* the channel is busy until 110 even though the request came at 20 *)
  Alcotest.(check (float 0.0)) "channel serialises" 140.0 f3;
  Alcotest.(check (float 0.0)) "makespan is the last busy agent" 160.0 makespan

let test_timeline_tie_breaking () =
  (* Two events starting at the same instant order by issue sequence,
     not by agent identity or label. *)
  let tl = Timeline.create () in
  let a1 = Timeline.add_agent tl ~name:"z-agent" in
  let a2 = Timeline.add_agent tl ~name:"a-agent" in
  ignore (Timeline.schedule tl a1 ~not_before:5.0 ~duration:1.0 ~label:"zzz" ());
  ignore (Timeline.schedule tl a2 ~not_before:5.0 ~duration:1.0 ~label:"aaa" ());
  match Timeline.events tl with
  | [ e1; e2 ] ->
    Alcotest.(check string) "issue order wins the tie" "zzz" e1.Timeline.ev_label;
    Alcotest.(check string) "second issue second" "aaa" e2.Timeline.ev_label
  | es -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d" (List.length es))

let test_timeline_reset () =
  let tl = Timeline.create () in
  let a = Timeline.add_agent tl ~name:"dma0" in
  ignore (Timeline.schedule tl a ~not_before:0.0 ~duration:42.0 ~label:"send" ());
  Timeline.reset tl;
  Alcotest.(check (float 0.0)) "clock rewinds" 0.0 (Timeline.busy_until a);
  Alcotest.(check (float 0.0)) "makespan rewinds" 0.0 (Timeline.makespan tl);
  Alcotest.(check int) "log clears" 0 (List.length (Timeline.events tl));
  (* agents stay registered: scheduling still works *)
  Alcotest.(check (float 0.0)) "agent still usable" 7.0
    (Timeline.schedule tl a ~not_before:0.0 ~duration:7.0 ~label:"send" ())

(* ------------------------------------------------------------------ *)
(* Blocking bit-compatibility                                          *)
(* ------------------------------------------------------------------ *)

(* The async subsystem must not move a single cycle of the blocking
   path: with double_buffer off, counters match a pre-recorded run of
   the same workload (any drift here is a cost-model regression). *)
let test_blocking_counters_regression () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Ns" () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:8 ~n:8 ~k:8 in
  let ir = Axi4mlir.compile_matmul bench ~m:8 ~n:8 ~k:8 () in
  let counters =
    Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ir ~a ~b ~c)
  in
  (* makespan of a blocking run is the host clock itself *)
  Alcotest.(check (float 0.0)) "task clock = host clock"
    counters.Perf_counters.cycles
    (Soc.task_clock_cycles bench.Axi4mlir.soc);
  Alcotest.(check (float 0.0)) "cycles" 508258.5 counters.Perf_counters.cycles;
  Alcotest.(check (float 0.0)) "dma words sent" 289.0 counters.Perf_counters.dma_words_sent;
  Alcotest.(check (float 0.0)) "dma words received" 128.0
    counters.Perf_counters.dma_words_received;
  Alcotest.(check (float 0.0)) "dma transactions" 41.0
    counters.Perf_counters.dma_transactions;
  Alcotest.(check (float 0.0)) "instructions" 2541.0 counters.Perf_counters.instructions

(* ------------------------------------------------------------------ *)
(* Engine token semantics                                              *)
(* ------------------------------------------------------------------ *)

let test_pingpong_serialises_halves () =
  let soc = Soc.create () in
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:2 () in
  let engine = Accel_config.attach soc config in
  (* Stage and launch a send from half 0, then immediately try to
     reuse the same words while the transfer is in flight. *)
  Dma_engine.stage engine ~offset:0 (Axi_word.Inst Isa.mm_load_a);
  for i = 1 to 4 do
    Dma_engine.stage engine ~offset:i (Axi_word.Data 1.0)
  done;
  let tok = Dma_engine.start_send_token engine in
  Dma_engine.stage engine ~offset:0 (Axi_word.Inst Isa.mm_load_b);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Dma_engine.start_send_token engine with
  | exception Failure msg ->
    "overlap error names the hazard" => contains msg "in flight"
  | _ -> Alcotest.fail "reusing an in-flight half must fail");
  ignore (Dma_engine.wait_token engine tok)

let test_wait_token_is_linear () =
  let soc = Soc.create () in
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:2 () in
  let engine = Accel_config.attach soc config in
  Dma_engine.stage engine ~offset:0 (Axi_word.Inst Isa.mm_load_a);
  for i = 1 to 4 do
    Dma_engine.stage engine ~offset:i (Axi_word.Data 1.0)
  done;
  let tok = Dma_engine.start_send_token engine in
  ignore (Dma_engine.wait_token engine tok);
  (match Dma_engine.wait_token engine tok with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "double wait must fail");
  match Dma_engine.wait_token engine 999 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown token must fail"

(* ------------------------------------------------------------------ *)
(* End-to-end double buffering                                         *)
(* ------------------------------------------------------------------ *)

let run_matmul options ~m ~n ~k =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Ns" () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
  let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
  let counters =
    Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
  in
  (counters, Memref_view.to_array c, ir)

let test_double_buffer_pipelines_and_wins () =
  let m, n, k = (64, 64, 64) in
  let blocking, out_b, _ = run_matmul Axi4mlir.default_codegen ~m ~n ~k in
  let db, out_d, ir =
    run_matmul { Axi4mlir.default_codegen with double_buffer = true } ~m ~n ~k
  in
  (* the pass really fired: the lowered IR carries async runtime calls *)
  let calls name =
    Ir.count_ops
      (fun o ->
        o.Ir.name = "func.call" && Ir.attr o "callee" = Some (Attribute.Str name))
      ir
  in
  "start_send calls present" => (calls Runtime_abi.dma_start_send_async > 0);
  "wait calls present" => (calls Runtime_abi.dma_wait > 0);
  (* byte-identical outputs *)
  "identical outputs" => (out_b = out_d);
  (* identical DMA traffic *)
  Alcotest.(check (float 0.0)) "words sent" blocking.Perf_counters.dma_words_sent
    db.Perf_counters.dma_words_sent;
  Alcotest.(check (float 0.0)) "words received" blocking.Perf_counters.dma_words_received
    db.Perf_counters.dma_words_received;
  Alcotest.(check (float 0.0)) "transactions" blocking.Perf_counters.dma_transactions
    db.Perf_counters.dma_transactions;
  (* and the ISSUE's headline: >= 15% fewer task-clock cycles *)
  let speedup = blocking.Perf_counters.cycles /. db.Perf_counters.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "double buffering wins >= 15%% (speedup %.3fx)" speedup)
    true (speedup >= 1.15)

let test_double_buffer_accel_level_matches_runtime_level () =
  let options =
    { Axi4mlir.default_codegen with double_buffer = true; to_runtime_calls = false }
  in
  let _, out_accel, ir = run_matmul options ~m:32 ~n:32 ~k:32 in
  "accel-level IR has token ops"
  => (Ir.count_ops (fun o -> o.Ir.name = "accel.start_send") ir > 0);
  let _, out_runtime, _ =
    run_matmul { options with to_runtime_calls = true } ~m:32 ~n:32 ~k:32
  in
  "levels agree" => (out_accel = out_runtime)

let test_token_ops_roundtrip () =
  (* printed token ops (and the !accel.token type) parse back and
     re-print identically *)
  let options =
    { Axi4mlir.default_codegen with double_buffer = true; to_runtime_calls = false }
  in
  let _, _, ir = run_matmul options ~m:32 ~n:32 ~k:32 in
  let printed = Printer.to_generic ir in
  let reparsed = Parser_ir.parse_op printed in
  Alcotest.(check string) "print -> parse -> print is stable" printed
    (Printer.to_generic reparsed);
  "reparsed module still has token ops"
  => (Ir.count_ops (fun o -> o.Ir.name = "accel.start_send") reparsed > 0);
  match Verifier.verify reparsed with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("reparsed async module fails verification: " ^ msg)

let test_overlap_ratio_reported () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Ns" () in
  let bench = Axi4mlir.create accel in
  ignore (Axi4mlir.enable_tracing bench);
  let options = { Axi4mlir.default_codegen with double_buffer = true } in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:32 ~n:32 ~k:32 in
  let ir = Axi4mlir.compile_matmul bench ~options ~m:32 ~n:32 ~k:32 () in
  let counters =
    Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
  in
  let events = Trace.events (Axi4mlir.tracer bench) in
  (match Perf_report.overlap_ratio ~total:(Perf_counters.fields counters) events with
  | Some r -> "async work overlaps the run" => (r > 0.0)
  | None -> Alcotest.fail "no async tracks recorded");
  (* flow arrows bind each start to its wait *)
  let flow_starts =
    List.filter
      (fun e -> match e.Trace.ev_kind with Trace.Flow_start _ -> true | _ -> false)
      events
  in
  let flow_finishes =
    List.filter
      (fun e -> match e.Trace.ev_kind with Trace.Flow_finish _ -> true | _ -> false)
      events
  in
  "flow arrows emitted" => (List.length flow_starts > 0);
  Alcotest.(check int) "every arrow lands" (List.length flow_starts)
    (List.length flow_finishes)

let tests =
  [
    Alcotest.test_case "timeline is deterministic" `Quick test_timeline_determinism;
    Alcotest.test_case "timeline ties break by issue order" `Quick test_timeline_tie_breaking;
    Alcotest.test_case "timeline reset" `Quick test_timeline_reset;
    Alcotest.test_case "blocking counters unchanged (regression)" `Quick
      test_blocking_counters_regression;
    Alcotest.test_case "ping/pong halves serialise" `Quick test_pingpong_serialises_halves;
    Alcotest.test_case "tokens are linear at the engine" `Quick test_wait_token_is_linear;
    Alcotest.test_case "double buffering: same outputs, same words, >=15% faster" `Quick
      test_double_buffer_pipelines_and_wins;
    Alcotest.test_case "accel-level and runtime-level async agree" `Quick
      test_double_buffer_accel_level_matches_runtime_level;
    Alcotest.test_case "token ops round-trip through the parser" `Quick
      test_token_ops_roundtrip;
    Alcotest.test_case "overlap ratio and flow arrows in the trace" `Quick
      test_overlap_ratio_reported;
  ]
