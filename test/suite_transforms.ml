(* Tests for the compiler passes: matching, tiling decisions,
   permutation derivation, codegen structure, runtime lowering and copy
   specialisation. *)

let host = Host_config.pynq_z2

let matmul_generic ?(m = 8) ?(n = 8) ?(k = 8) () =
  let modul = Axi4mlir.build_matmul_module ~m ~n ~k () in
  match
    List.concat_map (fun f -> Ir.find_ops Linalg.is_generic f) (Ir.module_body modul)
  with
  | [ g ] -> (modul, g)
  | _ -> Alcotest.fail "expected one generic"

let test_matcher_positive () =
  let _, g = matmul_generic () in
  Alcotest.(check bool) "matmul matches" true (Matcher.is_matmul g);
  Alcotest.(check bool) "not a conv" false (Matcher.is_conv_2d_nchw_fchw g);
  Alcotest.(check bool) "kind dispatch" true (Matcher.matches_kind "matmul" g);
  Alcotest.(check bool) "unknown kind" false (Matcher.matches_kind "softmax" g);
  Alcotest.(check bool) "accumulating kernel" true (Matcher.kernel_accumulates g)

let test_matcher_conv () =
  let modul = Axi4mlir.build_conv_module ~n:1 ~ic:4 ~ih:6 ~iw:6 ~oc:2 ~fh:3 ~fw:3 () in
  match
    List.concat_map (fun f -> Ir.find_ops Linalg.is_generic f) (Ir.module_body modul)
  with
  | [ g ] ->
    Alcotest.(check bool) "conv matches" true (Matcher.is_conv_2d_nchw_fchw g);
    Alcotest.(check bool) "conv is not matmul" false (Matcher.is_matmul g)
  | _ -> Alcotest.fail "expected one generic"

let test_matcher_rejects_wrong_kernel () =
  (* same maps/iterators but the kernel multiplies by the output: not a
     mul-add accumulation *)
  let b = Builder.create () in
  let a = Memref_d.alloc b (Ty.memref [ 4; 4 ] Ty.F32) in
  let bv = Memref_d.alloc b (Ty.memref [ 4; 4 ] Ty.F32) in
  let c = Memref_d.alloc b (Ty.memref [ 4; 4 ] Ty.F32) in
  let maps =
    [
      Affine_map.projection ~n_dims:3 [ 0; 2 ];
      Affine_map.projection ~n_dims:3 [ 2; 1 ];
      Affine_map.projection ~n_dims:3 [ 0; 1 ];
    ]
  in
  let g =
    Linalg.generic b ~indexing_maps:maps
      ~iterator_types:[ Linalg.parallel; Linalg.parallel; Linalg.reduction ]
      ~inputs:[ a; bv ] ~outputs:[ c ]
      (fun kb args ->
        match args with
        | [ ae; _be; ce ] ->
          let p = Arith.mulf kb ae ce in
          Linalg.yield kb [ p ]
        | _ -> assert false)
  in
  Alcotest.(check bool) "wrong kernel rejected" false (Matcher.is_matmul g);
  Alcotest.(check bool) "not accumulating" false (Matcher.kernel_accumulates g)

let matmul_maps =
  [
    Affine_map.projection ~n_dims:3 [ 0; 2 ];
    Affine_map.projection ~n_dims:3 [ 2; 1 ];
    Affine_map.projection ~n_dims:3 [ 0; 1 ];
  ]

let test_resolve_accel_dims () =
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  (match Tiling.resolve_accel_dims config ~maps:matmul_maps ~ranges:[ 8; 8; 8 ] () with
  | Ok tiles -> Alcotest.(check (list int)) "square tiles" [ 4; 4; 4 ] tiles
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "non-divisible rejected" true
    (Result.is_error (Tiling.resolve_accel_dims config ~maps:matmul_maps ~ranges:[ 10; 8; 8 ] ()));
  Alcotest.(check bool) "smaller than tile rejected" true
    (Result.is_error (Tiling.resolve_accel_dims config ~maps:matmul_maps ~ranges:[ 2; 8; 8 ] ()));
  Alcotest.(check bool) "override on fixed engine rejected" true
    (Result.is_error
       (Tiling.resolve_accel_dims config ~maps:matmul_maps ~ranges:[ 8; 8; 8 ]
          ~tile_override:[ 8; 8; 8 ] ()))

let test_resolve_v4_override () =
  let config = Presets.matmul ~version:Accel_matmul.V4 ~size:16 () in
  (match
     Tiling.resolve_accel_dims config ~maps:matmul_maps ~ranges:[ 32; 256; 512 ]
       ~tile_override:[ 32; 16; 64 ] ()
   with
  | Ok tiles -> Alcotest.(check (list int)) "flex tiles" [ 32; 16; 64 ] tiles
  | Error e -> Alcotest.fail e);
  (* 128x64 A-tile = 8192 elements > 4096 capacity *)
  Alcotest.(check bool) "buffer overflow rejected" true
    (Result.is_error
       (Tiling.resolve_accel_dims config ~maps:matmul_maps ~ranges:[ 128; 256; 512 ]
          ~tile_override:[ 128; 16; 64 ] ()));
  Alcotest.(check bool) "granularity enforced" true
    (Result.is_error
       (Tiling.resolve_accel_dims config ~maps:matmul_maps ~ranges:[ 32; 256; 512 ]
          ~tile_override:[ 24; 16; 16 ] ()))

(* Regression pins for the tiling edge cases the differential fuzzer
   exercises: a tile larger than the problem extent, tile size 1, and
   non-dividing tile sizes must all resolve to the same structured
   errors (or tile lists) they do today. *)
let test_tiling_edge_cases () =
  let contains hay needle =
    let nl = String.length needle in
    let rec go i = i + nl <= String.length hay && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let expect_error name result fragment =
    match result with
    | Ok tiles ->
      Alcotest.fail
        (Printf.sprintf "%s: expected an error, got tiles %s" name
           (String.concat "," (List.map string_of_int tiles)))
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions \"%s\" (got: %s)" name fragment msg)
        true (contains msg fragment)
  in
  let v4 = Presets.matmul ~version:Accel_matmul.V4 ~size:4 () in
  (* tile > dim: both via an engine tile larger than the extent and via
     an explicit override *)
  expect_error "fixed tile > extent"
    (Tiling.resolve_accel_dims v4 ~maps:matmul_maps ~ranges:[ 2; 8; 8 ] ())
    "problem extent is smaller than the accelerator tile";
  expect_error "override tile > extent"
    (Tiling.resolve_accel_dims v4 ~maps:matmul_maps ~ranges:[ 8; 8; 8 ]
       ~tile_override:[ 16; 4; 4 ] ())
    "problem extent is smaller than the accelerator tile";
  (* tile exactly the extent: a single accelerator call, legal *)
  (match
     Tiling.resolve_accel_dims v4 ~maps:matmul_maps ~ranges:[ 8; 8; 8 ]
       ~tile_override:[ 8; 8; 8 ] ()
   with
  | Ok tiles -> Alcotest.(check (list int)) "tile = extent" [ 8; 8; 8 ] tiles
  | Error e -> Alcotest.fail e);
  (* tile size 1 on a granule-1 flexible engine iterates elementwise *)
  let v4_1 = Presets.matmul ~version:Accel_matmul.V4 ~size:1 () in
  (match
     Tiling.resolve_accel_dims v4_1 ~maps:matmul_maps ~ranges:[ 3; 5; 7 ]
       ~tile_override:[ 1; 1; 1 ] ()
   with
  | Ok tiles -> Alcotest.(check (list int)) "tile size 1" [ 1; 1; 1 ] tiles
  | Error e -> Alcotest.fail e);
  (* tile size 1 on a granule-4 engine violates granularity *)
  expect_error "tile 1 below granularity"
    (Tiling.resolve_accel_dims v4 ~maps:matmul_maps ~ranges:[ 8; 8; 8 ]
       ~tile_override:[ 1; 4; 4 ] ())
    "multiples of the accelerator granularity";
  (* non-dividing tiles: granule-aligned but not dividing the extent,
     and extent not divisible by the engine tile *)
  expect_error "tile does not divide extent"
    (Tiling.resolve_accel_dims v4 ~maps:matmul_maps ~ranges:[ 12; 8; 8 ]
       ~tile_override:[ 8; 4; 4 ] ())
    "divide the problem extents";
  expect_error "extent not a tile multiple"
    (Tiling.resolve_accel_dims v4 ~maps:matmul_maps ~ranges:[ 10; 8; 8 ] ())
    "divide the problem extents";
  (* arity mismatches stay structured errors too *)
  expect_error "override arity"
    (Tiling.resolve_accel_dims v4 ~maps:matmul_maps ~ranges:[ 8; 8; 8 ]
       ~tile_override:[ 8; 8 ] ())
    "tile_override arity mismatch";
  expect_error "ranges arity"
    (Tiling.resolve_accel_dims v4 ~maps:matmul_maps ~ranges:[ 8; 8 ] ())
    "expected 3 iteration dims"

let flow_of config name = Accel_config.flow_exn config name

let test_derive_permutation () =
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let derive name =
    Tiling.derive_permutation ~flow:(flow_of config name)
      ~opcode_map:config.Accel_config.opcode_map ~maps:matmul_maps ~accel_dim:[ 4; 4; 4 ]
  in
  Alcotest.(check (list int)) "Ns canonical" [ 0; 1; 2 ] (derive "Ns");
  (* Stationarity property: the stationary operand's dims come first
     (in some order), the streamed dim innermost. *)
  let outer2 perm = List.sort compare (Util.list_take 2 perm) in
  Alcotest.(check (list int)) "As pins m,k outer" [ 0; 2 ] (outer2 (derive "As"));
  Alcotest.(check (list int)) "As streams n" [ 1 ] (Util.list_drop 2 (derive "As"));
  Alcotest.(check (list int)) "Bs pins n,k outer" [ 1; 2 ] (outer2 (derive "Bs"));
  Alcotest.(check (list int)) "Bs streams m" [ 0 ] (Util.list_drop 2 (derive "Bs"));
  Alcotest.(check (list int)) "Cs pins m,n outer" [ 0; 1 ] (outer2 (derive "Cs"));
  Alcotest.(check (list int)) "Cs streams k" [ 2 ] (Util.list_drop 2 (derive "Cs"))

let test_derive_permutation_conv () =
  let config = Presets.conv () in
  let conv_maps =
    let open Affine_map in
    [
      make ~n_dims:7 [ Dim 0; Dim 4; Add (Dim 2, Dim 5); Add (Dim 3, Dim 6) ];
      projection ~n_dims:7 [ 1; 4; 5; 6 ];
      projection ~n_dims:7 [ 0; 1; 2; 3 ];
    ]
  in
  let perm =
    Tiling.derive_permutation
      ~flow:(flow_of config "Ws")
      ~opcode_map:config.Accel_config.opcode_map ~maps:conv_maps
      ~accel_dim:[ 1; 1; 1; 1; 0; 0; 0 ]
  in
  (* the weight-stationary dim f(=1) hoists outermost; absorbed
     reduction dims (4,5,6) trail *)
  Alcotest.(check (list int)) "conv perm" [ 1; 0; 2; 3; 4; 5; 6 ] perm

let test_cpu_tiles () =
  let tiles =
    Tiling.choose_cpu_tiles host ~ranges:[ 256; 256; 256 ] ~accel_dim:[ 16; 16; 16 ]
      ~safe_dims:[ 0; 1; 2 ] ~footprint_bytes:(3 * 256 * 256 * 4)
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "multiple of accel tile" true (t mod 16 = 0);
      Alcotest.(check bool) "divides extent" true (t = 0 || 256 mod t = 0);
      Alcotest.(check bool) "nontrivial" true (t = 0 || (t > 16 && t < 256)))
    tiles;
  (* small problems (footprint within L1) are not tiled *)
  Alcotest.(check (list int)) "small untiled" [ 0; 0; 0 ]
    (Tiling.choose_cpu_tiles host ~ranges:[ 32; 32; 32 ] ~accel_dim:[ 16; 16; 16 ]
       ~safe_dims:[ 0; 1; 2 ] ~footprint_bytes:(3 * 32 * 32 * 4));
  (* absorbed and unsafe dims are never tiled *)
  Alcotest.(check (list int)) "absorbed untiled" [ 0 ]
    (Tiling.choose_cpu_tiles host ~ranges:[ 256 ] ~accel_dim:[ 0 ] ~safe_dims:[ 0 ]
       ~footprint_bytes:(1 lsl 20));
  Alcotest.(check (list int)) "unsafe dim untiled" [ 0 ]
    (Tiling.choose_cpu_tiles host ~ranges:[ 256 ] ~accel_dim:[ 16 ] ~safe_dims:[]
       ~footprint_bytes:(1 lsl 20))

let annotate ?(flow = None) ?(size = 4) ?(m = 8) ?(n = 8) ?(k = 8) () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size () in
  let options = { Match_annotate.default_options with flow } in
  let _, g = matmul_generic ~m ~n ~k () in
  Match_annotate.annotate_op ~accel ~host ~options g

let test_match_annotate () =
  (match annotate () with
  | Ok annotated -> (
    match Trait.of_op annotated with
    | Some trait ->
      Alcotest.(check (list int)) "accel_dim" [ 4; 4; 4 ] trait.Trait.accel_dim;
      Alcotest.(check (list string)) "init opcodes" [ "reset" ] trait.Trait.init_opcodes
    | None -> Alcotest.fail "no trait attached")
  | Error e -> Alcotest.fail e);
  (match annotate ~flow:(Some "Cs") () with
  | Ok annotated -> (
    match Trait.of_op annotated with
    | Some trait ->
      Alcotest.(check bool) "flow override" true
        (Opcode.flow_to_string trait.Trait.opcode_flow = "opcode_flow<((sA sB cC) rC)>")
    | None -> Alcotest.fail "no trait")
  | Error e -> Alcotest.fail e);
  match annotate ~m:10 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-divisible problem annotated"

let test_match_annotate_skip_callback () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 () in
  let skipped = ref [] in
  let options =
    { Match_annotate.default_options with on_skip = Some (fun r -> skipped := r :: !skipped) }
  in
  let modul = Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 () in
  let result =
    Pass.run_pipeline [ Match_annotate.pass ~accel ~host ~options () ] modul
  in
  Alcotest.(check int) "skip reported" 1 (List.length !skipped);
  Alcotest.(check int) "not annotated" 0
    (Ir.count_ops (fun o -> Ir.has_attr o "opcode_flow") result)

(* Structure of generated code: for the As flow, the A-send must sit one
   loop above the B-send. *)
let loop_depth_of_op modul pred =
  let depth = ref (-1) in
  let rec walk_ops d ops =
    List.iter
      (fun (o : Ir.op) ->
        if pred o then depth := d;
        List.iter (fun r -> List.iter (fun (blk : Ir.block) -> walk_ops (d + 1) blk.Ir.body) r)
          o.Ir.regions)
      ops
  in
  walk_ops 0 [ modul ];
  !depth

let compile_to_accel flow =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow () in
  let bench = Axi4mlir.create accel in
  let options =
    { Axi4mlir.default_codegen with to_runtime_calls = false; cpu_tiling = false }
  in
  Axi4mlir.compile_matmul bench ~options ~m:8 ~n:8 ~k:8 ()

let is_send_of vid (o : Ir.op) =
  o.Ir.name = "accel.send"
  &&
  match o.Ir.operands with
  | tile :: _ -> (
    (* trace the subview's source argument by value id *)
    match vid tile with true -> true | false -> false)
  | [] -> false

let test_codegen_hoists_stationary () =
  let modul = compile_to_accel "As" in
  (* find the function argument values for A and B *)
  let f = List.hd (Ir.module_body modul) in
  let args = (Func.body_of f).Ir.bargs in
  let arg_a = List.nth args 0 and arg_b = List.nth args 1 in
  let subview_source (o : Ir.op) =
    match o.Ir.operands with src :: _ -> Some src.Ir.vid | [] -> None
  in
  let subviews = Ir.find_ops (fun o -> o.Ir.name = "memref.subview") modul in
  let tile_of arg =
    List.filter_map
      (fun (o : Ir.op) ->
        if subview_source o = Some arg.Ir.vid then Some (Ir.result o).Ir.vid else None)
      subviews
  in
  let a_tiles = tile_of arg_a and b_tiles = tile_of arg_b in
  let depth_of_send tiles =
    loop_depth_of_op modul (fun o ->
        is_send_of
          (fun (t : Ir.value) -> List.mem t.Ir.vid tiles)
          o)
  in
  let da = depth_of_send a_tiles and db = depth_of_send b_tiles in
  Alcotest.(check bool)
    (Printf.sprintf "A send (depth %d) hoisted above B send (depth %d)" da db)
    true (da = db - 1)

let test_codegen_ns_same_depth () =
  let modul = compile_to_accel "Ns" in
  let sends = Ir.find_ops (fun o -> o.Ir.name = "accel.send") modul in
  Alcotest.(check int) "two data sends" 2 (List.length sends);
  let recvs = Ir.find_ops (fun o -> o.Ir.name = "accel.recv") modul in
  Alcotest.(check int) "one recv" 1 (List.length recvs);
  let depth_send =
    loop_depth_of_op modul (fun o -> o.Ir.name = "accel.send")
  and depth_recv = loop_depth_of_op modul (fun o -> o.Ir.name = "accel.recv") in
  Alcotest.(check int) "send and recv share the innermost loop" depth_send depth_recv

let test_codegen_cs_recv_outside_k () =
  let modul = compile_to_accel "Cs" in
  let depth_send = loop_depth_of_op modul (fun o -> o.Ir.name = "accel.send") in
  let depth_recv = loop_depth_of_op modul (fun o -> o.Ir.name = "accel.recv") in
  Alcotest.(check bool)
    (Printf.sprintf "recv (depth %d) outside the k loop of sends (depth %d)" depth_recv
       depth_send)
    true
    (depth_recv = depth_send - 1)

let test_codegen_dma_init_once () =
  let modul = compile_to_accel "Ns" in
  Alcotest.(check int) "one dma_init" 1
    (Ir.count_ops (fun o -> o.Ir.name = "accel.dma_init") modul);
  (* reset literal (0xFF) emitted before the loops at depth of function body *)
  let reset_depth =
    loop_depth_of_op modul (fun o ->
        o.Ir.name = "accel.sendLiteral"
        &&
        match o.Ir.operands with
        | _ :: _ -> true
        | [] -> false)
  in
  Alcotest.(check bool) "literals exist" true (reset_depth >= 0)

let test_runtime_lowering_callees () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Ns" () in
  let bench = Axi4mlir.create accel in
  let no_spec =
    { Axi4mlir.default_codegen with copy_specialization = false; cpu_tiling = false }
  in
  let modul = Axi4mlir.compile_matmul bench ~options:no_spec ~m:8 ~n:8 ~k:8 () in
  Alcotest.(check int) "no accel ops remain" 0 (Ir.count_ops Accel.is_accel modul);
  let callees m =
    List.sort_uniq compare
      (List.filter_map
         (fun (o : Ir.op) ->
           if o.Ir.name = "func.call" then
             match Ir.attr o "callee" with Some (Attribute.Str s) -> Some s | _ -> None
           else None)
         (Ir.find_ops (fun _ -> true) m))
  in
  let plain = callees modul in
  Alcotest.(check bool) "generic copies" true (List.mem Runtime_abi.copy_to_dma_region plain);
  Alcotest.(check bool) "no specialised copies" false
    (List.mem Runtime_abi.copy_to_dma_region_spec plain);
  let with_spec =
    Axi4mlir.compile_matmul bench
      ~options:{ Axi4mlir.default_codegen with cpu_tiling = false }
      ~m:8 ~n:8 ~k:8 ()
  in
  let spec = callees with_spec in
  Alcotest.(check bool) "specialised copies present" true
    (List.mem Runtime_abi.copy_to_dma_region_spec spec);
  Alcotest.(check bool) "unit-stride tiles all specialised" false
    (List.mem Runtime_abi.copy_to_dma_region spec)

let test_cpu_tiling_adds_loops () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Ns" () in
  let bench = Axi4mlir.create accel in
  let count_loops options =
    let modul = Axi4mlir.compile_matmul bench ~options ~m:256 ~n:256 ~k:256 () in
    Ir.count_ops (fun o -> o.Ir.name = "scf.for") modul
  in
  let flat = count_loops { Axi4mlir.default_codegen with cpu_tiling = false } in
  let tiled = count_loops Axi4mlir.default_codegen in
  Alcotest.(check int) "flat nest" 3 flat;
  Alcotest.(check int) "two-level nest" 6 tiled

let test_annotate_idempotent () =
  (* running the matcher pass twice must not re-annotate or duplicate *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let modul = Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 () in
  let p = Match_annotate.pass ~accel ~host () in
  let once = Pass.run_pipeline [ p ] modul in
  let twice = Pass.run_pipeline [ p ] once in
  Alcotest.(check bool) "idempotent" true (Ir_compare.equal_op once twice)

let test_pass_failure_reporting () =
  (* a pass that breaks SSA must be caught by inter-pass verification *)
  let broken =
    Pass.make "break-ssa" (fun m ->
        Ir.map_nested
          (fun o ->
            if o.Ir.name = "arith.mulf" then
              { o with Ir.operands = [ Ir.fresh_value Ty.f32; Ir.fresh_value Ty.f32 ] }
            else o)
          m)
  in
  let modul = Axi4mlir.build_matmul_module ~m:4 ~n:4 ~k:4 () in
  match Pass.run_pipeline [ broken ] modul with
  | exception Pass.Pass_failure { pass; failing_op; _ } ->
    Alcotest.(check string) "names the pass" "break-ssa" pass;
    Alcotest.(check string) "names the failing op" "arith.mulf" failing_op
  | _ -> Alcotest.fail "broken pass not caught"

let tests =
  [
    Alcotest.test_case "annotate is idempotent" `Quick test_annotate_idempotent;
    Alcotest.test_case "pass failure reporting" `Quick test_pass_failure_reporting;
    Alcotest.test_case "matcher: matmul" `Quick test_matcher_positive;
    Alcotest.test_case "matcher: conv" `Quick test_matcher_conv;
    Alcotest.test_case "matcher rejects wrong kernels" `Quick test_matcher_rejects_wrong_kernel;
    Alcotest.test_case "resolve accel dims" `Quick test_resolve_accel_dims;
    Alcotest.test_case "resolve v4 overrides" `Quick test_resolve_v4_override;
    Alcotest.test_case "tiling edge cases" `Quick test_tiling_edge_cases;
    Alcotest.test_case "derive permutation (matmul flows)" `Quick test_derive_permutation;
    Alcotest.test_case "derive permutation (conv)" `Quick test_derive_permutation_conv;
    Alcotest.test_case "cpu tile choice" `Quick test_cpu_tiles;
    Alcotest.test_case "match-and-annotate" `Quick test_match_annotate;
    Alcotest.test_case "annotate skip callback" `Quick test_match_annotate_skip_callback;
    Alcotest.test_case "codegen hoists stationary sends" `Quick test_codegen_hoists_stationary;
    Alcotest.test_case "codegen Ns places everything innermost" `Quick test_codegen_ns_same_depth;
    Alcotest.test_case "codegen Cs receives outside k" `Quick test_codegen_cs_recv_outside_k;
    Alcotest.test_case "dma_init emitted once" `Quick test_codegen_dma_init_once;
    Alcotest.test_case "runtime lowering callees" `Quick test_runtime_lowering_callees;
    Alcotest.test_case "cpu tiling adds a loop level" `Quick test_cpu_tiling_adds_loops;
  ]
