(* Tests for the observability subsystem: the tracer itself, the
   Perf_counters field/JSON reflection, the Chrome exporter, the
   perf-report phase accounting, and the no-observable-effect guarantee
   when tracing is disabled. *)

(* A small offloaded matmul that exercises every instrumented layer
   (pass pipeline, DMA library, DMA engine, device, interpreter). *)
let traced_matmul_run () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Cs" () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:8 ~n:8 ~k:8 in
  let ir = Axi4mlir.compile_matmul bench ~m:8 ~n:8 ~k:8 () in
  let tracer = Axi4mlir.enable_tracing bench in
  let counters =
    Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ir ~a ~b ~c)
  in
  (bench, tracer, counters)

(* ------------------------------------------------------------------ *)
(* Perf_counters reflection                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_fields_roundtrip () =
  let a = Perf_counters.create () in
  a.Perf_counters.cycles <- 123.0;
  a.Perf_counters.dma_words_sent <- 17.0;
  a.Perf_counters.l2_misses <- 3.0;
  let kvs = Perf_counters.fields a in
  Alcotest.(check int) "one entry per field" (List.length Perf_counters.field_names)
    (List.length kvs);
  Alcotest.(check (float 0.0)) "fields reads cycles" 123.0 (List.assoc "cycles" kvs);
  let b = Perf_counters.of_fields kvs in
  Alcotest.(check string) "of_fields round-trips" (Perf_counters.to_string a)
    (Perf_counters.to_string b);
  let c = Perf_counters.of_json (Perf_counters.to_json a) in
  Alcotest.(check string) "JSON round-trips" (Perf_counters.to_string a)
    (Perf_counters.to_string c);
  Alcotest.check_raises "unknown field rejected"
    (Invalid_argument "Perf_counters.of_fields: unknown field bogus") (fun () ->
      ignore (Perf_counters.of_fields [ ("bogus", 1.0) ]))

let test_counter_arith_via_fields () =
  let a = Perf_counters.create () and b = Perf_counters.create () in
  a.Perf_counters.cycles <- 100.0;
  a.Perf_counters.flops <- 8.0;
  b.Perf_counters.cycles <- 40.0;
  b.Perf_counters.branches <- 5.0;
  let d = Perf_counters.diff a b in
  Alcotest.(check (float 0.0)) "diff cycles" 60.0 d.Perf_counters.cycles;
  Alcotest.(check (float 0.0)) "diff branches" (-5.0) d.Perf_counters.branches;
  let s = Perf_counters.scale a 0.5 in
  Alcotest.(check (float 0.0)) "scale flops" 4.0 s.Perf_counters.flops;
  let sum = Perf_counters.add a b in
  Alcotest.(check (float 0.0)) "add cycles" 140.0 sum.Perf_counters.cycles;
  Perf_counters.accumulate b a;
  Alcotest.(check (float 0.0)) "accumulate cycles" 140.0 b.Perf_counters.cycles;
  (* every field participates: diff of identical counters is all-zero *)
  let z = Perf_counters.diff a (Perf_counters.copy a) in
  List.iter
    (fun (name, v) -> Alcotest.(check (float 0.0)) ("zero " ^ name) 0.0 v)
    (Perf_counters.fields z)

(* ------------------------------------------------------------------ *)
(* Tracer core                                                         *)
(* ------------------------------------------------------------------ *)

let test_disabled_tracer_is_inert () =
  let t = Trace.create () in
  Alcotest.(check bool) "starts disabled" false (Trace.enabled t);
  Trace.begin_span t "x";
  Trace.instant t "y";
  Trace.end_span t;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events t));
  Alcotest.(check int) "no open spans" 0 (Trace.open_spans t);
  Alcotest.(check int) "with_span passes value through" 41
    (Trace.with_span t "z" (fun () -> 41))

let test_span_deltas () =
  let clock = ref 0.0 and counter = ref 0.0 in
  let t = Trace.create () in
  Trace.enable t
    ~clock:(fun () -> !clock)
    ~snapshot:(fun () -> [ ("c", !counter) ]);
  Trace.begin_span t ~cat:"outer" "o";
  clock := 10.0;
  counter := 4.0;
  Trace.with_span t ~cat:"inner" "i" (fun () ->
      clock := 25.0;
      counter := 7.0);
  Trace.end_span t;
  match Trace.events t with
  | [ ob; ib; ie; oe ] ->
    Alcotest.(check bool) "begin kinds" true
      (ob.Trace.ev_kind = Trace.Begin && ib.Trace.ev_kind = Trace.Begin);
    Alcotest.(check (float 0.0)) "inner delta" 3.0
      (match List.assoc "d_c" ie.Trace.ev_args with
      | Trace.Num v -> v
      | _ -> nan);
    Alcotest.(check (float 0.0)) "outer delta spans both" 7.0
      (match List.assoc "d_c" oe.Trace.ev_args with
      | Trace.Num v -> v
      | _ -> nan);
    Alcotest.(check (float 0.0)) "end timestamp" 25.0 oe.Trace.ev_ts
  | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs)

let test_traced_run_well_formed () =
  let _bench, tracer, _counters = traced_matmul_run () in
  let events = Trace.events tracer in
  Alcotest.(check bool) "events recorded" true (events <> []);
  Alcotest.(check int) "all spans closed" 0 (Trace.open_spans tracer);
  let host =
    List.filter (fun e -> e.Trace.ev_track = Trace.host_track) events
  in
  let begins =
    List.length (List.filter (fun e -> e.Trace.ev_kind = Trace.Begin) host)
  in
  let ends = List.length (List.filter (fun e -> e.Trace.ev_kind = Trace.End) host) in
  Alcotest.(check int) "balanced begin/end" begins ends;
  (* the host track rides the simulated cycle counter: non-decreasing *)
  ignore
    (List.fold_left
       (fun prev e ->
         Alcotest.(check bool)
           (Printf.sprintf "monotonic at %s (%g >= %g)" e.Trace.ev_name e.Trace.ev_ts
              prev)
           true
           (e.Trace.ev_ts >= prev);
         e.Trace.ev_ts)
       0.0 host)

let test_measure_clears_trace () =
  let bench, tracer, _counters = traced_matmul_run () in
  let before = List.length (Trace.events tracer) in
  Alcotest.(check bool) "first run recorded" true (before > 0);
  let _ = Axi4mlir.measure bench (fun () -> ()) in
  Alcotest.(check int) "reset drops stale events" 0 (List.length (Trace.events tracer))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_valid_json () =
  let _bench, tracer, _counters = traced_matmul_run () in
  let doc = Json.of_string (Chrome_trace.to_string ~cpu_freq_mhz:650.0 (Trace.events tracer)) in
  let records = Json.to_list (Json.member "traceEvents" doc) in
  Alcotest.(check bool) "has records beyond metadata" true (List.length records > 6);
  List.iter
    (fun r ->
      let ph = Json.to_str (Json.member "ph" r) in
      Alcotest.(check bool) ("known phase " ^ ph) true
        (List.mem ph [ "B"; "E"; "i"; "X"; "M" ]))
    records

let test_phase_sum_matches_aggregate () =
  let _bench, tracer, counters = traced_matmul_run () in
  let total = Perf_counters.fields counters in
  let phases = Perf_report.phase_breakdown ~total (Trace.events tracer) in
  let cycle_sum =
    List.fold_left (fun acc ph -> acc +. Perf_report.phase_field ph "cycles") 0.0 phases
  in
  Alcotest.(check bool)
    (Printf.sprintf "phase cycles %.3f sum to aggregate %.3f" cycle_sum
       counters.Perf_counters.cycles)
    true
    (Float.abs (cycle_sum -. counters.Perf_counters.cycles)
    <= 1e-6 *. Float.max 1.0 counters.Perf_counters.cycles);
  (* the breakdown names the phases the instrumentation emits *)
  let names = List.map (fun p -> p.Perf_report.ph_name) phases in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("has phase " ^ expected) true (List.mem expected names))
    [ "init"; "dma_send"; "dma_recv"; "copy_to_accel"; "host" ]

let test_render_report () =
  let _bench, tracer, counters = traced_matmul_run () in
  let report =
    Perf_report.render ~cpu_freq_mhz:650.0 ~bus_words_per_cpu_cycle:0.25
      ~accel_freq_mhz:100.0
      ~total:(Perf_counters.fields counters)
      (Trace.events tracer)
  in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and rl = String.length report in
        let rec scan i = i + nl <= rl && (String.sub report i nl = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) ("report mentions " ^ needle) true found)
    [ "dma_send"; "task clock"; "occupancy"; "DMA bandwidth" ]

(* Division-by-zero regression: every derived metric must degrade to
   [None] / "n/a" on an empty run instead of printing nan. *)
let test_derived_metrics_zero_guard () =
  let zero = Perf_counters.fields (Perf_counters.create ()) in
  Alcotest.(check bool) "task clock guards zero frequency" true
    (Perf_report.task_clock_ms ~cpu_freq_mhz:0.0 ~total:zero = None);
  Alcotest.(check bool) "flops/cycle guards zero cycles" true
    (Perf_report.flops_per_cycle ~total:zero = None);
  Alcotest.(check bool) "arithmetic intensity guards zero DMA traffic" true
    (Perf_report.arithmetic_intensity ~total:zero = None);
  Alcotest.(check bool) "occupancy guards zero cycles" true
    (Perf_report.occupancy_pct ~cpu_freq_mhz:650.0 ~accel_freq_mhz:100.0 ~total:zero
    = None);
  Alcotest.(check bool) "bandwidth guards empty phase list" true
    (Perf_report.dma_bandwidth_pct ~bus_words_per_cpu_cycle:0.25 ~total:zero [] = None);
  let report =
    Perf_report.render ~cpu_freq_mhz:650.0 ~bus_words_per_cpu_cycle:0.25
      ~accel_freq_mhz:100.0 ~total:zero []
  in
  let contains needle =
    let nl = String.length needle and rl = String.length report in
    let rec scan i = i + nl <= rl && (String.sub report i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "report prints n/a" true (contains "n/a");
  Alcotest.(check bool) "report never prints nan" false (contains "nan")

(* A double-buffered run records async transfer windows (tracks >= 20)
   and flow arrows between token issue and wait. *)
let double_buffered_run () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Ns" () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:8 ~n:8 ~k:8 in
  let options = { Axi4mlir.default_codegen with Axi4mlir.double_buffer = true } in
  let ir = Axi4mlir.compile_matmul bench ~options ~m:8 ~n:8 ~k:8 () in
  let tracer = Axi4mlir.enable_tracing bench in
  let counters =
    Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
  in
  (bench, tracer, counters)

(* Overlap ratio: None (rendered "n/a") on a blocking run — a 0.0 here
   would read as "measured, and zero" when nothing asynchronous ever
   happened — and Some on a double-buffered run of the same shape. *)
let test_overlap_ratio_both_paths () =
  let _bench, tracer, counters = traced_matmul_run () in
  let total = Perf_counters.fields counters in
  let events = Trace.events tracer in
  Alcotest.(check bool) "blocking run reports None" true
    (Perf_report.overlap_ratio ~total events = None);
  let report =
    Perf_report.render ~cpu_freq_mhz:650.0 ~bus_words_per_cpu_cycle:0.25
      ~accel_freq_mhz:100.0 ~total events
  in
  let contains needle =
    let nl = String.length needle and rl = String.length report in
    let rec scan i = i + nl <= rl && (String.sub report i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "render shows n/a for overlap" true
    (contains "transfer overlap      : n/a");
  let _bench, tracer, counters = double_buffered_run () in
  match Perf_report.overlap_ratio ~total:(Perf_counters.fields counters) (Trace.events tracer) with
  | None -> Alcotest.fail "double-buffered run reported no overlap"
  | Some r -> Alcotest.(check bool) "overlap ratio is positive" true (r > 0.0)

(* Flow-arrow ids must be unique for the lifetime of the recording
   sink: ids are NOT reset by clear, so arrows from different measured
   runs (or engines) can never alias when their events are merged into
   one exported trace. *)
let test_flow_ids_globally_unique () =
  let t = Trace.create () in
  Alcotest.(check int) "disabled sink allocates 0" 0 (Trace.fresh_flow_id t);
  Trace.enable t;
  let a = Trace.fresh_flow_id t and b = Trace.fresh_flow_id t in
  Alcotest.(check bool) "consecutive ids distinct" true (a <> b);
  Trace.clear t;
  let c = Trace.fresh_flow_id t in
  Alcotest.(check bool) "clear does not recycle ids" true (c <> a && c <> b);
  (* end-to-end: two measured runs on one SoC tracer must not share ids *)
  let bench, tracer, _ = double_buffered_run () in
  let flow_ids () =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.ev_kind with Trace.Flow_start id -> Some id | _ -> None)
      (Trace.events tracer)
  in
  let first = flow_ids () in
  Alcotest.(check bool) "async run records flow arrows" true (first <> []);
  Alcotest.(check int) "ids unique within a run" (List.length first)
    (List.length (List.sort_uniq compare first));
  (* every arrow started is finished (the token was waited on) *)
  let finishes =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.ev_kind with Trace.Flow_finish id -> Some id | _ -> None)
      (Trace.events tracer)
  in
  Alcotest.(check (list int)) "starts pair with finishes"
    (List.sort compare first) (List.sort compare finishes);
  let a2, b2, c2 = Axi4mlir.alloc_matmul_operands bench ~m:8 ~n:8 ~k:8 in
  let options = { Axi4mlir.default_codegen with Axi4mlir.double_buffer = true } in
  let ir = Axi4mlir.compile_matmul bench ~options ~m:8 ~n:8 ~k:8 () in
  let _ =
    Axi4mlir.measure bench (fun () ->
        Axi4mlir.run_matmul bench ~options ir ~a:a2 ~b:b2 ~c:c2)
  in
  let second = flow_ids () in
  Alcotest.(check bool) "second run records flow arrows" true (second <> []);
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "id %d not reused across runs" id)
        false (List.mem id first))
    second

(* ------------------------------------------------------------------ *)
(* Pass stats                                                          *)
(* ------------------------------------------------------------------ *)

let test_pass_stats () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Cs" () in
  let bench = Axi4mlir.create accel in
  let stats = ref [] in
  let tracer = Trace.create () in
  Trace.enable tracer ~clock:(fun () -> 0.0);
  let _ir =
    Axi4mlir.compile bench ~stats ~tracer (Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 ())
  in
  Alcotest.(check bool) "one stat per pass" true (List.length !stats >= 4);
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.Pass.st_pass ^ " counts ops") true
        (s.Pass.st_ops_before > 0 && s.Pass.st_ops_after > 0);
      Alcotest.(check bool) (s.Pass.st_pass ^ " non-negative time") true
        (s.Pass.st_seconds >= 0.0))
    !stats;
  let compile_events = Trace.events tracer in
  Alcotest.(check int) "one compile-track event per pass" (List.length !stats)
    (List.length
       (List.filter (fun e -> e.Trace.ev_track = Trace.compile_track) compile_events));
  let report = Pass.report_stats !stats in
  Alcotest.(check bool) "report names a pass" true
    (List.exists
       (fun s ->
         let needle = s.Pass.st_pass in
         let nl = String.length needle and rl = String.length report in
         let rec scan i = i + nl <= rl && (String.sub report i nl = needle || scan (i + 1)) in
         scan 0)
       !stats)

(* ------------------------------------------------------------------ *)
(* Zero-cost when disabled                                             *)
(* ------------------------------------------------------------------ *)

let run_once ~traced () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Cs" () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:8 ~n:12 ~k:16 in
  let ir = Axi4mlir.compile_matmul bench ~m:8 ~n:12 ~k:16 () in
  if traced then ignore (Axi4mlir.enable_tracing bench);
  Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ir ~a ~b ~c)

let test_tracing_does_not_perturb_counters () =
  let off = run_once ~traced:false () in
  let on = run_once ~traced:true () in
  List.iter2
    (fun (name, v_off) (_, v_on) ->
      Alcotest.(check (float 0.0)) ("identical " ^ name) v_off v_on)
    (Perf_counters.fields off) (Perf_counters.fields on)

let tests =
  [
    Alcotest.test_case "counter fields/JSON round-trip" `Quick test_counter_fields_roundtrip;
    Alcotest.test_case "counter arithmetic via fields" `Quick test_counter_arith_via_fields;
    Alcotest.test_case "disabled tracer is inert" `Quick test_disabled_tracer_is_inert;
    Alcotest.test_case "span deltas" `Quick test_span_deltas;
    Alcotest.test_case "traced run is well-formed" `Quick test_traced_run_well_formed;
    Alcotest.test_case "measure clears stale events" `Quick test_measure_clears_trace;
    Alcotest.test_case "chrome export is valid JSON" `Quick test_chrome_export_valid_json;
    Alcotest.test_case "phase cycles sum to aggregate" `Quick test_phase_sum_matches_aggregate;
    Alcotest.test_case "perf report renders" `Quick test_render_report;
    Alcotest.test_case "derived metrics guard division by zero" `Quick
      test_derived_metrics_zero_guard;
    Alcotest.test_case "overlap ratio: n/a blocking, measured async" `Quick
      test_overlap_ratio_both_paths;
    Alcotest.test_case "flow ids are globally unique" `Quick
      test_flow_ids_globally_unique;
    Alcotest.test_case "pass stats and compile events" `Quick test_pass_stats;
    Alcotest.test_case "tracing does not perturb counters" `Quick
      test_tracing_does_not_perturb_counters;
  ]
