(* Tests for the autotuner: search-space enumeration, static pruning,
   the result cache (including the warm-run zero-evaluation guarantee),
   search strategies and the never-slower-than-heuristic property. *)

let contains hay needle =
  let nl = String.length needle in
  let rec go i = i + nl <= String.length hay && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mm m n k = Tune_workload.Matmul { m; n; k }

let named label workload = { Tune_workload.wl_label = label; wl_workload = workload }

let candidate ?(engine = "v3") ?(size = 16) ?(flow = "Ns") ?tiles ?dma ?(db = false) () =
  {
    Tune_space.cd_engine = engine;
    cd_size = size;
    cd_flow = flow;
    cd_tiles = tiles;
    cd_dma_bytes = dma;
    cd_double_buffer = db;
  }

(* ------------------------------------------------------------------ *)
(* Space enumeration                                                   *)
(* ------------------------------------------------------------------ *)

let test_enumerate_quick () =
  (* quick space: (v3_16 + v4_16) x (Ns, Cs), nothing else *)
  let candidates = Tune_space.enumerate Tune_space.quick (mm 64 64 64) in
  Alcotest.(check int) "quick space size" 4 (List.length candidates);
  Alcotest.(check bool) "deterministic order" true
    (candidates = Tune_space.enumerate Tune_space.quick (mm 64 64 64))

let test_enumerate_respects_flows () =
  (* v1 engines only support Ns, whatever the space allows *)
  let space = { Tune_space.fig13 with Tune_space.sp_engines = [ ("v1", 16) ] } in
  let candidates = Tune_space.enumerate space (mm 64 64 64) in
  Alcotest.(check (list string)) "v1 flows" [ "Ns" ]
    (List.map (fun c -> c.Tune_space.cd_flow) candidates)

let test_enumerate_tile_variants () =
  (* flexible engines get explicit tile shapes beyond the square tile *)
  let space =
    { Tune_space.default with Tune_space.sp_engines = [ ("v4", 16) ];
      sp_flows = Some [ "Ns" ]; sp_double_buffer = [ false ] }
  in
  let candidates = Tune_space.enumerate space (mm 32 32 64) in
  let with_tiles =
    List.filter (fun c -> c.Tune_space.cd_tiles <> None) candidates
  in
  Alcotest.(check bool) "has explicit tile variants" true (with_tiles <> []);
  Alcotest.(check bool) "keeps the square default" true
    (List.exists (fun c -> c.Tune_space.cd_tiles = None) candidates)

let test_enumerate_conv () =
  let candidates =
    Tune_space.enumerate Tune_space.default
      (Tune_workload.Conv { ic = 4; ih = 8; iw = 8; oc = 2; fhw = 3; stride = 1 })
  in
  Alcotest.(check int) "conv space: 3 flows x 2 double-buffer" 6 (List.length candidates);
  List.iter
    (fun c -> Alcotest.(check string) "conv engine" "conv" c.Tune_space.cd_engine)
    candidates

let test_config_of_candidate_errors () =
  (match Tune_space.config_of_candidate (candidate ~engine:"v1" ~flow:"Cs" ()) with
  | Error msg ->
    Alcotest.(check bool) "names the flow" true (contains msg "Cs")
  | Ok _ -> Alcotest.fail "v1/Cs must not instantiate");
  match Tune_space.config_of_candidate (candidate ~engine:"v9" ()) with
  | Error msg ->
    Alcotest.(check bool) "lists presets" true (contains msg "v3_16")
  | Ok _ -> Alcotest.fail "unknown engine must not instantiate"

(* ------------------------------------------------------------------ *)
(* Pruning                                                             *)
(* ------------------------------------------------------------------ *)

let test_prune_non_dividing () =
  match Tune_prune.check (mm 60 60 60) (candidate ()) with
  | Error Tune_prune.Non_dividing -> ()
  | other ->
    Alcotest.failf "expected Non_dividing, got %s"
      (match other with
      | Ok _ -> "Ok"
      | Error r -> Tune_prune.reason_to_string r)

let test_prune_capacity () =
  (* v4_16 buffers hold 4096 elements; a 128x64 tile does not fit *)
  match
    Tune_prune.check (mm 128 128 128)
      (candidate ~engine:"v4" ~tiles:(128, 64, 64) ())
  with
  | Error Tune_prune.Capacity -> ()
  | other ->
    Alcotest.failf "expected Capacity, got %s"
      (match other with
      | Ok _ -> "Ok"
      | Error r -> Tune_prune.reason_to_string r)

let test_prune_dma_overflow () =
  (* a 64-byte DMA window cannot carry a 16x16 tile plus its opcode *)
  match Tune_prune.check (mm 64 64 64) (candidate ~dma:64 ()) with
  | Error Tune_prune.Dma_overflow -> ()
  | other ->
    Alcotest.failf "expected Dma_overflow, got %s"
      (match other with
      | Ok _ -> "Ok"
      | Error r -> Tune_prune.reason_to_string r)

let test_prune_dominated () =
  (* two explicit tile variants of the same group: the one worse on
     both predicted cycles and transfer volume is dominated *)
  let good = candidate ~engine:"v4" ~flow:"Cs" ~tiles:(64, 64, 64) () in
  let bad = candidate ~engine:"v4" ~flow:"Cs" ~tiles:(16, 16, 16) () in
  let kept, dropped = Tune_prune.prune (mm 64 64 64) [ good; bad ] in
  Alcotest.(check bool) "good survives" true (List.mem good kept);
  Alcotest.(check bool) "bad dominated" true
    (List.exists
       (fun (c, r) -> c = bad && r = Tune_prune.Dominated)
       dropped)

let test_prune_keeps_default_tiles () =
  (* square-default candidates are never dominance-pruned: they anchor
     the hand-picked baselines *)
  let default = candidate ~engine:"v4" ~flow:"Cs" () in
  let better = candidate ~engine:"v4" ~flow:"Cs" ~tiles:(64, 64, 64) () in
  let kept, _ = Tune_prune.prune (mm 64 64 64) [ default; better ] in
  Alcotest.(check bool) "default kept" true (List.mem default kept)

let test_predict_opcode_structure () =
  (* same flow and size: the fused-opcode v1 engine must predict
     faster than the split-opcode v3 engine (it issues fewer DMA
     transactions per iteration), matching the simulator's ranking *)
  let p engine = Tune_prune.predict (mm 64 64 64) (candidate ~engine ()) in
  Alcotest.(check bool) "v1 < v2 (Ns)" true (p "v1" < p "v2");
  Alcotest.(check bool) "v2 < v3 (Ns)" true (p "v2" < p "v3");
  Alcotest.(check bool) "rejected predicts infinity" true
    (Tune_prune.predict (mm 60 60 60) (candidate ()) = infinity)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_roundtrip () =
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:16 () in
  let c1 = candidate () and c2 = candidate ~flow:"Cs" () in
  let k1 = Tune_cache.key (mm 64 64 64) config c1 in
  let k2 = Tune_cache.key (mm 64 64 64) config c2 in
  Alcotest.(check bool) "distinct candidates, distinct keys" true (k1 <> k2);
  Alcotest.(check string) "key is deterministic" k1
    (Tune_cache.key (mm 64 64 64) config c1);
  let cache = Tune_cache.create () in
  Tune_cache.add cache ~key:k1 ~label:"t" ~workload:(mm 64 64 64) ~candidate:c1
    (Tune_cache.Cycles 123.0);
  Tune_cache.add cache ~key:k2 ~label:"t" ~workload:(mm 64 64 64) ~candidate:c2
    (Tune_cache.Rejected "because");
  let path = Filename.temp_file "tune_cache" ".json" in
  Tune_cache.save cache path;
  (match Tune_cache.load path with
  | Error msg -> Alcotest.fail msg
  | Ok reloaded ->
    Alcotest.(check int) "size" 2 (Tune_cache.size reloaded);
    (match Tune_cache.find reloaded k1 with
    | Some (Tune_cache.Cycles c) -> Alcotest.(check (float 0.0)) "cycles" 123.0 c
    | _ -> Alcotest.fail "k1 missing");
    match Tune_cache.find reloaded k2 with
    | Some (Tune_cache.Rejected r) -> Alcotest.(check string) "reason" "because" r
    | _ -> Alcotest.fail "k2 missing");
  Sys.remove path

let test_cache_missing_and_bad () =
  (match Tune_cache.load "/nonexistent/tune-cache.json" with
  | Ok cache -> Alcotest.(check int) "missing file = empty cache" 0 (Tune_cache.size cache)
  | Error msg -> Alcotest.fail msg);
  let path = Filename.temp_file "tune_cache" ".json" in
  let oc = open_out path in
  output_string oc "{\"schema\": \"wrong-v9\", \"entries\": []}";
  close_out oc;
  (match Tune_cache.load path with
  | Error msg ->
    Alcotest.(check bool) "names the schema" true (contains msg "schema")
  | Ok _ -> Alcotest.fail "wrong schema must not load");
  Sys.remove path

let test_warm_cache_zero_evaluations () =
  (* the tentpole guarantee: a second run against a warm cache performs
     zero pipeline evaluations, observed through the metrics counter *)
  Metrics.enable Metrics.default;
  Metrics.reset Metrics.default;
  let cache = Tune_cache.create () in
  let opts =
    { Tuner.default_options with Tuner.space = Tune_space.quick; cache = Some cache }
  in
  let first = Tuner.tune opts [ named "warm" (mm 16 16 16) ] in
  let cold_evals = Metrics.counter_value "tuner_evaluations" in
  Alcotest.(check bool) "cold run evaluates" true (cold_evals > 0.0);
  Metrics.reset Metrics.default;
  let second = Tuner.tune opts [ named "warm" (mm 16 16 16) ] in
  Alcotest.(check (float 0.0)) "warm run: tuner_evaluations = 0" 0.0
    (Metrics.counter_value "tuner_evaluations");
  Alcotest.(check bool) "warm run: cache hits" true
    (Metrics.counter_value "tuner_cache_hits" > 0.0);
  let best r =
    match (List.hd r.Tune_report.rp_results).Tune_report.r_best with
    | Some b -> (b.Tune_report.bs_candidate, b.Tune_report.bs_cycles)
    | None -> Alcotest.fail "no best"
  in
  Alcotest.(check bool) "same winner" true (best first = best second);
  Alcotest.(check int) "report counts zero evaluations" 0
    (List.hd second.Tune_report.rp_results).Tune_report.r_evaluated;
  Metrics.reset Metrics.default;
  Metrics.disable Metrics.default

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

let test_strategy_of_string () =
  (match Tune_strategy.of_string "grid" with
  | Ok Tune_strategy.Grid -> ()
  | _ -> Alcotest.fail "grid");
  (match Tune_strategy.of_string ~seed:7 "greedy" with
  | Ok (Tune_strategy.Greedy { seed = 7; budget = None }) -> ()
  | _ -> Alcotest.fail "greedy");
  match Tune_strategy.of_string "annealing" with
  | Error msg -> Alcotest.(check bool) "lists strategies" true (contains msg "greedy")
  | Ok _ -> Alcotest.fail "unknown strategy must error"

let test_grid_visits_everything () =
  let seen = ref [] in
  let best, evals =
    Tune_strategy.run Tune_strategy.Grid ~n:5
      ~predict:(fun i -> float_of_int i)
      ~neighbors:(fun _ -> [])
      ~eval:(fun i ->
        seen := i :: !seen;
        if i = 3 then Some 1.0 else Some (float_of_int (10 + i)))
  in
  Alcotest.(check int) "evaluates all" 5 evals;
  Alcotest.(check (list int)) "each exactly once" [ 0; 1; 2; 3; 4 ]
    (List.sort compare !seen);
  Alcotest.(check (option (pair int (float 0.0)))) "finds the min" (Some (3, 1.0)) best

let test_greedy_budget_and_seeding () =
  (* prediction ranks index 7 best (and its neighbor 8 ahead of 6);
     the actual minimum is at 8: greedy must climb to it within a
     quarter of the 16-point space *)
  let actual i = if i = 8 then 1.0 else float_of_int (100 + i) in
  let predicted i = if i = 7 then 0.0 else float_of_int (100 - i) in
  let best, evals =
    Tune_strategy.run (Tune_strategy.Greedy { seed = 0; budget = None }) ~n:16
      ~predict:predicted
      ~neighbors:(fun i -> List.filter (fun j -> j >= 0 && j < 16) [ i - 1; i + 1 ])
      ~eval:(fun i -> Some (actual i))
  in
  Alcotest.(check bool) "within budget" true (evals <= 4);
  Alcotest.(check (option (pair int (float 0.0)))) "climbed to the optimum"
    (Some (8, 1.0)) best

let test_greedy_deterministic () =
  let space = Tune_space.fig13 in
  let opts seed =
    { Tuner.default_options with
      Tuner.strategy = Tune_strategy.Greedy { seed; budget = None }; space }
  in
  let run seed = Tuner.tune (opts seed) [ named "det" (mm 32 32 32) ] in
  let fingerprint r =
    let result = List.hd r.Tune_report.rp_results in
    ( result.Tune_report.r_evaluated,
      match result.Tune_report.r_best with
      | Some b -> Tune_space.candidate_to_string b.Tune_report.bs_candidate
      | None -> "none" )
  in
  Alcotest.(check (pair int string)) "same seed, same outcome" (fingerprint (run 3))
    (fingerprint (run 3))

let test_greedy_quality_on_fig13 () =
  (* the exp_tune acceptance gate at miniature dims: within 5% of the
     grid best using at most a quarter of the grid's evaluations *)
  let grid =
    Tuner.tune
      { Tuner.default_options with Tuner.space = Tune_space.fig13 }
      [ named "grid" (mm 32 32 32) ]
  in
  let greedy =
    Tuner.tune
      { Tuner.default_options with
        Tuner.strategy = Tune_strategy.Greedy { seed = 0; budget = None };
        space = Tune_space.fig13 }
      [ named "greedy" (mm 32 32 32) ]
  in
  let result r = List.hd r.Tune_report.rp_results in
  let cycles r =
    match (result r).Tune_report.r_best with
    | Some b -> b.Tune_report.bs_cycles
    | None -> Alcotest.fail "no best"
  in
  Alcotest.(check bool) "within 5% of grid" true
    (cycles greedy <= 1.05 *. cycles grid);
  Alcotest.(check bool) "a quarter of the evaluations" true
    (((result greedy).Tune_report.r_evaluated - 1) * 4
    <= (result grid).Tune_report.r_evaluated - 1)

(* ------------------------------------------------------------------ *)
(* End-to-end guarantees                                               *)
(* ------------------------------------------------------------------ *)

let test_never_slower_than_heuristic_matmul () =
  let report =
    Tuner.tune
      { Tuner.default_options with Tuner.space = Tune_space.quick }
      [ named "nsh" (mm 32 32 32) ]
  in
  let result = List.hd report.Tune_report.rp_results in
  match (result.Tune_report.r_best, result.Tune_report.r_baseline) with
  | Some best, Some (_, baseline) ->
    Alcotest.(check bool) "tuned <= heuristic" true
      (best.Tune_report.bs_cycles <= baseline)
  | _ -> Alcotest.fail "expected both a best and a baseline"

let test_never_slower_than_heuristic_conv () =
  let conv = Tune_workload.Conv { ic = 4; ih = 8; iw = 8; oc = 2; fhw = 3; stride = 1 } in
  let report =
    Tuner.tune Tuner.default_options [ named "conv" conv ]
  in
  let result = List.hd report.Tune_report.rp_results in
  match (result.Tune_report.r_best, result.Tune_report.r_baseline) with
  | Some best, Some (_, baseline) ->
    Alcotest.(check bool) "tuned <= Ws default" true
      (best.Tune_report.bs_cycles <= baseline)
  | _ -> Alcotest.fail "expected both a best and a baseline"

let test_report_json_and_render () =
  let report =
    Tuner.tune
      { Tuner.default_options with Tuner.space = Tune_space.quick }
      [ named "rj" (mm 16 16 16) ]
  in
  (match Tune_report.to_json report with
  | Json.Obj fields ->
    Alcotest.(check string) "schema" "axi4mlir-tune-report-v1"
      (Json.to_str (List.assoc "schema" fields));
    (match List.assoc "results" fields with
    | Json.List [ r ] ->
      Alcotest.(check string) "label" "rj" (Json.to_str (Json.member "label" r))
    | _ -> Alcotest.fail "one result expected")
  | _ -> Alcotest.fail "object expected");
  Alcotest.(check bool) "render mentions the workload" true
    (contains (Tune_report.render report) "rj")

let test_trace_on_tuner_track () =
  let tracer = Trace.create () in
  Trace.enable tracer;
  ignore
    (Tuner.tune
       { Tuner.default_options with
         Tuner.space = Tune_space.quick; tracer = Some tracer }
       [ named "tr" (mm 16 16 16) ]);
  let events = Trace.events tracer in
  Alcotest.(check bool) "events recorded" true (events <> []);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check int) "tuner track" Trace.tuner_track e.Trace.ev_track)
    events

let test_seed_from_bottleneck () =
  Remarks.enable ();
  Remarks.clear ();
  let opts strategy seed_from_bottleneck =
    { Tuner.default_options with
      Tuner.space = Tune_space.quick; strategy; seed_from_bottleneck }
  in
  let winner r =
    match (List.hd r.Tune_report.rp_results).Tune_report.r_best with
    | Some b ->
      (Tune_space.candidate_to_string b.Tune_report.bs_candidate,
       b.Tune_report.bs_cycles)
    | None -> Alcotest.fail "no best"
  in
  (* grid is exhaustive, so biasing the predicted ranking must not
     change the winner — seeding only reorders the frontier *)
  let plain = Tuner.tune (opts Tune_strategy.Grid false) [ named "sb" (mm 16 16 16) ] in
  Alcotest.(check bool) "off by default: no seed remark" true
    (not
       (List.exists (fun r -> r.Remarks.r_name = "bottleneck-seed") (Remarks.all ())));
  let seeded = Tuner.tune (opts Tune_strategy.Grid true) [ named "sb" (mm 16 16 16) ] in
  Alcotest.(check bool) "grid winner unchanged" true (winner plain = winner seeded);
  Alcotest.(check bool) "seed remark names the bottleneck" true
    (List.exists (fun r -> r.Remarks.r_name = "bottleneck-seed") (Remarks.all ()));
  (* seeded greedy keeps the never-slower-than-heuristic guarantee *)
  let greedy =
    Tuner.tune
      (opts (Tune_strategy.Greedy { seed = 0; budget = None }) true)
      [ named "sbg" (mm 32 32 32) ]
  in
  let result = List.hd greedy.Tune_report.rp_results in
  (match (result.Tune_report.r_best, result.Tune_report.r_baseline) with
  | Some best, Some (_, baseline) ->
    Alcotest.(check bool) "seeded tuned <= heuristic" true
      (best.Tune_report.bs_cycles <= baseline)
  | _ -> Alcotest.fail "expected both a best and a baseline");
  Remarks.clear ();
  Remarks.disable ()

let test_remarks_emitted () =
  Remarks.enable ();
  Remarks.clear ();
  ignore
    (Tuner.tune
       { Tuner.default_options with Tuner.space = Tune_space.quick }
       [ named "rm" (mm 16 16 16) ]);
  Alcotest.(check bool) "Applied remark" true (Remarks.count Remarks.Applied >= 1);
  Alcotest.(check bool) "Analysis remark" true (Remarks.count Remarks.Analysis >= 1);
  Remarks.clear ();
  Remarks.disable ()

(* ------------------------------------------------------------------ *)
(* Workload specs and presets                                          *)
(* ------------------------------------------------------------------ *)

let test_workload_specs () =
  (match Tune_workload.of_spec "matmul:8,16,32" with
  | Ok [ { Tune_workload.wl_workload = Tune_workload.Matmul { m = 8; n = 16; k = 32 }; _ } ]
    -> ()
  | _ -> Alcotest.fail "matmul spec");
  (match Tune_workload.of_spec "resnet18" with
  | Ok layers ->
    Alcotest.(check int) "11 resnet18 layers" 11 (List.length layers)
  | Error msg -> Alcotest.fail msg);
  (match Tune_workload.of_spec "tinybert" with
  | Ok layers ->
    Alcotest.(check bool) "tinybert non-empty" true (layers <> []);
    List.iter
      (fun (l : Tune_workload.named) ->
        match l.Tune_workload.wl_workload with
        | Tune_workload.Matmul { m; n; k } ->
          Alcotest.(check bool) "padded to 16" true
            (m mod 16 = 0 && n mod 16 = 0 && k mod 16 = 0)
        | Tune_workload.Conv _ -> Alcotest.fail "tinybert is matmuls")
      layers
  | Error msg -> Alcotest.fail msg);
  match Tune_workload.of_spec "conv:4,8,2,3" with
  | Ok [ { Tune_workload.wl_workload = Tune_workload.Conv { ic = 4; fhw = 3; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "conv spec"

let test_find_by_name_positive () =
  (match Presets.find_by_name "v2_8" with
  | Ok config ->
    Alcotest.(check string) "name" "v2_8" config.Accel_config.accel_name
  | Error msg -> Alcotest.fail msg);
  (match Presets.find_by_name ~flow:"Cs" "v3_16" with
  | Ok config -> Alcotest.(check string) "flow" "Cs" config.Accel_config.selected_flow
  | Error msg -> Alcotest.fail msg);
  (match Presets.find_by_name "conv2d" with
  | Ok config -> Alcotest.(check string) "conv default flow" "Ws" config.Accel_config.selected_flow
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "13 presets" 13 (List.length Presets.names)

(* ------------------------------------------------------------------ *)
(* Golden config hash                                                  *)
(* ------------------------------------------------------------------ *)

let test_config_hash_pinned () =
  (* COMPATIBILITY: these values are part of the persisted bench and
     tune-cache formats (see benchdiff.mli). If this test fails, the
     hash algorithm changed — bump the axi4mlir-bench-v1 and
     axi4mlir-tune-v1 schema strings instead of re-pinning blindly. *)
  Alcotest.(check string) "FNV-1a reference vector" "b14f3afbef33d823"
    (Benchdiff.stable_hash "axi4mlir");
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Cs" () in
  Alcotest.(check string) "pinned config hash" "8f4c69f974375b62"
    (Benchdiff.config_hash (Accel_config.to_json config))

let tests =
  [
    Alcotest.test_case "enumerate quick space" `Quick test_enumerate_quick;
    Alcotest.test_case "enumerate respects engine flows" `Quick test_enumerate_respects_flows;
    Alcotest.test_case "enumerate tile variants" `Quick test_enumerate_tile_variants;
    Alcotest.test_case "enumerate conv space" `Quick test_enumerate_conv;
    Alcotest.test_case "candidate instantiation errors" `Quick test_config_of_candidate_errors;
    Alcotest.test_case "prune non-dividing" `Quick test_prune_non_dividing;
    Alcotest.test_case "prune capacity" `Quick test_prune_capacity;
    Alcotest.test_case "prune DMA overflow" `Quick test_prune_dma_overflow;
    Alcotest.test_case "prune dominated tiles" `Quick test_prune_dominated;
    Alcotest.test_case "prune keeps default tiles" `Quick test_prune_keeps_default_tiles;
    Alcotest.test_case "predict models opcode structure" `Quick test_predict_opcode_structure;
    Alcotest.test_case "cache roundtrip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache missing/bad files" `Quick test_cache_missing_and_bad;
    Alcotest.test_case "warm cache: zero evaluations" `Quick test_warm_cache_zero_evaluations;
    Alcotest.test_case "strategy parsing" `Quick test_strategy_of_string;
    Alcotest.test_case "grid visits everything once" `Quick test_grid_visits_everything;
    Alcotest.test_case "greedy: seeded hill climb" `Quick test_greedy_budget_and_seeding;
    Alcotest.test_case "greedy: deterministic per seed" `Quick test_greedy_deterministic;
    Alcotest.test_case "greedy: fig13 quality gate" `Quick test_greedy_quality_on_fig13;
    Alcotest.test_case "never slower than heuristic (matmul)" `Quick
      test_never_slower_than_heuristic_matmul;
    Alcotest.test_case "never slower than heuristic (conv)" `Quick
      test_never_slower_than_heuristic_conv;
    Alcotest.test_case "report JSON and render" `Quick test_report_json_and_render;
    Alcotest.test_case "trace lands on the tuner track" `Quick test_trace_on_tuner_track;
    Alcotest.test_case "remarks emitted" `Quick test_remarks_emitted;
    Alcotest.test_case "bottleneck seeding" `Quick test_seed_from_bottleneck;
    Alcotest.test_case "workload specs" `Quick test_workload_specs;
    Alcotest.test_case "find_by_name positive" `Quick test_find_by_name_positive;
    Alcotest.test_case "config hash pinned" `Quick test_config_hash_pinned;
  ]
