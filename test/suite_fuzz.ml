(* Tests for the differential fuzzing subsystem itself: deterministic
   generation, oracle classification, the delta-debugging shrinker
   (demonstrated against an injected tiling bug), and the replayable
   corpus format. *)

let mk_matmul_case ?(engine = "v3") ?(size = 4) ?(flow = "Ns") ?tiles
    ?(cpu_tiling = false) ?(copy_specialization = true) ?(to_runtime_calls = true)
    ?(init_c = false) ~m ~n ~k () =
  {
    Fuzz_case.engine;
    size;
    flow;
    workload = Fuzz_case.Matmul { m; n; k };
    tiles;
    cpu_tiling;
    copy_specialization;
    coalesce_transfers = false;
    double_buffer = false;
    to_runtime_calls;
    dma_buffer_bytes = 0xFF00;
    data_seed = 3;
    init_c;
  }

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_generation_deterministic () =
  let sequence seed = List.init 40 (fun index -> Fuzz_gen.case_at ~seed ~index ()) in
  Alcotest.(check bool) "same seed, same sequence" true
    (List.for_all2 Fuzz_case.equal (sequence 42) (sequence 42));
  (* per-index derivation is order-insensitive: regenerating one case in
     isolation gives the same case as generating the whole sequence *)
  let full = sequence 42 in
  Alcotest.(check bool) "case 17 regenerates in isolation" true
    (Fuzz_case.equal (List.nth full 17) (Fuzz_gen.case_at ~seed:42 ~index:17 ()));
  Alcotest.(check bool) "different seeds differ somewhere" true
    (List.exists2 (fun a b -> not (Fuzz_case.equal a b)) full (sequence 43))

let test_rng_ranges () =
  let rng = Fuzz_rng.create 7 in
  for _ = 1 to 1000 do
    let v = Fuzz_rng.int_range rng 3 9 in
    Alcotest.(check bool) "int_range in bounds" true (v >= 3 && v <= 9)
  done;
  let rng = Fuzz_rng.create 8 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "bits non-negative" true (Fuzz_rng.bits rng >= 0)
  done

(* ------------------------------------------------------------------ *)
(* Oracle classification                                               *)
(* ------------------------------------------------------------------ *)

let test_oracle_passes_known_good () =
  List.iter
    (fun case ->
      match Fuzz_oracle.run case with
      | Fuzz_oracle.Pass -> ()
      | other ->
        Alcotest.fail
          (Printf.sprintf "%s: expected pass, got %s" (Fuzz_case.to_string case)
             (Fuzz_oracle.outcome_to_string other)))
    [
      mk_matmul_case ~m:8 ~n:8 ~k:8 ();
      mk_matmul_case ~flow:"Cs" ~m:8 ~n:12 ~k:8 ~init_c:true ();
      mk_matmul_case ~engine:"v1" ~flow:"Ns" ~m:8 ~n:8 ~k:4 ();
      mk_matmul_case ~engine:"v4" ~flow:"As" ~tiles:[ 8; 4; 8 ] ~m:16 ~n:8 ~k:8 ();
      mk_matmul_case ~to_runtime_calls:false ~m:8 ~n:8 ~k:8 ();
    ]

let test_oracle_classifies_rejection () =
  (* non-dividing extent: the pipeline must refuse with a structured
     reason, which the oracle reports as Rejected, not Failed *)
  (match Fuzz_oracle.run (mk_matmul_case ~m:10 ~n:8 ~k:8 ()) with
  | Fuzz_oracle.Rejected _ -> ()
  | other ->
    Alcotest.fail ("non-dividing extent: " ^ Fuzz_oracle.outcome_to_string other));
  (* unknown flow for the engine: rejected at configuration time *)
  match Fuzz_oracle.run (mk_matmul_case ~engine:"v1" ~flow:"Cs" ~m:8 ~n:8 ~k:8 ()) with
  | Fuzz_oracle.Rejected reason ->
    Alcotest.(check bool) "names the configuration" true (String.length reason > 0)
  | other -> Alcotest.fail ("unknown flow: " ^ Fuzz_oracle.outcome_to_string other)

let test_oracle_conv_passes () =
  let case =
    {
      Fuzz_case.engine = "conv";
      size = 0;
      flow = "Ws";
      workload = Fuzz_case.Conv { ic = 2; ihw = 6; oc = 2; fhw = 3; stride = 1 };
      tiles = None;
      cpu_tiling = false;
      copy_specialization = true;
      coalesce_transfers = false;
      double_buffer = false;
      to_runtime_calls = true;
      dma_buffer_bytes = 0xFF00;
      data_seed = 11;
      init_c = false;
    }
  in
  match Fuzz_oracle.run case with
  | Fuzz_oracle.Pass -> ()
  | other -> Alcotest.fail (Fuzz_oracle.outcome_to_string other)

let test_campaign_all_clean () =
  let report = Fuzz_driver.campaign ~seed:123 ~count:25 () in
  Alcotest.(check int) "no failures" 0 report.Fuzz_driver.failed;
  Alcotest.(check int) "all cases accounted for" 25
    (report.Fuzz_driver.passed + report.Fuzz_driver.rejected)

(* ------------------------------------------------------------------ *)
(* Fault injection: the oracle catches an off-by-one tiling bug and the
   shrinker minimises it.                                              *)
(* ------------------------------------------------------------------ *)

let test_fault_injection_caught_and_shrunk () =
  let case = mk_matmul_case ~m:32 ~n:32 ~k:32 () in
  (match Fuzz_oracle.run case with
  | Fuzz_oracle.Pass -> ()
  | other ->
    Alcotest.fail ("case must pass without the fault: " ^ Fuzz_oracle.outcome_to_string other));
  Alcotest.(check bool) "fault off by default" true (!Tiling.fault = Tiling.No_fault);
  Tiling.fault := Tiling.Off_by_one_first_tile;
  Fun.protect
    ~finally:(fun () -> Tiling.fault := Tiling.No_fault)
    (fun () ->
      match Fuzz_driver.run_case case with
      | Fuzz_oracle.Pass | Fuzz_oracle.Rejected _ ->
        Alcotest.fail "oracle missed the injected tiling bug"
      | Fuzz_oracle.Failed _ ->
        let { Fuzz_shrink.minimised; steps; _ } = Fuzz_driver.shrink case in
        Alcotest.(check bool) "shrinker made progress" true (steps > 0);
        (match Fuzz_driver.run_case minimised with
        | Fuzz_oracle.Failed _ -> ()
        | _ -> Alcotest.fail "minimised case no longer fails");
        match minimised.Fuzz_case.workload with
        | Fuzz_case.Matmul { m; n; k } ->
          Alcotest.(check bool)
            (Printf.sprintf "repro is at most 8x8x8 (got %dx%dx%d)" m n k)
            true
            (m <= 8 && n <= 8 && k <= 8)
        | _ -> Alcotest.fail "workload kind changed under shrinking");
  (* the fault is reverted: the original case passes again *)
  match Fuzz_oracle.run case with
  | Fuzz_oracle.Pass -> ()
  | other -> Alcotest.fail ("fault not reverted: " ^ Fuzz_oracle.outcome_to_string other)

let test_shrinker_reaches_fixpoint () =
  (* a predicate every case satisfies: the shrinker must drive the
     workload to the granule floor and strip every optional feature *)
  let case =
    mk_matmul_case ~cpu_tiling:true ~tiles:[ 8; 8; 8 ] ~init_c:true ~m:32 ~n:32 ~k:32 ()
  in
  let { Fuzz_shrink.minimised; _ } = Fuzz_shrink.minimise ~still_fails:(fun _ -> true) case in
  (match minimised.Fuzz_case.workload with
  | Fuzz_case.Matmul { m; n; k } ->
    Alcotest.(check (list int)) "granule floor" [ 4; 4; 4 ] [ m; n; k ]
  | _ -> Alcotest.fail "workload kind changed");
  Alcotest.(check bool) "options stripped" true
    (minimised.Fuzz_case.tiles = None
    && (not minimised.Fuzz_case.cpu_tiling)
    && (not minimised.Fuzz_case.init_c)
    && minimised.Fuzz_case.data_seed = 1)

(* ------------------------------------------------------------------ *)
(* Corpus round trip                                                   *)
(* ------------------------------------------------------------------ *)

let test_corpus_roundtrip () =
  let cases = List.init 6 (fun index -> Fuzz_gen.case_at ~seed:99 ~index ()) in
  let path = Filename.temp_file "axi4mlir_corpus" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fuzz_corpus.save path (Fuzz_gen.case_at ~seed:99 ~index:0 () :: List.tl cases);
      (* appending and hand-annotation are part of the format *)
      Fuzz_corpus.append path (List.hd cases);
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "# comment line\n\n";
      close_out oc;
      let loaded, errors = Fuzz_corpus.load path in
      Alcotest.(check (list string)) "no parse errors" [] errors;
      Alcotest.(check int) "all cases loaded" 7 (List.length loaded);
      Alcotest.(check bool) "cases survive the round trip" true
        (List.for_all2 Fuzz_case.equal cases (Util.list_take 6 loaded)))

let test_corpus_reports_bad_lines () =
  let path = Filename.temp_file "axi4mlir_corpus" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"engine\": \"v3\"}\nnot json at all\n";
      close_out oc;
      let loaded, errors = Fuzz_corpus.load path in
      Alcotest.(check int) "nothing loaded" 0 (List.length loaded);
      Alcotest.(check int) "both lines reported" 2 (List.length errors));
  match Fuzz_corpus.load_result "/nonexistent/corpus.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing corpus file accepted"

(* ------------------------------------------------------------------ *)
(* Perf-counter invariants at the suite level                          *)
(* ------------------------------------------------------------------ *)

let cache_refs_of_native dim =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:dim ~n:dim ~k:dim in
  let counters =
    Axi4mlir.measure bench (fun () -> Cpu_reference.matmul bench.Axi4mlir.soc ~a ~b ~c)
  in
  Perf_counters.cache_references counters

let test_cache_refs_monotone_in_footprint () =
  let refs = List.map cache_refs_of_native [ 8; 16; 32 ] in
  match refs with
  | [ r8; r16; r32 ] ->
    Alcotest.(check bool)
      (Printf.sprintf "refs grow with footprint (%.0f <= %.0f <= %.0f)" r8 r16 r32)
      true
      (r8 < r16 && r16 < r32)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Autotuner differential property                                     *)
(* ------------------------------------------------------------------ *)

let test_tuner_property_campaign () =
  (* small replayable campaign over the tuner's end-to-end guarantee:
     the returned config instantiates, validates, and never loses to
     the heuristic default (Fuzz_tune) *)
  for index = 0 to 7 do
    match Fuzz_tune.check_at ~seed:42 ~index with
    | Fuzz_tune.Pass | Fuzz_tune.Skip _ -> ()
    | Fuzz_tune.Fail reason ->
      Alcotest.fail (Printf.sprintf "tuner case seed=42 index=%d: %s" index reason)
  done

let test_roundtrip_checker_flags_difference () =
  (* sanity for the round-trip law itself: a compiled module passes *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let bench = Axi4mlir.create accel in
  let m = Axi4mlir.compile_matmul bench ~m:8 ~n:8 ~k:8 () in
  match Fuzz_roundtrip.check ~stage:"test" m with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let tests =
  [
    Alcotest.test_case "generation is deterministic" `Quick test_generation_deterministic;
    Alcotest.test_case "rng stays in range" `Quick test_rng_ranges;
    Alcotest.test_case "oracle passes known-good cases" `Quick test_oracle_passes_known_good;
    Alcotest.test_case "oracle classifies rejections" `Quick test_oracle_classifies_rejection;
    Alcotest.test_case "oracle passes conv" `Quick test_oracle_conv_passes;
    Alcotest.test_case "small campaign is clean" `Quick test_campaign_all_clean;
    Alcotest.test_case "injected tiling bug is caught and shrunk" `Quick
      test_fault_injection_caught_and_shrunk;
    Alcotest.test_case "shrinker reaches the granule floor" `Quick
      test_shrinker_reaches_fixpoint;
    Alcotest.test_case "corpus round trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus reports bad lines" `Quick test_corpus_reports_bad_lines;
    Alcotest.test_case "cache refs monotone in footprint" `Quick
      test_cache_refs_monotone_in_footprint;
    Alcotest.test_case "tuner never loses to the heuristic" `Quick
      test_tuner_property_campaign;
    Alcotest.test_case "round-trip checker accepts compiled IR" `Quick
      test_roundtrip_checker_flags_difference;
  ]
