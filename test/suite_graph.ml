(* Whole-model graph IR + buffer residency: the region model's ring
   eviction and capacity accounting, the conv engine's residency ISA
   edge cases, graph validation, the residency scheduler's decisions
   and remarks, executor bit-identity with strict DMA-word reduction,
   the serving oracle's memo table, the pinned conv cycles-per-MAC
   proxy, the QCheck graph-fuzz oracle and the axi4mlir-graph-v1
   golden artifact. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok = function Ok v -> v | Error msg -> Alcotest.fail msg

let err = function
  | Error msg -> msg
  | Ok _ -> Alcotest.fail "expected Error, got Ok"

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Residency regions: ring allocation, capacity, invalidation         *)
(* ------------------------------------------------------------------ *)

let test_region_ring_eviction () =
  let r = Accel_device.make_region ~name:"ring" ~capacity_words:100 in
  let off, ev = ok (Accel_device.region_install r ~tag:"A" ~words:40) in
  check_int "A at offset 0" 0 off;
  check_int "A evicts nothing" 0 (List.length ev);
  let off, ev = ok (Accel_device.region_install r ~tag:"B" ~words:40) in
  check_int "B at offset 40" 40 off;
  check_int "B evicts nothing" 0 (List.length ev);
  (* tail is 20 words; C needs 30 -> wraps to 0 and displaces A *)
  let off, ev = ok (Accel_device.region_install r ~tag:"C" ~words:30) in
  check_int "C wraps to offset 0" 0 off;
  Alcotest.(check (list string)) "C evicts exactly A" [ "A" ] ev;
  (* D claims [30,70), overlapping B at [40,80) *)
  let off, ev = ok (Accel_device.region_install r ~tag:"D" ~words:40) in
  check_int "D at offset 30" 30 off;
  Alcotest.(check (list string)) "D evicts exactly B" [ "B" ] ev;
  Alcotest.(check (list string)) "survivors in installation order" [ "C"; "D" ]
    (Accel_device.region_tags r);
  check_int "eviction counter" 2 r.Accel_device.rg_evictions;
  check_int "words resident" 70 (Accel_device.region_used r)

let test_region_capacity_exactly_full () =
  let r = Accel_device.make_region ~name:"w" ~capacity_words:64 in
  (* words = capacity succeeds; capacity + 1 is a structured error *)
  let off, ev = ok (Accel_device.region_install r ~tag:"full" ~words:64) in
  check_int "full slice at offset 0" 0 off;
  check_int "nothing evicted" 0 (List.length ev);
  check_int "region is exactly full" 64 (Accel_device.region_used r);
  let msg = err (Accel_device.region_install r ~tag:"huge" ~words:65) in
  check_bool "oversize error names the capacity" true
    (contains ~affix:"capacity is 64" msg);
  check_bool "non-positive install is an error" true
    (Result.is_error (Accel_device.region_install r ~tag:"empty" ~words:0));
  (* the full region stays intact after the rejected installs *)
  Alcotest.(check (list string)) "rejects leave residents alone" [ "full" ]
    (Accel_device.region_tags r);
  (* a second full-capacity tenant evicts the first *)
  let _, ev = ok (Accel_device.region_install r ~tag:"next" ~words:64) in
  Alcotest.(check (list string)) "full tenant displaced" [ "full" ] ev

let test_region_overwrite_invalidates () =
  let r = Accel_device.make_region ~name:"w" ~capacity_words:64 in
  let off0, _ = ok (Accel_device.region_install r ~tag:"x" ~words:10) in
  check_int "first copy at 0" 0 off0;
  (* Re-installing the same tag invalidates the old copy: exactly one
     resident entry remains and the lookup resolves to the new offset. *)
  let off1, ev = ok (Accel_device.region_install r ~tag:"x" ~words:10) in
  check_int "overwrite is not an eviction" 0 (List.length ev);
  check_int "new copy at the bump pointer" 10 off1;
  check_int "exactly one copy resident" 10 (Accel_device.region_used r);
  (match Accel_device.region_lookup r ~tag:"x" with
  | Some off -> check_int "lookup sees the new copy" 10 off
  | None -> Alcotest.fail "overwritten tag must stay resident");
  Accel_device.region_invalidate r ~tag:"x";
  check_bool "invalidate removes the tag" true
    (Accel_device.region_lookup r ~tag:"x" = None)

let test_region_hit_miss_counters () =
  let r = Accel_device.make_region ~name:"w" ~capacity_words:64 in
  ignore (ok (Accel_device.region_install r ~tag:"a" ~words:8));
  ignore (Accel_device.region_lookup r ~tag:"a");
  ignore (Accel_device.region_lookup r ~tag:"a");
  ignore (Accel_device.region_lookup r ~tag:"b");
  check_int "hits" 2 r.Accel_device.rg_hits;
  check_int "misses" 1 r.Accel_device.rg_misses

let test_region_replace_single_tenant () =
  let r = Accel_device.make_region ~name:"act" ~capacity_words:100 in
  ignore (ok (Accel_device.region_install r ~tag:"A" ~words:30));
  ignore (ok (Accel_device.region_install r ~tag:"B" ~words:30));
  let off, ev = ok (Accel_device.region_replace r ~tag:"Z" ~words:90) in
  check_int "single tenant lands at 0" 0 off;
  Alcotest.(check (list string)) "replace displaces everything in order"
    [ "A"; "B" ] ev;
  Alcotest.(check (list string)) "sole resident" [ "Z" ]
    (Accel_device.region_tags r);
  check_bool "replace enforces capacity too" true
    (Result.is_error (Accel_device.region_replace r ~tag:"W" ~words:101))

(* ------------------------------------------------------------------ *)
(* Conv engine residency ISA edge cases                               *)
(* ------------------------------------------------------------------ *)

let inst i = Axi_word.Inst i
let data f = Axi_word.Data f

let configure dev ~fhw ~ic =
  ignore
    (dev.Accel_device.consume
       [| inst Isa.reset; inst Isa.cv_set_fhw; inst fhw; inst Isa.cv_set_ic; inst ic |])

let test_device_weights_capacity () =
  (* slice = iC * fHW^2 = exactly the buffer: loads fine and computes *)
  let dev = Accel_conv.create ~capacity_elems:16 () in
  configure dev ~fhw:1 ~ic:16;
  let weights = Array.init 16 (fun i -> data (float_of_int (i + 1))) in
  ignore (dev.Accel_device.consume (Array.append [| inst Isa.cv_load_w |] weights));
  let patch = Array.make 16 (data 1.0) in
  ignore (dev.Accel_device.consume (Array.append [| inst Isa.cv_patch |] patch));
  ignore (dev.Accel_device.consume [| inst Isa.cv_drain |]);
  let out = dev.Accel_device.drain 1 in
  Alcotest.(check (float 1e-9)) "exactly-full slice computes" 136.0 out.(0);
  (* one element over capacity: the load is rejected, not truncated *)
  let dev = Accel_conv.create ~capacity_elems:16 () in
  configure dev ~fhw:1 ~ic:17;
  Alcotest.check_raises "oversize slice fails loudly"
    (Failure "conv accelerator: slice iC=17 fHW=1 exceeds capacity 16") (fun () ->
      ignore
        (dev.Accel_device.consume
           (Array.append [| inst Isa.cv_load_w |] (Array.make 17 (data 0.0)))))

let test_device_accept_exact_count () =
  let dev = Accel_conv.create () in
  configure dev ~fhw:1 ~ic:1;
  ignore (dev.Accel_device.consume [| inst Isa.cv_load_w; data 2.0 |]);
  List.iter
    (fun v -> ignore (dev.Accel_device.consume [| inst Isa.cv_patch; data v |]))
    [ 3.0; 5.0; 7.0 ];
  (* 3 pending elements; accepting a 1x2x2 image (4) must fail *)
  Alcotest.check_raises "accept checks the pending count"
    (Failure "conv accelerator: cv_accept expects exactly 4 pending elements, 3 queued")
    (fun () ->
      ignore
        (dev.Accel_device.consume
           [| inst Isa.cv_accept; inst 1; inst 2; inst 2 |]));
  (* accepting exactly 1x1x3 moves them into the resident image... *)
  ignore
    (dev.Accel_device.consume [| inst Isa.cv_accept; inst 1; inst 1; inst 3 |]);
  check_int "accept consumes the queue" 0 (dev.Accel_device.available ());
  (* ...and a resident patch reads it back through the same MAC path *)
  ignore
    (dev.Accel_device.consume
       [| inst Isa.cv_patch_resident; inst 0; inst 1; inst Isa.cv_drain |]);
  let out = dev.Accel_device.drain 1 in
  Alcotest.(check (float 1e-9)) "resident patch = w * accepted element" 20.0 out.(0)

let test_device_resident_patch_requires_image () =
  let dev = Accel_conv.create () in
  configure dev ~fhw:1 ~ic:1;
  ignore (dev.Accel_device.consume [| inst Isa.cv_load_w; data 1.0 |]);
  Alcotest.check_raises "no image, no resident patch"
    (Failure "conv accelerator: cv_patch_resident with no resident image") (fun () ->
      ignore
        (dev.Accel_device.consume [| inst Isa.cv_patch_resident; inst 0; inst 0 |]))

(* ------------------------------------------------------------------ *)
(* Graph IR validation and builders                                   *)
(* ------------------------------------------------------------------ *)

let tensor tn_id tn_name tn_kind tn_shape =
  { Graph_ir.tn_id; tn_name; tn_kind; tn_shape }

let node nd_id nd_name nd_op nd_args nd_out =
  { Graph_ir.nd_id; nd_name; nd_op; nd_args; nd_out }

let test_validate_rejects_bad_graphs () =
  (* inner-dimension mismatch: a[4,8] @ b[7,4] *)
  let bad_matmul =
    {
      Graph_ir.g_name = "bad";
      g_tensors =
        [|
          tensor 0 "a" Graph_ir.Input [ 4; 8 ];
          tensor 1 "b" Graph_ir.Weights [ 7; 4 ];
          tensor 2 "c" Graph_ir.Activation [ 4; 4 ];
        |];
      g_nodes = [| node 0 "mm" Graph_ir.Matmul [ 0; 1 ] 2 |];
      g_outputs = [ 2 ];
    }
  in
  check_bool "matmul inner-dim mismatch is rejected" true
    (Result.is_error (Graph_ir.validate bad_matmul));
  (* an activation consumed before any node produces it *)
  let unproduced =
    {
      Graph_ir.g_name = "bad";
      g_tensors =
        [|
          tensor 0 "a" Graph_ir.Input [ 4; 4 ];
          tensor 1 "b" Graph_ir.Weights [ 4; 4 ];
          tensor 2 "phantom" Graph_ir.Activation [ 4; 4 ];
          tensor 3 "c" Graph_ir.Activation [ 4; 4 ];
        |];
      g_nodes = [| node 0 "mm" Graph_ir.Matmul [ 2; 1 ] 3 |];
      g_outputs = [ 3 ];
    }
  in
  check_bool "consuming an unproduced activation is rejected" true
    (Result.is_error (Graph_ir.validate unproduced));
  (* a graph output no node produces *)
  let dangling =
    {
      Graph_ir.g_name = "bad";
      g_tensors =
        [|
          tensor 0 "a" Graph_ir.Input [ 4; 4 ];
          tensor 1 "b" Graph_ir.Weights [ 4; 4 ];
          tensor 2 "c" Graph_ir.Activation [ 4; 4 ];
          tensor 3 "never" Graph_ir.Activation [ 4; 4 ];
        |];
      g_nodes = [| node 0 "mm" Graph_ir.Matmul [ 0; 1 ] 2 |];
      g_outputs = [ 3 ];
    }
  in
  check_bool "unproduced graph output is rejected" true
    (Result.is_error (Graph_ir.validate dangling))

let conv_nodes g =
  Array.to_list g.Graph_ir.g_nodes
  |> List.filter (fun nd ->
         match nd.Graph_ir.nd_op with Graph_ir.Conv _ -> true | _ -> false)

let test_resnet18_structure () =
  let g = Graph_build.resnet18 ~width:2 () in
  Alcotest.(check unit) "builder output validates" () (ok (Graph_ir.validate g));
  check_int "20 convolutions" 20 (List.length (conv_nodes g));
  (match Graph_ir.engine_kind g with
  | Ok `Conv -> ()
  | _ -> Alcotest.fail "resnet18 must target the conv engine");
  check_bool "MAC count is positive" true (Graph_ir.macs g > 0);
  (* width scales the stem's output channels *)
  let stem = List.hd (conv_nodes g) in
  (match (Graph_ir.conv_dims g stem).Graph_ir.cd_oc with
  | 2 -> ()
  | oc -> Alcotest.failf "stem width: expected 2 channels, got %d" oc);
  let bert = Graph_build.tinybert ~seq:16 ~layers:2 () in
  (match Graph_ir.engine_kind bert with
  | Ok `Matmul -> ()
  | _ -> Alcotest.fail "tinybert must target the matmul engine");
  let matmuls =
    Array.to_list bert.Graph_ir.g_nodes
    |> List.filter (fun nd -> nd.Graph_ir.nd_op = Graph_ir.Matmul)
  in
  check_int "8 matmuls per transformer layer" 16 (List.length matmuls)

let test_of_name () =
  (match Graph_build.of_name ~width:4 "resnet18" with
  | Ok g -> check_string "resnet18 resolves (width in the name)" "resnet18-w4"
              g.Graph_ir.g_name
  | Error msg -> Alcotest.fail msg);
  let msg = err (Graph_build.of_name ~width:4 "nosuch") in
  check_bool "unknown model error names the model" true
    (contains ~affix:"unknown graph model" msg)

(* ------------------------------------------------------------------ *)
(* Residency scheduler: decisions, remarks, metrics                   *)
(* ------------------------------------------------------------------ *)

let test_schedule_decisions () =
  let g = Graph_build.resnet18 ~width:2 () in
  let device = Accel_conv.create () in
  let p1 = Graph_residency.schedule ~batch:1 ~device g in
  check_int "batch 1: all 8 block edges chain" 8 (Graph_residency.chained_edges p1);
  check_int "batch 1: no weight-stationary nodes" 0
    (Graph_residency.stationary_nodes p1);
  let device = Accel_conv.create () in
  let p2 = Graph_residency.schedule ~batch:2 ~device g in
  check_int "batch 2: every conv goes weight-stationary" 20
    (Graph_residency.stationary_nodes p2);
  check_int "batch 2: no chaining" 0 (Graph_residency.chained_edges p2);
  (* the per-kernel baseline plan elides nothing *)
  let b = Graph_residency.baseline ~batch:1 g in
  check_int "baseline: no chains" 0 (Graph_residency.chained_edges b);
  check_int "baseline: all accelerated nodes fall back" 20
    (Graph_residency.fallback_nodes g b)

let test_schedule_remarks_and_metrics () =
  Remarks.enable ();
  Metrics.enable Metrics.default;
  Metrics.reset Metrics.default;
  let g = Graph_build.resnet18 ~width:2 () in
  ignore (Graph_residency.schedule ~batch:1 ~device:(Accel_conv.create ()) g);
  let all = Remarks.all () in
  check_bool "scheduler emits remarks" true (List.length all > 0);
  List.iter
    (fun r ->
      check_string "every remark is under the graph-residency pass"
        Graph_residency.pass_name r.Remarks.r_pass)
    all;
  check_bool "chained edges emit Applied remarks" true
    (Remarks.count Remarks.Applied >= 8);
  Alcotest.(check (float 0.0)) "graph.chained_edges counter" 8.0
    (Metrics.counter_value "graph.chained_edges");
  Alcotest.(check (float 0.0)) "graph.nodes counter"
    (float_of_int (Array.length g.Graph_ir.g_nodes))
    (Metrics.counter_value "graph.nodes");
  (* batch > 1 blocks every chain candidate: each emits a Missed remark *)
  ignore (Graph_residency.schedule ~batch:2 ~device:(Accel_conv.create ()) g);
  check_bool "blocked opportunities emit Missed remarks" true
    (Remarks.count Remarks.Missed >= 8);
  Metrics.disable Metrics.default;
  Remarks.disable ()

(* ------------------------------------------------------------------ *)
(* Executor: bit-identity and strict DMA-word reduction               *)
(* ------------------------------------------------------------------ *)

let test_exec_chaining_batch1 () =
  let g = Graph_build.resnet18 ~width:2 () in
  let base = Graph_exec.run ~batch:1 ~residency:false g in
  let resd = Graph_exec.run ~batch:1 ~residency:true g in
  check_bool "residency is bit-identical" true (Graph_exec.outputs_equal base resd);
  check_bool "residency moves strictly fewer DMA words" true
    (Graph_exec.result_dma_words resd < Graph_exec.result_dma_words base);
  check_bool "elided words are accounted" true (resd.Graph_exec.rs_skipped_words > 0);
  check_int "8 chained edges executed" 8
    (Graph_residency.chained_edges resd.Graph_exec.rs_plan)

let test_exec_stationary_batch2 () =
  let g = Graph_build.resnet18 ~width:2 () in
  let base = Graph_exec.run ~batch:2 ~residency:false g in
  let resd = Graph_exec.run ~batch:2 ~residency:true g in
  check_bool "batched residency is bit-identical" true
    (Graph_exec.outputs_equal base resd);
  check_bool "weight-stationary moves strictly fewer DMA words" true
    (Graph_exec.result_dma_words resd < Graph_exec.result_dma_words base);
  check_int "all 20 convs executed weight-stationary" 20
    (Graph_residency.stationary_nodes resd.Graph_exec.rs_plan)

(* Two convolutions with identical shapes but different weight tensors:
   the residency tags carry the weight tensor id ("w<id>/f<f>"), so the
   second conv can never hit the first one's resident slices. A tag
   collision would make conv2 compute with conv1's weights and break
   bit-identity against the baseline. *)
let test_same_shape_different_weights () =
  let g =
    {
      Graph_ir.g_name = "twins";
      g_tensors =
        [|
          tensor 0 "img" Graph_ir.Input [ 2; 8; 8 ];
          tensor 1 "w1" Graph_ir.Weights [ 2; 2; 3; 3 ];
          tensor 2 "mid" Graph_ir.Activation [ 2; 6; 6 ];
          tensor 3 "pad" Graph_ir.Activation [ 2; 8; 8 ];
          tensor 4 "w2" Graph_ir.Weights [ 2; 2; 3; 3 ];
          tensor 5 "out" Graph_ir.Activation [ 2; 6; 6 ];
        |];
      g_nodes =
        [|
          node 0 "conv1" (Graph_ir.Conv { stride = 1 }) [ 0; 1 ] 2;
          node 1 "pad" Graph_ir.Resize [ 2 ] 3;
          node 2 "conv2" (Graph_ir.Conv { stride = 1 }) [ 3; 4 ] 5;
        |];
      g_outputs = [ 5 ];
    }
  in
  Alcotest.(check unit) "twin graph validates" () (ok (Graph_ir.validate g));
  let base = Graph_exec.run ~batch:2 ~residency:false g in
  let resd = Graph_exec.run ~batch:2 ~residency:true g in
  check_int "both convs planned stationary" 2
    (Graph_residency.stationary_nodes resd.Graph_exec.rs_plan);
  check_bool "same-shape weights do not cross-hit" true
    (Graph_exec.outputs_equal base resd);
  (* stationary reuse genuinely removes per-image slice re-sends *)
  check_bool "reuse still moves strictly fewer words" true
    (Graph_exec.result_dma_words resd < Graph_exec.result_dma_words base)

(* Deep tinybert stacks saturate to inf/nan (attention squares the
   activation magnitude every layer). The bit-identity gate must still
   hold there: structural [=] reports [nan <> nan] on identical bytes,
   which once made an all-fallback residency run "fail" verification.
   This pins the IEEE-754 bit-pattern comparison. *)
let test_bit_identity_nonfinite () =
  let g = Graph_build.tinybert ~seq:32 ~layers:4 () in
  let base = Graph_exec.run ~residency:false g in
  let resd = Graph_exec.run ~residency:true g in
  let nonfinite r =
    List.exists
      (fun (_, imgs) ->
        Array.exists
          (fun (a : float array) ->
            Array.exists (fun v -> not (Float.is_finite v)) a)
          imgs)
      r.Graph_exec.rs_outputs
  in
  check_bool "outputs saturate to non-finite values" true (nonfinite base);
  check_bool "non-finite outputs still compare bit-identical" true
    (Graph_exec.outputs_equal base resd)

(* ------------------------------------------------------------------ *)
(* QCheck: the graph-fuzz oracle over random conv-chain graphs        *)
(* ------------------------------------------------------------------ *)

let prop_graph_oracle =
  QCheck.Test.make
    ~name:"fuzz: residency bit-identical and strictly cheaper on random graphs"
    ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      match Fuzz_graph.check (Fuzz_graph.generate ~seed) with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

(* ------------------------------------------------------------------ *)
(* Serving-oracle memoisation                                         *)
(* ------------------------------------------------------------------ *)

let test_serve_memo () =
  let oracle =
    Serve_cost.create (ok (Serve_cost.models_of_specs [ "matmul:16,16,16" ]))
  in
  check_int "fresh oracle: no hits" 0 (fst (Serve_cost.memo_stats oracle));
  let c1 = Serve_cost.service oracle "matmul:16,16,16" ~batch:1 in
  let c2 = Serve_cost.service oracle "matmul:16,16,16" ~batch:1 in
  Alcotest.(check (float 0.0)) "memoised result is identical" c1 c2;
  let hits, misses = Serve_cost.memo_stats oracle in
  check_int "second call hits" 1 hits;
  check_int "first call misses" 1 misses;
  (* a different batch is a different canonical key *)
  ignore (Serve_cost.service oracle "matmul:16,16,16" ~batch:2);
  let _, misses = Serve_cost.memo_stats oracle in
  check_int "batch is part of the key" 2 misses

let test_serve_graph_model_memo () =
  let g = Graph_build.resnet18 ~width:2 () in
  let oracle = Serve_cost.create ~graphs:[ ("resnet18", g) ] [] in
  Alcotest.(check (list string)) "graph models are listed" [ "resnet18" ]
    (Serve_cost.models oracle);
  let c1 = Serve_cost.service oracle "resnet18" ~batch:1 in
  let c2 = Serve_cost.service oracle "resnet18" ~batch:1 in
  Alcotest.(check (float 0.0)) "whole-model cost memoised" c1 c2;
  check_bool "a forward pass costs cycles" true (c1 > 0.0);
  let hits, _ = Serve_cost.memo_stats oracle in
  check_int "graph service hit" 1 hits;
  check_bool "prediction is positive and cheap" true
    (Serve_cost.predict oracle "resnet18" > 0.0)

(* ------------------------------------------------------------------ *)
(* The pinned conv cycles-per-MAC proxy                               *)
(* ------------------------------------------------------------------ *)

let test_conv_proxy_calibration () =
  (* The constant is part of the serving oracle's and graph scheduler's
     contract: assert it exactly so drift is an explicit decision. *)
  Alcotest.(check (float 0.0)) "conv_cycles_per_mac is pinned" 16.0
    Heuristics.conv_cycles_per_mac;
  (* ...and it must stay calibrated: the measured pipeline on a
     ResNet-18-sized layer within a factor of two of the proxy. *)
  let ic = 16 and ihw = 9 and oc = 16 and fhw = 3 in
  let w = Tune_workload.Conv { ic; ih = ihw; iw = ihw; oc; fhw; stride = 1 } in
  let bench = Axi4mlir.create (Presets.conv ~flow:"Os" ()) in
  let i, w_, o =
    Axi4mlir.alloc_conv_operands bench ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw
  in
  let ir = Axi4mlir.build_conv_module ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw () in
  let compiled = Axi4mlir.compile bench ir in
  let counters =
    Axi4mlir.measure bench (fun () ->
        Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled
          "conv_call"
          [ Interp.M i; Interp.M w_; Interp.M o ])
  in
  let estimate = Heuristics.estimate_conv_cycles ~macs:(Tune_workload.macs w) in
  let ratio = counters.Perf_counters.cycles /. estimate in
  if ratio < 0.5 || ratio > 2.0 then
    Alcotest.failf
      "conv proxy drifted: measured %.0f cycles vs estimate %.0f (ratio %.2f)"
      counters.Perf_counters.cycles estimate ratio

(* ------------------------------------------------------------------ *)
(* The axi4mlir-graph-v1 golden artifact                              *)
(* ------------------------------------------------------------------ *)

let read_golden path =
  let ic = open_in_bin (Filename.concat "golden" path) in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  golden

(* Regenerate (after an intentional schema or cost-model change) with:
     dune exec bin/axi4mlir_run.exe -- --graph resnet18 --width 2 \
       --residency --graph-json test/golden/graph_resnet18.json *)
let test_golden_graph_artifact () =
  let g = Graph_build.resnet18 ~width:2 () in
  let r = Graph_exec.run ~batch:1 ~residency:true g in
  check_string "graph artifact matches the golden file"
    (read_golden "graph_resnet18.json") (Graph_report.render r);
  (* graph-v1 schema floor: add-only fields that must stay *)
  let doc = Graph_report.to_json r in
  check_string "schema string" "axi4mlir-graph-v1" Json.(to_str (member "schema" doc));
  List.iter
    (fun field ->
      check_bool (Printf.sprintf "top-level field %S present" field) true
        (Json.member field doc <> Json.Null))
    [ "model"; "batch"; "residency"; "graph"; "plan"; "totals"; "nodes" ];
  let totals = Json.member "totals" doc in
  List.iter
    (fun field ->
      check_bool (Printf.sprintf "totals field %S present" field) true
        (Json.member field totals <> Json.Null))
    [
      "cycles";
      "dma_transactions";
      "dma_words_sent";
      "dma_words_received";
      "dma_words_skipped";
      "macs";
    ]

let tests =
  [
    Alcotest.test_case "region: ring eviction ordering" `Quick test_region_ring_eviction;
    Alcotest.test_case "region: capacity exactly full" `Quick
      test_region_capacity_exactly_full;
    Alcotest.test_case "region: overwrite invalidates the old copy" `Quick
      test_region_overwrite_invalidates;
    Alcotest.test_case "region: hit/miss counters" `Quick test_region_hit_miss_counters;
    Alcotest.test_case "region: single-tenant replace" `Quick
      test_region_replace_single_tenant;
    Alcotest.test_case "device: weight slice capacity-exactly-full" `Quick
      test_device_weights_capacity;
    Alcotest.test_case "device: cv_accept requires the exact pending count" `Quick
      test_device_accept_exact_count;
    Alcotest.test_case "device: resident patch requires an image" `Quick
      test_device_resident_patch_requires_image;
    Alcotest.test_case "ir: validate rejects malformed graphs" `Quick
      test_validate_rejects_bad_graphs;
    Alcotest.test_case "ir: resnet18/tinybert structure" `Quick test_resnet18_structure;
    Alcotest.test_case "ir: of_name resolution" `Quick test_of_name;
    Alcotest.test_case "schedule: chaining and stationary decisions" `Quick
      test_schedule_decisions;
    Alcotest.test_case "schedule: remarks and metrics" `Quick
      test_schedule_remarks_and_metrics;
    Alcotest.test_case "exec: batch-1 chaining is bit-identical and cheaper" `Quick
      test_exec_chaining_batch1;
    Alcotest.test_case "exec: batch-2 weight-stationary is bit-identical and cheaper"
      `Quick test_exec_stationary_batch2;
    Alcotest.test_case "exec: same-shape different-weights never cross-hit" `Quick
      test_same_shape_different_weights;
    Alcotest.test_case "exec: bit-identity survives non-finite outputs" `Quick
      test_bit_identity_nonfinite;
    QCheck_alcotest.to_alcotest prop_graph_oracle;
    Alcotest.test_case "serve: memo keyed on shape, config and batch" `Quick
      test_serve_memo;
    Alcotest.test_case "serve: whole-model graph costing memoised" `Quick
      test_serve_graph_model_memo;
    Alcotest.test_case "heuristics: conv-proxy-calibration" `Quick
      test_conv_proxy_calibration;
    Alcotest.test_case "report: golden graph_resnet18.json artifact" `Quick
      test_golden_graph_artifact;
  ]
