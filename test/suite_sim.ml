(* Tests for the SoC substrate: memory, counters, accelerator devices,
   the DMA engine, and host-event costing. *)

let test_sim_memory () =
  let mem = Sim_memory.create () in
  let a = Sim_memory.alloc mem ~label:"a" 10 in
  let b = Sim_memory.alloc mem ~label:"b" 4 in
  Alcotest.(check bool) "aligned" true (a.Sim_memory.base mod 64 = 0);
  Alcotest.(check bool) "disjoint" true (b.Sim_memory.base >= a.Sim_memory.base + 40);
  Sim_memory.set a 3 1.5;
  Alcotest.(check (float 0.0)) "set/get" 1.5 (Sim_memory.get a 3);
  Alcotest.(check int) "addr" (a.Sim_memory.base + 12) (Sim_memory.addr_of a 3);
  Alcotest.(check bool) "footprint grows" true (Sim_memory.footprint_bytes mem > 0);
  Alcotest.check_raises "oob get" (Invalid_argument "Sim_memory.get: index 10 out of bounds for a")
    (fun () -> ignore (Sim_memory.get a 10))

let test_counters_arith () =
  let a = Perf_counters.create () in
  a.Perf_counters.cycles <- 100.0;
  a.Perf_counters.branches <- 10.0;
  let b = Perf_counters.copy a in
  b.Perf_counters.cycles <- 150.0;
  let d = Perf_counters.diff b a in
  Alcotest.(check (float 0.0)) "diff" 50.0 d.Perf_counters.cycles;
  Alcotest.(check (float 0.0)) "diff untouched field" 0.0 d.Perf_counters.branches;
  let s = Perf_counters.scale d 4.0 in
  Alcotest.(check (float 0.0)) "scale" 200.0 s.Perf_counters.cycles;
  Perf_counters.accumulate a s;
  Alcotest.(check (float 0.0)) "accumulate" 300.0 a.Perf_counters.cycles;
  Alcotest.(check (float 1e-9)) "task clock" (300.0 /. 650000.0)
    (Perf_counters.task_clock_ms a ~cpu_freq_mhz:650.0)

(* Drive a MatMul device directly with word streams. *)
let tile_words data = Array.map (fun v -> Axi_word.Data v) data

let concat = Array.concat

let test_matmul_device_v3 () =
  let dev = Accel_matmul.create ~version:Accel_matmul.V3 ~size:2 () in
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = [| 5.0; 6.0; 7.0; 8.0 |] in
  let expected = Gold.matmul ~m:2 ~n:2 ~k:2 a b in
  let cycles =
    dev.Accel_device.consume
      (concat
         [
           [| Axi_word.Inst Isa.reset |];
           [| Axi_word.Inst Isa.mm_load_a |]; tile_words a;
           [| Axi_word.Inst Isa.mm_load_b |]; tile_words b;
           [| Axi_word.Inst Isa.mm_compute |];
           [| Axi_word.Inst Isa.mm_drain |];
         ])
  in
  Alcotest.(check bool) "compute took cycles" true (cycles > 0.0);
  Alcotest.(check int) "output queued" 4 (dev.Accel_device.available ());
  let out = dev.Accel_device.drain 4 in
  Alcotest.(check (float 1e-9)) "result" 0.0 (Gold.max_abs_diff expected out)

let test_matmul_device_accumulates () =
  let dev = Accel_matmul.create ~version:Accel_matmul.V3 ~size:2 () in
  let a = [| 1.0; 0.0; 0.0; 1.0 |] in
  (* identity *)
  let b = [| 1.0; 2.0; 3.0; 4.0 |] in
  ignore (dev.Accel_device.consume [| Axi_word.Inst Isa.reset |]);
  ignore (dev.Accel_device.consume (concat [ [| Axi_word.Inst Isa.mm_load_a |]; tile_words a ]));
  ignore (dev.Accel_device.consume (concat [ [| Axi_word.Inst Isa.mm_load_b |]; tile_words b ]));
  ignore (dev.Accel_device.consume [| Axi_word.Inst Isa.mm_compute |]);
  ignore (dev.Accel_device.consume [| Axi_word.Inst Isa.mm_compute |]);
  ignore (dev.Accel_device.consume [| Axi_word.Inst Isa.mm_drain |]);
  let out = dev.Accel_device.drain 4 in
  (* two computes accumulate: C = 2 * B *)
  Alcotest.(check (float 1e-9)) "accumulated" 0.0
    (Gold.max_abs_diff (Array.map (fun v -> 2.0 *. v) b) out);
  (* drain cleared the accumulator *)
  ignore (dev.Accel_device.consume [| Axi_word.Inst Isa.mm_compute |]);
  ignore (dev.Accel_device.consume [| Axi_word.Inst Isa.mm_drain |]);
  let out2 = dev.Accel_device.drain 4 in
  Alcotest.(check (float 1e-9)) "cleared after drain" 0.0 (Gold.max_abs_diff b out2)

let test_matmul_device_v1_fused () =
  let dev = Accel_matmul.create ~version:Accel_matmul.V1 ~size:2 () in
  let a = [| 1.0; 2.0; 3.0; 4.0 |] and b = [| 1.0; 0.0; 0.0; 1.0 |] in
  ignore
    (dev.Accel_device.consume
       (concat [ [| Axi_word.Inst Isa.mm_fused |]; tile_words a; tile_words b ]));
  let out = dev.Accel_device.drain 4 in
  Alcotest.(check (float 1e-9)) "fused result" 0.0 (Gold.max_abs_diff a out)

let test_matmul_device_version_gating () =
  let dev = Accel_matmul.create ~version:Accel_matmul.V1 ~size:2 () in
  (match dev.Accel_device.consume [| Axi_word.Inst Isa.mm_load_a |] with
  | exception Failure msg ->
    Alcotest.(check bool) "names the op" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "v1 accepted a split load");
  let v3 = Accel_matmul.create ~version:Accel_matmul.V3 ~size:2 () in
  (match v3.Accel_device.consume [| Axi_word.Inst Isa.mm_set_tm; Axi_word.Inst 4 |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "v3 accepted tile configuration")

let test_matmul_device_v4_flex () =
  let dev = Accel_matmul.create ~version:Accel_matmul.V4 ~size:2 () in
  let m, n, k = (4, 2, 6) in
  let a = Array.init (m * k) float_of_int in
  let b = Array.init (k * n) (fun i -> float_of_int (i mod 5)) in
  let expected = Gold.matmul ~m ~n ~k a b in
  ignore
    (dev.Accel_device.consume
       [|
         Axi_word.Inst Isa.reset;
         Axi_word.Inst Isa.mm_set_tm; Axi_word.Inst m;
         Axi_word.Inst Isa.mm_set_tn; Axi_word.Inst n;
         Axi_word.Inst Isa.mm_set_tk; Axi_word.Inst k;
       |]);
  ignore (dev.Accel_device.consume (concat [ [| Axi_word.Inst Isa.mm_load_a |]; tile_words a ]));
  ignore (dev.Accel_device.consume (concat [ [| Axi_word.Inst Isa.mm_load_b |]; tile_words b ]));
  ignore (dev.Accel_device.consume [| Axi_word.Inst Isa.mm_compute; Axi_word.Inst Isa.mm_drain |]);
  let out = dev.Accel_device.drain (m * n) in
  Alcotest.(check (float 1e-9)) "flex result" 0.0 (Gold.max_abs_diff expected out);
  (* non-multiple-of-granularity dims are rejected *)
  match
    dev.Accel_device.consume [| Axi_word.Inst Isa.mm_set_tm; Axi_word.Inst 3 |]
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "odd tile accepted"

let test_matmul_device_protocol_errors () =
  let dev = Accel_matmul.create ~version:Accel_matmul.V3 ~size:2 () in
  (match dev.Accel_device.consume [| Axi_word.Inst Isa.mm_load_a; Axi_word.Data 1.0 |] with
  | exception Failure _ -> () (* truncated payload *)
  | _ -> Alcotest.fail "truncated payload accepted");
  let dev2 = Accel_matmul.create ~version:Accel_matmul.V3 ~size:2 () in
  match dev2.Accel_device.drain 1 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "drained an empty queue"

let test_conv_device () =
  let dev = Accel_conv.create () in
  let ic = 2 and fhw = 2 in
  let w = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 |] in
  let patch = Array.init (ic * fhw * fhw) (fun i -> float_of_int (i + 1)) in
  let expected = Array.fold_left ( +. ) 0.0 (Array.mapi (fun i v -> v *. patch.(i)) w) in
  ignore
    (dev.Accel_device.consume
       [|
         Axi_word.Inst Isa.reset;
         Axi_word.Inst Isa.cv_set_fhw; Axi_word.Inst fhw;
         Axi_word.Inst Isa.cv_set_ic; Axi_word.Inst ic;
       |]);
  ignore (dev.Accel_device.consume (concat [ [| Axi_word.Inst Isa.cv_load_w |]; tile_words w ]));
  ignore (dev.Accel_device.consume (concat [ [| Axi_word.Inst Isa.cv_patch |]; tile_words patch ]));
  Alcotest.(check int) "pending until drained" 0 (dev.Accel_device.available ());
  ignore (dev.Accel_device.consume [| Axi_word.Inst Isa.cv_drain |]);
  Alcotest.(check int) "released" 1 (dev.Accel_device.available ());
  let out = dev.Accel_device.drain 1 in
  Alcotest.(check (float 1e-9)) "inner product" expected out.(0)

let test_conv_device_requires_config () =
  let dev = Accel_conv.create () in
  match dev.Accel_device.consume [| Axi_word.Inst Isa.cv_load_w |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unconfigured weight load accepted"

let make_soc_with_v3 () =
  let soc = Soc.create () in
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:2 () in
  let engine = Accel_config.attach soc config in
  (soc, engine)

let test_dma_engine_staging () =
  let soc, engine = make_soc_with_v3 () in
  Dma_engine.stage engine ~offset:0 (Axi_word.Inst Isa.reset);
  Alcotest.(check int) "high water" 1 (Dma_engine.staged_high_water engine);
  Dma_engine.send_staged engine;
  Alcotest.(check int) "reset after send" 0 (Dma_engine.staged_high_water engine);
  Alcotest.(check (float 0.0)) "one transaction" 1.0 soc.Soc.counters.Perf_counters.dma_transactions;
  Alcotest.(check (float 0.0)) "one word" 1.0 soc.Soc.counters.Perf_counters.dma_words_sent;
  (* empty flush is free *)
  Dma_engine.send_staged engine;
  Alcotest.(check (float 0.0)) "no extra transaction" 1.0
    soc.Soc.counters.Perf_counters.dma_transactions

let test_dma_engine_protocol () =
  let _soc, engine = make_soc_with_v3 () in
  (match Dma_engine.wait_send engine with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "wait without start accepted");
  Dma_engine.stage engine ~offset:0 (Axi_word.Inst Isa.reset);
  Dma_engine.start_send engine ~offset:0 ~len_words:1;
  (match Dma_engine.start_send engine ~offset:0 ~len_words:1 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "double start accepted");
  Dma_engine.wait_send engine;
  match Dma_engine.stage engine ~offset:1_000_000 (Axi_word.Inst 0) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "region overflow accepted"

let test_dma_overlap_timing () =
  (* the device computes while the host continues; wait_recv stalls the
     host clock to the device's completion time *)
  let soc, engine = make_soc_with_v3 () in
  let a = Array.make 4 1.0 and b = Array.make 4 1.0 in
  let words =
    Array.concat
      [
        [| Axi_word.Inst Isa.mm_load_a |];
        Array.map (fun v -> Axi_word.Data v) a;
        [| Axi_word.Inst Isa.mm_load_b |];
        Array.map (fun v -> Axi_word.Data v) b;
        [| Axi_word.Inst Isa.mm_compute; Axi_word.Inst Isa.mm_drain |];
      ]
  in
  Array.iteri (fun i w -> Dma_engine.stage engine ~offset:i w) words;
  Dma_engine.send_staged engine;
  let busy = soc.Soc.counters.Perf_counters.accel_busy_cycles in
  Alcotest.(check bool) "device busy counted" true (busy > 0.0);
  Dma_engine.start_recv engine ~len_words:4;
  let data = Dma_engine.wait_recv engine in
  Alcotest.(check int) "received" 4 (Array.length data);
  Alcotest.(check (float 0.0)) "words received counted" 4.0
    soc.Soc.counters.Perf_counters.dma_words_received

let test_soc_event_costs () =
  let soc = Soc.create () in
  let c = soc.Soc.counters in
  Soc.alu soc 5;
  Alcotest.(check (float 0.0)) "alu cycles" 5.0 c.Perf_counters.cycles;
  Soc.branch soc 2;
  Alcotest.(check (float 0.0)) "branches" 2.0 c.Perf_counters.branches;
  let buf = Sim_memory.alloc soc.Soc.memory ~label:"x" 64 in
  let v = Soc.cached_read soc buf 0 in
  Alcotest.(check (float 0.0)) "fresh buffer zero" 0.0 v;
  Alcotest.(check (float 0.0)) "one access one miss" 1.0 c.Perf_counters.l1_misses;
  ignore (Soc.cached_read soc buf 1);
  Alcotest.(check (float 0.0)) "second is hit" 1.0 c.Perf_counters.l1_misses;
  Alcotest.(check (float 0.0)) "refs = l1 + l2" (Perf_counters.cache_references c)
    (c.Perf_counters.l1_accesses +. c.Perf_counters.l2_accesses)

let test_soc_reset_run_state () =
  let soc, engine = make_soc_with_v3 () in
  ignore engine;
  Soc.alu soc 5;
  let buf = Sim_memory.alloc soc.Soc.memory ~label:"y" 8 in
  Sim_memory.set buf 0 9.0;
  Soc.reset_run_state soc;
  Alcotest.(check (float 0.0)) "counters cleared" 0.0 soc.Soc.counters.Perf_counters.cycles;
  Alcotest.(check (float 0.0)) "memory preserved" 9.0 (Sim_memory.get buf 0)

(* ------------------------------------------------------------------ *)
(* Cache property tests: the LRU law, warm-up behaviour, and miss-rate
   monotonicity under repeated sweeps.                                 *)
(* ------------------------------------------------------------------ *)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

(* A single-set 4-way cache makes the LRU replacement order directly
   observable: every line maps to the same set. *)
let one_set = { Cache.size_bytes = 128; line_bytes = 32; assoc = 4 }

let prop_lru_eviction_order =
  QCheck.Test.make ~name:"single set follows exact LRU order" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 7))
    (fun lines ->
      let cache = Cache.create [ one_set ] in
      (* reference model: resident lines, most recently used first *)
      let model = ref [] in
      List.iter
        (fun line ->
          ignore (Cache.access cache (line * one_set.Cache.line_bytes));
          let rest = List.filter (( <> ) line) !model in
          model := line :: take (one_set.Cache.assoc - 1) rest)
        lines;
      List.for_all
        (fun line ->
          Cache.resident cache ~level:1 (line * one_set.Cache.line_bytes)
          = List.mem line !model)
        (List.init 8 Fun.id))

(* 4 KiB, 4-way, 32 sets: big enough to stripe across sets, small
   enough that the generators cover both the fits and thrashes regimes. *)
let small_l1 = { Cache.size_bytes = 4096; line_bytes = 32; assoc = 4 }

let capacity_lines g = g.Cache.size_bytes / g.Cache.line_bytes

let sweep_misses cache g n_lines =
  let misses = ref 0 in
  for line = 0 to n_lines - 1 do
    if (Cache.access cache (line * g.Cache.line_bytes)).Cache.level_hit > 1 then
      incr misses
  done;
  !misses

let prop_warm_footprint_all_hits =
  QCheck.Test.make
    ~name:"footprint within capacity never misses after warm-up" ~count:200
    QCheck.(
      pair
        (int_range 1 (capacity_lines small_l1))
        (list_of_size Gen.(int_range 1 60) small_nat))
    (fun (n_lines, accesses) ->
      let cache = Cache.create [ small_l1 ] in
      (* warm-up sweep: a contiguous footprint of at most the capacity
         places at most [assoc] lines in each set, so nothing evicts *)
      ignore (sweep_misses cache small_l1 n_lines);
      List.for_all
        (fun a ->
          (Cache.access cache (a mod n_lines * small_l1.Cache.line_bytes)).Cache.level_hit
          = 1)
        accesses)

let prop_sweep_misses_monotone =
  QCheck.Test.make ~name:"per-sweep misses are non-increasing" ~count:200
    QCheck.(int_range 1 (2 * capacity_lines small_l1))
    (fun n_lines ->
      let cache = Cache.create [ small_l1 ] in
      let m1 = sweep_misses cache small_l1 n_lines in
      let m2 = sweep_misses cache small_l1 n_lines in
      let m3 = sweep_misses cache small_l1 n_lines in
      m2 <= m1 && m3 <= m2)

let tests =
  [
    Alcotest.test_case "sim memory" `Quick test_sim_memory;
    Alcotest.test_case "counter arithmetic" `Quick test_counters_arith;
    Alcotest.test_case "v3 device computes a tile" `Quick test_matmul_device_v3;
    Alcotest.test_case "device accumulates and clears" `Quick test_matmul_device_accumulates;
    Alcotest.test_case "v1 fused instruction" `Quick test_matmul_device_v1_fused;
    Alcotest.test_case "version gating" `Quick test_matmul_device_version_gating;
    Alcotest.test_case "v4 flexible tiles" `Quick test_matmul_device_v4_flex;
    Alcotest.test_case "device protocol errors" `Quick test_matmul_device_protocol_errors;
    Alcotest.test_case "conv device" `Quick test_conv_device;
    Alcotest.test_case "conv requires configuration" `Quick test_conv_device_requires_config;
    Alcotest.test_case "dma staging" `Quick test_dma_engine_staging;
    Alcotest.test_case "dma protocol errors" `Quick test_dma_engine_protocol;
    Alcotest.test_case "dma/device overlap" `Quick test_dma_overlap_timing;
    Alcotest.test_case "soc event costs" `Quick test_soc_event_costs;
    Alcotest.test_case "soc reset preserves memory" `Quick test_soc_reset_run_state;
    QCheck_alcotest.to_alcotest prop_lru_eviction_order;
    QCheck_alcotest.to_alcotest prop_warm_footprint_all_hits;
    QCheck_alcotest.to_alcotest prop_sweep_misses_monotone;
  ]
