(* The platform subsystem: axi4mlir-platform-v1 round trips and golden
   bytes, field-qualified validation errors, the resource-model
   calibration pins, the heterogeneous serving bridge (per-instance
   oracles, the DMA transfer scale, homogeneous bit-identity) and the
   QCheck search properties (monotone resource totals; the search
   never returns an over-budget or dominated platform). *)

let ok = function Ok v -> v | Error msg -> Alcotest.fail msg

let err name = function
  | Ok _ -> Alcotest.fail (name ^ ": expected Error, got Ok")
  | Error msg -> msg

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_contains name msg needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S mentions %S" name msg needle)
    true (contains msg needle)

let hetero () = ok (Platform_ir.find_preset "hetero-v3v4")

(* ------------------------------------------------------------------ *)
(* The axi4mlir-platform-v1 artifact                                   *)
(* ------------------------------------------------------------------ *)

let test_round_trip () =
  List.iter
    (fun (name, p) ->
      let back = ok (Platform_ir.of_json_result (Platform_ir.to_json p)) in
      Alcotest.(check bool) (name ^ " round-trips") true (back = p))
    (("homogeneous", Platform_ir.homogeneous ~accels:3 ()) :: Platform_ir.presets);
  (* a capacity override survives the trip too *)
  let p =
    {
      (hetero ()) with
      Platform_ir.pf_instances =
        [
          {
            Platform_ir.in_id = "acc0";
            in_engine = "v4_16";
            in_capacity_elems = Some 1024;
          };
        ];
    }
  in
  let back = ok (Platform_ir.of_json_result (Platform_ir.to_json p)) in
  Alcotest.(check bool) "capacity override round-trips" true (back = p)

(* Regenerate (only after a deliberate, add-only schema change) with:
     dune exec bin/axi4mlir_config.exe -- --platform-preset hetero-v3v4 \
       -o test/golden/platform_hetero.json *)
let test_golden_bytes () =
  let ic = open_in_bin (Filename.concat "golden" "platform_hetero.json") in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let fresh = Json.to_string ~indent:1 (Platform_ir.to_json (hetero ())) ^ "\n" in
  Alcotest.(check string) "platform artifact matches the golden file" golden fresh

let test_schema_floor () =
  (* the add-only compatibility floor: these fields must stay *)
  let doc = Platform_ir.to_json (hetero ()) in
  Alcotest.(check string) "schema string" "axi4mlir-platform-v1"
    Json.(to_str (member "schema" doc));
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " present") true
        (Json.member_opt field doc <> None))
    [ "schema"; "name"; "dma_channels"; "axi_beat_bytes"; "instances" ];
  let first = List.hd Json.(to_list (member "instances" doc)) in
  (* capacity_elems is Null when no override is set, so check key
     presence, not member_opt (which folds Null into absence) *)
  let has_key field =
    match first with Json.Obj kvs -> List.mem_assoc field kvs | _ -> false
  in
  List.iter
    (fun field ->
      Alcotest.(check bool) ("instance " ^ field ^ " present") true
        (has_key field))
    [ "id"; "engine"; "capacity_elems" ];
  (* and the rendering must re-parse *)
  let reparsed = Json.of_string (Json.to_string ~indent:1 doc) in
  Alcotest.(check string) "artifact re-parses" "axi4mlir-platform-v1"
    Json.(to_str (member "schema" reparsed))

let test_presets () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check string) "preset name matches key" name p.Platform_ir.pf_name;
      ok (Platform_ir.validate p))
    Platform_ir.presets;
  let msg = err "unknown preset" (Platform_ir.find_preset "nosuch") in
  check_contains "unknown preset" msg "pynq-2xv4"

(* ------------------------------------------------------------------ *)
(* Validation: structured, field-qualified errors                      *)
(* ------------------------------------------------------------------ *)

let instance ?capacity id engine =
  { Platform_ir.in_id = id; in_engine = engine; in_capacity_elems = capacity }

let platform ?(name = "t") ?(channels = 1) ?(beat = 4) instances =
  {
    Platform_ir.pf_name = name;
    pf_instances = instances;
    pf_dma_channels = channels;
    pf_axi_beat_bytes = beat;
  }

let test_validation_errors () =
  let cases =
    [
      ( "unknown engine",
        platform [ instance "acc0" "v9_99" ],
        "platform.instances[0].engine" );
      ( "conv engine in a slot",
        platform [ instance "acc0" "conv2d" ],
        "platform.instances[0].engine" );
      ( "zero channels",
        platform ~channels:0 [ instance "acc0" "v4_16" ],
        "platform.dma_channels" );
      ( "duplicate ids",
        platform [ instance "acc0" "v4_16"; instance "acc0" "v3_16" ],
        "platform.instances[1].id" );
      ( "bad beat width",
        platform ~beat:5 [ instance "acc0" "v4_16" ],
        "platform.axi_beat_bytes" );
      ("no instances", platform [], "platform.instances");
      ( "non-positive capacity",
        platform [ instance ~capacity:0 "acc0" "v4_16" ],
        "capacity override must be positive" );
    ]
  in
  List.iter
    (fun (name, p, field) ->
      check_contains name (err name (Platform_ir.validate p)) field)
    cases

let test_of_json_errors () =
  let wrong_schema =
    Json.Obj [ ("schema", Json.String "axi4mlir-platform-v0") ]
  in
  check_contains "wrong schema"
    (err "wrong schema" (Platform_ir.of_json_result wrong_schema))
    "axi4mlir-platform-v1";
  let not_an_object = Json.List [] in
  (match Platform_ir.of_json_result not_an_object with
  | Ok _ -> Alcotest.fail "non-object parsed"
  | Error _ -> ());
  (* a validation failure surfaces through the parser too *)
  let doc = Platform_ir.to_json (platform ~channels:0 [ instance "acc0" "v4_16" ]) in
  check_contains "parsed zero channels"
    (err "parsed zero channels" (Platform_ir.of_json_result doc))
    "platform.dma_channels"

let test_load_file_errors () =
  (match Platform_ir.load_file "golden/no_such_platform.json" with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error _ -> ());
  match Platform_ir.load_file "golden/matmul_cpu_loops.mlir" with
  | Ok _ -> Alcotest.fail "non-JSON file loaded"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* The resource model: calibration pins                                *)
(* ------------------------------------------------------------------ *)

(* These pins are the documented constants of Platform_cost applied to
   the committed presets. They only move when the resource model is
   changed deliberately — re-derive by hand from the .mli table. *)
let test_calibration_pins () =
  let close = Alcotest.float 1e-9 in
  List.iter
    (fun (engine, expect) ->
      let config = ok (Platform_ir.engine_config (instance "x" engine)) in
      Alcotest.check close (engine ^ " engine units") expect
        (Platform_cost.engine_units config))
    [ ("v1_4", 40.09375); ("v2_8", 91.575); ("v3_16", 307.1); ("v4_16", 368.0) ];
  List.iter
    (fun (name, expect) ->
      Alcotest.check close (name ^ " resource total") expect
        (Platform_cost.resource_total_exn (ok (Platform_ir.find_preset name))))
    [ ("pynq-2xv4", 764.0); ("hetero-v3v4", 703.1); ("budget-4xv2", 406.3) ]

let prop_resource_monotone =
  (* strictly monotone in every platform dimension: more slots, more
     channels, a wider beat and a larger tile buffer all cost more *)
  QCheck.Test.make ~name:"resource total strictly monotone in every dimension"
    ~count:60
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (int_range 0 2) (int_range 0 3))
    (fun (slots, channels, beat_i, engine_i) ->
      (* QCheck shrinking may step outside int_range: clamp *)
      let slots = max 1 (min 3 slots) in
      let channels = max 1 (min 3 channels) in
      let beat_i = max 0 (min 2 beat_i) in
      let engine_i = max 0 (min 3 engine_i) in
      let beat = List.nth Platform_ir.beat_widths beat_i in
      let engine = List.nth [ "v1_4"; "v2_8"; "v3_16"; "v4_16" ] engine_i in
      let base =
        platform ~channels ~beat
          (List.init slots (fun i ->
               instance (Printf.sprintf "acc%d" i) engine))
      in
      let total p = Platform_cost.resource_total_exn p in
      let grown =
        [
          {
            base with
            Platform_ir.pf_instances =
              base.Platform_ir.pf_instances
              @ [ instance (Printf.sprintf "acc%d" slots) engine ];
          };
          { base with Platform_ir.pf_dma_channels = channels + 1 };
        ]
        @ (if beat < 16 then
             [
               {
                 base with
                 Platform_ir.pf_axi_beat_bytes =
                   List.nth Platform_ir.beat_widths (beat_i + 1);
               };
             ]
           else [])
      in
      (* capacity: compare two overrides inside the engine's own limit
         (Accel_config.validate rejects anything above the preset) *)
      let cap = (ok (Platform_ir.engine_config (instance "x" engine)))
                  .Accel_config.buffer_capacity_elems
      in
      let with_cap c =
        {
          base with
          Platform_ir.pf_instances =
            instance ~capacity:c "cap" engine
            :: List.tl base.Platform_ir.pf_instances;
        }
      in
      List.for_all (fun g -> total g > total base) grown
      && total (with_cap cap) > total (with_cap (max 1 (cap / 2))))

(* ------------------------------------------------------------------ *)
(* The heterogeneous serving bridge                                    *)
(* ------------------------------------------------------------------ *)

let models () = ok (Serve_cost.models_of_specs [ "matmul:16,16,16" ])

let requests ?(count = 8) () =
  ok
    (Serve_request.generate
       {
         Serve_request.st_seed = 7;
         st_count = count;
         st_mean_gap = 40000.0;
         st_models = [ "matmul:16,16,16" ];
       })

let test_dma_scale () =
  let close = Alcotest.float 1e-9 in
  (* one channel per instance on the baseline beat: exactly 1 *)
  Alcotest.check close "identity scale" 1.0
    (Platform_serve.dma_scale (Platform_ir.homogeneous ~accels:3 ()));
  (* a wider beat moves more bytes per cycle *)
  Alcotest.check close "beat 8 halves the transfer" 0.5
    (Platform_serve.dma_scale
       (platform ~channels:1 ~beat:8 [ instance "acc0" "v4_16" ]));
  (* more instances than channels serialise on the shared DMA engines *)
  Alcotest.check close "2 slots on 1 channel doubles it" 2.0
    (Platform_serve.dma_scale
       (platform ~channels:1 ~beat:4
          [ instance "acc0" "v4_16"; instance "acc1" "v4_16" ]))

let test_hetero_fleet () =
  let p = hetero () in
  let fleet = Platform_serve.create ~platform:p (models ()) in
  Alcotest.(check (list string))
    "engines in instance order" [ "v4_16"; "v3_16" ]
    (Platform_serve.engines fleet);
  Alcotest.(check int) "two distinct oracles" 2
    (Platform_serve.distinct_oracles fleet);
  let s0 = Platform_serve.service_at fleet ~accel:0 "matmul:16,16,16" ~batch:1 in
  let s1 = Platform_serve.service_at fleet ~accel:1 "matmul:16,16,16" ~batch:1 in
  Alcotest.(check bool) "per-instance service times differ" true (s0 <> s1);
  (* same-engine slots share one oracle *)
  let homo_fleet =
    Platform_serve.create
      ~platform:(Platform_ir.homogeneous ~accels:3 ())
      (models ())
  in
  Alcotest.(check int) "homogeneous fleet shares one oracle" 1
    (Platform_serve.distinct_oracles homo_fleet);
  match Platform_serve.service_at fleet ~accel:9 "matmul:16,16,16" ~batch:1 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "out-of-range instance index accepted"

let test_homogeneous_bit_identity () =
  let reqs = requests () in
  let fleet =
    Platform_serve.create ~platform:(Platform_ir.homogeneous ~accels:2 ()) (models ())
  in
  let via_platform = ok (Platform_serve.run ~policy:Serve_policy.Fifo fleet reqs) in
  let oracle = Serve_cost.create (models ()) in
  let via_accels =
    ok
      (Serve_sim.run
         ~service:(Serve_cost.service oracle)
         ~predict:(Serve_cost.predict oracle)
         {
           Serve_sim.sp_accels = 2;
           sp_policy = Serve_policy.Fifo;
           sp_queue_cap = None;
           sp_batch_max = 1;
         }
         reqs)
  in
  Alcotest.(check bool)
    "homogeneous platform run is bit-identical to --accels 2" true
    (via_platform = via_accels)

(* ------------------------------------------------------------------ *)
(* The search                                                          *)
(* ------------------------------------------------------------------ *)

(* A synthetic serving oracle: deterministic, cheap, and shaped like
   the real one (more PEs -> more throughput, diminishing; fewer
   channels -> worse p99) so the search exercises its real logic
   without paying for simulation. *)
let synthetic_measure (p : Platform_ir.t) =
  let pes =
    List.fold_left
      (fun acc inst ->
        match Platform_ir.engine_config inst with
        | Ok { Accel_config.engine = Accel_config.Matmul_engine (_, size); _ } ->
          acc +. float_of_int (size * size)
        | Ok _ | Error _ -> acc)
      0.0 p.Platform_ir.pf_instances
  in
  let scale = Platform_serve.dma_scale p in
  let rps = 100.0 +. (pes /. (0.5 +. (0.5 *. scale))) in
  let p99 = 1e9 /. rps in
  Some (rps, p99)

let search_space =
  {
    Platform_search.ss_engines = [ "v1_4"; "v2_8"; "v3_16" ];
    ss_max_instances = 2;
    ss_channels = [ 1; 2 ];
    ss_beats = [ 4; 8 ];
  }

let test_enumerate () =
  let all = ok (Platform_search.enumerate search_space) in
  (* multisets of size 1..2 over 3 engines = 3 + 6 = 9; x2 channels x2 beats *)
  Alcotest.(check int) "candidate count" 36 (List.length all);
  List.iter (fun p -> ok (Platform_ir.validate p)) all;
  let msg =
    err "bad space"
      (Platform_search.enumerate
         { search_space with Platform_search.ss_engines = [ "nosuch" ] })
  in
  check_contains "bad space" msg "space.engines";
  let msg =
    err "no channels"
      (Platform_search.enumerate
         { search_space with Platform_search.ss_channels = [] })
  in
  check_contains "no channels" msg "space.channels"

let test_search_budget_errors () =
  let msg =
    err "zero budget"
      (Platform_search.search ~area_budget:0.0 ~measure:synthetic_measure
         search_space)
  in
  check_contains "zero budget" msg "positive";
  let msg =
    err "negative budget"
      (Platform_search.search ~area_budget:(-5.0) ~measure:synthetic_measure
         search_space)
  in
  check_contains "negative budget" msg "positive"

let no_point_dominated front =
  let dominated a b =
    b.Platform_search.pt_per_resource >= a.Platform_search.pt_per_resource
    && b.Platform_search.pt_p99_cycles <= a.Platform_search.pt_p99_cycles
    && (b.Platform_search.pt_per_resource > a.Platform_search.pt_per_resource
       || b.Platform_search.pt_p99_cycles < a.Platform_search.pt_p99_cycles)
  in
  List.for_all
    (fun a -> not (List.exists (fun b -> b != a && dominated a b) front))
    front

let prop_search_respects_budget =
  QCheck.Test.make
    ~name:"search never returns an over-budget or dominated platform" ~count:30
    QCheck.(int_range 50 1200)
    (fun budget_i ->
      let budget = float_of_int budget_i in
      match
        Platform_search.search ~area_budget:budget ~measure:synthetic_measure
          search_space
      with
      | Error _ -> budget <= 0.0
      | Ok r ->
        let within pt = pt.Platform_search.pt_resource <= budget in
        List.for_all within r.Platform_search.sr_front
        && (match r.Platform_search.sr_best with
           | None -> true
           | Some b -> within b)
        && no_point_dominated r.Platform_search.sr_front
        && r.Platform_search.sr_over_budget
           + List.length r.Platform_search.sr_front
           <= r.Platform_search.sr_space)

let test_search_end_to_end () =
  (* the baseline is over this budget; a cheaper platform still wins *)
  let r =
    ok
      (Platform_search.search ~area_budget:400.0 ~measure:synthetic_measure
         search_space)
  in
  Alcotest.(check int) "space size" 36 r.Platform_search.sr_space;
  Alcotest.(check bool) "budget pruned something" true
    (r.Platform_search.sr_over_budget > 0);
  Alcotest.(check bool) "front is non-empty" true
    (r.Platform_search.sr_front <> []);
  Alcotest.(check bool) "baseline measured" true
    (r.Platform_search.sr_baseline <> None);
  match Platform_search.pick_winner r with
  | None -> ()
  | Some w ->
    let b = Option.get r.Platform_search.sr_baseline in
    Alcotest.(check bool) "winner beats baseline per-resource" true
      (w.Platform_search.pt_per_resource > b.Platform_search.pt_per_resource);
    Alcotest.(check bool) "winner ties-or-beats baseline p99" true
      (w.Platform_search.pt_p99_cycles <= b.Platform_search.pt_p99_cycles)

let tests =
  [
    Alcotest.test_case "artifact: presets round-trip" `Quick test_round_trip;
    Alcotest.test_case "artifact: golden platform bytes" `Quick test_golden_bytes;
    Alcotest.test_case "artifact: platform-v1 schema floor" `Quick
      test_schema_floor;
    Alcotest.test_case "presets validate and resolve" `Quick test_presets;
    Alcotest.test_case "validation: field-qualified errors" `Quick
      test_validation_errors;
    Alcotest.test_case "validation: of_json errors" `Quick test_of_json_errors;
    Alcotest.test_case "validation: load_file errors" `Quick
      test_load_file_errors;
    Alcotest.test_case "resource model: calibration pins" `Quick
      test_calibration_pins;
    QCheck_alcotest.to_alcotest prop_resource_monotone;
    Alcotest.test_case "serve bridge: dma scale" `Quick test_dma_scale;
    Alcotest.test_case "serve bridge: heterogeneous fleet" `Quick
      test_hetero_fleet;
    Alcotest.test_case "serve bridge: homogeneous bit-identity" `Quick
      test_homogeneous_bit_identity;
    Alcotest.test_case "search: enumerate" `Quick test_enumerate;
    Alcotest.test_case "search: budget must be positive" `Quick
      test_search_budget_errors;
    QCheck_alcotest.to_alcotest prop_search_respects_budget;
    Alcotest.test_case "search: end to end on a synthetic oracle" `Quick
      test_search_end_to_end;
  ]
