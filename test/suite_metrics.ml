(* Tests for the metrics registry, the optimization-remark collector
   and the benchmark regression gate (Benchdiff). *)

let contains report needle =
  let nl = String.length needle and rl = String.length report in
  let rec scan i = i + nl <= rl && (String.sub report i nl = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Registry basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_registry_basics () =
  let reg = Metrics.create () in
  Metrics.incr ~reg "c";
  Alcotest.(check int) "disabled registry records nothing" 0
    (List.length (Metrics.snapshot ~reg ()));
  Metrics.enable reg;
  Metrics.incr ~reg "c";
  Metrics.incr ~reg "c" ~by:2.0 ~labels:[ ("x", "1") ];
  Alcotest.(check (float 0.0)) "labelled series is separate" 2.0
    (Metrics.counter_value ~reg ~labels:[ ("x", "1") ] "c");
  Alcotest.(check (float 0.0)) "unlabelled series" 1.0 (Metrics.counter_value ~reg "c");
  Alcotest.(check (float 0.0)) "total sums label sets" 3.0 (Metrics.total ~reg "c");
  Metrics.set_gauge ~reg "g" 5.0;
  Metrics.set_gauge ~reg "g" 7.0;
  Alcotest.(check (float 0.0)) "gauge is last-write-wins" 7.0
    (Metrics.counter_value ~reg "g");
  (* recording one name as two kinds is an instrumentation bug *)
  Alcotest.(check bool) "kind mismatch raises" true
    (match Metrics.observe ~reg "c" 1.0 with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* ambient labels stamp every subsequent record *)
  Metrics.set_ambient reg [ ("experiment", "t") ];
  Metrics.incr ~reg "d";
  Alcotest.(check (float 0.0)) "ambient labels merged" 1.0
    (Metrics.counter_value ~reg ~labels:[ ("experiment", "t") ] "d");
  Metrics.reset reg;
  Alcotest.(check int) "reset drops series" 0 (List.length (Metrics.snapshot ~reg ()));
  Alcotest.(check bool) "reset keeps enabled" true (Metrics.enabled reg)

let test_registry_export () =
  let reg = Metrics.create () in
  Metrics.enable reg;
  Metrics.incr ~reg "runs" ~labels:[ ("flow", "Cs") ];
  Metrics.observe ~reg "len" 9.0;
  (match Metrics.to_json ~reg () with
  | Json.Obj fields ->
    Alcotest.(check string) "self-describing schema" "axi4mlir-metrics-v1"
      (match List.assoc "schema" fields with Json.String s -> s | _ -> "?")
  | _ -> Alcotest.fail "metrics JSON is not an object");
  let text = Metrics.render ~reg () in
  Alcotest.(check bool) "render names the counter" true (contains text "runs");
  Alcotest.(check bool) "render expands histogram count" true (contains text "len_count")

(* ------------------------------------------------------------------ *)
(* Histogram edge cases                                                *)
(* ------------------------------------------------------------------ *)

let histogram_view reg =
  match
    List.filter_map
      (fun s -> match s.Metrics.s_point with Metrics.Histogram_v v -> Some v | _ -> None)
      (Metrics.snapshot ~reg ())
  with
  | [ v ] -> v
  | vs -> Alcotest.failf "expected one histogram, got %d" (List.length vs)

let test_histogram_edges () =
  let empty =
    {
      Metrics.h_count = 0;
      h_sum = 0.0;
      h_min = None;
      h_max = None;
      h_buckets = [];
      h_overflow = 0;
    }
  in
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "empty histogram has no q=%g" q)
        true
        (Metrics.quantile empty q = None))
    [ 0.0; 0.5; 1.0 ];
  let reg = Metrics.create () in
  Metrics.enable reg;
  (* a single observation is every quantile, exactly *)
  Metrics.observe ~reg "h" 42.0;
  let v = histogram_view reg in
  Alcotest.(check int) "one observation" 1 v.Metrics.h_count;
  Alcotest.(check (float 0.0)) "sum tracked exactly" 42.0 v.Metrics.h_sum;
  List.iter
    (fun q ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "single-observation q=%g" q)
        (Some 42.0) (Metrics.quantile v q))
    [ 0.0; 0.5; 1.0 ];
  (* observations beyond the last bucket land in the overflow bucket,
     and quantiles that land there report the exact max *)
  Metrics.observe ~reg "h" 1e30;
  let v = histogram_view reg in
  Alcotest.(check int) "overflow counted" 1 v.Metrics.h_overflow;
  Alcotest.(check int) "count includes overflow" 2 v.Metrics.h_count;
  Alcotest.(check (option (float 0.0))) "p100 is the overflow max" (Some 1e30)
    (Metrics.quantile v 1.0);
  Alcotest.(check (option (float 0.0))) "min survives overflow" (Some 42.0)
    v.Metrics.h_min

let test_histogram_bucket_lines () =
  let reg = Metrics.create () in
  Metrics.enable reg;
  (* buckets cover (2^(i-1), 2^i]: 3 and 4 land in le=4, 9 in le=16,
     100 in le=128 — the rendered lines must be cumulative *)
  List.iter
    (fun v -> Metrics.observe ~reg ~labels:[ ("k", "v") ] "lat" v)
    [ 3.0; 4.0; 9.0; 100.0 ];
  let text = Metrics.render ~reg () in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "render has %S" line) true
        (contains text line))
    [
      "lat_bucket{k=\"v\",le=\"4\"} 2";
      "lat_bucket{k=\"v\",le=\"16\"} 3";
      "lat_bucket{k=\"v\",le=\"128\"} 4";
      "lat_bucket{k=\"v\",le=\"+Inf\"} 4";
    ];
  Alcotest.(check bool) "unpopulated bounds are skipped" false
    (contains text "le=\"8\"");
  (* +Inf always equals _count, overflow included *)
  Metrics.observe ~reg ~labels:[ ("k", "v") ] "lat" 1e30;
  let text = Metrics.render ~reg () in
  Alcotest.(check bool) "+Inf includes the overflow bucket" true
    (contains text "lat_bucket{k=\"v\",le=\"+Inf\"} 5")

(* ------------------------------------------------------------------ *)
(* Remark emission from the transform passes                           *)
(* ------------------------------------------------------------------ *)

let test_remarks_applied_and_missed () =
  let host = Host_config.pynq_z2 in
  let m = Axi4mlir.build_matmul_module ~m:48 ~n:64 ~k:64 () in
  Remarks.enable ();
  (* a clean config: the Cs flow keeps the C tile stationary, so its
     transfer is hoisted out of the innermost loop *)
  let cs_accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Cs" () in
  let pass = Match_annotate.pass ~accel:cs_accel ~host () in
  ignore (pass.Pass.run m);
  Alcotest.(check bool) "applied remark emitted" true
    (Remarks.count Remarks.Applied >= 1);
  Alcotest.(check bool) "has a hoist-transfer remark" true
    (List.exists (fun r -> r.Remarks.r_name = "hoist-transfer") (Remarks.all ()));
  let rendered = Remarks.render_all () in
  Alcotest.(check bool) "renders as YAML docs" true (contains rendered "--- !Applied");
  (* a non-dividing tile override on the flexible engine: the op stays
     on the CPU path and the Missed remark names the offending tile and
     extent *)
  Remarks.clear ();
  let accel = Presets.matmul ~version:Accel_matmul.V4 ~size:16 () in
  let options =
    { Match_annotate.default_options with tile_override = Some [ 32; 16; 16 ] }
  in
  let pass = Match_annotate.pass ~accel ~host ~options () in
  ignore (pass.Pass.run m);
  Alcotest.(check bool) "missed remark emitted" true (Remarks.count Remarks.Missed >= 1);
  let missed =
    List.find (fun r -> r.Remarks.r_kind = Remarks.Missed) (Remarks.all ())
  in
  Alcotest.(check string) "missed remark is not-offloaded" "not-offloaded"
    missed.Remarks.r_name;
  Alcotest.(check bool) "names the offending tile and extent" true
    (contains missed.Remarks.r_message "tile 32 does not divide extent 48");
  Remarks.disable ();
  Remarks.clear ();
  ignore (pass.Pass.run m);
  Alcotest.(check int) "disabled collector records nothing" 0
    (List.length (Remarks.all ()))

(* ------------------------------------------------------------------ *)
(* The benchmark regression gate                                       *)
(* ------------------------------------------------------------------ *)

let point ?(metrics = []) id cycles =
  {
    Benchdiff.pt_id = id;
    pt_kind = "generated_matmul";
    pt_dims = [ 8; 8; 8 ];
    pt_config = "deadbeef";
    pt_metrics = (("cycles", cycles) :: metrics);
  }

let doc points = { Benchdiff.doc_experiment = "t"; doc_quick = true; doc_points = points }

let test_benchdiff_gate_fires () =
  let baseline = doc [ point "t/001" 1000.0 ~metrics:[ ("dma_words", 100.0) ] ] in
  Alcotest.(check bool) "identical docs pass" true
    (Benchdiff.ok (Benchdiff.compare_docs ~baseline ~fresh:baseline ()));
  (* 10% more cycles is far outside the 2% tolerance *)
  let v =
    Benchdiff.compare_docs ~baseline
      ~fresh:(doc [ point "t/001" 1100.0 ~metrics:[ ("dma_words", 100.0) ] ])
      ()
  in
  Alcotest.(check bool) "cycle regression fails the gate" false (Benchdiff.ok v);
  Alcotest.(check int) "exactly one regression" 1 (List.length v.Benchdiff.v_regressions);
  Alcotest.(check bool) "verdict renders it" true
    (contains (Benchdiff.render_verdict v) "REGRESSION t/001 cycles");
  (* fewer cycles is an improvement: reported, but not a failure *)
  let v =
    Benchdiff.compare_docs ~baseline
      ~fresh:(doc [ point "t/001" 900.0 ~metrics:[ ("dma_words", 100.0) ] ])
      ()
  in
  Alcotest.(check bool) "improvement passes" true (Benchdiff.ok v);
  Alcotest.(check int) "improvement reported" 1 (List.length v.Benchdiff.v_improvements);
  (* dma_words is direction-Exact: drift in the "good" direction fails too *)
  let v =
    Benchdiff.compare_docs ~baseline
      ~fresh:(doc [ point "t/001" 1000.0 ~metrics:[ ("dma_words", 99.0) ] ])
      ()
  in
  Alcotest.(check bool) "exact-metric drift fails" false (Benchdiff.ok v);
  (* a renamed point is missing + extra, both failures *)
  let v =
    Benchdiff.compare_docs ~baseline
      ~fresh:(doc [ point "t/002" 1000.0 ~metrics:[ ("dma_words", 100.0) ] ])
      ()
  in
  Alcotest.(check bool) "missing point fails" false (Benchdiff.ok v);
  Alcotest.(check (list string)) "missing id listed" [ "t/001" ] v.Benchdiff.v_missing;
  Alcotest.(check (list string)) "extra id listed" [ "t/002" ] v.Benchdiff.v_extra

let test_benchdiff_artifact_roundtrip () =
  let d =
    doc [ point "t/001" 1000.0 ~metrics:[ ("dma_words", 100.0); ("flops", 1024.0) ] ]
  in
  let path = Filename.temp_file "axi4mlir_bench" ".json" in
  Benchdiff.write_file path d;
  (match Benchdiff.read_file path with
  | Ok d' ->
    Alcotest.(check string) "experiment survives" d.Benchdiff.doc_experiment
      d'.Benchdiff.doc_experiment;
    Alcotest.(check bool) "quick flag survives" d.Benchdiff.doc_quick
      d'.Benchdiff.doc_quick;
    Alcotest.(check bool) "points survive verbatim"
      true (d.Benchdiff.doc_points = d'.Benchdiff.doc_points)
  | Error msg -> Alcotest.failf "read back failed: %s" msg);
  Sys.remove path;
  (* all failure modes are Error, never exceptions *)
  (match Benchdiff.read_file "/nonexistent/BENCH_x.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreadable file must be an Error");
  let bad = Filename.temp_file "axi4mlir_bench" ".json" in
  let oc = open_out bad in
  output_string oc "{\"schema\": \"wrong\"}";
  close_out oc;
  (match Benchdiff.read_file bad with
  | Error msg -> Alcotest.(check bool) "schema mismatch names schema" true
      (contains msg "schema")
  | Ok _ -> Alcotest.fail "wrong schema must be an Error");
  Sys.remove bad;
  Alcotest.(check string) "artifact naming" "BENCH_fig10.json" (Benchdiff.filename "fig10")

let test_derived_bench_metrics () =
  let c = Perf_counters.create () in
  c.Perf_counters.cycles <- 1000.0;
  c.Perf_counters.flops <- 500.0;
  c.Perf_counters.dma_words_sent <- 30.0;
  c.Perf_counters.dma_words_received <- 12.0;
  let metrics = Benchdiff.metrics_of_fields (Perf_counters.fields c) in
  Alcotest.(check (float 0.0)) "dma_words = sent + received" 42.0
    (List.assoc "dma_words" metrics);
  Alcotest.(check (float 0.0)) "gflops_per_cycle" 0.5
    (List.assoc "gflops_per_cycle" metrics);
  (* a zero-cycle run must not divide by zero *)
  let zero = Benchdiff.metrics_of_fields (Perf_counters.fields (Perf_counters.create ())) in
  Alcotest.(check (float 0.0)) "zero-cycle run yields 0, not nan" 0.0
    (List.assoc "gflops_per_cycle" zero)

let tests =
  [
    Alcotest.test_case "registry basics" `Quick test_registry_basics;
    Alcotest.test_case "registry export" `Quick test_registry_export;
    Alcotest.test_case "histogram edge cases" `Quick test_histogram_edges;
    Alcotest.test_case "histogram bucket lines" `Quick test_histogram_bucket_lines;
    Alcotest.test_case "remarks: applied and missed" `Quick test_remarks_applied_and_missed;
    Alcotest.test_case "benchdiff gate fires" `Quick test_benchdiff_gate_fires;
    Alcotest.test_case "benchdiff artifact round-trip" `Quick
      test_benchdiff_artifact_roundtrip;
    Alcotest.test_case "derived bench metrics" `Quick test_derived_bench_metrics;
  ]
