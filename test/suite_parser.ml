(* Printer/parser round-trip tests over the generic operation form. *)

let roundtrip_stable name m =
  let printed = Printer.to_generic m in
  let reparsed =
    try Parser_ir.parse_op printed
    with Parser_ir.Parse_error msg ->
      Alcotest.fail (Printf.sprintf "%s: parse error: %s\nIR was:\n%s" name msg printed)
  in
  Alcotest.(check string) (name ^ " roundtrip") printed (Printer.to_generic reparsed);
  (* structural equality modulo value identities, the stronger law *)
  match Ir_compare.diff_op m reparsed with
  | None -> ()
  | Some diff -> Alcotest.fail (Printf.sprintf "%s: structural difference: %s" name diff)

let test_parse_type () =
  List.iter
    (fun text -> Alcotest.(check string) text text (Ty.to_string (Parser_ir.parse_type text)))
    [
      "f32";
      "index";
      "i32";
      "memref<8x8xf32>";
      "memref<4x4xf32, strided<[80, 1], offset: 42>>";
      "memref<4x4xf32, strided<[8, 1], offset: ?>>";
      "memref<1x256x3x3xf32>";
      "(index, f32) -> (i32)";
    ]

let test_parse_attribute () =
  List.iter
    (fun text ->
      Alcotest.(check string) text text (Attribute.to_string (Parser_ir.parse_attribute text)))
    [
      "unit";
      "true";
      "42";
      "-3";
      "\"hello\"";
      "dense<[4, 4, 4]>";
      "[#parallel, #reduction]";
      "[1, 2, \"x\"]";
      "{a = 1, b = \"s\"}";
      "affine_map<(d0, d1, d2) -> (d0, d2)>";
      "affine_map<(d0, d1, d2, d3, d4, d5, d6) -> (d0, d4, d2 + d5, d3 + d6)>";
      "opcode_map<sA = [send_literal(0x22), send(0)]>";
      "opcode_flow<(sA (sB cC rC))>";
      "type(memref<4x4xf32>)";
    ]

let test_parse_float_attr () =
  match Parser_ir.parse_attribute "1.500000e+00" with
  | Attribute.Float f -> Alcotest.(check (float 1e-9)) "float value" 1.5 f
  | _ -> Alcotest.fail "expected float"

let test_roundtrip_matmul_module () =
  roundtrip_stable "matmul module" (Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 ())

let test_roundtrip_conv_module () =
  roundtrip_stable "conv module"
    (Axi4mlir.build_conv_module ~n:1 ~ic:4 ~ih:6 ~iw:6 ~oc:2 ~fh:3 ~fw:3 ())

let compile_matmul ?(to_runtime = true) () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"As" () in
  let bench = Axi4mlir.create accel in
  let options = { Axi4mlir.default_codegen with to_runtime_calls = to_runtime } in
  Axi4mlir.compile_matmul bench ~options ~m:8 ~n:8 ~k:8 ()

let test_roundtrip_accel_level () =
  roundtrip_stable "accel-level module" (compile_matmul ~to_runtime:false ())

let test_roundtrip_runtime_level () =
  roundtrip_stable "runtime-level module" (compile_matmul ~to_runtime:true ())

let test_roundtrip_cpu_level () =
  roundtrip_stable "cpu-lowered module"
    (Axi4mlir.compile_cpu (Axi4mlir.build_matmul_module ~m:4 ~n:4 ~k:4 ()))

let test_annotated_trait_roundtrip () =
  (* the trait attributes (opcode_map/flow, affine maps, dicts) survive
     printing and parsing *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Cs" () in
  let host = Host_config.pynq_z2 in
  let m = Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 () in
  let annotated =
    Pass.run_pipeline
      [ Match_annotate.pass ~accel ~host () ]
      m
  in
  roundtrip_stable "annotated module" annotated;
  let reparsed = Parser_ir.parse_op (Printer.to_generic annotated) in
  let generic =
    List.concat_map
      (fun f -> Ir.find_ops Linalg.is_generic f)
      (Ir.module_body reparsed)
  in
  match generic with
  | [ g ] -> (
    match Trait.of_op g with
    | Some trait ->
      Alcotest.(check (list int)) "accel_dim" [ 4; 4; 4 ] trait.Trait.accel_dim;
      Alcotest.(check (list int)) "permutation (Cs)" [ 0; 1; 2 ] trait.Trait.permutation
    | None -> Alcotest.fail "trait lost in roundtrip")
  | _ -> Alcotest.fail "generic op lost in roundtrip"

let test_parse_errors () =
  let expect_error src =
    match Parser_ir.parse_op src with
    | exception Parser_ir.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for: " ^ src)
  in
  expect_error "\"op\"(%0) : (f32) -> ()";
  (* undefined value *)
  expect_error "%0 = \"op\"() : () -> (f32) %0 = \"op\"() : () -> (f32)";
  (* redefinition *)
  expect_error "\"op\"() : (f32) -> ()";
  (* operand/type count mismatch *)
  expect_error "\"op\" : () -> ()" (* missing parens *)

let test_parse_comments () =
  let m = Parser_ir.parse_op "// header comment\n\"builtin.module\"() ({\n// inner\n}) : () -> ()" in
  Alcotest.(check bool) "module parsed" true (Ir.is_module m)

(* Property: parsing is insensitive to extra whitespace. *)
let prop_whitespace_insensitive =
  QCheck.Test.make ~name:"parser ignores extra blank lines" ~count:20
    QCheck.(int_range 1 5)
    (fun blanks ->
      let m = Axi4mlir.build_matmul_module ~m:4 ~n:4 ~k:4 () in
      let printed = Printer.to_generic m in
      let padded =
        String.concat (String.make blanks '\n') (String.split_on_char '\n' printed)
      in
      Printer.to_generic (Parser_ir.parse_op padded) = printed)

(* ------------------------------------------------------------------ *)
(* Golden files: committed expected IR for modules compiled from every
   configuration under examples/configs. Each test regenerates the
   module through the library pipeline and checks the printed output
   byte-for-byte against the committed file, then re-parses the file
   and checks print(parse(golden)) is byte-identical — so both the
   code generator's output and the printer/parser round trip are
   pinned. Regenerate with bin/axi4mlir_opt (see test/golden/). *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name ~golden m =
  let path = Filename.concat "golden" golden in
  let expected = read_file path in
  Alcotest.(check string) (name ^ ": codegen output matches " ^ path) expected
    (Printer.to_generic m);
  let reparsed =
    try Parser_ir.parse_op expected
    with Parser_ir.Parse_error msg ->
      Alcotest.fail (Printf.sprintf "%s: golden file does not parse: %s" path msg)
  in
  Alcotest.(check string) (name ^ ": byte-for-byte round trip") expected
    (Printer.to_generic reparsed);
  match Ir_compare.diff_op m reparsed with
  | None -> ()
  | Some diff -> Alcotest.fail (Printf.sprintf "%s: structural difference: %s" path diff)

let config_path file = Filename.concat (Filename.concat ".." "examples/configs") file

let compile_from_config ?(options = Axi4mlir.default_codegen) ~config m =
  let host, accel = Config_parser.parse_file (config_path config) in
  let bench = Axi4mlir.create ~host accel in
  Axi4mlir.compile bench ~options m

let test_golden_v3_matmul () =
  check_golden "v3/Cs matmul" ~golden:"matmul_v3_16_cs.mlir"
    (compile_from_config ~config:"v3_16_cs.json"
       (Axi4mlir.build_matmul_module ~m:64 ~n:64 ~k:64 ()))

let test_golden_v4_tiled_matmul () =
  check_golden "v4 tiled matmul" ~golden:"matmul_v4_16_tiles.mlir"
    (compile_from_config ~config:"v4_16.json"
       ~options:{ Axi4mlir.default_codegen with tiles = Some [ 32; 16; 16 ] }
       (Axi4mlir.build_matmul_module ~m:64 ~n:48 ~k:32 ()))

let test_golden_conv () =
  check_golden "conv2d/Ws" ~golden:"conv2d_ws.mlir"
    (compile_from_config ~config:"conv2d.json"
       (Axi4mlir.build_conv_module ~n:1 ~ic:2 ~ih:8 ~iw:8 ~oc:2 ~fh:3 ~fw:3 ()))

let test_golden_accel_level () =
  check_golden "v3 accel-level" ~golden:"matmul_v3_16_accel_level.mlir"
    (compile_from_config ~config:"v3_16_cs.json"
       ~options:{ Axi4mlir.default_codegen with to_runtime_calls = false }
       (Axi4mlir.build_matmul_module ~m:32 ~n:32 ~k:32 ()))

let test_golden_cpu_loops () =
  check_golden "cpu loop nest" ~golden:"matmul_cpu_loops.mlir"
    (Axi4mlir.compile_cpu (Axi4mlir.build_matmul_module ~m:16 ~n:16 ~k:16 ()))

let tests =
  [
    Alcotest.test_case "parse types" `Quick test_parse_type;
    Alcotest.test_case "parse attributes" `Quick test_parse_attribute;
    Alcotest.test_case "parse float attribute" `Quick test_parse_float_attr;
    Alcotest.test_case "roundtrip: matmul module" `Quick test_roundtrip_matmul_module;
    Alcotest.test_case "roundtrip: conv module" `Quick test_roundtrip_conv_module;
    Alcotest.test_case "roundtrip: accel level" `Quick test_roundtrip_accel_level;
    Alcotest.test_case "roundtrip: runtime level" `Quick test_roundtrip_runtime_level;
    Alcotest.test_case "roundtrip: cpu lowering" `Quick test_roundtrip_cpu_level;
    Alcotest.test_case "roundtrip: annotated trait" `Quick test_annotated_trait_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments" `Quick test_parse_comments;
    Alcotest.test_case "golden: v3/Cs matmul" `Quick test_golden_v3_matmul;
    Alcotest.test_case "golden: v4 tiled matmul" `Quick test_golden_v4_tiled_matmul;
    Alcotest.test_case "golden: conv2d" `Quick test_golden_conv;
    Alcotest.test_case "golden: accel level" `Quick test_golden_accel_level;
    Alcotest.test_case "golden: cpu loops" `Quick test_golden_cpu_loops;
    QCheck_alcotest.to_alcotest prop_whitespace_insensitive;
  ]
