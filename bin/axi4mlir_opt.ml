(* axi4mlir-opt: the pass-driver tool.

   Reads a module in the generic IR syntax (file or stdin), runs the
   AXI4MLIR pipeline configured by an accelerator/host JSON file, and
   prints the result.

     dune exec bin/axi4mlir_opt.exe -- --config accel.json input.mlir
     dune exec bin/axi4mlir_opt.exe -- --emit-matmul 64,64,64 --config accel.json -
*)

open Cmdliner

let read_input = function
  | "-" ->
    let buf = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel buf stdin 1
       done
     with End_of_file -> ());
    Buffer.contents buf
  | path ->
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text

let parse_tiles = function
  | None -> None
  | Some text -> Some (List.map int_of_string (String.split_on_char ',' text))

let run_tool config_path input emit_matmul emit_conv flow tiles no_cpu_tiling no_copy_spec
    coalesce double_buffer accel_only cpu_only pretty list_passes remarks metrics_out =
  if list_passes then begin
    Tool_common.print_listing ~title:"Registered passes (pipeline order):"
      (Tool_common.registered_passes ());
    `Ok ()
  end
  else
  Tool_common.with_observability ~remarks ~metrics:metrics_out @@ fun () ->
  Dialects.register_all ();
  let modul =
    match (emit_matmul, emit_conv, input) with
    | Some _, Some _, _ -> failwith "--emit-matmul and --emit-conv are exclusive"
    | Some dims, None, _ -> (
      match List.map int_of_string (String.split_on_char ',' dims) with
      | [ m; n; k ] -> Axi4mlir.build_matmul_module ~m ~n ~k ()
      | _ -> failwith "--emit-matmul expects M,N,K")
    | None, Some dims, _ -> (
      match List.map int_of_string (String.split_on_char ',' dims) with
      | [ ic; ihw; oc; fhw ] ->
        Axi4mlir.build_conv_module ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw ()
      | _ -> failwith "--emit-conv expects IC,IHW,OC,FHW")
    | None, None, Some path -> Parser_ir.parse_op (read_input path)
    | None, None, None ->
      failwith "provide an input file (or '-'), --emit-matmul or --emit-conv"
  in
  let result =
    if cpu_only then Axi4mlir.compile_cpu modul
    else begin
      let config_path =
        match config_path with
        | Some p -> p
        | None -> failwith "--config is required (except with --cpu)"
      in
      let host, accel = Config_parser.parse_file config_path in
      let bench = Axi4mlir.create ~host accel in
      let options =
        {
          Axi4mlir.flow;
          tiles = parse_tiles tiles;
          cpu_tiling = not no_cpu_tiling;
          copy_specialization = not no_copy_spec;
          coalesce_transfers = coalesce;
          double_buffer;
          to_runtime_calls = not accel_only;
        }
      in
      Axi4mlir.compile bench ~options modul
    end
  in
  print_string (if pretty then Printer.to_pretty result else Printer.to_generic result);
  `Ok ()

let config =
  Arg.(value & opt (some string) None & info [ "config" ] ~docv:"FILE"
         ~doc:"Accelerator/host configuration (JSON, Fig. 5 format).")

let input =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"INPUT"
         ~doc:"Module in generic IR syntax; '-' reads stdin.")

let emit_matmul =
  Arg.(value & opt (some string) None & info [ "emit-matmul" ] ~docv:"M,N,K"
         ~doc:"Ignore INPUT and start from a fresh linalg matmul module.")

let emit_conv =
  Arg.(value & opt (some string) None & info [ "emit-conv" ] ~docv:"IC,IHW,OC,FHW"
         ~doc:"Ignore INPUT and start from a fresh linalg conv2d module \
               (batch 1, square input/filter, stride 1).")

let flow =
  Arg.(value & opt (some string) None & info [ "flow" ] ~docv:"NAME"
         ~doc:"Override the configuration's selected opcode flow.")

let tiles =
  Arg.(value & opt (some string) None & info [ "tiles" ] ~docv:"TM,TN,TK"
         ~doc:"Tile-size override for flexible engines.")

let no_cpu_tiling =
  Arg.(value & flag & info [ "no-cpu-tiling" ] ~doc:"Disable cache-hierarchy tiling.")

let no_copy_spec =
  Arg.(value & flag & info [ "no-copy-spec" ]
         ~doc:"Disable the Sec. IV-B strided-copy specialisation.")

let coalesce =
  Arg.(value & flag & info [ "coalesce" ]
         ~doc:"Enable Sec. V transfer coalescing.")

let double_buffer =
  Arg.(value & flag & info [ "double-buffer" ]
         ~doc:"Enable the Sec. V double-buffering attribute.")

let accel_only =
  Arg.(value & flag & info [ "accel-only" ]
         ~doc:"Stop at the accel dialect (Fig. 6b level) instead of runtime calls.")

let cpu_only =
  Arg.(value & flag & info [ "cpu" ]
         ~doc:"Run the mlir_CPU lowering (linalg to loops) instead of offloading.")

let pretty =
  Arg.(value & flag & info [ "pretty" ] ~doc:"Human-oriented printing (not re-parseable).")

let list_passes =
  Arg.(value & flag & info [ "list-passes" ]
         ~doc:"List the registered passes (accelerator pipeline and CPU \
               reference lowering) and exit.")

let cmd =
  let doc = "AXI4MLIR pass driver: compile linalg modules into accelerator host code" in
  Cmd.v
    (Cmd.info "axi4mlir-opt" ~doc)
    Term.(
      ret
        (const run_tool $ config $ input $ emit_matmul $ emit_conv $ flow $ tiles
       $ no_cpu_tiling $ no_copy_spec $ coalesce $ double_buffer $ accel_only $ cpu_only
       $ pretty $ list_passes $ Tool_common.remarks_flag $ Tool_common.metrics_out))

let () = exit (Cmd.eval cmd)
