(* axi4mlir-serve: inference-serving simulation over the deterministic
   timeline — request streams, multi-accelerator scheduling, tail
   latency per policy.

     dune exec bin/axi4mlir_serve.exe -- --workload tinybert --rps 50 --accels 2
     dune exec bin/axi4mlir_serve.exe -- --workload matmul:64,64,64 \
       --workload resnet18 --rps 200 --accels 4 --policy batch --trace serve.json
     dune exec bin/axi4mlir_serve.exe -- --workload tinybert --rps 100 \
       --queue-cap 8 --json serve-report.json
     dune exec bin/axi4mlir_serve.exe -- --workload tinybert --rps 200 \
       --dashboard --slo 'p99<=250000000' --slo 'availability>=99%' \
       --telemetry telemetry.json
*)

open Cmdliner

let run_tool workloads graph platform_file rps accels policy_name requests seed
    queue_cap batch_max rows seq window slo_specs dashboard telemetry_out assert_fired
    report_out json_out trace_out remarks metrics_out =
  Tool_common.with_observability ~remarks ~metrics:metrics_out @@ fun () ->
  let fail_on_error = function Ok v -> v | Error msg -> failwith msg in
  if workloads = [] then
    failwith
      "--workload is required (repeatable; e.g. --workload tinybert --workload \
       matmul:64,64,64)";
  let platform =
    match platform_file with
    | None -> None
    | Some path ->
      if graph then
        failwith
          "--platform cannot be combined with --graph (whole-model graph costs are \
           not engine-parameterised yet)";
      Some (fail_on_error (Platform_ir.load_file path))
  in
  let accels =
    match platform with Some p -> Platform_ir.n_instances p | None -> accels
  in
  if not (rps > 0.0) then
    failwith (Printf.sprintf "--rps must be positive (got %g)" rps);
  if requests < 1 then
    failwith (Printf.sprintf "--requests must be >= 1 (got %d)" requests);
  (match window with
  | Some w when not (w > 0.0) ->
    failwith (Printf.sprintf "--window must be a positive cycle count (got %g)" w)
  | _ -> ());
  let slos = List.map (fun s -> fail_on_error (Slo.parse s)) slo_specs in
  if assert_fired > 0 && slos = [] then
    failwith "--assert-fired needs at least one --slo to evaluate";
  let policies =
    match policy_name with
    | "all" -> Serve_policy.all
    | name -> [ fail_on_error (Serve_policy.of_string name) ]
  in
  let params =
    {
      Serve_sim.sp_accels = accels;
      sp_policy = Serve_policy.Fifo;
      sp_queue_cap = queue_cap;
      sp_batch_max = batch_max;
    }
  in
  fail_on_error (Serve_sim.validate params);
  let oracle =
    if graph then begin
      (* whole-model serving: each request costs a full Graph_exec
         forward pass under the residency plan, not a shape-class sum *)
      let graphs =
        List.map
          (fun spec ->
            match Graph_build.of_name spec with
            | Ok g -> (spec, g)
            | Error msg ->
              failwith
                (Printf.sprintf
                   "%s (with --graph every --workload must be a whole-model \
                    name)"
                   msg))
          workloads
      in
      Serve_cost.create ~graphs []
    end
    else
      Serve_cost.create (fail_on_error (Serve_cost.models_of_specs ~rows ~seq workloads))
  in
  let fleet =
    match platform with
    | None -> None
    | Some p ->
      Some
        (Platform_serve.create ~platform:p
           (fail_on_error (Serve_cost.models_of_specs ~rows ~seq workloads)))
  in
  let service, predict, service_at, predict_at =
    match fleet with
    | None -> (Serve_cost.service oracle, Serve_cost.predict oracle, None, None)
    | Some f ->
      ( (fun model ~batch -> Platform_serve.service_at f ~accel:0 model ~batch),
        (fun model -> Platform_serve.predict_at f ~accel:0 model),
        Some (fun ~accel model ~batch -> Platform_serve.service_at f ~accel model ~batch),
        Some (fun ~accel model -> Platform_serve.predict_at f ~accel model) )
  in
  let engines = Option.map Platform_serve.engines fleet in
  let freq_mhz = Cost_model.default.Cost_model.cpu_freq_mhz in
  let mean_gap = freq_mhz *. 1e6 /. rps in
  let stream =
    {
      Serve_request.st_seed = seed;
      st_count = requests;
      st_mean_gap = mean_gap;
      st_models = workloads;
    }
  in
  let reqs = fail_on_error (Serve_request.generate stream) in
  let outcomes =
    List.map
      (fun policy ->
        let outcome =
          fail_on_error
            (Serve_sim.run ?service_at ?predict_at ~service ~predict
               { params with Serve_sim.sp_policy = policy }
               reqs)
        in
        (policy, outcome))
      policies
  in
  let report =
    {
      Serve_report.rp_workloads = workloads;
      rp_seed = seed;
      rp_rps = rps;
      rp_requests = requests;
      rp_accels = accels;
      rp_queue_cap = queue_cap;
      rp_batch_max = batch_max;
      rp_freq_mhz = freq_mhz;
      rp_platform = Option.map Platform_ir.to_string platform;
      rp_summaries =
        List.map
          (fun (policy, outcome) ->
            Serve_report.summarize ?engines ~freq_mhz policy outcome)
          outcomes;
    }
  in
  let rendered = Serve_report.render report in
  print_string rendered;
  (* Telemetry is a second, observed pass over the same streams: the
     scheduler is deterministic and the cost oracle memoised, so the
     re-run is cheap and its outcomes are bit-identical — which also
     lets --window default to a width derived from the measured
     makespan (about 20 windows across the first policy's run). *)
  let want_telemetry =
    dashboard || slos <> [] || telemetry_out <> None || window <> None
  in
  let observed =
    if not want_telemetry then []
    else begin
      let width =
        match window with
        | Some w -> w
        | None ->
          let _, first = List.hd outcomes in
          Float.max 1.0 (first.Serve_sim.oc_makespan /. 20.0)
      in
      List.map
        (fun (policy, _) ->
          let telemetry = fail_on_error (Serve_telemetry.create ~window:width ~accels) in
          let outcome =
            fail_on_error
              (Serve_sim.run ~telemetry ?service_at ?predict_at ~service ~predict
                 { params with Serve_sim.sp_policy = policy }
                 reqs)
          in
          ignore outcome;
          (policy, telemetry, Serve_telemetry.evaluate telemetry slos))
        outcomes
    end
  in
  List.iter
    (fun (policy, telemetry, evals) ->
      let name = Serve_policy.to_string policy in
      if dashboard then
        print_string (Serve_report.render_dashboard ~slos:evals ~policy telemetry)
      else List.iter (fun ev -> print_string (Slo.render ev)) evals;
      List.iter
        (fun ev ->
          Slo.emit_remarks ~loc:(Printf.sprintf "serve/%s" name) ev;
          Slo.emit_metrics ~labels:[ ("policy", name) ] ev)
        evals)
    observed;
  (match report_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc rendered;
    close_out oc;
    Printf.eprintf "serve report : %s\n" path);
  (match json_out with
  | None -> ()
  | Some path ->
    Serve_report.write_file path report;
    Printf.eprintf "serve json   : %s (axi4mlir-serve-v1)\n" path);
  (match telemetry_out with
  | None -> ()
  | Some path ->
    Serve_telemetry.write_file path
      (List.map
         (fun (policy, telemetry, evals) ->
           (Serve_policy.to_string policy, telemetry, evals))
         observed);
    Printf.eprintf "serve telem  : %s (axi4mlir-telemetry-v1)\n" path);
  (match trace_out with
  | None -> ()
  | Some path ->
    (* one standalone trace; with --policy all it shows the first
       policy's timeline (fifo), the baseline worth inspecting *)
    let policy, outcome = List.hd outcomes in
    let telemetry =
      match observed with (_, tel, _) :: _ -> Some tel | [] -> None
    in
    Serve_report.write_trace ?telemetry ~freq_mhz path outcome;
    Printf.eprintf "serve trace  : %s (%s policy)\n" path
      (Serve_policy.to_string policy));
  (if assert_fired > 0 then
     let fired =
       List.fold_left
         (fun acc (_, _, evals) ->
           List.fold_left (fun acc ev -> acc + ev.Slo.sv_fired) acc evals)
         0 observed
     in
     if fired < assert_fired then
       failwith
         (Printf.sprintf
            "--assert-fired %d: only %d burn-rate alert(s) fired across %d policy \
             runs"
            assert_fired fired (List.length observed)));
  `Ok ()

let workload =
  Arg.(
    value & opt_all string []
    & info [ "workload" ] ~docv:"SPEC"
        ~doc:
          "What each request invokes (repeatable; repeats weight the mix): \
           $(b,matmul:M,N,K), $(b,conv:IC,IHW,OC,FHW[,STRIDE]), $(b,resnet18) \
           (row-sampled conv proxies), $(b,resnet18/LAYER) or $(b,tinybert) \
           (padded MatMul shape classes).")

let graph =
  Arg.(
    value & flag
    & info [ "graph" ]
        ~doc:
          "Whole-model mode: every $(b,--workload) must be a graph model name \
           ($(b,resnet18) or $(b,tinybert)); each request is costed as a full \
           residency-planned forward pass through the model graph \
           (weight-stationary reuse and accel-to-accel chaining included) \
           instead of a per-shape-class layer sum.")

let platform_file =
  Arg.(
    value & opt (some string) None
    & info [ "platform" ] ~docv:"FILE"
        ~doc:
          "Serve on a platform description (axi4mlir-platform-v1 JSON, see \
           $(b,axi4mlir-config --platform-preset)): the instance list replaces \
           $(b,--accels), each slot is costed with its own engine, and the \
           description's DMA channel count and AXI beat width scale the transfer \
           share of every service time.")

let rps =
  Arg.(
    value & opt float 100.0
    & info [ "rps" ] ~docv:"RATE"
        ~doc:
          "Offered load in requests per second of simulated time (exponential \
           inter-arrival gaps with mean 1/$(docv)).")

let accels =
  Arg.(
    value & opt int 2
    & info [ "accels" ] ~docv:"K" ~doc:"Accelerator instances to dispatch across.")

let policy =
  Arg.(
    value & opt string "all"
    & info [ "policy" ] ~docv:"NAME"
        ~doc:
          "Scheduling policy: $(b,fifo), $(b,sjf), $(b,batch), or $(b,all) to run \
           every policy on the same stream.")

let requests =
  Arg.(
    value & opt int 32
    & info [ "requests" ] ~docv:"N" ~doc:"Stream length (number of requests).")

let seed =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:"Deterministic seed for arrival gaps and model choices.")

let queue_cap =
  Arg.(
    value & opt (some int) None
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:
          "Admission control: reject a request arriving while $(docv) admitted \
           requests are still in flight (default: unbounded).")

let batch_max =
  Arg.(
    value & opt int 4
    & info [ "batch-max" ] ~docv:"N"
        ~doc:"Max same-model requests coalesced per kernel under $(b,batch).")

let rows =
  Arg.(
    value & opt int 2
    & info [ "rows" ] ~docv:"N"
        ~doc:"ResNet-18 row-sampling depth (output rows simulated per layer).")

let seq =
  Arg.(
    value & opt int 128
    & info [ "seq" ] ~docv:"N" ~doc:"TinyBERT sequence length.")

let window =
  Arg.(
    value & opt (some float) None
    & info [ "window" ] ~docv:"CYCLES"
        ~doc:
          "Telemetry window width in simulated cycles (must be positive). Default: \
           the first policy's makespan divided into 20 windows.")

let slo =
  Arg.(
    value & opt_all string []
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "Evaluate a service-level objective over the telemetry windows \
           (repeatable): $(b,pP<=LIMIT[@W]) with P in 50/90/95/99 and LIMIT in \
           cycles, or $(b,availability>=TARGET[@W]) with TARGET a percentage or \
           fraction. @W sets the burn-rate long window (default 4). Burn-rate \
           alert transitions are printed, logged as remarks and exported as \
           slo.* metrics.")

let dashboard =
  Arg.(
    value & flag
    & info [ "dashboard" ]
        ~doc:
          "Print the ASCII telemetry dashboard (per-window sparklines of \
           arrivals, completions, rejections, kernels, queue depth, in-flight \
           count, rolling p99 latency and per-accelerator busy fraction) for \
           each policy.")

let telemetry_out =
  Arg.(
    value & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:"Write the axi4mlir-telemetry-v1 JSON artifact to $(docv).")

let assert_fired =
  Arg.(
    value & opt int 0
    & info [ "assert-fired" ] ~docv:"N"
        ~doc:
          "Fail (exit 124) unless at least $(docv) burn-rate alerts fired across \
           all policies and --slo objectives — a CI hook for pinning alerting \
           behaviour.")

let report_out =
  Arg.(
    value & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write the rendered comparison table to $(docv) as well as stdout.")

let json_out =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the axi4mlir-serve-v1 JSON artifact to $(docv).")

let trace_out =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace (per-accelerator dispatch slices plus a \
           per-request lifetime track) to $(docv).")

let cmd =
  let doc = "inference-serving simulation over AXI4MLIR accelerators" in
  Cmd.v
    (Cmd.info "axi4mlir-serve" ~doc)
    Term.(
      ret
        (const run_tool $ workload $ graph $ platform_file $ rps $ accels $ policy
       $ requests $ seed
       $ queue_cap $ batch_max $ rows $ seq $ window $ slo $ dashboard
       $ telemetry_out $ assert_fired $ report_out $ json_out $ trace_out
       $ Tool_common.remarks_flag $ Tool_common.metrics_out))

let () = exit (Cmd.eval cmd)
