(* axi4mlir-serve: inference-serving simulation over the deterministic
   timeline — request streams, multi-accelerator scheduling, tail
   latency per policy.

     dune exec bin/axi4mlir_serve.exe -- --workload tinybert --rps 50 --accels 2
     dune exec bin/axi4mlir_serve.exe -- --workload matmul:64,64,64 \
       --workload resnet18 --rps 200 --accels 4 --policy batch --trace serve.json
     dune exec bin/axi4mlir_serve.exe -- --workload tinybert --rps 100 \
       --queue-cap 8 --json serve-report.json
*)

open Cmdliner

let run_tool workloads rps accels policy_name requests seed queue_cap batch_max rows
    seq report_out json_out trace_out remarks metrics_out =
  Tool_common.with_observability ~remarks ~metrics:metrics_out @@ fun () ->
  let fail_on_error = function Ok v -> v | Error msg -> failwith msg in
  if workloads = [] then
    failwith
      "--workload is required (repeatable; e.g. --workload tinybert --workload \
       matmul:64,64,64)";
  if not (rps > 0.0) then
    failwith (Printf.sprintf "--rps must be positive (got %g)" rps);
  if requests < 1 then
    failwith (Printf.sprintf "--requests must be >= 1 (got %d)" requests);
  let policies =
    match policy_name with
    | "all" -> Serve_policy.all
    | name -> [ fail_on_error (Serve_policy.of_string name) ]
  in
  let params =
    {
      Serve_sim.sp_accels = accels;
      sp_policy = Serve_policy.Fifo;
      sp_queue_cap = queue_cap;
      sp_batch_max = batch_max;
    }
  in
  fail_on_error (Serve_sim.validate params);
  let models = fail_on_error (Serve_cost.models_of_specs ~rows ~seq workloads) in
  let oracle = Serve_cost.create models in
  let freq_mhz = Cost_model.default.Cost_model.cpu_freq_mhz in
  let mean_gap = freq_mhz *. 1e6 /. rps in
  let stream =
    {
      Serve_request.st_seed = seed;
      st_count = requests;
      st_mean_gap = mean_gap;
      st_models = workloads;
    }
  in
  let reqs = fail_on_error (Serve_request.generate stream) in
  let outcomes =
    List.map
      (fun policy ->
        let outcome =
          fail_on_error
            (Serve_sim.run
               ~service:(Serve_cost.service oracle)
               ~predict:(Serve_cost.predict oracle)
               { params with Serve_sim.sp_policy = policy }
               reqs)
        in
        (policy, outcome))
      policies
  in
  let report =
    {
      Serve_report.rp_workloads = workloads;
      rp_seed = seed;
      rp_rps = rps;
      rp_requests = requests;
      rp_accels = accels;
      rp_queue_cap = queue_cap;
      rp_batch_max = batch_max;
      rp_freq_mhz = freq_mhz;
      rp_summaries =
        List.map
          (fun (policy, outcome) -> Serve_report.summarize ~freq_mhz policy outcome)
          outcomes;
    }
  in
  let rendered = Serve_report.render report in
  print_string rendered;
  (match report_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc rendered;
    close_out oc;
    Printf.eprintf "serve report : %s\n" path);
  (match json_out with
  | None -> ()
  | Some path ->
    Serve_report.write_file path report;
    Printf.eprintf "serve json   : %s (axi4mlir-serve-v1)\n" path);
  (match trace_out with
  | None -> ()
  | Some path ->
    (* one standalone trace; with --policy all it shows the first
       policy's timeline (fifo), the baseline worth inspecting *)
    let policy, outcome = List.hd outcomes in
    Serve_report.write_trace ~freq_mhz path outcome;
    Printf.eprintf "serve trace  : %s (%s policy)\n" path
      (Serve_policy.to_string policy));
  `Ok ()

let workload =
  Arg.(
    value & opt_all string []
    & info [ "workload" ] ~docv:"SPEC"
        ~doc:
          "What each request invokes (repeatable; repeats weight the mix): \
           $(b,matmul:M,N,K), $(b,conv:IC,IHW,OC,FHW[,STRIDE]), $(b,resnet18) \
           (row-sampled conv proxies), $(b,resnet18/LAYER) or $(b,tinybert) \
           (padded MatMul shape classes).")

let rps =
  Arg.(
    value & opt float 100.0
    & info [ "rps" ] ~docv:"RATE"
        ~doc:
          "Offered load in requests per second of simulated time (exponential \
           inter-arrival gaps with mean 1/$(docv)).")

let accels =
  Arg.(
    value & opt int 2
    & info [ "accels" ] ~docv:"K" ~doc:"Accelerator instances to dispatch across.")

let policy =
  Arg.(
    value & opt string "all"
    & info [ "policy" ] ~docv:"NAME"
        ~doc:
          "Scheduling policy: $(b,fifo), $(b,sjf), $(b,batch), or $(b,all) to run \
           every policy on the same stream.")

let requests =
  Arg.(
    value & opt int 32
    & info [ "requests" ] ~docv:"N" ~doc:"Stream length (number of requests).")

let seed =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:"Deterministic seed for arrival gaps and model choices.")

let queue_cap =
  Arg.(
    value & opt (some int) None
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:
          "Admission control: reject a request arriving while $(docv) admitted \
           requests are still in flight (default: unbounded).")

let batch_max =
  Arg.(
    value & opt int 4
    & info [ "batch-max" ] ~docv:"N"
        ~doc:"Max same-model requests coalesced per kernel under $(b,batch).")

let rows =
  Arg.(
    value & opt int 2
    & info [ "rows" ] ~docv:"N"
        ~doc:"ResNet-18 row-sampling depth (output rows simulated per layer).")

let seq =
  Arg.(
    value & opt int 128
    & info [ "seq" ] ~docv:"N" ~doc:"TinyBERT sequence length.")

let report_out =
  Arg.(
    value & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write the rendered comparison table to $(docv) as well as stdout.")

let json_out =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the axi4mlir-serve-v1 JSON artifact to $(docv).")

let trace_out =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace (per-accelerator dispatch slices plus a \
           per-request lifetime track) to $(docv).")

let cmd =
  let doc = "inference-serving simulation over AXI4MLIR accelerators" in
  Cmd.v
    (Cmd.info "axi4mlir-serve" ~doc)
    Term.(
      ret
        (const run_tool $ workload $ rps $ accels $ policy $ requests $ seed
       $ queue_cap $ batch_max $ rows $ seq $ report_out $ json_out $ trace_out
       $ Tool_common.remarks_flag $ Tool_common.metrics_out))

let () = exit (Cmd.eval cmd)
