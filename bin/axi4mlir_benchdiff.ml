(* axi4mlir-benchdiff: the benchmark regression gate.

   Compares a fresh `bench/main.exe --json DIR` run against the blessed
   baselines committed under bench/baselines/, one BENCH_<exp>.json per
   experiment, using the per-metric relative tolerances in
   Benchdiff.tolerances. Exits non-zero on any regression, missing
   point or unreadable artifact, so it can gate `dune runtest`.

     dune exec bin/axi4mlir_benchdiff.exe -- \
       --baselines bench/baselines --fresh /tmp/bench fig10 fig12
     dune exec bin/axi4mlir_benchdiff.exe -- \
       --baselines bench/baselines --fresh /tmp/bench --bless
*)

open Cmdliner

(* Experiment names present as BENCH_<exp>.json in [dir]. *)
let experiments_in dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun f ->
         if
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json"
         then Some (String.sub f 6 (String.length f - 11))
         else None)
    |> List.sort compare
  | exception Sys_error msg ->
    failwith (Printf.sprintf "cannot list %s: %s" dir msg)

let bless ~baselines ~fresh exps =
  let exps = if exps <> [] then exps else experiments_in fresh in
  if exps = [] then failwith (Printf.sprintf "no BENCH_*.json artifacts in %s" fresh);
  (try Sys.mkdir baselines 0o755 with Sys_error _ -> ());
  List.iter
    (fun exp ->
      let src = Filename.concat fresh (Benchdiff.filename exp) in
      match Benchdiff.read_file src with
      | Error msg -> failwith msg
      | Ok doc ->
        let dst = Filename.concat baselines (Benchdiff.filename exp) in
        Benchdiff.write_file dst doc;
        Printf.printf "blessed %s (%d points) -> %s\n" exp
          (List.length doc.Benchdiff.doc_points)
          dst)
    exps

let check ~baselines ~fresh exps =
  let exps = if exps <> [] then exps else experiments_in baselines in
  if exps = [] then
    failwith (Printf.sprintf "no BENCH_*.json baselines in %s" baselines);
  let failed = ref false in
  List.iter
    (fun exp ->
      let read dir =
        match Benchdiff.read_file (Filename.concat dir (Benchdiff.filename exp)) with
        | Ok doc -> Some doc
        | Error msg ->
          Printf.printf "%s: %s\n" exp msg;
          failed := true;
          None
      in
      match (read baselines, read fresh) with
      | Some baseline, Some fresh_doc ->
        if baseline.Benchdiff.doc_quick <> fresh_doc.Benchdiff.doc_quick then begin
          Printf.printf "%s: baseline and fresh run disagree on --quick\n" exp;
          failed := true
        end;
        let verdict = Benchdiff.compare_docs ~baseline ~fresh:fresh_doc () in
        print_string (Benchdiff.render_verdict verdict);
        if not (Benchdiff.ok verdict) then failed := true
      | _ -> ())
    exps;
  if !failed then
    failwith "benchmark regression gate FAILED (re-bless with --bless if intended)"
  else print_endline "benchmark regression gate passed"

let run_tool baselines fresh do_bless exps =
  match
    if do_bless then bless ~baselines ~fresh exps else check ~baselines ~fresh exps
  with
  | () -> `Ok ()
  | exception Failure msg -> `Error (false, msg)

let baselines =
  Arg.(
    value
    & opt string "bench/baselines"
    & info [ "baselines" ] ~docv:"DIR" ~doc:"Directory of blessed BENCH_*.json files.")

let fresh =
  Arg.(
    required
    & opt (some string) None
    & info [ "fresh" ] ~docv:"DIR"
        ~doc:"Directory of freshly produced BENCH_*.json files (bench/main.exe --json).")

let do_bless =
  Arg.(
    value & flag
    & info [ "bless" ]
        ~doc:"Copy the fresh artifacts over the baselines instead of comparing.")

let exps =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT" ~doc:"Experiments to compare (default: all baselines).")

let cmd =
  let doc = "compare benchmark artifacts against blessed baselines" in
  Cmd.v
    (Cmd.info "axi4mlir-benchdiff" ~doc)
    Term.(ret (const run_tool $ baselines $ fresh $ do_bless $ exps))

let () = exit (Cmd.eval cmd)
