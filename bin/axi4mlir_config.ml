(* axi4mlir-config: emit, validate and inspect accelerator
   configuration files.

     dune exec bin/axi4mlir_config.exe -- --list
     dune exec bin/axi4mlir_config.exe -- --preset v3_16 --flow Cs -o v3_16.json
     dune exec bin/axi4mlir_config.exe -- --check my_accel.json
*)

open Cmdliner

let run_tool list_presets preset flow output check =
  match (list_presets, preset, check) with
  | true, _, _ ->
    List.iter
      (fun name ->
        match Presets.find_by_name name with
        | Error msg -> failwith msg
        | Ok config ->
          Printf.printf "%-8s %-20s flows: %s (default %s)\n" name
            config.Accel_config.op_kind
            (String.concat ", " (List.map fst config.Accel_config.opcode_flows))
            config.Accel_config.selected_flow)
      Presets.names;
    `Ok ()
  | false, _, Some path ->
    let _host, config = Config_parser.parse_file path in
    Printf.printf "%s: valid (%s, %s flow, %d opcodes)\n" path
      config.Accel_config.accel_name config.Accel_config.selected_flow
      (List.length config.Accel_config.opcode_map);
    `Ok ()
  | false, Some name, None -> (
    match Presets.find_by_name ?flow name with
    | Error msg -> `Error (false, msg)
    | Ok config ->
      let text = Config_parser.to_string Host_config.pynq_z2 config in
      (match output with
      | None -> print_endline text
      | Some path ->
        let oc = open_out path in
        output_string oc text;
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path);
      `Ok ())
  | false, None, None -> `Error (true, "one of --list, --preset or --check is required")

let list_presets = Arg.(value & flag & info [ "list" ] ~doc:"List available presets.")

let preset =
  Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"NAME"
         ~doc:"Emit a preset configuration (e.g. v3_16, conv2d).")

let flow =
  Arg.(value & opt (some string) None & info [ "flow" ] ~docv:"NAME"
         ~doc:"Select the preset's default opcode flow.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write to FILE instead of stdout.")

let check =
  Arg.(value & opt (some string) None & info [ "check" ] ~docv:"FILE"
         ~doc:"Parse and validate an existing configuration file.")

let cmd =
  let doc = "emit, validate and inspect AXI4MLIR accelerator configurations" in
  Cmd.v
    (Cmd.info "axi4mlir-config" ~doc)
    Term.(ret (const run_tool $ list_presets $ preset $ flow $ output $ check))

let () = exit (Cmd.eval cmd)
