(* axi4mlir-config: emit, validate and inspect accelerator
   configuration files.

     dune exec bin/axi4mlir_config.exe -- --list
     dune exec bin/axi4mlir_config.exe -- --preset v3_16 --flow Cs -o v3_16.json
     dune exec bin/axi4mlir_config.exe -- --check my_accel.json
*)

open Cmdliner

let run_tool list_presets preset flow output check platform_preset check_platform =
  match (list_presets, preset, check, platform_preset, check_platform) with
  | true, _, _, _, _ ->
    List.iter
      (fun name ->
        match Presets.find_by_name name with
        | Error msg -> failwith msg
        | Ok config ->
          Printf.printf "%-8s %-20s flows: %s (default %s)\n" name
            config.Accel_config.op_kind
            (String.concat ", " (List.map fst config.Accel_config.opcode_flows))
            config.Accel_config.selected_flow)
      Presets.names;
    Printf.printf "platform presets (axi4mlir-platform-v1):\n";
    List.iter
      (fun (name, p) ->
        Printf.printf "%-12s %s (%.1f units)\n" name (Platform_ir.to_string p)
          (Platform_cost.resource_total_exn p))
      Platform_ir.presets;
    `Ok ()
  | false, _, Some path, _, _ ->
    let _host, config = Config_parser.parse_file path in
    Printf.printf "%s: valid (%s, %s flow, %d opcodes)\n" path
      config.Accel_config.accel_name config.Accel_config.selected_flow
      (List.length config.Accel_config.opcode_map);
    `Ok ()
  | false, None, None, Some name, _ -> (
    match Platform_ir.find_preset name with
    | Error msg -> `Error (false, msg)
    | Ok p ->
      (match output with
      | None -> print_endline (Json.to_string ~indent:1 (Platform_ir.to_json p))
      | Some path ->
        Platform_ir.write_file path p;
        Printf.printf "wrote %s\n" path);
      `Ok ())
  | false, None, None, None, Some path -> (
    match Platform_ir.load_file path with
    | Error msg -> `Error (false, msg)
    | Ok p -> (
      match Platform_cost.resource_total p with
      | Error msg -> `Error (false, msg)
      | Ok units ->
        Printf.printf "%s: valid (%s; %.1f resource units)\n" path
          (Platform_ir.to_string p) units;
        `Ok ()))
  | false, Some name, None, None, None -> (
    match Presets.find_by_name ?flow name with
    | Error msg -> `Error (false, msg)
    | Ok config ->
      let text = Config_parser.to_string Host_config.pynq_z2 config in
      (match output with
      | None -> print_endline text
      | Some path ->
        let oc = open_out path in
        output_string oc text;
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path);
      `Ok ())
  | false, None, None, None, None ->
    `Error
      ( true,
        "one of --list, --preset, --check, --platform-preset or --check-platform is \
         required" )
  | false, _, _, _, _ ->
    `Error
      ( true,
        "--preset/--check and --platform-preset/--check-platform are mutually \
         exclusive" )

let list_presets = Arg.(value & flag & info [ "list" ] ~doc:"List available presets.")

let preset =
  Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"NAME"
         ~doc:"Emit a preset configuration (e.g. v3_16, conv2d).")

let flow =
  Arg.(value & opt (some string) None & info [ "flow" ] ~docv:"NAME"
         ~doc:"Select the preset's default opcode flow.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write to FILE instead of stdout.")

let check =
  Arg.(value & opt (some string) None & info [ "check" ] ~docv:"FILE"
         ~doc:"Parse and validate an existing configuration file.")

let platform_preset =
  Arg.(value & opt (some string) None & info [ "platform-preset" ] ~docv:"NAME"
         ~doc:"Emit a named platform description (axi4mlir-platform-v1 JSON): \
               $(b,pynq-2xv4), $(b,hetero-v3v4) or $(b,budget-4xv2).")

let check_platform =
  Arg.(value & opt (some string) None & info [ "check-platform" ] ~docv:"FILE"
         ~doc:"Parse and validate an existing platform description, printing \
               its one-line summary and resource total.")

let cmd =
  let doc = "emit, validate and inspect AXI4MLIR accelerator configurations" in
  Cmd.v
    (Cmd.info "axi4mlir-config" ~doc)
    Term.(
      ret
        (const run_tool $ list_presets $ preset $ flow $ output $ check
       $ platform_preset $ check_platform))

let () = exit (Cmd.eval cmd)
