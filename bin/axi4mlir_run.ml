(* axi4mlir-run: compile-and-execute tool.

   Compiles a linalg module against an accelerator configuration, runs
   it on the simulated SoC with deterministic random inputs, verifies
   the result against the pure oracle (for the known op kinds) and
   prints the performance counters.

     dune exec bin/axi4mlir_run.exe -- --config accel.json --matmul 64,64,64
     dune exec bin/axi4mlir_run.exe -- --config accel.json --matmul 64,64,64 --cpu
*)

open Cmdliner

(* Whole-model graph mode (--graph): no --config — the graph's engine
   kind picks its preset. Runs the per-kernel baseline, and with
   --residency also the residency-planned execution, verifying the two
   are bit-identical on every graph output. *)
let run_graph_mode ~model ~residency ~batch ~width ~graph_json =
  let g =
    match Graph_build.of_name ~width model with
    | Ok g -> g
    | Error msg -> failwith msg
  in
  let accel_nodes =
    Array.to_list g.Graph_ir.g_nodes
    |> List.filter (fun nd -> Graph_ir.is_accel nd.Graph_ir.nd_op)
    |> List.length
  in
  Printf.printf "model        : %s (%d nodes, %d accelerated, %d MACs)\n"
    g.Graph_ir.g_name (Array.length g.g_nodes) accel_nodes (Graph_ir.macs g);
  Printf.printf "batch        : %d\n" batch;
  let base = Graph_exec.run ~batch ~residency:false g in
  let words r = Graph_exec.result_dma_words r in
  Printf.printf "baseline     : %.0f cycles, %.0f DMA words\n"
    base.Graph_exec.rs_counters.Perf_counters.cycles (words base);
  let report_run =
    if not residency then base
    else begin
      let resd = Graph_exec.run ~batch ~residency:true g in
      Printf.printf
        "residency    : %.0f cycles, %.0f DMA words (%d skipped; %d chained \
         edges, %d stationary, %d fallback)\n"
        resd.Graph_exec.rs_counters.Perf_counters.cycles (words resd)
        resd.Graph_exec.rs_skipped_words
        (Graph_residency.chained_edges resd.Graph_exec.rs_plan)
        (Graph_residency.stationary_nodes resd.Graph_exec.rs_plan)
        (Graph_residency.fallback_nodes g resd.Graph_exec.rs_plan);
      let identical = Graph_exec.outputs_equal base resd in
      Printf.printf "bit-identity : %s\n" (if identical then "PASS" else "FAIL");
      if not identical then failwith "residency execution changed output bytes";
      if words resd >= words base then
        Printf.printf "note         : residency saved no DMA words on this plan\n"
      else
        Printf.printf "savings      : %.1f%% of baseline DMA words elided\n"
          (100.0 *. (1.0 -. (words resd /. words base)));
      resd
    end
  in
  (match graph_json with
  | Some path ->
    Graph_report.write report_run ~path;
    Printf.printf "graph report : %s (%s)\n" path Graph_report.schema
  | None -> ());
  `Ok ()

let run_tool config_path matmul conv flow tiles coalesce double_buffer cpu_only
    trace_out timing remarks metrics_out doctor critical_path graph residency batch
    width graph_json =
  Tool_common.with_observability ~remarks ~metrics:metrics_out @@ fun () ->
  Dialects.register_all ();
  match graph with
  | Some model ->
    if matmul <> None || conv <> None then
      failwith "--graph cannot be combined with --matmul/--conv";
    if batch < 1 then failwith "--batch must be >= 1";
    run_graph_mode ~model ~residency ~batch ~width ~graph_json
  | None ->
  if residency then failwith "--residency requires --graph";
  let config_path =
    match config_path with Some p -> p | None -> failwith "--config is required"
  in
  let host, accel = Config_parser.parse_file config_path in
  let bench = Axi4mlir.create ~host accel in
  (* Compile-side events are wall-clock; they get their own tracer so
     the measured run's reset (which clears the SoC tracer) cannot drop
     them. *)
  let compile_tracer = Trace.create () in
  let stats = ref [] in
  if trace_out <> None then begin
    Trace.enable compile_tracer ~clock:(fun () -> Sys.time () *. 1e6);
    ignore (Axi4mlir.enable_tracing bench)
  end;
  let stats = Some stats and tracer = Some compile_tracer in
  let parse_ints text = List.map int_of_string (String.split_on_char ',' text) in
  let options =
    {
      Axi4mlir.default_codegen with
      flow;
      tiles = Option.map parse_ints tiles;
      coalesce_transfers = coalesce;
      double_buffer;
    }
  in
  let counters, diff =
    match (matmul, conv) with
    | Some dims, None -> (
      match parse_ints dims with
      | [ m; n; k ] ->
        let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
        let gold =
          Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array b)
        in
        let counters =
          if cpu_only then begin
            let ir =
              Axi4mlir.compile_cpu ?stats ?tracer
                (Axi4mlir.build_matmul_module ~m ~n ~k ())
            in
            Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ir ~a ~b ~c)
          end
          else begin
            let ir =
              Axi4mlir.compile bench ~options ?stats ?tracer
                (Axi4mlir.build_matmul_module ~m ~n ~k ())
            in
            Axi4mlir.measure bench (fun () ->
                Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
          end
        in
        (counters, Gold.max_abs_diff gold (Memref_view.to_array c))
      | _ -> failwith "--matmul expects M,N,K")
    | None, Some dims -> (
      match parse_ints dims with
      | [ ic; ihw; oc; fhw ] ->
        let i, w, o =
          Axi4mlir.alloc_conv_operands bench ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw
        in
        let gold =
          Gold.conv2d ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw
            (Memref_view.to_array i) (Memref_view.to_array w)
        in
        let ir = Axi4mlir.build_conv_module ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw () in
        let compiled =
          if cpu_only then Axi4mlir.compile_cpu ?stats ?tracer ir
          else Axi4mlir.compile bench ~options ?stats ?tracer ir
        in
        let counters =
          Axi4mlir.measure bench (fun () ->
              Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled
                "conv_call"
                [ Interp.M i; Interp.M w; Interp.M o ])
        in
        (counters, Gold.max_abs_diff gold (Memref_view.to_array o))
      | _ -> failwith "--conv expects IC,IHW,OC,FHW")
    | _ -> failwith "exactly one of --matmul or --conv is required"
  in
  Printf.printf "task clock   : %.3f ms\n" (Axi4mlir.task_clock_ms bench counters);
  Printf.printf "counters     : %s\n" (Perf_counters.to_string counters);
  Printf.printf "max |error|  : %g (%s)\n" diff (if diff < 1e-9 then "PASS" else "FAIL");
  Tool_common.run_doctor bench.Axi4mlir.soc ~doctor ~critical_path;
  if timing then
    print_string (Pass.report_stats (match stats with Some r -> !r | None -> []));
  (match trace_out with
  | Some path ->
    let run_events = Trace.events (Axi4mlir.tracer bench) in
    let events = Trace.events compile_tracer @ run_events in
    let cpu_freq_mhz = host.Host_config.frequency_mhz in
    Chrome_trace.write_file ~cpu_freq_mhz
      ~track_names:(Soc.engine_track_names bench.Axi4mlir.soc)
      path events;
    Printf.printf "trace        : %d events -> %s (load in ui.perfetto.dev)\n"
      (List.length events) path;
    let cost = bench.Axi4mlir.soc.Soc.cost in
    print_newline ();
    print_string
      (Perf_report.render ~cpu_freq_mhz
         ~bus_words_per_cpu_cycle:cost.Cost_model.bus_words_per_cpu_cycle
         ~accel_freq_mhz:accel.Accel_config.frequency_mhz
         ~total:(Perf_counters.fields counters)
         run_events)
  | None -> ());
  if diff < 1e-9 then `Ok () else `Error (false, "result mismatch")

let config =
  Arg.(value & opt (some string) None & info [ "config" ] ~docv:"FILE"
         ~doc:"Accelerator/host configuration (JSON).")

let matmul =
  Arg.(value & opt (some string) None & info [ "matmul" ] ~docv:"M,N,K"
         ~doc:"Run a matmul of this shape.")

let conv =
  Arg.(value & opt (some string) None & info [ "conv" ] ~docv:"IC,IHW,OC,FHW"
         ~doc:"Run a conv2d of this shape (batch 1, square input/filter).")

let flow =
  Arg.(value & opt (some string) None & info [ "flow" ] ~docv:"NAME"
         ~doc:"Override the configured opcode flow.")

let tiles =
  Arg.(value & opt (some string) None & info [ "tiles" ] ~docv:"TM,TN,TK"
         ~doc:"Tile override for flexible engines.")

let coalesce = Arg.(value & flag & info [ "coalesce" ] ~doc:"Coalesce DMA transfers.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event JSON of the run (Perfetto-loadable) \
               and print a perf-report phase breakdown.")

let timing =
  Arg.(value & flag & info [ "timing" ]
         ~doc:"Print a per-pass execution timing report (like mlir-opt -mlir-timing).")
let double_buffer = Arg.(value & flag & info [ "double-buffer" ] ~doc:"Ping-pong sends.")
let cpu_only = Arg.(value & flag & info [ "cpu" ] ~doc:"CPU-only lowering instead.")

let graph =
  Arg.(value & opt (some string) None & info [ "graph" ] ~docv:"MODEL"
         ~doc:"Run a whole-model graph (resnet18 or tinybert) instead of a \
               single kernel. No --config needed: the graph's engine kind \
               selects its preset.")

let residency =
  Arg.(value & flag & info [ "residency" ]
         ~doc:"With --graph: also run the residency-planned execution \
               (weight-stationary reuse, accel-to-accel chaining) and verify \
               it is bit-identical to the per-kernel baseline.")

let batch =
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N"
         ~doc:"With --graph: images per forward pass (batch > 1 enables \
               weight-stationary reuse).")

let width =
  Arg.(value & opt int 8 & info [ "width" ] ~docv:"N"
         ~doc:"With --graph resnet18: stage-1 channel width (later stages \
               scale 2/4/8x).")

let graph_json =
  Arg.(value & opt (some string) None & info [ "graph-json" ] ~docv:"FILE"
         ~doc:"With --graph: write the axi4mlir-graph-v1 run artifact to \
               $(docv).")

let cmd =
  let doc = "compile a linalg op for an AXI accelerator and run it on the simulated SoC" in
  Cmd.v
    (Cmd.info "axi4mlir-run" ~doc)
    Term.(
      ret
        (const run_tool $ config $ matmul $ conv $ flow $ tiles $ coalesce $ double_buffer
       $ cpu_only $ trace_out $ timing $ Tool_common.remarks_flag
       $ Tool_common.metrics_out $ Tool_common.doctor_flag
       $ Tool_common.critical_path_out $ graph $ residency $ batch $ width
       $ graph_json))

let () = exit (Cmd.eval cmd)
