(* axi4mlir-fuzz: differential fuzzing front end.

   Generates a deterministic sequence of (workload, accelerator
   configuration) cases from a root seed and runs each through the
   differential oracle: native CPU reference vs. the interpreted
   linalg-to-loops lowering vs. the full accel pipeline on the
   simulated SoC, with element-wise output comparison, perf-counter
   sanity invariants and IR round-trip checks along the way.

     dune exec bin/axi4mlir_fuzz.exe -- --seed 42 --count 500
     dune exec bin/axi4mlir_fuzz.exe -- --replay corpus.jsonl
     dune exec bin/axi4mlir_fuzz.exe -- --seed 7 --count 200 --shrink \
       --corpus failures.jsonl

   Exit status is 0 when every case passes or is cleanly rejected,
   1 when any case fails, 2 on usage errors (bad corpus file, ...). *)

open Cmdliner

let progress_interval = 50

let run_tool seed count only replay_path do_shrink corpus verbose =
  let only =
    match only with
    | None | Some "all" -> Ok None
    | Some "matmul" -> Ok (Some Fuzz_gen.Matmul_only)
    | Some "conv" -> Ok (Some Fuzz_gen.Conv_only)
    | Some other -> Error (Printf.sprintf "--only expects matmul|conv|all, got %s" other)
  in
  match only with
  | Error msg -> `Error (false, msg)
  | Ok only -> (
    let on_case ~index ~case ~outcome =
      (match outcome with
      | Fuzz_oracle.Failed _ ->
        Printf.printf "case %d FAILED: %s\n  %s\n%!"
          (if index >= 0 then index else 0)
          (Fuzz_case.to_string case)
          (Fuzz_oracle.outcome_to_string outcome)
      | _ when verbose ->
        Printf.printf "case %d: %s -> %s\n%!"
          (if index >= 0 then index else 0)
          (Fuzz_case.to_string case)
          (Fuzz_oracle.outcome_to_string outcome)
      | _ -> ());
      if (not verbose) && index > 0 && index mod progress_interval = 0 then
        Printf.printf "... %d cases\n%!" index
    in
    let report =
      match replay_path with
      | Some path -> (
        match Fuzz_corpus.load_result path with
        | Error msg -> Error msg
        | Ok (cases, parse_errors) ->
          List.iter (fun e -> Printf.eprintf "warning: skipping %s\n%!" e) parse_errors;
          Printf.printf "replaying %d corpus case(s) from %s\n%!" (List.length cases)
            path;
          Ok (Fuzz_driver.replay ~shrink_failures:do_shrink ~on_case cases))
      | None ->
        Printf.printf "fuzzing: seed %d, %d case(s)\n%!" seed count;
        Ok (Fuzz_driver.campaign ?only ~shrink_failures:do_shrink ~on_case ~seed ~count ())
    in
    match report with
    | Error msg -> `Error (false, msg)
    | Ok report ->
      List.iter print_endline (Fuzz_driver.report_lines report);
      (match corpus with
      | Some path when report.Fuzz_driver.failed > 0 ->
        Fuzz_driver.record_failures ~corpus:path report;
        Printf.printf "recorded %d failing case(s) to %s\n" report.Fuzz_driver.failed
          path
      | _ -> ());
      if report.Fuzz_driver.failed = 0 then `Ok () else `Error (false, "failing cases"))

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"Root seed; the same seed reproduces the same case sequence.")

let count =
  Arg.(value & opt int 200 & info [ "count" ] ~docv:"N" ~doc:"Number of cases to run.")

let only =
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"KIND"
         ~doc:"Restrict workloads: matmul, conv or all (default).")

let replay =
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE"
         ~doc:"Replay a JSON-lines corpus instead of generating cases.")

let shrink =
  Arg.(value & flag & info [ "shrink" ]
         ~doc:"Delta-debug each failing case to a minimal reproducer.")

let corpus =
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"FILE"
         ~doc:"Append failing cases (shrunk if --shrink) to this JSON-lines file.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every case.")

let cmd =
  let doc = "differential fuzzing of the AXI4MLIR lowering pipeline" in
  Cmd.v
    (Cmd.info "axi4mlir-fuzz" ~doc)
    Term.(
      ret (const run_tool $ seed $ count $ only $ replay $ shrink $ corpus $ verbose))

let () = exit (Cmd.eval cmd)
