(* Observability flags shared by the axi4mlir_* tools.

   Every tool that compiles through the pass pipeline accepts the same
   two flags, parsed by the same terms, so `--remarks` and `--metrics`
   behave identically in axi4mlir-opt and axi4mlir-run: enable the
   collectors before any work, dump on the way out (including the
   failure path — a Missed remark explaining *why* compilation bailed
   is most valuable exactly then). *)

open Cmdliner

let remarks_flag =
  Arg.(
    value & flag
    & info [ "remarks" ]
        ~doc:
          "Collect optimization remarks from the transform passes (transfer \
           hoisting, copy specialisation, offload rejections) and print them \
           to stderr as LLVM-style YAML documents.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON dump of the metrics registry (and any collected \
           remarks) to $(docv) on exit.")

let doctor_flag =
  Arg.(
    value & flag
    & info [ "doctor" ]
        ~doc:
          "Run the perf doctor over the measured run: extract the critical \
           path through the makespan, attribute every cycle of it, name the \
           binding resource and print what-if speedup ceilings (zero-cost \
           DMA, infinite DMA channels, perfect overlap).")

let critical_path_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "critical-path" ] ~docv:"FILE"
        ~doc:
          "Write the machine-readable axi4mlir-critpath-v1 JSON artifact \
           (critical path, attribution, what-ifs) to $(docv).")

(* The doctor runs after the measured run and before any trace export,
   so its highlight slices land in the written trace. Fails the tool if
   the diagnosis comes back empty — @doctor-quick relies on that. *)
let run_doctor ?(loc = "run") soc ~doctor ~critical_path =
  if doctor || critical_path <> None then begin
    match Doctor.diagnose (Soc.critpath_input soc) with
    | Error msg -> failwith ("perf doctor: " ^ msg)
    | Ok dg ->
      Doctor.emit_remarks ~loc dg;
      Doctor.emit_metrics dg;
      Doctor.annotate_trace soc.Soc.tracer dg;
      (match critical_path with
      | Some path ->
        Doctor.write_json dg ~path;
        Printf.printf "critical path: %s (axi4mlir-critpath-v1)\n" path
      | None -> ());
      if doctor then begin
        let text = Doctor.render dg in
        if String.trim text = "" then failwith "perf doctor: empty diagnosis";
        print_newline ();
        print_string text
      end
  end

let setup ~remarks ~metrics =
  if remarks then Remarks.enable ();
  if metrics <> None then Metrics.enable (Metrics.default)

(* The metrics artifact carries the remarks too: one self-describing
   file per run is easier to archive next to a trace than two. *)
let metrics_json () =
  match Metrics.to_json () with
  | Json.Obj fields -> Json.Obj (fields @ [ ("remarks", Remarks.all_to_json ()) ])
  | other -> other

let finish ~remarks ~metrics =
  if remarks then prerr_string (Remarks.render_all ());
  match metrics with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Json.to_string ~indent:2 (metrics_json ()));
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "metrics      : %s\n" path

(* Run [body], dumping remarks/metrics on both the success and the
   failure path; a [Failure] becomes a cmdliner error (non-zero exit). *)
let with_observability ~remarks ~metrics body =
  setup ~remarks ~metrics;
  match body () with
  | result ->
    finish ~remarks ~metrics;
    result
  | exception Failure msg ->
    finish ~remarks ~metrics;
    `Error (false, msg)

(* Shared rendering for the `--list-*` introspection flags
   (axi4mlir-opt --list-passes, axi4mlir-tune --list-space): a title
   followed by an aligned name/description column pair. *)
let print_listing ~title items =
  print_endline title;
  let width = List.fold_left (fun w (name, _) -> max w (String.length name)) 0 items in
  List.iter (fun (name, desc) -> Printf.printf "  %-*s  %s\n" width name desc) items

(* The passes the axi4mlir-opt pipeline can run, in pipeline order:
   the accelerator flow instantiated with every optional pass enabled
   (so Coalesce/Lower/Copy-specialisation show up), then the CPU
   reference lowering. *)
let registered_passes () =
  let accel = Presets.matmul ~version:Accel_matmul.V4 ~size:16 () in
  let pipeline =
    Pipeline.make ~accel ~host:Host_config.pynq_z2 ~copy_specialization:true
      ~coalesce_transfers:true ~to_runtime_calls:true ()
  in
  let dedup items =
    List.rev
      (List.fold_left
         (fun acc (name, desc) -> if List.mem_assoc name acc then acc else (name, desc) :: acc)
         [] items)
  in
  dedup
    (List.map
       (fun (p : Pass.t) -> (p.Pass.pass_name, "accelerator pipeline"))
       (Pipeline.passes pipeline)
    @ List.map
        (fun (p : Pass.t) -> (p.Pass.pass_name, "mlir_CPU reference lowering"))
        Pipeline.cpu_passes)
