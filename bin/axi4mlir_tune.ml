(* axi4mlir-tune: cost-model-driven design-space exploration over
   accelerator configurations.

     dune exec bin/axi4mlir_tune.exe -- --workload matmul:64,64,64
     dune exec bin/axi4mlir_tune.exe -- --workload resnet18 --strategy greedy --seed 7
     dune exec bin/axi4mlir_tune.exe -- --workload matmul:128,128,128 --space fig13 \
       --cache tune-cache.json --report tune-report.json
     dune exec bin/axi4mlir_tune.exe -- --list-space
*)

open Cmdliner

let space_of_name = function
  | "default" -> Ok Tune_space.default
  | "fig13" -> Ok Tune_space.fig13
  | "quick" -> Ok Tune_space.quick
  | other ->
    Error
      (Printf.sprintf "unknown search space %S (valid spaces: default, fig13, quick)"
         other)

let platform_space_of_name = function
  | "default" -> Ok Platform_search.default_space
  | "quick" -> Ok Platform_search.quick_space
  | other ->
    Error
      (Printf.sprintf "unknown platform search space %S (valid spaces: default, quick)"
         other)

(* --platform-search: explore the SoC half of the co-design space —
   engine mix, DMA channels, AXI beat width — under --area-budget,
   scoring every candidate through the serving oracle on a fixed
   request stream. *)
let run_platform_search ~workload_spec ~space_name ~strategy_name ~seed ~budget
    ~area_budget ~platform_out ~requests ~rps =
  let fail_on_error = function Ok v -> v | Error msg -> failwith msg in
  let spec =
    match workload_spec with
    | Some spec -> spec
    | None ->
      failwith
        "--platform-search needs --workload (the request mix every candidate \
         platform serves)"
  in
  if requests < 1 then
    failwith (Printf.sprintf "--requests must be >= 1 (got %d)" requests);
  if not (rps > 0.0) then failwith (Printf.sprintf "--rps must be positive (got %g)" rps);
  let pspace = fail_on_error (platform_space_of_name space_name) in
  let strategy = fail_on_error (Tune_strategy.of_string ~seed ?budget strategy_name) in
  let models = fail_on_error (Serve_cost.models_of_specs [ spec ]) in
  let freq_mhz = Cost_model.default.Cost_model.cpu_freq_mhz in
  let reqs =
    fail_on_error
      (Serve_request.generate
         {
           Serve_request.st_seed = seed;
           st_count = requests;
           st_mean_gap = freq_mhz *. 1e6 /. rps;
           st_models = [ spec ];
         })
  in
  let measure =
    Platform_search.default_measure ~policy:Serve_policy.Fifo ~models ~requests:reqs ()
  in
  let outcome =
    fail_on_error (Platform_search.search ~strategy ?area_budget ~measure pspace)
  in
  print_string (Platform_search.render outcome);
  (match platform_out with
  | None -> ()
  | Some path -> (
    match Platform_search.pick_winner outcome with
    | None ->
      failwith
        "--platform-out: no candidate beat the baseline on throughput-per-resource \
         while holding p99 (nothing to write)"
    | Some w ->
      Platform_ir.write_file path w.Platform_search.pt_platform;
      Printf.eprintf "platform     : %s (axi4mlir-platform-v1, %s)\n" path
        (Platform_ir.to_string w.Platform_search.pt_platform)));
  `Ok ()

let run_tool workload_spec space_name strategy_name seed budget preset cache_path
    report_path trace_path list_space assert_warm remarks metrics_out doctor
    critical_path seed_from_bottleneck platform_search area_budget platform_out
    requests rps =
  Tool_common.with_observability ~remarks ~metrics:metrics_out @@ fun () ->
  let fail_on_error = function Ok v -> v | Error msg -> failwith msg in
  if platform_search then
    run_platform_search ~workload_spec ~space_name ~strategy_name ~seed ~budget
      ~area_budget ~platform_out ~requests ~rps
  else begin
  let space = fail_on_error (space_of_name space_name) in
  let space =
    match preset with
    | None -> space
    | Some name ->
      Tune_space.restrict_to_preset space (fail_on_error (Presets.find_by_name name))
  in
  let workloads =
    match workload_spec with
    | Some spec -> fail_on_error (Tune_workload.of_spec spec)
    | None ->
      if list_space then fail_on_error (Tune_workload.of_spec "matmul:64,64,64")
      else failwith "--workload is required (or --list-space)"
  in
  if list_space then begin
    List.iter
      (fun (named : Tune_workload.named) ->
        Tool_common.print_listing
          ~title:
            (Printf.sprintf "Search dimensions for %s (%s space):"
               (Tune_workload.to_string named.Tune_workload.wl_workload)
               space_name)
          (List.map
             (fun (dim, values) -> (dim, String.concat " | " values))
             (Tune_space.dimensions space named.Tune_workload.wl_workload)))
      workloads;
    `Ok ()
  end
  else begin
    let strategy = fail_on_error (Tune_strategy.of_string ~seed ?budget strategy_name) in
    let cache =
      match cache_path with
      | None -> None
      | Some path -> Some (fail_on_error (Tune_cache.load path))
    in
    let tracer =
      match trace_path with
      | None -> None
      | Some _ ->
        let t = Trace.create () in
        Trace.enable t;
        Some t
    in
    let report =
      Tuner.tune
        { Tuner.default_options with strategy; space; cache; tracer; seed_from_bottleneck }
        workloads
    in
    print_string (Tune_report.render report);
    (* The winner diagnosis pays one uncached re-evaluation per
       workload — the tuner only keeps cycles, not timelines. The
       critpath artifact goes to the first diagnosed winner. *)
    if doctor || critical_path <> None then begin
      let artifact = ref critical_path in
      List.iter
        (fun (r : Tune_report.result) ->
          match r.Tune_report.r_best with
          | None -> ()
          | Some b -> (
            let winner = b.Tune_report.bs_candidate in
            match Tune_eval.diagnose r.Tune_report.r_workload winner with
            | Error msg ->
              failwith
                (Printf.sprintf "perf doctor (%s): %s" r.Tune_report.r_label msg)
            | Ok dg ->
              Doctor.emit_remarks ~loc:r.Tune_report.r_label dg;
              Doctor.emit_metrics dg;
              (match !artifact with
              | Some path ->
                artifact := None;
                Doctor.write_json dg ~path;
                Printf.eprintf "critical path: %s (axi4mlir-critpath-v1)\n" path
              | None -> ());
              if doctor then begin
                Printf.printf "\nperf doctor — %s, winner %s\n" r.Tune_report.r_label
                  (Tune_space.candidate_to_string winner);
                let text = Doctor.render dg in
                if String.trim text = "" then failwith "perf doctor: empty diagnosis";
                print_string text
              end))
        report.Tune_report.rp_results
    end;
    (match (cache, cache_path) with
    | Some c, Some path ->
      Tune_cache.save c path;
      Printf.eprintf "tune cache   : %s (%d entries)\n" path (Tune_cache.size c)
    | _ -> ());
    (match report_path with
    | None -> ()
    | Some path ->
      Tune_report.write_file path report;
      Printf.eprintf "tune report  : %s\n" path);
    (match (tracer, trace_path) with
    | Some t, Some path ->
      Chrome_trace.write_file path (Trace.events t);
      Printf.eprintf "chrome trace : %s\n" path
    | _ -> ());
    let evaluations =
      List.fold_left
        (fun acc r -> acc + r.Tune_report.r_evaluated)
        0 report.Tune_report.rp_results
    in
    if assert_warm && evaluations > 0 then
      `Error
        ( false,
          Printf.sprintf
            "--assert-warm: %d pipeline evaluation(s) ran (cache was not warm)"
            evaluations )
    else `Ok ()
  end
  end

let workload =
  Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"SPEC"
         ~doc:"What to tune: $(b,matmul:M,N,K), $(b,conv:IC,IHW,OC,FHW[,STRIDE]), \
               $(b,resnet18) (all layers, row-sampled), $(b,resnet18/LAYER) or \
               $(b,tinybert).")

let space =
  Arg.(value & opt string "default" & info [ "space" ] ~docv:"NAME"
         ~doc:"Search space: $(b,default) (all Table I engines, tile search, \
               double buffering), $(b,fig13) (the paper's hand-picked sweep \
               space) or $(b,quick).")

let strategy =
  Arg.(value & opt string "grid" & info [ "strategy" ] ~docv:"NAME"
         ~doc:"Search strategy: $(b,grid) (exhaustive) or $(b,greedy) \
               (cost-model-seeded hill climb, a quarter of the budget).")

let seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
         ~doc:"Deterministic seed for the greedy strategy's tie-breaking.")

let budget =
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N"
         ~doc:"Evaluation budget for the greedy strategy (default: a quarter \
               of the pruned space).")

let preset =
  Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"NAME"
         ~doc:"Restrict the engine dimension to one preset (e.g. v4_16); \
               the tuner then only explores flows, tiles and transfer options.")

let cache =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE"
         ~doc:"Persistent result cache (axi4mlir-tune-v1 JSON). Loaded before \
               tuning, saved after; a warm cache re-runs zero simulations.")

let report =
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
         ~doc:"Write the tuning report as JSON to $(docv).")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace of tuning progress (one event per \
               candidate evaluation on the autotuner track) to $(docv).")

let list_space =
  Arg.(value & flag & info [ "list-space" ]
         ~doc:"Print the search dimensions the space explores for the \
               workload (default: a 64x64x64 matmul) and exit.")

let assert_warm =
  Arg.(value & flag & info [ "assert-warm" ]
         ~doc:"Exit non-zero if any pipeline evaluation ran (i.e. the cache \
               did not already hold every result). Used by the @tune-quick \
               determinism check.")

let seed_from_bottleneck =
  Arg.(value & flag & info [ "seed-from-bottleneck" ]
         ~doc:"Measure the heuristic baseline first and let the perf \
               doctor's binding-resource diagnosis of that run bias the \
               greedy strategy's predicted ranking (DMA-bound: try double \
               buffering earlier; host-bound: try the largest engines \
               earlier). No effect on warm-cache runs.")

let platform_search_flag =
  Arg.(value & flag & info [ "platform-search" ]
         ~doc:"Search the $(i,platform) space instead of host-code knobs: which \
               Table I engines the instance slots carry, how many DMA channels, \
               how wide the AXI beat — every candidate scored by a serving run \
               over a fixed request stream ($(b,--workload), $(b,--requests), \
               $(b,--rps), $(b,--seed)) and reported as a Pareto front of \
               throughput-per-resource vs p99. $(b,--space) selects \
               $(b,default) or $(b,quick); $(b,--strategy)/$(b,--budget) pick \
               the search strategy.")

let area_budget =
  Arg.(value & opt (some float) None & info [ "area-budget" ] ~docv:"UNITS"
         ~doc:"Resource budget for $(b,--platform-search) in abstract FPGA \
               units (see the resource model in DESIGN.md); candidates costing \
               more are pruned statically, before any serving run. Must be \
               positive.")

let platform_out =
  Arg.(value & opt (some string) None & info [ "platform-out" ] ~docv:"FILE"
         ~doc:"Write the winning platform description (the highest \
               throughput-per-resource Pareto point that ties-or-beats the \
               homogeneous baseline's p99) as axi4mlir-platform-v1 JSON. Fails \
               if nothing qualified.")

let requests =
  Arg.(value & opt int 24 & info [ "requests" ] ~docv:"N"
         ~doc:"Request-stream length for $(b,--platform-search) candidates.")

let rps =
  Arg.(value & opt float 1000.0 & info [ "rps" ] ~docv:"RATE"
         ~doc:"Offered load of the $(b,--platform-search) request stream \
               (requests per second of simulated time).")

let cmd =
  let doc = "design-space exploration over AXI4MLIR accelerator configurations" in
  Cmd.v
    (Cmd.info "axi4mlir-tune" ~doc)
    Term.(
      ret
        (const run_tool $ workload $ space $ strategy $ seed $ budget $ preset $ cache
       $ report $ trace $ list_space $ assert_warm $ Tool_common.remarks_flag
       $ Tool_common.metrics_out $ Tool_common.doctor_flag
       $ Tool_common.critical_path_out $ seed_from_bottleneck $ platform_search_flag
       $ area_budget $ platform_out $ requests $ rps))

let () = exit (Cmd.eval cmd)
