(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. IV) on the simulated SoC.

   Usage:
     bench/main.exe                 run every experiment
     bench/main.exe fig13 fig16     run selected experiments
     bench/main.exe --quick [...]   trimmed sweeps (harness smoke test)
     bench/main.exe --bechamel      Bechamel wall-clock micro-benchmarks
                                    of the framework itself *)

let experiments =
  [
    ("table1", "Table I: accelerator catalogue", Exp_table1.run);
    ("fig10", "Fig. 10: CPU vs accelerator crossover", Exp_fig10.run);
    ("fig11", "Fig. 11: flows before copy specialisation", Exp_fig11.run);
    ("fig12", "Fig. 12: perf counters, with/without copy specialisation", Exp_fig12.run);
    ("fig13", "Fig. 13: manual vs generated, matched flows", Exp_fig13.run);
    ("fig14", "Fig. 14: v4 tiling/dataflow heuristics", Exp_fig14.run);
    ("fig16", "Fig. 16: ResNet-18 convolution layers", Exp_fig16.run);
    ("fig17", "Fig. 17: TinyBERT end-to-end", Exp_fig17.run);
    ("fig_async", "Async: blocking vs double-buffered transfers", Exp_fig_async.run);
    ("ablation", "Ablation: codegen design choices", Exp_ablation.run);
    ("exp_tune", "Autotuner: design-space exploration gates", Exp_tune.run);
    ("exp_serve", "Serving: multi-accelerator scheduling & tail latency", Exp_serve.run);
    ("exp_graph", "Whole-model graph: residency reuse vs per-kernel baseline", Exp_graph.run);
    ("exp_platform", "Platform search: SoC co-design under an area budget", Exp_platform.run);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the framework itself                   *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let accel () = Presets.matmul ~version:Accel_matmul.V3 ~size:8 ~flow:"Cs" () in
  let compile_small () =
    let bench = Axi4mlir.create (accel ()) in
    ignore (Axi4mlir.compile_matmul bench ~m:16 ~n:16 ~k:16 ())
  in
  let run_generated () =
    let bench = Axi4mlir.create (accel ()) in
    let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:16 ~n:16 ~k:16 in
    let ir = Axi4mlir.compile_matmul bench ~m:16 ~n:16 ~k:16 () in
    Axi4mlir.run_matmul bench ir ~a ~b ~c
  in
  let run_manual () =
    let config = accel () in
    let bench = Axi4mlir.create config in
    let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:16 ~n:16 ~k:16 in
    Manual_matmul.run bench.Axi4mlir.soc config ~flow:"Cs" ~a ~b ~c ()
  in
  let run_cpu () =
    let bench = Axi4mlir.create (accel ()) in
    let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:16 ~n:16 ~k:16 in
    Cpu_reference.matmul bench.Axi4mlir.soc ~a ~b ~c
  in
  let run_conv () =
    let config = Presets.conv () in
    let bench = Axi4mlir.create config in
    let i, w, o =
      Axi4mlir.alloc_conv_operands bench ~n:1 ~ic:4 ~ih:6 ~iw:6 ~oc:2 ~fh:3 ~fw:3
    in
    Manual_conv.run bench.Axi4mlir.soc config ~input:i ~filter:w ~output:o ()
  in
  let heuristic_search () =
    ignore
      (Heuristics.best
         (Presets.matmul ~version:Accel_matmul.V4 ~size:16 ())
         ~m:32 ~n:256 ~k:512)
  in
  let parse_roundtrip () =
    let m = Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 () in
    ignore (Parser_ir.parse_op (Printer.to_generic m))
  in
  let config_roundtrip () =
    let config = accel () in
    ignore (Config_parser.parse_string (Config_parser.to_string Host_config.pynq_z2 config))
  in
  [
    Test.make ~name:"table1-config-roundtrip" (Staged.stage config_roundtrip);
    Test.make ~name:"fig10-cpu-reference" (Staged.stage run_cpu);
    Test.make ~name:"fig11-generated-run" (Staged.stage run_generated);
    Test.make ~name:"fig12-compile-pipeline" (Staged.stage compile_small);
    Test.make ~name:"fig13-manual-driver" (Staged.stage run_manual);
    Test.make ~name:"fig14-heuristic-search" (Staged.stage heuristic_search);
    Test.make ~name:"fig16-conv-layer" (Staged.stage run_conv);
    Test.make ~name:"fig17-ir-print-parse" (Staged.stage parse_roundtrip);
  ]

let run_bechamel () =
  let open Bechamel in
  let test = Test.make_grouped ~name:"axi4mlir" ~fmt:"%s/%s" (bechamel_tests ()) in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "\nBechamel micro-benchmarks (host wall clock, ns/run):";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.sprintf "%12.1f" est
        | Some _ | None -> "           ?"
      in
      rows := (name, estimate) :: !rows)
    results;
  List.iter (fun (name, est) -> Printf.printf "  %-40s %s ns\n" name est) (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --trace DIR / --json DIR consume their value; extract them before
     the generic flag/selection split. *)
  let rec extract_dir flag = function
    | [] -> (None, [])
    | a :: dir :: rest when a = flag ->
      let _, others = extract_dir flag rest in
      (Some dir, others)
    | a :: rest ->
      let dir, others = extract_dir flag rest in
      (dir, a :: others)
  in
  let trace, args = extract_dir "--trace" args in
  let json, args = extract_dir "--json" args in
  (match trace with
  | Some dir ->
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    Report.trace_dir := Some dir
  | None -> ());
  (match json with
  | Some dir ->
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    Report.json_dir := Some dir;
    Metrics.enable Metrics.default
  | None -> ());
  let bechamel = List.mem "--bechamel" args in
  Report.quick := List.mem "--quick" args;
  let selected =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  if bechamel then run_bechamel ()
  else begin
    let to_run =
      match selected with
      | [] -> experiments
      | names ->
        List.map
          (fun name ->
            match List.find_opt (fun (n, _, _) -> n = name) experiments with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %s; available: %s\n" name
                (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
              exit 2)
          names
    in
    print_endline "AXI4MLIR reproduction benchmarks (simulated PYNQ-Z2 SoC)";
    if !Report.quick then print_endline "(--quick mode: trimmed sweeps)";
    List.iter
      (fun (name, descr, f) ->
        Printf.printf "\n>>> %s\n%!" descr;
        Report.begin_experiment name;
        let t0 = Unix.gettimeofday () in
        f ();
        Report.end_experiment ();
        Printf.printf "<<< done in %.1fs (host wall clock)\n%!" (Unix.gettimeofday () -. t0))
      to_run
  end
