(* fig_async: blocking vs double-buffered host code on the v3_16
   accelerator (output-stationary Ns flow, square matmuls).

   The double-buffer pass software-pipelines the innermost tiled loop:
   while the accelerator computes tile t, the DMA engine streams tile
   t+1 into the other half of the input region. The transfer schedule
   changes but nothing else does, so the run must produce byte-identical
   output and move exactly the same DMA words — only the task clock
   (the makespan over host, DMA and accelerator agents) may improve.

   This experiment doubles as the async perf gate: it fails hard if the
   pipelined run is less than 15% faster, ever moves different traffic,
   or produces different bytes. *)

let min_speedup = 1.15

let run_pair ~dims =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Ns" () in
  let run options =
    let bench = Axi4mlir.create accel in
    let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:dims ~n:dims ~k:dims in
    let counters =
      Report.generated_matmul_counters bench ~options ~m:dims ~n:dims ~k:dims ~a ~b ~c ()
    in
    (counters, Memref_view.to_array c, bench)
  in
  let blocking, blocking_out, blocking_bench = run Axi4mlir.default_codegen in
  let piped, piped_out, _ =
    run { Axi4mlir.default_codegen with Axi4mlir.double_buffer = true }
  in
  if piped_out <> blocking_out then
    failwith
      (Printf.sprintf "fig_async: double buffering changed the output at dims=%d" dims);
  let words (c : Perf_counters.t) =
    c.Perf_counters.dma_words_sent +. c.Perf_counters.dma_words_received
  in
  if words piped <> words blocking then
    failwith
      (Printf.sprintf
         "fig_async: double buffering changed DMA traffic at dims=%d (%.0f vs %.0f words)"
         dims (words piped) (words blocking));
  let speedup =
    Report.speedup ~baseline:blocking.Perf_counters.cycles
      ~candidate:piped.Perf_counters.cycles
  in
  if speedup < min_speedup then
    failwith
      (Printf.sprintf
         "fig_async: double buffering gained only %.3fx at dims=%d (gate: %.2fx)" speedup
         dims min_speedup);
  (* Perf-doctor gate: the blocking schedule must diagnose as DMA-bound
     (that is the whole premise of double buffering it), and its
     perfect-overlap what-if is a ceiling the measured pipelined
     speedup may never exceed — if it does, either the estimator or the
     simulator is lying. *)
  let dg =
    match Doctor.diagnose (Soc.critpath_input blocking_bench.Axi4mlir.soc) with
    | Ok dg -> dg
    | Error msg ->
      failwith (Printf.sprintf "fig_async: perf doctor failed at dims=%d: %s" dims msg)
  in
  let binding = Doctor.binding_resource dg in
  if binding <> "dma" then
    failwith
      (Printf.sprintf
         "fig_async: doctor named %s (not dma) as the blocking run's binding resource \
          at dims=%d"
         binding dims);
  (match Doctor.speedup_ceiling dg "perfect-overlap" with
  | None ->
    failwith
      (Printf.sprintf "fig_async: doctor reported no perfect-overlap ceiling at dims=%d"
         dims)
  | Some ceiling ->
    if speedup > ceiling +. 1e-9 then
      failwith
        (Printf.sprintf
           "fig_async: measured %.3fx exceeds the doctor's perfect-overlap ceiling \
            %.3fx at dims=%d"
           speedup ceiling dims));
  (blocking, piped, speedup)

let run () =
  Report.header
    "fig_async: task clock, blocking vs double-buffered transfers (v3_16, flow Ns)";
  let sizes = if !Report.quick then [ 64 ] else [ 64; 96; 128 ] in
  let t =
    Tabulate.create
      [
        ("dims", Tabulate.Right);
        ("blocking (cycles)", Tabulate.Right);
        ("double-buffered (cycles)", Tabulate.Right);
        ("speedup", Tabulate.Right);
      ]
  in
  List.iter
    (fun dims ->
      let blocking, piped, speedup = run_pair ~dims in
      Tabulate.add_row t
        [
          string_of_int dims;
          Printf.sprintf "%.0f" blocking.Perf_counters.cycles;
          Printf.sprintf "%.0f" piped.Perf_counters.cycles;
          Printf.sprintf "%.3fx" speedup;
        ])
    sizes;
  Tabulate.print t;
  Report.note
    "Overlapping transfers with compute hides the smaller of the two phases; the win \
     grows with dims as tiles per row increase. Outputs and total DMA words are checked \
     identical to the blocking schedule."
