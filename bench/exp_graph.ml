(* Whole-model graphs: buffer residency vs the per-kernel baseline on
   a full ResNet-18 forward pass (every layer, dataflow edges and all —
   not the row-sampled per-layer proxies of fig16).

   Two regimes, both verified bit-identical to the per-kernel baseline
   on every graph output:

   - batch 1: accel->accel chaining. Each basic block's conv1->conv2
     edge keeps the intermediate activation on the engine (cv_accept /
     cv_patch_resident), so it never crosses the bus in either
     direction.
   - batch 2: weight-stationary reuse. Each conv runs filter-major
     across the batch, so every weight slice crosses the bus once per
     forward pass instead of once per image.

   Hard gates (a violation fails the harness, and through @bench-check
   the tier-1 run):
   - residency moves STRICTLY fewer DMA words than the baseline in
     both regimes — the savings are genuinely absent bus traffic, not
     post-hoc discounting;
   - all 8 block edges chain at batch 1 and all 20 convolutions go
     weight-stationary at batch 2;
   - outputs are bit-identical in both regimes. *)

let conv_config_hash =
  Benchdiff.config_hash (Accel_config.to_json (Presets.conv ~flow:"Os" ()))

let words = Graph_exec.result_dma_words

let record name (r : Graph_exec.result) ~width =
  Report.record_custom_point
    ~kind:(Printf.sprintf "graph_%s" name)
    ~dims:[ width; r.Graph_exec.rs_batch ]
    ~config:conv_config_hash
    [
      ("cycles", r.Graph_exec.rs_counters.Perf_counters.cycles);
      ("dma_words", words r);
      ("dma_words_skipped", float_of_int r.Graph_exec.rs_skipped_words);
      ("chained_edges", float_of_int (Graph_residency.chained_edges r.Graph_exec.rs_plan));
      ( "stationary_nodes",
        float_of_int (Graph_residency.stationary_nodes r.Graph_exec.rs_plan) );
      ( "fallback_nodes",
        float_of_int
          (Graph_residency.fallback_nodes r.Graph_exec.rs_graph r.Graph_exec.rs_plan) );
    ]

let run () =
  Report.header "Whole-model graph: residency reuse vs the per-kernel baseline";
  let quick = !Report.quick in
  let width = if quick then 2 else 8 in
  let g = Graph_build.resnet18 ~width () in
  let convs =
    Array.to_list g.Graph_ir.g_nodes
    |> List.filter (fun nd -> Graph_ir.is_accel nd.Graph_ir.nd_op)
    |> List.length
  in
  Report.note "%s: %d nodes (%d conv), %d MACs, full forward pass" g.Graph_ir.g_name
    (Array.length g.Graph_ir.g_nodes) convs (Graph_ir.macs g);
  let regime ~batch ~label ~expect =
    let base = Graph_exec.run ~batch ~residency:false g in
    let resd = Graph_exec.run ~batch ~residency:true g in
    record "baseline" base ~width;
    record "residency" resd ~width;
    if not (Graph_exec.outputs_equal base resd) then
      failwith
        (Printf.sprintf "graph gate: residency changed output bytes (batch %d)" batch);
    if not (words resd < words base) then
      failwith
        (Printf.sprintf
           "graph gate: residency did not strictly reduce DMA words at batch %d \
            (%.0f vs %.0f)"
           batch (words resd) (words base));
    expect resd.Graph_exec.rs_plan;
    Report.note
      "batch %d (%s): %.0f -> %.0f DMA words (%.1f%% elided, %d skipped), %.0f -> \
       %.0f cycles"
      batch label (words base) (words resd)
      (100.0 *. (1.0 -. (words resd /. words base)))
      resd.Graph_exec.rs_skipped_words base.Graph_exec.rs_counters.Perf_counters.cycles
      resd.Graph_exec.rs_counters.Perf_counters.cycles
  in
  regime ~batch:1 ~label:"accel->accel chaining" ~expect:(fun plan ->
      let chained = Graph_residency.chained_edges plan in
      if chained <> 8 then
        failwith
          (Printf.sprintf "graph gate: expected 8 chained block edges, planned %d"
             chained));
  regime ~batch:2 ~label:"weight-stationary" ~expect:(fun plan ->
      let stationary = Graph_residency.stationary_nodes plan in
      if stationary <> convs then
        failwith
          (Printf.sprintf
             "graph gate: expected all %d convs weight-stationary, planned %d" convs
             stationary))
