(* Serving: tail latency under saturating load on a 2-accelerator SoC.

   A mixed tinybert/resnet18 request stream (2:1, the transformer
   shapes dominating as they do in a serving fleet; the resnet side is
   one row-sampled 56_64_3_64_1 layer proxy, about twice a tinybert
   invocation, so the mix is heterogeneous without one giant job class
   dwarfing the schedule) is offered at roughly twice the two
   accelerators' aggregate service capacity, so the queue is never
   empty and the policies differ only in what they do with a standing
   backlog — exactly the regime where scheduling shows up in the tail.

   Expectations this experiment gates on:
   - same-shape batching or SJF strictly beats FIFO on p99 latency at
     saturating load (batching genuinely removes work — DMA bring-up
     amortised, stationary weights shared — so it wins throughput too);
   - conservation: every request completes (no admission control here);
   - accounting: per-accelerator busy cycles fit inside the makespan;
   - reconciliation: windowed telemetry sums equal the end-of-run
     totals exactly (arrivals = offered, completions = completed,
     kernels = dispatches);
   - alerting: with a latency SLO pinned between the two tails (the
     geometric mean of the batch and fifo p99), fifo must trip the
     multi-window burn-rate alert while batch stays within budget —
     the end-to-end telemetry->SLO->alert path, deterministically.

   Workload sizes are trimmed (seq, row sampling) so the oracle's
   memoised kernel measurements stay interactive; the scheduling
   behaviour only depends on relative service times. *)

let freq_mhz = Cost_model.default.Cost_model.cpu_freq_mhz

let run () =
  Report.header "Serving: request streams over 2 accelerators (fifo vs sjf vs batch)";
  let quick = !Report.quick in
  let seq = if quick then 32 else 64 in
  let rows = 2 in
  let count = if quick then 24 else 48 in
  let accels = 2 in
  let batch_max = 4 in
  let seed = 11 in
  let specs = [ "tinybert"; "tinybert"; "resnet18/56_64_3_64_1" ] in
  let models =
    match Serve_cost.models_of_specs ~rows ~seq specs with
    | Ok m -> m
    | Error msg -> failwith msg
  in
  let oracle = Serve_cost.create models in
  (* mean single-request service over the offered mix *)
  let mean_service =
    List.fold_left (fun acc spec -> acc +. Serve_cost.service oracle spec ~batch:1) 0.0
      specs
    /. float_of_int (List.length specs)
  in
  (* offered rate = 2x aggregate capacity => saturating backlog *)
  let mean_gap = mean_service /. (float_of_int accels *. 2.0) in
  let rps = freq_mhz *. 1e6 /. mean_gap in
  Report.note "mix: 2x tinybert (seq %d) + 1x resnet18 layer 56_64_3_64_1, %d requests"
    seq count;
  Report.note "mean service %.0f cycles; offered %.1f req/s (2x capacity of %d accels)"
    mean_service rps accels;
  let stream =
    {
      Serve_request.st_seed = seed;
      st_count = count;
      st_mean_gap = mean_gap;
      st_models = specs;
    }
  in
  let requests =
    match Serve_request.generate stream with Ok r -> r | Error msg -> failwith msg
  in
  let config_hash =
    Benchdiff.config_hash
      (Json.Obj
         [
           ("workloads", Json.List (List.map (fun s -> Json.String s) specs));
           ("seed", Json.Int seed);
           ("requests", Json.Int count);
           ("accels", Json.Int accels);
           ("batch_max", Json.Int batch_max);
           ("seq", Json.Int seq);
           ("rows", Json.Int rows);
         ])
  in
  (* one telemetry window per mean single-request service time: fine
     enough that the burn-rate long window (4) sees the tail build up,
     coarse enough that every window holds several events *)
  let window = mean_service in
  let observed =
    List.map
      (fun policy ->
        let params =
          {
            Serve_sim.sp_accels = accels;
            sp_policy = policy;
            sp_queue_cap = None;
            sp_batch_max = batch_max;
          }
        in
        let telemetry =
          match Serve_telemetry.create ~window ~accels with
          | Ok t -> t
          | Error msg -> failwith msg
        in
        let outcome =
          match
            Serve_sim.run ~telemetry
              ~service:(Serve_cost.service oracle)
              ~predict:(Serve_cost.predict oracle)
              params requests
          with
          | Ok o -> o
          | Error msg -> failwith msg
        in
        (* conservation + accounting invariants, fuzz-oracle style *)
        if
          List.length outcome.Serve_sim.oc_completed
          + List.length outcome.Serve_sim.oc_rejected
          <> count
        then failwith "serving gate: requests lost (completed + rejected <> offered)";
        List.iter
          (fun (a : Serve_sim.accel_stat) ->
            if a.Serve_sim.ac_busy > outcome.Serve_sim.oc_makespan +. 1e-6 then
              failwith "serving gate: accelerator busy beyond the makespan")
          outcome.Serve_sim.oc_accels;
        let s = Serve_report.summarize ~freq_mhz policy outcome in
        (* reconciliation: window sums must equal the end-of-run report
           totals exactly — telemetry that drifts from the report is
           worse than none *)
        List.iter
          (fun (name, expect) ->
            let got = List.assoc name (Serve_telemetry.totals telemetry) in
            if got <> float_of_int expect then
              failwith
                (Printf.sprintf
                   "serving gate: telemetry %s (%g) disagrees with the report (%d)"
                   name got expect))
          [
            (Serve_telemetry.s_arrivals, s.Serve_report.sm_requests);
            (Serve_telemetry.s_completions, s.sm_completed);
            (Serve_telemetry.s_rejections, s.sm_rejected);
            (Serve_telemetry.s_kernels, s.sm_dispatches);
          ];
        (policy, s, telemetry))
      Serve_policy.all
  in
  let summaries = List.map (fun (_, s, _) -> s) observed in
  let report =
    {
      Serve_report.rp_workloads = specs;
      rp_seed = seed;
      rp_rps = rps;
      rp_requests = count;
      rp_accels = accels;
      rp_queue_cap = None;
      rp_batch_max = batch_max;
      rp_freq_mhz = freq_mhz;
      rp_platform = None;
      rp_summaries = summaries;
    }
  in
  print_string (Serve_report.render report);
  let p99 policy =
    let s =
      List.find (fun s -> s.Serve_report.sm_policy = policy) summaries
    in
    s.Serve_report.sm_latency.Serve_report.d_p99
  in
  let fifo = p99 Serve_policy.Fifo in
  let sjf = p99 Serve_policy.Sjf in
  let batch = p99 Serve_policy.Batch in
  Report.note "p99: fifo %.0f cycles, sjf %.0f (%.2fx), batch %.0f (%.2fx)" fifo sjf
    (fifo /. sjf) batch (fifo /. batch);
  (* the tentpole gate: a smarter policy must show up in the tail *)
  if not (sjf < fifo || batch < fifo) then
    failwith
      (Printf.sprintf
         "serving gate: neither sjf (p99 %.0f) nor batch (p99 %.0f) beat fifo (p99 \
          %.0f) at saturating load"
         sjf batch fifo);
  (* alerting gate: the SLO limit sits at the geometric mean of the two
     tails, strictly between them (p99 over <=100 samples is the max,
     so every batch latency clears the limit while fifo's tail does
     not). fifo must trip the burn-rate alert; batch must not. *)
  let limit = sqrt (fifo *. batch) in
  let slo =
    match Slo.parse (Printf.sprintf "p99<=%.0f" limit) with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let avail =
    match Slo.parse "availability>=99%" with Ok s -> s | Error msg -> failwith msg
  in
  Report.note "slo: %s (geometric mean of the fifo/batch p99 tails)"
    (Slo.to_string slo);
  List.iter
    (fun (policy, s, telemetry) ->
      let name = Serve_policy.to_string policy in
      let evals = Serve_telemetry.evaluate telemetry [ slo; avail ] in
      List.iter
        (fun ev ->
          Report.note "%s %s" name (String.trim (Slo.render ev));
          Slo.emit_remarks ~loc:(Printf.sprintf "exp_serve/%s" name) ev;
          Slo.emit_metrics ~labels:[ ("policy", name) ] ev)
        evals;
      let latency_ev = List.hd evals in
      let avail_ev = List.nth evals 1 in
      if not (Slo.met avail_ev) then
        failwith
          (Printf.sprintf
             "serving gate: %s broke the availability SLO with no admission control"
             name);
      (match policy with
      | Serve_policy.Fifo ->
        if latency_ev.Slo.sv_fired < 1 then
          failwith
            (Printf.sprintf
               "serving gate: fifo did not fire the burn-rate alert at 2x overload \
                (p99 limit %.0f, budget spent %.0f%%)"
               limit
               (100.0 *. latency_ev.Slo.sv_budget_spent))
      | Serve_policy.Batch ->
        if latency_ev.Slo.sv_fired > 0 || not (Slo.met latency_ev) then
          failwith
            (Printf.sprintf
               "serving gate: batch blew the latency budget at 2x overload (p99 \
                limit %.0f, %d alert(s) fired)"
               limit latency_ev.Slo.sv_fired)
      | Serve_policy.Sjf -> ());
      Report.record_custom_point
        ~kind:(Printf.sprintf "serve_%s" name)
        ~dims:[ count; accels ] ~config:config_hash
        [
          ("latency_p50_cycles", s.Serve_report.sm_latency.Serve_report.d_p50);
          ("latency_p95_cycles", s.sm_latency.Serve_report.d_p95);
          ("latency_p99_cycles", s.sm_latency.Serve_report.d_p99);
          ("latency_mean_cycles", s.sm_latency.Serve_report.d_mean);
          ("queue_p99_cycles", s.sm_queue.Serve_report.d_p99);
          ("makespan_cycles", s.sm_makespan);
          ("throughput_rps", Option.value ~default:0.0 s.sm_throughput_rps);
          ("utilization", Option.value ~default:0.0 s.sm_utilization);
          ("completed", float_of_int s.sm_completed);
          ("dispatches", float_of_int s.sm_dispatches);
          ("slo_alerts_fired", float_of_int latency_ev.Slo.sv_fired);
          ("slo_budget_spent", latency_ev.Slo.sv_budget_spent);
        ])
    observed;
  (* the fifo dashboard, so the bench log shows the backlog building *)
  (match observed with
  | (policy, _, telemetry) :: _ ->
    print_string
      (Serve_report.render_dashboard ~policy
         ~slos:(Serve_telemetry.evaluate telemetry [ slo ])
         telemetry)
  | [] -> ())
