(* Autotuner experiment: design-space exploration against the paper's
   hand-picked configurations and the heuristic defaults.

   Three hard gates (any regression fails the bench run, and through
   the blessed BENCH_exp_tune.json artifact the @bench-check alias):

   - the grid tuner over the Fig. 13 space must return a matmul config
     at least as fast as the best hand-picked (type, size, flow) from
     exp_fig13's sweep at the same dims;
   - the greedy strategy must reach within 5% of the grid best using at
     most a quarter of the grid's pipeline evaluations;
   - on a ResNet-18 layer, the tuned conv config must be strictly
     faster than the heuristic default (the Ws-flow driver). *)

let fail fmt = Printf.ksprintf failwith fmt

(* Measure one candidate on a fresh SoC, recording a bench point. *)
let measure_candidate kind label workload candidate =
  match Tune_space.config_of_candidate candidate with
  | Error msg -> fail "exp_tune: %s: %s" label msg
  | Ok config -> (
    let bench = Axi4mlir.create config in
    let options = Tune_space.codegen_of_candidate candidate in
    match (workload : Tune_workload.t) with
    | Tune_workload.Matmul { m; n; k } ->
      let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
      let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
      Report.set_context kind [ m; n; k ];
      let counters =
        Report.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
      in
      counters.Perf_counters.cycles
    | Tune_workload.Conv { ic; ih; iw; oc; fhw; stride } ->
      let i, w, o =
        Axi4mlir.alloc_conv_operands ~stride bench ~n:1 ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw
      in
      let ir =
        Axi4mlir.build_conv_module ~stride ~n:1 ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw ()
      in
      let compiled = Axi4mlir.compile bench ~options ir in
      Report.set_context kind [ ic; ih; iw; oc; fhw; stride ];
      let counters =
        Report.measure bench (fun () ->
            Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled
              "conv_call"
              [ Interp.M i; Interp.M w; Interp.M o ])
      in
      counters.Perf_counters.cycles)

let best_of label (report : Tune_report.t) =
  match report.Tune_report.rp_results with
  | [ r ] -> (
    match r.Tune_report.r_best with
    | Some b -> (r, b)
    | None -> fail "exp_tune: %s: tuner returned no config" label)
  | _ -> fail "exp_tune: %s: expected exactly one workload result" label

let run () =
  Report.header "Autotuner: design-space exploration vs hand-picked and heuristic configs";
  let t =
    Tabulate.create
      [
        ("workload", Tabulate.Left);
        ("strategy", Tabulate.Left);
        ("evals", Tabulate.Right);
        ("best config", Tabulate.Left);
        ("cycles", Tabulate.Right);
        ("vs reference", Tabulate.Right);
      ]
  in

  (* -------------------- matmul: the Fig. 13 space ------------------ *)
  let dims = if !Report.quick then 64 else 128 in
  let workload = Tune_workload.Matmul { m = dims; n = dims; k = dims } in
  let named label = { Tune_workload.wl_label = label; wl_workload = workload } in
  let tune strategy label =
    Tuner.tune
      { Tuner.default_options with strategy; space = Tune_space.fig13 }
      [ named label ]
  in
  let grid_result, grid_best = best_of "grid" (tune Tune_strategy.Grid "fig13-grid") in
  (* the exp_fig13 sweep's hand-picked (type, size, flow) points at
     these dims, all inside the fig13 space *)
  let hand_picked =
    [ ("v1", 16, "Ns"); ("v2", 16, "As"); ("v3", 16, "Ns"); ("v3", 16, "Cs") ]
  in
  let hand_cycles =
    List.map
      (fun (engine, size, flow) ->
        let candidate =
          {
            Tune_space.cd_engine = engine;
            cd_size = size;
            cd_flow = flow;
            cd_tiles = None;
            cd_dma_bytes = None;
            cd_double_buffer = false;
          }
        in
        ( Printf.sprintf "%s_%d/%s" engine size flow,
          measure_candidate "hand_matmul"
            (Printf.sprintf "hand-picked %s_%d/%s" engine size flow)
            workload candidate ))
      hand_picked
  in
  let best_hand_name, best_hand =
    List.fold_left
      (fun (bn, bc) (n, c) -> if c < bc then (n, c) else (bn, bc))
      (List.hd hand_cycles) (List.tl hand_cycles)
  in
  let tuned_cycles =
    measure_candidate "tuned_matmul" "grid winner" workload
      grid_best.Tune_report.bs_candidate
  in
  Tabulate.add_row t
    [
      Printf.sprintf "matmul %d^3" dims;
      "grid";
      string_of_int grid_result.Tune_report.r_evaluated;
      Tune_space.candidate_to_string grid_best.Tune_report.bs_candidate;
      Printf.sprintf "%.0f" tuned_cycles;
      Tabulate.fmt_x (best_hand /. tuned_cycles);
    ];
  if tuned_cycles > best_hand then
    fail "exp_tune: grid tuner (%.0f cycles) lost to hand-picked %s (%.0f cycles)"
      tuned_cycles best_hand_name best_hand;

  (* -------------------- greedy vs grid ----------------------------- *)
  let greedy_result, greedy_best =
    best_of "greedy" (tune (Tune_strategy.Greedy { seed = 0; budget = None }) "fig13-greedy")
  in
  Tabulate.add_row t
    [
      Printf.sprintf "matmul %d^3" dims;
      "greedy";
      string_of_int greedy_result.Tune_report.r_evaluated;
      Tune_space.candidate_to_string greedy_best.Tune_report.bs_candidate;
      Printf.sprintf "%.0f" greedy_best.Tune_report.bs_cycles;
      Tabulate.fmt_x (grid_best.Tune_report.bs_cycles /. greedy_best.Tune_report.bs_cycles);
    ];
  (* both runs measure the mandatory heuristic baseline once; compare
     strategy-driven evaluations only *)
  let grid_evals = grid_result.Tune_report.r_evaluated - 1
  and greedy_evals = greedy_result.Tune_report.r_evaluated - 1 in
  if greedy_evals * 4 > grid_evals then
    fail "exp_tune: greedy used %d/%d evaluations (budget: 25%%)" greedy_evals grid_evals;
  if greedy_best.Tune_report.bs_cycles > 1.05 *. grid_best.Tune_report.bs_cycles then
    fail "exp_tune: greedy best %.0f is more than 5%% off the grid best %.0f"
      greedy_best.Tune_report.bs_cycles grid_best.Tune_report.bs_cycles;

  (* -------------------- ResNet-18 conv layer ----------------------- *)
  (* row-sampled layer proxy (the Fig. 16 sampling); quick mode takes
     the cheap first layer (ic=3) at one output row *)
  let rows = if !Report.quick then 1 else 2 in
  let layer_label = if !Report.quick then "resnet18/224_3_7_64_2" else "resnet18/56_64_3_64_1" in
  let layer =
    match
      List.find_opt
        (fun (n : Tune_workload.named) -> n.Tune_workload.wl_label = layer_label)
        (Tune_workload.resnet18_layers ~rows ())
    with
    | Some l -> l
    | None -> fail "exp_tune: unknown layer %s" layer_label
  in
  let conv_report =
    Tuner.tune
      { Tuner.default_options with strategy = Tune_strategy.Grid; space = Tune_space.default }
      [ layer ]
  in
  let conv_result, conv_best = best_of "conv" conv_report in
  let heuristic_cycles =
    match conv_result.Tune_report.r_baseline with
    | Some (_, cycles) -> cycles
    | None -> fail "exp_tune: no heuristic baseline for %s" layer_label
  in
  ignore
    (measure_candidate "tuned_conv" "conv winner" layer.Tune_workload.wl_workload
       conv_best.Tune_report.bs_candidate);
  Tabulate.add_row t
    [
      layer_label;
      "grid";
      string_of_int conv_result.Tune_report.r_evaluated;
      Tune_space.candidate_to_string conv_best.Tune_report.bs_candidate;
      Printf.sprintf "%.0f" conv_best.Tune_report.bs_cycles;
      Tabulate.fmt_x (heuristic_cycles /. conv_best.Tune_report.bs_cycles);
    ];
  if conv_best.Tune_report.bs_cycles >= heuristic_cycles then
    fail "exp_tune: tuned conv (%.0f cycles) did not beat the heuristic default (%.0f)"
      conv_best.Tune_report.bs_cycles heuristic_cycles;

  Tabulate.print t;
  Report.note "grid matmul winner %s; best hand-picked %s (%.0f cycles)"
    (Tune_space.candidate_to_string grid_best.Tune_report.bs_candidate)
    best_hand_name best_hand;
  Report.note "greedy reached %.1f%% of grid best with %d/%d evaluations"
    (100.0 *. grid_best.Tune_report.bs_cycles /. greedy_best.Tune_report.bs_cycles)
    greedy_evals grid_evals;
  Report.note "conv layer %s: tuned %s is %s over the Ws heuristic default" layer_label
    (Tune_space.candidate_to_string conv_best.Tune_report.bs_candidate)
    (Tabulate.fmt_x (heuristic_cycles /. conv_best.Tune_report.bs_cycles))
