(* Shared helpers for the experiment harness. *)

let quick = ref false
(* --quick trims sweeps for smoke-testing the harness *)

let trace_dir : string option ref = ref None
(* --trace DIR: write one Chrome trace per experiment into DIR *)

let json_dir : string option ref = ref None
(* --json DIR: write one BENCH_<exp>.json artifact per experiment *)

let current_experiment = ref "experiment"
let traced : (string, unit) Hashtbl.t = Hashtbl.create 8
let doctored : (string, unit) Hashtbl.t = Hashtbl.create 8

(* Per-experiment accumulator for the bench artifact. Helpers below
   stamp the measurement context (kind, dims) just before measuring;
   the context is consumed by the first point recorded after it so a
   stale stamp cannot mislabel an unrelated direct [measure] call. *)
let json_points : Benchdiff.point list ref = ref []
let point_seq = ref 0
let context = ref ("run", ([] : int list))
let set_context kind dims = context := (kind, dims)

let config_hash (bench : Axi4mlir.t) =
  Benchdiff.config_hash (Accel_config.to_json bench.Axi4mlir.accel)

let record_point bench counters =
  if !json_dir <> None then begin
    incr point_seq;
    let kind, dims = !context in
    context := ("run", []);
    json_points :=
      {
        Benchdiff.pt_id = Printf.sprintf "%s/%03d" !current_experiment !point_seq;
        pt_kind = kind;
        pt_dims = dims;
        pt_config = config_hash bench;
        pt_metrics = Benchdiff.metrics_of_fields (Perf_counters.fields counters);
      }
      :: !json_points
  end

(* Points whose metrics are not Perf_counters fields (the serving
   experiment's latency percentiles): caller supplies kind, dims, a
   config hash and the metric list directly. Unknown metric names are
   compared Exact-at-zero by the gate, which is what a deterministic
   simulation wants. *)
let record_custom_point ~kind ~dims ~config metrics =
  if !json_dir <> None then begin
    incr point_seq;
    json_points :=
      {
        Benchdiff.pt_id = Printf.sprintf "%s/%03d" !current_experiment !point_seq;
        pt_kind = kind;
        pt_dims = dims;
        pt_config = config;
        pt_metrics = metrics;
      }
      :: !json_points
  end

let begin_experiment name =
  current_experiment := name;
  point_seq := 0;
  json_points := [];
  context := ("run", []);
  Metrics.reset Metrics.default;
  Metrics.set_ambient Metrics.default [ ("experiment", name) ]

(* Write the experiment's artifacts: the bench points, and (when the
   registry is live) the metrics dump next to the trace. *)
let end_experiment () =
  match !json_dir with
  | None -> ()
  | Some dir ->
    let doc =
      {
        Benchdiff.doc_experiment = !current_experiment;
        doc_quick = !quick;
        doc_points = List.rev !json_points;
      }
    in
    let path = Filename.concat dir (Benchdiff.filename !current_experiment) in
    Benchdiff.write_file path doc;
    Printf.printf "  [bench json: %s (%d points)]\n" path
      (List.length doc.Benchdiff.doc_points);
    if Metrics.enabled Metrics.default then begin
      let mpath = Filename.concat dir (!current_experiment ^ ".metrics.json") in
      let oc = open_out mpath in
      output_string oc (Json.to_string ~indent:2 (Metrics.to_json ()));
      output_char oc '\n';
      close_out oc
    end

(* One critpath artifact per experiment: the perf doctor's diagnosis of
   the first measured run whose timeline recorded anything (a pure-CPU
   baseline has no event DAG to walk). An analysis failure is a broken
   attribution invariant, so it fails the harness rather than silently
   skipping the artifact. *)
let record_critpath (bench : Axi4mlir.t) =
  match !json_dir with
  | Some dir when not (Hashtbl.mem doctored !current_experiment) -> (
    let input = Soc.critpath_input bench.Axi4mlir.soc in
    if input.Critpath.in_intervals <> [] then
      match Doctor.diagnose input with
      | Error msg -> failwith (Printf.sprintf "%s: perf doctor: %s" !current_experiment msg)
      | Ok dg ->
        Hashtbl.add doctored !current_experiment ();
        let path = Filename.concat dir (!current_experiment ^ ".critpath.json") in
        Doctor.write_json dg ~path;
        Printf.printf "  [critpath: %s (%s-bound)]\n" path (Doctor.binding_resource dg))
  | _ -> ()

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

let ms (bench : Axi4mlir.t) counters = Axi4mlir.task_clock_ms bench counters

(* Measure a thunk on a fresh run state. The simulator is deterministic,
   so a single run replaces the paper's average of five. *)
let measure (bench : Axi4mlir.t) thunk =
  let counters =
    match !trace_dir with
    | Some dir when not (Hashtbl.mem traced !current_experiment) ->
      (* Trace the experiment's first measured run that records any
         events (pure-CPU baselines record none): a sweep repeats the
         same code paths, so one representative trace per experiment
         keeps the output browsable. *)
      let tracer = Axi4mlir.enable_tracing bench in
      let counters = Axi4mlir.measure bench thunk in
      let events = Trace.events tracer in
      Trace.disable tracer;
      if events <> [] then begin
        Hashtbl.add traced !current_experiment ();
        let path = Filename.concat dir (!current_experiment ^ ".trace.json") in
        Chrome_trace.write_file
          ~cpu_freq_mhz:bench.Axi4mlir.host.Host_config.frequency_mhz
          ~track_names:(Soc.engine_track_names bench.Axi4mlir.soc) path events;
        Printf.printf "  [trace: %s (%d events)]\n" path (List.length events)
      end;
      counters
    | _ -> Axi4mlir.measure bench thunk
  in
  record_point bench counters;
  record_critpath bench;
  counters

let speedup ~baseline ~candidate = baseline /. candidate

let reduction ~baseline ~candidate = 1.0 -. (candidate /. baseline)

let matmul_dims ~(a : Memref_view.t) ~(c : Memref_view.t) =
  match (a.Memref_view.shape, c.Memref_view.shape) with
  | [ m; k ], [ _; n ] -> [ m; n; k ]
  | _ -> []

(* CPU-only execution of a square matmul, sampled for large sizes. *)
let cpu_matmul_counters (bench : Axi4mlir.t) ~a ~b ~c =
  set_context "cpu_matmul" (matmul_dims ~a ~c);
  measure bench (fun () ->
      Cpu_reference.matmul_sampled bench.Axi4mlir.soc ~a ~b ~c ~sample_rows:8)

let generated_matmul_counters (bench : Axi4mlir.t) ?(options = Axi4mlir.default_codegen)
    ~m ~n ~k ~a ~b ~c () =
  let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
  set_context "generated_matmul" [ m; n; k ];
  measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)

let manual_matmul_counters (bench : Axi4mlir.t) accel ~flow ?tiles ~a ~b ~c () =
  set_context "manual_matmul" (matmul_dims ~a ~c);
  measure bench (fun () ->
      Manual_matmul.run bench.Axi4mlir.soc accel ~flow ?tiles ~a ~b ~c ())

let version_name = Accel_matmul.version_to_string
