(* Shared helpers for the experiment harness. *)

let quick = ref false
(* --quick trims sweeps for smoke-testing the harness *)

let trace_dir : string option ref = ref None
(* --trace DIR: write one Chrome trace per experiment into DIR *)

let current_experiment = ref "experiment"
let traced : (string, unit) Hashtbl.t = Hashtbl.create 8

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

let ms (bench : Axi4mlir.t) counters = Axi4mlir.task_clock_ms bench counters

(* Measure a thunk on a fresh run state. The simulator is deterministic,
   so a single run replaces the paper's average of five. *)
let measure (bench : Axi4mlir.t) thunk =
  match !trace_dir with
  | Some dir when not (Hashtbl.mem traced !current_experiment) ->
    (* Trace the experiment's first measured run that records any
       events (pure-CPU baselines record none): a sweep repeats the
       same code paths, so one representative trace per experiment
       keeps the output browsable. *)
    let tracer = Axi4mlir.enable_tracing bench in
    let counters = Axi4mlir.measure bench thunk in
    let events = Trace.events tracer in
    Trace.disable tracer;
    if events <> [] then begin
      Hashtbl.add traced !current_experiment ();
      let path = Filename.concat dir (!current_experiment ^ ".trace.json") in
      Chrome_trace.write_file
        ~cpu_freq_mhz:bench.Axi4mlir.host.Host_config.frequency_mhz path events;
      Printf.printf "  [trace: %s (%d events)]\n" path (List.length events)
    end;
    counters
  | _ -> Axi4mlir.measure bench thunk

let speedup ~baseline ~candidate = baseline /. candidate

let reduction ~baseline ~candidate = 1.0 -. (candidate /. baseline)

(* CPU-only execution of a square matmul, sampled for large sizes. *)
let cpu_matmul_counters (bench : Axi4mlir.t) ~a ~b ~c =
  measure bench (fun () ->
      Cpu_reference.matmul_sampled bench.Axi4mlir.soc ~a ~b ~c ~sample_rows:8)

let generated_matmul_counters (bench : Axi4mlir.t) ?(options = Axi4mlir.default_codegen)
    ~m ~n ~k ~a ~b ~c () =
  let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
  measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)

let manual_matmul_counters (bench : Axi4mlir.t) accel ~flow ?tiles ~a ~b ~c () =
  measure bench (fun () ->
      Manual_matmul.run bench.Axi4mlir.soc accel ~flow ?tiles ~a ~b ~c ())

let version_name = Accel_matmul.version_to_string
