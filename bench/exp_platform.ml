(* Platform search: co-design the SoC, not just the software.

   The tuner's other experiments hold the platform fixed and search
   host-code knobs; this one holds the per-kernel host code fixed (the
   Sec. IV-C Best heuristic, via the serving oracle) and searches the
   SoC itself — which Table I engines the instance slots carry, how
   many DMA channels the fabric ships, how wide the AXI beat is —
   under an area budget, scoring every candidate at the serving level
   (throughput + p99 over a fixed matmul request stream).

   Expectations this experiment gates on:
   - budget: every measured point on the Pareto front (and the picked
     winner) fits inside the area budget; the budget actually prunes
     (the homogeneous 2x v4_16 default itself is over it);
   - co-design wins: the searched platform strictly beats the
     homogeneous default on throughput per resource unit while
     tying-or-beating its p99 — the paper's "right-size the SoC"
     argument, measured end to end;
   - identity: serving a homogeneous platform description is
     bit-identical to the equivalent --accels K run — the platform
     transfer model is exactly the identity at one channel per
     instance and the 4-byte baseline beat, so platform files are a
     strict superset of the old interface, not a parallel code path.

   The quick space (2 engines x 2 slots x 2 channels x 2 beats) keeps
   CI interactive; the full run searches the 171-candidate default
   space. Simulation cost scales with distinct engines (the oracle
   registry is shared across candidates), not candidates. *)

let freq_mhz = Cost_model.default.Cost_model.cpu_freq_mhz

let run () =
  Report.header "Platform search: SoC co-design under an area budget";
  let quick = !Report.quick in
  let space =
    if quick then Platform_search.quick_space else Platform_search.default_space
  in
  let count = if quick then 12 else 24 in
  let seed = 1 in
  let rps = 1000.0 in
  let area_budget = 700.0 in
  let policy = Serve_policy.Fifo in
  let spec = "matmul:16,16,16" in
  let models =
    match Serve_cost.models_of_specs [ spec ] with
    | Ok m -> m
    | Error msg -> failwith msg
  in
  let stream =
    {
      Serve_request.st_seed = seed;
      st_count = count;
      st_mean_gap = freq_mhz *. 1e6 /. rps;
      st_models = [ spec ];
    }
  in
  let requests =
    match Serve_request.generate stream with Ok r -> r | Error msg -> failwith msg
  in
  Report.note "stream: %d requests of %s at %.0f req/s (seed %d), policy %s" count
    spec rps seed (Serve_policy.to_string policy);
  Report.note "budget: %.0f resource units (homogeneous 2x v4_16 default: %.1f)"
    area_budget
    (Platform_cost.resource_total_exn (Platform_ir.homogeneous ~accels:2 ()));
  let config_hash =
    Benchdiff.config_hash
      (Json.Obj
         [
           ("workload", Json.String spec);
           ("seed", Json.Int seed);
           ("requests", Json.Int count);
           ("rps", Json.Float rps);
           ("area_budget", Json.Float area_budget);
           ("space", Json.String (if quick then "quick" else "default"));
         ])
  in
  let measure = Platform_search.default_measure ~policy ~models ~requests () in
  let outcome =
    match Platform_search.search ~area_budget ~measure space with
    | Ok o -> o
    | Error msg -> failwith msg
  in
  print_string (Platform_search.render outcome);
  (* budget gate: the static prune must be live (the default platform
     is itself over this budget), and nothing measured escapes it *)
  if outcome.Platform_search.sr_over_budget < 1 then
    failwith "platform gate: the area budget pruned nothing (budget not binding)";
  List.iter
    (fun pt ->
      if pt.Platform_search.pt_resource > area_budget then
        failwith
          (Printf.sprintf "platform gate: front point %s is over budget (%.1f > %.1f)"
             pt.Platform_search.pt_platform.Platform_ir.pf_name
             pt.Platform_search.pt_resource area_budget))
    outcome.Platform_search.sr_front;
  let baseline =
    match outcome.Platform_search.sr_baseline with
    | Some b -> b
    | None -> failwith "platform gate: the homogeneous baseline did not measure"
  in
  let winner =
    match Platform_search.pick_winner outcome with
    | Some w -> w
    | None ->
      failwith
        "platform gate: no searched platform beats the homogeneous default on \
         throughput-per-resource while holding p99"
  in
  Report.note "winner  : %s — %.1f units, %.1f req/s, %.4f req/s/unit, p99 %.0f"
    (Platform_ir.to_string winner.Platform_search.pt_platform)
    winner.Platform_search.pt_resource winner.Platform_search.pt_throughput_rps
    winner.Platform_search.pt_per_resource winner.Platform_search.pt_p99_cycles;
  Report.note "baseline: %s — %.1f units, %.1f req/s, %.4f req/s/unit, p99 %.0f"
    (Platform_ir.to_string baseline.Platform_search.pt_platform)
    baseline.Platform_search.pt_resource baseline.Platform_search.pt_throughput_rps
    baseline.Platform_search.pt_per_resource baseline.Platform_search.pt_p99_cycles;
  (* co-design gate: strictly better per resource, no worse in the tail *)
  if winner.Platform_search.pt_resource > area_budget then
    failwith "platform gate: the winner is over the area budget";
  if
    not
      (winner.Platform_search.pt_per_resource
      > baseline.Platform_search.pt_per_resource)
  then
    failwith
      (Printf.sprintf
         "platform gate: winner per-resource %.4f does not strictly beat the \
          homogeneous default's %.4f"
         winner.Platform_search.pt_per_resource
         baseline.Platform_search.pt_per_resource);
  if winner.Platform_search.pt_p99_cycles > baseline.Platform_search.pt_p99_cycles
  then
    failwith
      (Printf.sprintf
         "platform gate: winner p99 %.0f is worse than the homogeneous default's %.0f"
         winner.Platform_search.pt_p99_cycles
         baseline.Platform_search.pt_p99_cycles);
  (* identity gate: a homogeneous platform file and --accels K are the
     same simulation, bit for bit *)
  let homogeneous = Platform_ir.homogeneous ~accels:2 () in
  let fleet = Platform_serve.create ~platform:homogeneous models in
  let via_platform =
    match Platform_serve.run ~policy fleet requests with
    | Ok o -> o
    | Error msg -> failwith msg
  in
  let oracle = Serve_cost.create models in
  let params =
    {
      Serve_sim.sp_accels = 2;
      sp_policy = policy;
      sp_queue_cap = None;
      sp_batch_max = 1;
    }
  in
  let via_accels =
    match
      Serve_sim.run
        ~service:(Serve_cost.service oracle)
        ~predict:(Serve_cost.predict oracle)
        params requests
    with
    | Ok o -> o
    | Error msg -> failwith msg
  in
  if via_platform <> via_accels then
    failwith
      "platform gate: a homogeneous platform run is not bit-identical to the \
       equivalent --accels 2 run";
  Report.note "identity: homogeneous platform run == --accels 2 run (bit-identical)";
  let record kind pt =
    Report.record_custom_point ~kind
      ~dims:[ count; List.length pt.Platform_search.pt_platform.Platform_ir.pf_instances ]
      ~config:config_hash
      [
        ("resource_units", pt.Platform_search.pt_resource);
        ("throughput_rps", pt.Platform_search.pt_throughput_rps);
        ("throughput_per_unit", pt.Platform_search.pt_per_resource);
        ("latency_p99_cycles", pt.Platform_search.pt_p99_cycles);
      ]
  in
  record "platform_winner" winner;
  record "platform_baseline" baseline;
  Report.record_custom_point ~kind:"platform_search" ~dims:[ count ]
    ~config:config_hash
    [
      ("candidates", float_of_int outcome.Platform_search.sr_space);
      ("over_budget", float_of_int outcome.Platform_search.sr_over_budget);
      ("measured", float_of_int outcome.Platform_search.sr_evaluated);
      ("front_size", float_of_int (List.length outcome.Platform_search.sr_front));
    ]
