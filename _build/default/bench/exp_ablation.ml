(* Ablation study over the code-generation choices DESIGN.md calls out:
   the Sec. IV-B copy specialisation, the step-4 cache-hierarchy
   tiling, and the Sec. V extensions (transfer coalescing and
   double buffering), alone and composed. Not a paper figure — it
   quantifies each design choice on a fixed configuration. *)

let variants =
  [
    ("baseline (paper defaults)", fun o -> o);
    ( "- copy specialisation",
      fun o -> { o with Axi4mlir.copy_specialization = false } );
    ("- cpu tiling", fun o -> { o with Axi4mlir.cpu_tiling = false });
    ("+ coalesce transfers", fun o -> { o with Axi4mlir.coalesce_transfers = true });
    ("+ double buffering", fun o -> { o with Axi4mlir.double_buffer = true });
    ( "+ coalesce + double buffering",
      fun o ->
        { o with Axi4mlir.coalesce_transfers = true; double_buffer = true } );
  ]

let problems () =
  if !Report.quick then [ (Accel_matmul.V3, 8, 64, "Ns") ]
  else
    [
      (Accel_matmul.V3, 16, 128, "Ns");
      (Accel_matmul.V3, 16, 128, "Cs");
      (Accel_matmul.V3, 16, 512, "Ns");
    ]

let run () =
  Report.header "Ablation: codegen options (generated driver, task clock and DMA transactions)";
  List.iter
    (fun (version, size, dims, flow) ->
      Report.note "--- %s_%d, dims=%d, flow %s ---" (Report.version_name version) size dims
        flow;
      let accel = Presets.matmul ~version ~size ~flow () in
      let bench = Axi4mlir.create accel in
      let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:dims ~n:dims ~k:dims in
      let t =
        Tabulate.create
          [
            ("variant", Tabulate.Left);
            ("task clock ms", Tabulate.Right);
            ("DMA txns", Tabulate.Right);
            ("vs baseline", Tabulate.Right);
          ]
      in
      let base_cycles = ref 0.0 in
      List.iter
        (fun (name, tweak) ->
          let options = tweak { Axi4mlir.default_codegen with flow = Some flow } in
          let counters =
            Report.generated_matmul_counters bench ~options ~m:dims ~n:dims ~k:dims ~a ~b
              ~c ()
          in
          if name = "baseline (paper defaults)" then
            base_cycles := counters.Perf_counters.cycles;
          Tabulate.add_row t
            [
              name;
              Tabulate.fmt_ms (Report.ms bench counters);
              Printf.sprintf "%.0f" counters.Perf_counters.dma_transactions;
              Tabulate.fmt_x (!base_cycles /. counters.Perf_counters.cycles);
            ])
        variants;
      Tabulate.print t)
    (problems ())
