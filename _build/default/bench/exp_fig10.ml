(* Fig. 10: runtime characterisation, CPU vs accelerator execution, for
   square MatMul problems under the Nothing-Stationary flow.

   The paper's observation to reproduce: offload only becomes relevant
   (faster than the CPU) for dims >= 64 and accel_size >= 8; size-4
   engines never win. *)

let dims_sweep () = if !Report.quick then [ 16; 32; 64 ] else [ 16; 32; 64; 128; 256 ]

let run () =
  Report.header
    "Fig. 10: CPU vs accelerator task clock (ms), square MatMul, Ns flow (v1 engines)";
  let t =
    Tabulate.create
      ([ ("dims", Tabulate.Right); ("mlir_CPU", Tabulate.Right) ]
      @ List.map (fun s -> (Printf.sprintf "v1_%d" s, Tabulate.Right)) Presets.table1_sizes)
  in
  let crossovers = ref [] in
  List.iter
    (fun dims ->
      (* CPU baseline *)
      let accel0 = Presets.matmul ~version:Accel_matmul.V1 ~size:4 () in
      let bench = Axi4mlir.create accel0 in
      let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:dims ~n:dims ~k:dims in
      let cpu = Report.ms bench (Report.cpu_matmul_counters bench ~a ~b ~c) in
      let accel_cells =
        List.map
          (fun size ->
            if dims < size then "-"
            else begin
              let accel = Presets.matmul ~version:Accel_matmul.V1 ~size ~flow:"Ns" () in
              let bench = Axi4mlir.create accel in
              let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:dims ~n:dims ~k:dims in
              let counters =
                Report.generated_matmul_counters bench ~m:dims ~n:dims ~k:dims ~a ~b ~c ()
              in
              let t_accel = Report.ms bench counters in
              if t_accel < cpu then crossovers := (size, dims) :: !crossovers;
              Tabulate.fmt_ms t_accel
            end)
          Presets.table1_sizes
      in
      Tabulate.add_row t ((string_of_int dims :: [ Tabulate.fmt_ms cpu ]) @ accel_cells))
    (dims_sweep ());
  Tabulate.print t;
  (* report the first winning dims per size *)
  List.iter
    (fun size ->
      let wins = List.filter (fun (s, _) -> s = size) !crossovers in
      match List.sort compare (List.map snd wins) with
      | [] -> Report.note "accel_size %d: never faster than the CPU" size
      | d :: _ -> Report.note "accel_size %d: faster than the CPU from dims >= %d" size d)
    Presets.table1_sizes;
  Report.note
    "Paper shape: offload relevant only for dims >= 64 and accel_size >= 8; size 4 never wins."
