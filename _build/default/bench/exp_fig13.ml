(* Fig. 13: manual vs AXI4MLIR-generated driver code on matched
   (accelerator type, size, flow) configurations, with the copy
   specialisation enabled.

   Paper shape: generated is faster (or equal) everywhere — 1.18x
   average / 1.65x max in the paper, from cache-hierarchy-aware tiling;
   cache references drop 10% average / 56% max. Our simulated gains
   concentrate where the working set exceeds the L2 (dims >= 384). *)

let configurations () =
  let base =
    [
      (Accel_matmul.V1, 8, 64, "Ns");
      (Accel_matmul.V1, 16, 128, "Ns");
      (Accel_matmul.V2, 8, 64, "As");
      (Accel_matmul.V2, 8, 64, "Bs");
      (Accel_matmul.V2, 16, 128, "Ns");
      (Accel_matmul.V2, 16, 128, "As");
      (Accel_matmul.V3, 8, 64, "Cs");
      (Accel_matmul.V3, 16, 128, "Ns");
      (Accel_matmul.V3, 16, 128, "As");
      (Accel_matmul.V3, 16, 128, "Bs");
      (Accel_matmul.V3, 16, 128, "Cs");
      (Accel_matmul.V3, 16, 256, "Ns");
      (Accel_matmul.V3, 16, 256, "Cs");
    ]
  in
  let large =
    [
      (Accel_matmul.V3, 16, 512, "Ns");
      (Accel_matmul.V3, 16, 512, "As");
      (Accel_matmul.V3, 16, 512, "Bs");
      (Accel_matmul.V3, 16, 512, "Cs");
    ]
  in
  if !Report.quick then [ (Accel_matmul.V3, 8, 64, "Ns"); (Accel_matmul.V3, 8, 64, "Cs") ]
  else base @ large

let run () =
  Report.header "Fig. 13: manual vs generated on matched (type, size, flow)";
  let t =
    Tabulate.create
      [
        ("config", Tabulate.Left);
        ("manual ms", Tabulate.Right);
        ("generated ms", Tabulate.Right);
        ("speedup", Tabulate.Right);
        ("cache-ref reduction", Tabulate.Right);
      ]
  in
  let speedups = ref [] and reductions = ref [] in
  List.iter
    (fun (version, size, dims, flow) ->
      let accel = Presets.matmul ~version ~size ~flow () in
      let bench = Axi4mlir.create accel in
      let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:dims ~n:dims ~k:dims in
      let manual = Report.manual_matmul_counters bench accel ~flow ~a ~b ~c () in
      let generated =
        Report.generated_matmul_counters bench
          ~options:{ Axi4mlir.default_codegen with flow = Some flow }
          ~m:dims ~n:dims ~k:dims ~a ~b ~c ()
      in
      let sp =
        Report.speedup ~baseline:manual.Perf_counters.cycles
          ~candidate:generated.Perf_counters.cycles
      in
      let red =
        Report.reduction
          ~baseline:(Perf_counters.cache_references manual)
          ~candidate:(Perf_counters.cache_references generated)
      in
      speedups := sp :: !speedups;
      reductions := red :: !reductions;
      Tabulate.add_row t
        [
          Printf.sprintf "%s_%d d=%d %s" (Report.version_name version) size dims flow;
          Tabulate.fmt_ms (Report.ms bench manual);
          Tabulate.fmt_ms (Report.ms bench generated);
          Tabulate.fmt_x sp;
          Tabulate.fmt_pct red;
        ])
    (configurations ());
  Tabulate.print t;
  Report.note "speedup: geomean %s, max %s (paper: avg 1.18x, max 1.65x)"
    (Tabulate.fmt_x (Util.geomean !speedups))
    (Tabulate.fmt_x (Util.fmax_list !speedups));
  Report.note "cache-reference reduction: mean %s, max %s (paper: avg 10%%, max 56%%)"
    (Tabulate.fmt_pct (Util.mean !reductions))
    (Tabulate.fmt_pct (Util.fmax_list !reductions))
