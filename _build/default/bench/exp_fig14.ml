(* Fig. 14: MatMul problem permutations on the flexible v4 accelerator.
   Heuristics As/Bs/Cs-squareTile pick the best square tile for a fixed
   stationary flow; "Best" searches all flows and (non-square) tile
   shapes. Every chosen configuration is then actually compiled and run.

   Paper shape: the best square flow changes with the problem
   permutation, and Best beats the square strategies by exploiting
   flexible tile sizes. *)

let problems () =
  let perms = Util.permutations [ 32; 256; 512 ] in
  let triples =
    List.map (function [ a; b; c ] -> (a, b, c) | _ -> assert false) perms
  in
  if !Report.quick then [ List.hd triples ] else triples

let measure_choice bench ~m ~n ~k (choice : Heuristics.choice) =
  let options =
    {
      Axi4mlir.default_codegen with
      flow = Some choice.Heuristics.flow;
      tiles = Some [ choice.Heuristics.tm; choice.Heuristics.tn; choice.Heuristics.tk ];
    }
  in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
  Report.ms bench (Report.generated_matmul_counters bench ~options ~m ~n ~k ~a ~b ~c ())

let run () =
  Report.header "Fig. 14: v4_16 tiling/dataflow heuristics on permutations of (32, 256, 512)";
  let accel = Presets.matmul ~version:Accel_matmul.V4 ~size:16 () in
  let t =
    Tabulate.create
      [
        ("MxNxK", Tabulate.Left);
        ("As-squareTile", Tabulate.Right);
        ("Bs-squareTile", Tabulate.Right);
        ("Cs-squareTile", Tabulate.Right);
        ("Best", Tabulate.Right);
        ("Best config", Tabulate.Left);
      ]
  in
  List.iter
    (fun (m, n, k) ->
      let bench = Axi4mlir.create accel in
      let square flow =
        match Heuristics.square_tile accel ~flow ~m ~n ~k with
        | Some choice -> Tabulate.fmt_ms (measure_choice bench ~m ~n ~k choice)
        | None -> "-"
      in
      let best_cell, best_config =
        match Heuristics.best accel ~m ~n ~k with
        | Some choice ->
          ( Tabulate.fmt_ms (measure_choice bench ~m ~n ~k choice),
            Printf.sprintf "%s tM=%d tN=%d tK=%d" choice.Heuristics.flow
              choice.Heuristics.tm choice.Heuristics.tn choice.Heuristics.tk )
        | None -> ("-", "-")
      in
      Tabulate.add_row t
        [
          Printf.sprintf "%dx%dx%d" m n k;
          square "As";
          square "Bs";
          square "Cs";
          best_cell;
          best_config;
        ])
    (problems ());
  Tabulate.print t;
  Report.note
    "Paper shape: the winning square flow depends on the problem shape; Best's flexible \
     (non-square) tiles outperform square tiling."
