(* Table I: the accelerator catalogue used in the experiments. *)

let run () =
  Report.header "Table I: Accelerators used in the experiments";
  let t =
    Tabulate.create
      [
        ("Type", Tabulate.Left);
        ("Possible Reuse", Tabulate.Left);
        ("Opcode(s)", Tabulate.Left);
        ("Size", Tabulate.Right);
        ("OPs/Cycle", Tabulate.Right);
        ("Buffer (elems)", Tabulate.Right);
      ]
  in
  List.iter
    (fun version ->
      List.iter
        (fun size ->
          let config = Presets.matmul ~version ~size () in
          Tabulate.add_row t
            [
              Printf.sprintf "%s_size" (Report.version_name version);
              Presets.possible_reuse version;
              Presets.opcode_summary version;
              string_of_int size;
              Printf.sprintf "%.0f" config.Accel_config.ops_per_cycle;
              string_of_int config.Accel_config.buffer_capacity_elems;
            ])
        Presets.table1_sizes;
      Tabulate.add_rule t)
    [ Accel_matmul.V1; Accel_matmul.V2; Accel_matmul.V3; Accel_matmul.V4 ];
  Tabulate.print t;
  Report.note "All synthesised at 200 MHz (simulated); v4 supports non-square tiles.";
  (* the flows each type drives, from the presets *)
  Report.note "Flows: v1 {Ns}; v2 {Ns, As, Bs}; v3/v4 {Ns, As, Bs, Cs}."
