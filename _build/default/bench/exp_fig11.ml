(* Fig. 11: manual Ns vs AXI4MLIR-generated flow strategies, BEFORE the
   MemRef-copy specialisation (the bottlenecked first implementation).

   The paper's shape: the generated code uses the generic element-wise
   memref copies here, so generated Ns/As/Bs trail the manual driver;
   Cs still manages to help. (Fig. 12 then diagnoses and fixes this.) *)

let configs () =
  if !Report.quick then [ (Accel_matmul.V3, 8, 64) ]
  else
    [
      (Accel_matmul.V2, 8, 64);
      (Accel_matmul.V2, 16, 128);
      (Accel_matmul.V3, 8, 64);
      (Accel_matmul.V3, 16, 128);
      (Accel_matmul.V3, 16, 256);
    ]

let run () =
  Report.header
    "Fig. 11: manual Ns vs generated flows, generic (unspecialised) copies, task clock (ms)";
  let t =
    Tabulate.create
      [
        ("accel", Tabulate.Left);
        ("dims", Tabulate.Right);
        ("manual Ns", Tabulate.Right);
        ("gen Ns", Tabulate.Right);
        ("gen As", Tabulate.Right);
        ("gen Bs", Tabulate.Right);
        ("gen Cs", Tabulate.Right);
      ]
  in
  List.iter
    (fun (version, size, dims) ->
      let accel = Presets.matmul ~version ~size () in
      let bench = Axi4mlir.create accel in
      let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:dims ~n:dims ~k:dims in
      let manual =
        Report.ms bench (Report.manual_matmul_counters bench accel ~flow:"Ns" ~a ~b ~c ())
      in
      let gen flow =
        if List.mem flow (Presets.matmul_flows version) then begin
          let options =
            {
              Axi4mlir.default_codegen with
              flow = Some flow;
              copy_specialization = false;
            }
          in
          Tabulate.fmt_ms
            (Report.ms bench
               (Report.generated_matmul_counters bench ~options ~m:dims ~n:dims ~k:dims ~a
                  ~b ~c ()))
        end
        else "-"
      in
      Tabulate.add_row t
        [
          Printf.sprintf "%s_%d" (Report.version_name version) size;
          string_of_int dims;
          Tabulate.fmt_ms manual;
          gen "Ns";
          gen "As";
          gen "Bs";
          gen "Cs";
        ])
    (configs ());
  Tabulate.print t;
  Report.note
    "Paper shape: with generic copies the generated Ns/As/Bs are bottlenecked relative to \
     manual Ns; stationary flows (especially Cs) still reduce time vs generated Ns."
