bench/exp_table1.ml: Accel_config Accel_matmul List Presets Printf Report Tabulate
