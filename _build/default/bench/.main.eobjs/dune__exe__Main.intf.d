bench/main.mli:
