bench/exp_fig17.ml: Accel_matmul Axi4mlir Cost_model Cpu_reference Dma_library Heuristics List Perf_counters Presets Printf Report Tabulate Tinybert
