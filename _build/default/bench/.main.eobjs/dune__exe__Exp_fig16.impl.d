bench/exp_fig16.ml: Axi4mlir Dma_library Interp List Manual_conv Perf_counters Presets Printf Report Resnet18 String Tabulate Util
