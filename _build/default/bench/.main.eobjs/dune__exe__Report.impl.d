bench/report.ml: Accel_matmul Axi4mlir Cpu_reference Manual_matmul Printf String
