bench/exp_fig10.ml: Accel_matmul Axi4mlir List Presets Printf Report Tabulate
