bench/exp_fig13.ml: Accel_matmul Axi4mlir List Perf_counters Presets Printf Report Tabulate Util
