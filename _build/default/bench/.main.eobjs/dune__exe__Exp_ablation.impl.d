bench/exp_ablation.ml: Accel_matmul Axi4mlir List Perf_counters Presets Printf Report Tabulate
