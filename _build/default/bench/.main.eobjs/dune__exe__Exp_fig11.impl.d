bench/exp_fig11.ml: Accel_matmul Axi4mlir List Presets Printf Report Tabulate
