bench/exp_fig14.ml: Accel_matmul Axi4mlir Heuristics List Presets Printf Report Tabulate Util
