(* Fig. 12: branch-instruction, cache-reference and task-clock counters
   for the v3_16 accelerator at dims = 128, normalised to CPU-only
   execution of the same problem — (a) without the MemRef-DMA copy
   specialisation, (b) with it. *)

let run_variant ~specialized =
  let dims = 128 in
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:dims ~n:dims ~k:dims in
  let cpu = Report.cpu_matmul_counters bench ~a ~b ~c in
  let norm (counters : Perf_counters.t) =
    ( counters.Perf_counters.branches /. cpu.Perf_counters.branches,
      Perf_counters.cache_references counters /. Perf_counters.cache_references cpu,
      counters.Perf_counters.cycles /. cpu.Perf_counters.cycles )
  in
  let t =
    Tabulate.create
      [
        ("driver", Tabulate.Left);
        ("branches", Tabulate.Right);
        ("cache refs", Tabulate.Right);
        ("task clock", Tabulate.Right);
      ]
  in
  let add name (b, r, cl) =
    Tabulate.add_row t
      [ name; Printf.sprintf "%.3f" b; Printf.sprintf "%.3f" r; Printf.sprintf "%.3f" cl ]
  in
  add "mlir_CPU" (1.0, 1.0, 1.0);
  Tabulate.add_rule t;
  add "manual Ns"
    (norm (Report.manual_matmul_counters bench accel ~flow:"Ns" ~a ~b ~c ()));
  List.iter
    (fun flow ->
      let options =
        { Axi4mlir.default_codegen with flow = Some flow; copy_specialization = specialized }
      in
      add
        (Printf.sprintf "gen %s" flow)
        (norm
           (Report.generated_matmul_counters bench ~options ~m:dims ~n:dims ~k:dims ~a ~b
              ~c ())))
    [ "Ns"; "As"; "Bs"; "Cs" ];
  Tabulate.print t

let run () =
  Report.header
    "Fig. 12a: counters normalised to CPU, v3_16, dims=128, WITHOUT copy specialisation";
  run_variant ~specialized:false;
  Report.note
    "Paper shape: element-wise memref copies inflate the generated drivers' cache \
     references and branches past the manual implementation.";
  Report.header
    "Fig. 12b: counters normalised to CPU, v3_16, dims=128, WITH copy specialisation";
  run_variant ~specialized:true;
  Report.note
    "Paper shape: the memcpy-specialised copies remove the overhead; generated matches or \
     beats manual on every counter."
