(* Fig. 17: end-to-end TinyBERT (batch = 2) under three compilation
   strategies: CPU-only, co-execution with the v4_16 accelerator using
   the plain Ns offload, and co-execution using the "Best" heuristics
   of Sec. IV-C.

   MatMul instances within a shape class are identical, so each class
   is simulated once and scaled by its multiplicity; the one-time DMA
   initialisation is amortised app-wide. Non-MatMul encoder work (layer
   norms, softmax, GELU, residuals) runs on the CPU under every
   strategy and comes from the analytic element-count model.

   Paper shape: ~75% of CPU time in MatMuls; big speedup on accelerated
   MatMuls (18.4x in the paper) turning into ~3.4x end to end. *)

let batch = 2
let seq = 128

type strategy = Cpu | Ns | Best

let strategy_name = function Cpu -> "mlir_CPU (-O3)" | Ns -> "AXI4MLIR Ns" | Best -> "AXI4MLIR Best"

(* cycles for all instances of one matmul shape under a strategy *)
let shape_cycles strategy (s : Tinybert.matmul_shape) =
  let accel = Presets.matmul ~version:Accel_matmul.V4 ~size:16 () in
  let bench = Axi4mlir.create accel in
  match strategy with
  | Cpu ->
    (* the paper's CPU baseline is compiled -O3 *)
    let a, b, c =
      Axi4mlir.alloc_matmul_operands bench ~m:s.Tinybert.m ~n:s.Tinybert.n ~k:s.Tinybert.k
    in
    let counters =
      Report.measure bench (fun () ->
          Cpu_reference.matmul_optimized bench.Axi4mlir.soc ~a ~b ~c ~sample_rows:8 ())
    in
    counters.Perf_counters.cycles *. float_of_int s.Tinybert.count
  | Ns | Best ->
    (* the accelerated path runs the 16-padded problem *)
    let m = Tinybert.pad16 s.Tinybert.m
    and n = Tinybert.pad16 s.Tinybert.n
    and k = Tinybert.pad16 s.Tinybert.k in
    let options =
      match strategy with
      | Ns -> { Axi4mlir.default_codegen with flow = Some "Ns"; tiles = Some [ 16; 16; 16 ] }
      | Best | Cpu -> (
        match Heuristics.best accel ~m ~n ~k with
        | Some choice ->
          {
            Axi4mlir.default_codegen with
            flow = Some choice.Heuristics.flow;
            tiles = Some [ choice.Heuristics.tm; choice.Heuristics.tn; choice.Heuristics.tk ];
          }
        | None -> Axi4mlir.default_codegen)
    in
    let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
    let counters = Report.generated_matmul_counters bench ~options ~m ~n ~k ~a ~b ~c () in
    (* amortise the one-time DMA bring-up across the whole app *)
    let per_instance = counters.Perf_counters.cycles -. Dma_library.init_cycles in
    (per_instance *. float_of_int s.Tinybert.count) +. Dma_library.init_cycles

let run () =
  Report.header "Fig. 17: TinyBERT end-to-end (batch=2, seq=128) on CPU + v4_16";
  let shapes = Tinybert.matmul_shapes ~batch ~seq in
  let matmul_cycles strategy =
    List.fold_left (fun acc s -> acc +. shape_cycles strategy s) 0.0 shapes
  in
  let cpu_matmul = matmul_cycles Cpu in
  (* Non-MatMul encoder work: the analytic element-count model covers
     the arithmetic (layer norms, softmax, GELU, residuals) but not the
     layout/reshape traffic a Torch-MLIR pipeline materialises, which
     the shapes alone cannot determine. The paper reports MatMuls as
     75% of CPU runtime; we calibrate the non-MatMul share to that
     measurement and hold it constant across strategies. *)
  let analytic_other = Tinybert.non_matmul_cpu_cycles ~cost:Cost_model.default ~batch ~seq in
  let other = cpu_matmul /. 3.0 in
  let to_ms c = c /. 650_000.0 in
  let t =
    Tabulate.create
      [
        ("strategy", Tabulate.Left);
        ("MatMul ms", Tabulate.Right);
        ("other ms", Tabulate.Right);
        ("e2e ms", Tabulate.Right);
        ("MatMul speedup", Tabulate.Right);
        ("e2e speedup", Tabulate.Right);
      ]
  in
  let cpu_e2e = cpu_matmul +. other in
  List.iter
    (fun strategy ->
      let mm = if strategy = Cpu then cpu_matmul else matmul_cycles strategy in
      let e2e = mm +. other in
      Tabulate.add_row t
        [
          strategy_name strategy;
          Tabulate.fmt_ms (to_ms mm);
          Tabulate.fmt_ms (to_ms other);
          Tabulate.fmt_ms (to_ms e2e);
          Tabulate.fmt_x (cpu_matmul /. mm);
          Tabulate.fmt_x (cpu_e2e /. e2e);
        ];
      Printf.printf "  %s done\n%!" (strategy_name strategy))
    [ Cpu; Ns; Best ];
  Tabulate.print t;
  Report.note "MatMuls are %s of CPU-only runtime (calibrated to the paper's 75%%)"
    (Tabulate.fmt_pct (cpu_matmul /. cpu_e2e));
  Report.note
    "(analytic non-MatMul arithmetic alone: %.0f ms; the calibrated share additionally      covers layout/reshape traffic)"
    (to_ms analytic_other);
  Report.note
    "Paper shape: Best reaches ~18x on accelerated MatMuls and ~3.4x end-to-end; Ns sits \
     in between CPU and Best."
