(* Fig. 16: ResNet-18 convolution layers, AXI4MLIR-generated vs
   layer-specific manual driver code, normalised to the manual driver.

   The manual driver drains one output row at a time (the natural
   hand-optimised batching); the generated driver's opcode_flow hoists
   the drain all the way out of the spatial loops ("Os": one receive
   per output channel) — the paper's point that flow strategies are
   cheap to obtain with AXI4MLIR and tedious by hand.

   Output rows are sampled (the per-row work is homogeneous) and
   counters scaled, so the full layer set runs in seconds; speedups are
   unaffected because both drivers are sampled identically.

   Paper shape: generated wins on 10 of 11 layers (1.28x avg / 1.54x
   max in the paper); fHW==1 layers see the smallest speedups — one a
   slowdown — because one-element runs cannot leverage the strided copy
   specialisation, while the hand-written driver falls back to a bare
   strided loop. *)

let row_cap () = if !Report.quick then 2 else 4

let run_layer (l : Resnet18.layer) =
  let n = 1 and ic = l.Resnet18.ic and oc = l.Resnet18.oc in
  let fhw = l.Resnet18.fhw and stride = l.Resnet18.stride in
  let full_rows = l.Resnet18.ohw in
  let rows = min full_rows (row_cap ()) in
  let scale = float_of_int full_rows /. float_of_int rows in
  (* simulate [rows] output rows at full output width *)
  let ih = ((rows - 1) * stride) + fhw and iw = l.Resnet18.ihw in
  let run flow use_manual =
    let accel = Presets.conv ~flow () in
    let bench = Axi4mlir.create accel in
    let i, w, o =
      Axi4mlir.alloc_conv_operands ~stride bench ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw
    in
    let counters =
      if use_manual then
        Report.measure bench (fun () ->
            Manual_conv.run bench.Axi4mlir.soc accel ~flow:"Rs" ~stride ~input:i ~filter:w
              ~output:o ())
      else begin
        let ir = Axi4mlir.build_conv_module ~stride ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw () in
        let compiled = Axi4mlir.compile bench ir in
        Report.measure bench (fun () ->
            Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled
              "conv_call"
              [ Interp.M i; Interp.M w; Interp.M o ])
      end
    in
    counters.Perf_counters.cycles *. scale
  in
  (run "Ws" true, run "Os" false)

let run () =
  Report.header
    "Fig. 16: ResNet-18 convolution layers, generated (Os flow) vs manual (row drain)";
  let t =
    Tabulate.create
      [
        ("layer (iHW_iC_fHW_oC_s)", Tabulate.Left);
        ("MACs", Tabulate.Right);
        ("manual ms", Tabulate.Right);
        ("generated ms", Tabulate.Right);
        ("speedup", Tabulate.Right);
      ]
  in
  let speedups = ref [] in
  List.iter
    (fun (l : Resnet18.layer) ->
      let manual, generated = run_layer l in
      let sp = manual /. generated in
      speedups := (l, sp) :: !speedups;
      let to_ms c = c /. 650_000.0 in
      Tabulate.add_row t
        [
          l.Resnet18.label;
          string_of_int (Resnet18.macs l);
          Tabulate.fmt_ms (to_ms manual);
          Tabulate.fmt_ms (to_ms generated);
          Tabulate.fmt_x sp;
        ])
    Resnet18.layers;
  Tabulate.print t;
  let sps = List.map snd !speedups in
  Report.note "speedup vs manual: geomean %s, max %s (paper: avg 1.28x, max 1.54x)"
    (Tabulate.fmt_x (Util.geomean sps))
    (Tabulate.fmt_x (Util.fmax_list sps));
  let fhw1 = List.filter (fun ((l : Resnet18.layer), _) -> l.Resnet18.fhw = 1) !speedups in
  if fhw1 <> [] then
    Report.note "fHW==1 layers (no strided-copy benefit): %s (paper: one 10%% slowdown)"
      (String.concat ", "
         (List.map
            (fun ((l : Resnet18.layer), sp) ->
              Printf.sprintf "%s %s" l.Resnet18.label (Tabulate.fmt_x sp))
            fhw1));
  Report.note "(output rows sampled: %d rows per layer, counters scaled)" (row_cap ())
