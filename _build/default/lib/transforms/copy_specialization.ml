let spec_callee = function
  | name when name = Runtime_abi.copy_to_dma_region -> Some Runtime_abi.copy_to_dma_region_spec
  | name when name = Runtime_abi.copy_from_dma_region -> Some Runtime_abi.copy_from_dma_region_spec
  | name when name = Runtime_abi.copy_from_dma_region_accumulate ->
    Some Runtime_abi.copy_from_dma_region_accumulate_spec
  | _ -> None

let unit_innermost_stride (v : Ir.value) =
  match v.vty with
  | Ty.Memref m -> (
    match List.rev m.strides with last :: _ -> last = 1 | [] -> true)
  | Ty.Scalar _ | Ty.Func _ -> false

let rewrite (o : Ir.op) =
  if o.name <> "func.call" then o
  else
    match (Ir.attr o "callee", o.operands) with
    | Some (Attribute.Str callee), (memref :: _ as operands) -> (
      match spec_callee callee with
      | Some specialised when unit_innermost_stride memref ->
        ignore operands;
        Ir.set_attr o "callee" (Attribute.Str specialised)
      | Some _ | None -> o)
    | _ -> o

let pass = Pass.make "copy-specialization" (fun m -> Ir.map_nested rewrite m)
