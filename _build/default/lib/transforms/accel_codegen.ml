(* One open loop: the dimension it iterates, its induction variable and
   its step (= the tile extent it exposes to enclosed code). *)
type open_loop = { dim : int; iv : Ir.value; step : int }

type loop_spec = { ls_dim : int; ls_lb : [ `Zero | `Iv of int ]; ls_extent : int; ls_step : int }
(* ls_lb = `Iv d: start at the innermost already-open loop over dim d
   (the cache-level tile origin); extent is the trip span. *)

let codegen_generic b ~emit_dma_init (op : Ir.op) =
  let trait =
    match Trait.of_op op with
    | Some t -> t
    | None -> failwith "Accel_codegen: linalg.generic has no AXI4MLIR trait"
  in
  let maps = Linalg.indexing_maps op in
  let ranges = Linalg.loop_ranges op in
  let ranges_arr = Array.of_list ranges in
  let accel_dim = Array.of_list trait.accel_dim in
  let cpu_tile = Array.of_list trait.cpu_tile in
  let operands = Array.of_list op.operands in
  let accumulate = Matcher.kernel_accumulates op in
  let host_dims = List.filter (fun d -> accel_dim.(d) > 0) trait.permutation in

  (* Loop specs: cache-level loops (for dims with a cpu tile), then the
     accelerator-tile loops, both in permuted order. *)
  let outer_specs =
    List.filter_map
      (fun d ->
        if cpu_tile.(d) > 0 then
          Some { ls_dim = d; ls_lb = `Zero; ls_extent = ranges_arr.(d); ls_step = cpu_tile.(d) }
        else None)
      host_dims
  in
  let inner_specs =
    List.map
      (fun d ->
        if cpu_tile.(d) > 0 then
          Some { ls_dim = d; ls_lb = `Iv d; ls_extent = cpu_tile.(d); ls_step = accel_dim.(d) }
        else
          Some { ls_dim = d; ls_lb = `Zero; ls_extent = ranges_arr.(d); ls_step = accel_dim.(d) })
      host_dims
    |> List.filter_map (fun x -> x)
  in
  let all_specs = Array.of_list (outer_specs @ inner_specs) in
  let total_loops = Array.length all_specs in
  let flow_d = max (Opcode.flow_depth trait.opcode_flow) 1 in
  if flow_d > total_loops then
    failwith
      (Printf.sprintf "Accel_codegen: flow depth %d exceeds %d loops" flow_d total_loops);
  let wrap_count = total_loops - flow_d in

  (* Mutable stack of open loops, innermost first. *)
  let stack : open_loop list ref = ref [] in
  let innermost_over d = List.find_opt (fun l -> l.dim = d) !stack in

  let open_loop spec body =
    let lb =
      match spec.ls_lb with
      | `Zero -> Arith.constant_index b 0
      | `Iv d -> (
        match innermost_over d with
        | Some l -> l.iv
        | None -> failwith "Accel_codegen: cache-level loop not open")
    in
    let ub =
      match spec.ls_lb with
      | `Zero -> Arith.constant_index b spec.ls_extent
      | `Iv _ -> Arith.addi b lb (Arith.constant_index b spec.ls_extent)
    in
    let step = Arith.constant_index b spec.ls_step in
    Scf.for_ b ~lb ~ub ~step (fun _b iv ->
        stack := { dim = spec.ls_dim; iv; step = spec.ls_step } :: !stack;
        body ();
        stack := List.tl !stack)
  in

  (* Tile subview of operand [arg] at the current loop stack. *)
  let subview_of_arg arg =
    let full = operands.(arg) in
    let map = List.nth maps arg in
    let contributions expr =
      (* (iv offsets, window extent) of one index expression *)
      let rec go = function
        | Affine_map.Dim d -> (
          match innermost_over d with
          | Some l -> ([ l.iv ], l.step)
          | None -> ([], ranges_arr.(d)))
        | Affine_map.Cst c ->
          if c <> 0 then failwith "Accel_codegen: non-zero constant index";
          ([], 1)
        | Affine_map.Add (x, y) ->
          let ox, ex = go x and oy, ey = go y in
          (ox @ oy, ex + ey - 1)
        | Affine_map.Mul (Affine_map.Cst s, e) | Affine_map.Mul (e, Affine_map.Cst s) ->
          (* stride-s window: scale the loop offsets, widen the extent *)
          let ox, ex = go e in
          let scaled =
            List.map (fun iv -> Arith.muli b (Arith.constant_index b s) iv) ox
          in
          (scaled, (s * (ex - 1)) + 1)
        | Affine_map.Mul _ ->
          failwith "Accel_codegen: only constant-stride multiplicative indexing"
      in
      go expr
    in
    let parts = List.map contributions map.Affine_map.exprs in
    let offsets =
      List.map
        (fun (ivs, _) ->
          match ivs with
          | [] -> Arith.constant_index b 0
          | first :: rest -> List.fold_left (Arith.addi b) first rest)
        parts
    in
    let sizes = List.map snd parts in
    Memref_d.subview b full ~offsets ~sizes
  in

  let recv_mode = if accumulate then Accel.Accumulate else Accel.Store in

  (* Emit one opcode's action list with a fresh offset chain; the last
     send-like action flushes the staged batch. *)
  let emit_opcode ~init_scope key =
    let entry =
      match Opcode.find trait.opcode_map key with
      | Some e -> e
      | None -> failwith (Printf.sprintf "Accel_codegen: undefined opcode %s" key)
    in
    let is_send_like = function
      | Opcode.Send _ | Opcode.Send_literal _ | Opcode.Send_dim _ | Opcode.Send_idx _ -> true
      | Opcode.Recv _ -> false
    in
    let flush_idx =
      List.fold_left
        (fun (i, last) a -> (i + 1, if is_send_like a then i else last))
        (0, -1) entry.actions
      |> snd
    in
    let offset = ref (Arith.constant_i32 b 0) in
    List.iteri
      (fun i action ->
        let flush = i = flush_idx in
        match action with
        | Opcode.Send_literal v ->
          let lit = Arith.constant_i32 b v in
          offset := Accel.send_literal ~flush b ~literal:lit ~offset:!offset
        | Opcode.Send arg ->
          let tile = subview_of_arg arg in
          offset := Accel.send ~flush b ~src:tile ~offset:!offset
        | Opcode.Send_dim (arg, d) ->
          let map = List.nth maps arg in
          let expr =
            match List.nth_opt map.Affine_map.exprs d with
            | Some e -> e
            | None -> failwith "Accel_codegen: send_dim dimension out of range"
          in
          let extent =
            Tiling.tile_extent_of_expr ~ranges ~accel_dim:trait.accel_dim expr
          in
          offset :=
            Accel.send_dim ~flush ~static_extent:extent b ~src:operands.(arg) ~dim:d
              ~offset:!offset
        | Opcode.Send_idx (_, d) ->
          let idx =
            match innermost_over d with
            | Some l -> l.iv
            | None ->
              if init_scope then Arith.constant_index b 0
              else failwith "Accel_codegen: send_idx outside the loop over its dim"
          in
          offset := Accel.send_idx ~flush b ~idx ~offset:!offset
        | Opcode.Recv arg ->
          let tile = subview_of_arg arg in
          offset := Accel.recv b ~mode:recv_mode ~dst:tile ~offset:!offset)
      entry.actions
  in

  (* Flow-directed emission. *)
  let rec emit_scope elems next_loop =
    List.iter
      (fun elem ->
        match elem with
        | Opcode.Op key -> emit_opcode ~init_scope:false key
        | Opcode.Scope inner ->
          if next_loop >= total_loops then
            failwith "Accel_codegen: flow scope without a matching loop";
          open_loop all_specs.(next_loop) (fun () -> emit_scope inner (next_loop + 1)))
      elems
  in
  let rec emit_wrapped i =
    if i < wrap_count then open_loop all_specs.(i) (fun () -> emit_wrapped (i + 1))
    else emit_scope trait.opcode_flow i
  in

  if emit_dma_init then begin
    let init_ops =
      Builder.nest b (fun () ->
          Accel.dma_init b ~dma_id:trait.dma_init_config.Accel_config.dma_id
            ~input_address:trait.dma_init_config.Accel_config.input_address
            ~input_buffer_size:trait.dma_init_config.Accel_config.input_buffer_size
            ~output_address:trait.dma_init_config.Accel_config.output_address
            ~output_buffer_size:trait.dma_init_config.Accel_config.output_buffer_size)
    in
    List.iter
      (fun (o : Ir.op) ->
        let o =
          if o.Ir.name = "accel.dma_init" && trait.double_buffer then
            Ir.set_attr o "double_buffer" (Attribute.Bool true)
          else o
        in
        Builder.emit b o)
      init_ops
  end;
  List.iter (emit_opcode ~init_scope:true) trait.init_opcodes;
  emit_wrapped 0

let pass =
  Pass.make "accel-codegen" (fun m ->
      let dma_done = ref false in
      let rewrite_block (blk : Ir.block) =
        let b = Builder.create () in
        List.iter
          (fun (op : Ir.op) ->
            if Linalg.is_generic op && Ir.has_attr op "opcode_flow" then begin
              codegen_generic b ~emit_dma_init:(not !dma_done) op;
              dma_done := true
            end
            else Builder.emit b op)
          blk.body;
        { blk with body = Builder.finish b }
      in
      (* Annotated generics only appear at function-body level in this
         flow; rebuild each function's entry block. *)
      Ir.with_module_body m
        (List.map
           (fun (f : Ir.op) ->
             if Func.is_func f then
               { f with regions = [ [ rewrite_block (Func.body_of f) ] ] }
             else f)
           (Ir.module_body m)))
