(** Reference lowering of [linalg.generic] to [scf] loop nests with
    scalar loads/stores — the "mlir_CPU" execution path and the
    functional oracle the accelerator paths are tested against.

    The loop order is the canonical dimension order (parallel and
    reduction dims interleaved as declared), i.e. no CPU-oriented
    tiling — matching the straight linalg-to-loops lowering the paper's
    CPU baseline uses. *)

val pass : Pass.t
(** Rewrites every [linalg.generic] in the module. *)

val lower_generic : Builder.t -> Ir.op -> unit
(** Emit the loop nest replacing the given generic op. *)
