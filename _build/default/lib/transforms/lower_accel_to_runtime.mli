(** Runtime call replacement (the final lowering of Fig. 9): expand
    every [accel] operation into [func.call]s to the DMA runtime
    library's symbols ({!Runtime_abi}).

    - [accel.dma_init] -> [@dma_init(id, ...)];
    - [accel.sendLiteral]/[accel.sendDim]/[accel.sendIdx] ->
      [@stage_literal] (dims/indices are staged as instruction words;
      index values go through [arith.index_cast]);
    - [accel.send] -> [@copy_to_dma_region]; a [flush] marker appends
      [@dma_flush_send];
    - [accel.recv] -> [@dma_flush_send]; [@dma_start_recv(n)];
      [@dma_wait_recv]; [@copy_from_dma_region[_accumulate]].

    The offset-chaining results keep their SSA identities, so no use
    rewriting is needed. All copies lower to the {e generic}
    element-wise entry points; the {!Copy_specialization} pass upgrades
    them afterwards. *)

val pass : Pass.t
