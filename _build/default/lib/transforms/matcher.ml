let matmul_maps =
  [
    Affine_map.projection ~n_dims:3 [ 0; 2 ];
    Affine_map.projection ~n_dims:3 [ 2; 1 ];
    Affine_map.projection ~n_dims:3 [ 0; 1 ];
  ]

let conv_maps stride =
  let open Affine_map in
  let spatial d = if stride = 1 then Dim d else Mul (Cst stride, Dim d) in
  [
    make ~n_dims:7 [ Dim 0; Dim 4; Add (spatial 2, Dim 5); Add (spatial 3, Dim 6) ];
    projection ~n_dims:7 [ 1; 4; 5; 6 ];
    projection ~n_dims:7 [ 0; 1; 2; 3 ];
  ]

(* The kernel must be: %p = mulf(%in0, %in1); %s = addf(%out, %p) (either
   operand order); yield %s. Block args are (in0, in1, out). *)
let mul_add_kernel (o : Ir.op) =
  match (Ir.single_block o).bargs with
  | [ a; b; c ] -> (
    match (Ir.single_block o).body with
    | [ mul; add; yield_op ] ->
      let is v (w : Ir.value) = v.Ir.vid = w.Ir.vid in
      mul.Ir.name = "arith.mulf"
      && (match mul.operands with
         | [ x; y ] -> (is x a && is y b) || (is x b && is y a)
         | _ -> false)
      && add.Ir.name = "arith.addf"
      && (match add.operands with
         | [ x; y ] ->
           let p = Ir.result mul in
           (is x c && is y p) || (is x p && is y c)
         | _ -> false)
      && yield_op.Ir.name = "linalg.yield"
      && (match yield_op.operands with [ r ] -> is r (Ir.result add) | _ -> false)
    | _ -> false)
  | _ -> false

let structure_matches maps iters (o : Ir.op) =
  Linalg.is_generic o
  && List.length o.operands = 3
  && Attribute.get_int (Ir.attr_exn o "ins") = 2
  && (try List.for_all2 Affine_map.equal (Linalg.indexing_maps o) maps
      with Invalid_argument _ -> false)
  && Linalg.iterator_types o = iters
  && mul_add_kernel o

let p = Linalg.parallel
let r = Linalg.reduction

let is_matmul o = structure_matches matmul_maps [ p; p; r ] o

let is_conv_2d_nchw_fchw o =
  match Linalg.conv_stride_of o with
  | Some stride -> structure_matches (conv_maps stride) [ p; p; p; p; r; r; r ] o
  | None -> false

let matches_kind kind o =
  match kind with
  | "matmul" -> is_matmul o
  | "conv_2d_nchw_fchw" -> is_conv_2d_nchw_fchw o
  | _ -> false

let kernel_accumulates (o : Ir.op) =
  if not (Linalg.is_generic o) then false
  else
    match (Ir.single_block o).bargs with
    | [] -> false
    | bargs -> (
      let n_outs = List.length o.operands - Linalg.num_inputs o in
      let out_args = Util.list_drop (List.length bargs - n_outs) bargs in
      match List.rev (Ir.single_block o).body with
      | yield_op :: rest when yield_op.Ir.name = "linalg.yield" ->
        (* The yielded value must be an addf with one operand chain
           reaching an output block argument. *)
        let defs = Hashtbl.create 8 in
        List.iter
          (fun (op : Ir.op) ->
            List.iter (fun (v : Ir.value) -> Hashtbl.replace defs v.Ir.vid op) op.results)
          rest;
        let rec reaches_out (v : Ir.value) depth =
          if depth > 8 then false
          else if List.exists (fun (a : Ir.value) -> a.vid = v.Ir.vid) out_args then true
          else
            match Hashtbl.find_opt defs v.Ir.vid with
            | Some def ->
              List.exists (fun operand -> reaches_out operand (depth + 1)) def.Ir.operands
            | None -> false
        in
        (match yield_op.Ir.operands with
        | [ y ] -> (
          match Hashtbl.find_opt defs y.Ir.vid with
          | Some def when def.Ir.name = "arith.addf" ->
            List.exists (fun operand -> reaches_out operand 0) def.Ir.operands
          | Some _ | None -> false)
        | _ -> false)
      | _ -> false)
