let is_send_like (o : Ir.op) =
  match o.name with
  | "accel.sendLiteral" | "accel.send" | "accel.sendDim" | "accel.sendIdx" -> true
  | _ -> false

(* Ops that may sit between two chains without blocking coalescing. *)
let is_pure (o : Ir.op) =
  match o.name with
  | "arith.constant" | "memref.subview" | "arith.addi" | "arith.subi" | "arith.muli"
  | "arith.index_cast" ->
    true
  | _ -> false

let rewrite_block (blk : Ir.block) =
  let ops = Array.of_list blk.body in
  let n = Array.length ops in
  (* The offset operand is the second operand of every send-like op. *)
  let set_offset (o : Ir.op) offset =
    match o.operands with
    | [ first; _old ] -> { o with operands = [ first; offset ] }
    | _ -> o
  in
  let clear_flush (o : Ir.op) = Ir.remove_attr o "flush" in
  (* Scan forward, tracking the previous flush-marked send-like op (the
     chain that can be extended) and the first send-like op of the
     chain currently being staged. *)
  let last_flush = ref (-1) in
  let chain_first = ref (-1) in
  for i = 0 to n - 1 do
    let o = ops.(i) in
    if is_send_like o then begin
      if !chain_first < 0 then chain_first := i;
      if Accel.is_flush o then begin
        if !last_flush >= 0 then begin
          (* merge: the previous chain keeps its staged words, this
             chain continues from its final offset *)
          let prev = ops.(!last_flush) in
          ops.(!last_flush) <- clear_flush prev;
          ops.(!chain_first) <- set_offset ops.(!chain_first) (Ir.result prev)
        end;
        last_flush := i;
        chain_first := -1
      end
    end
    else if not (is_pure o) then begin
      (* recv, loops, calls, dma_init...: sends must complete here *)
      last_flush := -1;
      chain_first := -1
    end
  done;
  { blk with body = Array.to_list ops }

let rec rewrite_op (o : Ir.op) =
  let regions =
    List.map (fun blocks -> List.map (fun b -> rewrite_block (rewrite_nested b)) blocks) o.Ir.regions
  in
  { o with regions }

and rewrite_nested (blk : Ir.block) =
  { blk with body = List.map rewrite_op blk.body }

let pass =
  Pass.make "coalesce-transfers" (fun m ->
      Ir.with_module_body m (List.map rewrite_op (Ir.module_body m)))
