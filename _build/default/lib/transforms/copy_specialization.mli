(** The MemRef-to-DMA-buffer copy specialisation of Sec. IV-B.

    Rewrites runtime copy calls ([@copy_to_dma_region],
    [@copy_from_dma_region], [@copy_from_dma_region_accumulate]) to
    their ["_spec"] variants when the memref operand's layout has a
    unit innermost stride, i.e. when elements along the last dimension
    are physically adjacent and the copy can be implemented with
    vectorised [memcpy] runs instead of the recursive element-wise
    loop. Strided layouts keep the generic copy — the compiler can see
    this statically from the memref type.

    Running the pipeline without this pass reproduces the paper's
    Fig. 12a (bottlenecked) configuration; with it, Fig. 12b. *)

val pass : Pass.t
