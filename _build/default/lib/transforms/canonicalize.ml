let is_constant (o : Ir.op) = o.name = "arith.constant"

let rewrite_func (f : Ir.op) =
  if not (Func.is_func f) then f
  else begin
    (* One canonical constant per (value attribute, result type). *)
    let canonical : (Attribute.t * Ty.t, Ir.value) Hashtbl.t = Hashtbl.create 32 in
    let subst : (int, Ir.value) Hashtbl.t = Hashtbl.create 64 in
    Ir.walk
      (fun o ->
        if is_constant o then begin
          let r = Ir.result o in
          let key = (Ir.attr_exn o "value", r.Ir.vty) in
          let canon =
            match Hashtbl.find_opt canonical key with
            | Some v -> v
            | None ->
              let v = Ir.fresh_value r.Ir.vty in
              Hashtbl.add canonical key v;
              v
          in
          Hashtbl.replace subst r.Ir.vid canon
        end)
      f;
    let substitute (v : Ir.value) =
      match Hashtbl.find_opt subst v.Ir.vid with Some v' -> v' | None -> v
    in
    let rec strip (o : Ir.op) =
      {
        o with
        operands = List.map substitute o.operands;
        regions =
          List.map
            (fun blocks ->
              List.map
                (fun (blk : Ir.block) ->
                  {
                    blk with
                    body =
                      List.filter_map
                        (fun op -> if is_constant op then None else Some (strip op))
                        blk.Ir.body;
                  })
                blocks)
            o.regions;
      }
    in
    let entry_constants =
      Hashtbl.fold
        (fun (attr, _ty) v acc ->
          Ir.op "arith.constant" ~results:[ v ] ~attrs:[ ("value", attr) ] :: acc)
        canonical []
    in
    let block = Func.body_of f in
    let body = List.filter_map (fun op -> if is_constant op then None else Some (strip op)) block.body in
    { f with regions = [ [ Ir.block ~args:block.bargs (entry_constants @ body) ] ] }
  end

let pass =
  Pass.make "canonicalize-constants" (fun m ->
      Ir.with_module_body m (List.map rewrite_func (Ir.module_body m)))
