type options = {
  flow : string option;
  tile_override : int list option;
  cpu_tiling : bool;
  double_buffer : bool;
  on_skip : (string -> unit) option;
}

let default_options =
  {
    flow = None;
    tile_override = None;
    cpu_tiling = true;
    double_buffer = false;
    on_skip = None;
  }

let ( let* ) r f = Result.bind r f

let annotate_op ~(accel : Accel_config.t) ~host ~options op =
  let maps = Linalg.indexing_maps op in
  let ranges = Linalg.loop_ranges op in
  let* accel_dim =
    Tiling.resolve_accel_dims accel ~maps ~ranges ?tile_override:options.tile_override ()
  in
  let flow_name =
    match options.flow with Some f -> f | None -> accel.selected_flow
  in
  let* flow =
    match List.assoc_opt flow_name accel.opcode_flows with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "flow %s is not defined for %s" flow_name accel.accel_name)
  in
  let permutation =
    Tiling.derive_permutation ~flow ~opcode_map:accel.opcode_map ~maps ~accel_dim
  in
  let cpu_tile =
    if options.cpu_tiling then begin
      let safe_dims =
        Tiling.safe_cpu_tiling_dims ~flow ~opcode_map:accel.opcode_map ~maps ~accel_dim
      in
      let footprint_bytes =
        List.fold_left
          (fun acc (v : Ir.value) ->
            let mr = Ty.memref_of v.vty in
            acc + (Ty.num_elements mr * Ty.dtype_size_bytes mr.Ty.elem))
          0 op.Ir.operands
      in
      Tiling.choose_cpu_tiles host ~ranges ~accel_dim ~safe_dims ~footprint_bytes
    end
    else List.map (fun _ -> 0) ranges
  in
  let trait =
    {
      Trait.dma_init_config = accel.dma;
      init_opcodes = accel.init_opcodes;
      accel_dim;
      permutation;
      opcode_map = accel.opcode_map;
      opcode_flow = flow;
      cpu_tile;
      double_buffer = options.double_buffer;
    }
  in
  let host_loops =
    List.length (List.filter (fun d -> d > 0) accel_dim)
    + List.length (List.filter (fun t -> t > 0) cpu_tile)
  in
  let* () =
    if Opcode.flow_depth flow > max host_loops 1 then
      Error
        (Printf.sprintf "flow %s is deeper (%d) than the loop nest (%d)" flow_name
           (Opcode.flow_depth flow) host_loops)
    else Ok ()
  in
  let* () =
    Trait.validate trait ~n_dims:(List.length ranges) ~n_args:(List.length op.Ir.operands)
  in
  Ok (Trait.attach op trait)

let pass ~accel ~host ?(options = default_options) () =
  let rewrite op =
    if
      Matcher.matches_kind accel.Accel_config.op_kind op
      && not (Ir.has_attr op "opcode_flow")
    then begin
      match annotate_op ~accel ~host ~options op with
      | Ok annotated -> annotated
      | Error reason ->
        (match options.on_skip with
        | Some f -> f (Printf.sprintf "%s: %s" accel.Accel_config.accel_name reason)
        | None -> ());
        op
    end
    else op
  in
  Pass.make "match-and-annotate" (fun m -> Ir.map_nested rewrite m)
