(* Emit index values for one affine expression at the current loop ivs. *)
let rec index_of_expr b ivs expr =
  match expr with
  | Affine_map.Dim d -> ivs.(d)
  | Affine_map.Cst c -> Arith.constant_index b c
  | Affine_map.Add (x, y) ->
    Arith.addi b (index_of_expr b ivs x) (index_of_expr b ivs y)
  | Affine_map.Mul (x, y) ->
    Arith.muli b (index_of_expr b ivs x) (index_of_expr b ivs y)

let lower_generic b (o : Ir.op) =
  let maps = Linalg.indexing_maps o in
  let ranges = Array.of_list (Linalg.loop_ranges o) in
  let n_dims = Array.length ranges in
  let n_ins = Linalg.num_inputs o in
  let kernel = Ir.single_block o in
  let ivs = Array.make n_dims (Ir.fresh_value Ty.index) in
  let rec loops d =
    if d = n_dims then body ()
    else
      Scf.for_range b ~lb:0 ~ub:ranges.(d) ~step:1 (fun b iv ->
          ivs.(d) <- iv;
          ignore b;
          loops (d + 1))
  and body () =
    (* Load one element per operand. *)
    let loaded =
      List.map2
        (fun map operand ->
          let indices = List.map (index_of_expr b ivs) map.Affine_map.exprs in
          Memref_d.load b operand indices)
        maps o.operands
    in
    (* Inline the kernel with block args bound to the loaded values. *)
    let env : (int, Ir.value) Hashtbl.t = Hashtbl.create 16 in
    List.iter2
      (fun (arg : Ir.value) v -> Hashtbl.replace env arg.vid v)
      kernel.bargs loaded;
    let subst (v : Ir.value) =
      match Hashtbl.find_opt env v.vid with Some v' -> v' | None -> v
    in
    List.iter
      (fun (kop : Ir.op) ->
        if kop.name = "linalg.yield" then begin
          (* Store yielded values into the outputs. *)
          let outputs = Util.list_drop n_ins o.operands in
          let out_maps = Util.list_drop n_ins maps in
          List.iteri
            (fun i yielded ->
              let dst = List.nth outputs i in
              let map = List.nth out_maps i in
              let indices = List.map (index_of_expr b ivs) map.Affine_map.exprs in
              Memref_d.store b (subst yielded) dst indices)
            kop.operands
        end
        else begin
          let results = List.map (fun (r : Ir.value) -> Ir.fresh_value r.vty) kop.results in
          List.iter2
            (fun (old_r : Ir.value) new_r -> Hashtbl.replace env old_r.vid new_r)
            kop.results results;
          Builder.emit b { kop with operands = List.map subst kop.operands; results }
        end)
      kernel.body
  in
  loops 0

let rewrite_func (f : Ir.op) =
  if not (Func.is_func f) then f
  else begin
    let block = Func.body_of f in
    let b = Builder.create () in
    List.iter
      (fun (op : Ir.op) ->
        if Linalg.is_generic op then lower_generic b op else Builder.emit b op)
      block.body;
    { f with regions = [ [ Ir.block ~args:block.bargs (Builder.finish b) ] ] }
  end

let pass =
  Pass.make "lower-linalg-to-loops" (fun m ->
      Ir.with_module_body m (List.map rewrite_func (Ir.module_body m)))
