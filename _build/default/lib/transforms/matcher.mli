(** Structural recognition of offloadable [linalg.generic] operations
    (step 3 of the compiler flow): the matcher inspects indexing maps,
    iterator types and the scalar kernel — not the [op_kind] label — so
    any front end producing the canonical generic form is matched. *)

val is_matmul : Ir.op -> bool
(** Maps [(m, n, k) -> (m, k) / (k, n) / (m, n)], iterators
    [parallel, parallel, reduction], kernel [c + a * b]. *)

val is_conv_2d_nchw_fchw : Ir.op -> bool
(** The 7-dimensional NCHW/FCHW convolution form built by
    {!Linalg.conv_2d_nchw_fchw}. *)

val matches_kind : string -> Ir.op -> bool
(** Dispatch on an {!Accel_config.t.op_kind} string. Unknown kinds
    match nothing. *)

val kernel_accumulates : Ir.op -> bool
(** True when the kernel yields [output + f(inputs)] — the output is
    read-modify-write, so received tiles must accumulate on the host
    whenever the accelerator's partial results are drained more than
    once (paper Fig. 6b's [mode = "accumulate"]). *)
