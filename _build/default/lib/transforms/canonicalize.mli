(** Constant canonicalisation: hoist every [arith.constant] to the
    function entry and deduplicate by value and type.

    This is the specialisation advantage generated driver code has over
    a hand-written library driver — loop bodies stop re-materialising
    opcode literals and offsets on every iteration. Applied to the
    accelerator pipeline only; the mlir_CPU baseline keeps the naive
    lowering, as in the paper. *)

val pass : Pass.t
