lib/transforms/lower_accel_to_runtime.mli: Pass
