lib/transforms/match_annotate.mli: Accel_config Host_config Ir Pass
