lib/transforms/coalesce_transfers.mli: Pass
