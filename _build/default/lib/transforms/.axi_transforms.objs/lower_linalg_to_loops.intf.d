lib/transforms/lower_linalg_to_loops.mli: Builder Ir Pass
