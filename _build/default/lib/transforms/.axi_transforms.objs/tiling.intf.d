lib/transforms/tiling.mli: Accel_config Affine_map Host_config Opcode
