lib/transforms/pipeline.mli: Accel_config Host_config Ir Match_annotate Pass
