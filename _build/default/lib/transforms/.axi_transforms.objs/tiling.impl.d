lib/transforms/tiling.ml: Accel_config Affine_map Array Host_config List Opcode Printf Result Util
