lib/transforms/canonicalize.mli: Pass
