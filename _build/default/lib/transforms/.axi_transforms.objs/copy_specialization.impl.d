lib/transforms/copy_specialization.ml: Attribute Ir List Pass Runtime_abi Ty
