lib/transforms/match_annotate.ml: Accel_config Ir Linalg List Matcher Opcode Pass Printf Result Tiling Trait Ty
