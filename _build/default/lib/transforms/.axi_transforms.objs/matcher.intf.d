lib/transforms/matcher.mli: Ir
