lib/transforms/copy_specialization.mli: Pass
