lib/transforms/matcher.ml: Affine_map Attribute Hashtbl Ir Linalg List Util
