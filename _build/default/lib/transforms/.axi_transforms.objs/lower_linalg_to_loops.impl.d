lib/transforms/lower_linalg_to_loops.ml: Affine_map Arith Array Builder Func Hashtbl Ir Linalg List Memref_d Pass Scf Ty Util
