lib/transforms/canonicalize.ml: Attribute Func Hashtbl Ir List Pass Ty
