lib/transforms/lower_accel_to_runtime.ml: Accel Arith Attribute Builder Func Ir List Pass Printf Runtime_abi Ty
