lib/transforms/coalesce_transfers.ml: Accel Array Ir List Pass
