lib/transforms/accel_codegen.ml: Accel Accel_config Affine_map Arith Array Attribute Builder Func Ir Linalg List Matcher Memref_d Opcode Pass Printf Scf Tiling Trait
