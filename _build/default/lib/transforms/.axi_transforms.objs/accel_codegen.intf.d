lib/transforms/accel_codegen.mli: Builder Ir Pass
