(** Step 5 of the compiler flow: host-code generation.

    Rewrites every trait-annotated [linalg.generic] into the paper's
    Fig. 6b structure: a (possibly two-level) tiled [scf.for] nest in
    the permuted loop order, with [memref.subview]s of the operand
    tiles and [accel] dialect operations placed according to the opcode
    flow's scope nesting — stationary transfers hoisted to the loop
    level their scope dictates.

    Placement rule: with D loops (cache-level tiles outermost, then the
    accelerator-tile loops, both in permuted order) and a flow of depth
    F, the first D-F loops wrap the whole flow; each nested flow scope
    opens the next loop. Opcodes before a sub-scope execute before the
    inner loop, opcodes after it execute after — which is exactly how
    an output-stationary "((sA sB cC) rC)" receives C once per tile.

    Per opcode, the offset chain starts at 0 and the last send-like
    action carries the [flush] marker, batching the opcode's words into
    a single DMA transfer (Sec. III-A's offset batching).

    [accel.dma_init] is emitted once per module (before the first
    annotated op); the trait's [init_opcodes] are emitted once per
    kernel. Receives use [mode = "accumulate"] when the kernel is an
    accumulation, so partial tiles drained across reduction iterations
    compose correctly. *)

val pass : Pass.t

val codegen_generic : Builder.t -> emit_dma_init:bool -> Ir.op -> unit
(** Emit the replacement for one annotated generic (exposed for
    tests). Raises [Failure] when the op has no trait. *)
