(** Step 3 of the compiler flow: find [linalg.generic] operations the
    configured accelerator supports and annotate them with the Fig. 6a
    trait (tile sizes resolved for the concrete problem, the derived
    loop permutation, the opcode map/flow, and the cache-level host
    tiles).

    Operations that structurally match but cannot be mapped (extent not
    divisible by the tile, operand tile exceeding the accelerator
    buffers, flow deeper than the loop nest) are left un-annotated and
    reported through [on_skip]. *)

type options = {
  flow : string option;  (** override the config's selected flow *)
  tile_override : int list option;  (** flexible-engine tile choice *)
  cpu_tiling : bool;  (** enable the cache-hierarchy tiling level *)
  double_buffer : bool;  (** request ping-pong input transfers (Sec. V) *)
  on_skip : (string -> unit) option;  (** called with the skip reason *)
}

val default_options : options
(** No overrides, [cpu_tiling = true], skips ignored. *)

val annotate_op :
  accel:Accel_config.t ->
  host:Host_config.t ->
  options:options ->
  Ir.op ->
  (Ir.op, string) result
(** Annotate one matching generic op (exposed for tests). *)

val pass : accel:Accel_config.t -> host:Host_config.t -> ?options:options -> unit -> Pass.t
