(** Transfer-request coalescing (the paper's Sec. V extension:
    "consolidates multiple start_send calls into a single call after
    data preparation, reducing the need for multiple wait_send calls").

    Operates on the [accel] dialect (so it must run before the runtime
    lowering): within each straight-line op sequence, consecutive
    send-like chains separated only by pure ops (constants, subviews,
    integer arithmetic) are merged — the later chain's base offset is
    rewired to continue the earlier chain's final offset, and only the
    last send-like op keeps the [flush] marker. One DMA transaction
    then carries several opcodes' words back to back; the accelerator
    decodes them sequentially, exactly as it would across separate
    transfers.

    Chains never merge across [accel.recv] (the receive must observe
    the completed sends), loops, calls, or any op with side effects. *)

val pass : Pass.t
