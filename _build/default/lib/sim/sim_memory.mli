(** The simulated main memory: named f32 buffers placed in a flat
    byte-address space by a bump allocator, so every element access has
    a concrete address for the cache simulator.

    Buffers model the paper's host-side tensors (the [memref]
    storage). The DMA regions live in a separate uncached address
    range managed by {!Dma_engine}. *)

type buffer = {
  base : int;  (** byte address of element 0 *)
  data : float array;
  label : string;
}

type t

val create : unit -> t

val alloc : t -> label:string -> int -> buffer
(** Allocate [n] f32 elements, 64-byte aligned, zero-initialised. *)

val alloc_init : t -> label:string -> float array -> buffer
(** Allocate and copy the given contents. *)

val addr_of : buffer -> int -> int
(** Byte address of element [i] (bounds-checked). *)

val get : buffer -> int -> float
val set : buffer -> int -> float -> unit

val footprint_bytes : t -> int
(** Total bytes allocated so far. *)
