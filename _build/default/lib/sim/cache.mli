(** Set-associative LRU cache hierarchy simulator.

    Drives the [cache_references]/miss counters and the memory-access
    component of the cycle model. Levels are inclusive; a fill installs
    the line in every level. Write misses allocate (write-allocate,
    write-back; write-back traffic is not modelled). *)

type geometry = { size_bytes : int; line_bytes : int; assoc : int }
(** One cache level. [size_bytes] must be a multiple of
    [line_bytes * assoc]; all three must be powers of two. *)

val cortex_a9_l1 : geometry
(** 32 KiB, 32-byte lines, 4-way. *)

val cortex_a9_l2 : geometry
(** 512 KiB, 32-byte lines, 8-way. *)

type t

val create : geometry list -> t
(** Hierarchy ordered from L1 outward. The list may be empty (all
    accesses become DRAM accesses). *)

val geometries : t -> geometry list

type access_result = {
  level_hit : int;  (** 1-based level that hit; [levels + 1] means DRAM *)
  lookups : int;  (** number of cache levels probed *)
}

val access : t -> int -> access_result
(** Look up a byte address, updating LRU state and filling on miss. *)

val access_range : t -> addr:int -> bytes:int -> touched:(int -> unit) -> unit
(** Probe every line overlapped by [addr, addr+bytes); calls [touched]
    with each access's hit level (for cost accounting). *)

val flush : t -> unit
(** Invalidate everything. *)

val resident : t -> level:int -> int -> bool
(** Whether the line containing the address is present at the 1-based
    level (probe without state change; for tests). *)
