type buffer = { base : int; data : float array; label : string }

type t = { mutable next : int }

(* Keep ordinary buffers well away from address 0 so they can never be
   confused with the DMA apertures, which Dma_engine places below. *)
let heap_base = 0x1000_0000

let create () = { next = heap_base }

let alloc t ~label n =
  if n < 0 then invalid_arg "Sim_memory.alloc: negative size";
  let base = Util.round_up t.next ~multiple:64 in
  t.next <- base + (n * 4);
  { base; data = Array.make n 0.0; label }

let alloc_init t ~label contents =
  let buf = alloc t ~label (Array.length contents) in
  Array.blit contents 0 buf.data 0 (Array.length contents);
  buf

let addr_of buf i =
  if i < 0 || i >= Array.length buf.data then
    invalid_arg
      (Printf.sprintf "Sim_memory.addr_of: index %d out of bounds for %s (%d elements)" i
         buf.label (Array.length buf.data));
  buf.base + (i * 4)

let get buf i =
  if i < 0 || i >= Array.length buf.data then
    invalid_arg
      (Printf.sprintf "Sim_memory.get: index %d out of bounds for %s" i buf.label);
  buf.data.(i)

let set buf i v =
  if i < 0 || i >= Array.length buf.data then
    invalid_arg
      (Printf.sprintf "Sim_memory.set: index %d out of bounds for %s" i buf.label);
  buf.data.(i) <- v

let footprint_bytes t = t.next - heap_base
