type geometry = { size_bytes : int; line_bytes : int; assoc : int }

let cortex_a9_l1 = { size_bytes = 32 * 1024; line_bytes = 32; assoc = 4 }
let cortex_a9_l2 = { size_bytes = 512 * 1024; line_bytes = 32; assoc = 8 }

type level = {
  geom : geometry;
  n_sets : int;
  tags : int array;  (* n_sets * assoc; -1 = invalid *)
  ages : int array;  (* LRU timestamps *)
  mutable clock : int;
}

type t = { levels : level list }

let make_level geom =
  if not (Util.is_pow2 geom.line_bytes) || not (Util.is_pow2 geom.size_bytes) then
    invalid_arg "Cache: geometry sizes must be powers of two";
  if geom.size_bytes mod (geom.line_bytes * geom.assoc) <> 0 then
    invalid_arg "Cache: size must be a multiple of line_bytes * assoc";
  let n_sets = geom.size_bytes / (geom.line_bytes * geom.assoc) in
  {
    geom;
    n_sets;
    tags = Array.make (n_sets * geom.assoc) (-1);
    ages = Array.make (n_sets * geom.assoc) 0;
    clock = 0;
  }

let create geoms = { levels = List.map make_level geoms }

let geometries t = List.map (fun l -> l.geom) t.levels

type access_result = { level_hit : int; lookups : int }

(* Probe one level: returns true on hit; installs the line and updates
   LRU either way. *)
let probe level addr =
  let line = addr / level.geom.line_bytes in
  let set = line mod level.n_sets in
  let tag = line / level.n_sets in
  let base = set * level.geom.assoc in
  level.clock <- level.clock + 1;
  let hit_way = ref (-1) in
  for way = 0 to level.geom.assoc - 1 do
    if level.tags.(base + way) = tag then hit_way := way
  done;
  if !hit_way >= 0 then begin
    level.ages.(base + !hit_way) <- level.clock;
    true
  end
  else begin
    (* Evict the LRU way. *)
    let victim = ref 0 in
    for way = 1 to level.geom.assoc - 1 do
      if level.ages.(base + way) < level.ages.(base + !victim) then victim := way
    done;
    level.tags.(base + !victim) <- tag;
    level.ages.(base + !victim) <- level.clock;
    false
  end

let access t addr =
  let rec go levels n =
    match levels with
    | [] -> { level_hit = n; lookups = n - 1 }
    | level :: rest -> if probe level addr then { level_hit = n; lookups = n } else go rest (n + 1)
  in
  go t.levels 1

let access_range t ~addr ~bytes ~touched =
  if bytes > 0 then begin
    let line_bytes =
      match t.levels with [] -> 64 | level :: _ -> level.geom.line_bytes
    in
    let first = addr / line_bytes in
    let last = (addr + bytes - 1) / line_bytes in
    for line = first to last do
      let r = access t (line * line_bytes) in
      touched r.level_hit
    done
  end

let flush t =
  List.iter
    (fun level ->
      Array.fill level.tags 0 (Array.length level.tags) (-1);
      Array.fill level.ages 0 (Array.length level.ages) 0;
      level.clock <- 0)
    t.levels

let resident t ~level addr =
  match List.nth_opt t.levels (level - 1) with
  | None -> false
  | Some l ->
    let line = addr / l.geom.line_bytes in
    let set = line mod l.n_sets in
    let tag = line / l.n_sets in
    let base = set * l.geom.assoc in
    let found = ref false in
    for way = 0 to l.geom.assoc - 1 do
      if l.tags.(base + way) = tag then found := true
    done;
    !found
