(** Common interface between the DMA engine and accelerator models.

    A device consumes inbound AXI-S transactions (decoding its
    micro-ISA), accumulates compute time in its own clock domain, and
    queues output elements for the host to drain. *)

type t = {
  device_name : string;
  consume : Axi_word.t array -> float;
      (** Process one inbound transaction; returns accelerator cycles
          spent on any compute the transaction triggered. Raises
          [Failure] on words the device's ISA cannot decode. *)
  drain : int -> float array;
      (** Remove [n] elements from the output queue. Raises [Failure]
          when fewer are available (host/driver protocol bug). *)
  available : unit -> int;  (** queued output elements *)
  reset_device : unit -> unit;
}
