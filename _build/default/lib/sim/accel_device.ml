type t = {
  device_name : string;
  consume : Axi_word.t array -> float;
  drain : int -> float array;
  available : unit -> int;
  reset_device : unit -> unit;
}
