type t = {
  mutable cycles : float;
  mutable instructions : float;
  mutable branches : float;
  mutable l1_accesses : float;
  mutable l1_misses : float;
  mutable l2_accesses : float;
  mutable l2_misses : float;
  mutable dma_transactions : float;
  mutable dma_words_sent : float;
  mutable dma_words_received : float;
  mutable accel_busy_cycles : float;
  mutable flops : float;
}

let create () =
  {
    cycles = 0.0;
    instructions = 0.0;
    branches = 0.0;
    l1_accesses = 0.0;
    l1_misses = 0.0;
    l2_accesses = 0.0;
    l2_misses = 0.0;
    dma_transactions = 0.0;
    dma_words_sent = 0.0;
    dma_words_received = 0.0;
    accel_busy_cycles = 0.0;
    flops = 0.0;
  }

let reset c =
  c.cycles <- 0.0;
  c.instructions <- 0.0;
  c.branches <- 0.0;
  c.l1_accesses <- 0.0;
  c.l1_misses <- 0.0;
  c.l2_accesses <- 0.0;
  c.l2_misses <- 0.0;
  c.dma_transactions <- 0.0;
  c.dma_words_sent <- 0.0;
  c.dma_words_received <- 0.0;
  c.accel_busy_cycles <- 0.0;
  c.flops <- 0.0

let copy c = { c with cycles = c.cycles }

let cache_references c = c.l1_accesses +. c.l2_accesses

let task_clock_ms c ~cpu_freq_mhz = c.cycles /. (cpu_freq_mhz *. 1000.0)

let add a b =
  {
    cycles = a.cycles +. b.cycles;
    instructions = a.instructions +. b.instructions;
    branches = a.branches +. b.branches;
    l1_accesses = a.l1_accesses +. b.l1_accesses;
    l1_misses = a.l1_misses +. b.l1_misses;
    l2_accesses = a.l2_accesses +. b.l2_accesses;
    l2_misses = a.l2_misses +. b.l2_misses;
    dma_transactions = a.dma_transactions +. b.dma_transactions;
    dma_words_sent = a.dma_words_sent +. b.dma_words_sent;
    dma_words_received = a.dma_words_received +. b.dma_words_received;
    accel_busy_cycles = a.accel_busy_cycles +. b.accel_busy_cycles;
    flops = a.flops +. b.flops;
  }

let map2 f a b =
  {
    cycles = f a.cycles b.cycles;
    instructions = f a.instructions b.instructions;
    branches = f a.branches b.branches;
    l1_accesses = f a.l1_accesses b.l1_accesses;
    l1_misses = f a.l1_misses b.l1_misses;
    l2_accesses = f a.l2_accesses b.l2_accesses;
    l2_misses = f a.l2_misses b.l2_misses;
    dma_transactions = f a.dma_transactions b.dma_transactions;
    dma_words_sent = f a.dma_words_sent b.dma_words_sent;
    dma_words_received = f a.dma_words_received b.dma_words_received;
    accel_busy_cycles = f a.accel_busy_cycles b.accel_busy_cycles;
    flops = f a.flops b.flops;
  }

let diff a b = map2 ( -. ) a b

let scale a factor = map2 (fun x _ -> x *. factor) a a

let accumulate target delta =
  target.cycles <- target.cycles +. delta.cycles;
  target.instructions <- target.instructions +. delta.instructions;
  target.branches <- target.branches +. delta.branches;
  target.l1_accesses <- target.l1_accesses +. delta.l1_accesses;
  target.l1_misses <- target.l1_misses +. delta.l1_misses;
  target.l2_accesses <- target.l2_accesses +. delta.l2_accesses;
  target.l2_misses <- target.l2_misses +. delta.l2_misses;
  target.dma_transactions <- target.dma_transactions +. delta.dma_transactions;
  target.dma_words_sent <- target.dma_words_sent +. delta.dma_words_sent;
  target.dma_words_received <- target.dma_words_received +. delta.dma_words_received;
  target.accel_busy_cycles <- target.accel_busy_cycles +. delta.accel_busy_cycles;
  target.flops <- target.flops +. delta.flops

let to_string c =
  Printf.sprintf
    "cycles=%.0f branches=%.0f cache_refs=%.0f (L1 %.0f/%.0f miss, L2 %.0f/%.0f miss) \
     dma_txn=%.0f words=%.0f/%.0f accel_cycles=%.0f flops=%.0f"
    c.cycles c.branches (cache_references c) c.l1_accesses c.l1_misses c.l2_accesses
    c.l2_misses c.dma_transactions c.dma_words_sent c.dma_words_received
    c.accel_busy_cycles c.flops
