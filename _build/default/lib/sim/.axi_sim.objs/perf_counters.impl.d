lib/sim/perf_counters.ml: Printf
