lib/sim/isa.ml: Printf
