lib/sim/accel_matmul.ml: Accel_device Array Axi_word Isa Printf Queue
