lib/sim/accel_conv.mli: Accel_device
