lib/sim/accel_device.ml: Axi_word
