lib/sim/axi_word.mli:
