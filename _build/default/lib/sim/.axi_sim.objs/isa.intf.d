lib/sim/isa.mli:
