lib/sim/accel_conv.ml: Accel_device Array Axi_word Isa Printf Queue
