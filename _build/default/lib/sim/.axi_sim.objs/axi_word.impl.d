lib/sim/axi_word.ml: Printf
