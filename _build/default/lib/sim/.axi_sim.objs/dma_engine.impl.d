lib/sim/dma_engine.ml: Accel_device Array Axi_word Cost_model Float Perf_counters Printf
