lib/sim/cache.mli:
