lib/sim/sim_memory.ml: Array Printf Util
