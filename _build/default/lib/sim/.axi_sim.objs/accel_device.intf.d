lib/sim/accel_device.mli: Axi_word
