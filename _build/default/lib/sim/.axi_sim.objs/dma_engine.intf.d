lib/sim/dma_engine.mli: Accel_device Axi_word Cost_model Perf_counters
