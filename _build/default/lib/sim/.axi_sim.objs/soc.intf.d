lib/sim/soc.mli: Accel_device Cache Cost_model Dma_engine Perf_counters Sim_memory
