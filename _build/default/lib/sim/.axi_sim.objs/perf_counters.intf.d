lib/sim/perf_counters.mli:
