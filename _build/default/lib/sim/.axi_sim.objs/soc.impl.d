lib/sim/soc.ml: Cache Cost_model Dma_engine List Perf_counters Printf Sim_memory Util
