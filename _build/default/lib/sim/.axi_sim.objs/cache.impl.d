lib/sim/cache.ml: Array List Util
