lib/sim/accel_matmul.mli: Accel_device
