lib/sim/sim_memory.mli:
