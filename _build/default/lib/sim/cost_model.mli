(** The event-cost model of the simulated SoC.

    Calibrated against the paper's platform (PYNQ-Z2: dual-core ARM
    Cortex-A9 at 650 MHz, accelerators synthesised at 200 MHz, AXI-S
    DMA engines). The individual constants are ordinary
    microarchitecture numbers — the paper's result shapes must emerge
    from the mechanisms (locality, transfer counts, copy
    specialisation), not from fitting. *)

type t = {
  cpu_freq_mhz : float;
  accel_freq_mhz : float;
  bus_words_per_cpu_cycle : float;
      (** AXI-S streaming rate seen from the CPU clock domain: a 32-bit
          word every [1 / this] CPU cycles. *)
  dma_program_cycles : float;
      (** CPU cycles to program a DMA descriptor and start a transfer
          ([dma_start_send]/[dma_start_recv]). *)
  dma_wait_cycles : float;
      (** CPU cycles of completion-polling overhead per wait call. *)
  alu_cycles : float;  (** integer ALU op *)
  fpu_cycles : float;  (** scalar FP add/mul *)
  branch_cycles : float;  (** predicted branch *)
  loop_overhead_cycles : float;  (** per-iteration cmp+inc+branch beyond the counted branch *)
  l1_hit_cycles : float;
  l2_hit_cycles : float;  (** additional cycles on an L1 miss that hits L2 *)
  dram_cycles : float;  (** additional cycles on an L2 miss *)
  uncached_store_cycles : float;
      (** store to the uncached DMA region (write-combined) per word *)
  uncached_load_cycles : float;  (** load from the uncached DMA region per word *)
  memcpy_row_setup_cycles : float;
      (** per-run setup of the specialised copy (the compiler inlines
          the [memcpy], so this is address setup, not a call) *)
  vector_chunk_bytes : int;  (** width of a vectorised copy chunk (NEON: 16) *)
  elementwise_element_overhead_cycles : float;
      (** per-element stride arithmetic + loop body of the generic
          rank-N memref copy (excludes the cache access itself) *)
  memref_metadata_accesses : float;
      (** per-element size/stride struct loads of the generic copy
          (cache accesses, typically L1 hits) *)
}

val default : t
(** PYNQ-Z2-flavoured defaults (650/200 MHz etc.). *)

val accel_to_cpu_cycles : t -> float -> float
(** Convert accelerator cycles to CPU cycles. *)

val cpu_cycles_per_word : t -> float
(** CPU cycles per streamed 32-bit word. *)
