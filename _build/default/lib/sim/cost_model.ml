type t = {
  cpu_freq_mhz : float;
  accel_freq_mhz : float;
  bus_words_per_cpu_cycle : float;
  dma_program_cycles : float;
  dma_wait_cycles : float;
  alu_cycles : float;
  fpu_cycles : float;
  branch_cycles : float;
  loop_overhead_cycles : float;
  l1_hit_cycles : float;
  l2_hit_cycles : float;
  dram_cycles : float;
  uncached_store_cycles : float;
  uncached_load_cycles : float;
  memcpy_row_setup_cycles : float;
  vector_chunk_bytes : int;
  elementwise_element_overhead_cycles : float;
  memref_metadata_accesses : float;
}

(* PYNQ-Z2: Cortex-A9 @ 650 MHz; accelerators @ 200 MHz; AXI-S DMA on
   the 32-bit high-performance port, streaming roughly one word per
   ~5 CPU cycles once started; starting/collecting a transfer costs on
   the order of a thousand cycles (descriptor writes over the GP port,
   cache maintenance, completion polling). *)
let default =
  {
    cpu_freq_mhz = 650.0;
    accel_freq_mhz = 200.0;
    bus_words_per_cpu_cycle = 0.2;
    dma_program_cycles = 1800.0;
    dma_wait_cycles = 700.0;
    alu_cycles = 1.0;
    fpu_cycles = 2.0;
    branch_cycles = 1.0;
    loop_overhead_cycles = 2.0;
    l1_hit_cycles = 1.0;
    l2_hit_cycles = 8.0;
    dram_cycles = 60.0;
    uncached_store_cycles = 1.5;
    uncached_load_cycles = 4.0;
    memcpy_row_setup_cycles = 4.0;
    vector_chunk_bytes = 16;
    elementwise_element_overhead_cycles = 4.0;
    memref_metadata_accesses = 2.0;
  }

let accel_to_cpu_cycles t accel_cycles = accel_cycles *. t.cpu_freq_mhz /. t.accel_freq_mhz

let cpu_cycles_per_word t = 1.0 /. t.bus_words_per_cpu_cycle
