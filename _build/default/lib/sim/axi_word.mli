(** Words on the AXI-Stream link.

    Real hardware streams untyped 32-bit beats; the accelerator's
    decoder knows from its micro-ISA state whether the next beat is an
    instruction or data. We keep the distinction in the type so decoder
    bugs surface as errors instead of silent float/int punning. *)

type t =
  | Inst of int  (** an opcode literal, dimension, or index word *)
  | Data of float  (** one f32 element *)

val to_string : t -> string

val expect_inst : t -> int
(** Raises [Failure] when the word is data (decoder desync). *)

val expect_data : t -> float
