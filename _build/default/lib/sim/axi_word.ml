type t = Inst of int | Data of float

let to_string = function
  | Inst i -> Printf.sprintf "inst:0x%X" i
  | Data f -> Printf.sprintf "data:%g" f

let expect_inst = function
  | Inst i -> i
  | Data f -> failwith (Printf.sprintf "AXI stream desync: expected instruction, got data %g" f)

let expect_data = function
  | Data f -> f
  | Inst i -> failwith (Printf.sprintf "AXI stream desync: expected data, got instruction 0x%X" i)
