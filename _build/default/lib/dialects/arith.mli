(** The [arith] dialect: constants and scalar arithmetic. *)

val constant_index : Builder.t -> int -> Ir.value
val constant_i32 : Builder.t -> int -> Ir.value
val constant_f32 : Builder.t -> float -> Ir.value

val addi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val subi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val muli : Builder.t -> Ir.value -> Ir.value -> Ir.value
(** Integer/index ops; both operands must share the operand type. *)

val addf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val mulf : Builder.t -> Ir.value -> Ir.value -> Ir.value

val index_cast : Builder.t -> Ir.value -> Ir.value
(** [arith.index_cast]: index -> i32 (or i32 -> index). *)

val const_value : Ir.op -> Attribute.t
(** The [value] attribute of an [arith.constant]. *)

val register : unit -> unit
