let func_name = "func.func"
let return_name = "func.return"
let call_name = "func.call"

let func_op ~name ~args ?(results = []) build_body =
  let arg_values = List.map Ir.fresh_value args in
  let b = Builder.create () in
  build_body b arg_values;
  let body = Builder.finish b in
  Ir.op func_name
    ~attrs:
      [
        ("sym_name", Attribute.Str name);
        ("function_type", Attribute.Type_attr (Ty.Func (args, results)));
      ]
    ~regions:[ [ Ir.block ~args:arg_values body ] ]

let return_op b values = Builder.emit b (Ir.op return_name ~operands:values)

let call b ~callee ?(results = []) operands =
  let result_values = List.map Ir.fresh_value results in
  Builder.emit b
    (Ir.op call_name ~operands ~results:result_values
       ~attrs:[ ("callee", Attribute.Str callee) ]);
  result_values

let name_of o =
  if o.Ir.name <> func_name then invalid_arg "Func.name_of: not a func.func";
  Attribute.get_str (Ir.attr_exn o "sym_name")

let body_of o =
  if o.Ir.name <> func_name then invalid_arg "Func.body_of: not a func.func";
  Ir.single_block o

let is_func o = o.Ir.name = func_name

let find_func module_op name =
  List.find_opt
    (fun o -> is_func o && name_of o = name)
    (Ir.module_body module_op)

let verify_func (o : Ir.op) =
  match (Ir.attr o "sym_name", Ir.attr o "function_type") with
  | Some (Str _), Some (Type_attr (Ty.Func (args, _))) ->
    let block = Ir.single_block o in
    if List.length block.bargs <> List.length args then
      Error "entry block arguments do not match the function type"
    else if
      not
        (List.for_all2
           (fun (v : Ir.value) ty -> Ty.equal v.vty ty)
           block.bargs args)
    then Error "entry block argument types do not match the function type"
    else begin
      match List.rev block.body with
      | last :: _ when last.name = return_name -> Ok ()
      | _ -> Error "function body does not end with func.return"
    end
  | _ -> Error "missing sym_name or function_type attribute"

let verify_call (o : Ir.op) =
  match Ir.attr o "callee" with
  | Some (Str _) -> Ok ()
  | Some _ | None -> Error "missing or non-string callee attribute"

let registered =
  lazy
    (Verifier.register_op_verifier func_name verify_func;
     Verifier.register_op_verifier call_name verify_call)

let register () = Lazy.force registered
