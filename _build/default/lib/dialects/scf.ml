let for_name = "scf.for"
let yield_name = "scf.yield"

let for_ b ~lb ~ub ~step build_body =
  let iv = Ir.fresh_value Ty.index in
  let body =
    Builder.nest b (fun () ->
        build_body b iv;
        Builder.emit b (Ir.op yield_name))
  in
  Builder.emit b
    (Ir.op for_name ~operands:[ lb; ub; step ] ~regions:[ [ Ir.block ~args:[ iv ] body ] ])

let for_range b ~lb ~ub ~step build_body =
  let lb = Arith.constant_index b lb in
  let ub = Arith.constant_index b ub in
  let step = Arith.constant_index b step in
  for_ b ~lb ~ub ~step build_body

let induction_var (o : Ir.op) =
  if o.name <> for_name then invalid_arg "Scf.induction_var: not an scf.for";
  match (Ir.single_block o).bargs with
  | [ iv ] -> iv
  | _ -> invalid_arg "Scf.induction_var: malformed scf.for"

let loop_body (o : Ir.op) =
  if o.name <> for_name then invalid_arg "Scf.loop_body: not an scf.for";
  List.filter (fun (op : Ir.op) -> op.name <> yield_name) (Ir.single_block o).body

let static_bounds func_op for_op =
  let constants = Hashtbl.create 16 in
  Ir.walk
    (fun (o : Ir.op) ->
      if o.name = "arith.constant" then
        match (o.results, Ir.attr o "value") with
        | [ r ], Some (Attribute.Int n) -> Hashtbl.replace constants r.Ir.vid n
        | _ -> ())
    func_op;
  match for_op.Ir.operands with
  | [ lb; ub; step ] -> (
    match
      ( Hashtbl.find_opt constants lb.Ir.vid,
        Hashtbl.find_opt constants ub.Ir.vid,
        Hashtbl.find_opt constants step.Ir.vid )
    with
    | Some lb, Some ub, Some step -> Some (lb, ub, step)
    | _ -> None)
  | _ -> None

let verify_for (o : Ir.op) =
  match o.operands with
  | [ lb; ub; step ] ->
    if
      not
        (List.for_all (fun (v : Ir.value) -> Ty.equal v.vty Ty.index) [ lb; ub; step ])
    then Error "loop bounds must be index-typed"
    else begin
      let block = Ir.single_block o in
      match block.bargs with
      | [ iv ] ->
        if not (Ty.equal iv.Ir.vty Ty.index) then
          Error "induction variable must be index-typed"
        else begin
          match List.rev block.body with
          | last :: _ when last.Ir.name = yield_name -> Ok ()
          | _ -> Error "loop body must end with scf.yield"
        end
      | _ -> Error "loop body must have exactly one block argument"
    end
  | _ -> Error "scf.for requires exactly lb, ub and step operands"

let registered = lazy (Verifier.register_op_verifier for_name verify_for)
let register () = Lazy.force registered
