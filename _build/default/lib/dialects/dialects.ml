let register_all () =
  Func.register ();
  Arith.register ();
  Memref_d.register ();
  Scf.register ();
  Linalg.register ();
  Accel.register ()
