lib/dialects/dialects.ml: Accel Arith Func Linalg Memref_d Scf
