lib/dialects/scf.ml: Arith Attribute Builder Hashtbl Ir Lazy List Ty Verifier
