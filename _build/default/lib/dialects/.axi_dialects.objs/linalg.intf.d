lib/dialects/linalg.mli: Affine_map Builder Ir
