lib/dialects/func.ml: Attribute Builder Ir Lazy List Ty Verifier
