lib/dialects/scf.mli: Builder Ir
