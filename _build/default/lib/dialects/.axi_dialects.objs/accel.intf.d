lib/dialects/accel.mli: Builder Ir
