lib/dialects/accel.ml: Arith Attribute Builder Ir Lazy List Printf Ty Verifier
