lib/dialects/arith.ml: Attribute Builder Ir Lazy List Printf Ty Verifier
