lib/dialects/func.mli: Builder Ir Ty
