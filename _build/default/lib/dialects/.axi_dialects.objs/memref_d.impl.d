lib/dialects/memref_d.ml: Attribute Builder Ir Lazy List Printf Ty Verifier
