lib/dialects/memref_d.mli: Builder Ir Ty
