lib/dialects/arith.mli: Attribute Builder Ir
