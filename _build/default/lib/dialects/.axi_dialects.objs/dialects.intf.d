lib/dialects/dialects.mli:
