lib/dialects/linalg.ml: Affine_map Arith Array Attribute Builder Ir Lazy List Printf Ty Util Verifier
