let constant b attr ty =
  Builder.emit_result b
    (Ir.op "arith.constant" ~results:[ Ir.fresh_value ty ] ~attrs:[ ("value", attr) ])

let constant_index b n = constant b (Attribute.Int n) Ty.index
let constant_i32 b n = constant b (Attribute.Int n) Ty.i32
let constant_f32 b f = constant b (Attribute.Float f) Ty.f32

let binop name b lhs rhs =
  if not (Ty.equal lhs.Ir.vty rhs.Ir.vty) then
    invalid_arg
      (Printf.sprintf "%s: operand types differ (%s vs %s)" name
         (Ty.to_string lhs.Ir.vty) (Ty.to_string rhs.Ir.vty));
  Builder.emit_result b
    (Ir.op name ~operands:[ lhs; rhs ] ~results:[ Ir.fresh_value lhs.Ir.vty ])

let addi b = binop "arith.addi" b
let subi b = binop "arith.subi" b
let muli b = binop "arith.muli" b
let addf b = binop "arith.addf" b
let mulf b = binop "arith.mulf" b

let index_cast b v =
  let target =
    if Ty.equal v.Ir.vty Ty.index then Ty.i32
    else if Ty.equal v.Ir.vty Ty.i32 then Ty.index
    else invalid_arg "arith.index_cast: operand must be index or i32"
  in
  Builder.emit_result b
    (Ir.op "arith.index_cast" ~operands:[ v ] ~results:[ Ir.fresh_value target ])

let const_value (o : Ir.op) =
  if o.name <> "arith.constant" then invalid_arg "Arith.const_value: not a constant";
  Ir.attr_exn o "value"

let verify_constant (o : Ir.op) =
  match (o.results, Ir.attr o "value") with
  | [ _ ], Some (Attribute.Int _ | Attribute.Float _ | Attribute.Bool _) -> Ok ()
  | [ _ ], _ -> Error "constant requires an int, float or bool value attribute"
  | _, _ -> Error "constant must have exactly one result"

let verify_binop (o : Ir.op) =
  match (o.operands, o.results) with
  | [ a; b ], [ r ] ->
    if Ty.equal a.Ir.vty b.Ir.vty && Ty.equal a.Ir.vty r.Ir.vty then Ok ()
    else Error "operand and result types must all match"
  | _ -> Error "binary op requires two operands and one result"

let registered =
  lazy
    (Verifier.register_op_verifier "arith.constant" verify_constant;
     List.iter
       (fun name -> Verifier.register_op_verifier name verify_binop)
       [ "arith.addi"; "arith.subi"; "arith.muli"; "arith.addf"; "arith.mulf" ])

let register () = Lazy.force registered
