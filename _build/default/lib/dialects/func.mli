(** The [func] dialect: functions, calls and returns. *)

val func_op :
  name:string ->
  args:Ty.t list ->
  ?results:Ty.t list ->
  (Builder.t -> Ir.value list -> unit) ->
  Ir.op
(** Build a [func.func]. The callback receives a fresh builder and the
    block-argument values; it must emit a terminating {!return_op}
    itself (the verifier checks this). *)

val return_op : Builder.t -> Ir.value list -> unit
(** Emit [func.return]. *)

val call :
  Builder.t -> callee:string -> ?results:Ty.t list -> Ir.value list -> Ir.value list
(** Emit [func.call @callee(...)] and return the result values. *)

val name_of : Ir.op -> string
(** [sym_name] of a [func.func]. *)

val body_of : Ir.op -> Ir.block
(** Entry (single) block of a [func.func]. *)

val find_func : Ir.op -> string -> Ir.op option
(** Look up a function by name in a [builtin.module]. *)

val is_func : Ir.op -> bool

val register : unit -> unit
(** Ensure this dialect's verifiers are registered (idempotent). *)
