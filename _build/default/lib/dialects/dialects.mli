(** Umbrella for the dialect libraries. *)

val register_all : unit -> unit
(** Register the verifiers of every dialect ([func], [arith], [memref],
    [scf], [linalg], [accel]). Idempotent; call before running
    {!Verifier.verify} or a pass pipeline. *)
