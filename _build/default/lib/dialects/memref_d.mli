(** The [memref] dialect: buffer allocation, strided subviews, and
    element access. (Named [Memref_d] to avoid clashing with the
    [Ty.memref] payload type.) *)

val alloc : Builder.t -> Ty.t -> Ir.value
(** [memref.alloc] of a memref type with identity layout. *)

val dealloc : Builder.t -> Ir.value -> unit

val subview :
  Builder.t -> Ir.value -> offsets:Ir.value list -> sizes:int list -> Ir.value
(** [memref.subview %src[%o0, %o1][s0, s1][1, 1]]: dynamic offsets
    (one SSA index per dimension), static sizes, unit steps. The result
    type has the source strides and a dynamic offset. *)

val load : Builder.t -> Ir.value -> Ir.value list -> Ir.value
(** [memref.load %m[%i, %j]]; result is the element type. *)

val store : Builder.t -> Ir.value -> Ir.value -> Ir.value list -> unit
(** [store b %value %m indices]. *)

val dim_size : Ir.value -> int -> int
(** Static extent of dimension [d] of a memref-typed value. *)

val register : unit -> unit
