(** The [linalg] dialect: the [linalg.generic] structured operation and
    named-op builders for matrix multiplication and 2-D convolution.

    A [linalg.generic] (paper Fig. 2a) carries:
    - [indexing_maps]: one affine map per operand, from the iteration
      space to that operand's indices;
    - [iterator_types]: ["parallel"] or ["reduction"] per dimension;
    - a scalar kernel region whose block arguments are one element per
      operand, terminated by [linalg.yield] of the output elements.

    AXI4MLIR's trait extensions ([accel_dim], [opcode_map], ...) are
    attached to this op as additional attributes by the
    [Match_annotate] pass. *)

val parallel : string
val reduction : string

val generic :
  Builder.t ->
  indexing_maps:Affine_map.t list ->
  iterator_types:string list ->
  inputs:Ir.value list ->
  outputs:Ir.value list ->
  ?op_kind:string ->
  (Builder.t -> Ir.value list -> unit) ->
  Ir.op
(** Build and emit a [linalg.generic]. The kernel callback receives one
    scalar block argument per operand (inputs then outputs) and must end
    by calling {!yield}. Returns the emitted op. [op_kind] is a
    convenience label recording the named op this generic was derived
    from (["matmul"], ["conv_2d_nchw_fchw"]). *)

val yield : Builder.t -> Ir.value list -> unit

val matmul : Builder.t -> a:Ir.value -> b:Ir.value -> c:Ir.value -> Ir.op
(** [C(m, n) += A(m, k) * B(k, n)] as a [linalg.generic] with the
    canonical maps [(m, n, k) -> (m, k) / (k, n) / (m, n)] and iterator
    types [parallel, parallel, reduction]. *)

val conv_2d_nchw_fchw :
  ?stride:int ->
  Builder.t ->
  input:Ir.value ->
  filter:Ir.value ->
  output:Ir.value ->
  Ir.op
(** [O(n, f, oh, ow) += I(n, c, s*oh + fh, s*ow + fw) * W(f, c, fh, fw)]
    over iteration space (n, f, oh, ow, c, fh, fw); [stride] s defaults
    to 1. *)

val conv_stride_of : Ir.op -> int option
(** The spatial stride of a conv-shaped generic ([Some 1] for the plain
    form); [None] if the op is not a conv generic. *)

(** {1 Accessors} *)

val is_generic : Ir.op -> bool
val indexing_maps : Ir.op -> Affine_map.t list
val iterator_types : Ir.op -> string list
val num_inputs : Ir.op -> int
val inputs : Ir.op -> Ir.value list
val outputs : Ir.op -> Ir.value list
val op_kind : Ir.op -> string option

val loop_ranges : Ir.op -> int list
(** Extent of each iteration-space dimension, recovered from operand
    shapes through the indexing maps. Raises [Invalid_argument] when a
    dimension cannot be inferred (never happens for maps built from
    projections of plain dims appearing at least once). *)

val register : unit -> unit
