(** A small self-contained JSON implementation.

    Accelerator/host configuration files (Fig. 5 of the paper) are JSON;
    no external JSON package is vendored, so this module provides the
    subset we need: full parsing of standard JSON (objects, arrays,
    strings with escapes, numbers, booleans, null), a printer, and typed
    accessor helpers with located error messages. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a message containing line/column. *)

val of_string : string -> t
(** Parse a JSON document. Raises {!Parse_error}. *)

val to_string : ?indent:int -> t -> string
(** Print a JSON document. [indent > 0] pretty-prints. *)

(** {1 Typed accessors}

    All accessors raise {!Type_error} with a path-qualified message on
    mismatch, so configuration errors point at the offending field. *)

exception Type_error of string

val member : string -> t -> t
(** [member key json] is the value bound to [key] in an object;
    [Null] if the key is absent. Raises {!Type_error} if not an object. *)

val member_opt : string -> t -> t option
(** As {!member} but [None] when absent. *)

val to_int : t -> int
(** Accepts [Int] and integral [Float]. *)

val to_float : t -> float
val to_bool : t -> bool
val to_str : t -> string
val to_list : t -> t list
val to_obj : t -> (string * t) list
