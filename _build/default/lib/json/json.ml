type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
exception Type_error of string

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "line %d, column %d: %s" st.line st.col msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %c, found %c" c c')
  | None -> error st (Printf.sprintf "expected %c, found end of input" c)

let expect_keyword st kw =
  String.iter (fun c -> expect st c) kw

let parse_hex4 st =
  let value = ref 0 in
  for _ = 1 to 4 do
    let digit =
      match peek st with
      | Some c when c >= '0' && c <= '9' -> Char.code c - Char.code '0'
      | Some c when c >= 'a' && c <= 'f' -> Char.code c - Char.code 'a' + 10
      | Some c when c >= 'A' && c <= 'F' -> Char.code c - Char.code 'A' + 10
      | Some c -> error st (Printf.sprintf "invalid hex digit %c" c)
      | None -> error st "unterminated \\u escape"
    in
    advance st;
    value := (!value * 16) + digit
  done;
  !value

(* Encode a Unicode code point as UTF-8 into the buffer. *)
let buffer_add_codepoint buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'u' ->
        advance st;
        let cp = parse_hex4 st in
        (* Combine surrogate pairs when present. *)
        if cp >= 0xD800 && cp <= 0xDBFF then begin
          expect st '\\';
          expect st 'u';
          let low = parse_hex4 st in
          if low < 0xDC00 || low > 0xDFFF then error st "invalid surrogate pair";
          let combined = 0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00) in
          buffer_add_codepoint buf combined
        end
        else buffer_add_codepoint buf cp
      | Some c -> error st (Printf.sprintf "invalid escape \\%c" c)
      | None -> error st "unterminated escape");
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume_digits () =
    let rec go () =
      match peek st with
      | Some c when c >= '0' && c <= '9' ->
        advance st;
        go ()
      | Some _ | None -> ()
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | Some _ | None -> ());
  consume_digits ();
  (match peek st with
  | Some '.' ->
    is_float := true;
    advance st;
    consume_digits ()
  | Some _ | None -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | Some _ | None -> ());
    consume_digits ()
  | Some _ | None -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error st (Printf.sprintf "invalid number %s" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Fall back to float for integers exceeding native int range. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error st (Printf.sprintf "invalid number %s" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string st)
  | Some 't' ->
    expect_keyword st "true";
    Bool true
  | Some 'f' ->
    expect_keyword st "false";
    Bool false
  | Some 'n' ->
    expect_keyword st "null";
    Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %c" c)
  | None -> error st "unexpected end of input"

and parse_obj st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' ->
    advance st;
    Obj []
  | _ ->
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ((key, value) :: acc)
      | Some '}' ->
        advance st;
        Obj (List.rev ((key, value) :: acc))
      | Some c -> error st (Printf.sprintf "expected , or } in object, found %c" c)
      | None -> error st "unterminated object"
    in
    members []

and parse_list st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' ->
    advance st;
    List []
  | _ ->
    let rec elements acc =
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements (value :: acc)
      | Some ']' ->
        advance st;
        List (List.rev (value :: acc))
      | Some c -> error st (Printf.sprintf "expected , or ] in array, found %c" c)
      | None -> error st "unterminated array"
    in
    elements []

let of_string src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | Some c -> error st (Printf.sprintf "trailing content starting with %c" c)
  | None -> ());
  v

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = 0) json =
  let buf = Buffer.create 256 in
  let pad depth = if indent > 0 then Buffer.add_string buf (String.make (depth * indent) ' ') in
  let newline () = if indent > 0 then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      newline ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          Buffer.add_string buf (escape_string key);
          Buffer.add_string buf (if indent > 0 then ": " else ":");
          go (depth + 1) value)
        members;
      newline ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 json;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let type_error expected json =
  raise (Type_error (Printf.sprintf "expected %s, found %s" expected (type_name json)))

let member key = function
  | Obj members -> ( match List.assoc_opt key members with Some v -> v | None -> Null)
  | json -> type_error "object" json

let member_opt key json =
  match member key json with Null -> None | v -> Some v

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | json -> type_error "int" json

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | json -> type_error "float" json

let to_bool = function Bool b -> b | json -> type_error "bool" json
let to_str = function String s -> s | json -> type_error "string" json
let to_list = function List l -> l | json -> type_error "array" json
let to_obj = function Obj members -> members | json -> type_error "object" json
