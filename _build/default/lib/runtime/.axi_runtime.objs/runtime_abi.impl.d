lib/runtime/runtime_abi.ml:
