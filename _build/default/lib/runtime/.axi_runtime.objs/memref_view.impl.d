lib/runtime/memref_view.ml: Array List Printf Sim_memory
