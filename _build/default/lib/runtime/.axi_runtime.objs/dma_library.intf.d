lib/runtime/dma_library.mli: Dma_engine Memref_view Soc
