lib/runtime/memref_view.mli: Sim_memory
