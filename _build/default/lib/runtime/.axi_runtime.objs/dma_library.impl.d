lib/runtime/dma_library.ml: Array Axi_word Cost_model Dma_engine Isa List Memref_view Sim_memory Soc Util
