lib/runtime/runtime_abi.mli:
