type t = {
  buf : Sim_memory.buffer;
  offset : int;
  shape : int list;
  strides : int list;
}

let identity_strides shape =
  let rec go = function
    | [] -> []
    | [ _ ] -> [ 1 ]
    | _ :: rest -> (
      let strides = go rest in
      match (strides, rest) with
      | s :: _, d :: _ -> (s * d) :: strides
      | _ -> assert false)
  in
  go shape

let of_buffer buf shape =
  let n = List.fold_left ( * ) 1 shape in
  if n <> Array.length buf.Sim_memory.data then
    invalid_arg
      (Printf.sprintf "Memref_view.of_buffer: shape has %d elements, buffer %s has %d" n
         buf.Sim_memory.label
         (Array.length buf.Sim_memory.data));
  { buf; offset = 0; shape; strides = identity_strides shape }

let rank t = List.length t.shape
let num_elements t = List.fold_left ( * ) 1 t.shape

let subview t ~offsets ~sizes =
  if List.length offsets <> rank t || List.length sizes <> rank t then
    invalid_arg "Memref_view.subview: rank mismatch";
  List.iter2
    (fun (off, size) extent ->
      if off < 0 || size < 0 || off + size > extent then
        invalid_arg
          (Printf.sprintf "Memref_view.subview: slice [%d, %d) exceeds extent %d" off
             (off + size) extent))
    (List.combine offsets sizes)
    t.shape;
  let offset =
    List.fold_left2 (fun acc off stride -> acc + (off * stride)) t.offset offsets t.strides
  in
  { t with offset; shape = sizes }

let linear_index t idxs =
  if List.length idxs <> rank t then invalid_arg "Memref_view.linear_index: rank mismatch";
  List.fold_left2
    (fun acc (i, extent) stride ->
      if i < 0 || i >= extent then
        invalid_arg (Printf.sprintf "Memref_view.linear_index: index %d out of extent %d" i extent);
      acc + (i * stride))
    t.offset
    (List.combine idxs t.shape)
    t.strides

let get t idxs = Sim_memory.get t.buf (linear_index t idxs)
let set t idxs v = Sim_memory.set t.buf (linear_index t idxs) v

let iter_linear t f =
  let shape = Array.of_list t.shape in
  let strides = Array.of_list t.strides in
  let r = Array.length shape in
  if r = 0 then f t.offset
  else begin
    let rec go dim base =
      if dim = r - 1 then
        for i = 0 to shape.(dim) - 1 do
          f (base + (i * strides.(dim)))
        done
      else
        for i = 0 to shape.(dim) - 1 do
          go (dim + 1) (base + (i * strides.(dim)))
        done
    in
    if num_elements t > 0 then go 0 t.offset
  end

let contiguous_run t =
  let shape = Array.of_list t.shape in
  let strides = Array.of_list t.strides in
  let r = Array.length shape in
  let rec go dim run =
    if dim < 0 then run
    else if strides.(dim) = run then go (dim - 1) (run * shape.(dim))
    else run
  in
  if r = 0 then 1
  else if strides.(r - 1) <> 1 then 1
  else go (r - 1) 1

let to_array t =
  let out = Array.make (num_elements t) 0.0 in
  let i = ref 0 in
  iter_linear t (fun li ->
      out.(!i) <- Sim_memory.get t.buf li;
      incr i);
  out

let fill_from t data =
  if Array.length data <> num_elements t then
    invalid_arg "Memref_view.fill_from: element count mismatch";
  let i = ref 0 in
  iter_linear t (fun li ->
      Sim_memory.set t.buf li data.(!i);
      incr i)
