(** A runtime memref descriptor: the simulator-side analogue of the C
    struct in Fig. 3 of the paper — a base buffer plus offset, sizes
    and strides (in elements).

    Views are what the DMA library copies to/from, what manual drivers
    slice, and what the interpreter binds IR memref values to. *)

type t = {
  buf : Sim_memory.buffer;
  offset : int;  (** element offset of the view's origin *)
  shape : int list;
  strides : int list;  (** elements *)
}

val of_buffer : Sim_memory.buffer -> int list -> t
(** Identity-layout view of an entire buffer with the given shape.
    Raises [Invalid_argument] if the element counts disagree. *)

val rank : t -> int
val num_elements : t -> int

val subview : t -> offsets:int list -> sizes:int list -> t
(** Slice with unit steps; strides are inherited. Bounds-checked. *)

val linear_index : t -> int list -> int
(** Buffer element index of a coordinate. *)

val get : t -> int list -> float
val set : t -> int list -> float -> unit

val iter_linear : t -> (int -> unit) -> unit
(** Visit the buffer element index of every view element in row-major
    logical order. *)

val contiguous_run : t -> int
(** Length of the maximal contiguous run of elements at the end of the
    dimension list: the number of logical elements that are physically
    adjacent, e.g. a [4x4] view of a row-major [128x128] buffer has
    run 4; an identity-layout view has run [num_elements]; a view with
    innermost stride <> 1 has run 1. This is what decides whether the
    paper's specialised [memcpy] copy (Sec. IV-B) pays off. *)

val to_array : t -> float array
(** Copy out in row-major order (no cost accounting; for tests). *)

val fill_from : t -> float array -> unit
(** Copy in row-major order (no cost accounting; for tests/setup). *)
