(** Symbol names of the DMA runtime library as seen from generated IR.

    [Lower_accel_to_runtime] emits [func.call]s to these names; the
    interpreter dispatches them onto {!Dma_library}. Keeping the table
    here gives both sides a single source of truth. *)

val dma_init : string  (* (id, inAddr, inSize, outAddr, outSize) -> () *)
val dma_free : string  (* () -> () *)
val stage_literal : string  (* (word i32, offset i32) -> i32 *)
val copy_to_dma_region : string  (* (memref, offset i32) -> i32 *)
val dma_flush_send : string  (* () -> (): start_send + wait over staged words *)
val dma_start_recv : string  (* (len i32) -> () *)
val dma_wait_recv : string  (* () -> () *)
val copy_from_dma_region : string  (* (memref, offset i32) -> i32, store mode *)
val copy_from_dma_region_accumulate : string  (* accumulate mode *)

(* "_spec" variants: the strided-copy specialisation of Sec. IV-B,
   selected by the Copy_specialization pass when the memref layout has a
   unit innermost stride. *)
val copy_to_dma_region_spec : string
val copy_from_dma_region_spec : string
val copy_from_dma_region_accumulate_spec : string

val all : string list
