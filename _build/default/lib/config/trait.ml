type t = {
  dma_init_config : Accel_config.dma_config;
  init_opcodes : string list;
  accel_dim : int list;
  permutation : int list;
  opcode_map : Opcode.map;
  opcode_flow : Opcode.flow;
  cpu_tile : int list;
  double_buffer : bool;
}

let dma_to_attr (d : Accel_config.dma_config) =
  Attribute.Dict
    [
      ("id", Attribute.Int d.dma_id);
      ("inputAddress", Attribute.Int d.input_address);
      ("inputBufferSize", Attribute.Int d.input_buffer_size);
      ("outputAddress", Attribute.Int d.output_address);
      ("outputBufferSize", Attribute.Int d.output_buffer_size);
    ]

let dma_of_attr attr =
  let dict = Attribute.get_dict attr in
  let field name =
    match List.assoc_opt name dict with
    | Some (Attribute.Int v) -> v
    | _ -> invalid_arg (Printf.sprintf "Trait: dma_init_config missing field %s" name)
  in
  {
    Accel_config.dma_id = field "id";
    input_address = field "inputAddress";
    input_buffer_size = field "inputBufferSize";
    output_address = field "outputAddress";
    output_buffer_size = field "outputBufferSize";
  }

let to_attrs t =
  let n = List.length t.accel_dim in
  [
    ("dma_init_config", dma_to_attr t.dma_init_config);
    ( "init_opcodes",
      Attribute.Opcode_flow (List.map (fun k -> Opcode.Op k) t.init_opcodes) );
    ("accel_dim", Attribute.Affine (Affine_map.constant_results ~n_dims:n t.accel_dim));
    ("permutation_map", Attribute.Affine (Affine_map.permutation t.permutation));
    ("opcode_map", Attribute.Opcode_map t.opcode_map);
    ("opcode_flow", Attribute.Opcode_flow t.opcode_flow);
    ("cpu_tile_sizes", Attribute.Ints t.cpu_tile);
    ("double_buffer", Attribute.Bool t.double_buffer);
  ]

let attach op t =
  List.fold_left (fun op (k, v) -> Ir.set_attr op k v) op (to_attrs t)

let of_op op =
  match Ir.attr op "opcode_flow" with
  | None -> None
  | Some flow_attr ->
    let accel_dim_map = Attribute.get_affine (Ir.attr_exn op "accel_dim") in
    let accel_dim =
      List.map
        (function
          | Affine_map.Cst c -> c
          | _ -> invalid_arg "Trait: accel_dim must map to constants")
        accel_dim_map.Affine_map.exprs
    in
    Some
      {
        dma_init_config = dma_of_attr (Ir.attr_exn op "dma_init_config");
        init_opcodes =
          Opcode.flow_opcodes
            (Attribute.get_opcode_flow (Ir.attr_exn op "init_opcodes"));
        accel_dim;
        permutation =
          Affine_map.projected_dims
            (Attribute.get_affine (Ir.attr_exn op "permutation_map"));
        opcode_map = Attribute.get_opcode_map (Ir.attr_exn op "opcode_map");
        opcode_flow = Attribute.get_opcode_flow flow_attr;
        cpu_tile = Attribute.get_ints (Ir.attr_exn op "cpu_tile_sizes");
        double_buffer =
          (match Ir.attr op "double_buffer" with
          | Some (Attribute.Bool b) -> b
          | Some _ | None -> false);
      }

let ( let* ) r f = Result.bind r f

let validate t ~n_dims ~n_args =
  let* () =
    if List.length t.accel_dim = n_dims then Ok ()
    else Error (Printf.sprintf "accel_dim must have %d entries" n_dims)
  in
  let* () =
    if List.length t.cpu_tile = n_dims then Ok ()
    else Error (Printf.sprintf "cpu_tile_sizes must have %d entries" n_dims)
  in
  let* () =
    if List.sort compare t.permutation = List.init n_dims (fun i -> i) then Ok ()
    else Error "permutation_map is not a permutation of the iteration dims"
  in
  let* () = Opcode.validate_map ~n_args t.opcode_map in
  let* () = Opcode.validate_flow t.opcode_map t.opcode_flow in
  let* () =
    let missing = List.filter (fun k -> Opcode.find t.opcode_map k = None) t.init_opcodes in
    if missing = [] then Ok ()
    else Error (Printf.sprintf "undefined init opcodes: %s" (String.concat ", " missing))
  in
  let host_loops = List.length (List.filter (fun d -> d > 0) t.accel_dim) in
  if Opcode.flow_depth t.opcode_flow > max host_loops 1 then
    Error
      (Printf.sprintf "opcode_flow depth %d exceeds the %d host loops"
         (Opcode.flow_depth t.opcode_flow) host_loops)
  else Ok ()
