(** Configuration-file front end (step 2 of the compiler flow,
    Fig. 4): parses the JSON file of Fig. 5 into validated host and
    accelerator descriptions, and can serialise them back. *)

val parse_string : string -> Host_config.t * Accel_config.t
(** Raises [Json.Parse_error], [Json.Type_error],
    [Opcode.Syntax_error] or [Failure] with field-qualified messages. *)

val parse_file : string -> Host_config.t * Accel_config.t

val to_string : Host_config.t -> Accel_config.t -> string
(** Pretty-printed JSON, parseable by {!parse_string}. *)

val write_file : string -> Host_config.t -> Accel_config.t -> unit
