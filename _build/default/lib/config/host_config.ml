type t = {
  cpu_name : string;
  frequency_mhz : float;
  caches : Cache.geometry list;
}

let pynq_z2 =
  {
    cpu_name = "cortex-a9";
    frequency_mhz = 650.0;
    caches = [ Cache.cortex_a9_l1; Cache.cortex_a9_l2 ];
  }

let geometry_of_json json =
  {
    Cache.size_bytes = 1024 * Json.to_int (Json.member "size_kb" json);
    line_bytes =
      (match Json.member_opt "line_bytes" json with
      | Some v -> Json.to_int v
      | None -> 32);
    assoc = Json.to_int (Json.member "assoc" json);
  }

let of_json json =
  {
    cpu_name =
      (match Json.member_opt "name" json with Some v -> Json.to_str v | None -> "cpu");
    frequency_mhz = Json.to_float (Json.member "frequency_mhz" json);
    caches = List.map geometry_of_json (Json.to_list (Json.member "caches" json));
  }

let to_json t =
  Json.Obj
    [
      ("name", Json.String t.cpu_name);
      ("frequency_mhz", Json.Float t.frequency_mhz);
      ( "caches",
        Json.List
          (List.map
             (fun (g : Cache.geometry) ->
               Json.Obj
                 [
                   ("size_kb", Json.Int (g.size_bytes / 1024));
                   ("line_bytes", Json.Int g.line_bytes);
                   ("assoc", Json.Int g.assoc);
                 ])
             t.caches) );
    ]

let last_level_cache_bytes t =
  match List.rev t.caches with [] -> 0 | g :: _ -> g.Cache.size_bytes

let l1_bytes t = match t.caches with [] -> 0 | g :: _ -> g.Cache.size_bytes
