let parse_string text =
  let json = Json.of_string text in
  let host = Host_config.of_json (Json.member "cpu" json) in
  let accel = Accel_config.of_json (Json.member "accelerator" json) in
  (host, accel)

let parse_file path =
  let ic = open_in_bin path in
  let text =
    try really_input_string ic (in_channel_length ic)
    with exn ->
      close_in ic;
      raise exn
  in
  close_in ic;
  parse_string text

let to_string host accel =
  Json.to_string ~indent:2
    (Json.Obj
       [ ("cpu", Host_config.to_json host); ("accelerator", Accel_config.to_json accel) ])

let write_file path host accel =
  let oc = open_out_bin path in
  output_string oc (to_string host accel);
  output_char oc '\n';
  close_out oc
