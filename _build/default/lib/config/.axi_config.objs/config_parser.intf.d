lib/config/config_parser.mli: Accel_config Host_config
