lib/config/accel_config.ml: Accel_conv Accel_matmul Json List Opcode Printf Result Soc String Ty
