lib/config/presets.ml: Accel_config Accel_conv Accel_matmul Isa List Opcode Printf Ty
