lib/config/accel_config.mli: Accel_device Accel_matmul Dma_engine Json Opcode Soc Ty
