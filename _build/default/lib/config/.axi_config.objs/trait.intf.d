lib/config/trait.mli: Accel_config Attribute Ir Opcode
