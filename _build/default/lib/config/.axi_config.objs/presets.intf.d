lib/config/presets.mli: Accel_config Accel_matmul
