lib/config/host_config.mli: Cache Json
