lib/config/host_config.ml: Cache Json List
