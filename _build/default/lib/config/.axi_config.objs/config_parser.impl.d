lib/config/config_parser.ml: Accel_config Host_config Json
