lib/config/trait.ml: Accel_config Affine_map Attribute Ir List Opcode Printf Result String
