(** The AXI4MLIR [linalg.generic] trait extension (paper Fig. 6a):
    the attribute bundle the Match_annotate pass attaches to an
    offloadable operation, consumed by the host-code generation pass.

    Attribute encoding on the op:
    - [dma_init_config]: dictionary of the five DMA parameters;
    - [init_opcodes]: an {!Opcode.flow} of opcodes sent once per kernel;
    - [accel_dim]: affine map to constants, e.g.
      [affine_map<(m, n, k) -> (16, 16, 16)>]; a 0 entry means the
      accelerator absorbs that dimension (no host loop);
    - [permutation_map]: affine permutation giving the loop order;
    - [opcode_map] / [opcode_flow]: the Fig. 7/8 attributes;
    - [cpu_tile_sizes]: dense ints — the cache-level tile per dimension
      (0 = untiled), our encoding of the paper's step-4 host tiling;
    - [double_buffer]: bool — the Sec. V double-buffering attribute. *)

type t = {
  dma_init_config : Accel_config.dma_config;
  init_opcodes : string list;
  accel_dim : int list;
  permutation : int list;  (** loop order, outer to inner, as dim indices *)
  opcode_map : Opcode.map;
  opcode_flow : Opcode.flow;
  cpu_tile : int list;
  double_buffer : bool;
      (** Sec. V extension attribute: request ping-pong (asynchronous)
          input transfers from the runtime. *)
}

val to_attrs : t -> (string * Attribute.t) list
val attach : Ir.op -> t -> Ir.op

val of_op : Ir.op -> t option
(** Decode from an annotated op; [None] when the op has no
    [opcode_flow] attribute. Raises [Invalid_argument] on a malformed
    trait. *)

val validate : t -> n_dims:int -> n_args:int -> (unit, string) result
(** Arity and consistency checks: permutation over [n_dims], accel_dim
    arity, flow depth at most the number of host loops, opcodes
    defined. *)
