lib/workloads/heuristics.mli: Accel_config Cost_model
