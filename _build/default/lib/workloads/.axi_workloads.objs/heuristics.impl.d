lib/workloads/heuristics.ml: Accel_config Cost_model List Printf Util
