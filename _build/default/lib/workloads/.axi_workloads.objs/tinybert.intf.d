lib/workloads/tinybert.mli: Cost_model
