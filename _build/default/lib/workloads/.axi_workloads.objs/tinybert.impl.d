lib/workloads/tinybert.ml: Cost_model List Util
