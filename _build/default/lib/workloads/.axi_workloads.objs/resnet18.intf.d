lib/workloads/resnet18.mli:
