lib/workloads/resnet18.ml: Gold List Printf
