(** TinyBERT (4 layers, hidden 312, FFN 1200, 12 heads), the end-to-end
    workload of the paper's Sec. IV-E / Fig. 17.

    The experiment needs (a) every MatMul the encoder executes, with
    shapes and multiplicities, and (b) an estimate of the non-MatMul
    work (layer norms, softmax, GELU, bias adds) that stays on the CPU
    under every strategy. The paper reports MatMuls as 75% of the
    original CPU runtime; our cost model reproduces a similar split.

    The v4 engine requires dimensions divisible by its granularity 16,
    so the accelerated path runs each MatMul padded up to multiples of
    16 (312 -> 320, 26 -> 32) — the zero-padding a bufferised
    Torch-MLIR pipeline would materialise. The CPU baseline runs the
    true shapes. *)

type matmul_shape = {
  mm_name : string;
  m : int;
  n : int;
  k : int;
  count : int;  (** occurrences over the whole model *)
}

val hidden : int
val ffn : int
val heads : int
val layers : int

val matmul_shapes : batch:int -> seq:int -> matmul_shape list
(** True (unpadded) shapes: QKV projections, attention scores,
    attention-context, output projection, both FFN matmuls. *)

val pad16 : int -> int
(** Round up to a multiple of 16. *)

val non_matmul_cpu_cycles : cost:Cost_model.t -> batch:int -> seq:int -> float
(** Analytic CPU cycles of the non-MatMul encoder work (element counts
    of layer norms, softmax, GELU and residual/bias adds times scalar
    per-element costs from the cost model). *)

val total_matmul_macs : batch:int -> seq:int -> int
