type matmul_shape = { mm_name : string; m : int; n : int; k : int; count : int }

let hidden = 312
let ffn = 1200
let heads = 12
let layers = 4

let head_dim = hidden / heads

let matmul_shapes ~batch ~seq =
  [
    { mm_name = "qkv_proj"; m = seq; n = hidden; k = hidden; count = 3 * batch * layers };
    { mm_name = "attn_scores"; m = seq; n = seq; k = head_dim; count = heads * batch * layers };
    { mm_name = "attn_context"; m = seq; n = head_dim; k = seq; count = heads * batch * layers };
    { mm_name = "attn_output"; m = seq; n = hidden; k = hidden; count = batch * layers };
    { mm_name = "ffn_up"; m = seq; n = ffn; k = hidden; count = batch * layers };
    { mm_name = "ffn_down"; m = seq; n = hidden; k = ffn; count = batch * layers };
  ]

let pad16 n = Util.round_up n ~multiple:16

let total_matmul_macs ~batch ~seq =
  List.fold_left
    (fun acc s -> acc + (s.count * s.m * s.n * s.k))
    0 (matmul_shapes ~batch ~seq)

(* Non-MatMul encoder work, per layer and batch item:
   - 2 layer norms over seq x hidden (~12 scalar ops/element: mean,
     variance, normalise, scale, shift);
   - softmax over heads x seq x seq (~8 ops/element: max, exp, sum,
     divide);
   - GELU over seq x ffn (~14 ops/element: tanh polynomial);
   - residual/bias adds (~4 elementwise passes over seq x hidden and
     one over seq x ffn).
   Each scalar op costs roughly one FPU op plus its share of memory
   traffic; we charge fpu_cycles plus one L1 hit per element-op third. *)
let non_matmul_cpu_cycles ~(cost : Cost_model.t) ~batch ~seq =
  let f = float_of_int in
  let per_layer =
    (12.0 *. 2.0 *. f (seq * hidden))
    +. (8.0 *. f (heads * seq * seq))
    +. (14.0 *. f (seq * ffn))
    +. (4.0 *. f (seq * hidden))
    +. (1.0 *. f (seq * ffn))
  in
  let element_ops = f (batch * layers) *. per_layer in
  element_ops *. (cost.fpu_cycles +. (0.4 *. cost.l1_hit_cycles) +. 0.3)
