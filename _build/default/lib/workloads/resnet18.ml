type layer = {
  label : string;
  ihw : int;
  ic : int;
  fhw : int;
  oc : int;
  stride : int;
  ohw : int;
}

let make ~ihw ~ic ~fhw ~oc ~stride =
  {
    label = Printf.sprintf "%d_%d_%d_%d_%d" ihw ic fhw oc stride;
    ihw;
    ic;
    fhw;
    oc;
    stride;
    ohw = Gold.conv_out ihw ~fhw ~stride;
  }

let layers =
  [
    make ~ihw:224 ~ic:3 ~fhw:7 ~oc:64 ~stride:2;
    make ~ihw:56 ~ic:64 ~fhw:3 ~oc:64 ~stride:1;
    make ~ihw:56 ~ic:64 ~fhw:3 ~oc:128 ~stride:2;
    make ~ihw:56 ~ic:64 ~fhw:1 ~oc:128 ~stride:2;
    make ~ihw:28 ~ic:128 ~fhw:3 ~oc:128 ~stride:1;
    make ~ihw:28 ~ic:128 ~fhw:3 ~oc:256 ~stride:2;
    make ~ihw:28 ~ic:128 ~fhw:1 ~oc:256 ~stride:2;
    make ~ihw:14 ~ic:256 ~fhw:3 ~oc:256 ~stride:1;
    make ~ihw:14 ~ic:256 ~fhw:3 ~oc:512 ~stride:2;
    make ~ihw:14 ~ic:256 ~fhw:1 ~oc:512 ~stride:2;
    make ~ihw:7 ~ic:512 ~fhw:3 ~oc:512 ~stride:1;
  ]

let find label = List.find_opt (fun l -> l.label = label) layers

let macs l = l.oc * l.ohw * l.ohw * l.ic * l.fhw * l.fhw
