(** The eleven distinct convolution layer shapes of ResNet-18 evaluated
    in the paper's Fig. 16, labelled [iHW_iC_fHW_oC_stride].

    Layers are simulated with their true spatial strides: the
    [linalg.generic] indexing maps use [s*oh + fh] windows, which the
    matcher, tiling analysis and host-code generator all support. *)

type layer = {
  label : string;
  ihw : int;  (** input edge *)
  ic : int;
  fhw : int;
  oc : int;
  stride : int;
  ohw : int;  (** output edge (valid padding) *)
}

val layers : layer list
(** In network order, conv1 first. *)

val find : string -> layer option

val macs : layer -> int
(** Multiply-accumulates of the layer. *)
