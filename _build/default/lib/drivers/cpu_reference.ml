(* Cost recipe (kept in lockstep with the interpreter executing the
   Lower_linalg_to_loops output; test/test_cross_checks.ml pins this):
   - entering a loop evaluates its three bound constants: alu 3;
   - each iteration: Soc.loop_iteration;
   - innermost body: one memref_scalar_access per operand element read,
     fpu for the multiply-add, one descriptor store (access + set). *)

let extent view d = List.nth view.Memref_view.shape d
let stride view d = List.nth view.Memref_view.strides d

let matmul soc ~a ~b ~c =
  let m = extent a 0 and k = extent a 1 and n = extent b 1 in
  if extent b 0 <> k || extent c 0 <> m || extent c 1 <> n then
    invalid_arg "Cpu_reference.matmul: shape mismatch";
  let a0 = stride a 0 and a1 = stride a 1 in
  let b0 = stride b 0 and b1 = stride b 1 in
  let c0 = stride c 0 and c1 = stride c 1 in
  let abuf = a.Memref_view.buf and bbuf = b.Memref_view.buf and cbuf = c.Memref_view.buf in
  let aoff = a.Memref_view.offset
  and boff = b.Memref_view.offset
  and coff = c.Memref_view.offset in
  Soc.alu soc 3;
  for i = 0 to m - 1 do
    Soc.loop_iteration soc;
    Soc.alu soc 3;
    for j = 0 to n - 1 do
      Soc.loop_iteration soc;
      Soc.alu soc 3;
      for l = 0 to k - 1 do
        Soc.loop_iteration soc;
        let av = Soc.memref_scalar_access soc abuf (aoff + (i * a0) + (l * a1)) in
        let bv = Soc.memref_scalar_access soc bbuf (boff + (l * b0) + (j * b1)) in
        let ci = coff + (i * c0) + (j * c1) in
        let cv = Soc.memref_scalar_access soc cbuf ci in
        Soc.fpu soc 2;
        ignore (Soc.memref_scalar_access soc cbuf ci);
        Sim_memory.set cbuf ci (cv +. (av *. bv))
      done
    done
  done

let matmul_sampled soc ~a ~b ~c ~sample_rows =
  let m = extent a 0 and k = extent a 1 and n = extent b 1 in
  if m <= sample_rows * 2 then matmul soc ~a ~b ~c
  else begin
    (* Functional result, computed exactly on the full problem. *)
    let a_data = Memref_view.to_array a in
    let b_data = Memref_view.to_array b in
    let c_data = Memref_view.to_array c in
    Gold.matmul_acc ~m ~n ~k a_data b_data c_data;
    (* Cost: warm the caches on two rows, measure [sample_rows], scale. *)
    let row_slice i rows view =
      Memref_view.subview view ~offsets:[ i; 0 ] ~sizes:[ rows; extent view 1 ]
    in
    let run_rows i rows =
      matmul soc ~a:(row_slice i rows a) ~b ~c:(row_slice i rows c)
    in
    let warm = 2 in
    run_rows 0 warm;
    let before = Perf_counters.copy soc.Soc.counters in
    run_rows warm sample_rows;
    let delta = Perf_counters.diff soc.Soc.counters before in
    let remaining = float_of_int (m - warm - sample_rows) /. float_of_int sample_rows in
    Perf_counters.accumulate soc.Soc.counters (Perf_counters.scale delta remaining);
    (* Overwrite whatever the cost-simulation rows wrote. *)
    Memref_view.fill_from c c_data
  end

(* -O3-style scalar VFP matmul: C[i][j] accumulates in a register, the
   inner loop is unrolled by four, addresses are strength-reduced.
   Per MAC: one cached B access, a quarter of an A access (register
   reuse across the unroll), a 4-cycle dependent fmac, and a quarter of
   the loop overhead. *)
let matmul_optimized_exact soc ~a ~b ~c =
  let m = extent a 0 and k = extent a 1 and n = extent b 1 in
  if extent b 0 <> k || extent c 0 <> m || extent c 1 <> n then
    invalid_arg "Cpu_reference.matmul_optimized: shape mismatch";
  let a0 = stride a 0 and a1 = stride a 1 in
  let b0 = stride b 0 and b1 = stride b 1 in
  let c0 = stride c 0 and c1 = stride c 1 in
  let abuf = a.Memref_view.buf and bbuf = b.Memref_view.buf and cbuf = c.Memref_view.buf in
  let aoff = a.Memref_view.offset
  and boff = b.Memref_view.offset
  and coff = c.Memref_view.offset in
  Soc.alu soc 3;
  for i = 0 to m - 1 do
    Soc.loop_iteration soc;
    Soc.alu soc 3;
    for j = 0 to n - 1 do
      Soc.loop_iteration soc;
      Soc.alu soc 3;
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        (* unrolled by 4: loop overhead and the A access amortise *)
        if l land 3 = 0 then begin
          Soc.loop_iteration soc;
          ignore (Soc.cached_read soc abuf (aoff + (i * a0) + (l * a1)))
        end;
        let av = Sim_memory.get abuf (aoff + (i * a0) + (l * a1)) in
        let bv = Soc.cached_read soc bbuf (boff + (l * b0) + (j * b1)) in
        (* dependent VFP fmac: ~4 cycles *)
        Soc.fpu soc 2;
        acc := !acc +. (av *. bv)
      done;
      let ci = coff + (i * c0) + (j * c1) in
      let cv = Soc.cached_read soc cbuf ci in
      ignore (Soc.cached_read soc cbuf ci);
      Sim_memory.set cbuf ci (cv +. !acc)
    done
  done

let matmul_optimized soc ~a ~b ~c ?sample_rows () =
  match sample_rows with
  | None -> matmul_optimized_exact soc ~a ~b ~c
  | Some sample_rows ->
    let m = extent a 0 and k = extent a 1 and n = extent b 1 in
    if m <= sample_rows * 2 then matmul_optimized_exact soc ~a ~b ~c
    else begin
      let a_data = Memref_view.to_array a in
      let b_data = Memref_view.to_array b in
      let c_data = Memref_view.to_array c in
      Gold.matmul_acc ~m ~n ~k a_data b_data c_data;
      let row_slice i rows view =
        Memref_view.subview view ~offsets:[ i; 0 ] ~sizes:[ rows; extent view 1 ]
      in
      let run_rows i rows =
        matmul_optimized_exact soc ~a:(row_slice i rows a) ~b ~c:(row_slice i rows c)
      in
      let warm = 2 in
      run_rows 0 warm;
      let before = Perf_counters.copy soc.Soc.counters in
      run_rows warm sample_rows;
      let delta = Perf_counters.diff soc.Soc.counters before in
      let remaining = float_of_int (m - warm - sample_rows) /. float_of_int sample_rows in
      Perf_counters.accumulate soc.Soc.counters (Perf_counters.scale delta remaining);
      Memref_view.fill_from c c_data
    end

let conv2d ?(stride = 1) soc ~input ~filter ~output =
  let n = extent input 0 and ic = extent input 1 in
  let ih = extent input 2 and iw = extent input 3 in
  let oc = extent filter 0 and fh = extent filter 2 and fw = extent filter 3 in
  let oh = extent output 2 and ow = extent output 3 in
  if extent filter 1 <> ic || extent output 0 <> n || extent output 1 <> oc then
    invalid_arg "Cpu_reference.conv2d: shape mismatch";
  let idx view coords =
    List.fold_left2
      (fun acc i s -> acc + (i * s))
      view.Memref_view.offset coords view.Memref_view.strides
  in
  Soc.alu soc 3;
  for bb = 0 to n - 1 do
    Soc.loop_iteration soc;
    Soc.alu soc 3;
    for f = 0 to oc - 1 do
      Soc.loop_iteration soc;
      Soc.alu soc 3;
      for y = 0 to oh - 1 do
        Soc.loop_iteration soc;
        Soc.alu soc 3;
        for x = 0 to ow - 1 do
          Soc.loop_iteration soc;
          Soc.alu soc 3;
          for cc = 0 to ic - 1 do
            Soc.loop_iteration soc;
            Soc.alu soc 3;
            for dy = 0 to fh - 1 do
              Soc.loop_iteration soc;
              Soc.alu soc 3;
              for dx = 0 to fw - 1 do
                Soc.loop_iteration soc;
                ignore ih;
                ignore iw;
                (* the lowered IR computes oh+fh and ow+fw with addi *)
                Soc.alu soc 2;
                let iv =
                  Soc.memref_scalar_access soc input.Memref_view.buf
                    (idx input [ bb; cc; (stride * y) + dy; (stride * x) + dx ])
                in
                let wv =
                  Soc.memref_scalar_access soc filter.Memref_view.buf
                    (idx filter [ f; cc; dy; dx ])
                in
                let oi = idx output [ bb; f; y; x ] in
                let ov = Soc.memref_scalar_access soc output.Memref_view.buf oi in
                Soc.fpu soc 2;
                ignore (Soc.memref_scalar_access soc output.Memref_view.buf oi);
                Sim_memory.set output.Memref_view.buf oi (ov +. (iv *. wv))
              done
            done
          done
        done
      done
    done
  done
