let matmul_acc ~m ~n ~k a b c =
  if Array.length a <> m * k || Array.length b <> k * n || Array.length c <> m * n then
    invalid_arg "Gold.matmul: shape mismatch";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref c.((i * n) + j) in
      for l = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + l) *. b.((l * n) + j))
      done;
      c.((i * n) + j) <- !acc
    done
  done

let matmul ~m ~n ~k a b =
  let c = Array.make (m * n) 0.0 in
  matmul_acc ~m ~n ~k a b c;
  c

let conv_out edge ~fhw ~stride = ((edge - fhw) / stride) + 1

let conv2d ?(stride = 1) ~n ~ic ~ih ~iw ~oc ~fh ~fw input filter =
  if Array.length input <> n * ic * ih * iw then invalid_arg "Gold.conv2d: bad input size";
  if Array.length filter <> oc * ic * fh * fw then invalid_arg "Gold.conv2d: bad filter size";
  let oh = conv_out ih ~fhw:fh ~stride and ow = conv_out iw ~fhw:fw ~stride in
  if oh <= 0 || ow <= 0 then invalid_arg "Gold.conv2d: filter larger than input";
  let output = Array.make (n * oc * oh * ow) 0.0 in
  for b = 0 to n - 1 do
    for f = 0 to oc - 1 do
      for y = 0 to oh - 1 do
        for x = 0 to ow - 1 do
          let acc = ref 0.0 in
          for c = 0 to ic - 1 do
            for dy = 0 to fh - 1 do
              for dx = 0 to fw - 1 do
                let iv =
                  input.((((((b * ic) + c) * ih) + (stride * y) + dy) * iw)
                         + (stride * x) + dx)
                in
                let wv = filter.((((((f * ic) + c) * fh) + dy) * fw) + dx) in
                acc := !acc +. (iv *. wv)
              done
            done
          done;
          output.((((((b * oc) + f) * oh) + y) * ow) + x) <- !acc
        done
      done
    done
  done;
  output

let fill_deterministic ?(seed = 0x9E3779B9) data =
  let state = ref (if seed = 0 then 1 else seed) in
  let next () =
    (* xorshift32 *)
    let x = !state in
    let x = x lxor (x lsl 13) land 0xFFFFFFFF in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0xFFFFFFFF in
    state := x;
    x
  in
  Array.iteri
    (fun i _ -> data.(i) <- (float_of_int (next () land 0xFFFF) /. 32768.0) -. 1.0)
    data

let max_abs_diff a b =
  if Array.length a <> Array.length b then invalid_arg "Gold.max_abs_diff: length mismatch";
  let worst = ref 0.0 in
  Array.iteri (fun i x -> worst := Float.max !worst (Float.abs (x -. b.(i)))) a;
  !worst
