(** Hand-written layer-specific Conv2D driver baseline (paper
    Sec. IV-D): weights stationary per output channel, bare-array
    copies, one DMA transfer per opcode. *)

val run :
  Soc.t ->
  Accel_config.t ->
  ?flow:string ->
  ?stride:int ->
  input:Memref_view.t ->
  filter:Memref_view.t ->
  output:Memref_view.t ->
  unit ->
  unit
(** [O += conv2d(I, W)] (NCHW / FCHW, valid padding, spatial stride s) on the
    conv engine. Flows: ["Ws"] (per-pixel receive, default), ["Rs"]
    (one receive per output row — the natural hand-optimised batching)
    or ["Os"] (whole output slice received once per channel). *)
