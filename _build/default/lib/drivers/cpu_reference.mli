(** The "mlir_CPU" baseline: a native re-implementation of exactly what
    the interpreter executes for the linalg-to-loops lowering, charging
    the same costs per innermost iteration (loop overhead, three
    memref-descriptor scalar loads, multiply-add, one descriptor
    store). Running natively instead of through the interpreter lets
    the benchmarks sweep dims up to 512 in reasonable wall-clock time;
    a test pins the two paths to identical counters on small sizes. *)

val matmul :
  Soc.t -> a:Memref_view.t -> b:Memref_view.t -> c:Memref_view.t -> unit
(** [C += A x B], canonical (m, n, k) loop order, full cost charging. *)

val matmul_sampled :
  Soc.t ->
  a:Memref_view.t ->
  b:Memref_view.t ->
  c:Memref_view.t ->
  sample_rows:int ->
  unit
(** Functional result computed in full (without cost charging); the
    cost of the [m] loop is measured on [sample_rows] representative
    rows after warm-up and scaled — row iterations are homogeneous, so
    this keeps large problems (TinyBERT layers) tractable. Falls back
    to the exact path when [m <= sample_rows * 2]. *)

val matmul_optimized :
  Soc.t ->
  a:Memref_view.t ->
  b:Memref_view.t ->
  c:Memref_view.t ->
  ?sample_rows:int ->
  unit ->
  unit
(** An -O3-compiled scalar (VFP) matmul, as the paper's TinyBERT CPU
    baseline: register-blocked accumulation (C and the A element stay
    in registers, 4x-unrolled inner loop, no per-access descriptor
    traffic), costing roughly 6-9 cycles per multiply-accumulate
    depending on cache behaviour — about 3-4x faster than the naive
    {!matmul} lowering. [sample_rows] enables the same row-sampled
    costing as {!matmul_sampled}. *)

val conv2d :
  ?stride:int ->
  Soc.t ->
  input:Memref_view.t ->
  filter:Memref_view.t ->
  output:Memref_view.t ->
  unit
(** Canonical 7-loop NCHW/FCHW convolution, [O += I * W], valid padding,
    the given spatial stride (default 1). *)
