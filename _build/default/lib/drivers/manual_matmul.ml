type tile_sizes = { tm : int; tn : int; tk : int }

let sub2 view i j si sj = Memref_view.subview view ~offsets:[ i; j ] ~sizes:[ si; sj ]

(* Primitive driver actions, all with bare-array (specialised) copies
   and one DMA transfer per opcode — the "fewest transfer calls"
   property of the hand-written baselines. *)

let send_tile lib lit view =
  Soc.alu (Dma_library.soc lib) 4;
  let offset = Dma_library.stage_literal lib lit ~offset:0 in
  ignore (Dma_library.copy_to_dma_region_with lib (Dma_library.manual_strategy view) view ~offset);
  Dma_library.flush_send lib

let send_inst lib lit =
  ignore (Dma_library.stage_literal lib lit ~offset:0);
  Dma_library.flush_send lib

let recv_tile lib lit view =
  Soc.alu (Dma_library.soc lib) 4;
  ignore (Dma_library.stage_literal lib lit ~offset:0);
  Dma_library.flush_send lib;
  let n = Memref_view.num_elements view in
  Dma_engine.start_recv (Dma_library.engine lib) ~len_words:n;
  let data = Dma_engine.wait_recv (Dma_library.engine lib) in
  Dma_library.copy_from_data_with lib (Dma_library.manual_strategy view) view ~accumulate:true data

(* v1's single fused instruction: A and B batched into one transfer. *)
let send_fused_recv lib ~a_tile ~b_tile ~c_tile =
  Soc.alu (Dma_library.soc lib) 12;
  let offset = Dma_library.stage_literal lib Isa.mm_fused ~offset:0 in
  let offset =
    Dma_library.copy_to_dma_region_with lib (Dma_library.manual_strategy a_tile) a_tile ~offset
  in
  ignore (Dma_library.copy_to_dma_region_with lib (Dma_library.manual_strategy b_tile) b_tile ~offset);
  Dma_library.flush_send lib;
  let n = Memref_view.num_elements c_tile in
  Dma_engine.start_recv (Dma_library.engine lib) ~len_words:n;
  let data = Dma_engine.wait_recv (Dma_library.engine lib) in
  Dma_library.copy_from_data_with lib (Dma_library.manual_strategy c_tile) c_tile ~accumulate:true data

let loop soc count body =
  for i = 0 to count - 1 do
    Soc.loop_iteration soc;
    body i
  done

let send_v4_config lib { tm; tn; tk } =
  List.iter
    (fun (code, value) ->
      let offset = Dma_library.stage_literal lib code ~offset:0 in
      ignore (Dma_library.stage_literal lib value ~offset);
      Dma_library.flush_send lib)
    [ (Isa.mm_set_tm, tm); (Isa.mm_set_tn, tn); (Isa.mm_set_tk, tk) ]

let run soc (config : Accel_config.t) ~flow ?tiles ~a ~b ~c () =
  let version, size =
    match config.engine with
    | Accel_config.Matmul_engine (v, s) -> (v, s)
    | Accel_config.Conv_engine -> failwith "Manual_matmul: conv engine"
  in
  if not (List.mem flow (Presets.matmul_flows version)) then
    failwith
      (Printf.sprintf "Manual_matmul: flow %s not supported by %s_%d" flow
         (Accel_matmul.version_to_string version)
         size);
  let { tm; tn; tk } =
    match tiles with
    | Some t ->
      if version <> Accel_matmul.V4 then
        failwith "Manual_matmul: custom tiles require the v4 engine";
      t
    | None -> { tm = size; tn = size; tk = size }
  in
  let m = List.nth a.Memref_view.shape 0 and k = List.nth a.Memref_view.shape 1 in
  let n = List.nth b.Memref_view.shape 1 in
  if List.nth b.Memref_view.shape 0 <> k
     || List.nth c.Memref_view.shape 0 <> m
     || List.nth c.Memref_view.shape 1 <> n
  then failwith "Manual_matmul: operand shape mismatch";
  if m mod tm <> 0 || n mod tn <> 0 || k mod tk <> 0 then
    failwith "Manual_matmul: problem dims must be divisible by the tile sizes";
  let lib = Dma_library.init soc ~dma_id:config.dma.dma_id ~strategy:Dma_library.Specialized in
  send_inst lib Isa.reset;
  if version = Accel_matmul.V4 then send_v4_config lib { tm; tn; tk };
  let a_tile i l = sub2 a (i * tm) (l * tk) tm tk in
  let b_tile l j = sub2 b (l * tk) (j * tn) tk tn in
  let c_tile i j = sub2 c (i * tm) (j * tn) tm tn in
  let mt = m / tm and nt = n / tn and kt = k / tk in
  let compute_lit, drain_lit =
    match version with
    | Accel_matmul.V2 -> (Isa.mm_compute_drain, Isa.mm_compute_drain)
    | Accel_matmul.V1 | Accel_matmul.V3 | Accel_matmul.V4 -> (Isa.mm_compute, Isa.mm_drain)
  in
  (match (version, flow) with
  | Accel_matmul.V1, _ ->
    loop soc mt (fun i ->
        loop soc nt (fun j ->
            loop soc kt (fun l ->
                send_fused_recv lib ~a_tile:(a_tile i l) ~b_tile:(b_tile l j)
                  ~c_tile:(c_tile i j))))
  | Accel_matmul.V2, "Ns" ->
    loop soc mt (fun i ->
        loop soc nt (fun j ->
            loop soc kt (fun l ->
                send_tile lib Isa.mm_load_a (a_tile i l);
                send_tile lib Isa.mm_load_b (b_tile l j);
                recv_tile lib Isa.mm_compute_drain (c_tile i j))))
  | Accel_matmul.V2, "As" ->
    loop soc mt (fun i ->
        loop soc kt (fun l ->
            send_tile lib Isa.mm_load_a (a_tile i l);
            loop soc nt (fun j ->
                send_tile lib Isa.mm_load_b (b_tile l j);
                recv_tile lib Isa.mm_compute_drain (c_tile i j))))
  | Accel_matmul.V2, "Bs" ->
    loop soc kt (fun l ->
        loop soc nt (fun j ->
            send_tile lib Isa.mm_load_b (b_tile l j);
            loop soc mt (fun i ->
                send_tile lib Isa.mm_load_a (a_tile i l);
                recv_tile lib Isa.mm_compute_drain (c_tile i j))))
  | (Accel_matmul.V3 | Accel_matmul.V4), "Ns" ->
    loop soc mt (fun i ->
        loop soc nt (fun j ->
            loop soc kt (fun l ->
                send_tile lib Isa.mm_load_a (a_tile i l);
                send_tile lib Isa.mm_load_b (b_tile l j);
                send_inst lib compute_lit;
                recv_tile lib drain_lit (c_tile i j))))
  | (Accel_matmul.V3 | Accel_matmul.V4), "As" ->
    loop soc mt (fun i ->
        loop soc kt (fun l ->
            send_tile lib Isa.mm_load_a (a_tile i l);
            loop soc nt (fun j ->
                send_tile lib Isa.mm_load_b (b_tile l j);
                send_inst lib compute_lit;
                recv_tile lib drain_lit (c_tile i j))))
  | (Accel_matmul.V3 | Accel_matmul.V4), "Bs" ->
    loop soc kt (fun l ->
        loop soc nt (fun j ->
            send_tile lib Isa.mm_load_b (b_tile l j);
            loop soc mt (fun i ->
                send_tile lib Isa.mm_load_a (a_tile i l);
                send_inst lib compute_lit;
                recv_tile lib drain_lit (c_tile i j))))
  | (Accel_matmul.V3 | Accel_matmul.V4), "Cs" ->
    loop soc mt (fun i ->
        loop soc nt (fun j ->
            loop soc kt (fun l ->
                send_tile lib Isa.mm_load_a (a_tile i l);
                send_tile lib Isa.mm_load_b (b_tile l j);
                send_inst lib compute_lit);
            recv_tile lib drain_lit (c_tile i j)))
  | _, other -> failwith (Printf.sprintf "Manual_matmul: unsupported flow %s" other));
  ignore drain_lit;
  Dma_library.free lib
