(** Hand-written optimised driver baselines ("cpp_MANUAL", paper
    Sec. IV-A): one driver per dataflow, written the way the
    SECDA-TFLite baselines are — bare-array (memcpy-style) copies, the
    fewest DMA transfers the flow permits, tiling by the accelerator
    size only (no CPU cache-level tiling), and the natural stationary
    loop order for the flow. *)

type tile_sizes = { tm : int; tn : int; tk : int }

val run :
  Soc.t ->
  Accel_config.t ->
  flow:string ->
  ?tiles:tile_sizes ->
  a:Memref_view.t ->
  b:Memref_view.t ->
  c:Memref_view.t ->
  unit ->
  unit
(** Execute [C += A x B] on the configured accelerator with the given
    flow (["Ns"], ["As"], ["Bs"], ["Cs"] as supported by the engine
    version). [tiles] overrides the square accelerator-size tiles
    (flexible engines only). The accelerator must already be attached
    to the SoC ({!Accel_config.attach}). Raises [Failure] on
    flow/version mismatches or non-divisible problem sizes. *)
