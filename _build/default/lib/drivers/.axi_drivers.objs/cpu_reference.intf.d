lib/drivers/cpu_reference.mli: Memref_view Soc
