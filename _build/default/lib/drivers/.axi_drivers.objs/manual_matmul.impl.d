lib/drivers/manual_matmul.ml: Accel_config Accel_matmul Dma_engine Dma_library Isa List Memref_view Presets Printf Soc
