lib/drivers/cpu_reference.ml: Gold List Memref_view Perf_counters Sim_memory Soc
