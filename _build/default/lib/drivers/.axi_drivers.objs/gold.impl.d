lib/drivers/gold.ml: Array Float
