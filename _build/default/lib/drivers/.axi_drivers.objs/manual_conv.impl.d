lib/drivers/manual_conv.ml: Accel_config Dma_engine Dma_library Isa List Memref_view Printf Soc
