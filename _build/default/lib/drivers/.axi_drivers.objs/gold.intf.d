lib/drivers/gold.mli:
