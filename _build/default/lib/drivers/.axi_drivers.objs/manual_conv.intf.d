lib/drivers/manual_conv.mli: Accel_config Memref_view Soc
