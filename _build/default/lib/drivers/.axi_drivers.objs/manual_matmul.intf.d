lib/drivers/manual_matmul.mli: Accel_config Memref_view Soc
