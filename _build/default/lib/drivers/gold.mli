(** Pure functional oracles (no SoC, no cost accounting): the ground
    truth every execution path — CPU lowering, manual drivers,
    generated drivers at both lowering levels — is tested against. *)

val matmul : m:int -> n:int -> k:int -> float array -> float array -> float array
(** Row-major [C = A(m,k) x B(k,n)] (fresh C, zero-initialised). *)

val matmul_acc : m:int -> n:int -> k:int -> float array -> float array -> float array -> unit
(** [C += A x B] in place. *)

val conv2d :
  ?stride:int ->
  n:int ->
  ic:int ->
  ih:int ->
  iw:int ->
  oc:int ->
  fh:int ->
  fw:int ->
  float array ->
  float array ->
  float array
(** NCHW input (n,ic,ih,iw) * FCHW filter (oc,ic,fh,fw) -> output
    (n, oc, (ih-fh)/s+1, (iw-fw)/s+1), valid padding, stride [s]
    (default 1). *)

val conv_out : int -> fhw:int -> stride:int -> int
(** Output edge of a valid, strided convolution. *)

val fill_deterministic : ?seed:int -> float array -> unit
(** Deterministic pseudo-random contents in [-1, 1) (xorshift; no
    dependence on global RNG state). *)

val max_abs_diff : float array -> float array -> float
(** Raises [Invalid_argument] on length mismatch. *)
