let run soc (config : Accel_config.t) ?(flow = "Ws") ?(stride = 1) ~input ~filter ~output () =
  (match config.engine with
  | Accel_config.Conv_engine -> ()
  | Accel_config.Matmul_engine _ -> failwith "Manual_conv: not a conv engine");
  let extent v d = List.nth v.Memref_view.shape d in
  let n = extent input 0 and ic = extent input 1 in
  let oc = extent filter 0 and fh = extent filter 2 and fw = extent filter 3 in
  let oh = extent output 2 and ow = extent output 3 in
  if extent filter 1 <> ic || extent output 0 <> n || extent output 1 <> oc then
    failwith "Manual_conv: operand shape mismatch";
  if fh <> fw then failwith "Manual_conv: the engine supports square filters only";
  if ic * fh * fw > config.buffer_capacity_elems then
    failwith "Manual_conv: slice exceeds the engine's buffer capacity";
  let lib = Dma_library.init soc ~dma_id:config.dma.dma_id ~strategy:Dma_library.Specialized in
  let send_two a bword =
    let offset = Dma_library.stage_literal lib a ~offset:0 in
    ignore (Dma_library.stage_literal lib bword ~offset);
    Dma_library.flush_send lib
  in
  (* reset + configuration *)
  ignore (Dma_library.stage_literal lib Isa.reset ~offset:0);
  Dma_library.flush_send lib;
  send_two Isa.cv_set_fhw fh;
  send_two Isa.cv_set_ic ic;
  let send_tile lit view =
    Soc.alu soc 6;
    let offset = Dma_library.stage_literal lib lit ~offset:0 in
    ignore
      (Dma_library.copy_to_dma_region_with lib (Dma_library.manual_strategy view) view
         ~offset);
    Dma_library.flush_send lib
  in
  let recv_tile view =
    Soc.alu soc 6;
    ignore (Dma_library.stage_literal lib Isa.cv_drain ~offset:0);
    Dma_library.flush_send lib;
    let count = Memref_view.num_elements view in
    Dma_engine.start_recv (Dma_library.engine lib) ~len_words:count;
    let data = Dma_engine.wait_recv (Dma_library.engine lib) in
    Dma_library.copy_from_data_with lib (Dma_library.manual_strategy view) view
      ~accumulate:true data
  in
  let loop count body =
    for i = 0 to count - 1 do
      Soc.loop_iteration soc;
      body i
    done
  in
  let w_slice f =
    Memref_view.subview filter ~offsets:[ f; 0; 0; 0 ] ~sizes:[ 1; ic; fh; fw ]
  in
  let patch b y x =
    Memref_view.subview input
      ~offsets:[ b; 0; stride * y; stride * x ]
      ~sizes:[ 1; ic; fh; fw ]
  in
  let out_pixel b f y x =
    Memref_view.subview output ~offsets:[ b; f; y; x ] ~sizes:[ 1; 1; 1; 1 ]
  in
  let out_slice b f =
    Memref_view.subview output ~offsets:[ b; f; 0; 0 ] ~sizes:[ 1; 1; oh; ow ]
  in
  let out_row b f y =
    Memref_view.subview output ~offsets:[ b; f; y; 0 ] ~sizes:[ 1; 1; 1; ow ]
  in
  (match flow with
  | "Rs" ->
    (* weights stationary, one drain per output row — the natural
       hand-optimised batching *)
    loop oc (fun f ->
        send_tile Isa.cv_load_w (w_slice f);
        loop n (fun b ->
            loop oh (fun y ->
                loop ow (fun x -> send_tile Isa.cv_patch (patch b y x));
                recv_tile (out_row b f y))))
  | "Ws" ->
    loop oc (fun f ->
        send_tile Isa.cv_load_w (w_slice f);
        loop n (fun b ->
            loop oh (fun y ->
                loop ow (fun x ->
                    send_tile Isa.cv_patch (patch b y x);
                    recv_tile (out_pixel b f y x)))))
  | "Os" ->
    loop oc (fun f ->
        send_tile Isa.cv_load_w (w_slice f);
        loop n (fun b ->
            loop oh (fun y ->
                loop ow (fun x -> send_tile Isa.cv_patch (patch b y x)));
            recv_tile (out_slice b f)))
  | other -> failwith (Printf.sprintf "Manual_conv: unknown flow %s" other));
  Dma_library.free lib
