type t = { pass_name : string; run : Ir.op -> Ir.op }

let make pass_name run = { pass_name; run }

type options = { verify_each : bool; dump_each : bool }

let default_options = { verify_each = true; dump_each = false }

exception Pass_failure of string * string

let run_pipeline ?(options = default_options) passes root =
  List.fold_left
    (fun ir pass ->
      let ir = pass.run ir in
      if options.dump_each then
        Printf.eprintf "// ----- IR after %s -----\n%s\n" pass.pass_name
          (Printer.to_generic ir);
      if options.verify_each then begin
        match Verifier.verify ir with
        | Ok () -> ()
        | Error msg -> raise (Pass_failure (pass.pass_name, msg))
      end;
      ir)
    root passes
