(* Printing state: a buffer, an indentation level, and a table assigning
   sequential %N names to value ids in order of first appearance. *)

type state = {
  buf : Buffer.t;
  names : (int, string) Hashtbl.t;
  mutable next : int;
  mutable indent : int;
}

let make_state () = { buf = Buffer.create 1024; names = Hashtbl.create 64; next = 0; indent = 0 }

let name_of st (v : Ir.value) =
  match Hashtbl.find_opt st.names v.vid with
  | Some n -> n
  | None ->
    let n = Printf.sprintf "%%%d" st.next in
    st.next <- st.next + 1;
    Hashtbl.add st.names v.vid n;
    n

let value_name table (v : Ir.value) =
  match Hashtbl.find_opt table v.vid with
  | Some n -> n
  | None ->
    let n = Printf.sprintf "%%v%d" v.vid in
    Hashtbl.add table v.vid n;
    n

let pad st = Buffer.add_string st.buf (String.make (st.indent * 2) ' ')
let add st s = Buffer.add_string st.buf s
let addf st fmt = Printf.ksprintf (add st) fmt

let type_list tys = String.concat ", " (List.map Ty.to_string tys)

(* ------------------------------------------------------------------ *)
(* Generic form                                                        *)
(* ------------------------------------------------------------------ *)

let rec generic_op st (o : Ir.op) =
  pad st;
  (match o.results with
  | [] -> ()
  | results ->
    add st (String.concat ", " (List.map (name_of st) results));
    add st " = ");
  addf st "\"%s\"(%s)" o.name (String.concat ", " (List.map (name_of st) o.operands));
  (match o.regions with
  | [] -> ()
  | regions ->
    add st " (";
    List.iteri
      (fun i r ->
        if i > 0 then add st ", ";
        generic_region st r)
      regions;
    add st ")");
  (match o.attrs with
  | [] -> ()
  | attrs ->
    add st " {";
    add st
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s = %s" k (Attribute.to_string v)) attrs));
    add st "}");
  addf st " : (%s) -> (%s)"
    (type_list (List.map (fun (v : Ir.value) -> v.vty) o.operands))
    (type_list (List.map (fun (v : Ir.value) -> v.vty) o.results));
  add st "\n"

and generic_region st (r : Ir.region) =
  add st "{\n";
  st.indent <- st.indent + 1;
  List.iter (generic_block st) r;
  st.indent <- st.indent - 1;
  pad st;
  add st "}"

and generic_block st (b : Ir.block) =
  (match b.bargs with
  | [] -> ()
  | args ->
    pad st;
    addf st "^bb(%s):\n"
      (String.concat ", "
         (List.map
            (fun (v : Ir.value) -> Printf.sprintf "%s: %s" (name_of st v) (Ty.to_string v.vty))
            args)));
  List.iter (generic_op st) b.body

let to_generic operation =
  let st = make_state () in
  generic_op st operation;
  Buffer.contents st.buf

(* ------------------------------------------------------------------ *)
(* Pretty form                                                         *)
(* ------------------------------------------------------------------ *)

let attr_string (o : Ir.op) key =
  match Ir.attr o key with Some a -> Attribute.to_string a | None -> "?"

let rec pretty_op st (o : Ir.op) =
  match o.name with
  | "builtin.module" ->
    pad st;
    add st "module {\n";
    st.indent <- st.indent + 1;
    List.iter (pretty_op st) (Ir.single_block o).body;
    st.indent <- st.indent - 1;
    pad st;
    add st "}\n"
  | "func.func" ->
    let block = Ir.single_block o in
    let sym = match Ir.attr o "sym_name" with Some (Str s) -> s | _ -> "?" in
    pad st;
    addf st "func.func @%s(%s)" sym
      (String.concat ", "
         (List.map
            (fun (v : Ir.value) -> Printf.sprintf "%s: %s" (name_of st v) (Ty.to_string v.vty))
            block.bargs));
    (match Ir.attr o "function_type" with
    | Some (Type_attr (Ty.Func (_, results))) when results <> [] ->
      addf st " -> (%s)" (type_list results)
    | _ -> ());
    add st " {\n";
    st.indent <- st.indent + 1;
    List.iter (pretty_op st) block.body;
    st.indent <- st.indent - 1;
    pad st;
    add st "}\n"
  | "func.return" ->
    pad st;
    if o.operands = [] then add st "return\n"
    else addf st "return %s\n" (String.concat ", " (List.map (name_of st) o.operands))
  | "func.call" ->
    pad st;
    (match o.results with
    | [] -> ()
    | results -> addf st "%s = " (String.concat ", " (List.map (name_of st) results)));
    addf st "func.call @%s(%s)\n" (attr_string o "callee" |> strip_quotes)
      (String.concat ", " (List.map (name_of st) o.operands))
  | "arith.constant" ->
    pad st;
    addf st "%s = arith.constant %s : %s\n"
      (name_of st (Ir.result o))
      (attr_string o "value")
      (Ty.to_string (Ir.result o).vty)
  | "scf.for" ->
    let block = Ir.single_block o in
    let iv =
      match block.bargs with
      | [ v ] -> v
      | _ -> invalid_arg "scf.for: expected one block argument"
    in
    let lb, ub, step =
      match o.operands with
      | [ a; b; c ] -> (a, b, c)
      | _ -> invalid_arg "scf.for: expected three operands"
    in
    pad st;
    addf st "scf.for %s = %s to %s step %s {\n" (name_of st iv) (name_of st lb)
      (name_of st ub) (name_of st step);
    st.indent <- st.indent + 1;
    List.iter (pretty_op st) block.body;
    st.indent <- st.indent - 1;
    pad st;
    add st "}\n"
  | "scf.yield" when o.operands = [] -> ()
  | "memref.subview" ->
    pad st;
    let source = match o.operands with s :: _ -> name_of st s | [] -> "?" in
    addf st "%s = memref.subview %s[%s] [%s] [1, ...] : %s\n"
      (name_of st (Ir.result o))
      source
      (attr_string o "static_offsets")
      (attr_string o "static_sizes")
      (Ty.to_string (Ir.result o).vty)
  | "memref.load" ->
    pad st;
    (match o.operands with
    | m :: indices ->
      addf st "%s = memref.load %s[%s] : %s\n"
        (name_of st (Ir.result o))
        (name_of st m)
        (String.concat ", " (List.map (name_of st) indices))
        (Ty.to_string m.vty)
    | [] -> add st "memref.load ?\n")
  | "memref.store" ->
    pad st;
    (match o.operands with
    | v :: m :: indices ->
      addf st "memref.store %s, %s[%s] : %s\n" (name_of st v) (name_of st m)
        (String.concat ", " (List.map (name_of st) indices))
        (Ty.to_string m.vty)
    | _ -> add st "memref.store ?\n")
  | "memref.alloc" ->
    pad st;
    addf st "%s = memref.alloc() : %s\n"
      (name_of st (Ir.result o))
      (Ty.to_string (Ir.result o).vty)
  | "memref.dealloc" ->
    pad st;
    (match o.operands with
    | [ m ] -> addf st "memref.dealloc %s : %s\n" (name_of st m) (Ty.to_string m.vty)
    | _ -> add st "memref.dealloc ?\n")
  | "linalg.generic" ->
    pad st;
    add st "linalg.generic {\n";
    st.indent <- st.indent + 1;
    List.iter
      (fun (k, v) ->
        pad st;
        addf st "%s = %s\n" k (Attribute.to_string v))
      o.attrs;
    st.indent <- st.indent - 1;
    pad st;
    addf st "} ins/outs(%s)" (String.concat ", " (List.map (name_of st) o.operands));
    (match o.regions with
    | [] -> add st "\n"
    | [ r ] ->
      add st " ";
      pretty_kernel st r;
      add st "\n"
    | _ -> add st " <multiple regions>\n")
  | name when String.length name >= 6 && String.sub name 0 6 = "accel." ->
    pad st;
    (match o.results with
    | [] -> ()
    | results -> addf st "%s = " (String.concat ", " (List.map (name_of st) results)));
    addf st "%s" name;
    (match o.attrs with
    | [] -> ()
    | attrs ->
      add st " {";
      add st
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s = %s" k (Attribute.to_string v)) attrs));
      add st "}");
    addf st "(%s) : %s -> %s\n"
      (String.concat ", " (List.map (name_of st) o.operands))
      (type_list (List.map (fun (v : Ir.value) -> v.vty) o.operands))
      (type_list (List.map (fun (v : Ir.value) -> v.vty) o.results))
  | _ ->
    (* Fallback: generic form for unknown ops. *)
    generic_op st o

and pretty_kernel st (r : Ir.region) =
  add st "{\n";
  st.indent <- st.indent + 1;
  List.iter (generic_block st) r;
  st.indent <- st.indent - 1;
  pad st;
  add st "}"

and strip_quotes s =
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else s

let to_pretty operation =
  let st = make_state () in
  pretty_op st operation;
  Buffer.contents st.buf
