(** Affine maps, the MLIR mechanism the paper reuses for
    [indexing_maps], [permutation_map] and [accel_dim].

    A map [(d0, ..., d{n-1}) -> (e0, ..., e{m-1})] takes [n_dims] loop
    indices to a list of affine expressions over them. Symbols are not
    needed by AXI4MLIR and are omitted. *)

type expr =
  | Dim of int  (** [d i] *)
  | Cst of int
  | Add of expr * expr
  | Mul of expr * expr

type t = { n_dims : int; exprs : expr list }

val make : n_dims:int -> expr list -> t
(** Checks that every [Dim i] satisfies [0 <= i < n_dims]. *)

val identity : int -> t
(** [(d0, ..., dn-1) -> (d0, ..., dn-1)]. *)

val projection : n_dims:int -> int list -> t
(** [projection ~n_dims [i; j]] is [(d0, ...) -> (di, dj)]. *)

val permutation : int list -> t
(** [permutation [2; 0; 1]] is [(d0, d1, d2) -> (d2, d0, d1)]: result
    position [p] reads source dimension [perm.(p)]. Raises
    [Invalid_argument] if the list is not a permutation of [0..n-1]. *)

val constant_results : n_dims:int -> int list -> t
(** Map to constants, used for [accel_dim = map<(m, n, k) -> (4, 4, 4)>]. *)

val is_permutation : t -> bool
val is_projection : t -> bool
(** True when every result is a distinct [Dim]. *)

val projected_dims : t -> int list
(** For a projection, the list of source dims in result order.
    Raises [Invalid_argument] otherwise. *)

val eval : t -> int array -> int list
(** Evaluate at concrete dimension values. The array length must be
    [n_dims]. *)

val n_results : t -> int

val compose_permutation : t -> int list -> int list
(** [compose_permutation perm_map order]: given a permutation map and the
    canonical dim order [0..n-1], return the permuted loop order. *)

val to_string : ?dim_names:string list -> t -> string
(** E.g. [affine_map<(d0, d1, d2) -> (d0, d2)>], or with
    [~dim_names:["m"; "n"; "k"]], [affine_map<(m, n, k) -> (m, k)>]. *)

val expr_to_string : string list -> expr -> string
val equal : t -> t -> bool
