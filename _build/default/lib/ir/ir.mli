(** Core IR data structures: SSA values, operations with nested regions,
    blocks, and traversal helpers.

    This mirrors MLIR's meta-IR at the granularity AXI4MLIR needs:
    operations are uninterpreted records carrying a dialect-qualified
    name (["arith.addf"], ["accel.send"], ...), SSA operands/results,
    attributes and regions. Dialects (in [axi_dialects]) provide typed
    constructors and verifiers over this representation. *)

type value = private { vid : int; vty : Ty.t }
(** An SSA value. Identity is by [vid]; values are created only through
    {!fresh_value} so ids are globally unique. *)

type op = {
  name : string;  (** dialect-qualified operation name *)
  operands : value list;
  results : value list;
  attrs : (string * Attribute.t) list;
  regions : region list;
}

and block = { bargs : value list; body : op list }

and region = block list

val fresh_value : Ty.t -> value
(** Allocate a value with a fresh id. *)

val value_counter : unit -> int
(** Current high-water mark of allocated value ids (for diagnostics). *)

val op :
  ?operands:value list ->
  ?results:value list ->
  ?attrs:(string * Attribute.t) list ->
  ?regions:region list ->
  string ->
  op
(** Build an operation. *)

val block : ?args:value list -> op list -> block
val region : block list -> region

(** {1 Attribute access} *)

val attr : op -> string -> Attribute.t option
val attr_exn : op -> string -> Attribute.t
(** Raises [Not_found_attr] (as [Invalid_argument]) with the op name and
    attribute key when missing. *)

val set_attr : op -> string -> Attribute.t -> op
val remove_attr : op -> string -> op
val has_attr : op -> string -> bool

(** {1 Common projections} *)

val result : op -> value
(** Sole result. Raises [Invalid_argument] if the op does not have
    exactly one result. *)

val single_block : op -> block
(** The single block of the op's single region. Raises
    [Invalid_argument] otherwise. *)

val single_region_block : region -> block
(** The single block of a region. *)

(** {1 Traversal} *)

val walk : (op -> unit) -> op -> unit
(** Pre-order visit of an op and every op nested in its regions. *)

val walk_block : (op -> unit) -> block -> unit

val map_nested : (op -> op) -> op -> op
(** Rebuild an op bottom-up: nested ops are transformed first, then the
    (region-updated) op itself is passed to the function. *)

val find_ops : (op -> bool) -> op -> op list
(** All (nested) ops satisfying the predicate, in pre-order. *)

val count_ops : (op -> bool) -> op -> int

(** {1 Module and function helpers} *)

val module_op : op list -> op
(** Wrap top-level ops in a [builtin.module]. *)

val is_module : op -> bool
val module_body : op -> op list
(** Ops of a [builtin.module]. Raises [Invalid_argument] otherwise. *)

val with_module_body : op -> op list -> op
(** Replace the body of a module op. *)
