type value = { vid : int; vty : Ty.t }

type op = {
  name : string;
  operands : value list;
  results : value list;
  attrs : (string * Attribute.t) list;
  regions : region list;
}

and block = { bargs : value list; body : op list }

and region = block list

let counter = ref 0

let fresh_value vty =
  incr counter;
  { vid = !counter; vty }

let value_counter () = !counter

let op ?(operands = []) ?(results = []) ?(attrs = []) ?(regions = []) name =
  { name; operands; results; attrs; regions }

let block ?(args = []) body = { bargs = args; body }
let region blocks = blocks

let attr operation key = List.assoc_opt key operation.attrs

let attr_exn operation key =
  match attr operation key with
  | Some a -> a
  | None ->
    invalid_arg (Printf.sprintf "op %s: missing attribute '%s'" operation.name key)

let set_attr operation key value =
  { operation with attrs = (key, value) :: List.remove_assoc key operation.attrs }

let remove_attr operation key =
  { operation with attrs = List.remove_assoc key operation.attrs }

let has_attr operation key = List.mem_assoc key operation.attrs

let result operation =
  match operation.results with
  | [ v ] -> v
  | results ->
    invalid_arg
      (Printf.sprintf "op %s: expected exactly one result, found %d" operation.name
         (List.length results))

let single_region_block = function
  | [ b ] -> b
  | blocks ->
    invalid_arg (Printf.sprintf "expected a single-block region, found %d blocks"
                   (List.length blocks))

let single_block operation =
  match operation.regions with
  | [ r ] -> single_region_block r
  | regions ->
    invalid_arg
      (Printf.sprintf "op %s: expected a single region, found %d" operation.name
         (List.length regions))

let rec walk f operation =
  f operation;
  List.iter (fun r -> List.iter (walk_block f) r) operation.regions

and walk_block f b = List.iter (walk f) b.body

let rec map_nested f operation =
  let regions =
    List.map
      (fun blocks ->
        List.map (fun b -> { b with body = List.map (map_nested f) b.body }) blocks)
      operation.regions
  in
  f { operation with regions }

let find_ops p operation =
  let acc = ref [] in
  walk (fun o -> if p o then acc := o :: !acc) operation;
  List.rev !acc

let count_ops p operation = List.length (find_ops p operation)

let module_name = "builtin.module"

let module_op body = op module_name ~regions:[ [ block body ] ]

let is_module operation = operation.name = module_name

let module_body operation =
  if not (is_module operation) then
    invalid_arg (Printf.sprintf "expected builtin.module, found %s" operation.name);
  (single_block operation).body

let with_module_body operation body =
  if not (is_module operation) then
    invalid_arg (Printf.sprintf "expected builtin.module, found %s" operation.name);
  { operation with regions = [ [ block body ] ] }
