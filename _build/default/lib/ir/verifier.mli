(** IR verification.

    Structural SSA checks (definitions dominate uses, unique
    definitions) plus a registry of per-operation verifiers that dialect
    libraries populate for their ops. *)

val register_op_verifier : string -> (Ir.op -> (unit, string) result) -> unit
(** Register a verifier for an op name. Registering twice replaces the
    previous verifier (used by tests). *)

val verify : Ir.op -> (unit, string) result
(** Verify an op tree: SSA structure first, then every registered
    per-op verifier (pre-order). The error message names the failing op. *)

val verify_exn : Ir.op -> unit
(** Raises [Failure] with the verification error. *)
