lib/ir/printer.ml: Attribute Buffer Hashtbl Ir List Printf String Ty
