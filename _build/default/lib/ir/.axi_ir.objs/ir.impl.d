lib/ir/ir.ml: Attribute List Printf Ty
