lib/ir/ir_compare.mli: Ir
