lib/ir/parser_ir.mli: Attribute Ir Ty
