lib/ir/parser_ir.ml: Affine_map Attribute Buffer Hashtbl Ir List Opcode Printf String Ty Util
