lib/ir/ty.ml: List Printf String
