lib/ir/affine_map.ml: Array List Printf String
