lib/ir/ty.mli:
