lib/ir/opcode.mli:
