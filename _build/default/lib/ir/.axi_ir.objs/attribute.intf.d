lib/ir/attribute.mli: Affine_map Opcode Ty
