lib/ir/opcode.ml: List Printf Result String
