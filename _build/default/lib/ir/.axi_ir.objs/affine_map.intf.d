lib/ir/affine_map.mli:
