lib/ir/printer.mli: Hashtbl Ir
