lib/ir/pass.ml: Ir List Printer Printf Verifier
