lib/ir/attribute.ml: Affine_map Buffer Float List Opcode Printf String Ty
