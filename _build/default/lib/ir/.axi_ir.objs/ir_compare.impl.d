lib/ir/ir_compare.ml: Attribute Hashtbl Ir List Printf Ty
