lib/ir/builder.ml: Ir List
