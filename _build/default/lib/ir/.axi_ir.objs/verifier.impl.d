lib/ir/verifier.ml: Hashtbl Ir Printf Result
