lib/ir/ir.mli: Attribute Ty
