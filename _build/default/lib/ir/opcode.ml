type action =
  | Send of int
  | Send_literal of int
  | Send_dim of int * int
  | Send_idx of int * int
  | Recv of int

type entry = { key : string; actions : action list }
type map = entry list

type flow_elem = Op of string | Scope of flow_elem list
type flow = flow_elem list

exception Syntax_error of string

(* ------------------------------------------------------------------ *)
(* Lexing helpers shared by both parsers                               *)
(* ------------------------------------------------------------------ *)

type scanner = { src : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

let peek sc = if sc.pos < String.length sc.src then Some sc.src.[sc.pos] else None

let advance sc = sc.pos <- sc.pos + 1

let rec skip_ws sc =
  match peek sc with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance sc;
    skip_ws sc
  | Some _ | None -> ()

let expect sc c =
  skip_ws sc;
  match peek sc with
  | Some c' when c' = c -> advance sc
  | Some c' -> fail "expected '%c' at offset %d, found '%c'" c sc.pos c'
  | None -> fail "expected '%c', found end of input" c

let accept sc c =
  skip_ws sc;
  match peek sc with
  | Some c' when c' = c ->
    advance sc;
    true
  | Some _ | None -> false

let is_id_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let scan_id sc =
  skip_ws sc;
  let start = sc.pos in
  let rec go () =
    match peek sc with
    | Some c when is_id_char c ->
      advance sc;
      go ()
    | Some _ | None -> ()
  in
  go ();
  if sc.pos = start then fail "expected identifier at offset %d" start;
  String.sub sc.src start (sc.pos - start)

let scan_int sc =
  skip_ws sc;
  let start = sc.pos in
  let negative = accept sc '-' in
  let digits_start = sc.pos in
  let hex =
    match (peek sc, sc.pos + 1 < String.length sc.src) with
    | Some '0', true when sc.src.[sc.pos + 1] = 'x' || sc.src.[sc.pos + 1] = 'X' ->
      advance sc;
      advance sc;
      true
    | _ -> false
  in
  let is_digit c =
    if hex then
      (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
    else c >= '0' && c <= '9'
  in
  let rec go () =
    match peek sc with
    | Some c when is_digit c ->
      advance sc;
      go ()
    | Some _ | None -> ()
  in
  go ();
  if sc.pos = digits_start || (hex && sc.pos = digits_start + 2) then
    fail "expected integer at offset %d" start;
  let text = String.sub sc.src digits_start (sc.pos - digits_start) in
  let v =
    match int_of_string_opt text with
    | Some v -> v
    | None -> fail "invalid integer literal %s" text
  in
  if negative then -v else v

let at_end sc =
  skip_ws sc;
  sc.pos >= String.length sc.src

(* Strip an optional `keyword<` ... `>` wrapper around the payload. *)
let strip_wrapper keyword src =
  let trimmed = String.trim src in
  let prefix = keyword ^ "<" in
  if String.length trimmed >= String.length prefix
     && String.sub trimmed 0 (String.length prefix) = prefix
  then
    if trimmed.[String.length trimmed - 1] = '>' then
      String.sub trimmed (String.length prefix)
        (String.length trimmed - String.length prefix - 1)
    else fail "missing closing '>' on %s<...>" keyword
  else trimmed

(* ------------------------------------------------------------------ *)
(* opcode_map parsing (Fig. 7)                                         *)
(* ------------------------------------------------------------------ *)

let parse_action sc =
  let name = scan_id sc in
  expect sc '(';
  let action =
    match name with
    | "send" ->
      let n = scan_int sc in
      Send n
    | "send_literal" ->
      let v = scan_int sc in
      Send_literal v
    | "send_dim" ->
      let n = scan_int sc in
      expect sc ',';
      let d = scan_int sc in
      Send_dim (n, d)
    | "send_idx" ->
      let n = scan_int sc in
      expect sc ',';
      let d = scan_int sc in
      Send_idx (n, d)
    | "recv" ->
      let n = scan_int sc in
      Recv n
    | other -> fail "unknown action '%s'" other
  in
  expect sc ')';
  action

let parse_entry sc =
  let key = scan_id sc in
  expect sc '=';
  expect sc '[';
  let rec actions acc =
    let a = parse_action sc in
    if accept sc ',' then actions (a :: acc) else List.rev (a :: acc)
  in
  let acts =
    if accept sc ']' then []
    else begin
      let l = actions [] in
      expect sc ']';
      l
    end
  in
  { key; actions = acts }

let parse_map src =
  let payload = strip_wrapper "opcode_map" src in
  let sc = { src = payload; pos = 0 } in
  if at_end sc then []
  else begin
    let rec entries acc =
      let e = parse_entry sc in
      if accept sc ',' then entries (e :: acc) else List.rev (e :: acc)
    in
    let result = entries [] in
    if not (at_end sc) then fail "trailing content in opcode_map at offset %d" sc.pos;
    result
  end

(* ------------------------------------------------------------------ *)
(* opcode_flow parsing (Fig. 8)                                        *)
(* ------------------------------------------------------------------ *)

let parse_flow src =
  let payload = strip_wrapper "opcode_flow" src in
  let sc = { src = payload; pos = 0 } in
  let rec parse_elems stop_at_paren acc =
    skip_ws sc;
    match peek sc with
    | None ->
      if stop_at_paren then fail "unbalanced '(' in opcode_flow" else List.rev acc
    | Some ')' ->
      if stop_at_paren then begin
        advance sc;
        List.rev acc
      end
      else fail "unbalanced ')' in opcode_flow at offset %d" sc.pos
    | Some '(' ->
      advance sc;
      let inner = parse_elems true [] in
      parse_elems stop_at_paren (Scope inner :: acc)
    | Some c when is_id_char c ->
      let id = scan_id sc in
      parse_elems stop_at_paren (Op id :: acc)
    | Some c -> fail "unexpected '%c' in opcode_flow at offset %d" c sc.pos
  in
  parse_elems false []

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let action_to_string = function
  | Send n -> Printf.sprintf "send(%d)" n
  | Send_literal v -> Printf.sprintf "send_literal(0x%X)" v
  | Send_dim (n, d) -> Printf.sprintf "send_dim(%d, %d)" n d
  | Send_idx (n, d) -> Printf.sprintf "send_idx(%d, %d)" n d
  | Recv n -> Printf.sprintf "recv(%d)" n

let entry_to_string e =
  Printf.sprintf "%s = [%s]" e.key
    (String.concat ", " (List.map action_to_string e.actions))

let map_to_string m =
  Printf.sprintf "opcode_map<%s>" (String.concat ", " (List.map entry_to_string m))

let rec flow_elem_to_string = function
  | Op key -> key
  | Scope elems -> Printf.sprintf "(%s)" (String.concat " " (List.map flow_elem_to_string elems))

let flow_to_string f =
  Printf.sprintf "opcode_flow<%s>" (String.concat " " (List.map flow_elem_to_string f))

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let rec check_all f = function
  | [] -> Ok ()
  | x :: rest ->
    let* () = f x in
    check_all f rest

let validate_action ~n_args a =
  let check_arg n =
    if n < 0 || n >= n_args then
      Error (Printf.sprintf "argument index %d out of range [0, %d)" n n_args)
    else Ok ()
  in
  match a with
  | Send n | Recv n -> check_arg n
  | Send_literal v ->
    if v < 0 || v > 0xFFFFFFFF then
      Error (Printf.sprintf "literal 0x%X does not fit an unsigned 32-bit word" v)
    else Ok ()
  | Send_dim (n, d) | Send_idx (n, d) ->
    let* () = check_arg n in
    if d < 0 then Error (Printf.sprintf "negative dimension index %d" d) else Ok ()

let validate_map ~n_args m =
  let* () =
    check_all
      (fun e ->
        if e.key = "" then Error "empty opcode key"
        else check_all (validate_action ~n_args) e.actions)
      m
  in
  let keys = List.map (fun e -> e.key) m in
  if List.length (List.sort_uniq compare keys) <> List.length keys then
    Error "duplicate opcode keys in opcode_map"
  else Ok ()

let find m key = List.find_opt (fun e -> e.key = key) m

let rec flow_opcodes_of_elems elems =
  List.concat_map (function Op k -> [ k ] | Scope inner -> flow_opcodes_of_elems inner) elems

let flow_opcodes f = flow_opcodes_of_elems f

let validate_flow m f =
  let keys = flow_opcodes f in
  let* () =
    check_all
      (fun k ->
        match find m k with
        | Some _ -> Ok ()
        | None -> Error (Printf.sprintf "opcode '%s' is not defined in the opcode_map" k))
      keys
  in
  let* () =
    if List.length (List.sort_uniq compare keys) <> List.length keys then
      Error "an opcode appears more than once in the opcode_flow"
    else Ok ()
  in
  let rec no_empty_scope = function
    | [] -> Ok ()
    | Op _ :: rest -> no_empty_scope rest
    | Scope [] :: _ -> Error "empty scope '()' in opcode_flow"
    | Scope inner :: rest ->
      let* () = no_empty_scope inner in
      no_empty_scope rest
  in
  if f = [] then Error "empty opcode_flow" else no_empty_scope f

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* The top-level of the flow counts as depth 0 when it only contains a
   single scope (the common `(...)` wrapper); opcodes written at the top
   level without parentheses sit in an implicit depth-1 scope. *)
let flow_depth f =
  (* Depth of the whole flow = deepest scope nesting reached by any
     opcode; a bare top-level opcode counts as depth 1. *)
  let rec opcode_depth current = function
    | Op _ -> max current 1
    | Scope inner ->
      List.fold_left (fun acc e -> max acc (opcode_depth (current + 1) e)) (current + 1) inner
  in
  List.fold_left (fun acc e -> max acc (opcode_depth 0 e)) 0 f

let flow_placements f =
  let rec go depth acc = function
    | [] -> acc
    | Op k :: rest -> go depth ((k, max depth 1) :: acc) rest
    | Scope inner :: rest ->
      let acc = go (depth + 1) acc inner in
      go depth acc rest
  in
  List.rev (go 0 [] f)

let actions_of_flow m f =
  List.concat_map
    (fun k -> match find m k with Some e -> e.actions | None -> [])
    (flow_opcodes f)

let sends_of_actions actions =
  List.filter_map (function Send n -> Some n | _ -> None) actions

let recvs_of_actions actions =
  List.filter_map (function Recv n -> Some n | _ -> None) actions

let equal_map a b = a = b
let equal_flow a b = a = b
