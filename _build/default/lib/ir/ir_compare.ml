exception Mismatch of string

(* The bijection between the two sides' value ids, built as definitions
   are encountered and checked at every use. *)
type ctx = {
  fwd : (int, int) Hashtbl.t;
  bwd : (int, int) Hashtbl.t;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Mismatch s)) fmt

let bind ctx (a : Ir.value) (b : Ir.value) =
  if not (Ty.equal a.vty b.vty) then
    fail "value types differ: %s vs %s" (Ty.to_string a.vty) (Ty.to_string b.vty);
  (match Hashtbl.find_opt ctx.fwd a.vid with
  | Some prior when prior <> b.vid -> fail "value %%v%d rebound inconsistently" a.vid
  | Some _ | None -> ());
  (match Hashtbl.find_opt ctx.bwd b.vid with
  | Some prior when prior <> a.vid -> fail "value %%v%d matched twice" b.vid
  | Some _ | None -> ());
  Hashtbl.replace ctx.fwd a.vid b.vid;
  Hashtbl.replace ctx.bwd b.vid a.vid

let check_use ctx (a : Ir.value) (b : Ir.value) =
  match Hashtbl.find_opt ctx.fwd a.vid with
  | Some expected when expected = b.vid -> ()
  | Some _ -> fail "operand %%v%d maps to a different value" a.vid
  | None -> fail "operand %%v%d used before definition on one side" a.vid

let rec compare_op ctx (a : Ir.op) (b : Ir.op) =
  if a.name <> b.name then fail "op names differ: %s vs %s" a.name b.name;
  if List.length a.operands <> List.length b.operands then
    fail "op %s: operand counts differ" a.name;
  List.iter2 (check_use ctx) a.operands b.operands;
  let sort_attrs attrs = List.sort (fun (k, _) (k', _) -> compare k k') attrs in
  let attrs_a = sort_attrs a.attrs and attrs_b = sort_attrs b.attrs in
  if List.length attrs_a <> List.length attrs_b then
    fail "op %s: attribute counts differ" a.name;
  List.iter2
    (fun (ka, va) (kb, vb) ->
      if ka <> kb then fail "op %s: attribute keys differ (%s vs %s)" a.name ka kb;
      if not (Attribute.equal va vb) then
        fail "op %s: attribute %s differs: %s vs %s" a.name ka (Attribute.to_string va)
          (Attribute.to_string vb))
    attrs_a attrs_b;
  if List.length a.regions <> List.length b.regions then
    fail "op %s: region counts differ" a.name;
  List.iter2 (compare_region ctx a.name) a.regions b.regions;
  if List.length a.results <> List.length b.results then
    fail "op %s: result counts differ" a.name;
  List.iter2 (bind ctx) a.results b.results

and compare_region ctx opname (ra : Ir.region) (rb : Ir.region) =
  if List.length ra <> List.length rb then fail "op %s: block counts differ" opname;
  List.iter2
    (fun (ba : Ir.block) (bb : Ir.block) ->
      if List.length ba.bargs <> List.length bb.bargs then
        fail "op %s: block argument counts differ" opname;
      List.iter2 (bind ctx) ba.bargs bb.bargs;
      if List.length ba.body <> List.length bb.body then
        fail "op %s: block op counts differ (%d vs %d)" opname (List.length ba.body)
          (List.length bb.body);
      List.iter2 (compare_op ctx) ba.body bb.body)
    ra rb

let diff_op a b =
  let ctx = { fwd = Hashtbl.create 64; bwd = Hashtbl.create 64 } in
  match compare_op ctx a b with () -> None | exception Mismatch msg -> Some msg

let equal_op a b = diff_op a b = None
