(** Structural comparison of IR, modulo SSA value identities.

    Two ops are structurally equal when they have the same name,
    attributes and region shapes, and their value uses correspond under
    a consistent bijection of value ids — the right notion of equality
    for parser round-trips and pass idempotence checks, where fresh
    values are allocated on every construction. *)

val equal_op : Ir.op -> Ir.op -> bool

val diff_op : Ir.op -> Ir.op -> string option
(** [None] when equal; otherwise a human-readable description of the
    first structural difference found (for test failure messages). *)
