type t = { mutable stack : Ir.op list ref list }

let create () = { stack = [ ref [] ] }

let top b =
  match b.stack with
  | cell :: _ -> cell
  | [] -> invalid_arg "Builder: empty insertion stack"

let emit b operation =
  let cell = top b in
  cell := operation :: !cell

let emit_result b operation =
  emit b operation;
  Ir.result operation

let nest b f =
  let cell = ref [] in
  b.stack <- cell :: b.stack;
  let pop () =
    match b.stack with
    | _ :: rest -> b.stack <- rest
    | [] -> assert false
  in
  (try f ()
   with exn ->
     pop ();
     raise exn);
  pop ();
  List.rev !cell

let finish b =
  match b.stack with
  | [ cell ] -> List.rev !cell
  | _ -> invalid_arg "Builder.finish: called inside a nest"
