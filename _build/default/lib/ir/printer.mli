(** IR printing.

    Two renderings are provided:

    - {!to_generic}: MLIR's "generic operation form"
      ([%0 = "arith.addf"(%1, %2) : (f32, f32) -> (f32)]), which
      {!Parser_ir} can parse back (round-trip property).
    - {!to_pretty}: a human-oriented form with custom syntax for the
      common dialects, resembling the paper's figures (not parseable). *)

val to_generic : Ir.op -> string
(** Print an op (typically a [builtin.module]) in generic form. *)

val to_pretty : Ir.op -> string
(** Print with per-dialect sugar ([func.func], [scf.for],
    [arith.constant], [memref.*], [accel.*], [linalg.generic] traits). *)

val value_name : (int, string) Hashtbl.t -> Ir.value -> string
(** Shared value-naming helper (used by error messages): returns the
    [%N] name assigned to the value in this table, assigning the next
    number if absent. *)
