(** Operation attributes.

    Includes the standard scalar/aggregate attributes plus the AXI4MLIR
    extensions: affine maps (for [accel_dim], [permutation_map] and
    linalg [indexing_maps]) and the {!Opcode} map/flow attributes. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Type_attr of Ty.t
  | Ints of int list  (** dense integer array, e.g. static tile sizes *)
  | Strs of string list  (** e.g. [iterator_types] *)
  | Array of t list
  | Dict of (string * t) list
  | Affine of Affine_map.t
  | Opcode_map of Opcode.map
  | Opcode_flow of Opcode.flow

val to_string : t -> string
(** MLIR-flavoured rendering, round-trippable by the IR parser. *)

val equal : t -> t -> bool

(** {1 Typed projections}

    Raise [Invalid_argument] with the attribute's rendering on
    mismatch. *)

val get_int : t -> int
val get_str : t -> string
val get_bool : t -> bool
val get_ints : t -> int list
val get_strs : t -> string list
val get_affine : t -> Affine_map.t
val get_opcode_map : t -> Opcode.map
val get_opcode_flow : t -> Opcode.flow
val get_dict : t -> (string * t) list
val get_type : t -> Ty.t
val get_array : t -> t list
