(** An imperative op-list builder, the analogue of MLIR's [OpBuilder].

    Dialect constructor functions take a builder and append ops to the
    current insertion point; nested regions are built with {!nest}. *)

type t

val create : unit -> t

val emit : t -> Ir.op -> unit
(** Append an op at the current insertion point. *)

val emit_result : t -> Ir.op -> Ir.value
(** Append and return its sole result. *)

val nest : t -> (unit -> unit) -> Ir.op list
(** [nest b f] runs [f] with the insertion point redirected into a fresh
    op list and returns the ops emitted by [f]. The previous insertion
    point is restored afterwards (also on exceptions). *)

val finish : t -> Ir.op list
(** The ops emitted at the top level, in order. The builder must not be
    inside a {!nest}. *)
