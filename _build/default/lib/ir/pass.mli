(** Pass manager: named module-to-module transformations with optional
    inter-pass verification and IR dumping, mirroring MLIR's
    [PassManager]. *)

type t = { pass_name : string; run : Ir.op -> Ir.op }

val make : string -> (Ir.op -> Ir.op) -> t

type options = {
  verify_each : bool;  (** run {!Verifier.verify} after every pass *)
  dump_each : bool;  (** print generic IR after every pass to stderr *)
}

val default_options : options
(** [verify_each = true], [dump_each = false]. *)

exception Pass_failure of string * string
(** [(pass name, message)] — raised when post-pass verification fails. *)

val run_pipeline : ?options:options -> t list -> Ir.op -> Ir.op
