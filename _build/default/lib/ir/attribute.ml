type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Type_attr of Ty.t
  | Ints of int list
  | Strs of string list
  | Array of t list
  | Dict of (string * t) list
  | Affine of Affine_map.t
  | Opcode_map of Opcode.map
  | Opcode_flow of Opcode.flow

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.6e" f
  else Printf.sprintf "%.17g" f

let rec to_string = function
  | Unit -> "unit"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> float_literal f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Type_attr ty -> Printf.sprintf "type(%s)" (Ty.to_string ty)
  | Ints l -> Printf.sprintf "dense<[%s]>" (String.concat ", " (List.map string_of_int l))
  | Strs l ->
    Printf.sprintf "[%s]"
      (String.concat ", " (List.map (fun s -> Printf.sprintf "#%s" s) l))
  | Array l -> Printf.sprintf "[%s]" (String.concat ", " (List.map to_string l))
  | Dict members ->
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s = %s" k (to_string v)) members))
  | Affine m -> Affine_map.to_string m
  | Opcode_map m -> Opcode.map_to_string m
  | Opcode_flow f -> Opcode.flow_to_string f

let equal a b = a = b

let mismatch what attr =
  invalid_arg (Printf.sprintf "Attribute: expected %s, found %s" what (to_string attr))

let get_int = function Int i -> i | a -> mismatch "int" a
let get_str = function Str s -> s | a -> mismatch "string" a
let get_bool = function Bool b -> b | a -> mismatch "bool" a
let get_ints = function Ints l -> l | a -> mismatch "dense ints" a
let get_strs = function Strs l -> l | a -> mismatch "strings" a
let get_affine = function Affine m -> m | a -> mismatch "affine_map" a
let get_opcode_map = function Opcode_map m -> m | a -> mismatch "opcode_map" a
let get_opcode_flow = function Opcode_flow f -> f | a -> mismatch "opcode_flow" a
let get_dict = function Dict d -> d | a -> mismatch "dict" a
let get_type = function Type_attr ty -> ty | a -> mismatch "type" a
let get_array = function Array l -> l | a -> mismatch "array" a
