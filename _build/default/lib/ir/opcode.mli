(** The [opcode_map] and [opcode_flow] attributes (paper Sec. III-C,
    Figs. 7 and 8).

    An {e opcode} names a sequence of {e actions} — memory operations on
    the DMA region that drive the accelerator: sending an instruction
    literal, sending/receiving tiles of a [linalg.generic] argument, or
    sending tile dimensions / loop indices for runtime-configurable
    accelerators.

    An {e opcode flow} arranges opcodes into nested scopes; each scope
    level maps to one loop-nest level of the tiled algorithm, so the flow
    expresses which data structure stays {e stationary} (hoisted out of
    inner loops). *)

type action =
  | Send of int  (** [send(n)]: transmit the current tile of argument [n] *)
  | Send_literal of int  (** [send_literal(0x22)]: transmit an opcode word *)
  | Send_dim of int * int
      (** [send_dim(n, d)]: transmit dimension [d] of argument [n]'s tile *)
  | Send_idx of int * int
      (** [send_idx(n, d)]: transmit the current tile index of argument
          [n] along dimension [d] *)
  | Recv of int  (** [recv(n)]: receive the tile of argument [n] *)

type entry = { key : string; actions : action list }

type map = entry list
(** Fig. 7: a dictionary from opcode identifiers to action lists. *)

type flow_elem =
  | Op of string  (** reference to an opcode key *)
  | Scope of flow_elem list  (** parenthesised sub-flow = inner loop nest *)

type flow = flow_elem list
(** Fig. 8: the (top-level) flow expression. The flow
    [(sA (sB cC rC))] is [[Scope [Op "sA"; Scope [Op "sB"; ...]]]]. *)

(** {1 Parsing and printing} *)

exception Syntax_error of string

val parse_map : string -> map
(** Parse the Fig. 7 concrete syntax, e.g.
    ["opcode_map<sA = [send_literal(0x22), send(0)], reset = [send_literal(0xFF)]>"].
    The leading ["opcode_map<"]/trailing [">"] wrapper is optional.
    Raises {!Syntax_error}. *)

val parse_flow : string -> flow
(** Parse the Fig. 8 concrete syntax, e.g. ["opcode_flow<(sA (sB cC rC))>"].
    The wrapper is optional. Raises {!Syntax_error}. *)

val map_to_string : map -> string
(** Round-trippable rendering including the [opcode_map<...>] wrapper.
    Literals are printed in hexadecimal, as in the paper. *)

val flow_to_string : flow -> string
(** Round-trippable rendering including the [opcode_flow<...>] wrapper. *)

val action_to_string : action -> string

(** {1 Validation} *)

val validate_map : n_args:int -> map -> (unit, string) result
(** Keys must be distinct and non-empty; argument indices must lie in
    [0 .. n_args-1]; literals must fit an unsigned 32-bit word;
    dimension indices must be non-negative. *)

val validate_flow : map -> flow -> (unit, string) result
(** Every referenced opcode must exist in the map; scopes must be
    non-empty; an opcode must not appear twice in the same flow. *)

(** {1 Queries} *)

val find : map -> string -> entry option

val flow_depth : flow -> int
(** Maximum scope nesting of the flow; [ (sA (sB cC rC)) ] has depth 2.
    A flow with no scopes at all has depth 0 (treated as depth 1 — one
    implicit scope — by {!flow_placements}). *)

val flow_placements : flow -> (string * int) list
(** Each opcode paired with its 1-based scope depth, in source order.
    [(sA (sB cC rC))] gives [[("sA", 1); ("sB", 2); ("cC", 2); ("rC", 2)]]. *)

val flow_opcodes : flow -> string list
(** Opcode keys in source order. *)

val actions_of_flow : map -> flow -> action list
(** Flatten the flow into the action sequence executed per full
    traversal, ignoring scoping (useful for transfer-volume analysis).
    Unknown keys are skipped. *)

val sends_of_actions : action list -> int list
(** Argument indices sent by an action list (in order). *)

val recvs_of_actions : action list -> int list
(** Argument indices received by an action list (in order). *)

val equal_map : map -> map -> bool
val equal_flow : flow -> flow -> bool
