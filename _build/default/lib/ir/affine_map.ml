type expr = Dim of int | Cst of int | Add of expr * expr | Mul of expr * expr

type t = { n_dims : int; exprs : expr list }

let rec check_expr n_dims = function
  | Dim i ->
    if i < 0 || i >= n_dims then
      invalid_arg (Printf.sprintf "Affine_map: d%d out of range for %d dims" i n_dims)
  | Cst _ -> ()
  | Add (a, b) | Mul (a, b) ->
    check_expr n_dims a;
    check_expr n_dims b

let make ~n_dims exprs =
  List.iter (check_expr n_dims) exprs;
  { n_dims; exprs }

let identity n = { n_dims = n; exprs = List.init n (fun i -> Dim i) }

let projection ~n_dims dims = make ~n_dims (List.map (fun i -> Dim i) dims)

let permutation perm =
  let n = List.length perm in
  let sorted = List.sort compare perm in
  if sorted <> List.init n (fun i -> i) then
    invalid_arg "Affine_map.permutation: not a permutation";
  projection ~n_dims:n perm

let constant_results ~n_dims csts = make ~n_dims (List.map (fun c -> Cst c) csts)

let dim_of_expr = function Dim i -> Some i | Cst _ | Add _ | Mul _ -> None

let is_projection t =
  let dims = List.filter_map dim_of_expr t.exprs in
  List.length dims = List.length t.exprs
  && List.length (List.sort_uniq compare dims) = List.length dims

let is_permutation t = is_projection t && List.length t.exprs = t.n_dims

let projected_dims t =
  if not (is_projection t) then invalid_arg "Affine_map.projected_dims: not a projection";
  List.filter_map dim_of_expr t.exprs

let rec eval_expr values = function
  | Dim i -> values.(i)
  | Cst c -> c
  | Add (a, b) -> eval_expr values a + eval_expr values b
  | Mul (a, b) -> eval_expr values a * eval_expr values b

let eval t values =
  if Array.length values <> t.n_dims then
    invalid_arg "Affine_map.eval: wrong number of dimension values";
  List.map (eval_expr values) t.exprs

let n_results t = List.length t.exprs

let compose_permutation t order =
  if not (is_permutation t) then
    invalid_arg "Affine_map.compose_permutation: not a permutation map";
  List.map (fun i -> List.nth order i) (projected_dims t)

let rec expr_to_string names = function
  | Dim i -> List.nth names i
  | Cst c -> string_of_int c
  | Add (a, b) -> Printf.sprintf "%s + %s" (expr_to_string names a) (expr_to_string names b)
  | Mul (a, b) -> Printf.sprintf "%s * %s" (expr_to_string names a) (expr_to_string names b)

let to_string ?dim_names t =
  let names =
    match dim_names with
    | Some names when List.length names = t.n_dims -> names
    | Some _ | None -> List.init t.n_dims (fun i -> Printf.sprintf "d%d" i)
  in
  Printf.sprintf "affine_map<(%s) -> (%s)>" (String.concat ", " names)
    (String.concat ", " (List.map (expr_to_string names) t.exprs))

let equal a b = a = b
