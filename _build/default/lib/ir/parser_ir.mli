(** Parser for the generic operation form produced by
    {!Printer.to_generic}.

    Fresh SSA values are allocated for every value name encountered, so
    a parsed module is structurally equal to — but shares no value ids
    with — the module that was printed. The round-trip law is
    [to_generic (parse (to_generic m)) = to_generic m]. *)

exception Parse_error of string
(** Message includes line and column. *)

val parse_op : string -> Ir.op
(** Parse a single top-level operation (typically a
    [builtin.module]). *)

val parse_type : string -> Ty.t
(** Parse a type in isolation (exposed for tests). *)

val parse_attribute : string -> Attribute.t
(** Parse an attribute in isolation (exposed for tests). *)
