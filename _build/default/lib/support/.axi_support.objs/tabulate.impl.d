lib/support/tabulate.ml: List Printf String
