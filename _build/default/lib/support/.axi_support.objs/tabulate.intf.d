lib/support/tabulate.mli:
