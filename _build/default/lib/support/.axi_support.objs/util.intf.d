lib/support/util.mli:
