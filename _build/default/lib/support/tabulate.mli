(** Plain-text table rendering for benchmark and experiment reports. *)

type align = Left | Right

type t
(** A table under construction: a header row plus data rows. *)

val create : (string * align) list -> t
(** [create columns] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** Append a data row. Raises [Invalid_argument] if the row width does not
    match the header width. *)

val add_rule : t -> unit
(** Append a horizontal rule (drawn as dashes when rendered). *)

val render : t -> string
(** Render the table with aligned columns, including a rule under the
    header. *)

val print : ?title:string -> t -> unit
(** Print to stdout, optionally preceded by an underlined title. *)

val fmt_ms : float -> string
(** Format a duration in milliseconds with 3 significant decimals. *)

val fmt_x : float -> string
(** Format a speedup factor as ["1.23x"]. *)

val fmt_pct : float -> string
(** Format a ratio as a percentage, e.g. [0.56 -> "56.0%"]. *)
