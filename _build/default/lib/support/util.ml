let round_up n ~multiple =
  assert (multiple > 0);
  (n + multiple - 1) / multiple * multiple

let ceil_div a b =
  assert (b > 0 && a >= 0);
  (a + b - 1) / b

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  if not (is_pow2 n) then invalid_arg "Util.log2: not a power of two";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let divisors n =
  assert (n > 0);
  List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

let range n = List.init n (fun i -> i)

let product = List.fold_left ( * ) 1

let transpose_assoc l k = List.assoc_opt k l

let list_index p l =
  let rec go i = function
    | [] -> None
    | x :: rest -> if p x then Some i else go (i + 1) rest
  in
  go 0 l

let rec list_take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: list_take (n - 1) rest

let rec list_drop n l =
  match l with
  | [] -> []
  | _ :: rest -> if n <= 0 then l else list_drop (n - 1) rest

let string_of_list ?(sep = ", ") f l = String.concat sep (List.map f l)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let geomean = function
  | [] -> nan
  | l ->
    let n = float_of_int (List.length l) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 l /. n)

let mean = function
  | [] -> nan
  | l ->
    List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let fmax_list = function
  | [] -> invalid_arg "Util.fmax_list: empty list"
  | x :: rest -> List.fold_left max x rest
