type align = Left | Right

type row = Data of string list | Rule

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reverse order *)
}

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tabulate.add_row: row width does not match headers";
  t.rows <- Data row :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row ->
        match row with
        | Rule -> widths
        | Data cells -> List.map2 (fun w c -> max w (String.length c)) widths cells)
      (List.map String.length headers)
      rows
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let render_cells cells =
    let padded =
      List.map2 (fun (w, a) c -> pad a w c)
        (List.combine widths aligns)
        cells
    in
    String.concat "  " padded
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let body =
    List.map (function Rule -> rule | Data cells -> render_cells cells) rows
  in
  String.concat "\n" (render_cells headers :: rule :: body)

let print ?title t =
  (match title with
  | None -> ()
  | Some s ->
    print_newline ();
    print_endline s;
    print_endline (String.make (String.length s) '='));
  print_endline (render t)

let fmt_ms ms = Printf.sprintf "%.3f" ms
let fmt_x x = Printf.sprintf "%.2fx" x
let fmt_pct r = Printf.sprintf "%.1f%%" (r *. 100.0)
