(** Small general-purpose helpers shared across the AXI4MLIR libraries. *)

val round_up : int -> multiple:int -> int
(** [round_up n ~multiple] is the smallest multiple of [multiple] that is
    [>= n]. [multiple] must be positive. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded towards positive infinity.
    [b] must be positive and [a] non-negative. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is [true] iff [n] is a positive power of two. *)

val log2 : int -> int
(** [log2 n] for a positive power of two [n]. Raises [Invalid_argument]
    otherwise. *)

val divisors : int -> int list
(** Positive divisors of [n > 0], in increasing order. *)

val range : int -> int list
(** [range n] is [[0; 1; ...; n-1]]. *)

val product : int list -> int
(** Product of a list of integers; [1] on the empty list. *)

val transpose_assoc : ('a * 'b) list -> 'a -> 'b option
(** Association-list lookup that does not raise. *)

val list_index : ('a -> bool) -> 'a list -> int option
(** Index of the first element satisfying the predicate. *)

val list_take : int -> 'a list -> 'a list
(** First [n] elements (all of them if the list is shorter). *)

val list_drop : int -> 'a list -> 'a list
(** All but the first [n] elements ([[]] if the list is shorter). *)

val string_of_list : ?sep:string -> ('a -> string) -> 'a list -> string
(** Render a list with a separator (default [", "]). *)

val permutations : 'a list -> 'a list list
(** All permutations of a (short) list. *)

val geomean : float list -> float
(** Geometric mean; [nan] on the empty list. *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val fmax_list : float list -> float
(** Maximum of a non-empty float list. Raises [Invalid_argument] on []. *)
