(* Direct interpreter tests: op-by-op semantics, user function calls,
   cost charging, and error reporting. The e2e suite covers whole
   pipelines; this one pins the interpreter itself. *)

let soc () = Soc.create ()

let run_module ?(args = []) soc modul name =
  let interp = Interp.create soc modul in
  Interp.invoke interp name args

let simple_func name args ?(results = []) body =
  Ir.module_op [ Func.func_op ~name ~args ~results body ]

let test_arith_ops () =
  let m =
    simple_func "f" [ Ty.index; Ty.index ] ~results:[ Ty.index; Ty.index; Ty.index ]
      (fun b args ->
        match args with
        | [ x; y ] ->
          let s = Arith.addi b x y in
          let d = Arith.subi b x y in
          let p = Arith.muli b x y in
          Func.return_op b [ s; d; p ]
        | _ -> assert false)
  in
  match run_module (soc ()) m "f" ~args:[ Interp.I 10; Interp.I 3 ] with
  | [ Interp.I 13; Interp.I 7; Interp.I 30 ] -> ()
  | _ -> Alcotest.fail "integer arithmetic"

let test_float_ops () =
  let m =
    simple_func "f" [] ~results:[ Ty.f32 ] (fun b _ ->
        let a = Arith.constant_f32 b 1.5 in
        let c = Arith.constant_f32 b 2.0 in
        let p = Arith.mulf b a c in
        let s = Arith.addf b p a in
        Func.return_op b [ s ])
  in
  match run_module (soc ()) m "f" with
  | [ Interp.F v ] -> Alcotest.(check (float 1e-9)) "float chain" 4.5 v
  | _ -> Alcotest.fail "float arithmetic"

let test_loop_semantics () =
  (* sum 0..9 via memref accumulation *)
  let m =
    simple_func "f" [] ~results:[ Ty.f32 ] (fun b _ ->
        let acc = Memref_d.alloc b (Ty.memref [ 1 ] Ty.F32) in
        let zero = Arith.constant_index b 0 in
        let one = Arith.constant_f32 b 1.0 in
        Scf.for_range b ~lb:0 ~ub:10 ~step:1 (fun b _iv ->
            let cur = Memref_d.load b acc [ zero ] in
            let next = Arith.addf b cur one in
            Memref_d.store b next acc [ zero ]);
        let final = Memref_d.load b acc [ zero ] in
        Func.return_op b [ final ])
  in
  match run_module (soc ()) m "f" with
  | [ Interp.F v ] -> Alcotest.(check (float 1e-9)) "loop trip count" 10.0 v
  | _ -> Alcotest.fail "loop"

let test_loop_bounds_and_step () =
  let m =
    simple_func "f" [] ~results:[ Ty.f32 ] (fun b _ ->
        let acc = Memref_d.alloc b (Ty.memref [ 1 ] Ty.F32) in
        let zero = Arith.constant_index b 0 in
        let one = Arith.constant_f32 b 1.0 in
        (* lb 2, ub 11, step 3 -> iterations at 2, 5, 8 *)
        Scf.for_range b ~lb:2 ~ub:11 ~step:3 (fun b _ ->
            let cur = Memref_d.load b acc [ zero ] in
            Memref_d.store b (Arith.addf b cur one) acc [ zero ]);
        Func.return_op b [ Memref_d.load b acc [ zero ] ])
  in
  match run_module (soc ()) m "f" with
  | [ Interp.F v ] -> Alcotest.(check (float 1e-9)) "strided trip count" 3.0 v
  | _ -> Alcotest.fail "loop bounds"

let test_subview_load_store () =
  let s = soc () in
  let buf = Sim_memory.alloc s.Soc.memory ~label:"m" 16 in
  Array.iteri (fun i _ -> buf.Sim_memory.data.(i) <- float_of_int i) buf.Sim_memory.data;
  let view = Memref_view.of_buffer buf [ 4; 4 ] in
  let m =
    simple_func "f" [ Ty.memref [ 4; 4 ] Ty.F32 ] ~results:[ Ty.f32 ] (fun b args ->
        match args with
        | [ mem ] ->
          let one = Arith.constant_index b 1 in
          let two = Arith.constant_index b 2 in
          let sub = Memref_d.subview b mem ~offsets:[ one; two ] ~sizes:[ 2; 2 ] in
          let zero = Arith.constant_index b 0 in
          (* sub[0][0] = source[1][2] = 6 *)
          let v = Memref_d.load b sub [ zero; zero ] in
          Memref_d.store b v sub [ one; one ];
          Func.return_op b [ v ]
        | _ -> assert false)
  in
  (match run_module s m "f" ~args:[ Interp.M view ] with
  | [ Interp.F v ] -> Alcotest.(check (float 1e-9)) "subview read" 6.0 v
  | _ -> Alcotest.fail "subview");
  (* sub[1][1] = source[2][3] = index 11 *)
  Alcotest.(check (float 1e-9)) "subview write" 6.0 (Sim_memory.get buf 11)

let test_user_function_call () =
  let callee =
    Func.func_op ~name:"double" ~args:[ Ty.index ] ~results:[ Ty.index ] (fun b args ->
        match args with
        | [ x ] -> Func.return_op b [ Arith.addi b x x ]
        | _ -> assert false)
  in
  let caller =
    Func.func_op ~name:"main" ~args:[] ~results:[ Ty.index ] (fun b _ ->
        let c = Arith.constant_index b 21 in
        match Func.call b ~callee:"double" ~results:[ Ty.index ] [ c ] with
        | [ r ] -> Func.return_op b [ r ]
        | _ -> assert false)
  in
  match run_module (soc ()) (Ir.module_op [ callee; caller ]) "main" with
  | [ Interp.I 42 ] -> ()
  | _ -> Alcotest.fail "user call"

let test_cost_charging () =
  let s = soc () in
  let m =
    simple_func "f" [] (fun b _ ->
        Scf.for_range b ~lb:0 ~ub:100 ~step:1 (fun b iv -> ignore (Arith.addi b iv iv));
        Func.return_op b [])
  in
  ignore (run_module s m "f");
  let c = s.Soc.counters in
  (* 100 loop iterations: 100 branches; 100 addi + 3 bound constants *)
  Alcotest.(check (float 0.0)) "branches" 100.0 c.Perf_counters.branches;
  Alcotest.(check bool) "cycles accumulated" true (c.Perf_counters.cycles > 300.0)

let expect_error f =
  match f () with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a runtime error"

let test_errors () =
  let s = soc () in
  (* unknown function *)
  let empty = Ir.module_op [] in
  expect_error (fun () -> run_module s empty "nope");
  (* arity mismatch *)
  let m = simple_func "f" [ Ty.index ] (fun b _ -> Func.return_op b []) in
  expect_error (fun () -> run_module s m "f" ~args:[]);
  (* type mismatch: float where int expected *)
  let m2 =
    simple_func "g" [ Ty.index ] ~results:[ Ty.index ] (fun b args ->
        match args with
        | [ x ] -> Func.return_op b [ Arith.addi b x x ]
        | _ -> assert false)
  in
  expect_error (fun () -> run_module s m2 "g" ~args:[ Interp.F 1.0 ]);
  (* accel op before dma_init *)
  let m3 =
    simple_func "h" [] (fun b _ ->
        let lit = Arith.constant_i32 b 0xFF in
        let off = Arith.constant_i32 b 0 in
        ignore (Accel.send_literal ~flush:true b ~literal:lit ~offset:off);
        Func.return_op b [])
  in
  expect_error (fun () -> run_module s m3 "h");
  (* unsupported op *)
  let weird =
    Ir.module_op
      [
        Ir.op "func.func"
          ~attrs:
            [
              ("sym_name", Attribute.Str "w");
              ("function_type", Attribute.Type_attr (Ty.Func ([], [])));
            ]
          ~regions:[ [ Ir.block [ Ir.op "mystery.op"; Ir.op "func.return" ] ] ];
      ]
  in
  expect_error (fun () -> run_module s weird "w")

let test_linalg_rejected () =
  let m = Axi4mlir.build_matmul_module ~m:4 ~n:4 ~k:4 () in
  let s = soc () in
  let buf label = Sim_memory.alloc s.Soc.memory ~label 16 in
  let v label = Memref_view.of_buffer (buf label) [ 4; 4 ] in
  expect_error (fun () ->
      run_module s m "matmul_call"
        ~args:[ Interp.M (v "a"); Interp.M (v "b"); Interp.M (v "c") ])

let test_index_cast () =
  let m =
    simple_func "f" [] ~results:[ Ty.i32 ] (fun b _ ->
        let idx = Arith.constant_index b 7 in
        Func.return_op b [ Arith.index_cast b idx ])
  in
  match run_module (soc ()) m "f" with
  | [ Interp.I 7 ] -> ()
  | _ -> Alcotest.fail "index_cast"

let tests =
  [
    Alcotest.test_case "integer arithmetic" `Quick test_arith_ops;
    Alcotest.test_case "float arithmetic" `Quick test_float_ops;
    Alcotest.test_case "loop semantics" `Quick test_loop_semantics;
    Alcotest.test_case "loop bounds and step" `Quick test_loop_bounds_and_step;
    Alcotest.test_case "subview load/store" `Quick test_subview_load_store;
    Alcotest.test_case "user function calls" `Quick test_user_function_call;
    Alcotest.test_case "cost charging" `Quick test_cost_charging;
    Alcotest.test_case "runtime errors" `Quick test_errors;
    Alcotest.test_case "linalg requires lowering" `Quick test_linalg_rejected;
    Alcotest.test_case "index cast" `Quick test_index_cast;
  ]
