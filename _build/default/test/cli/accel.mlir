module {
  func.func @matmul_call(%0: memref<16x16xf32>, %1: memref<16x16xf32>, %2: memref<16x16xf32>) {
    %3 = arith.constant 65346 : i32
    %4 = arith.constant 0 : i32
    %5 = arith.constant 16 : index
    %6 = arith.constant 34 : i32
    %7 = arith.constant 36 : i32
    %8 = arith.constant 66 : i32
    %9 = arith.constant 255 : i32
    %10 = arith.constant 240 : i32
    %11 = arith.constant 65280 : i32
    %12 = arith.constant 0 : index
    %13 = arith.constant 35 : i32
    accel.dma_init(%4, %8, %11, %3, %11) : i32, i32, i32, i32, i32 -> 
    %14 = accel.sendLiteral {flush = true}(%9, %4) : i32, i32 -> i32
    scf.for %15 = %12 to %5 step %5 {
      scf.for %16 = %12 to %5 step %5 {
        scf.for %17 = %12 to %5 step %5 {
          %18 = accel.sendLiteral(%6, %4) : i32, i32 -> i32
          %19 = memref.subview %0[?] [dense<[16, 16]>] [1, ...] : memref<16x16xf32, strided<[16, 1], offset: ?>>
          %20 = accel.send(%19, %18) : memref<16x16xf32, strided<[16, 1], offset: ?>>, i32 -> i32
          %21 = accel.sendLiteral(%13, %20) : i32, i32 -> i32
          %22 = memref.subview %1[?] [dense<[16, 16]>] [1, ...] : memref<16x16xf32, strided<[16, 1], offset: ?>>
          %23 = accel.send(%22, %21) : memref<16x16xf32, strided<[16, 1], offset: ?>>, i32 -> i32
          %24 = accel.sendLiteral {flush = true}(%10, %23) : i32, i32 -> i32
        }
        %25 = accel.sendLiteral {flush = true}(%7, %4) : i32, i32 -> i32
        %26 = memref.subview %2[?] [dense<[16, 16]>] [1, ...] : memref<16x16xf32, strided<[16, 1], offset: ?>>
        %27 = accel.recv {mode = "accumulate"}(%26, %25) : memref<16x16xf32, strided<[16, 1], offset: ?>>, i32 -> i32
      }
    }
    return
  }
}
