(* End-to-end correctness: every execution path (CPU lowering, native
   CPU reference, manual drivers, generated drivers at the accel and
   runtime lowering levels) must compute the same result as the pure
   oracle, for every accelerator version, flow and lowering option. *)

let versions_with_flows =
  [
    (Accel_matmul.V1, [ "Ns" ]);
    (Accel_matmul.V2, [ "Ns"; "As"; "Bs" ]);
    (Accel_matmul.V3, [ "Ns"; "As"; "Bs"; "Cs" ]);
    (Accel_matmul.V4, [ "Ns"; "As"; "Bs"; "Cs" ]);
  ]

let check_result name gold c =
  let diff = Gold.max_abs_diff gold (Memref_view.to_array c) in
  Alcotest.(check bool) (Printf.sprintf "%s (max diff %g)" name diff) true (diff < 1e-9)

let zero c = Memref_view.fill_from c (Array.make (Memref_view.num_elements c) 0.0)

let setup version ~size ~flow ~m ~n ~k =
  let accel = Presets.matmul ~version ~size ~flow () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
  let gold = Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array b) in
  (accel, bench, a, b, c, gold)

let test_generated_all_versions_flows () =
  List.iter
    (fun (version, flows) ->
      List.iter
        (fun flow ->
          let name =
            Printf.sprintf "%s %s" (Accel_matmul.version_to_string version) flow
          in
          let _accel, bench, a, b, c, gold = setup version ~size:4 ~flow ~m:8 ~n:12 ~k:16 in
          let ir = Axi4mlir.compile_matmul bench ~m:8 ~n:12 ~k:16 () in
          Axi4mlir.run_matmul bench ir ~a ~b ~c;
          check_result ("generated " ^ name) gold c)
        flows)
    versions_with_flows

let test_manual_all_versions_flows () =
  List.iter
    (fun (version, flows) ->
      List.iter
        (fun flow ->
          let name =
            Printf.sprintf "%s %s" (Accel_matmul.version_to_string version) flow
          in
          let accel, bench, a, b, c, gold = setup version ~size:4 ~flow ~m:8 ~n:12 ~k:16 in
          Manual_matmul.run bench.Axi4mlir.soc accel ~flow ~a ~b ~c ();
          check_result ("manual " ^ name) gold c)
        flows)
    versions_with_flows

let test_accel_level_equals_runtime_level () =
  List.iter
    (fun flow ->
      let _accel, bench, a, b, c, gold =
        setup Accel_matmul.V3 ~size:4 ~flow ~m:8 ~n:8 ~k:8
      in
      let run options =
        zero c;
        let ir = Axi4mlir.compile_matmul bench ~options ~m:8 ~n:8 ~k:8 () in
        let counters =
          Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
        in
        check_result (flow ^ " result") gold c;
        counters
      in
      let runtime_level = run Axi4mlir.default_codegen in
      let accel_level =
        run { Axi4mlir.default_codegen with to_runtime_calls = false }
      in
      (* identical DMA traffic at both lowering levels *)
      Alcotest.(check (float 0.0))
        (flow ^ ": transactions agree")
        runtime_level.Perf_counters.dma_transactions
        accel_level.Perf_counters.dma_transactions;
      Alcotest.(check (float 0.0))
        (flow ^ ": words agree")
        runtime_level.Perf_counters.dma_words_sent accel_level.Perf_counters.dma_words_sent)
    [ "Ns"; "As"; "Bs"; "Cs" ]

let test_generated_equals_manual_traffic () =
  (* with CPU tiling disabled, the generated driver issues exactly the
     transfer pattern of the hand-written one *)
  List.iter
    (fun flow ->
      let accel, bench, a, b, c, gold =
        setup Accel_matmul.V3 ~size:4 ~flow ~m:16 ~n:16 ~k:16
      in
      let manual =
        Axi4mlir.measure bench (fun () ->
            Manual_matmul.run bench.Axi4mlir.soc accel ~flow ~a ~b ~c ())
      in
      check_result (flow ^ " manual") gold c;
      zero c;
      let options = { Axi4mlir.default_codegen with cpu_tiling = false } in
      let ir = Axi4mlir.compile_matmul bench ~options ~m:16 ~n:16 ~k:16 () in
      let generated =
        Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
      in
      check_result (flow ^ " generated") gold c;
      Alcotest.(check (float 0.0))
        (flow ^ ": same DMA transactions")
        manual.Perf_counters.dma_transactions generated.Perf_counters.dma_transactions;
      Alcotest.(check (float 0.0))
        (flow ^ ": same words sent")
        manual.Perf_counters.dma_words_sent generated.Perf_counters.dma_words_sent;
      Alcotest.(check (float 0.0))
        (flow ^ ": same words received")
        manual.Perf_counters.dma_words_received generated.Perf_counters.dma_words_received)
    [ "Ns"; "As"; "Bs"; "Cs" ]

let test_v4_flexible_tiles () =
  let m, n, k = (32, 16, 64) in
  let _accel, bench, a, b, c, gold = setup Accel_matmul.V4 ~size:16 ~flow:"Cs" ~m ~n ~k in
  let options = { Axi4mlir.default_codegen with tiles = Some [ 32; 16; 64 ] } in
  let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
  Axi4mlir.run_matmul bench ~options ir ~a ~b ~c;
  check_result "v4 non-square tiles" gold c;
  (* whole problem in one tile: exactly one compute transaction chain *)
  let counters = bench.Axi4mlir.soc.Soc.counters in
  Alcotest.(check bool) "few transactions" true
    (counters.Perf_counters.dma_transactions < 15.0)

let test_v4_manual_flexible_tiles () =
  let m, n, k = (32, 16, 64) in
  let accel, bench, a, b, c, gold = setup Accel_matmul.V4 ~size:16 ~flow:"Cs" ~m ~n ~k in
  Manual_matmul.run bench.Axi4mlir.soc accel ~flow:"Cs"
    ~tiles:{ Manual_matmul.tm = 32; tn = 16; tk = 64 } ~a ~b ~c ();
  check_result "manual v4 tiles" gold c

let test_copy_spec_same_result_different_cost () =
  let _accel, bench, a, b, c, gold =
    setup Accel_matmul.V3 ~size:8 ~flow:"Ns" ~m:16 ~n:16 ~k:16
  in
  let run copy_specialization =
    zero c;
    let options = { Axi4mlir.default_codegen with copy_specialization } in
    let ir = Axi4mlir.compile_matmul bench ~options ~m:16 ~n:16 ~k:16 () in
    let counters =
      Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
    in
    check_result "copy-spec result" gold c;
    counters
  in
  let with_spec = run true in
  let without = run false in
  Alcotest.(check bool)
    (Printf.sprintf "specialisation is faster (%.0f vs %.0f cycles)"
       with_spec.Perf_counters.cycles without.Perf_counters.cycles)
    true
    (with_spec.Perf_counters.cycles < without.Perf_counters.cycles);
  Alcotest.(check bool) "and reduces cache references" true
    (Perf_counters.cache_references with_spec < Perf_counters.cache_references without)

let test_cpu_interp_matches_native_exactly () =
  let accel = Presets.matmul ~version:Accel_matmul.V1 ~size:4 () in
  let bench = Axi4mlir.create accel in
  let m, n, k = (6, 5, 7) in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
  let gold = Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array b) in
  let ir = Axi4mlir.compile_cpu (Axi4mlir.build_matmul_module ~m ~n ~k ()) in
  let interp_counters =
    Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ir ~a ~b ~c)
  in
  check_result "interp cpu" gold c;
  zero c;
  let native_counters =
    Axi4mlir.measure bench (fun () -> Cpu_reference.matmul bench.Axi4mlir.soc ~a ~b ~c)
  in
  check_result "native cpu" gold c;
  Alcotest.(check (float 0.0)) "cycles identical" interp_counters.Perf_counters.cycles
    native_counters.Perf_counters.cycles;
  Alcotest.(check (float 0.0)) "branches identical" interp_counters.Perf_counters.branches
    native_counters.Perf_counters.branches;
  Alcotest.(check (float 0.0)) "cache refs identical"
    (Perf_counters.cache_references interp_counters)
    (Perf_counters.cache_references native_counters)

let test_cpu_sampled_close_to_exact () =
  let accel = Presets.matmul ~version:Accel_matmul.V1 ~size:4 () in
  let bench = Axi4mlir.create accel in
  let m, n, k = (64, 32, 32) in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
  let gold = Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array b) in
  let exact =
    Axi4mlir.measure bench (fun () -> Cpu_reference.matmul bench.Axi4mlir.soc ~a ~b ~c)
  in
  zero c;
  let sampled =
    Axi4mlir.measure bench (fun () ->
        Cpu_reference.matmul_sampled bench.Axi4mlir.soc ~a ~b ~c ~sample_rows:8)
  in
  check_result "sampled result exact" gold c;
  let ratio = sampled.Perf_counters.cycles /. exact.Perf_counters.cycles in
  Alcotest.(check bool) (Printf.sprintf "cycles within 5%% (ratio %.3f)" ratio) true
    (ratio > 0.95 && ratio < 1.05)

let test_conv_generated () =
  List.iter
    (fun flow ->
      let accel = Presets.conv ~flow () in
      let bench = Axi4mlir.create accel in
      let n, ic, ih, iw, oc, fh, fw = (1, 4, 8, 8, 3, 3, 3) in
      let i, w, o = Axi4mlir.alloc_conv_operands bench ~n ~ic ~ih ~iw ~oc ~fh ~fw in
      let gold =
        Gold.conv2d ~n ~ic ~ih ~iw ~oc ~fh ~fw (Memref_view.to_array i)
          (Memref_view.to_array w)
      in
      let ir = Axi4mlir.build_conv_module ~n ~ic ~ih ~iw ~oc ~fh ~fw () in
      let compiled = Axi4mlir.compile bench ir in
      Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled "conv_call"
        [ Interp.M i; Interp.M w; Interp.M o ];
      check_result ("generated conv " ^ flow) gold o)
    [ "Ws"; "Os"; "Ns" ]

let test_conv_manual () =
  List.iter
    (fun flow ->
      let accel = Presets.conv ~flow () in
      let bench = Axi4mlir.create accel in
      let n, ic, ih, iw, oc, fh, fw = (1, 4, 8, 8, 3, 3, 3) in
      let i, w, o = Axi4mlir.alloc_conv_operands bench ~n ~ic ~ih ~iw ~oc ~fh ~fw in
      let gold =
        Gold.conv2d ~n ~ic ~ih ~iw ~oc ~fh ~fw (Memref_view.to_array i)
          (Memref_view.to_array w)
      in
      Manual_conv.run bench.Axi4mlir.soc accel ~flow ~input:i ~filter:w ~output:o ();
      check_result ("manual conv " ^ flow) gold o)
    [ "Ws"; "Os" ]

let test_conv_cpu_paths_agree () =
  let accel = Presets.conv () in
  let bench = Axi4mlir.create accel in
  let n, ic, ih, iw, oc, fh, fw = (1, 3, 6, 6, 2, 3, 3) in
  let i, w, o = Axi4mlir.alloc_conv_operands bench ~n ~ic ~ih ~iw ~oc ~fh ~fw in
  let gold =
    Gold.conv2d ~n ~ic ~ih ~iw ~oc ~fh ~fw (Memref_view.to_array i) (Memref_view.to_array w)
  in
  let ir = Axi4mlir.compile_cpu (Axi4mlir.build_conv_module ~n ~ic ~ih ~iw ~oc ~fh ~fw ()) in
  let interp_counters =
    Axi4mlir.measure bench (fun () ->
        Axi4mlir.run_func bench ir "conv_call" [ Interp.M i; Interp.M w; Interp.M o ])
  in
  check_result "conv interp" gold o;
  Memref_view.fill_from o (Array.make (Memref_view.num_elements o) 0.0);
  let native_counters =
    Axi4mlir.measure bench (fun () ->
        Cpu_reference.conv2d bench.Axi4mlir.soc ~input:i ~filter:w ~output:o)
  in
  check_result "conv native" gold o;
  Alcotest.(check (float 0.0)) "conv cycles identical" interp_counters.Perf_counters.cycles
    native_counters.Perf_counters.cycles

let test_strided_conv_all_paths () =
  (* stride-2 convolution: generated, manual and CPU paths against the
     oracle, plus matcher/stride detection *)
  List.iter
    (fun stride ->
      let n, ic, ih, iw, oc, fh, fw = (1, 3, 9, 9, 2, 3, 3) in
      let accel = Presets.conv ~flow:"Ws" () in
      let bench = Axi4mlir.create accel in
      let i, w, o = Axi4mlir.alloc_conv_operands ~stride bench ~n ~ic ~ih ~iw ~oc ~fh ~fw in
      let gold =
        Gold.conv2d ~stride ~n ~ic ~ih ~iw ~oc ~fh ~fw (Memref_view.to_array i)
          (Memref_view.to_array w)
      in
      let ir = Axi4mlir.build_conv_module ~stride ~n ~ic ~ih ~iw ~oc ~fh ~fw () in
      (* the matcher recognises the strided form *)
      let generic =
        List.hd
          (List.concat_map (fun f -> Ir.find_ops Linalg.is_generic f) (Ir.module_body ir))
      in
      Alcotest.(check (option int))
        (Printf.sprintf "stride %d detected" stride)
        (Some stride) (Linalg.conv_stride_of generic);
      Alcotest.(check bool) "matcher accepts" true (Matcher.is_conv_2d_nchw_fchw generic);
      (* generated *)
      let compiled = Axi4mlir.compile bench ir in
      Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled "conv_call"
        [ Interp.M i; Interp.M w; Interp.M o ];
      check_result (Printf.sprintf "generated stride-%d conv" stride) gold o;
      (* manual *)
      zero o;
      Manual_conv.run bench.Axi4mlir.soc accel ~flow:"Rs" ~stride ~input:i ~filter:w
        ~output:o ();
      check_result (Printf.sprintf "manual stride-%d conv" stride) gold o;
      (* CPU lowering + native reference agree *)
      zero o;
      let cpu_ir = Axi4mlir.compile_cpu (Axi4mlir.build_conv_module ~stride ~n ~ic ~ih ~iw ~oc ~fh ~fw ()) in
      let interp_counters =
        Axi4mlir.measure bench (fun () ->
            Axi4mlir.run_func bench cpu_ir "conv_call"
              [ Interp.M i; Interp.M w; Interp.M o ])
      in
      check_result (Printf.sprintf "cpu stride-%d conv" stride) gold o;
      zero o;
      let native_counters =
        Axi4mlir.measure bench (fun () ->
            Cpu_reference.conv2d ~stride bench.Axi4mlir.soc ~input:i ~filter:w ~output:o)
      in
      check_result "native strided conv" gold o;
      (* the 2*oh+fh muli costs one extra alu vs the addi-only form; the
         native model charges alu 2 for the spatial index arithmetic
         either way, so cycles agree only for stride 1 *)
      if stride = 1 then
        Alcotest.(check (float 0.0)) "cycles identical at stride 1"
          interp_counters.Perf_counters.cycles native_counters.Perf_counters.cycles)
    [ 1; 2; 3 ]

let test_accumulation_preserves_initial_c () =
  (* linalg matmul semantics: C += A*B, so a non-zero initial C must
     survive offload *)
  let _accel, bench, a, b, c, _ = setup Accel_matmul.V3 ~size:4 ~flow:"Cs" ~m:8 ~n:8 ~k:8 in
  let initial = Array.init 64 (fun i -> float_of_int i) in
  Memref_view.fill_from c initial;
  let gold = Array.copy initial in
  Gold.matmul_acc ~m:8 ~n:8 ~k:8 (Memref_view.to_array a) (Memref_view.to_array b) gold;
  let ir = Axi4mlir.compile_matmul bench ~m:8 ~n:8 ~k:8 () in
  Axi4mlir.run_matmul bench ir ~a ~b ~c;
  check_result "initial C preserved" gold c

(* Property test: random tile-grid shapes, random flow, random version. *)
let prop_random_problems =
  QCheck.Test.make ~name:"generated driver matches the oracle on random problems"
    ~count:40
    QCheck.(
      quad (int_range 1 4) (int_range 1 4) (int_range 1 4) (int_range 0 3))
    (fun (mt, nt, kt, pick) ->
      let version, flow =
        match pick with
        | 0 -> (Accel_matmul.V1, "Ns")
        | 1 -> (Accel_matmul.V2, "As")
        | 2 -> (Accel_matmul.V3, "Bs")
        | _ -> (Accel_matmul.V3, "Cs")
      in
      let m, n, k = (4 * mt, 4 * nt, 4 * kt) in
      let _accel, bench, a, b, c, gold = setup version ~size:4 ~flow ~m ~n ~k in
      let ir = Axi4mlir.compile_matmul bench ~m ~n ~k () in
      Axi4mlir.run_matmul bench ir ~a ~b ~c;
      Gold.max_abs_diff gold (Memref_view.to_array c) < 1e-9)

let prop_manual_random_problems =
  QCheck.Test.make ~name:"manual driver matches the oracle on random problems" ~count:40
    QCheck.(
      quad (int_range 1 4) (int_range 1 4) (int_range 1 4) (int_range 0 3))
    (fun (mt, nt, kt, pick) ->
      let version, flow =
        match pick with
        | 0 -> (Accel_matmul.V1, "Ns")
        | 1 -> (Accel_matmul.V2, "Bs")
        | 2 -> (Accel_matmul.V3, "As")
        | _ -> (Accel_matmul.V3, "Cs")
      in
      let m, n, k = (4 * mt, 4 * nt, 4 * kt) in
      let accel, bench, a, b, c, gold = setup version ~size:4 ~flow ~m ~n ~k in
      Manual_matmul.run bench.Axi4mlir.soc accel ~flow ~a ~b ~c ();
      Gold.max_abs_diff gold (Memref_view.to_array c) < 1e-9)

let prop_conv_random =
  QCheck.Test.make ~name:"conv paths match the oracle on random problems" ~count:20
    QCheck.(quad (int_range 1 3) (int_range 4 8) (int_range 1 3) (int_range 1 2))
    (fun (ic, ihw, oc, fhw_pick) ->
      let fhw = (2 * fhw_pick) - 1 in
      (* 1 or 3 *)
      QCheck.assume (ihw >= fhw);
      let accel = Presets.conv () in
      let bench = Axi4mlir.create accel in
      let i, w, o =
        Axi4mlir.alloc_conv_operands bench ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw
      in
      let gold =
        Gold.conv2d ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw (Memref_view.to_array i)
          (Memref_view.to_array w)
      in
      let compiled =
        Axi4mlir.compile bench
          (Axi4mlir.build_conv_module ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw ())
      in
      Axi4mlir.run_func bench compiled "conv_call" [ Interp.M i; Interp.M w; Interp.M o ];
      Gold.max_abs_diff gold (Memref_view.to_array o) < 1e-9)

let tests =
  [
    Alcotest.test_case "generated: all versions and flows" `Quick
      test_generated_all_versions_flows;
    Alcotest.test_case "manual: all versions and flows" `Quick test_manual_all_versions_flows;
    Alcotest.test_case "accel level == runtime level" `Quick
      test_accel_level_equals_runtime_level;
    Alcotest.test_case "generated matches manual DMA traffic" `Quick
      test_generated_equals_manual_traffic;
    Alcotest.test_case "v4 flexible tiles (generated)" `Quick test_v4_flexible_tiles;
    Alcotest.test_case "v4 flexible tiles (manual)" `Quick test_v4_manual_flexible_tiles;
    Alcotest.test_case "copy specialisation: same result, lower cost" `Quick
      test_copy_spec_same_result_different_cost;
    Alcotest.test_case "interpreter and native CPU agree exactly" `Quick
      test_cpu_interp_matches_native_exactly;
    Alcotest.test_case "sampled CPU simulation is accurate" `Quick
      test_cpu_sampled_close_to_exact;
    Alcotest.test_case "generated conv (all flows)" `Quick test_conv_generated;
    Alcotest.test_case "manual conv" `Quick test_conv_manual;
    Alcotest.test_case "conv CPU paths agree" `Quick test_conv_cpu_paths_agree;
    Alcotest.test_case "strided conv: all paths" `Quick test_strided_conv_all_paths;
    Alcotest.test_case "offload preserves initial C" `Quick
      test_accumulation_preserves_initial_c;
    QCheck_alcotest.to_alcotest prop_random_problems;
    QCheck_alcotest.to_alcotest prop_manual_random_problems;
    QCheck_alcotest.to_alcotest prop_conv_random;
  ]
