test/suite_negative.ml: Accel_codegen Accel_config Accel_matmul Alcotest Axi4mlir Builder Host_config Ir Linalg List Match_annotate Opcode Pass Presets String Trait Ty
