test/suite_interp.ml: Accel Alcotest Arith Array Attribute Axi4mlir Func Interp Ir Memref_d Memref_view Perf_counters Scf Sim_memory Soc Ty
