test/suite_runtime.ml: Accel_config Accel_matmul Alcotest Array Dma_engine Dma_library Gold List Memref_view Perf_counters Presets Printf QCheck QCheck_alcotest Sim_memory Soc
