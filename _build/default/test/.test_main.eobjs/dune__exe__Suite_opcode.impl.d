test/suite_opcode.ml: Alcotest List Opcode Printf QCheck QCheck_alcotest Result Util
