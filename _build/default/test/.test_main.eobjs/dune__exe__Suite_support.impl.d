test/suite_support.ml: Alcotest Float List String Tabulate Util
