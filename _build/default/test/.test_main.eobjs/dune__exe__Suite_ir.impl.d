test/suite_ir.ml: Accel Alcotest Arith Attribute Builder Func Ir Ir_compare Linalg List Memref_d Scf String Ty Verifier
