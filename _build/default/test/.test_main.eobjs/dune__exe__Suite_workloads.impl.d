test/suite_workloads.ml: Accel_conv Accel_matmul Alcotest Cost_model Gold Heuristics List Presets Printf QCheck QCheck_alcotest Resnet18 Tinybert Util
