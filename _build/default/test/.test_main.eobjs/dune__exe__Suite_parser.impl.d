test/suite_parser.ml: Accel_matmul Alcotest Attribute Axi4mlir Host_config Ir Ir_compare Linalg List Match_annotate Parser_ir Pass Presets Printer Printf QCheck QCheck_alcotest String Trait Ty
