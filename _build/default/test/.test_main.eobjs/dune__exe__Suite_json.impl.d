test/suite_json.ml: Alcotest Json List Printf String
