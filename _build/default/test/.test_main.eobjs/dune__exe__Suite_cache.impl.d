test/suite_cache.ml: Alcotest Array Cache Gen List QCheck QCheck_alcotest Util
