test/suite_sim.ml: Accel_config Accel_conv Accel_device Accel_matmul Alcotest Array Axi_word Dma_engine Gold Isa Perf_counters Presets Sim_memory Soc String
