test/suite_extensions.ml: Accel_config Accel_matmul Alcotest Array Attribute Axi4mlir Axi_word Cost_model Dma_engine Gold Ir Isa List Memref_view Perf_counters Presets Printf Runtime_abi Soc
