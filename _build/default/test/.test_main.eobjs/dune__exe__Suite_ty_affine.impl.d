test/suite_ty_affine.ml: Affine_map Alcotest Gen List Option QCheck QCheck_alcotest Ty Util
