test/suite_config.ml: Accel_config Accel_device Accel_matmul Alcotest Config_parser Dma_engine Host_config Ir List Presets Printf Result Soc Trait
