(* Tests for the opcode_map / opcode_flow attributes (paper Figs. 7-8). *)

let paper_map_text =
  "opcode_map<sA = [send_literal(0x22), send(0)], sB = [send_literal(0x23), send(1)], \
   cC = [send_literal(0xF0)], rC = [send_literal(0x24), recv(2)], sBcCrC = \
   [send_literal(0x25), send(1), recv(2)], reset = [send_literal(0xFF)]>"

let test_parse_paper_map () =
  let map = Opcode.parse_map paper_map_text in
  Alcotest.(check int) "entries" 6 (List.length map);
  (match Opcode.find map "sA" with
  | Some { Opcode.actions = [ Opcode.Send_literal 0x22; Opcode.Send 0 ]; _ } -> ()
  | _ -> Alcotest.fail "sA actions");
  (match Opcode.find map "sBcCrC" with
  | Some { Opcode.actions = [ Opcode.Send_literal 0x25; Opcode.Send 1; Opcode.Recv 2 ]; _ } -> ()
  | _ -> Alcotest.fail "sBcCrC actions");
  Alcotest.(check bool) "missing key" true (Opcode.find map "nope" = None)

let test_parse_without_wrapper () =
  let map = Opcode.parse_map "x = [send(0)]" in
  Alcotest.(check int) "one entry" 1 (List.length map)

let test_parse_dims_and_idx () =
  let map = Opcode.parse_map "cfg = [send_dim(1, 2), send_idx(0, 1)]" in
  match (List.hd map).Opcode.actions with
  | [ Opcode.Send_dim (1, 2); Opcode.Send_idx (0, 1) ] -> ()
  | _ -> Alcotest.fail "dim/idx actions"

let test_map_roundtrip () =
  let map = Opcode.parse_map paper_map_text in
  let reparsed = Opcode.parse_map (Opcode.map_to_string map) in
  Alcotest.(check bool) "roundtrip" true (Opcode.equal_map map reparsed)

let test_parse_flows () =
  let flow = Opcode.parse_flow "opcode_flow<(sA (sBcCrC))>" in
  Alcotest.(check int) "depth" 2 (Opcode.flow_depth flow);
  Alcotest.(check (list (pair string int))) "placements"
    [ ("sA", 1); ("sBcCrC", 2) ]
    (Opcode.flow_placements flow);
  let cs = Opcode.parse_flow "((sA sB cC) rC)" in
  Alcotest.(check (list (pair string int))) "Cs placements"
    [ ("sA", 2); ("sB", 2); ("cC", 2); ("rC", 1) ]
    (Opcode.flow_placements cs);
  let ns = Opcode.parse_flow "(sA sB cC rC)" in
  Alcotest.(check int) "Ns depth" 1 (Opcode.flow_depth ns);
  let triple = Opcode.parse_flow "(sW ((sI rO)))" in
  Alcotest.(check int) "conv depth" 3 (Opcode.flow_depth triple);
  Alcotest.(check (list (pair string int))) "conv placements"
    [ ("sW", 1); ("sI", 3); ("rO", 3) ]
    (Opcode.flow_placements triple);
  let bare = Opcode.parse_flow "sA sB" in
  Alcotest.(check int) "bare depth" 1 (Opcode.flow_depth bare);
  Alcotest.(check (list string)) "opcodes order" [ "sA"; "sB" ] (Opcode.flow_opcodes bare)

let test_flow_roundtrip () =
  List.iter
    (fun text ->
      let flow = Opcode.parse_flow text in
      let reparsed = Opcode.parse_flow (Opcode.flow_to_string flow) in
      Alcotest.(check bool) ("roundtrip " ^ text) true (Opcode.equal_flow flow reparsed))
    [ "(sA (sB cC rC))"; "((sA sB cC) rC)"; "(sA sB cCrC)"; "(sW ((sI)) rO)"; "sA" ]

let expect_syntax_error f =
  match f () with
  | exception Opcode.Syntax_error _ -> ()
  | _ -> Alcotest.fail "expected syntax error"

let test_syntax_errors () =
  expect_syntax_error (fun () -> Opcode.parse_map "sA = [send()]");
  expect_syntax_error (fun () -> Opcode.parse_map "sA = [explode(1)]");
  expect_syntax_error (fun () -> Opcode.parse_map "sA = [send(0)");
  expect_syntax_error (fun () -> Opcode.parse_map "opcode_map<sA = [send(0)]");
  expect_syntax_error (fun () -> Opcode.parse_flow "(sA (sB)");
  expect_syntax_error (fun () -> Opcode.parse_flow "sA)");
  expect_syntax_error (fun () -> Opcode.parse_flow "(sA, sB)")

let test_map_validation () =
  let ok = Opcode.parse_map "sA = [send(0)], rC = [recv(2)]" in
  Alcotest.(check bool) "valid" true (Opcode.validate_map ~n_args:3 ok = Ok ());
  Alcotest.(check bool) "arg out of range" true
    (Result.is_error (Opcode.validate_map ~n_args:2 ok));
  let dup = Opcode.parse_map "x = [send(0)], x = [send(1)]" in
  Alcotest.(check bool) "duplicate keys" true
    (Result.is_error (Opcode.validate_map ~n_args:3 dup))

let test_flow_validation () =
  let map = Opcode.parse_map "sA = [send(0)], rC = [recv(2)]" in
  let good = Opcode.parse_flow "(sA rC)" in
  Alcotest.(check bool) "valid" true (Opcode.validate_flow map good = Ok ());
  Alcotest.(check bool) "unknown opcode" true
    (Result.is_error (Opcode.validate_flow map (Opcode.parse_flow "(sA zap)")));
  Alcotest.(check bool) "duplicate opcode" true
    (Result.is_error (Opcode.validate_flow map (Opcode.parse_flow "(sA sA)")));
  Alcotest.(check bool) "empty flow" true (Result.is_error (Opcode.validate_flow map []))

let test_action_queries () =
  let map = Opcode.parse_map paper_map_text in
  let flow = Opcode.parse_flow "(sA (sBcCrC))" in
  let actions = Opcode.actions_of_flow map flow in
  Alcotest.(check (list int)) "sends" [ 0; 1 ] (Opcode.sends_of_actions actions);
  Alcotest.(check (list int)) "recvs" [ 2 ] (Opcode.recvs_of_actions actions)

(* Property: any generated map/flow round-trips through its syntax. *)
let gen_action =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Opcode.Send n) (0 -- 2);
        map (fun v -> Opcode.Send_literal v) (0 -- 0xFFFF);
        map2 (fun n d -> Opcode.Send_dim (n, d)) (0 -- 2) (0 -- 3);
        map2 (fun n d -> Opcode.Send_idx (n, d)) (0 -- 2) (0 -- 3);
        map (fun n -> Opcode.Recv n) (0 -- 2);
      ])

let gen_map =
  QCheck.Gen.(
    let entry i =
      map
        (fun actions -> { Opcode.key = Printf.sprintf "op%d" i; actions })
        (list_size (1 -- 4) gen_action)
    in
    let* n = 1 -- 5 in
    flatten_l (List.init n entry))

let prop_map_roundtrip =
  QCheck.Test.make ~name:"opcode_map print/parse roundtrip" ~count:200
    (QCheck.make gen_map) (fun map ->
      Opcode.equal_map map (Opcode.parse_map (Opcode.map_to_string map)))

let gen_flow =
  (* a structurally valid flow over op0..op4: unique keys, non-empty scopes *)
  QCheck.Gen.(
    let rec build keys depth =
      match keys with
      | [] -> pure []
      | key :: rest ->
        let* use_scope = if depth >= 3 then pure false else bool in
        if use_scope then
          let* split = 1 -- List.length keys in
          let inner_keys = Util.list_take split keys in
          let outer_rest = Util.list_drop split keys in
          let* inner = build inner_keys (depth + 1) in
          let* others = build outer_rest depth in
          pure (Opcode.Scope inner :: others)
        else
          let* others = build rest depth in
          pure (Opcode.Op key :: others)
    in
    let* n = 1 -- 5 in
    build (List.init n (Printf.sprintf "op%d")) 0)

let prop_flow_roundtrip =
  QCheck.Test.make ~name:"opcode_flow print/parse roundtrip" ~count:200
    (QCheck.make gen_flow) (fun flow ->
      Opcode.equal_flow flow (Opcode.parse_flow (Opcode.flow_to_string flow)))

let prop_placements_depths =
  QCheck.Test.make ~name:"flow placements bounded by flow depth" ~count:200
    (QCheck.make gen_flow) (fun flow ->
      let depth = Opcode.flow_depth flow in
      List.for_all (fun (_, d) -> d >= 1 && d <= max depth 1) (Opcode.flow_placements flow))

let tests =
  [
    Alcotest.test_case "parse the paper's opcode_map" `Quick test_parse_paper_map;
    Alcotest.test_case "wrapper optional" `Quick test_parse_without_wrapper;
    Alcotest.test_case "send_dim / send_idx" `Quick test_parse_dims_and_idx;
    Alcotest.test_case "map roundtrip" `Quick test_map_roundtrip;
    Alcotest.test_case "flow parsing and placements" `Quick test_parse_flows;
    Alcotest.test_case "flow roundtrip" `Quick test_flow_roundtrip;
    Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
    Alcotest.test_case "map validation" `Quick test_map_validation;
    Alcotest.test_case "flow validation" `Quick test_flow_validation;
    Alcotest.test_case "action queries" `Quick test_action_queries;
    QCheck_alcotest.to_alcotest prop_map_roundtrip;
    QCheck_alcotest.to_alcotest prop_flow_roundtrip;
    QCheck_alcotest.to_alcotest prop_placements_depths;
  ]
