(* Tests for memref views and the DMA runtime library's copies. *)

let test_view_basics () =
  let mem = Sim_memory.create () in
  let buf = Sim_memory.alloc mem ~label:"m" 24 in
  Array.iteri (fun i _ -> buf.Sim_memory.data.(i) <- float_of_int i) buf.Sim_memory.data;
  let view = Memref_view.of_buffer buf [ 4; 6 ] in
  Alcotest.(check int) "rank" 2 (Memref_view.rank view);
  Alcotest.(check int) "elements" 24 (Memref_view.num_elements view);
  Alcotest.(check (float 0.0)) "get" 13.0 (Memref_view.get view [ 2; 1 ]);
  Memref_view.set view [ 2; 1 ] 99.0;
  Alcotest.(check (float 0.0)) "set" 99.0 (Sim_memory.get buf 13);
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Memref_view.of_buffer: shape has 25 elements, buffer m has 24")
    (fun () -> ignore (Memref_view.of_buffer buf [ 5; 5 ]))

let test_subview_and_iter () =
  let mem = Sim_memory.create () in
  let buf = Sim_memory.alloc mem ~label:"m" 64 in
  Array.iteri (fun i _ -> buf.Sim_memory.data.(i) <- float_of_int i) buf.Sim_memory.data;
  let view = Memref_view.of_buffer buf [ 8; 8 ] in
  let sub = Memref_view.subview view ~offsets:[ 2; 4 ] ~sizes:[ 2; 3 ] in
  Alcotest.(check (float 0.0)) "sub origin" 20.0 (Memref_view.get sub [ 0; 0 ]);
  let visited = ref [] in
  Memref_view.iter_linear sub (fun li -> visited := li :: !visited);
  Alcotest.(check (list int)) "row-major order" [ 20; 21; 22; 28; 29; 30 ]
    (List.rev !visited);
  Alcotest.(check (list (float 0.0))) "to_array"
    [ 20.0; 21.0; 22.0; 28.0; 29.0; 30.0 ]
    (Array.to_list (Memref_view.to_array sub));
  Memref_view.fill_from sub [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |];
  Alcotest.(check (float 0.0)) "fill_from strided" 4.0 (Sim_memory.get buf 28)

let test_contiguous_run () =
  let mem = Sim_memory.create () in
  let buf = Sim_memory.alloc mem ~label:"m" (8 * 8) in
  let view = Memref_view.of_buffer buf [ 8; 8 ] in
  Alcotest.(check int) "full view" 64 (Memref_view.contiguous_run view);
  let tile = Memref_view.subview view ~offsets:[ 0; 0 ] ~sizes:[ 4; 4 ] in
  Alcotest.(check int) "tile run = row" 4 (Memref_view.contiguous_run tile);
  let full_rows = Memref_view.subview view ~offsets:[ 2; 0 ] ~sizes:[ 3; 8 ] in
  Alcotest.(check int) "full-width slice is one run" 24 (Memref_view.contiguous_run full_rows);
  let column = Memref_view.subview view ~offsets:[ 0; 3 ] ~sizes:[ 8; 1 ] in
  Alcotest.(check int) "column run" 1 (Memref_view.contiguous_run column)

let make_lib strategy =
  let soc = Soc.create () in
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  ignore (Accel_config.attach soc config);
  let lib = Dma_library.init soc ~dma_id:0 ~strategy in
  (soc, lib)

let staged_data engine n =
  (* read back the staged words through a send into the device? no —
     copy correctness is validated end-to-end elsewhere; here we check
     the offset arithmetic. *)
  ignore engine;
  n

let test_copy_out_offsets () =
  let _soc, lib = make_lib Dma_library.Generic in
  let mem = Sim_memory.create () in
  let buf = Sim_memory.alloc mem ~label:"src" 16 in
  let view = Memref_view.of_buffer buf [ 4; 4 ] in
  let off = Dma_library.stage_literal lib 0x22 ~offset:0 in
  Alcotest.(check int) "literal advances by one" 1 off;
  let off = Dma_library.copy_to_dma_region lib view ~offset:off in
  Alcotest.(check int) "copy advances by elements" 17 off;
  Alcotest.(check int) "staged high water" 17
    (staged_data (Dma_library.engine lib) (Dma_engine.staged_high_water (Dma_library.engine lib)))

let copy_cycles ?(warm = false) strategy view =
  let soc, lib = make_lib strategy in
  if warm then ignore (Dma_library.copy_to_dma_region lib view ~offset:0);
  let before = soc.Soc.counters.Perf_counters.cycles in
  ignore (Dma_library.copy_to_dma_region lib view ~offset:0);
  soc.Soc.counters.Perf_counters.cycles -. before

let test_specialized_cheaper_on_contiguous () =
  let mem = Sim_memory.create () in
  let buf = Sim_memory.alloc mem ~label:"src" (32 * 32) in
  let view = Memref_view.of_buffer buf [ 32; 32 ] in
  let generic = copy_cycles ~warm:true Dma_library.Generic view in
  let special = copy_cycles ~warm:true Dma_library.Specialized view in
  Alcotest.(check bool)
    (Printf.sprintf "memcpy copy is much cheaper (%.0f vs %.0f)" special generic)
    true
    (special *. 2.0 < generic)

let test_specialized_falls_back_on_strided () =
  let mem = Sim_memory.create () in
  let buf = Sim_memory.alloc mem ~label:"src" (16 * 16) in
  let view = Memref_view.of_buffer buf [ 16; 16 ] in
  (* a column: innermost stride 16 -> cannot specialise *)
  let column = Memref_view.subview view ~offsets:[ 0; 0 ] ~sizes:[ 16; 1 ] in
  let column = { column with Memref_view.shape = [ 16 ]; strides = [ 16 ] } in
  Alcotest.(check bool) "not specialisable" false (Dma_library.can_specialize column);
  let generic = copy_cycles Dma_library.Generic column in
  let special = copy_cycles Dma_library.Specialized column in
  Alcotest.(check (float 0.0)) "identical when falling back" generic special

let test_run_of_one_degrades () =
  (* fW = 1 patches: unit innermost stride but runs of length 1 — the
     specialised copy pays per-run setup for every element, so the
     hand-written bare strided loop wins (the paper's fHW==1 slowdown),
     while for real runs the specialised copy beats the bare loop. *)
  let mem = Sim_memory.create () in
  let buf = Sim_memory.alloc mem ~label:"src" (64 * 49) in
  let input = Memref_view.of_buffer buf [ 1; 64; 7; 7 ] in
  let patch = Memref_view.subview input ~offsets:[ 0; 0; 3; 3 ] ~sizes:[ 1; 64; 1; 1 ] in
  Alcotest.(check int) "run of one" 1 (Memref_view.contiguous_run patch);
  Alcotest.(check bool) "manual picks bare on runs of one" true
    (Dma_library.manual_strategy patch = Dma_library.Bare);
  let bare = copy_cycles ~warm:true Dma_library.Bare patch in
  let special = copy_cycles ~warm:true Dma_library.Specialized patch in
  Alcotest.(check bool)
    (Printf.sprintf "bare loop beats specialised on 1x1 (%.0f vs %.0f)" bare special)
    true (bare < special);
  let wide = Memref_view.subview input ~offsets:[ 0; 0; 0; 0 ] ~sizes:[ 1; 64; 1; 7 ] in
  Alcotest.(check bool) "manual picks memcpy on real runs" true
    (Dma_library.manual_strategy wide = Dma_library.Specialized);
  let bare_w = copy_cycles ~warm:true Dma_library.Bare wide in
  let special_w = copy_cycles ~warm:true Dma_library.Specialized wide in
  Alcotest.(check bool)
    (Printf.sprintf "specialised beats bare on runs of 7 (%.0f vs %.0f)" special_w bare_w)
    true (special_w < bare_w)

let test_recv_accumulate () =
  let soc, lib = make_lib Dma_library.Specialized in
  let buf = Sim_memory.alloc soc.Soc.memory ~label:"dst" 16 in
  Array.iteri (fun i _ -> buf.Sim_memory.data.(i) <- 10.0) buf.Sim_memory.data;
  let view = Memref_view.of_buffer buf [ 4; 4 ] in
  let data = Array.init 16 float_of_int in
  Dma_library.copy_from_data_with lib Dma_library.Specialized view ~accumulate:true data;
  Alcotest.(check (float 0.0)) "accumulated" 15.0 (Memref_view.get view [ 1; 1 ]);
  Dma_library.copy_from_data_with lib Dma_library.Generic view ~accumulate:false data;
  Alcotest.(check (float 0.0)) "stored" 5.0 (Memref_view.get view [ 1; 1 ])

(* Property: both copy strategies stage identical data for any subview. *)
let prop_copy_strategies_agree =
  QCheck.Test.make ~name:"copy strategies stage identical words" ~count:100
    QCheck.(quad (1 -- 6) (1 -- 6) (0 -- 3) (0 -- 3))
    (fun (rows, cols, oi, oj) ->
      let run strategy =
        let soc, lib = make_lib strategy in
        let buf = Sim_memory.alloc soc.Soc.memory ~label:"src" 100 in
        Gold.fill_deterministic buf.Sim_memory.data;
        let view = Memref_view.of_buffer buf [ 10; 10 ] in
        let sub = Memref_view.subview view ~offsets:[ oi; oj ] ~sizes:[ rows; cols ] in
        ignore (Dma_library.copy_to_dma_region lib sub ~offset:0);
        Memref_view.to_array sub
      in
      run Dma_library.Generic = run Dma_library.Specialized)

let tests =
  [
    Alcotest.test_case "view basics" `Quick test_view_basics;
    Alcotest.test_case "subview and iteration order" `Quick test_subview_and_iter;
    Alcotest.test_case "contiguous runs" `Quick test_contiguous_run;
    Alcotest.test_case "copy offset chaining" `Quick test_copy_out_offsets;
    Alcotest.test_case "memcpy specialisation wins when contiguous" `Quick
      test_specialized_cheaper_on_contiguous;
    Alcotest.test_case "specialisation falls back on strided" `Quick
      test_specialized_falls_back_on_strided;
    Alcotest.test_case "runs of one do not benefit" `Quick test_run_of_one_degrades;
    Alcotest.test_case "recv accumulate/store" `Quick test_recv_accumulate;
    QCheck_alcotest.to_alcotest prop_copy_strategies_agree;
  ]
