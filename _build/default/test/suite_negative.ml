(* Failure-injection tests: the compiler and the simulated hardware must
   reject broken configurations loudly rather than mis-execute. *)

let host = Host_config.pynq_z2

let test_codegen_rejects_deep_flow () =
  (* a trait whose flow nests deeper than the loop nest must be caught
     by codegen even if validation were skipped *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let _, g =
    let modul = Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 () in
    match
      List.concat_map (fun f -> Ir.find_ops Linalg.is_generic f) (Ir.module_body modul)
    with
    | [ g ] -> (modul, g)
    | _ -> assert false
  in
  let trait =
    {
      Trait.dma_init_config = accel.Accel_config.dma;
      init_opcodes = [ "reset" ];
      accel_dim = [ 4; 4; 4 ];
      permutation = [ 0; 1; 2 ];
      opcode_map = accel.Accel_config.opcode_map;
      (* depth 4 > 3 loops *)
      opcode_flow = Opcode.parse_flow "(sA (sB (cC (rC))))";
      cpu_tile = [ 0; 0; 0 ];
      double_buffer = false;
    }
  in
  let annotated = Trait.attach g trait in
  let b = Builder.create () in
  match Accel_codegen.codegen_generic b ~emit_dma_init:true annotated with
  | exception Failure msg ->
    Alcotest.(check bool) "message mentions flow depth" true
      (String.length msg > 0)
  | () -> Alcotest.fail "deep flow accepted by codegen"

let test_send_idx_codegen () =
  (* an opcode using send_idx places the loop index in the stream *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let tagged =
    {
      accel with
      Accel_config.opcode_map =
        accel.Accel_config.opcode_map
        @ [ { Opcode.key = "tag"; actions = [ Opcode.Send_idx (0, 0) ] } ];
      opcode_flows = [ ("Tagged", Opcode.parse_flow "(tag sA sB cC rC)") ];
      selected_flow = "Tagged";
    }
  in
  let modul = Axi4mlir.build_matmul_module ~m:8 ~n:8 ~k:8 () in
  let annotated =
    Pass.run_pipeline
      [ Match_annotate.pass ~accel:tagged ~host (); Accel_codegen.pass ]
      modul
  in
  let idx_ops = Ir.find_ops (fun o -> o.Ir.name = "accel.sendIdx") annotated in
  Alcotest.(check int) "one sendIdx per opcode instance" 1 (List.length idx_ops);
  match (List.hd idx_ops).Ir.operands with
  | [ idx; _offset ] ->
    Alcotest.(check bool) "index-typed operand" true (Ty.equal idx.Ir.vty Ty.index)
  | _ -> Alcotest.fail "malformed sendIdx"

let test_device_rejects_protocol_violation () =
  (* a receive with no drain instruction: the device has no queued
     output, so the DMA engine's collection must fail *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let broken =
    {
      accel with
      Accel_config.opcode_map =
        accel.Accel_config.opcode_map
        @ [ { Opcode.key = "rOnly"; actions = [ Opcode.Recv 2 ] } ];
      opcode_flows = [ ("Broken", Opcode.parse_flow "(sA sB cC rOnly)") ];
      selected_flow = "Broken";
    }
  in
  let bench = Axi4mlir.create broken in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:4 ~n:4 ~k:4 in
  let ir = Axi4mlir.compile_matmul bench ~m:4 ~n:4 ~k:4 () in
  match Axi4mlir.run_matmul bench ir ~a ~b ~c with
  | exception Failure msg ->
    Alcotest.(check bool) "device names the shortfall" true (String.length msg > 0)
  | () -> Alcotest.fail "premature receive accepted"

let test_dma_region_overflow_detected () =
  (* an input window too small for one tile transfer *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 () in
  let tiny =
    {
      accel with
      Accel_config.dma =
        { accel.Accel_config.dma with Accel_config.input_buffer_size = 64 };
    }
  in
  let bench = Axi4mlir.create tiny in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:16 ~n:16 ~k:16 in
  let ir = Axi4mlir.compile_matmul bench ~m:16 ~n:16 ~k:16 () in
  match Axi4mlir.run_matmul bench ir ~a ~b ~c with
  | exception Failure msg ->
    Alcotest.(check bool) "overflow reported" true (String.length msg > 0)
  | () -> Alcotest.fail "DMA region overflow accepted"

let test_wrong_engine_opcodes_rejected () =
  (* drive a v1 engine with a v3 opcode map: the decoder must refuse *)
  let v1 = Presets.matmul ~version:Accel_matmul.V1 ~size:4 () in
  let v3 = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let mismatched = { v3 with Accel_config.engine = v1.Accel_config.engine } in
  let bench = Axi4mlir.create mismatched in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:4 ~n:4 ~k:4 in
  let ir = Axi4mlir.compile_matmul bench ~m:4 ~n:4 ~k:4 () in
  match Axi4mlir.run_matmul bench ir ~a ~b ~c with
  | exception Failure msg ->
    Alcotest.(check bool) "decoder names the instruction" true (String.length msg > 0)
  | () -> Alcotest.fail "mismatched micro-ISA accepted"

let test_facade_reports_unoffloadable () =
  (* the facade surfaces the skip reason instead of silently running on
     the CPU *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 () in
  let bench = Axi4mlir.create accel in
  match Axi4mlir.compile_matmul bench ~m:10 ~n:10 ~k:10 () with
  | exception Failure msg ->
    Alcotest.(check bool) "reason included" true (String.length msg > 0)
  | _ -> Alcotest.fail "non-divisible problem silently accepted"

let tests =
  [
    Alcotest.test_case "codegen rejects over-deep flows" `Quick test_codegen_rejects_deep_flow;
    Alcotest.test_case "send_idx code generation" `Quick test_send_idx_codegen;
    Alcotest.test_case "device rejects premature receive" `Quick
      test_device_rejects_protocol_violation;
    Alcotest.test_case "DMA region overflow detected" `Quick test_dma_region_overflow_detected;
    Alcotest.test_case "mismatched micro-ISA rejected" `Quick test_wrong_engine_opcodes_rejected;
    Alcotest.test_case "facade reports unoffloadable ops" `Quick
      test_facade_reports_unoffloadable;
  ]
