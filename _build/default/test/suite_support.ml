(* Tests for lib/support: Util and Tabulate. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_round_up () =
  check "exact" 16 (Util.round_up 16 ~multiple:8);
  check "up" 24 (Util.round_up 17 ~multiple:8);
  check "zero" 0 (Util.round_up 0 ~multiple:8);
  check "one" 5 (Util.round_up 3 ~multiple:5)

let test_ceil_div () =
  check "exact" 4 (Util.ceil_div 16 4);
  check "up" 5 (Util.ceil_div 17 4);
  check "zero" 0 (Util.ceil_div 0 4)

let test_pow2 () =
  checkb "1" true (Util.is_pow2 1);
  checkb "64" true (Util.is_pow2 64);
  checkb "0" false (Util.is_pow2 0);
  checkb "neg" false (Util.is_pow2 (-4));
  checkb "12" false (Util.is_pow2 12);
  check "log2 1" 0 (Util.log2 1);
  check "log2 1024" 10 (Util.log2 1024);
  Alcotest.check_raises "log2 of non-pow2" (Invalid_argument "Util.log2: not a power of two")
    (fun () -> ignore (Util.log2 12))

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Util.divisors 12);
  Alcotest.(check (list int)) "1" [ 1 ] (Util.divisors 1);
  Alcotest.(check (list int)) "prime" [ 1; 13 ] (Util.divisors 13)

let test_list_helpers () =
  Alcotest.(check (list int)) "range" [ 0; 1; 2 ] (Util.range 3);
  check "product" 24 (Util.product [ 2; 3; 4 ]);
  check "product empty" 1 (Util.product []);
  Alcotest.(check (option int)) "index hit" (Some 1) (Util.list_index (fun x -> x = 5) [ 3; 5; 7 ]);
  Alcotest.(check (option int)) "index miss" None (Util.list_index (fun x -> x = 9) [ 3; 5 ]);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Util.list_take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take long" [ 1 ] (Util.list_take 5 [ 1 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Util.list_drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop all" [] (Util.list_drop 5 [ 1 ])

let test_permutations () =
  check "3!" 6 (List.length (Util.permutations [ 1; 2; 3 ]));
  check "unique" 6 (List.length (List.sort_uniq compare (Util.permutations [ 1; 2; 3 ])));
  Alcotest.(check (list (list int))) "empty" [ [] ] (Util.permutations [])

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Util.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Util.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "fmax" 4.0 (Util.fmax_list [ 1.0; 4.0; 2.0 ]);
  checkb "mean empty is nan" true (Float.is_nan (Util.mean []))

let test_tabulate () =
  let t = Tabulate.create [ ("name", Tabulate.Left); ("value", Tabulate.Right) ] in
  Tabulate.add_row t [ "alpha"; "1" ];
  Tabulate.add_rule t;
  Tabulate.add_row t [ "b"; "22" ];
  let rendered = Tabulate.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* all lines share the same width *)
  let widths = List.map String.length lines in
  Alcotest.(check (list int)) "aligned" (List.map (fun _ -> List.hd widths) widths) widths;
  Alcotest.check_raises "row arity" (Invalid_argument "Tabulate.add_row: row width does not match headers")
    (fun () -> Tabulate.add_row t [ "only-one" ])

let test_formats () =
  Alcotest.(check string) "ms" "1.235" (Tabulate.fmt_ms 1.2349);
  Alcotest.(check string) "x" "1.23x" (Tabulate.fmt_x 1.234);
  Alcotest.(check string) "pct" "56.0%" (Tabulate.fmt_pct 0.56)

let tests =
  [
    Alcotest.test_case "round_up" `Quick test_round_up;
    Alcotest.test_case "ceil_div" `Quick test_ceil_div;
    Alcotest.test_case "pow2/log2" `Quick test_pow2;
    Alcotest.test_case "divisors" `Quick test_divisors;
    Alcotest.test_case "list helpers" `Quick test_list_helpers;
    Alcotest.test_case "permutations" `Quick test_permutations;
    Alcotest.test_case "statistics" `Quick test_stats;
    Alcotest.test_case "tabulate rendering" `Quick test_tabulate;
    Alcotest.test_case "number formats" `Quick test_formats;
  ]
