(* Tests for the IR core, builder, verifier and dialect constructors. *)

let build_simple_func () =
  Func.func_op ~name:"f" ~args:[ Ty.index; Ty.index ] (fun b args ->
      match args with
      | [ x; y ] ->
        let s = Arith.addi b x y in
        let _p = Arith.muli b s s in
        Func.return_op b []
      | _ -> assert false)

let test_builder_order () =
  let f = build_simple_func () in
  let names = List.map (fun (o : Ir.op) -> o.name) (Func.body_of f).body in
  Alcotest.(check (list string)) "emission order"
    [ "arith.addi"; "arith.muli"; "func.return" ]
    names

let test_builder_nest () =
  let b = Builder.create () in
  let c0 = Arith.constant_index b 0 in
  let c4 = Arith.constant_index b 4 in
  let c1 = Arith.constant_index b 1 in
  Scf.for_ b ~lb:c0 ~ub:c4 ~step:c1 (fun b iv -> ignore (Arith.addi b iv iv));
  let ops = Builder.finish b in
  Alcotest.(check int) "top level ops" 4 (List.length ops);
  let for_op = List.nth ops 3 in
  Alcotest.(check string) "loop name" "scf.for" for_op.Ir.name;
  let body = Ir.single_block for_op in
  Alcotest.(check (list string)) "loop body" [ "arith.addi"; "scf.yield" ]
    (List.map (fun (o : Ir.op) -> o.Ir.name) body.Ir.body)

let test_attrs () =
  let o = Ir.op "test.op" ~attrs:[ ("a", Attribute.Int 1) ] in
  Alcotest.(check bool) "has" true (Ir.has_attr o "a");
  let o = Ir.set_attr o "b" (Attribute.Str "x") in
  Alcotest.(check int) "get a" 1 (Attribute.get_int (Ir.attr_exn o "b" |> fun _ -> Ir.attr_exn o "a"));
  let o = Ir.set_attr o "a" (Attribute.Int 2) in
  Alcotest.(check int) "replace" 2 (Attribute.get_int (Ir.attr_exn o "a"));
  let o = Ir.remove_attr o "a" in
  Alcotest.(check bool) "removed" false (Ir.has_attr o "a");
  Alcotest.check_raises "missing attr" (Invalid_argument "op test.op: missing attribute 'zz'")
    (fun () -> ignore (Ir.attr_exn o "zz"))

let test_walk_and_find () =
  let f = build_simple_func () in
  let m = Ir.module_op [ f ] in
  Alcotest.(check int) "count adds" 1 (Ir.count_ops (fun o -> o.Ir.name = "arith.addi") m);
  Alcotest.(check int) "count all" 5
    (Ir.count_ops (fun _ -> true) m) (* module + func + 3 body ops *);
  let renamed =
    Ir.map_nested
      (fun o -> if o.Ir.name = "arith.addi" then { o with name = "arith.muli" } else o)
      m
  in
  Alcotest.(check int) "after rename" 2
    (Ir.count_ops (fun o -> o.Ir.name = "arith.muli") renamed)

let test_module_helpers () =
  let f = build_simple_func () in
  let m = Ir.module_op [ f ] in
  Alcotest.(check bool) "is module" true (Ir.is_module m);
  Alcotest.(check int) "body" 1 (List.length (Ir.module_body m));
  Alcotest.(check bool) "find_func" true (Func.find_func m "f" <> None);
  Alcotest.(check bool) "find_func miss" true (Func.find_func m "g" = None);
  let m2 = Ir.with_module_body m [] in
  Alcotest.(check int) "replaced body" 0 (List.length (Ir.module_body m2))

let test_verifier_accepts_valid () =
  let m = Ir.module_op [ build_simple_func () ] in
  match Verifier.verify m with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_verifier_rejects_undefined_use () =
  let phantom = Ir.fresh_value Ty.index in
  let f =
    Func.func_op ~name:"bad" ~args:[ Ty.index ] (fun b args ->
        match args with
        | [ x ] ->
          ignore (Arith.addi b x phantom);
          Func.return_op b []
        | _ -> assert false)
  in
  match Verifier.verify (Ir.module_op [ f ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undefined use accepted"

let test_verifier_rejects_double_def () =
  let v = Ir.fresh_value Ty.index in
  let dup = Ir.op "arith.constant" ~results:[ v ] ~attrs:[ ("value", Attribute.Int 0) ] in
  let ret = Ir.op "func.return" in
  let f =
    Ir.op "func.func"
      ~attrs:
        [
          ("sym_name", Attribute.Str "bad");
          ("function_type", Attribute.Type_attr (Ty.Func ([], [])));
        ]
      ~regions:[ [ Ir.block [ dup; dup; ret ] ] ]
  in
  match Verifier.verify (Ir.module_op [ f ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double definition accepted"

let test_dialect_verifiers () =
  (* a func without terminating return *)
  let v = Ir.fresh_value Ty.index in
  let c = Ir.op "arith.constant" ~results:[ v ] ~attrs:[ ("value", Attribute.Int 0) ] in
  let f =
    Ir.op "func.func"
      ~attrs:
        [
          ("sym_name", Attribute.Str "noret");
          ("function_type", Attribute.Type_attr (Ty.Func ([], [])));
        ]
      ~regions:[ [ Ir.block [ c ] ] ]
  in
  (match Verifier.verify (Ir.module_op [ f ]) with
  | Error msg ->
    Alcotest.(check bool) "mentions return" true
      (String.length msg > 0)
  | Ok () -> Alcotest.fail "missing return accepted");
  (* arith.constant without value attribute *)
  let bad_const = Ir.op "arith.constant" ~results:[ Ir.fresh_value Ty.index ] in
  let ret = Ir.op "func.return" in
  let g =
    Ir.op "func.func"
      ~attrs:
        [
          ("sym_name", Attribute.Str "badconst");
          ("function_type", Attribute.Type_attr (Ty.Func ([], [])));
        ]
      ~regions:[ [ Ir.block [ bad_const; ret ] ] ]
  in
  match Verifier.verify (Ir.module_op [ g ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "constant without value accepted"

let test_linalg_construction () =
  let b = Builder.create () in
  let a = Memref_d.alloc b (Ty.memref [ 8; 4 ] Ty.F32) in
  let bv = Memref_d.alloc b (Ty.memref [ 4; 8 ] Ty.F32) in
  let c = Memref_d.alloc b (Ty.memref [ 8; 8 ] Ty.F32) in
  let g = Linalg.matmul b ~a ~b:bv ~c in
  Alcotest.(check (list int)) "loop ranges" [ 8; 8; 4 ] (Linalg.loop_ranges g);
  Alcotest.(check int) "inputs" 2 (List.length (Linalg.inputs g));
  Alcotest.(check int) "outputs" 1 (List.length (Linalg.outputs g));
  Alcotest.(check (option string)) "kind" (Some "matmul") (Linalg.op_kind g);
  Alcotest.(check (list string)) "iterators" [ "parallel"; "parallel"; "reduction" ]
    (Linalg.iterator_types g)

let test_conv_construction () =
  let b = Builder.create () in
  let i = Memref_d.alloc b (Ty.memref [ 1; 3; 6; 6 ] Ty.F32) in
  let w = Memref_d.alloc b (Ty.memref [ 2; 3; 3; 3 ] Ty.F32) in
  let o = Memref_d.alloc b (Ty.memref [ 1; 2; 4; 4 ] Ty.F32) in
  let g = Linalg.conv_2d_nchw_fchw b ~input:i ~filter:w ~output:o in
  Alcotest.(check (list int)) "conv ranges" [ 1; 2; 4; 4; 3; 3; 3 ] (Linalg.loop_ranges g)

let test_accel_constructors () =
  let b = Builder.create () in
  Accel.dma_init b ~dma_id:0 ~input_address:0x42 ~input_buffer_size:0xFF00
    ~output_address:0xFF42 ~output_buffer_size:0xFF00;
  let off0 = Arith.constant_i32 b 0 in
  let lit = Arith.constant_i32 b 0x22 in
  let off1 = Accel.send_literal b ~literal:lit ~offset:off0 in
  let tile = Memref_d.alloc b (Ty.memref [ 4; 4 ] Ty.F32) in
  let off2 = Accel.send b ~src:tile ~offset:off1 in
  let _off3 = Accel.recv b ~mode:Accel.Accumulate ~dst:tile ~offset:off2 in
  let ops = Builder.finish b in
  let send_op = List.find (fun (o : Ir.op) -> o.Ir.name = "accel.send") ops in
  Alcotest.(check bool) "send flushes by default" true (Accel.is_flush send_op);
  let lit_op = List.find (fun (o : Ir.op) -> o.Ir.name = "accel.sendLiteral") ops in
  Alcotest.(check bool) "literal stages" false (Accel.is_flush lit_op);
  let recv_op = List.find (fun (o : Ir.op) -> o.Ir.name = "accel.recv") ops in
  Alcotest.(check bool) "recv mode" true (Accel.recv_mode_of recv_op = Accel.Accumulate)

let test_send_dim_extent () =
  let b = Builder.create () in
  let tile = Memref_d.alloc b (Ty.memref [ 4; 16 ] Ty.F32) in
  let off = Arith.constant_i32 b 0 in
  let _ = Accel.send_dim b ~src:tile ~dim:1 ~offset:off in
  let _ = Accel.send_dim ~static_extent:99 b ~src:tile ~dim:1 ~offset:off in
  let ops = Builder.finish b in
  let dims = List.filter (fun (o : Ir.op) -> o.Ir.name = "accel.sendDim") ops in
  Alcotest.(check (list int)) "extents" [ 16; 99 ] (List.map Accel.send_dim_extent dims)

let test_structural_equality () =
  let a = Ir.module_op [ build_simple_func () ] in
  let b = Ir.module_op [ build_simple_func () ] in
  Alcotest.(check bool) "fresh builds are structurally equal" true (Ir_compare.equal_op a b);
  Alcotest.(check bool) "reflexive" true (Ir_compare.equal_op a a);
  (* a different op name breaks equality *)
  let mutated =
    Ir.map_nested
      (fun o -> if o.Ir.name = "arith.addi" then { o with Ir.name = "arith.muli" } else o)
      a
  in
  (match Ir_compare.diff_op a mutated with
  | Some msg -> Alcotest.(check bool) "diff names the op" true (String.length msg > 0)
  | None -> Alcotest.fail "mutation not detected");
  (* rewiring an operand (addi (x, y) -> addi (x, x)) breaks the bijection *)
  let swap_operands =
    Ir.map_nested
      (fun o ->
        if o.Ir.name = "arith.addi" then
          match o.Ir.operands with
          | [ x; _y ] -> { o with Ir.operands = [ x; x ] }
          | _ -> o
        else o)
      a
  in
  Alcotest.(check bool) "operand rewiring detected" false (Ir_compare.equal_op a swap_operands)

let tests =
  [
    Alcotest.test_case "structural equality" `Quick test_structural_equality;
    Alcotest.test_case "builder emission order" `Quick test_builder_order;
    Alcotest.test_case "builder nesting" `Quick test_builder_nest;
    Alcotest.test_case "attributes" `Quick test_attrs;
    Alcotest.test_case "walk / map_nested / count" `Quick test_walk_and_find;
    Alcotest.test_case "module helpers" `Quick test_module_helpers;
    Alcotest.test_case "verifier accepts valid IR" `Quick test_verifier_accepts_valid;
    Alcotest.test_case "verifier rejects undefined use" `Quick test_verifier_rejects_undefined_use;
    Alcotest.test_case "verifier rejects double definition" `Quick test_verifier_rejects_double_def;
    Alcotest.test_case "dialect verifiers" `Quick test_dialect_verifiers;
    Alcotest.test_case "linalg matmul construction" `Quick test_linalg_construction;
    Alcotest.test_case "linalg conv construction" `Quick test_conv_construction;
    Alcotest.test_case "accel op constructors" `Quick test_accel_constructors;
    Alcotest.test_case "sendDim extents" `Quick test_send_dim_extent;
  ]
