(* Tests for the Sec. V extension features: transfer coalescing and
   double buffering, plus the constant canonicalisation pass. *)

let setup ~flow ~m ~n ~k =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow () in
  let bench = Axi4mlir.create accel in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
  let gold = Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array b) in
  (bench, a, b, c, gold)

let zero c = Memref_view.fill_from c (Array.make (Memref_view.num_elements c) 0.0)

let run bench options ~m ~n ~k ~a ~b ~c =
  zero c;
  let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
  Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)

let check gold c name =
  Alcotest.(check bool) name true (Gold.max_abs_diff gold (Memref_view.to_array c) < 1e-9)

let test_coalescing_reduces_transactions () =
  List.iter
    (fun flow ->
      let bench, a, b, c, gold = setup ~flow ~m:16 ~n:16 ~k:16 in
      let base = run bench Axi4mlir.default_codegen ~m:16 ~n:16 ~k:16 ~a ~b ~c in
      check gold c (flow ^ " baseline result");
      let coalesced =
        run bench
          { Axi4mlir.default_codegen with coalesce_transfers = true }
          ~m:16 ~n:16 ~k:16 ~a ~b ~c
      in
      check gold c (flow ^ " coalesced result");
      Alcotest.(check bool)
        (Printf.sprintf "%s: fewer transactions (%.0f -> %.0f)" flow
           base.Perf_counters.dma_transactions coalesced.Perf_counters.dma_transactions)
        true
        (coalesced.Perf_counters.dma_transactions < base.Perf_counters.dma_transactions);
      Alcotest.(check (float 0.0)) (flow ^ ": same words")
        base.Perf_counters.dma_words_sent coalesced.Perf_counters.dma_words_sent;
      Alcotest.(check bool) (flow ^ ": faster") true
        (coalesced.Perf_counters.cycles < base.Perf_counters.cycles))
    [ "Ns"; "As"; "Cs" ]

let test_coalescing_exact_transaction_count () =
  (* v3 Ns, one tile: baseline opcodes sA/sB/cC/rC-lit = 4 send txns +
     1 recv; coalesced: sA+sB+cC merge, rC's literal still separate
     (the recv barrier ends the chain after cC? no — cC's flush is the
     chain end; rC's literal opens a new chain closed by its own flush).
     sA+sB+cC+rC-lit all merge into ONE send txn + 1 recv. *)
  let bench, a, b, c, gold = setup ~flow:"Ns" ~m:4 ~n:4 ~k:4 in
  let counters =
    run bench
      { Axi4mlir.default_codegen with coalesce_transfers = true }
      ~m:4 ~n:4 ~k:4 ~a ~b ~c
  in
  check gold c "one-tile result";
  (* init reset txn + 1 coalesced send + 1 recv *)
  Alcotest.(check (float 0.0)) "transactions" 3.0 counters.Perf_counters.dma_transactions

let test_coalescing_not_across_recv () =
  (* For the As flow the hoisted sA must not merge with the inner
     loop's chains (a loop boundary), and chains never cross a recv:
     per inner iteration exactly one coalesced send + one recv. *)
  let bench, a, b, c, gold = setup ~flow:"As" ~m:8 ~n:8 ~k:8 in
  let counters =
    run bench
      { Axi4mlir.default_codegen with coalesce_transfers = true }
      ~m:8 ~n:8 ~k:8 ~a ~b ~c
  in
  check gold c "As coalesced result";
  (* 1 reset + 4 hoisted sA (m,k tiles) + 8 inner (sB+cC+rC-lit) + 8 recv *)
  Alcotest.(check (float 0.0)) "transaction count" (1.0 +. 4.0 +. 8.0 +. 8.0)
    counters.Perf_counters.dma_transactions

let test_double_buffering () =
  let bench, a, b, c, gold = setup ~flow:"Ns" ~m:16 ~n:16 ~k:16 in
  let base = run bench Axi4mlir.default_codegen ~m:16 ~n:16 ~k:16 ~a ~b ~c in
  check gold c "sync result";
  let db =
    run bench
      { Axi4mlir.default_codegen with double_buffer = true }
      ~m:16 ~n:16 ~k:16 ~a ~b ~c
  in
  check gold c "double-buffered result";
  Alcotest.(check (float 0.0)) "same transactions" base.Perf_counters.dma_transactions
    db.Perf_counters.dma_transactions;
  Alcotest.(check bool)
    (Printf.sprintf "overlap saves cycles (%.0f -> %.0f)" base.Perf_counters.cycles
       db.Perf_counters.cycles)
    true
    (db.Perf_counters.cycles < base.Perf_counters.cycles)

let test_double_buffer_attribute_in_ir () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let bench = Axi4mlir.create accel in
  let options = { Axi4mlir.default_codegen with double_buffer = true } in
  let ir = Axi4mlir.compile_matmul bench ~options ~m:8 ~n:8 ~k:8 () in
  let init_calls =
    Ir.find_ops
      (fun o ->
        o.Ir.name = "func.call"
        && Ir.attr o "callee" = Some (Attribute.Str Runtime_abi.dma_init))
      ir
  in
  match init_calls with
  | [ call ] ->
    Alcotest.(check bool) "attribute present" true
      (Ir.attr call "double_buffer" = Some (Attribute.Bool true))
  | _ -> Alcotest.fail "expected one dma_init call"

let test_extensions_compose () =
  let bench, a, b, c, gold = setup ~flow:"Cs" ~m:16 ~n:16 ~k:16 in
  let base = run bench Axi4mlir.default_codegen ~m:16 ~n:16 ~k:16 ~a ~b ~c in
  let both =
    run bench
      { Axi4mlir.default_codegen with coalesce_transfers = true; double_buffer = true }
      ~m:16 ~n:16 ~k:16 ~a ~b ~c
  in
  check gold c "composed result";
  Alcotest.(check bool) "composed faster than baseline" true
    (both.Perf_counters.cycles < base.Perf_counters.cycles)

let test_canonicalize_hoists_constants () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Ns" () in
  let bench = Axi4mlir.create accel in
  let ir = Axi4mlir.compile_matmul bench ~m:8 ~n:8 ~k:8 () in
  (* all constants sit in the function entry region, none inside loops *)
  let in_loops = ref 0 in
  Ir.walk
    (fun o ->
      if o.Ir.name = "scf.for" then
        Ir.walk_block
          (fun inner -> if inner.Ir.name = "arith.constant" then incr in_loops)
          (Ir.single_block o))
    ir;
  Alcotest.(check int) "no constants inside loops" 0 !in_loops;
  (* and they are deduplicated *)
  let consts = Ir.find_ops (fun o -> o.Ir.name = "arith.constant") ir in
  let keys =
    List.map
      (fun (o : Ir.op) -> (Ir.attr_exn o "value", (Ir.result o).Ir.vty))
      consts
  in
  Alcotest.(check int) "constants unique" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_async_engine_semantics () =
  let soc = Soc.create () in
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:2 () in
  let engine = Accel_config.attach soc config in
  (* async send followed by recv: the recv must observe the send *)
  let words =
    Array.concat
      [
        [| Axi_word.Inst Isa.mm_load_a |];
        Array.make 4 (Axi_word.Data 1.0);
        [| Axi_word.Inst Isa.mm_load_b |];
        Array.make 4 (Axi_word.Data 2.0);
        [| Axi_word.Inst Isa.mm_compute; Axi_word.Inst Isa.mm_drain |];
      ]
  in
  Array.iteri (fun i w -> Dma_engine.stage engine ~offset:i w) words;
  let before = soc.Soc.counters.Perf_counters.cycles in
  Dma_engine.send_staged_async engine;
  let after_async = soc.Soc.counters.Perf_counters.cycles in
  (* the async flush charges programming but not the streaming time *)
  Alcotest.(check bool) "async send returns early" true
    (after_async -. before < soc.Soc.cost.Cost_model.dma_program_cycles +. 50.0);
  Dma_engine.start_recv engine ~len_words:4;
  let data = Dma_engine.wait_recv engine in
  Alcotest.(check (float 1e-9)) "result correct" 16.0 (Array.fold_left ( +. ) 0.0 data);
  Alcotest.(check bool) "recv waited for the stream" true
    (soc.Soc.counters.Perf_counters.cycles > after_async +. 10.0)

let tests =
  [
    Alcotest.test_case "coalescing reduces transactions" `Quick
      test_coalescing_reduces_transactions;
    Alcotest.test_case "coalescing exact transaction count" `Quick
      test_coalescing_exact_transaction_count;
    Alcotest.test_case "coalescing respects recv/loop barriers" `Quick
      test_coalescing_not_across_recv;
    Alcotest.test_case "double buffering overlaps transfers" `Quick test_double_buffering;
    Alcotest.test_case "double_buffer attribute reaches the IR" `Quick
      test_double_buffer_attribute_in_ir;
    Alcotest.test_case "extensions compose" `Quick test_extensions_compose;
    Alcotest.test_case "canonicalize hoists and dedupes constants" `Quick
      test_canonicalize_hoists_constants;
    Alcotest.test_case "async engine semantics" `Quick test_async_engine_semantics;
  ]
