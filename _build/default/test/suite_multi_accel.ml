(* Multiple accelerators in one application: a MatMul engine (DMA id 0)
   and a Conv2D engine (DMA id 1) driven from one function, compiled by
   running the two accelerators' pipelines in sequence (each matches
   its own op kind). The paper's dma_init_config explicitly allows this
   ("if multiple or different accelerators are present, they would have
   different values in this field"). *)

let conv_on_engine_1 () =
  let base = Presets.conv ~flow:"Ws" () in
  { base with Accel_config.dma = { base.Accel_config.dma with Accel_config.dma_id = 1 } }

let build_mixed_module ~m ~n ~k ~ic ~ihw ~oc ~fhw =
  let ohw = ihw - fhw + 1 in
  let f =
    Func.func_op ~name:"mixed"
      ~args:
        [
          Ty.memref [ m; k ] Ty.F32;
          Ty.memref [ k; n ] Ty.F32;
          Ty.memref [ m; n ] Ty.F32;
          Ty.memref [ 1; ic; ihw; ihw ] Ty.F32;
          Ty.memref [ oc; ic; fhw; fhw ] Ty.F32;
          Ty.memref [ 1; oc; ohw; ohw ] Ty.F32;
        ]
      (fun b args ->
        match args with
        | [ a; bv; c; i; w; o ] ->
          ignore (Linalg.matmul b ~a ~b:bv ~c);
          ignore (Linalg.conv_2d_nchw_fchw b ~input:i ~filter:w ~output:o);
          Func.return_op b []
        | _ -> assert false)
  in
  Ir.module_op [ f ]

let test_two_accelerators () =
  Dialects.register_all ();
  let host = Host_config.pynq_z2 in
  let matmul_accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Cs" () in
  let conv_accel = conv_on_engine_1 () in
  let soc = Soc.create ~cache_geometries:host.Host_config.caches () in
  ignore (Accel_config.attach soc matmul_accel);
  ignore (Accel_config.attach soc conv_accel);
  let m, n, k = (8, 8, 8) in
  let ic, ihw, oc, fhw = (3, 6, 2, 3) in
  let modul = build_mixed_module ~m ~n ~k ~ic ~ihw ~oc ~fhw in
  (* two pipelines, one per accelerator; each annotates only its op kind *)
  let compiled =
    Pass.run_pipeline
      (Pipeline.passes (Pipeline.make ~accel:matmul_accel ~host ())
      @ Pipeline.passes (Pipeline.make ~accel:conv_accel ~host ()))
      modul
  in
  (* one dma_init per engine *)
  Alcotest.(check int) "two dma_init calls" 2
    (Ir.count_ops
       (fun o ->
         o.Ir.name = "func.call"
         && Ir.attr o "callee" = Some (Attribute.Str Runtime_abi.dma_init))
       compiled);
  Alcotest.(check int) "no linalg left" 0 (Ir.count_ops Linalg.is_generic compiled);
  (* allocate operands and run *)
  let alloc label shape =
    let n_elems = List.fold_left ( * ) 1 shape in
    let buf = Sim_memory.alloc soc.Soc.memory ~label n_elems in
    Gold.fill_deterministic ~seed:(Hashtbl.hash label) buf.Sim_memory.data;
    Memref_view.of_buffer buf shape
  in
  let a = alloc "a" [ m; k ]
  and b = alloc "b" [ k; n ]
  and c = alloc "c" [ m; n ]
  and i = alloc "i" [ 1; ic; ihw; ihw ]
  and w = alloc "w" [ oc; ic; fhw; fhw ]
  and o = alloc "o" [ 1; oc; ihw - fhw + 1; ihw - fhw + 1 ] in
  Memref_view.fill_from c (Array.make (m * n) 0.0);
  Memref_view.fill_from o (Array.make (Memref_view.num_elements o) 0.0);
  let gold_c = Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array b) in
  let gold_o =
    Gold.conv2d ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw (Memref_view.to_array i)
      (Memref_view.to_array w)
  in
  let interp = Interp.create ~copy_strategy:Dma_library.Specialized soc compiled in
  ignore
    (Interp.invoke interp "mixed"
       [ Interp.M a; Interp.M b; Interp.M c; Interp.M i; Interp.M w; Interp.M o ]);
  Alcotest.(check bool) "matmul correct (engine 0)" true
    (Gold.max_abs_diff gold_c (Memref_view.to_array c) < 1e-9);
  Alcotest.(check bool) "conv correct (engine 1)" true
    (Gold.max_abs_diff gold_o (Memref_view.to_array o) < 1e-9)

let test_same_engine_two_kernels_reselect () =
  (* the interpreter must not re-pay driver bring-up when the same
     engine is re-initialised *)
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let bench = Axi4mlir.create accel in
  let soc = bench.Axi4mlir.soc in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:4 ~n:4 ~k:4 in
  let ir = Axi4mlir.compile_matmul bench ~m:4 ~n:4 ~k:4 () in
  let interp = Interp.create ~copy_strategy:Dma_library.Specialized soc ir in
  Soc.reset_run_state soc;
  ignore (Interp.invoke interp "matmul_call" [ Interp.M a; Interp.M b; Interp.M c ]);
  let first = soc.Soc.counters.Perf_counters.cycles in
  ignore (Interp.invoke interp "matmul_call" [ Interp.M a; Interp.M b; Interp.M c ]);
  let second = soc.Soc.counters.Perf_counters.cycles -. first in
  Alcotest.(check bool)
    (Printf.sprintf "second kernel avoids bring-up (%.0f vs %.0f)" second first)
    true
    (second < first -. (Dma_library.init_cycles /. 2.0))

let tests =
  [
    Alcotest.test_case "matmul + conv on two engines" `Quick test_two_accelerators;
    Alcotest.test_case "same engine re-selected without re-init" `Quick
      test_same_engine_two_kernels_reselect;
  ]
