(* Cross-cutting integration tests: multi-kernel modules, heuristic
   ranking consistency, pretty printing, and extension properties on
   random problems. *)

let zero c = Memref_view.fill_from c (Array.make (Memref_view.num_elements c) 0.0)

(* A module with two matmul kernels back to back: dma_init must be
   emitted once, init_opcodes once per kernel (paper Sec. III-C). *)
let test_two_kernels_one_init () =
  let m1, n1, k1 = (8, 8, 8) and m2, n2, k2 = (12, 8, 4) in
  let tys dims = List.map (fun (a, b) -> Ty.memref [ a; b ] Ty.F32) dims in
  let f =
    Func.func_op ~name:"two_matmuls"
      ~args:(tys [ (m1, k1); (k1, n1); (m1, n1); (m2, k2); (k2, n2); (m2, n2) ])
      (fun b args ->
        match args with
        | [ a1; b1; c1; a2; b2; c2 ] ->
          ignore (Linalg.matmul b ~a:a1 ~b:b1 ~c:c1);
          ignore (Linalg.matmul b ~a:a2 ~b:b2 ~c:c2);
          Func.return_op b []
        | _ -> assert false)
  in
  let modul = Ir.module_op [ f ] in
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"Cs" () in
  let bench = Axi4mlir.create accel in
  let compiled = Axi4mlir.compile bench modul in
  (* exactly one dma_init call, two resets (one per kernel) *)
  let calls name =
    Ir.count_ops
      (fun o ->
        o.Ir.name = "func.call" && Ir.attr o "callee" = Some (Attribute.Str name))
      compiled
  in
  Alcotest.(check int) "one dma_init" 1 (calls Runtime_abi.dma_init);
  (* run it: both outputs must be correct *)
  let alloc label rows cols =
    let buf = Sim_memory.alloc bench.Axi4mlir.soc.Soc.memory ~label (rows * cols) in
    Gold.fill_deterministic ~seed:(Hashtbl.hash label) buf.Sim_memory.data;
    Memref_view.of_buffer buf [ rows; cols ]
  in
  let a1 = alloc "a1" m1 k1 and b1 = alloc "b1" k1 n1 and c1 = alloc "c1" m1 n1 in
  let a2 = alloc "a2" m2 k2 and b2 = alloc "b2" k2 n2 and c2 = alloc "c2" m2 n2 in
  zero c1;
  zero c2;
  let gold1 = Gold.matmul ~m:m1 ~n:n1 ~k:k1 (Memref_view.to_array a1) (Memref_view.to_array b1) in
  let gold2 = Gold.matmul ~m:m2 ~n:n2 ~k:k2 (Memref_view.to_array a2) (Memref_view.to_array b2) in
  Axi4mlir.run_func bench compiled "two_matmuls"
    [ Interp.M a1; Interp.M b1; Interp.M c1; Interp.M a2; Interp.M b2; Interp.M c2 ];
  Alcotest.(check bool) "first kernel" true
    (Gold.max_abs_diff gold1 (Memref_view.to_array c1) < 1e-9);
  Alcotest.(check bool) "second kernel" true
    (Gold.max_abs_diff gold2 (Memref_view.to_array c2) < 1e-9)

(* The analytic cost estimate must rank configurations consistently with
   measurement: for each problem, the measured-best configuration must
   be within the top 3 predicted. *)
let test_heuristic_ranking_consistency () =
  let accel = Presets.matmul ~version:Accel_matmul.V4 ~size:16 () in
  List.iter
    (fun (m, n, k) ->
      let bench = Axi4mlir.create accel in
      let configs =
        List.concat_map
          (fun flow ->
            List.map (fun t -> (flow, t)) (Heuristics.candidate_tiles accel ~m ~n ~k))
          [ "Ns"; "As"; "Bs"; "Cs" ]
      in
      let scored =
        List.map
          (fun (flow, (tm, tn, tk)) ->
            let predicted =
              Heuristics.estimate_cycles accel ~cost:Cost_model.default ~flow ~m ~n ~k ~tm
                ~tn ~tk
            in
            ((flow, (tm, tn, tk)), predicted))
          configs
      in
      let ranked = List.sort (fun (_, a) (_, b) -> compare a b) scored in
      (* measure the top 6 predicted and check the predicted-best is
         within 20% of the measured-best among them *)
      let measured =
        List.map
          (fun ((flow, (tm, tn, tk)), _) ->
            let options =
              { Axi4mlir.default_codegen with flow = Some flow; tiles = Some [ tm; tn; tk ] }
            in
            let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
            let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
            let counters =
              Axi4mlir.measure bench (fun () ->
                  Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
            in
            counters.Perf_counters.cycles)
          (Util.list_take 6 ranked)
      in
      match measured with
      | best_predicted :: _ ->
        let best_measured = List.fold_left min best_predicted measured in
        Alcotest.(check bool)
          (Printf.sprintf "%dx%dx%d: predicted-best within 20%% of measured-best" m n k)
          true
          (best_predicted <= best_measured *. 1.2)
      | [] -> Alcotest.fail "no configurations")
    [ (32, 64, 128); (64, 64, 64) ]

let test_pretty_printer_smoke () =
  let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"As" () in
  let bench = Axi4mlir.create accel in
  let options = { Axi4mlir.default_codegen with to_runtime_calls = false } in
  let ir = Axi4mlir.compile_matmul bench ~options ~m:8 ~n:8 ~k:8 () in
  let pretty = Printer.to_pretty ir in
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle in
        let rec go i =
          i + nl <= String.length pretty && (String.sub pretty i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("pretty output mentions " ^ needle) true contains)
    [
      "func.func @matmul_call";
      "scf.for";
      "memref.subview";
      "accel.send";
      "accel.recv";
      "mode = \"accumulate\"";
      "accel.dma_init";
    ]

let prop_extensions_preserve_results =
  QCheck.Test.make ~name:"coalescing/double-buffering preserve results on random problems"
    ~count:25
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 3) (int_range 0 3))
    (fun (mt, nt, kt, pick) ->
      let flow = List.nth [ "Ns"; "As"; "Bs"; "Cs" ] pick in
      let m, n, k = (4 * mt, 4 * nt, 4 * kt) in
      let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow () in
      let bench = Axi4mlir.create accel in
      let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
      let gold = Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array b) in
      let options =
        {
          Axi4mlir.default_codegen with
          coalesce_transfers = true;
          double_buffer = true;
        }
      in
      let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
      Axi4mlir.run_matmul bench ~options ir ~a ~b ~c;
      Gold.max_abs_diff gold (Memref_view.to_array c) < 1e-9)

(* Random attribute trees must survive print -> parse. *)
let gen_attr =
  QCheck.Gen.(
    sized @@ fix (fun self fuel ->
        let leaf =
          oneof
            [
              pure Attribute.Unit;
              map (fun b -> Attribute.Bool b) bool;
              map (fun i -> Attribute.Int i) (int_range (-1000) 1000);
              map (fun s -> Attribute.Str s)
                (string_size ~gen:(char_range 'a' 'z') (1 -- 8));
              map (fun l -> Attribute.Ints l) (list_size (0 -- 4) (0 -- 64));
              pure (Attribute.Affine (Affine_map.projection ~n_dims:3 [ 0; 2 ]));
            ]
        in
        if fuel <= 1 then leaf
        else
          oneof
            [
              leaf;
              map (fun l -> Attribute.Array l) (list_size (1 -- 3) (self (fuel / 2)));
              map
                (fun l ->
                  Attribute.Dict (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) l))
                (list_size (1 -- 3) (self (fuel / 2)));
            ]))

let prop_attribute_roundtrip =
  QCheck.Test.make ~name:"random attributes print/parse roundtrip" ~count:200
    (QCheck.make gen_attr) (fun attr ->
      let printed = Attribute.to_string attr in
      match Parser_ir.parse_attribute printed with
      | reparsed -> Attribute.to_string reparsed = printed
      | exception Parser_ir.Parse_error _ -> false)

let tests =
  [
    Alcotest.test_case "two kernels, one dma_init" `Quick test_two_kernels_one_init;
    Alcotest.test_case "heuristic ranking vs measurement" `Slow
      test_heuristic_ranking_consistency;
    Alcotest.test_case "pretty printer smoke" `Quick test_pretty_printer_smoke;
    QCheck_alcotest.to_alcotest prop_extensions_preserve_results;
    QCheck_alcotest.to_alcotest prop_attribute_roundtrip;
  ]
