(* Tests for the set-associative LRU cache hierarchy. *)

let tiny = { Cache.size_bytes = 256; line_bytes = 32; assoc = 2 }
(* 256B / (32B * 2-way) = 4 sets *)

let test_geometry_validation () =
  Alcotest.check_raises "non-pow2 line"
    (Invalid_argument "Cache: geometry sizes must be powers of two") (fun () ->
      ignore (Cache.create [ { Cache.size_bytes = 256; line_bytes = 48; assoc = 2 } ]))

let test_hit_after_fill () =
  let c = Cache.create [ tiny ] in
  let r1 = Cache.access c 0 in
  Alcotest.(check int) "first is miss" 2 r1.Cache.level_hit;
  let r2 = Cache.access c 4 in
  Alcotest.(check int) "same line hits" 1 r2.Cache.level_hit;
  let r3 = Cache.access c 32 in
  Alcotest.(check int) "next line misses" 2 r3.Cache.level_hit

let test_lru_eviction () =
  let c = Cache.create [ tiny ] in
  (* set 0 holds lines with (addr / 32) mod 4 = 0: 0, 128, 256, ... *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  (* both ways of set 0 now full; touch line 0 to make 128 the LRU *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  (* evicts 128 *)
  Alcotest.(check bool) "0 still resident" true (Cache.resident c ~level:1 0);
  Alcotest.(check bool) "128 evicted" false (Cache.resident c ~level:1 128);
  Alcotest.(check bool) "256 resident" true (Cache.resident c ~level:1 256)

let test_two_levels_inclusive () =
  let l2 = { Cache.size_bytes = 1024; line_bytes = 32; assoc = 4 } in
  let c = Cache.create [ tiny; l2 ] in
  let r1 = Cache.access c 0 in
  Alcotest.(check int) "cold miss goes to DRAM" 3 r1.Cache.level_hit;
  (* thrash L1 set 0 so line 0 is evicted from L1 but stays in L2 *)
  ignore (Cache.access c 128);
  ignore (Cache.access c 256);
  Alcotest.(check bool) "line 0 gone from L1" false (Cache.resident c ~level:1 0);
  Alcotest.(check bool) "line 0 still in L2" true (Cache.resident c ~level:2 0);
  let r2 = Cache.access c 0 in
  Alcotest.(check int) "L2 hit" 2 r2.Cache.level_hit

let test_flush () =
  let c = Cache.create [ tiny ] in
  ignore (Cache.access c 0);
  Cache.flush c;
  Alcotest.(check bool) "flushed" false (Cache.resident c ~level:1 0);
  let r = Cache.access c 0 in
  Alcotest.(check int) "miss after flush" 2 r.Cache.level_hit

let test_access_range () =
  let c = Cache.create [ tiny ] in
  let hits = ref 0 and misses = ref 0 in
  Cache.access_range c ~addr:10 ~bytes:60 ~touched:(fun level ->
      if level = 1 then incr hits else incr misses);
  (* bytes 10..69 span lines 0, 1, 2 *)
  Alcotest.(check int) "three lines probed" 3 (!hits + !misses);
  Alcotest.(check int) "all cold misses" 3 !misses;
  Cache.access_range c ~addr:10 ~bytes:60 ~touched:(fun level ->
      if level = 1 then incr hits);
  Alcotest.(check int) "now hits" 3 !hits

let test_empty_hierarchy () =
  let c = Cache.create [] in
  let r = Cache.access c 1234 in
  Alcotest.(check int) "straight to memory" 1 r.Cache.level_hit

(* Property: a working set smaller than one way-capacity never misses
   after the first pass (no conflict misses for sequential lines within
   a single set's associativity budget). *)
let prop_small_working_set =
  QCheck.Test.make ~name:"resident working set only hits" ~count:50
    QCheck.(int_range 1 8)
    (fun lines ->
      let c = Cache.create [ tiny ] in
      (* [lines] consecutive lines; tiny holds 8 lines total, 2 per set:
         up to 8 consecutive lines fit exactly *)
      for i = 0 to lines - 1 do
        ignore (Cache.access c (i * 32))
      done;
      let all_hit = ref true in
      for i = 0 to lines - 1 do
        let r = Cache.access c (i * 32) in
        if r.Cache.level_hit <> 1 then all_hit := false
      done;
      !all_hit)

(* An independent reference model of one set-associative LRU level:
   per-set most-recently-used-first association lists. The production
   implementation (packed arrays + timestamps) must agree with it on
   every access of a random address stream. *)
module Reference = struct
  type t = { geom : Cache.geometry; n_sets : int; sets : int list array }

  let create geom =
    let n_sets = geom.Cache.size_bytes / (geom.Cache.line_bytes * geom.Cache.assoc) in
    { geom; n_sets; sets = Array.make n_sets [] }

  let access t addr =
    let line = addr / t.geom.Cache.line_bytes in
    let set = line mod t.n_sets in
    let tag = line / t.n_sets in
    let current = t.sets.(set) in
    let hit = List.mem tag current in
    let without = List.filter (fun x -> x <> tag) current in
    t.sets.(set) <- Util.list_take t.geom.Cache.assoc (tag :: without);
    hit
end

let prop_matches_reference_model =
  QCheck.Test.make ~name:"cache agrees with a reference LRU model" ~count:50
    QCheck.(list_of_size Gen.(50 -- 300) (int_range 0 4095))
    (fun addresses ->
      let geom = { Cache.size_bytes = 512; line_bytes = 32; assoc = 2 } in
      let cache = Cache.create [ geom ] in
      let reference = Reference.create geom in
      List.for_all
        (fun addr ->
          let hit = (Cache.access cache addr).Cache.level_hit = 1 in
          let ref_hit = Reference.access reference addr in
          hit = ref_hit)
        addresses)

let tests =
  [
    Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
    Alcotest.test_case "hit after fill" `Quick test_hit_after_fill;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "two inclusive levels" `Quick test_two_levels_inclusive;
    Alcotest.test_case "flush" `Quick test_flush;
    Alcotest.test_case "access_range line granularity" `Quick test_access_range;
    Alcotest.test_case "empty hierarchy" `Quick test_empty_hierarchy;
    QCheck_alcotest.to_alcotest prop_small_working_set;
    QCheck_alcotest.to_alcotest prop_matches_reference_model;
  ]
