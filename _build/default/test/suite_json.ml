(* Tests for the JSON implementation. *)

let parse = Json.of_string

let test_scalars () =
  Alcotest.(check bool) "true" true (Json.to_bool (parse "true"));
  Alcotest.(check bool) "false" false (Json.to_bool (parse "false"));
  Alcotest.(check int) "int" 42 (Json.to_int (parse "42"));
  Alcotest.(check int) "negative" (-7) (Json.to_int (parse "-7"));
  Alcotest.(check (float 1e-12)) "float" 2.5 (Json.to_float (parse "2.5"));
  Alcotest.(check (float 1e-6)) "exponent" 1500.0 (Json.to_float (parse "1.5e3"));
  (match parse "null" with Json.Null -> () | _ -> Alcotest.fail "null");
  Alcotest.(check string) "string" "hi" (Json.to_str (parse "\"hi\""))

let test_escapes () =
  Alcotest.(check string) "newline" "a\nb" (Json.to_str (parse {|"a\nb"|}));
  Alcotest.(check string) "quote" "say \"hi\"" (Json.to_str (parse {|"say \"hi\""|}));
  Alcotest.(check string) "backslash" "a\\b" (Json.to_str (parse {|"a\\b"|}));
  Alcotest.(check string) "unicode" "A" (Json.to_str (parse {|"A"|}));
  (* surrogate pair for U+1F600 encodes to 4 UTF-8 bytes *)
  Alcotest.(check int) "surrogate pair" 4
    (String.length (Json.to_str (parse {|"😀"|})))

let test_structures () =
  let j = parse {| { "a": [1, 2, 3], "b": { "c": true }, "empty": [], "eo": {} } |} in
  Alcotest.(check int) "array elems" 3 (List.length (Json.to_list (Json.member "a" j)));
  Alcotest.(check bool) "nested" true (Json.to_bool (Json.member "c" (Json.member "b" j)));
  Alcotest.(check int) "empty array" 0 (List.length (Json.to_list (Json.member "empty" j)));
  Alcotest.(check int) "empty object" 0 (List.length (Json.to_obj (Json.member "eo" j)));
  (match Json.member "missing" j with Json.Null -> () | _ -> Alcotest.fail "missing -> Null");
  Alcotest.(check bool) "member_opt none" true (Json.member_opt "missing" j = None)

let test_roundtrip () =
  let doc =
    Json.Obj
      [
        ("name", Json.String "v3_16");
        ("dims", Json.List [ Json.Int 16; Json.Int 16; Json.Int 16 ]);
        ("freq", Json.Float 200.0);
        ("flex", Json.Bool false);
        ("nothing", Json.Null);
        ("nested", Json.Obj [ ("x", Json.String "a\"b") ]);
      ]
  in
  Alcotest.(check bool) "compact roundtrip" true (parse (Json.to_string doc) = doc);
  Alcotest.(check bool) "pretty roundtrip" true (parse (Json.to_string ~indent:2 doc) = doc)

let expect_parse_error src =
  match parse src with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "expected parse error for %s" src)

let test_errors () =
  expect_parse_error "{";
  expect_parse_error "[1, 2";
  expect_parse_error "tru";
  expect_parse_error "\"unterminated";
  expect_parse_error "{\"a\" 1}";
  expect_parse_error "1 2";
  expect_parse_error "{\"a\": 1,}";
  (* error message carries position *)
  let contains hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (try
     ignore (parse "[1, \n  bad]");
     Alcotest.fail "expected parse error"
   with Json.Parse_error msg ->
     Alcotest.(check bool) "mentions line 2" true (contains msg "line 2"))

let test_type_errors () =
  let j = parse "{\"a\": 1}" in
  Alcotest.check_raises "to_bool of int" (Json.Type_error "expected bool, found int")
    (fun () -> ignore (Json.to_bool (Json.member "a" j)));
  Alcotest.check_raises "member of array" (Json.Type_error "expected object, found array")
    (fun () -> ignore (Json.member "x" (parse "[]")))

let test_large_int_fallback () =
  (* Integers beyond native range fall back to float rather than failing. *)
  match parse "123456789012345678901234567890" with
  | Json.Float _ -> ()
  | _ -> Alcotest.fail "expected float fallback"

let tests =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "string escapes" `Quick test_escapes;
    Alcotest.test_case "structures" `Quick test_structures;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "large integer fallback" `Quick test_large_int_fallback;
  ]
