(* Tests for IR types and affine maps. *)

let test_strides () =
  Alcotest.(check (list int)) "2d" [ 4; 1 ] (Ty.identity_strides [ 3; 4 ]);
  Alcotest.(check (list int)) "4d" [ 2304; 9; 3; 1 ] (Ty.identity_strides [ 64; 256; 3; 3 ]);
  Alcotest.(check (list int)) "1d" [ 1 ] (Ty.identity_strides [ 7 ]);
  Alcotest.(check (list int)) "0d" [] (Ty.identity_strides [])

let test_memref_basics () =
  let m = Ty.memref_of (Ty.memref [ 4; 8 ] Ty.F32) in
  Alcotest.(check int) "rank" 2 (Ty.rank m);
  Alcotest.(check int) "elements" 32 (Ty.num_elements m);
  Alcotest.(check bool) "identity" true (Ty.is_identity_layout m);
  Alcotest.(check bool) "contiguous" true (Ty.is_contiguous_innermost m);
  let strided = Ty.memref_of (Ty.memref ~strides:[ 8; 2 ] [ 4; 4 ] Ty.F32) in
  Alcotest.(check bool) "non-contiguous" false (Ty.is_contiguous_innermost strided);
  Alcotest.(check bool) "non-identity" false (Ty.is_identity_layout strided)

let test_subview_type () =
  let m = Ty.memref_of (Ty.memref [ 60; 80 ] Ty.F32) in
  let sub = Ty.memref_of (Ty.subview_type m ~offsets:[ 4; 8 ] ~sizes:[ 4; 4 ]) in
  Alcotest.(check (list int)) "shape" [ 4; 4 ] sub.Ty.shape;
  Alcotest.(check (list int)) "strides inherited" [ 80; 1 ] sub.Ty.strides;
  Alcotest.(check int) "offset" (4 * 80 + 8) sub.Ty.offset;
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Ty.subview_type: slice [78, 82) exceeds extent 80") (fun () ->
      ignore (Ty.subview_type m ~offsets:[ 0; 78 ] ~sizes:[ 4; 4 ]));
  let dynamic = Ty.memref_of (Ty.dynamic_subview_type m ~sizes:[ 4; 4 ]) in
  Alcotest.(check int) "dynamic offset" Ty.dynamic_offset dynamic.Ty.offset

let test_type_printing () =
  Alcotest.(check string) "scalar" "f32" (Ty.to_string Ty.f32);
  Alcotest.(check string) "memref" "memref<4x4xf32>" (Ty.to_string (Ty.memref [ 4; 4 ] Ty.F32));
  Alcotest.(check string) "strided" "memref<4x4xf32, strided<[80, 1], offset: 42>>"
    (Ty.to_string (Ty.memref ~offset:42 ~strides:[ 80; 1 ] [ 4; 4 ] Ty.F32));
  let m = Ty.memref_of (Ty.memref [ 4; 4 ] Ty.F32) in
  Alcotest.(check string) "dynamic" "memref<4x4xf32, strided<[4, 1], offset: ?>>"
    (Ty.to_string (Ty.dynamic_subview_type m ~sizes:[ 4; 4 ]));
  Alcotest.(check string) "func type" "(index, f32) -> (i32)"
    (Ty.to_string (Ty.Func ([ Ty.index; Ty.f32 ], [ Ty.i32 ])))

let test_dtype_sizes () =
  Alcotest.(check int) "f32" 4 (Ty.dtype_size_bytes Ty.F32);
  Alcotest.(check int) "f64" 8 (Ty.dtype_size_bytes Ty.F64);
  Alcotest.(check int) "i8" 1 (Ty.dtype_size_bytes Ty.I8);
  List.iter
    (fun d ->
      Alcotest.(check (option string)) "dtype name roundtrip"
        (Some (Ty.dtype_to_string d))
        (Option.map Ty.dtype_to_string (Ty.dtype_of_string (Ty.dtype_to_string d))))
    [ Ty.F32; Ty.F64; Ty.I1; Ty.I8; Ty.I32; Ty.I64; Ty.Index ]

let test_affine_eval () =
  let open Affine_map in
  let map = make ~n_dims:3 [ Dim 0; Add (Dim 1, Dim 2); Cst 7; Mul (Dim 0, Cst 2) ] in
  Alcotest.(check (list int)) "eval" [ 5; 9; 7; 10 ] (eval map [| 5; 4; 5 |]);
  Alcotest.check_raises "arity" (Invalid_argument "Affine_map.eval: wrong number of dimension values")
    (fun () -> ignore (eval map [| 1 |]));
  Alcotest.check_raises "dim range"
    (Invalid_argument "Affine_map: d3 out of range for 3 dims") (fun () ->
      ignore (make ~n_dims:3 [ Dim 3 ]))

let test_affine_classification () =
  let open Affine_map in
  Alcotest.(check bool) "identity is perm" true (is_permutation (identity 3));
  Alcotest.(check bool) "projection not perm" false (is_permutation (projection ~n_dims:3 [ 0; 2 ]));
  Alcotest.(check bool) "projection is proj" true (is_projection (projection ~n_dims:3 [ 0; 2 ]));
  Alcotest.(check bool) "add not proj" false
    (is_projection (make ~n_dims:3 [ Add (Dim 0, Dim 1) ]));
  Alcotest.(check bool) "dup not proj" false (is_projection (make ~n_dims:3 [ Dim 0; Dim 0 ]));
  Alcotest.(check (list int)) "projected dims" [ 2; 0 ] (projected_dims (projection ~n_dims:3 [ 2; 0 ]));
  Alcotest.check_raises "not a permutation" (Invalid_argument "Affine_map.permutation: not a permutation")
    (fun () -> ignore (permutation [ 0; 0; 1 ]))

let test_affine_compose () =
  let perm = Affine_map.permutation [ 2; 0; 1 ] in
  Alcotest.(check (list int)) "compose" [ 30; 10; 20 ]
    (Affine_map.compose_permutation perm [ 10; 20; 30 ])

let test_affine_printing () =
  let open Affine_map in
  Alcotest.(check string) "default names" "affine_map<(d0, d1, d2) -> (d0, d2)>"
    (to_string (projection ~n_dims:3 [ 0; 2 ]));
  Alcotest.(check string) "custom names" "affine_map<(m, n, k) -> (m, k)>"
    (to_string ~dim_names:[ "m"; "n"; "k" ] (projection ~n_dims:3 [ 0; 2 ]));
  Alcotest.(check string) "constants" "affine_map<(d0, d1, d2) -> (4, 4, 4)>"
    (to_string (constant_results ~n_dims:3 [ 4; 4; 4 ]));
  Alcotest.(check string) "conv input"
    "affine_map<(d0, d1, d2, d3, d4, d5, d6) -> (d0, d4, d2 + d5, d3 + d6)>"
    (to_string
       (make ~n_dims:7 [ Dim 0; Dim 4; Add (Dim 2, Dim 5); Add (Dim 3, Dim 6) ]))

let prop_identity_strides_row_major =
  QCheck.Test.make ~name:"identity strides are row-major products" ~count:200
    QCheck.(list_of_size Gen.(1 -- 4) (1 -- 6))
    (fun shape ->
      let strides = Ty.identity_strides shape in
      (* stride.(i) = product of shape.(i+1 ..) *)
      let expected =
        List.mapi
          (fun i _ -> Util.product (Util.list_drop (i + 1) shape))
          shape
      in
      strides = expected)

let prop_subview_offset =
  QCheck.Test.make ~name:"subview offset accumulates strides" ~count:200
    QCheck.(pair (pair (1 -- 8) (1 -- 8)) (pair (0 -- 7) (0 -- 7)))
    (fun ((rows, cols), (oi, oj)) ->
      QCheck.assume (oi < rows && oj < cols);
      let m = Ty.memref_of (Ty.memref [ rows + 8; cols + 8 ] Ty.F32) in
      let sub = Ty.memref_of (Ty.subview_type m ~offsets:[ oi; oj ] ~sizes:[ rows; cols ]) in
      sub.Ty.offset = (oi * (cols + 8)) + oj)

let tests =
  [
    Alcotest.test_case "identity strides" `Quick test_strides;
    Alcotest.test_case "memref basics" `Quick test_memref_basics;
    Alcotest.test_case "subview types" `Quick test_subview_type;
    Alcotest.test_case "type printing" `Quick test_type_printing;
    Alcotest.test_case "dtype sizes and names" `Quick test_dtype_sizes;
    Alcotest.test_case "affine eval" `Quick test_affine_eval;
    Alcotest.test_case "affine classification" `Quick test_affine_classification;
    Alcotest.test_case "affine compose" `Quick test_affine_compose;
    Alcotest.test_case "affine printing" `Quick test_affine_printing;
    QCheck_alcotest.to_alcotest prop_identity_strides_row_major;
    QCheck_alcotest.to_alcotest prop_subview_offset;
  ]
