(* Tests for the configuration layer: presets, JSON round-trips, traits. *)

let all_matmul_presets () =
  List.concat_map
    (fun version ->
      List.map
        (fun size -> Presets.matmul ~version ~size ())
        Presets.table1_sizes)
    [ Accel_matmul.V1; Accel_matmul.V2; Accel_matmul.V3; Accel_matmul.V4 ]

let test_presets_validate () =
  List.iter
    (fun config ->
      match Accel_config.validate config with
      | Ok () -> ()
      | Error msg ->
        Alcotest.fail (Printf.sprintf "%s: %s" config.Accel_config.accel_name msg))
    (Presets.conv () :: all_matmul_presets ())

let test_preset_flows_per_version () =
  Alcotest.(check (list string)) "v1" [ "Ns" ] (Presets.matmul_flows Accel_matmul.V1);
  Alcotest.(check (list string)) "v2" [ "Ns"; "As"; "Bs" ] (Presets.matmul_flows Accel_matmul.V2);
  Alcotest.(check (list string)) "v3" [ "Ns"; "As"; "Bs"; "Cs" ]
    (Presets.matmul_flows Accel_matmul.V3);
  Alcotest.(check (list string)) "v4" [ "Ns"; "As"; "Bs"; "Cs" ]
    (Presets.matmul_flows Accel_matmul.V4);
  (match Presets.matmul ~version:Accel_matmul.V1 ~size:4 ~flow:"As" () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "v1 accepted As")

let test_table1_throughputs () =
  Alcotest.(check (float 0.0)) "size 4" 10.0 (Accel_matmul.ops_per_cycle_for_size 4);
  Alcotest.(check (float 0.0)) "size 8" 60.0 (Accel_matmul.ops_per_cycle_for_size 8);
  Alcotest.(check (float 0.0)) "size 16" 112.0 (Accel_matmul.ops_per_cycle_for_size 16)

let test_config_json_roundtrip () =
  List.iter
    (fun config ->
      let host = Host_config.pynq_z2 in
      let text = Config_parser.to_string host config in
      let host', config' = Config_parser.parse_string text in
      Alcotest.(check string) "accel name survives" config.Accel_config.accel_name
        config'.Accel_config.accel_name;
      Alcotest.(check bool) "host equal" true (host = host');
      Alcotest.(check bool) "config equal" true (config = config'))
    (Presets.conv () :: all_matmul_presets ())

let test_config_json_errors () =
  let bad_flow =
    {|{"cpu": {"name": "x", "frequency_mhz": 650, "caches": []},
       "accelerator": {"name": "a", "engine": "v3", "size": 4, "operation": "matmul",
        "data_type": "f32", "dims": [4,4,4], "buffer_elems": 16,
        "frequency_mhz": 200, "ops_per_cycle": 10,
        "dma": {"id": 0, "input_address": 66, "input_buffer_size": 65280,
                "output_address": 65346, "output_buffer_size": 65280},
        "opcode_map": "sA = [send(0)]",
        "opcode_flows": {"Ns": "(sA)"},
        "flow": "Missing",
        "init_opcodes": "()"}}|}
  in
  (match Config_parser.parse_string bad_flow with
  | exception _ -> ()
  | _ -> Alcotest.fail "undefined selected flow accepted");
  let bad_engine = {|{"cpu": {"frequency_mhz": 650, "caches": []}, "accelerator": {"name": "a", "engine": "v9"}}|} in
  match Config_parser.parse_string bad_engine with
  | exception _ -> ()
  | _ -> Alcotest.fail "unknown engine accepted"

let test_with_flow () =
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:8 () in
  let cs = Accel_config.with_flow config "Cs" in
  Alcotest.(check string) "selected" "Cs" cs.Accel_config.selected_flow;
  match Accel_config.with_flow config "Zs" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown flow accepted"

let sample_trait () =
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:4 ~flow:"As" () in
  {
    Trait.dma_init_config = config.Accel_config.dma;
    init_opcodes = [ "reset" ];
    accel_dim = [ 4; 4; 4 ];
    permutation = [ 0; 2; 1 ];
    opcode_map = config.Accel_config.opcode_map;
    opcode_flow = Accel_config.flow_exn config "As";
    cpu_tile = [ 0; 0; 0 ];
    double_buffer = false;
  }

let test_trait_roundtrip () =
  let trait = sample_trait () in
  let op = Trait.attach (Ir.op "linalg.generic") trait in
  match Trait.of_op op with
  | Some decoded -> Alcotest.(check bool) "roundtrip" true (decoded = trait)
  | None -> Alcotest.fail "trait not decoded"

let test_trait_validate () =
  let trait = sample_trait () in
  Alcotest.(check bool) "valid" true (Trait.validate trait ~n_dims:3 ~n_args:3 = Ok ());
  let bad_perm = { trait with Trait.permutation = [ 0; 0; 1 ] } in
  Alcotest.(check bool) "bad permutation" true
    (Result.is_error (Trait.validate bad_perm ~n_dims:3 ~n_args:3));
  let bad_dim = { trait with Trait.accel_dim = [ 4; 4 ] } in
  Alcotest.(check bool) "bad accel_dim arity" true
    (Result.is_error (Trait.validate bad_dim ~n_dims:3 ~n_args:3));
  let bad_init = { trait with Trait.init_opcodes = [ "nope" ] } in
  Alcotest.(check bool) "undefined init opcode" true
    (Result.is_error (Trait.validate bad_init ~n_dims:3 ~n_args:3))

let test_host_config () =
  let host = Host_config.pynq_z2 in
  Alcotest.(check int) "L1" (32 * 1024) (Host_config.l1_bytes host);
  Alcotest.(check int) "LLC" (512 * 1024) (Host_config.last_level_cache_bytes host);
  let empty = { host with Host_config.caches = [] } in
  Alcotest.(check int) "no caches" 0 (Host_config.l1_bytes empty)

let test_attach_creates_engine () =
  let soc = Soc.create () in
  let config = Presets.matmul ~version:Accel_matmul.V2 ~size:8 () in
  let engine = Accel_config.attach soc config in
  Alcotest.(check int) "capacity from config" (0xFF00 / 4)
    (Dma_engine.in_capacity_words engine);
  Alcotest.(check string) "device name" "v2_8"
    (Dma_engine.device engine).Accel_device.device_name

let test_buffer_capacity_check () =
  let config = Presets.matmul ~version:Accel_matmul.V3 ~size:4 () in
  let inflated = { config with Accel_config.buffer_capacity_elems = 1_000_000 } in
  Alcotest.(check bool) "inconsistent capacity rejected" true
    (Result.is_error (Accel_config.validate inflated))

let tests =
  [
    Alcotest.test_case "presets validate" `Quick test_presets_validate;
    Alcotest.test_case "flows per version" `Quick test_preset_flows_per_version;
    Alcotest.test_case "Table I throughputs" `Quick test_table1_throughputs;
    Alcotest.test_case "config JSON roundtrip" `Quick test_config_json_roundtrip;
    Alcotest.test_case "config JSON errors" `Quick test_config_json_errors;
    Alcotest.test_case "with_flow" `Quick test_with_flow;
    Alcotest.test_case "trait attach/decode roundtrip" `Quick test_trait_roundtrip;
    Alcotest.test_case "trait validation" `Quick test_trait_validate;
    Alcotest.test_case "host config" `Quick test_host_config;
    Alcotest.test_case "attach creates the engine" `Quick test_attach_creates_engine;
    Alcotest.test_case "buffer capacity consistency" `Quick test_buffer_capacity_check;
  ]
