(* Quickstart: describe an accelerator, compile a matmul against it,
   inspect the generated host code, and run it on the simulated SoC.

     dune exec examples/quickstart.exe *)

(* 1. The accelerator + host description — the Fig. 5 configuration
   file. In a real project this lives in a .json file next to your
   build; Config_parser.parse_file reads it. *)
let config_text =
  {|{
  "cpu": {
    "name": "cortex-a9",
    "frequency_mhz": 650.0,
    "caches": [
      { "size_kb": 32, "line_bytes": 32, "assoc": 4 },
      { "size_kb": 512, "line_bytes": 32, "assoc": 8 }
    ]
  },
  "accelerator": {
    "name": "v3_16",
    "engine": "v3",
    "size": 16,
    "operation": "matmul",
    "data_type": "f32",
    "dims": [16, 16, 16],
    "flexible": false,
    "buffer_elems": 256,
    "frequency_mhz": 200.0,
    "ops_per_cycle": 112.0,
    "dma": {
      "id": 0,
      "input_address": 66,
      "input_buffer_size": 65280,
      "output_address": 65346,
      "output_buffer_size": 65280
    },
    "opcode_map": "opcode_map<reset = [send_literal(0xFF)], sA = [send_literal(0x22), send(0)], sB = [send_literal(0x23), send(1)], cC = [send_literal(0xF0)], rC = [send_literal(0x24), recv(2)]>",
    "opcode_flows": {
      "Ns": "opcode_flow<(sA sB cC rC)>",
      "As": "opcode_flow<(sA (sB cC rC))>",
      "Cs": "opcode_flow<((sA sB cC) rC)>"
    },
    "flow": "Cs",
    "init_opcodes": "opcode_flow<(reset)>"
  }
}|}

let () =
  let host, accel = Config_parser.parse_string config_text in
  Printf.printf "Loaded accelerator '%s' (%s flow) for host '%s'\n\n"
    accel.Accel_config.accel_name accel.Accel_config.selected_flow
    host.Host_config.cpu_name;

  (* 2. A workbench: simulated SoC with the accelerator attached. *)
  let bench = Axi4mlir.create ~host accel in

  (* 3. The application: a 64x64x64 matmul, as a linalg.generic. *)
  let m, n, k = (64, 64, 64) in
  let app = Axi4mlir.build_matmul_module ~m ~n ~k () in

  (* 4. Compile. Stop at the accel dialect first to see the Fig. 6b
     structure the paper describes... *)
  let accel_level =
    Axi4mlir.compile bench
      ~options:{ Axi4mlir.default_codegen with to_runtime_calls = false }
      app
  in
  print_endline "Generated host code (accel dialect, pretty-printed):";
  print_string (Printer.to_pretty accel_level);

  (* ...then compile for real, down to DMA runtime calls. *)
  let compiled = Axi4mlir.compile bench app in

  (* 5. Run on the simulated SoC and check the result. *)
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
  let expected = Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array b) in
  let counters = Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench compiled ~a ~b ~c) in
  Printf.printf "\nAccelerated run:  %.3f ms  (%s)\n"
    (Axi4mlir.task_clock_ms bench counters)
    (Perf_counters.to_string counters);
  Printf.printf "max |generated - oracle| = %g\n"
    (Gold.max_abs_diff expected (Memref_view.to_array c));

  (* 6. Compare with CPU-only execution of the same linalg op. *)
  Memref_view.fill_from c (Array.make (m * n) 0.0);
  let cpu_ir = Axi4mlir.compile_cpu (Axi4mlir.build_matmul_module ~m ~n ~k ()) in
  let cpu = Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench cpu_ir ~a ~b ~c) in
  Printf.printf "CPU-only run:     %.3f ms\n" (Axi4mlir.task_clock_ms bench cpu);
  Printf.printf "offload speedup:  %.2fx\n"
    (cpu.Perf_counters.cycles /. counters.Perf_counters.cycles)
