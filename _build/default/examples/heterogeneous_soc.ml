(* A heterogeneous SoC: two accelerators behind two DMA engines driven
   from one application function — a v3_16 MatMul engine on DMA id 0
   and the Conv2D engine on DMA id 1 (the multi-accelerator case the
   paper's dma_init_config anticipates).

   The application runs a small CNN block: conv -> (im2col-free) conv,
   then a matmul classifier head; each linalg op is matched and
   offloaded to its own engine by running the two accelerators'
   pipelines in sequence.

     dune exec examples/heterogeneous_soc.exe *)

let () =
  Dialects.register_all ();
  let host = Host_config.pynq_z2 in
  let matmul_accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Cs" () in
  let conv_accel =
    let base = Presets.conv ~flow:"Os" () in
    { base with Accel_config.dma = { base.Accel_config.dma with Accel_config.dma_id = 1 } }
  in
  let soc = Soc.create ~cache_geometries:host.Host_config.caches () in
  ignore (Accel_config.attach soc matmul_accel);
  ignore (Accel_config.attach soc conv_accel);
  Printf.printf "SoC: %s on DMA 0, %s on DMA 1\n\n" matmul_accel.Accel_config.accel_name
    conv_accel.Accel_config.accel_name;

  (* Block: I(1,8,18,18) * W1(16,8,3,3) -> F(1,16,16,16);
     flattened F (16,256) x classifier (256... keep matmul shapes
     divisible by 16: G(256,256) as "features x weights". *)
  let ic, ihw, oc, fhw = (8, 18, 16, 3) in
  let ohw = ihw - fhw + 1 in
  let m, n, k = (oc * ohw, 16, ohw) in
  let f =
    Func.func_op ~name:"cnn_block"
      ~args:
        [
          Ty.memref [ 1; ic; ihw; ihw ] Ty.F32;
          Ty.memref [ oc; ic; fhw; fhw ] Ty.F32;
          Ty.memref [ 1; oc; ohw; ohw ] Ty.F32;
          Ty.memref [ m; k ] Ty.F32;
          Ty.memref [ k; n ] Ty.F32;
          Ty.memref [ m; n ] Ty.F32;
        ]
      (fun b args ->
        match args with
        | [ i; w; o; a; bv; c ] ->
          ignore (Linalg.conv_2d_nchw_fchw b ~input:i ~filter:w ~output:o);
          ignore (Linalg.matmul b ~a ~b:bv ~c);
          Func.return_op b []
        | _ -> assert false)
  in
  let modul = Ir.module_op [ f ] in

  let compiled =
    Pass.run_pipeline
      (Pipeline.passes (Pipeline.make ~accel:matmul_accel ~host ())
      @ Pipeline.passes (Pipeline.make ~accel:conv_accel ~host ()))
      modul
  in
  Printf.printf "compiled: %d runtime calls, %d dma_init (one per engine)\n"
    (Ir.count_ops (fun o -> o.Ir.name = "func.call") compiled)
    (Ir.count_ops
       (fun o ->
         o.Ir.name = "func.call"
         && Ir.attr o "callee" = Some (Attribute.Str Runtime_abi.dma_init))
       compiled);

  let alloc label shape =
    let n_elems = List.fold_left ( * ) 1 shape in
    let buf = Sim_memory.alloc soc.Soc.memory ~label n_elems in
    Gold.fill_deterministic ~seed:(Hashtbl.hash label) buf.Sim_memory.data;
    Memref_view.of_buffer buf shape
  in
  let i = alloc "I" [ 1; ic; ihw; ihw ]
  and w = alloc "W" [ oc; ic; fhw; fhw ]
  and o = alloc "F" [ 1; oc; ohw; ohw ]
  and a = alloc "A" [ m; k ]
  and bv = alloc "B" [ k; n ]
  and c = alloc "C" [ m; n ] in
  Memref_view.fill_from o (Array.make (Memref_view.num_elements o) 0.0);
  Memref_view.fill_from c (Array.make (m * n) 0.0);
  let gold_o =
    Gold.conv2d ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw (Memref_view.to_array i)
      (Memref_view.to_array w)
  in
  let gold_c = Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array bv) in

  let interp = Interp.create ~copy_strategy:Dma_library.Specialized soc compiled in
  Soc.reset_run_state soc;
  ignore
    (Interp.invoke interp "cnn_block"
       [ Interp.M i; Interp.M w; Interp.M o; Interp.M a; Interp.M bv; Interp.M c ]);
  Printf.printf "task clock: %.3f ms, %.0f DMA transactions across both engines\n"
    (Soc.now_ms soc) soc.Soc.counters.Perf_counters.dma_transactions;
  Printf.printf "conv correct:   %b\n"
    (Gold.max_abs_diff gold_o (Memref_view.to_array o) < 1e-9);
  Printf.printf "matmul correct: %b\n"
    (Gold.max_abs_diff gold_c (Memref_view.to_array c) < 1e-9)
