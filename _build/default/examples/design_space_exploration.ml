(* Design-space exploration with a runtime-configurable accelerator
   (the paper's Sec. IV-C workflow): for one problem shape, sweep every
   dataflow and feasible tile shape of the flexible v4 engine, compare
   the analytic cost estimate against measured simulation, and report
   the winner.

     dune exec examples/design_space_exploration.exe -- [M N K]   *)

let measure_config bench ~m ~n ~k ~flow ~tiles:(tm, tn, tk) =
  let options =
    { Axi4mlir.default_codegen with flow = Some flow; tiles = Some [ tm; tn; tk ] }
  in
  let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
  let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
  let counters = Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c) in
  counters.Perf_counters.cycles

let () =
  let m, n, k =
    match Array.to_list Sys.argv with
    | [ _; m; n; k ] -> (int_of_string m, int_of_string n, int_of_string k)
    | _ -> (32, 256, 512)
  in
  let accel = Presets.matmul ~version:Accel_matmul.V4 ~size:16 () in
  let bench = Axi4mlir.create accel in
  Printf.printf "Exploring %dx%dx%d on %s (buffers: %d elements/operand)\n\n" m n k
    accel.Accel_config.accel_name accel.Accel_config.buffer_capacity_elems;

  let candidates = Heuristics.candidate_tiles accel ~m ~n ~k in
  Printf.printf "%d feasible tile shapes x 4 flows\n\n" (List.length candidates);

  (* Sweep a manageable subset: every flow with the predicted-best five
     tile shapes for that flow. *)
  let flows = [ "Ns"; "As"; "Bs"; "Cs" ] in
  let best_measured = ref ("", (0, 0, 0), infinity) in
  let rows = ref [] in
  List.iter
    (fun flow ->
      let scored =
        List.map
          (fun (tm, tn, tk) ->
            ( (tm, tn, tk),
              Heuristics.estimate_cycles accel ~cost:Cost_model.default ~flow ~m ~n ~k ~tm
                ~tn ~tk ))
          candidates
      in
      let top =
        Util.list_take 5 (List.sort (fun (_, a) (_, b) -> compare a b) scored)
      in
      List.iter
        (fun ((tm, tn, tk), predicted) ->
          let measured = measure_config bench ~m ~n ~k ~flow ~tiles:(tm, tn, tk) in
          if measured < (let _, _, best = !best_measured in best) then
            best_measured := (flow, (tm, tn, tk), measured);
          rows := (flow, (tm, tn, tk), predicted, measured) :: !rows)
        top)
    flows;

  let t =
    Tabulate.create
      [
        ("flow", Tabulate.Left);
        ("tM,tN,tK", Tabulate.Left);
        ("predicted ms", Tabulate.Right);
        ("measured ms", Tabulate.Right);
        ("pred/meas", Tabulate.Right);
      ]
  in
  List.iter
    (fun (flow, (tm, tn, tk), predicted, measured) ->
      Tabulate.add_row t
        [
          flow;
          Printf.sprintf "%d,%d,%d" tm tn tk;
          Tabulate.fmt_ms (predicted /. 650_000.0);
          Tabulate.fmt_ms (measured /. 650_000.0);
          Printf.sprintf "%.2f" (predicted /. measured);
        ])
    (List.sort compare (List.rev !rows));
  Tabulate.print ~title:"Per-configuration results (top-5 predicted per flow)" t;

  let flow, (tm, tn, tk), measured = !best_measured in
  Printf.printf "\nMeasured best: flow %s with tiles tM=%d tN=%d tK=%d (%.3f ms)\n" flow tm
    tn tk
    (measured /. 650_000.0);
  match Heuristics.best accel ~m ~n ~k with
  | Some choice ->
    Printf.printf "Heuristic pick: flow %s with tiles tM=%d tN=%d tK=%d\n"
      choice.Heuristics.flow choice.Heuristics.tm choice.Heuristics.tn choice.Heuristics.tk
  | None -> print_endline "Heuristic found no feasible configuration"
