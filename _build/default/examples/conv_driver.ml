(* Driving the Conv2D accelerator (the paper's Sec. IV-D): compile
   linalg.conv_2d_nchw_fchw against the conv engine, inspect the
   generated accel-dialect host code (the Fig. 15b structure), and run
   a ResNet-18 layer on the simulated SoC under each flow.

     dune exec examples/conv_driver.exe -- [layer-label]
   e.g. dune exec examples/conv_driver.exe -- 7_512_3_512_1          *)

let () =
  let label = if Array.length Sys.argv > 1 then Sys.argv.(1) else "14_256_3_256_1" in
  let layer =
    match Resnet18.find label with
    | Some l -> l
    | None ->
      Printf.eprintf "unknown layer %s; available:\n  %s\n" label
        (String.concat "\n  " (List.map (fun (l : Resnet18.layer) -> l.Resnet18.label) Resnet18.layers));
      exit 2
  in
  let ic = layer.Resnet18.ic and oc = layer.Resnet18.oc and fhw = layer.Resnet18.fhw in
  let stride = layer.Resnet18.stride in
  (* keep the run snappy: a few output rows at full width *)
  let rows = 4 in
  let ih = ((rows - 1) * stride) + fhw and iw = layer.Resnet18.ihw in
  let ow = Gold.conv_out iw ~fhw ~stride in
  Printf.printf "Layer %s: iC=%d oC=%d fHW=%d stride=%d (simulating %d output rows x %d)\n\n"
    label ic oc fhw stride rows ow;

  (* Show the generated accel-level host code for a toy instance. *)
  let accel = Presets.conv ~flow:"Ws" () in
  let bench = Axi4mlir.create accel in
  let toy = Axi4mlir.build_conv_module ~n:1 ~ic:2 ~ih:4 ~iw:4 ~oc:2 ~fh:3 ~fw:3 () in
  let toy_accel =
    Axi4mlir.compile bench
      ~options:{ Axi4mlir.default_codegen with to_runtime_calls = false }
      toy
  in
  print_endline "Generated conv host code (accel dialect, toy instance, Ws flow):";
  print_string (Printer.to_pretty toy_accel);
  print_newline ();

  (* Run the layer under every flow and compare. *)
  let t =
    Tabulate.create
      [
        ("flow", Tabulate.Left);
        ("task clock ms", Tabulate.Right);
        ("DMA txns", Tabulate.Right);
        ("words sent", Tabulate.Right);
        ("correct", Tabulate.Left);
      ]
  in
  List.iter
    (fun flow ->
      let accel = Presets.conv ~flow () in
      let bench = Axi4mlir.create accel in
      let i, w, o =
        Axi4mlir.alloc_conv_operands ~stride bench ~n:1 ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw
      in
      let gold =
        Gold.conv2d ~stride ~n:1 ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw (Memref_view.to_array i)
          (Memref_view.to_array w)
      in
      let ir = Axi4mlir.build_conv_module ~stride ~n:1 ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw () in
      let compiled = Axi4mlir.compile bench ir in
      let counters =
        Axi4mlir.measure bench (fun () ->
            Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled
              "conv_call"
              [ Interp.M i; Interp.M w; Interp.M o ])
      in
      let ok = Gold.max_abs_diff gold (Memref_view.to_array o) < 1e-9 in
      Tabulate.add_row t
        [
          flow;
          Tabulate.fmt_ms (Axi4mlir.task_clock_ms bench counters);
          Printf.sprintf "%.0f" counters.Perf_counters.dma_transactions;
          Printf.sprintf "%.0f" counters.Perf_counters.dma_words_sent;
          (if ok then "yes" else "NO");
        ])
    [ "Ns"; "Ws"; "Os" ];
  Tabulate.print ~title:"Flows compared (generated drivers)" t;
  print_endline
    "\nNs re-sends the weight slice per pixel; Ws keeps it stationary per output\n\
     channel; Os additionally hoists the output drain out of the spatial loops."
