examples/quickstart.ml: Accel_config Array Axi4mlir Config_parser Gold Host_config Memref_view Perf_counters Printer Printf
