examples/custom_accelerator.ml: Accel_config Accel_matmul Axi4mlir Config_parser Filename Gold Host_config List Memref_view Opcode Perf_counters Printf Sys Ty
