examples/design_space_exploration.ml: Accel_config Accel_matmul Array Axi4mlir Cost_model Heuristics List Perf_counters Presets Printf Sys Tabulate Util
