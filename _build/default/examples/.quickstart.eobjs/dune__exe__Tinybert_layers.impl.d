examples/tinybert_layers.ml: Accel_config Accel_matmul Axi4mlir Cpu_reference Dma_library Heuristics List Perf_counters Presets Printf Tabulate Tinybert
