examples/tinybert_layers.mli:
