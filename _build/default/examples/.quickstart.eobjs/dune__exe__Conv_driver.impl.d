examples/conv_driver.ml: Array Axi4mlir Dma_library Gold Interp List Memref_view Perf_counters Presets Printer Printf Resnet18 String Sys Tabulate
