examples/conv_driver.mli:
