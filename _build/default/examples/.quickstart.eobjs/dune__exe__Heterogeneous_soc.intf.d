examples/heterogeneous_soc.mli:
