examples/quickstart.mli:
