(* Integrating a brand-new accelerator, end to end, the way an
   accelerator designer would (the paper's co-design loop):

   1. write the configuration file for the new engine (here: a v2-style
      MatMul engine with a fused sBcCrC opcode, exactly the Fig. 6a
      example);
   2. validate and save it;
   3. let AXI4MLIR generate drivers for each flow the engine supports;
   4. measure them and iterate on the flow choice.

     dune exec examples/custom_accelerator.exe *)

let () =
  (* The Fig. 6a accelerator: a 4x4x4 engine with a fused
     send-B/compute/receive-C opcode enabling the A-stationary flow. *)
  let opcode_map =
    Opcode.parse_map
      "opcode_map<reset = [send_literal(0xFF)], sA = [send_literal(0x22), send(0)], sB = \
       [send_literal(0x23), send(1)], sBcCrC = [send_literal(0x25), send(1), recv(2)]>"
  in
  let accel =
    {
      Accel_config.accel_name = "fig6a_accelerator";
      engine = Accel_config.Matmul_engine (Accel_matmul.V2, 4);
      op_kind = "matmul";
      data_type = Ty.F32;
      accel_dims = [ 4; 4; 4 ];
      flexible = false;
      buffer_capacity_elems = 16;
      frequency_mhz = 200.0;
      ops_per_cycle = 10.0;
      dma =
        {
          Accel_config.dma_id = 0;
          input_address = 0x42;
          input_buffer_size = 0xFF00;
          output_address = 0xFF42;
          output_buffer_size = 0xFF00;
        };
      opcode_map;
      opcode_flows =
        [
          ("Ns", Opcode.parse_flow "(sA sBcCrC)");
          ("As", Opcode.parse_flow "(sA (sBcCrC))");
        ];
      selected_flow = "As";
      init_opcodes = [ "reset" ];
    }
  in
  (match Accel_config.validate accel with
  | Ok () -> print_endline "configuration validates"
  | Error msg ->
    Printf.eprintf "invalid configuration: %s\n" msg;
    exit 1);

  (* Save it the way a project would check it in. *)
  let path = Filename.temp_file "fig6a_accelerator" ".json" in
  Config_parser.write_file path Host_config.pynq_z2 accel;
  Printf.printf "wrote %s\n" path;
  let _host, reloaded = Config_parser.parse_file path in
  assert (reloaded = accel);

  (* 0x25 is the engine's fused load-B/compute/drain instruction, so
     one opcode moves B in, runs the tile MAC, and streams C out —
     which is what makes the A-stationary flow one transfer pair per
     inner iteration. *)
  let m, n, k = (32, 48, 16) in
  Printf.printf "\nproblem: %dx%dx%d\n" m n k;
  List.iter
    (fun flow ->
      let config = Accel_config.with_flow accel flow in
      let bench = Axi4mlir.create config in
      let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
      let gold = Gold.matmul ~m ~n ~k (Memref_view.to_array a) (Memref_view.to_array b) in
      let ir = Axi4mlir.compile_matmul bench ~m ~n ~k () in
      let counters =
        Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ir ~a ~b ~c)
      in
      Printf.printf "  flow %s: %.3f ms, %3.0f txns, A-tiles sent %s, correct=%b\n" flow
        (Axi4mlir.task_clock_ms bench counters)
        counters.Perf_counters.dma_transactions
        (if flow = "As" then "once per (m,k)" else "every iteration")
        (Gold.max_abs_diff gold (Memref_view.to_array c) < 1e-9))
    [ "Ns"; "As" ];
  Sys.remove path
