(* Per-shape breakdown of the TinyBERT MatMuls (the workload behind the
   paper's Fig. 17): for every shape class in the encoder, the CPU
   (-O3 model) time, the generated v4_16 drivers under Ns and under the
   Best heuristic, and the heuristic's chosen configuration.

     dune exec examples/tinybert_layers.exe *)

let batch = 2
let seq = 128

let () =
  let accel = Presets.matmul ~version:Accel_matmul.V4 ~size:16 () in
  let shapes = Tinybert.matmul_shapes ~batch ~seq in
  let t =
    Tabulate.create
      [
        ("shape", Tabulate.Left);
        ("MxNxK", Tabulate.Left);
        ("count", Tabulate.Right);
        ("CPU ms/inst", Tabulate.Right);
        ("Ns ms/inst", Tabulate.Right);
        ("Best ms/inst", Tabulate.Right);
        ("Best config", Tabulate.Left);
      ]
  in
  let to_ms c = c /. 650_000.0 in
  List.iter
    (fun (s : Tinybert.matmul_shape) ->
      let bench = Axi4mlir.create accel in
      (* CPU at true shapes *)
      let a, b, c =
        Axi4mlir.alloc_matmul_operands bench ~m:s.Tinybert.m ~n:s.Tinybert.n ~k:s.Tinybert.k
      in
      let cpu =
        Axi4mlir.measure bench (fun () ->
            Cpu_reference.matmul_optimized bench.Axi4mlir.soc ~a ~b ~c ~sample_rows:8 ())
      in
      (* accelerated at 16-padded shapes *)
      let m = Tinybert.pad16 s.Tinybert.m
      and n = Tinybert.pad16 s.Tinybert.n
      and k = Tinybert.pad16 s.Tinybert.k in
      let run options =
        let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
        let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
        let counters =
          Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
        in
        counters.Perf_counters.cycles -. Dma_library.init_cycles
      in
      let ns =
        run { Axi4mlir.default_codegen with flow = Some "Ns"; tiles = Some [ 16; 16; 16 ] }
      in
      let best_cycles, best_config =
        match Heuristics.best accel ~m ~n ~k with
        | Some choice ->
          ( run
              {
                Axi4mlir.default_codegen with
                flow = Some choice.Heuristics.flow;
                tiles =
                  Some [ choice.Heuristics.tm; choice.Heuristics.tn; choice.Heuristics.tk ];
              },
            Printf.sprintf "%s %d,%d,%d" choice.Heuristics.flow choice.Heuristics.tm
              choice.Heuristics.tn choice.Heuristics.tk )
        | None -> (nan, "-")
      in
      Tabulate.add_row t
        [
          s.Tinybert.mm_name;
          Printf.sprintf "%dx%dx%d" s.Tinybert.m s.Tinybert.n s.Tinybert.k;
          string_of_int s.Tinybert.count;
          Tabulate.fmt_ms (to_ms cpu.Perf_counters.cycles);
          Tabulate.fmt_ms (to_ms ns);
          Tabulate.fmt_ms (to_ms best_cycles);
          best_config;
        ])
    shapes;
  Tabulate.print
    ~title:
      (Printf.sprintf "TinyBERT encoder MatMuls (batch=%d, seq=%d) on %s" batch seq
         accel.Accel_config.accel_name)
    t;
  print_endline
    "\nPer-instance times; multiply by count for whole-model figures (Fig. 17\n\
     amortises the one-time DMA bring-up app-wide, subtracted here)."
