bin/axi4mlir_opt.mli:
