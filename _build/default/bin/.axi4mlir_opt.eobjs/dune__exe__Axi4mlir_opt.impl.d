bin/axi4mlir_opt.ml: Arg Axi4mlir Buffer Cmd Cmdliner Config_parser Dialects List Parser_ir Printer String Term
