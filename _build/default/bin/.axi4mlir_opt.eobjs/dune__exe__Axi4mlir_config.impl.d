bin/axi4mlir_config.ml: Accel_config Accel_matmul Arg Cmd Cmdliner Config_parser Host_config List Presets Printf String Term
