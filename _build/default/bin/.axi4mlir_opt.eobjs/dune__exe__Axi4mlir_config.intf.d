bin/axi4mlir_config.mli:
