bin/axi4mlir_run.mli:
