bin/axi4mlir_run.ml: Arg Axi4mlir Cmd Cmdliner Config_parser Dialects Dma_library Gold Interp List Memref_view Option Perf_counters Printf String Term
