(** Structured tracing over simulated time.

    A tracer records nestable {e spans} (begin/end pairs), {e instant}
    events and pre-timed {e complete} events, each stamped with a
    timestamp read from a caller-supplied clock — in this project the
    clock is the simulated SoC's cycle counter, so traces measure the
    same quantity as the paper's [perf] task-clock, not host wall time.

    Span boundaries additionally capture a counter {e snapshot} (a
    [(name, value) list], in practice {!Perf_counters.fields}); the end
    event of every span carries the per-counter delta accumulated while
    the span was open, prefixed with ["d_"] (e.g. [d_cycles],
    [d_dma_words_sent]). {!Perf_report} turns these deltas into an
    exclusive per-phase breakdown; {!Chrome_trace} serialises events for
    Perfetto / chrome://tracing.

    A tracer is created {e disabled}: every record operation is a cheap
    no-op (one match on an immediate) and, critically, nothing here ever
    touches the performance counters, so enabling or disabling tracing
    cannot change simulated results. Instrumented modules hold the
    tracer object permanently and the sink is flipped on with
    {!enable}. *)

type arg = Str of string | Num of float | Int of int | Bool of bool
(** Event argument values (Chrome trace [args] payload). *)

type kind =
  | Begin  (** span opening ([ph:"B"]) *)
  | End  (** span closing ([ph:"E"]), carries the counter deltas *)
  | Instant  (** point event ([ph:"i"]) *)
  | Complete of float  (** pre-timed interval with a duration ([ph:"X"]) *)
  | Counter of float  (** counter-track sample ([ph:"C"]); Perfetto plots
          the value as a filled step curve *)
  | Flow_start of int  (** flow-arrow origin ([ph:"s"]), keyed by id *)
  | Flow_finish of int  (** flow-arrow target ([ph:"f"]), keyed by id *)

type event = {
  ev_name : string;
  ev_cat : string;  (** category = phase bucket for {!Perf_report} *)
  ev_kind : kind;
  ev_ts : float;
      (** simulated host cycles, except on {!compile_track} where the
          unit is microseconds of host process time *)
  ev_track : int;
  ev_args : (string * arg) list;
}

(** {1 Tracks}

    Events land on named tracks (Chrome [tid]s). Host-side spans — the
    only ones {!Perf_report} accounts — live on {!host_track}. *)

val host_track : int
val accel_track : int
val dma_track : int

val compile_track : int
(** Compile-time (pass pipeline) events; timestamps are host-process
    microseconds, rendered under a separate Chrome pid. *)

val tuner_track : int
(** Autotuner progress events (one complete slice per pipeline
    evaluation, instants for cache hits and strategy moves); like
    {!compile_track} the timestamps are host-process microseconds —
    tuning spans many independent simulations, so no single simulated
    clock covers it. *)

val critpath_track : int
(** Critical-path highlight slices emitted by {!Doctor.annotate_trace}:
    one Complete event per path segment, in simulated cycles. Below 20
    on purpose — {!Perf_report.overlap_ratio} counts only the
    per-engine async tracks. *)

val serve_request_track : int
(** Per-request lifetime spans (arrival to finish) emitted by the
    serving simulator's trace export ({!Serve_report} in
    [axi4mlir.serve]); simulated cycles. *)

val serve_telemetry_track : int
(** Per-window counter samples emitted by the serving telemetry export
    ([Serve_telemetry.annotate_trace] in [axi4mlir.serve]): queue
    depth, in-flight count, arrival/completion rates and per-window
    p99 as Perfetto counter tracks, in simulated cycles. *)

val dma_channel_track : int -> int
(** Per-DMA-channel track for asynchronous transfer windows. *)

val accel_device_track : int -> int
(** Per-accelerator track for asynchronously-triggered busy windows;
    sits next to its channel's track in the viewer. *)

val serve_accel_track : int -> int
(** Per-accelerator-instance track for the serving simulator's
    dispatch slices (one Complete event per batched kernel). Serve
    traces are standalone files, so these ids never meet the async
    engine tracks. *)

type t

val create : unit -> t
(** A fresh, disabled tracer. *)

val noop : t
(** A shared always-disabled tracer, for defaulted optional arguments.
    Never {!enable} it. *)

val enable :
  ?clock:(unit -> float) -> ?snapshot:(unit -> (string * float) list) -> t -> unit
(** Install a recording sink. [clock] supplies timestamps (default:
    constant 0) and [snapshot] the counter fields captured at span
    boundaries (default: none). Discards any previously recorded
    events. *)

val disable : t -> unit
(** Back to the no-op sink; recorded events are dropped. *)

val enabled : t -> bool

val clear : t -> unit
(** Drop recorded events and any open spans, keeping the sink. Called
    between measured runs (the clock restarts from 0 when the counters
    reset, so stale events would break timestamp monotonicity). *)

(** {1 Recording} *)

val begin_span : t -> ?cat:string -> ?args:(string * arg) list -> string -> unit
val end_span : ?args:(string * arg) list -> t -> unit
(** Close the innermost open span. Extra [args] are appended to the end
    event alongside the computed [d_*] counter deltas. Ignored when no
    span is open. *)

val with_span : t -> ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span; the span is closed even
    if [f] raises. When disabled this is exactly [f ()]. *)

val instant :
  t -> ?cat:string -> ?track:int -> ?args:(string * arg) list -> string -> unit

val complete :
  t ->
  ?cat:string ->
  ?track:int ->
  ?args:(string * arg) list ->
  ts:float ->
  dur:float ->
  string ->
  unit
(** Record an interval whose extent is known up front (e.g. an
    accelerator busy window computed by the DMA engine, or a pass
    timing). Does not consult the clock. *)

val counter :
  t ->
  ?cat:string ->
  ?track:int ->
  ?args:(string * arg) list ->
  ts:float ->
  string ->
  float ->
  unit
(** Record one sample of a named counter track at an explicit
    timestamp ({!Chrome_trace} serialises it as a ["C"] phase event,
    which Perfetto renders as a stepped area chart). Samples of the
    same name on the same track form one curve; like {!complete}, does
    not consult the clock. *)

val flow_start :
  t -> ?cat:string -> ?track:int -> ?ts:float -> id:int -> string -> unit
(** Open a flow arrow (Perfetto binds it to the slice enclosing [ts] on
    [track]). [ts] defaults to the clock; the async DMA paths pass the
    scheduled start explicitly. *)

val flow_finish :
  t -> ?cat:string -> ?track:int -> ?ts:float -> id:int -> string -> unit
(** Terminate the flow arrow with the same [id] (the [accel.wait]
    side). *)

val fresh_flow_id : t -> int
(** Allocate a flow-arrow id that is unique for the lifetime of the
    recording sink — {e not} reset by {!clear} — so arrows from
    different kernels, devices or measured runs can never alias when
    their events end up in one exported trace. Returns 0 when
    disabled (flow events are dropped there anyway). *)

val events : t -> event list
(** Recorded events in recording order (timestamps are non-decreasing
    per track as long as the clock is monotonic). Empty when disabled. *)

val open_spans : t -> int
(** Number of currently open (unbalanced) spans — 0 after a well-nested
    run. *)
