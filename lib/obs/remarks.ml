type arg = Str of string | Int of int | Num of float | Bool of bool

type kind = Applied | Missed | Analysis

type t = {
  r_kind : kind;
  r_pass : string;
  r_name : string;
  r_loc : string;
  r_message : string;
  r_args : (string * arg) list;
}

let kind_to_string = function
  | Applied -> "Applied"
  | Missed -> "Missed"
  | Analysis -> "Analysis"

type collector = { mutable on : bool; mutable remarks : t list (* newest first *) }

let create () = { on = false; remarks = [] }

let default = create ()

let enable ?(col = default) () =
  col.on <- true;
  col.remarks <- []

let disable ?(col = default) () = col.on <- false

let enabled ?(col = default) () = col.on

let clear ?(col = default) () = col.remarks <- []

let emit ?(col = default) ~kind ~pass ~name ?(loc = "?") ?(args = []) message =
  if col.on then
    col.remarks <-
      { r_kind = kind; r_pass = pass; r_name = name; r_loc = loc; r_message = message;
        r_args = args }
      :: col.remarks

let all ?(col = default) () = List.rev col.remarks

let count ?(col = default) kind =
  List.length (List.filter (fun r -> r.r_kind = kind) col.remarks)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let arg_to_string = function
  | Str s -> s
  | Int n -> string_of_int n
  | Num f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let render r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "--- !%s\n" (kind_to_string r.r_kind));
  Buffer.add_string buf (Printf.sprintf "Pass:    %s\n" r.r_pass);
  Buffer.add_string buf (Printf.sprintf "Name:    %s\n" r.r_name);
  Buffer.add_string buf (Printf.sprintf "Loc:     %s\n" r.r_loc);
  Buffer.add_string buf (Printf.sprintf "Message: %s\n" r.r_message);
  if r.r_args <> [] then begin
    Buffer.add_string buf "Args:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  - %s: %s\n" k (arg_to_string v)))
      r.r_args
  end;
  Buffer.add_string buf "...\n";
  Buffer.contents buf

let render_all ?(col = default) () =
  match all ~col () with
  | [] -> "(no remarks collected)\n"
  | rs -> String.concat "" (List.map render rs)

let arg_to_json = function
  | Str s -> Json.String s
  | Int n -> Json.Int n
  | Num f -> Json.Float f
  | Bool b -> Json.Bool b

let to_json r =
  Json.Obj
    [
      ("kind", Json.String (kind_to_string r.r_kind));
      ("pass", Json.String r.r_pass);
      ("name", Json.String r.r_name);
      ("loc", Json.String r.r_loc);
      ("message", Json.String r.r_message);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) r.r_args));
    ]

let all_to_json ?(col = default) () = Json.List (List.map to_json (all ~col ()))
