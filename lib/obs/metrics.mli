(** Process-wide metrics registry: named counters, gauges and log-scale
    histograms with label sets.

    Where {!Trace} answers "what happened when" for a single run, the
    registry answers "how much, in total": every instrumented layer
    (the DMA runtime library, the DMA engines, the interpreter, the
    pass manager) bumps named series as it works, and a snapshot at any
    point yields a structured dump — text for the terminal, JSON for
    artifacts written next to a run's trace.

    Series are identified by (name, label set). Labels are free-form
    [(key, value)] string pairs; in this project they carry the
    experiment context (workload, engine version, flow, copy strategy).
    A registry also holds {e ambient} labels that are merged into every
    subsequently recorded series, so harness code can stamp a whole
    phase ("experiment=fig10") without threading labels through every
    instrumentation point.

    Like the tracer, a registry is created {e disabled} and every
    recording operation on a disabled registry is a cheap no-op (one
    load and branch). Nothing here ever touches the simulated
    performance counters, so enabling metrics cannot change simulated
    results. Instrumented modules record into {!default}. *)

type labels = (string * string) list
(** Label pairs. Order does not matter: series identity uses the
    key-sorted form, and duplicate keys keep the first occurrence. *)

type t
(** A registry. *)

val create : unit -> t
(** A fresh, disabled registry with no series and no ambient labels. *)

val default : t
(** The shared registry all built-in instrumentation records into. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val reset : t -> unit
(** Drop every series (keeping the enabled flag and ambient labels).
    Called between measured runs / experiments. *)

val set_ambient : t -> labels -> unit
(** Replace the ambient labels merged into every subsequent record
    operation. Explicit per-record labels win on key collision. *)

val ambient : t -> labels

(** {1 Recording}

    All recording operations are no-ops on a disabled registry. A name
    must be used consistently as one kind (counter / gauge / histogram);
    recording it as a different kind raises [Invalid_argument] — that is
    an instrumentation bug, not a data condition. *)

val incr : ?reg:t -> ?labels:labels -> ?by:float -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0 first. *)

val set_gauge : ?reg:t -> ?labels:labels -> string -> float -> unit
(** Set a gauge to a value (last write wins). *)

val observe : ?reg:t -> ?labels:labels -> string -> float -> unit
(** Record one observation into a log-scale histogram: bucket [i] holds
    observations in [(2^(i-1), 2^i]], bucket 0 everything [<= 1], and
    observations beyond the last bucket land in a dedicated overflow
    bucket. Count, sum, min and max are tracked exactly. *)

(** {1 Snapshots} *)

type histogram_view = {
  h_count : int;  (** total observations, including overflow *)
  h_sum : float;
  h_min : float option;  (** [None] iff the histogram is empty *)
  h_max : float option;
  h_buckets : (float * int) list;
      (** non-empty buckets as [(upper_bound, count)], ascending *)
  h_overflow : int;  (** observations above the last bucket bound *)
}

type point =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of histogram_view

type sample = { s_name : string; s_labels : labels; s_point : point }

val snapshot : ?reg:t -> unit -> sample list
(** All series in first-recorded order; label sets of the same name
    stay grouped by first appearance. Stable across calls. *)

val counter_value : ?reg:t -> ?labels:labels -> string -> float
(** A single counter/gauge series' value; 0 when absent. *)

val total : ?reg:t -> string -> float
(** Sum of a name's counter/gauge values across every label set
    (histograms contribute their [h_sum]); 0 when absent. The parity
    checks against {!Perf_counters} use this. *)

val quantile : histogram_view -> float -> float option
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) from the
    bucket counts: the answer is the bound of the bucket holding the
    rank-[ceil(q * count)] observation, clamped into [[h_min, h_max]] —
    so a single-observation histogram reports that exact value for
    every [q], and quantiles landing in the overflow bucket report
    [h_max]. [None] iff the histogram is empty. *)

(** {1 Export} *)

val to_json : ?reg:t -> unit -> Json.t
(** The snapshot as a self-describing JSON object
    ([{"schema": "axi4mlir-metrics-v1", "series": [...]}]). *)

val render : ?reg:t -> unit -> string
(** Prometheus-flavoured text: one [name{k="v"} value] line per
    counter/gauge; histograms expand to [_count], [_sum], cumulative
    [_bucket{le="<bound>"}] lines (each populated power-of-two bound
    plus the [le="+Inf"] catch-all, which always equals [_count]) and
    p50/p90/p99 estimate lines. Empty registry renders a one-line
    placeholder. *)
