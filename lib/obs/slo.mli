(** Service-level objectives over windowed telemetry: declarative
    specs, error-budget accounting, and multi-window burn-rate alerts
    with hysteresis.

    {2 Specs}

    A spec is parsed from the compact form the CLI takes
    ([axi4mlir_serve --slo SPEC]):

    - [pP<=LIMIT[@W]] — a latency objective: at most [(100-P)%] of the
      window's requests may exceed [LIMIT] cycles (e.g. [p99<=250000]).
      [P] must be one of 50/90/95/99.
    - [availability>=TARGET[@W]] — an admission objective: at least
      [TARGET] of the window's offered requests must be admitted
      (not rejected). [TARGET] is a percentage with [%] ([99.9%]) or a
      fraction ([0.999]).

    [@W] sets the burn-rate long window to [W] telemetry windows
    (default 4).

    {2 Burn rate and alerting}

    Each objective implies a per-event error budget [b] (latency pP:
    [b = (100-P)/100]; availability [>=T]: [b = 1-T]). For a telemetry
    window holding [total] events of which [bad] violate the objective,
    the {e burn rate} is [(bad/total)/b] — 1.0 means the budget is
    being consumed exactly at the sustainable rate, 2.0 twice as fast.

    The alert follows the SRE multi-window pattern: it {e fires} in the
    first window where both the short burn (that window alone) and the
    long burn (event-weighted over the trailing [W] windows) reach the
    [fire] threshold, and {e resolves} only when the long burn falls
    below the [resolve] threshold — the gap between the two thresholds
    is the hysteresis band that stops a hovering burn rate from
    flapping. Transitions are returned in order and can be logged as
    {!Remarks} and [slo.*] metrics. *)

type objective =
  | Latency of { pct : int; limit : float }
      (** [pP<=limit]: a window sample is bad when its latency
          strictly exceeds [limit] cycles. *)
  | Availability of { target : float }
      (** [availability>=target] with [target] a fraction in [(0, 1)];
          a window event is bad when the request was rejected. *)

type spec = {
  so_raw : string;  (** the spec as parsed, canonically rendered *)
  so_objective : objective;
  so_windows : int;  (** the burn-rate long window, in telemetry windows *)
}

val parse : string -> (spec, string) result
(** Parse the compact form. The error names the offending part and
    shows the accepted grammar. *)

val to_string : spec -> string
(** Canonical rendering (also [so_raw]): [p99<=250000@4],
    [availability>=99.9%@4]. *)

val budget : spec -> float
(** The per-event error budget [b] (see above); always in [(0, 1)]. *)

(** {1 Evaluation} *)

type window_data = { wd_total : int; wd_bad : int }
(** One telemetry window's event counts against the objective. *)

type state = Budget_ok | Firing

val state_to_string : state -> string

type window_eval = {
  we_index : int;
  we_total : int;
  we_bad : int;
  we_burn : float;  (** short burn: this window alone; 0 when empty *)
  we_long_burn : float;
      (** event-weighted burn over the trailing [so_windows] windows *)
  we_state : state;  (** after hysteresis *)
}

type transition = {
  tr_window : int;  (** window index where the state flipped *)
  tr_state : state;  (** the new state *)
  tr_long_burn : float;
}

type eval = {
  sv_spec : spec;
  sv_budget : float;
  sv_fire : float;
  sv_resolve : float;
  sv_windows : window_eval list;  (** ascending window order *)
  sv_transitions : transition list;  (** in order; Firing/resolved pairs *)
  sv_total : int;  (** events over the whole run *)
  sv_bad : int;
  sv_budget_spent : float;
      (** [bad / (budget * total)]: 1.0 = the run's whole error budget;
          0 when the run saw no events *)
  sv_fired : int;  (** number of Firing transitions *)
  sv_final : state;
}

val evaluate : ?fire:float -> ?resolve:float -> spec -> window_data array -> eval
(** Evaluate the objective over per-window counts (index = telemetry
    window index). Defaults: [fire = 2.0], [resolve = 1.0]; [resolve]
    is clamped to at most [fire]. *)

val met : eval -> bool
(** No alert ever fired and the run-level budget was not exhausted
    ([sv_fired = 0 && sv_budget_spent <= 1.0]). *)

(** {1 Emission} *)

val render : eval -> string
(** Human-readable summary: the objective, budget spent, worst burn,
    and one line per transition. *)

val emit_remarks : ?loc:string -> eval -> unit
(** One [Analysis] remark per transition (pass ["slo-monitor"], names
    ["burn-rate-firing"]/["burn-rate-resolved"]) plus a final
    ["budget"] remark carrying budget spent — no-ops when the default
    collector is disabled. *)

val emit_metrics : ?labels:Metrics.labels -> eval -> unit
(** [slo.alerts_fired] (counter), [slo.budget_spent] and
    [slo.worst_burn] (gauges), labelled with [slo=<spec>] plus
    [labels]. No-ops when the default registry is disabled. *)

val to_json : eval -> Json.t
(** The evaluation as a self-contained JSON object (spec, thresholds,
    per-window burns, transitions, totals) — embedded by the
    [axi4mlir-telemetry-v1] artifact. *)
