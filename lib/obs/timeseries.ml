(* Fixed-width windowed time series: observations land in the window
   floor(t / width); scalar series aggregate per window, distribution
   series keep the samples so exact per-window percentiles survive. *)

type agg = Sum | Mean | Max | Last

let agg_to_string = function
  | Sum -> "sum"
  | Mean -> "mean"
  | Max -> "max"
  | Last -> "last"

(* One populated scalar window. [last]/[last_t] implement Last under
   out-of-order recording: the observation with the largest timestamp
   wins, ties to the most recently recorded. *)
type scell = {
  mutable c_count : int;
  mutable c_sum : float;
  mutable c_max : float;
  mutable c_last : float;
  mutable c_last_t : float;
}

type shape =
  | Scalar of agg * (int, scell) Hashtbl.t
  | Dist of (int, float list ref) Hashtbl.t
      (* per-window samples, newest first *)

type series = { sr_name : string; sr_shape : shape }

type t = {
  ts_window : float;
  tbl : (string, series) Hashtbl.t;
  mutable order : string list;  (* newest first *)
  mutable max_index : int;  (* highest populated window; -1 when empty *)
}

let create ~window =
  if not (window > 0.0) then
    Error (Printf.sprintf "window width must be positive (got %g cycles)" window)
  else
    Ok { ts_window = window; tbl = Hashtbl.create 16; order = []; max_index = -1 }

let window_width t = t.ts_window

let index_of t at =
  let i = int_of_float (Float.floor (at /. t.ts_window)) in
  if i < 0 then 0 else i

let shape_name = function Scalar _ -> "scalar" | Dist _ -> "distribution"

let find_or_create t name make expect_desc matches =
  match Hashtbl.find_opt t.tbl name with
  | Some s ->
    if not (matches s.sr_shape) then
      invalid_arg
        (Printf.sprintf "Timeseries: %s already recorded as a %s series, not %s" name
           (shape_name s.sr_shape) expect_desc);
    s
  | None ->
    let s = { sr_name = name; sr_shape = make () } in
    Hashtbl.replace t.tbl name s;
    t.order <- name :: t.order;
    s

let record t ?(agg = Sum) ~series ~t:at v =
  let s =
    find_or_create t series
      (fun () -> Scalar (agg, Hashtbl.create 16))
      (Printf.sprintf "a %s scalar" (agg_to_string agg))
      (function Scalar (a, _) -> a = agg | Dist _ -> false)
  in
  match s.sr_shape with
  | Dist _ -> assert false
  | Scalar (_, cells) ->
    let i = index_of t at in
    if i > t.max_index then t.max_index <- i;
    (match Hashtbl.find_opt cells i with
    | Some c ->
      c.c_count <- c.c_count + 1;
      c.c_sum <- c.c_sum +. v;
      if v > c.c_max then c.c_max <- v;
      if at >= c.c_last_t then begin
        c.c_last <- v;
        c.c_last_t <- at
      end
    | None ->
      Hashtbl.replace cells i
        { c_count = 1; c_sum = v; c_max = v; c_last = v; c_last_t = at })

let observe t ~series ~t:at v =
  let s =
    find_or_create t series
      (fun () -> Dist (Hashtbl.create 16))
      "a distribution"
      (function Dist _ -> true | Scalar _ -> false)
  in
  match s.sr_shape with
  | Scalar _ -> assert false
  | Dist cells ->
    let i = index_of t at in
    if i > t.max_index then t.max_index <- i;
    (match Hashtbl.find_opt cells i with
    | Some samples -> samples := v :: !samples
    | None -> Hashtbl.replace cells i (ref [ v ]))

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

let n_windows t = t.max_index + 1

let window_start t i = float_of_int i *. t.ts_window

let series_names t = List.rev t.order

let scalar_cells fn t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some { sr_shape = Scalar (agg, cells); _ } -> Some (agg, cells)
  | Some { sr_shape = Dist _; _ } ->
    invalid_arg (Printf.sprintf "Timeseries.%s: %s is a distribution series" fn name)

let dist_cells fn t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> None
  | Some { sr_shape = Dist cells; _ } -> Some cells
  | Some { sr_shape = Scalar _; _ } ->
    invalid_arg (Printf.sprintf "Timeseries.%s: %s is a scalar series" fn name)

let cell_value agg c =
  match agg with
  | Sum -> c.c_sum
  | Mean -> c.c_sum /. float_of_int c.c_count
  | Max -> c.c_max
  | Last -> c.c_last

let values t name =
  let out = Array.make (n_windows t) None in
  (match scalar_cells "values" t name with
  | None -> ()
  | Some (agg, cells) ->
    Hashtbl.iter (fun i c -> if i < Array.length out then out.(i) <- Some (cell_value agg c)) cells);
  out

let counts t name =
  let out = Array.make (n_windows t) 0 in
  (match Hashtbl.find_opt t.tbl name with
  | None -> ()
  | Some { sr_shape = Scalar (_, cells); _ } ->
    Hashtbl.iter (fun i c -> if i < Array.length out then out.(i) <- c.c_count) cells
  | Some { sr_shape = Dist cells; _ } ->
    Hashtbl.iter
      (fun i samples -> if i < Array.length out then out.(i) <- List.length !samples)
      cells);
  out

let total t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> 0.0
  | Some { sr_shape = Scalar (_, cells); _ } ->
    Hashtbl.fold (fun _ c acc -> acc +. c.c_sum) cells 0.0
  | Some { sr_shape = Dist cells; _ } ->
    Hashtbl.fold (fun _ samples acc -> acc +. float_of_int (List.length !samples)) cells 0.0

(* Nearest rank, as in Serve_report: the ceil(p/100 * n)-th smallest. *)
let percentile p xs =
  match List.sort compare xs with
  | [] -> None
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (float_of_int p /. 100.0 *. float_of_int n)) in
    Some (List.nth sorted (max 0 (min (n - 1) (rank - 1))))

let dist_percentile t name ~p =
  let out = Array.make (n_windows t) None in
  (match dist_cells "dist_percentile" t name with
  | None -> ()
  | Some cells ->
    Hashtbl.iter
      (fun i samples -> if i < Array.length out then out.(i) <- percentile p !samples)
      cells);
  out

let dist_rolling_percentile t name ~p ~windows =
  let n = n_windows t in
  let out = Array.make n None in
  (match dist_cells "dist_rolling_percentile" t name with
  | None -> ()
  | Some cells ->
    let per_window =
      Array.init n (fun i ->
          match Hashtbl.find_opt cells i with Some s -> !s | None -> [])
    in
    let span = max 1 windows in
    for i = 0 to n - 1 do
      let pooled = ref [] in
      for j = max 0 (i - span + 1) to i do
        pooled := per_window.(j) @ !pooled
      done;
      out.(i) <- percentile p !pooled
    done);
  out

let dist_counts_above t name ~limit =
  let out = Array.make (n_windows t) (0, 0) in
  (match dist_cells "dist_counts_above" t name with
  | None -> ()
  | Some cells ->
    Hashtbl.iter
      (fun i samples ->
        if i < Array.length out then
          out.(i) <-
            ( List.length !samples,
              List.length (List.filter (fun v -> v > limit) !samples) ))
      cells);
  out

(* ------------------------------------------------------------------ *)
(* Rendering and export                                                *)
(* ------------------------------------------------------------------ *)

let ramp = ".:-=+*#%@"

let sparkline ?width curve =
  let curve =
    match width with
    | Some w when w > 0 && Array.length curve > w ->
      (* resample by taking each output cell's maximum, so a one-window
         burst cannot vanish into a wide neighbour *)
      let n = Array.length curve in
      Array.init w (fun cell ->
          let lo = cell * n / w and hi = ((cell + 1) * n / w) - 1 in
          let acc = ref None in
          for i = lo to max lo hi do
            match (curve.(i), !acc) with
            | None, _ -> ()
            | Some v, None -> acc := Some v
            | Some v, Some m -> if v > m then acc := Some v
          done;
          !acc)
    | _ -> curve
  in
  let vmax =
    Array.fold_left
      (fun m v -> match v with Some v when v > m -> v | _ -> m)
      0.0 curve
  in
  String.init (Array.length curve) (fun i ->
      match curve.(i) with
      | None -> ' '
      | Some v ->
        if vmax <= 0.0 then ramp.[0]
        else
          let frac = Float.max 0.0 (Float.min 1.0 (v /. vmax)) in
          ramp.[min (String.length ramp - 1) (int_of_float (frac *. float_of_int (String.length ramp)))])

let opt_json = function None -> Json.Null | Some v -> Json.Float v

let series_json t name =
  match (Hashtbl.find_opt t.tbl name : series option) with
  | None -> Json.Null
  | Some { sr_shape = Scalar (agg, _); _ } ->
    Json.Obj
      [
        ("name", Json.String name);
        ("kind", Json.String "scalar");
        ("agg", Json.String (agg_to_string agg));
        ("values", Json.List (Array.to_list (Array.map opt_json (values t name))));
      ]
  | Some { sr_shape = Dist _; _ } ->
    Json.Obj
      [
        ("name", Json.String name);
        ("kind", Json.String "dist");
        ( "counts",
          Json.List (Array.to_list (Array.map (fun c -> Json.Int c) (counts t name))) );
        ( "p50",
          Json.List (Array.to_list (Array.map opt_json (dist_percentile t name ~p:50)))
        );
        ( "p99",
          Json.List (Array.to_list (Array.map opt_json (dist_percentile t name ~p:99)))
        );
      ]

let to_json t =
  Json.Obj
    [
      ("window_cycles", Json.Float t.ts_window);
      ("windows", Json.Int (n_windows t));
      ("series", Json.List (List.map (series_json t) (series_names t)));
    ]
