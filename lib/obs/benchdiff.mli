(** Benchmark baselines and the perf-regression gate.

    The bench harness emits one self-describing [BENCH_<exp>.json]
    artifact per experiment; committed copies under [bench/baselines/]
    are the blessed reference. This module owns the artifact schema and
    the comparison: per-metric {e relative} tolerances with a direction
    (lower-better, higher-better, or drift-in-either-direction), so
    `dune runtest` can fail on a hot-path regression the way it already
    fails on a correctness one.

    The simulator is deterministic, so fresh numbers normally match the
    baseline bit-for-bit; tolerances exist to absorb deliberate cost-
    model adjustments small enough not to change the paper's
    conclusions. Anything larger fails the gate until the baselines are
    re-blessed ([axi4mlir_benchdiff --bless]). *)

type point = {
  pt_id : string;  (** stable per-experiment id, e.g. ["fig10/003"] *)
  pt_kind : string;  (** measurement kind, e.g. ["cpu_matmul"] *)
  pt_dims : int list;  (** workload dims when known, [[]] otherwise *)
  pt_config : string;  (** accelerator-config hash (hex) *)
  pt_metrics : (string * float) list;  (** canonical metric set *)
}

type doc = {
  doc_experiment : string;
  doc_quick : bool;  (** measured with trimmed [--quick] sweeps *)
  doc_points : point list;
}

val metrics_of_fields : (string * float) list -> (string * float) list
(** Canonical per-point metrics derived from {!Perf_counters.fields}:
    the raw counters that matter for the paper's figures (cycles,
    instructions, branches, l1/l2 misses, dma_transactions, flops,
    accel_busy_cycles) plus derived [cache_references]
    (l1 + l2 accesses), [dma_words] (sent + received) and
    [gflops_per_cycle] (flops/cycles; 0 for a zero-cycle run). *)

(** {1 Config hashing}

    COMPATIBILITY GUARANTEE: {!stable_hash} (and therefore
    {!config_hash}) is part of two persisted formats — the
    [axi4mlir-bench-v1] artifact's per-point [config] field and the
    autotuner's [axi4mlir-tune-v1] result cache, whose keys embed the
    hash. The algorithm (64-bit FNV-1a over the bytes, 16 lowercase hex
    digits) must NOT change across releases: changing it silently
    invalidates every committed baseline and every user's warm tuning
    cache. A golden test pins the hash of a fixed {!Accel_config} (via
    its canonical JSON); if you believe you must change the algorithm,
    bump the schema strings of both formats in the same commit. *)

val stable_hash : string -> string
(** 64-bit FNV-1a of the bytes, as 16 lowercase hex digits. Stable
    across OCaml versions and platforms (unlike [Hashtbl.hash]). *)

val config_hash : Json.t -> string
(** {!stable_hash} of the compact (non-indented) {!Json.to_string}
    rendering — the canonical hash of an accelerator configuration's
    [Accel_config.to_json] form. *)

(** {1 Artifact I/O} *)

val to_json : doc -> Json.t
val of_json_result : Json.t -> (doc, string) result

val filename : string -> string
(** [filename exp] is ["BENCH_<exp>.json"]. *)

val write_file : string -> doc -> unit
val read_file : string -> (doc, string) result
(** [Error] on unreadable files, JSON syntax errors and schema
    mismatches alike — the gate treats all three as failures, never
    exceptions. *)

(** {1 Comparison} *)

type direction =
  | Lower_better  (** regression = fresh above baseline (cycles, misses) *)
  | Higher_better  (** regression = fresh below baseline (GFLOPs/cycle) *)
  | Exact  (** regression = drift either way (DMA words, flops) *)

val tolerances : (string * (float * direction)) list
(** Default relative tolerance and direction per canonical metric.
    Metrics absent from this table are compared with [Exact] at 0. *)

type finding = {
  f_point : string;
  f_metric : string;
  f_baseline : float;
  f_fresh : float;
  f_rel : float;  (** signed relative change, [(fresh - base) / |base|] *)
}

type verdict = {
  v_experiment : string;
  v_compared : int;  (** metric comparisons performed *)
  v_regressions : finding list;
  v_improvements : finding list;  (** beyond-tolerance changes in the good direction *)
  v_missing : string list;  (** baseline point ids absent from the fresh run *)
  v_extra : string list;  (** fresh point ids absent from the baseline *)
}

val compare_docs :
  ?tolerances:(string * (float * direction)) list -> baseline:doc -> fresh:doc -> unit -> verdict
(** Point ids are matched exactly; a missing or extra point is a gate
    failure (re-bless after intentionally changing an experiment). *)

val ok : verdict -> bool
(** No regressions, no missing points, no extra points. Improvements
    alone do not fail the gate (but do suggest re-blessing). *)

val render_verdict : verdict -> string
(** Human-readable summary, one line per finding. *)
