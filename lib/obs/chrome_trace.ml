let sim_pid = 1
let compiler_pid = 2

let arg_to_json = function
  | Trace.Str s -> Json.String s
  | Trace.Num f -> Json.Float f
  | Trace.Int i -> Json.Int i
  | Trace.Bool b -> Json.Bool b

let event_to_json ~scale (e : Trace.event) =
  let on_compile_track =
    e.Trace.ev_track = Trace.compile_track || e.Trace.ev_track = Trace.tuner_track
  in
  let pid = if on_compile_track then compiler_pid else sim_pid in
  let ts = if on_compile_track then e.ev_ts else e.ev_ts /. scale in
  let ph, extra =
    match e.ev_kind with
    | Trace.Begin -> ("B", [])
    | Trace.End -> ("E", [])
    | Trace.Instant -> ("i", [ ("s", Json.String "t") ])
    | Trace.Complete dur ->
      ("X", [ ("dur", Json.Float (if on_compile_track then dur else dur /. scale)) ])
    | Trace.Counter _ -> ("C", [])
    | Trace.Flow_start id ->
      ("s", [ ("id", Json.Int id); ("bp", Json.String "e") ])
    | Trace.Flow_finish id ->
      ("f", [ ("id", Json.Int id); ("bp", Json.String "e") ])
  in
  Json.Obj
    ([
       ("name", Json.String e.ev_name);
       ("cat", Json.String e.ev_cat);
       ("ph", Json.String ph);
       ("ts", Json.Float ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int e.ev_track);
     ]
    @ extra
    @
    (* a counter sample's value is its args payload — Perfetto plots
       every numeric key of a "C" event as one series of the track *)
    let args =
      match e.ev_kind with
      | Trace.Counter v -> e.ev_args @ [ ("value", Trace.Num v) ]
      | _ -> e.ev_args
    in
    match args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args)) ])

let metadata name pid tid value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let preamble =
  [
    metadata "process_name" sim_pid 0 "simulated SoC";
    metadata "process_name" compiler_pid 0 "axi4mlir compiler";
    metadata "thread_name" sim_pid Trace.host_track "host CPU";
    metadata "thread_name" sim_pid Trace.accel_track "accelerator";
    metadata "thread_name" sim_pid Trace.dma_track "DMA engine";
    metadata "thread_name" sim_pid Trace.critpath_track "critical path";
    metadata "thread_name" compiler_pid Trace.compile_track "pass pipeline";
    metadata "thread_name" compiler_pid Trace.tuner_track "autotuner";
  ]

let to_json ?(cpu_freq_mhz = 1.0) ?(track_names = []) events =
  let scale = if cpu_freq_mhz > 0.0 then cpu_freq_mhz else 1.0 in
  let extra_tracks =
    List.map (fun (tid, name) -> metadata "thread_name" sim_pid tid name) track_names
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (preamble @ extra_tracks @ List.map (event_to_json ~scale) events) );
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ?cpu_freq_mhz ?track_names events =
  Json.to_string ~indent:1 (to_json ?cpu_freq_mhz ?track_names events)

let write_file ?cpu_freq_mhz ?track_names path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?cpu_freq_mhz ?track_names events);
      output_char oc '\n')
