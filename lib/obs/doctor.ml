type diagnosis = { dg_report : Critpath.report; dg_top : Critpath.segment list }

let top_segments k segments =
  List.filter (fun sg -> Critpath.segment_cycles sg > 0.0) segments
  |> List.stable_sort (fun a b ->
         match compare (Critpath.segment_cycles b) (Critpath.segment_cycles a) with
         | 0 -> compare a.Critpath.sg_start b.Critpath.sg_start
         | c -> c)
  |> List.filteri (fun i _ -> i < k)

let diagnose ?(top_k = 5) input =
  match Critpath.analyze input with
  | Error _ as e -> e
  | Ok report -> Ok { dg_report = report; dg_top = top_segments top_k report.rp_segments }

let binding_resource dg = Critpath.resource_name dg.dg_report.Critpath.rp_binding

let speedup_ceiling dg name =
  List.find_opt (fun w -> w.Critpath.wf_name = name) dg.dg_report.Critpath.rp_whatifs
  |> Fun.flip Option.bind (fun w -> w.Critpath.wf_speedup)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pct ~of_total v = if of_total > 0.0 then 100.0 *. v /. of_total else 0.0

let render dg =
  let rp = dg.dg_report in
  let open Critpath in
  let t_end = rp.rp_makespan in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "Perf doctor: critical path through %.1f cycles" t_end;
  let binding_cycles =
    try List.assoc rp.rp_binding rp.rp_resources with Not_found -> 0.0
  in
  line "binding resource: %s (%.1f%% of the critical path — host %.1f%%, dma %.1f%%, accel %.1f%%)"
    (resource_name rp.rp_binding)
    (pct ~of_total:t_end binding_cycles)
    (pct ~of_total:t_end (try List.assoc Res_host rp.rp_resources with Not_found -> 0.0))
    (pct ~of_total:t_end (try List.assoc Res_dma rp.rp_resources with Not_found -> 0.0))
    (pct ~of_total:t_end (try List.assoc Res_accel rp.rp_resources with Not_found -> 0.0));
  line "";
  let table =
    Tabulate.create
      [ ("category", Tabulate.Left); ("cycles", Tabulate.Right); ("%", Tabulate.Right) ]
  in
  List.iter
    (fun (cat, cycles) ->
      Tabulate.add_row table
        [
          category_name cat;
          Printf.sprintf "%.1f" cycles;
          Printf.sprintf "%5.1f" (pct ~of_total:t_end cycles);
        ])
    rp.rp_attribution;
  Buffer.add_string buf "Critical-path attribution:\n";
  Buffer.add_string buf (Tabulate.render table);
  line "";
  if dg.dg_top <> [] then begin
    let ops =
      Tabulate.create
        [
          ("op", Tabulate.Left);
          ("agent", Tabulate.Left);
          ("category", Tabulate.Left);
          ("cycles", Tabulate.Right);
          ("window", Tabulate.Left);
        ]
    in
    List.iter
      (fun sg ->
        Tabulate.add_row ops
          [
            sg.sg_label;
            sg.sg_agent;
            category_name sg.sg_category;
            Printf.sprintf "%.1f" (segment_cycles sg);
            Printf.sprintf "[%.1f, %.1f]" sg.sg_start sg.sg_finish;
          ])
      dg.dg_top;
    line "Top %d critical operations:" (List.length dg.dg_top);
    Buffer.add_string buf (Tabulate.render ops);
    line ""
  end;
  line "What-if ceilings (Amdahl-style estimates):";
  List.iter
    (fun w ->
      match w.wf_speedup with
      | Some s ->
        line "  %-21s bound %.1f cycles -> at most %.2fx" w.wf_name w.wf_bound_cycles s
      | None -> line "  %-21s bound degenerate (nothing would remain)" w.wf_name)
    rp.rp_whatifs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON artifact                                                       *)
(* ------------------------------------------------------------------ *)

let segment_json (sg : Critpath.segment) =
  let open Critpath in
  Json.Obj
    [
      ("start", Json.Float sg.sg_start);
      ("finish", Json.Float sg.sg_finish);
      ("cycles", Json.Float (segment_cycles sg));
      ("category", Json.String (category_name sg.sg_category));
      ("label", Json.String sg.sg_label);
      ("agent", Json.String sg.sg_agent);
      ("bound", Json.String (bound_name sg.sg_bound));
    ]

let to_json dg =
  let rp = dg.dg_report in
  let open Critpath in
  Json.Obj
    [
      ("schema", Json.String "axi4mlir-critpath-v1");
      ("makespan_cycles", Json.Float rp.rp_makespan);
      ("host_serial_cycles", Json.Float rp.rp_host_end);
      ("binding_resource", Json.String (resource_name rp.rp_binding));
      ( "attribution",
        Json.Obj
          (List.map
             (fun (cat, c) -> (category_name cat, Json.Float c))
             rp.rp_attribution) );
      ( "resources",
        Json.Obj
          (List.map (fun (res, c) -> (resource_name res, Json.Float c)) rp.rp_resources)
      );
      ( "whatifs",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("name", Json.String w.wf_name);
                   ("bound_cycles", Json.Float w.wf_bound_cycles);
                   ( "speedup_ceiling",
                     match w.wf_speedup with
                     | Some s -> Json.Float s
                     | None -> Json.Null );
                 ])
             rp.rp_whatifs) );
      ("top", Json.List (List.map segment_json dg.dg_top));
      ("critical_path", Json.List (List.map segment_json rp.rp_segments));
    ]

let write_json dg ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:1 (to_json dg));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Remarks, metrics, trace highlight                                   *)
(* ------------------------------------------------------------------ *)

let emit_remarks ?(loc = "run") dg =
  let rp = dg.dg_report in
  let open Critpath in
  Remarks.emit ~kind:Remarks.Analysis ~pass:"perf-doctor" ~name:"binding-resource" ~loc
    ~args:
      (List.map
         (fun (res, c) -> (resource_name res, Remarks.Num c))
         rp.rp_resources
      @ [ ("makespan_cycles", Remarks.Num rp.rp_makespan) ])
    (Printf.sprintf "critical path is %s-bound" (resource_name rp.rp_binding));
  List.iter
    (fun w ->
      Remarks.emit ~kind:Remarks.Analysis ~pass:"perf-doctor" ~name:"speedup-ceiling"
        ~loc
        ~args:
          [
            ("whatif", Remarks.Str w.wf_name);
            ("bound_cycles", Remarks.Num w.wf_bound_cycles);
            ( "speedup",
              match w.wf_speedup with
              | Some s -> Remarks.Num s
              | None -> Remarks.Str "unbounded" );
          ]
        (Printf.sprintf "%s caps the speedup of this run" w.wf_name))
    rp.rp_whatifs

let emit_metrics dg =
  let rp = dg.dg_report in
  let open Critpath in
  List.iter
    (fun (cat, c) ->
      Metrics.incr "doctor.critpath_cycles" ~labels:[ ("category", category_name cat) ]
        ~by:c)
    rp.rp_attribution;
  Metrics.incr "doctor.binding_resource"
    ~labels:[ ("resource", resource_name rp.rp_binding) ];
  List.iter
    (fun w ->
      match w.wf_speedup with
      | Some s ->
        Metrics.set_gauge "doctor.whatif_speedup" ~labels:[ ("whatif", w.wf_name) ] s
      | None -> ())
    rp.rp_whatifs

let annotate_trace tracer dg =
  let open Critpath in
  if Trace.enabled tracer then begin
    let segments = dg.dg_report.rp_segments in
    List.iter
      (fun sg ->
        Trace.complete tracer
          ~cat:("critpath_" ^ category_name sg.sg_category)
          ~track:Trace.critpath_track
          ~args:
            [
              ("agent", Trace.Str sg.sg_agent);
              ("bound", Trace.Str (bound_name sg.sg_bound));
            ]
          ~ts:sg.sg_start
          ~dur:(segment_cycles sg)
          sg.sg_label)
      segments;
    (* One arrow per consecutive pair: the handoff points are the
       edges the walk followed. *)
    let rec arrows = function
      | a :: (b :: _ as rest) ->
        let id = Trace.fresh_flow_id tracer in
        Trace.flow_start tracer ~cat:"critpath" ~track:Trace.critpath_track
          ~ts:(a.sg_start +. (Critpath.segment_cycles a /. 2.0))
          ~id "critpath_edge";
        Trace.flow_finish tracer ~cat:"critpath" ~track:Trace.critpath_track
          ~ts:(b.sg_start +. (Critpath.segment_cycles b /. 2.0))
          ~id "critpath_edge";
        arrows rest
      | _ -> ()
    in
    arrows segments
  end
