type arg = Str of string | Num of float | Int of int | Bool of bool

type kind =
  | Begin
  | End
  | Instant
  | Complete of float
  | Counter of float
  | Flow_start of int
  | Flow_finish of int

type event = {
  ev_name : string;
  ev_cat : string;
  ev_kind : kind;
  ev_ts : float;
  ev_track : int;
  ev_args : (string * arg) list;
}

let host_track = 0
let accel_track = 1
let dma_track = 2
let compile_track = 10
let tuner_track = 11
let critpath_track = 12
let serve_request_track = 13
let serve_telemetry_track = 14

(* Asynchronous activity gets one track per DMA channel and one per
   accelerator device, interleaved so a channel sits next to its
   device in the viewer. *)
let dma_channel_track id = 20 + (2 * id)
let accel_device_track id = 21 + (2 * id)

(* Serving-simulation accelerator instances live in their own id range;
   serve traces are written standalone, so the numeric distance from
   the per-engine async tracks is cosmetic, not load-bearing. *)
let serve_accel_track id = 40 + id

(* An open span: what begin_span captured, waiting for its end. *)
type open_span = {
  os_name : string;
  os_cat : string;
  os_snapshot : (string * float) list;
}

type recording = {
  clock : unit -> float;
  snapshot : unit -> (string * float) list;
  mutable events : event list;  (* newest first *)
  mutable stack : open_span list;
  mutable next_flow : int;  (* flow-arrow id allocator; never reused *)
}

type sink = Disabled | Recording of recording

type t = { mutable sink : sink }

let create () = { sink = Disabled }

let noop = create ()

let enable ?(clock = fun () -> 0.0) ?(snapshot = fun () -> []) t =
  t.sink <- Recording { clock; snapshot; events = []; stack = []; next_flow = 1 }

let disable t = t.sink <- Disabled

let enabled t = match t.sink with Disabled -> false | Recording _ -> true

let clear t =
  match t.sink with
  | Disabled -> ()
  | Recording r ->
    r.events <- [];
    r.stack <- []

let push r ev = r.events <- ev :: r.events

let begin_span t ?(cat = "host") ?(args = []) name =
  match t.sink with
  | Disabled -> ()
  | Recording r ->
    push r
      {
        ev_name = name;
        ev_cat = cat;
        ev_kind = Begin;
        ev_ts = r.clock ();
        ev_track = host_track;
        ev_args = args;
      };
    r.stack <- { os_name = name; os_cat = cat; os_snapshot = r.snapshot () } :: r.stack

let end_span ?(args = []) t =
  match t.sink with
  | Disabled -> ()
  | Recording r -> (
    match r.stack with
    | [] -> ()
    | open_span :: rest ->
      r.stack <- rest;
      let ts = r.clock () in
      let now = r.snapshot () in
      let deltas =
        List.map2
          (fun (key, v1) (_, v0) -> ("d_" ^ key, Num (v1 -. v0)))
          now open_span.os_snapshot
      in
      push r
        {
          ev_name = open_span.os_name;
          ev_cat = open_span.os_cat;
          ev_kind = End;
          ev_ts = ts;
          ev_track = host_track;
          ev_args = args @ deltas;
        })

let with_span t ?cat ?args name f =
  match t.sink with
  | Disabled -> f ()
  | Recording _ ->
    begin_span t ?cat ?args name;
    Fun.protect ~finally:(fun () -> end_span t) f

let instant t ?(cat = "host") ?(track = host_track) ?(args = []) name =
  match t.sink with
  | Disabled -> ()
  | Recording r ->
    push r
      {
        ev_name = name;
        ev_cat = cat;
        ev_kind = Instant;
        ev_ts = r.clock ();
        ev_track = track;
        ev_args = args;
      }

let complete t ?(cat = "host") ?(track = host_track) ?(args = []) ~ts ~dur name =
  match t.sink with
  | Disabled -> ()
  | Recording r ->
    push r
      {
        ev_name = name;
        ev_cat = cat;
        ev_kind = Complete dur;
        ev_ts = ts;
        ev_track = track;
        ev_args = args;
      }

let counter t ?(cat = "counter") ?(track = host_track) ?(args = []) ~ts name v =
  match t.sink with
  | Disabled -> ()
  | Recording r ->
    push r
      {
        ev_name = name;
        ev_cat = cat;
        ev_kind = Counter v;
        ev_ts = ts;
        ev_track = track;
        ev_args = args;
      }

let flow t ~kind ?(cat = "flow") ?(track = host_track) ?ts name =
  match t.sink with
  | Disabled -> ()
  | Recording r ->
    let ts = match ts with Some ts -> ts | None -> r.clock () in
    push r { ev_name = name; ev_cat = cat; ev_kind = kind; ev_ts = ts; ev_track = track; ev_args = [] }

let flow_start t ?cat ?track ?ts ~id name = flow t ~kind:(Flow_start id) ?cat ?track ?ts name
let flow_finish t ?cat ?track ?ts ~id name = flow t ~kind:(Flow_finish id) ?cat ?track ?ts name

(* Not reset by [clear]: ids stay unique across every run recorded by
   one sink, so arrows from different kernels or devices can never
   alias in the exported trace. *)
let fresh_flow_id t =
  match t.sink with
  | Disabled -> 0
  | Recording r ->
    let id = r.next_flow in
    r.next_flow <- id + 1;
    id

let events t =
  match t.sink with Disabled -> [] | Recording r -> List.rev r.events

let open_spans t =
  match t.sink with Disabled -> 0 | Recording r -> List.length r.stack
