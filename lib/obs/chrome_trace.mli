(** Chrome [trace_event] JSON export.

    Serialises {!Trace.event}s into the JSON-array-of-objects format
    that Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and
    chrome://tracing load directly: one [X]/[B]/[E]/[i] record per
    event, grouped under two processes — pid 1 is the simulated SoC
    (threads: host, accelerator, dma) and pid 2 the compiler (pass
    pipeline).

    Chrome timestamps are microseconds. Simulated-SoC events are
    recorded in CPU cycles, so pass [cpu_freq_mhz] to convert (cycles
    per microsecond = MHz); without it, raw cycle values are written
    as-if-microseconds, which preserves every relative proportion.
    Events on {!Trace.compile_track} are already in microseconds and
    are never scaled. *)

val to_json :
  ?cpu_freq_mhz:float -> ?track_names:(int * string) list -> Trace.event list -> Json.t
(** The full document: [{"traceEvents": [...], "displayTimeUnit": "ms"}]
    plus process/thread-name metadata records. [track_names] adds
    thread-name metadata for extra tracks (e.g.
    {!Soc.engine_track_names} for the per-DMA-channel and
    per-accelerator async tracks). *)

val to_string :
  ?cpu_freq_mhz:float -> ?track_names:(int * string) list -> Trace.event list -> string

val write_file :
  ?cpu_freq_mhz:float ->
  ?track_names:(int * string) list ->
  string ->
  Trace.event list ->
  unit
(** Write {!to_string} to a path, creating or truncating the file. *)
