(* Declarative SLOs over windowed telemetry: spec parsing, error-budget
   accounting, and multi-window burn-rate alerting with hysteresis. *)

type objective =
  | Latency of { pct : int; limit : float }
  | Availability of { target : float }

type spec = { so_raw : string; so_objective : objective; so_windows : int }

let grammar = "pP<=LIMIT[@W] (P in 50/90/95/99) or availability>=TARGET[@W]"

let valid_pcts = [ 50; 90; 95; 99 ]

let fmt_target target =
  (* canonical percentage rendering: 0.999 -> "99.9%" *)
  Printf.sprintf "%g%%" (target *. 100.0)

let objective_to_string = function
  | Latency { pct; limit } -> Printf.sprintf "p%d<=%g" pct limit
  | Availability { target } -> Printf.sprintf "availability>=%s" (fmt_target target)

let to_string s = Printf.sprintf "%s@%d" (objective_to_string s.so_objective) s.so_windows

let budget s =
  match s.so_objective with
  | Latency { pct; _ } -> float_of_int (100 - pct) /. 100.0
  | Availability { target } -> 1.0 -. target

let default_windows = 4

(* split "body@W" into (body, W) *)
let split_windows text =
  match String.index_opt text '@' with
  | None -> Ok (text, default_windows)
  | Some i ->
    let body = String.sub text 0 i in
    let suffix = String.sub text (i + 1) (String.length text - i - 1) in
    (match int_of_string_opt suffix with
    | Some w when w >= 1 -> Ok (body, w)
    | Some w -> Error (Printf.sprintf "burn-rate window count must be >= 1 (got %d)" w)
    | None -> Error (Printf.sprintf "malformed burn-rate window count %S" suffix))

let parse_availability body =
  (* body is everything after "availability" *)
  let prefix = ">=" in
  if
    String.length body < String.length prefix
    || String.sub body 0 (String.length prefix) <> prefix
  then Error "availability objectives use >= (e.g. availability>=99.9%)"
  else
    let value = String.sub body 2 (String.length body - 2) in
    let parsed =
      if String.length value > 0 && value.[String.length value - 1] = '%' then
        Option.map
          (fun v -> v /. 100.0)
          (float_of_string_opt (String.sub value 0 (String.length value - 1)))
      else float_of_string_opt value
    in
    match parsed with
    | None -> Error (Printf.sprintf "malformed availability target %S" value)
    | Some target when target <= 0.0 || target >= 1.0 ->
      Error
        (Printf.sprintf
           "availability target must be strictly between 0 and 100%% (got %s)"
           (fmt_target target))
    | Some target -> Ok (Availability { target })

let parse_latency body =
  match String.index_opt body '<' with
  | None | Some 0 ->
    Error (Printf.sprintf "malformed latency objective %S (want %s)" body grammar)
  | Some i ->
    if i + 1 >= String.length body || body.[i + 1] <> '=' then
      Error "latency objectives use <= (e.g. p99<=250000)"
    else
      let pct_text = String.sub body 1 (i - 1) in
      let limit_text = String.sub body (i + 2) (String.length body - i - 2) in
      (match int_of_string_opt pct_text with
      | None -> Error (Printf.sprintf "malformed latency percentile %S" pct_text)
      | Some pct when not (List.mem pct valid_pcts) ->
        Error
          (Printf.sprintf "unsupported latency percentile p%d (supported: %s)" pct
             (String.concat ", " (List.map (Printf.sprintf "p%d") valid_pcts)))
      | Some pct -> (
        match float_of_string_opt limit_text with
        | Some limit when limit > 0.0 -> Ok (Latency { pct; limit })
        | Some limit ->
          Error (Printf.sprintf "latency limit must be positive (got %g cycles)" limit)
        | None -> Error (Printf.sprintf "malformed latency limit %S" limit_text)))

let parse text =
  let text = String.trim text in
  if text = "" then Error ("empty SLO spec (want " ^ grammar ^ ")")
  else
    match split_windows text with
    | Error _ as e -> e
    | Ok (body, windows) ->
      let result =
        let avail = "availability" in
        if
          String.length body >= String.length avail
          && String.sub body 0 (String.length avail) = avail
        then
          parse_availability
            (String.sub body (String.length avail) (String.length body - String.length avail))
        else if String.length body > 0 && body.[0] = 'p' then parse_latency body
        else Error (Printf.sprintf "unknown SLO objective %S (want %s)" body grammar)
      in
      (match result with
      | Error _ as e -> e
      | Ok objective ->
        let spec = { so_raw = ""; so_objective = objective; so_windows = windows } in
        Ok { spec with so_raw = to_string spec })

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type window_data = { wd_total : int; wd_bad : int }

type state = Budget_ok | Firing

let state_to_string = function Budget_ok -> "ok" | Firing -> "FIRING"

type window_eval = {
  we_index : int;
  we_total : int;
  we_bad : int;
  we_burn : float;
  we_long_burn : float;
  we_state : state;
}

type transition = { tr_window : int; tr_state : state; tr_long_burn : float }

type eval = {
  sv_spec : spec;
  sv_budget : float;
  sv_fire : float;
  sv_resolve : float;
  sv_windows : window_eval list;
  sv_transitions : transition list;
  sv_total : int;
  sv_bad : int;
  sv_budget_spent : float;
  sv_fired : int;
  sv_final : state;
}

let burn_of ~budget ~total ~bad =
  if total = 0 then 0.0 else float_of_int bad /. float_of_int total /. budget

let evaluate ?(fire = 2.0) ?(resolve = 1.0) spec (data : window_data array) =
  let b = budget spec in
  let resolve = Float.min resolve fire in
  let n = Array.length data in
  let state = ref Budget_ok in
  let transitions = ref [] in
  let windows = ref [] in
  for i = 0 to n - 1 do
    let w = data.(i) in
    let short = burn_of ~budget:b ~total:w.wd_total ~bad:w.wd_bad in
    (* event-weighted long burn over the trailing so_windows windows:
       ratio of sums, not mean of ratios, so a busy bad window cannot
       be averaged away by idle neighbours *)
    let lt = ref 0 and lb = ref 0 in
    for j = max 0 (i - spec.so_windows + 1) to i do
      lt := !lt + data.(j).wd_total;
      lb := !lb + data.(j).wd_bad
    done;
    let long = burn_of ~budget:b ~total:!lt ~bad:!lb in
    let next =
      match !state with
      | Budget_ok -> if short >= fire && long >= fire then Firing else Budget_ok
      | Firing -> if long < resolve then Budget_ok else Firing
    in
    if next <> !state then
      transitions := { tr_window = i; tr_state = next; tr_long_burn = long } :: !transitions;
    state := next;
    windows :=
      {
        we_index = i;
        we_total = w.wd_total;
        we_bad = w.wd_bad;
        we_burn = short;
        we_long_burn = long;
        we_state = next;
      }
      :: !windows
  done;
  let total = Array.fold_left (fun acc w -> acc + w.wd_total) 0 data in
  let bad = Array.fold_left (fun acc w -> acc + w.wd_bad) 0 data in
  let transitions = List.rev !transitions in
  {
    sv_spec = spec;
    sv_budget = b;
    sv_fire = fire;
    sv_resolve = resolve;
    sv_windows = List.rev !windows;
    sv_transitions = transitions;
    sv_total = total;
    sv_bad = bad;
    sv_budget_spent = (if total = 0 then 0.0 else float_of_int bad /. (b *. float_of_int total));
    sv_fired = List.length (List.filter (fun t -> t.tr_state = Firing) transitions);
    sv_final = !state;
  }

let met ev = ev.sv_fired = 0 && ev.sv_budget_spent <= 1.0

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let worst_burn ev =
  List.fold_left (fun acc w -> Float.max acc w.we_long_burn) 0.0 ev.sv_windows

let render ev =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "slo %s: %s — budget spent %.0f%% (%d/%d bad), worst burn %.1fx\n"
       ev.sv_spec.so_raw
       (state_to_string ev.sv_final)
       (100.0 *. ev.sv_budget_spent)
       ev.sv_bad ev.sv_total (worst_burn ev));
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (match tr.tr_state with
        | Firing ->
          Printf.sprintf "  window %d: burn-rate alert FIRING (long burn %.1fx >= %.1fx)\n"
            tr.tr_window tr.tr_long_burn ev.sv_fire
        | Budget_ok ->
          Printf.sprintf "  window %d: burn-rate alert resolved (long burn %.1fx < %.1fx)\n"
            tr.tr_window tr.tr_long_burn ev.sv_resolve))
    ev.sv_transitions;
  Buffer.contents buf

let emit_remarks ?(loc = "serve") ev =
  let pass = "slo-monitor" in
  List.iter
    (fun tr ->
      let name, msg =
        match tr.tr_state with
        | Firing ->
          ( "burn-rate-firing",
            Printf.sprintf "%s: burn-rate alert firing in window %d (long burn %.2fx)"
              ev.sv_spec.so_raw tr.tr_window tr.tr_long_burn )
        | Budget_ok ->
          ( "burn-rate-resolved",
            Printf.sprintf "%s: burn-rate alert resolved in window %d (long burn %.2fx)"
              ev.sv_spec.so_raw tr.tr_window tr.tr_long_burn )
      in
      Remarks.emit ~kind:Remarks.Analysis ~pass ~name ~loc
        ~args:
          [
            ("slo", Remarks.Str ev.sv_spec.so_raw);
            ("window", Remarks.Int tr.tr_window);
            ("long_burn", Remarks.Num tr.tr_long_burn);
          ]
        msg)
    ev.sv_transitions;
  Remarks.emit ~kind:Remarks.Analysis ~pass ~name:"budget" ~loc
    ~args:
      [
        ("slo", Remarks.Str ev.sv_spec.so_raw);
        ("budget_spent", Remarks.Num ev.sv_budget_spent);
        ("bad", Remarks.Int ev.sv_bad);
        ("total", Remarks.Int ev.sv_total);
        ("alerts_fired", Remarks.Int ev.sv_fired);
      ]
    (Printf.sprintf "%s: %.0f%% of the error budget spent (%d alert(s) fired)"
       ev.sv_spec.so_raw
       (100.0 *. ev.sv_budget_spent)
       ev.sv_fired)

let emit_metrics ?(labels = []) ev =
  let labels = ("slo", ev.sv_spec.so_raw) :: labels in
  Metrics.incr ~labels ~by:(float_of_int ev.sv_fired) "slo.alerts_fired";
  Metrics.set_gauge ~labels "slo.budget_spent" ev.sv_budget_spent;
  Metrics.set_gauge ~labels "slo.worst_burn" (worst_burn ev)

let to_json ev =
  Json.Obj
    [
      ("spec", Json.String ev.sv_spec.so_raw);
      ("budget", Json.Float ev.sv_budget);
      ("fire", Json.Float ev.sv_fire);
      ("resolve", Json.Float ev.sv_resolve);
      ( "windows",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("index", Json.Int w.we_index);
                   ("total", Json.Int w.we_total);
                   ("bad", Json.Int w.we_bad);
                   ("burn", Json.Float w.we_burn);
                   ("long_burn", Json.Float w.we_long_burn);
                   ("state", Json.String (state_to_string w.we_state));
                 ])
             ev.sv_windows) );
      ( "transitions",
        Json.List
          (List.map
             (fun tr ->
               Json.Obj
                 [
                   ("window", Json.Int tr.tr_window);
                   ("state", Json.String (state_to_string tr.tr_state));
                   ("long_burn", Json.Float tr.tr_long_burn);
                 ])
             ev.sv_transitions) );
      ("total", Json.Int ev.sv_total);
      ("bad", Json.Int ev.sv_bad);
      ("budget_spent", Json.Float ev.sv_budget_spent);
      ("alerts_fired", Json.Int ev.sv_fired);
      ("final_state", Json.String (state_to_string ev.sv_final));
    ]
