(** [perf report]-style phase breakdowns derived from a trace.

    Host-track spans are rebuilt into a tree; each span's counter
    deltas (the [d_*] args attached by {!Trace.end_span}) are split into
    {e exclusive} (self) amounts — a parent is charged only for what its
    own body accumulated outside every child span. Self amounts are then
    rolled up by span {e category}, which is how the instrumentation
    names phases ([copy_to_accel], [dma_send], [accel_wait], ...). Time
    not covered by any span lands in a synthetic [host] phase, so the
    per-phase cycle totals always sum (up to float rounding) to the
    aggregate counter value passed as [total]. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_t0 : float;
  sp_t1 : float;
  sp_deltas : (string * float) list;  (** inclusive counter deltas *)
  sp_children : span list;
}

val spans_of_events : Trace.event list -> span list
(** Top-level host-track spans, in order. Unclosed spans are dropped. *)

type phase = {
  ph_name : string;  (** span category, or ["host"] for uncovered time *)
  ph_totals : (string * float) list;  (** exclusive counter totals *)
  ph_count : int;  (** number of spans contributing *)
}

val phase_breakdown : total:(string * float) list -> Trace.event list -> phase list
(** [total] is the aggregate counter state over the whole run
    ({!Perf_counters.fields} of the final counters, assuming they were
    reset when recording started); it defines the field universe and
    the [host] residual. Phases are sorted by descending cycles. *)

val phase_field : phase -> string -> float
(** A field total, 0 if absent. *)

(** {1 Derived metrics}

    All derived metrics are ratios and all return [None] — never NaN or
    infinity — when their denominator is zero (a phase or run that
    accumulated no cycles, a run with no DMA traffic, a zero frequency).
    {!render} prints such metrics as ["n/a"]. *)

val task_clock_ms : cpu_freq_mhz:float -> total:(string * float) list -> float option
(** Host cycles as milliseconds; [None] when [cpu_freq_mhz <= 0]. *)

val flops_per_cycle : total:(string * float) list -> float option
(** Achieved host FLOPs per cycle; [None] for a zero-cycle run. *)

val arithmetic_intensity : total:(string * float) list -> float option
(** FLOPs per byte crossing the AXI stream; [None] when no DMA words
    moved. *)

val dma_bandwidth_pct :
  bus_words_per_cpu_cycle:float -> total:(string * float) list -> phase list -> float option
(** Achieved share (percent) of the AXI-S peak during the [dma_send] /
    [dma_recv] phases; [None] when those phases have zero cycles, no
    words moved, or the bus rate is zero. *)

val occupancy_pct :
  cpu_freq_mhz:float -> accel_freq_mhz:float -> total:(string * float) list -> float option
(** Share (percent) of the run the accelerator was busy; [None] for a
    zero-cycle run or a zero frequency. *)

val overlap_ratio :
  total:(string * float) list -> Trace.event list -> float option
(** Async overlap: summed durations of Complete events on the
    per-engine (async) tracks over total cycles — how much transfer /
    accelerator time ran concurrently with the host. [None] when the
    run issued no asynchronous operations (every blocking run). Can
    exceed 1 when several agents overlap each other. *)

(** {1 Rendering} *)

val render :
  ?cpu_freq_mhz:float ->
  ?bus_words_per_cpu_cycle:float ->
  ?accel_freq_mhz:float ->
  total:(string * float) list ->
  Trace.event list ->
  string
(** The textual report: a phase table (cycles, %, instructions, DMA
    words, cache misses per phase) followed by derived whole-run
    metrics — task-clock, achieved FLOPs/cycle, arithmetic intensity
    (FLOPs per DMA byte), DMA bandwidth utilisation during transfer
    phases (requires [bus_words_per_cpu_cycle]) and accelerator
    occupancy (requires [accel_freq_mhz] together with
    [cpu_freq_mhz]). *)
