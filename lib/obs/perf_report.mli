(** [perf report]-style phase breakdowns derived from a trace.

    Host-track spans are rebuilt into a tree; each span's counter
    deltas (the [d_*] args attached by {!Trace.end_span}) are split into
    {e exclusive} (self) amounts — a parent is charged only for what its
    own body accumulated outside every child span. Self amounts are then
    rolled up by span {e category}, which is how the instrumentation
    names phases ([copy_to_accel], [dma_send], [accel_wait], ...). Time
    not covered by any span lands in a synthetic [host] phase, so the
    per-phase cycle totals always sum (up to float rounding) to the
    aggregate counter value passed as [total]. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_t0 : float;
  sp_t1 : float;
  sp_deltas : (string * float) list;  (** inclusive counter deltas *)
  sp_children : span list;
}

val spans_of_events : Trace.event list -> span list
(** Top-level host-track spans, in order. Unclosed spans are dropped. *)

type phase = {
  ph_name : string;  (** span category, or ["host"] for uncovered time *)
  ph_totals : (string * float) list;  (** exclusive counter totals *)
  ph_count : int;  (** number of spans contributing *)
}

val phase_breakdown : total:(string * float) list -> Trace.event list -> phase list
(** [total] is the aggregate counter state over the whole run
    ({!Perf_counters.fields} of the final counters, assuming they were
    reset when recording started); it defines the field universe and
    the [host] residual. Phases are sorted by descending cycles. *)

val phase_field : phase -> string -> float
(** A field total, 0 if absent. *)

(** {1 Rendering} *)

val render :
  ?cpu_freq_mhz:float ->
  ?bus_words_per_cpu_cycle:float ->
  ?accel_freq_mhz:float ->
  total:(string * float) list ->
  Trace.event list ->
  string
(** The textual report: a phase table (cycles, %, instructions, DMA
    words, cache misses per phase) followed by derived whole-run
    metrics — task-clock, achieved FLOPs/cycle, arithmetic intensity
    (FLOPs per DMA byte), DMA bandwidth utilisation during transfer
    phases (requires [bus_words_per_cpu_cycle]) and accelerator
    occupancy (requires [accel_freq_mhz] together with
    [cpu_freq_mhz]). *)
