type span = {
  sp_name : string;
  sp_cat : string;
  sp_t0 : float;
  sp_t1 : float;
  sp_deltas : (string * float) list;
  sp_children : span list;
}

let deltas_of_args args =
  List.filter_map
    (fun (k, v) ->
      match v with
      | Trace.Num f when String.length k > 2 && String.sub k 0 2 = "d_" ->
        Some (String.sub k 2 (String.length k - 2), f)
      | _ -> None)
    args

(* Rebuild the span forest from the B/E event stream. The host is
   single-threaded so spans are strictly nested and one stack
   suffices: each stack cell accumulates the children seen so far
   (newest first). *)
let spans_of_events events =
  let stack : (string * float * span list ref) list ref = ref [] in
  let roots : span list ref = ref [] in
  let emit sp =
    match !stack with
    | [] -> roots := sp :: !roots
    | (_, _, children) :: _ -> children := sp :: !children
  in
  List.iter
    (fun (e : Trace.event) ->
      if e.ev_track = Trace.host_track then
        match e.ev_kind with
        | Trace.Begin -> stack := (e.ev_name, e.ev_ts, ref []) :: !stack
        | Trace.End -> (
          match !stack with
          | [] -> ()
          | (name, t0, children) :: rest ->
            stack := rest;
            emit
              {
                sp_name = name;
                sp_cat = e.ev_cat;
                sp_t0 = t0;
                sp_t1 = e.ev_ts;
                sp_deltas = deltas_of_args e.ev_args;
                sp_children = List.rev !children;
              })
        | Trace.Instant | Trace.Complete _ | Trace.Counter _ | Trace.Flow_start _
        | Trace.Flow_finish _ ->
          ())
    events;
  List.rev !roots

type phase = {
  ph_name : string;
  ph_totals : (string * float) list;
  ph_count : int;
}

let field kvs key = match List.assoc_opt key kvs with Some v -> v | None -> 0.0

let phase_field ph key = field ph.ph_totals key

let sub_fields a b = List.map (fun (k, va) -> (k, va -. field b k)) a

let add_into tbl cat fields0 deltas =
  let totals, count =
    match Hashtbl.find_opt tbl cat with
    | Some (t, c) -> (t, c)
    | None -> (List.map (fun (k, _) -> (k, 0.0)) fields0, 0)
  in
  Hashtbl.replace tbl cat
    (List.map (fun (k, v) -> (k, v +. field deltas k)) totals, count + 1)

let phase_breakdown ~total events =
  let spans = spans_of_events events in
  let tbl : (string, (string * float) list * int) Hashtbl.t = Hashtbl.create 8 in
  (* Exclusive accounting: charge each span its deltas minus the sum of
     its children's, then recurse. *)
  let rec charge sp =
    let children_sum =
      List.fold_left
        (fun acc child -> List.map (fun (k, v) -> (k, v +. field child.sp_deltas k)) acc)
        (List.map (fun (k, _) -> (k, 0.0)) total)
        sp.sp_children
    in
    let self = sub_fields sp.sp_deltas children_sum in
    add_into tbl sp.sp_cat total self;
    List.iter charge sp.sp_children
  in
  List.iter charge spans;
  (* Residual: aggregate totals minus everything covered by top-level
     spans. This is host time outside any instrumented region. *)
  let covered =
    List.fold_left
      (fun acc sp -> List.map (fun (k, v) -> (k, v +. field sp.sp_deltas k)) acc)
      (List.map (fun (k, _) -> (k, 0.0)) total)
      spans
  in
  add_into tbl "host" total (sub_fields total covered);
  let phases =
    Hashtbl.fold
      (fun name (totals, count) acc ->
        { ph_name = name; ph_totals = totals; ph_count = count } :: acc)
      tbl []
  in
  List.sort
    (fun a b -> compare (phase_field b "cycles") (phase_field a "cycles"))
    phases

(* ------------------------------------------------------------------ *)
(* Derived metrics                                                     *)
(* ------------------------------------------------------------------ *)

(* Every derived metric is a ratio; a zero denominator (a phase or run
   with zero cycles, a run with no DMA traffic) must yield None — never
   nan/inf — so renderers print "n/a" and JSON consumers get null. *)

let ratio num den = if den > 0.0 then Some (num /. den) else None

let task_clock_ms ~cpu_freq_mhz ~total =
  ratio (field total "cycles") (cpu_freq_mhz *. 1000.0)

let flops_per_cycle ~total = ratio (field total "flops") (field total "cycles")

let transfer_words total = field total "dma_words_sent" +. field total "dma_words_received"

let arithmetic_intensity ~total =
  (* flops per byte crossing the AXI stream (4-byte words) *)
  ratio (field total "flops") (4.0 *. transfer_words total)

let dma_bandwidth_pct ~bus_words_per_cpu_cycle ~total phases =
  let transfer_cycles =
    List.fold_left
      (fun acc ph ->
        if ph.ph_name = "dma_send" || ph.ph_name = "dma_recv" then
          acc +. phase_field ph "cycles"
        else acc)
      0.0 phases
  in
  match ratio (transfer_words total) transfer_cycles with
  | None -> None
  | Some words_per_cycle ->
    Option.map (fun r -> 100.0 *. r) (ratio words_per_cycle bus_words_per_cpu_cycle)

let overlap_ratio ~total events =
  (* Fraction of the run during which an asynchronous transfer or an
     asynchronously-triggered compute was in flight: the sum of
     Complete-event durations on the per-engine tracks over total
     cycles. 0/None in blocking runs (no async events). *)
  let async_cycles =
    List.fold_left
      (fun acc (e : Trace.event) ->
        match e.ev_kind with
        | Trace.Complete dur when e.ev_track >= 20 -> acc +. dur
        | _ -> acc)
      0.0 events
  in
  if async_cycles <= 0.0 then None else ratio async_cycles (field total "cycles")

let occupancy_pct ~cpu_freq_mhz ~accel_freq_mhz ~total =
  match ratio cpu_freq_mhz accel_freq_mhz with
  | None -> None
  | Some cpu_per_accel ->
    Option.map
      (fun r -> 100.0 *. r)
      (ratio (field total "accel_busy_cycles" *. cpu_per_accel) (field total "cycles"))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let fmt_count v =
  if Float.abs v >= 1e6 then Printf.sprintf "%.3fM" (v /. 1e6)
  else if Float.abs v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let render ?cpu_freq_mhz ?bus_words_per_cpu_cycle ?accel_freq_mhz ~total events =
  let phases = phase_breakdown ~total events in
  let total_cycles = field total "cycles" in
  let table =
    Tabulate.create
      [
        ("phase", Tabulate.Left);
        ("spans", Tabulate.Right);
        ("cycles", Tabulate.Right);
        ("%", Tabulate.Right);
        ("instrs", Tabulate.Right);
        ("dma words", Tabulate.Right);
        ("L2 misses", Tabulate.Right);
      ]
  in
  List.iter
    (fun ph ->
      let cycles = phase_field ph "cycles" in
      let words = phase_field ph "dma_words_sent" +. phase_field ph "dma_words_received" in
      Tabulate.add_row table
        [
          ph.ph_name;
          string_of_int ph.ph_count;
          fmt_count cycles;
          (if total_cycles > 0.0 then Printf.sprintf "%5.1f" (100.0 *. cycles /. total_cycles)
           else "  0.0");
          fmt_count (phase_field ph "instructions");
          fmt_count words;
          fmt_count (phase_field ph "l2_misses");
        ])
    phases;
  Tabulate.add_rule table;
  Tabulate.add_row table
    [
      "total";
      "";
      fmt_count total_cycles;
      "100.0";
      fmt_count (field total "instructions");
      fmt_count (field total "dma_words_sent" +. field total "dma_words_received");
      fmt_count (field total "l2_misses");
    ];
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Phase breakdown (simulated host cycles, exclusive):\n";
  Buffer.add_string buf (Tabulate.render table);
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "";
  let metric label render_value = function
    | Some v -> line "%s: %s" label (render_value v)
    | None -> line "%s: n/a" label
  in
  (match cpu_freq_mhz with
  | Some mhz ->
    metric "task clock            "
      (Printf.sprintf "%.3f ms")
      (task_clock_ms ~cpu_freq_mhz:mhz ~total)
  | None -> ());
  let flops = field total "flops" in
  metric "host FLOPs/cycle      "
    (fun r -> Printf.sprintf "%.3f (%.0f flops)" r flops)
    (flops_per_cycle ~total);
  metric "arithmetic intensity  "
    (fun r -> Printf.sprintf "%.3f flops/byte over the AXI stream" r)
    (arithmetic_intensity ~total);
  (match bus_words_per_cpu_cycle with
  | Some bus ->
    metric "DMA bandwidth         "
      (fun r -> Printf.sprintf "%.1f%% of the AXI-S peak during transfer phases" r)
      (dma_bandwidth_pct ~bus_words_per_cpu_cycle:bus ~total phases)
  | None -> ());
  (match (accel_freq_mhz, cpu_freq_mhz) with
  | Some accel_mhz, Some cpu_mhz ->
    metric "accelerator occupancy "
      (fun r -> Printf.sprintf "%.1f%% of the run" r)
      (occupancy_pct ~cpu_freq_mhz:cpu_mhz ~accel_freq_mhz:accel_mhz ~total)
  | _ -> ());
  metric "transfer overlap      "
    (fun r -> Printf.sprintf "%.2fx of the run spent with async DMA/compute in flight" r)
    (overlap_ratio ~total events);
  Buffer.contents buf
