(** Optimization remarks: structured feedback from transform passes,
    modelled on LLVM's [-Rpass] / [--pass-remarks] machinery.

    The Haris et al. 2024 follow-up ("Data Transfer Optimizations for
    Host-CPU and Accelerators in AXI4MLIR") motivates exactly this: the
    compiler should {e tell the user} which transfers it hoisted, which
    configurations it could not apply and why, so tuning an accelerator
    config is not guess-and-rerun. Passes emit three remark kinds:

    - {!Applied}: an optimisation fired ("hoisted A-tile send out of
      the k-loop, saved N words per iteration");
    - {!Missed}: an optimisation was applicable in principle but could
      not fire, with the blocking reason ("tile 33 does not divide
      extent 128; op left on the CPU path");
    - {!Analysis}: neutral facts a tuner wants ("operand footprint
      1.5 MiB exceeds the 512 KiB LLC; CPU-tiling the i-loop").

    Remarks accumulate in a collector ({!default} for all built-in
    passes), disabled by default with the same zero-cost discipline as
    {!Trace} and {!Metrics}. They render as LLVM-style YAML-ish
    documents ([axi4mlir_opt --remarks]) and serialise to JSON for the
    metrics artifact written next to a run's trace. *)

type arg = Str of string | Int of int | Num of float | Bool of bool

type kind = Applied | Missed | Analysis

type t = {
  r_kind : kind;
  r_pass : string;  (** emitting pass, e.g. ["match-and-annotate"] *)
  r_name : string;  (** stable remark identifier, e.g. ["hoist-transfer"] *)
  r_loc : string;  (** op location: the op's name, e.g. ["linalg.matmul"] *)
  r_message : string;
  r_args : (string * arg) list;  (** key-value payload, in emission order *)
}

val kind_to_string : kind -> string

type collector

val create : unit -> collector
(** A fresh, disabled collector. *)

val default : collector
(** The shared collector all built-in passes emit into. *)

val enable : ?col:collector -> unit -> unit
(** Start collecting. Discards previously collected remarks. *)

val disable : ?col:collector -> unit -> unit
val enabled : ?col:collector -> unit -> bool

val clear : ?col:collector -> unit -> unit
(** Drop collected remarks, keeping the enabled flag. *)

val emit :
  ?col:collector ->
  kind:kind ->
  pass:string ->
  name:string ->
  ?loc:string ->
  ?args:(string * arg) list ->
  string ->
  unit
(** Record one remark (no-op when disabled). [loc] defaults to ["?"]. *)

val all : ?col:collector -> unit -> t list
(** Collected remarks in emission order. Empty when disabled. *)

val count : ?col:collector -> kind -> int

(** {1 Rendering} *)

val render : t -> string
(** One LLVM-style YAML-ish document:
    {v
--- !Applied
Pass:    match-and-annotate
Name:    hoist-transfer
Loc:     linalg.matmul
Message: hoisted sA out of the innermost loop
Args:
  - opcode: sA
  - words_per_call: 16
...
    v} *)

val render_all : ?col:collector -> unit -> string
(** Every collected remark, concatenated; a placeholder line when none
    were collected. *)

val to_json : t -> Json.t

val all_to_json : ?col:collector -> unit -> Json.t
(** A JSON array of collected remarks. *)
