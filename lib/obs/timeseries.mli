(** Fixed-width windowed time series over simulated cycle time.

    Where {!Metrics} answers "how much, in total" for a whole run, a
    time series answers "how did it evolve": observations are stamped
    with a simulated-cycle timestamp and land in the window
    [floor (t / width)], so a request stream's arrivals, queue depths
    and latency percentiles become per-window curves a dashboard (or an
    {!Slo} evaluation) can read.

    Two series shapes share one namespace:

    - {e scalar} series carry one aggregated value per window, under an
      aggregation chosen at first use ({!Sum} for rates like arrivals
      per window, {!Mean}/{!Max}/{!Last} for level signals like queue
      depth);
    - {e distribution} series keep every observation per window, so
      exact nearest-rank percentiles (a window's p99 latency) can be
      computed afterwards, including rolling percentiles over a trailing
      window span.

    Using one name as both shapes — or one scalar name under two
    aggregations — raises [Invalid_argument]: that is an
    instrumentation bug, not a data condition (same contract as
    {!Metrics}).

    A collector is cheap but not free; callers that need the zero-cost
    discipline ({!Trace}/{!Metrics} style) hold a [Timeseries.t option]
    and skip recording entirely when disabled — see [Serve_sim]'s
    [?telemetry] parameter. Out-of-order timestamps are accepted (the
    serving scheduler records a dispatch's completion at its future
    finish time). *)

type agg = Sum | Mean | Max | Last

val agg_to_string : agg -> string

type t

val create : window:float -> (t, string) result
(** A collector with the given window width in cycles; [Error] when the
    width is not positive. *)

val window_width : t -> float

(** {1 Recording} *)

val record : t -> ?agg:agg -> series:string -> t:float -> float -> unit
(** Record a scalar observation at time [t] (default aggregation
    {!Sum}). The aggregation is fixed by the series' first record;
    passing a different one later raises [Invalid_argument]. Negative
    timestamps clamp into window 0. *)

val observe : t -> series:string -> t:float -> float -> unit
(** Record one sample into a distribution series at time [t]. *)

(** {1 Views}

    Windows are indexed from 0; every per-window array returned below
    has length {!n_windows} (the highest populated index + 1, across
    every series), so curves from one collector align. *)

val n_windows : t -> int
(** 0 when nothing was recorded. *)

val window_start : t -> int -> float
(** [window_start t i] = [i * width], the window's inclusive lower
    cycle bound. *)

val series_names : t -> string list
(** Every recorded series name, in first-recorded order. *)

val values : t -> string -> float option array
(** Per-window aggregated values of a scalar series ([None] = no
    observation landed in that window). Raises [Invalid_argument] on a
    distribution series; an unknown name yields an all-[None] array. *)

val counts : t -> string -> int array
(** Per-window observation counts (scalar or distribution series). *)

val total : t -> string -> float
(** Whole-run reconciliation total: the sum of raw observations for
    {!Sum}/{!Mean}/{!Max}/{!Last} scalars, the sample count for a
    distribution series. 0 for an unknown name. The serving telemetry
    invariant — window sums must equal the end-of-run report totals —
    is checked against this. *)

val percentile : int -> float list -> float option
(** Nearest-rank percentile of an unsorted sample list: the smallest
    sample with at least [p]% of the samples at or below it. [None] on
    the empty list. *)

val dist_percentile : t -> string -> p:int -> float option array
(** Per-window nearest-rank percentile of a distribution series
    ([None] = empty window). Raises [Invalid_argument] on a scalar
    series. *)

val dist_rolling_percentile : t -> string -> p:int -> windows:int -> float option array
(** As {!dist_percentile}, but window [i]'s value pools the samples of
    windows [max 0 (i - windows + 1) .. i] — the rolling p99 the
    serving dashboard plots. [windows <= 1] degenerates to
    {!dist_percentile}. *)

val dist_counts_above : t -> string -> limit:float -> (int * int) array
(** Per-window [(total, above)] sample counts against a threshold —
    the {!Slo} latency-objective input ([above] = samples strictly
    greater than [limit]). *)

(** {1 Rendering and export} *)

val sparkline : ?width:int -> float option array -> string
(** An ASCII sparkline of a per-window curve, scaled to its own
    maximum: one character per window from the ramp
    [" .:-=+*#%@"] (space = empty window, ['.'] = lowest, ['@'] =
    the maximum). [width] (default unlimited) resamples longer curves
    by taking each output cell's maximum, so bursts stay visible. *)

val to_json : t -> Json.t
(** The collector as a JSON object:
    [{"window_cycles": w, "windows": n, "series": [...]}] with one
    entry per series carrying its name, kind ("scalar"/"dist"),
    aggregation and dense per-window values (scalars: value-or-null;
    distributions: per-window count plus p50/p99). Byte-stable for a
    deterministic run; consumed by the [axi4mlir-telemetry-v1]
    artifact. *)
