type labels = (string * string) list

(* Canonical label identity: sort by key, first occurrence wins on
   duplicates. *)
let canon (l : labels) =
  let dedup =
    List.fold_left (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc) [] l
  in
  List.sort (fun (a, _) (b, _) -> compare a b) dedup

let n_buckets = 64

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;  (* bucket i covers (2^(i-1), 2^i]; bucket 0 covers <= 1 *)
  mutable overflow : int;
}

type series_value = Counter of float ref | Gauge of float ref | Histogram of hist

type series = { name : string; labels : labels; value : series_value }

type t = {
  mutable on : bool;
  tbl : (string * labels, series) Hashtbl.t;
  mutable order : (string * labels) list;  (* newest first *)
  mutable amb : labels;
}

let create () = { on = false; tbl = Hashtbl.create 32; order = []; amb = [] }

let default = create ()

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let reset t =
  Hashtbl.reset t.tbl;
  t.order <- []

let set_ambient t labels = t.amb <- canon labels
let ambient t = t.amb

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let find_or_create t name labels make expect =
  let labels = canon (labels @ t.amb) in
  let key = (name, labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some s ->
    if kind_name s.value <> expect then
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s, not a %s" name
           (kind_name s.value) expect);
    s
  | None ->
    let s = { name; labels; value = make () } in
    Hashtbl.replace t.tbl key s;
    t.order <- key :: t.order;
    s

let incr ?(reg = default) ?(labels = []) ?(by = 1.0) name =
  if reg.on then
    match (find_or_create reg name labels (fun () -> Counter (ref 0.0)) "counter").value with
    | Counter r -> r := !r +. by
    | Gauge _ | Histogram _ -> assert false

let set_gauge ?(reg = default) ?(labels = []) name v =
  if reg.on then
    match (find_or_create reg name labels (fun () -> Gauge (ref 0.0)) "gauge").value with
    | Gauge r -> r := v
    | Counter _ | Histogram _ -> assert false

(* Bucket index of a positive observation: the smallest i with
   v <= 2^i. frexp gives v = m * 2^e with m in [0.5, 1), so the bound
   is e, or e-1 when v is an exact power of two (m = 0.5). *)
let bucket_of v =
  if v <= 1.0 then 0
  else
    let m, e = Float.frexp v in
    if m = 0.5 then e - 1 else e

let observe ?(reg = default) ?(labels = []) name v =
  if reg.on then
    match
      (find_or_create reg name labels
         (fun () ->
           Histogram
             {
               count = 0;
               sum = 0.0;
               vmin = infinity;
               vmax = neg_infinity;
               buckets = Array.make n_buckets 0;
               overflow = 0;
             })
         "histogram")
        .value
    with
    | Histogram h ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.vmin then h.vmin <- v;
      if v > h.vmax then h.vmax <- v;
      let b = bucket_of v in
      if b >= n_buckets then h.overflow <- h.overflow + 1 else h.buckets.(b) <- h.buckets.(b) + 1
    | Counter _ | Gauge _ -> assert false

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histogram_view = {
  h_count : int;
  h_sum : float;
  h_min : float option;
  h_max : float option;
  h_buckets : (float * int) list;
  h_overflow : int;
}

type point = Counter_v of float | Gauge_v of float | Histogram_v of histogram_view

type sample = { s_name : string; s_labels : labels; s_point : point }

let view_of_hist h =
  {
    h_count = h.count;
    h_sum = h.sum;
    h_min = (if h.count = 0 then None else Some h.vmin);
    h_max = (if h.count = 0 then None else Some h.vmax);
    h_buckets =
      List.filter_map
        (fun i -> if h.buckets.(i) > 0 then Some (Float.ldexp 1.0 i, h.buckets.(i)) else None)
        (Util.range n_buckets);
    h_overflow = h.overflow;
  }

let point_of = function
  | Counter r -> Counter_v !r
  | Gauge r -> Gauge_v !r
  | Histogram h -> Histogram_v (view_of_hist h)

let snapshot ?(reg = default) () =
  List.rev_map
    (fun key ->
      let s = Hashtbl.find reg.tbl key in
      { s_name = s.name; s_labels = s.labels; s_point = point_of s.value })
    reg.order

let counter_value ?(reg = default) ?(labels = []) name =
  match Hashtbl.find_opt reg.tbl (name, canon (labels @ reg.amb)) with
  | Some { value = Counter r; _ } | Some { value = Gauge r; _ } -> !r
  | Some { value = Histogram _; _ } | None -> 0.0

let total ?(reg = default) name =
  Hashtbl.fold
    (fun (n, _) s acc ->
      if n <> name then acc
      else
        match s.value with
        | Counter r | Gauge r -> acc +. !r
        | Histogram h -> acc +. h.sum)
    reg.tbl 0.0

let quantile view q =
  if view.h_count = 0 then None
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = Float.max 1.0 (Float.ceil (Float.of_int view.h_count *. q)) in
    let rank = int_of_float rank in
    let clamp v =
      match (view.h_min, view.h_max) with
      | Some lo, Some hi -> Float.max lo (Float.min hi v)
      | _ -> v
    in
    let rec walk seen = function
      | [] -> (* rank falls in the overflow bucket *) Some (clamp infinity)
      | (ub, c) :: rest -> if seen + c >= rank then Some (clamp ub) else walk (seen + c) rest
    in
    walk 0 view.h_buckets
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let labels_to_json l = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) l)

let sample_to_json s =
  let base = [ ("name", Json.String s.s_name); ("labels", labels_to_json s.s_labels) ] in
  Json.Obj
    (base
    @
    match s.s_point with
    | Counter_v v -> [ ("type", Json.String "counter"); ("value", Json.Float v) ]
    | Gauge_v v -> [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
    | Histogram_v h ->
      [
        ("type", Json.String "histogram");
        ("count", Json.Int h.h_count);
        ("sum", Json.Float h.h_sum);
        ("min", match h.h_min with Some v -> Json.Float v | None -> Json.Null);
        ("max", match h.h_max with Some v -> Json.Float v | None -> Json.Null);
        ( "buckets",
          Json.List
            (List.map
               (fun (ub, c) -> Json.Obj [ ("le", Json.Float ub); ("count", Json.Int c) ])
               h.h_buckets) );
        ("overflow", Json.Int h.h_overflow);
      ])

let to_json ?(reg = default) () =
  Json.Obj
    [
      ("schema", Json.String "axi4mlir-metrics-v1");
      ("series", Json.List (List.map sample_to_json (snapshot ~reg ())));
    ]

let labels_to_text = function
  | [] -> ""
  | l ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) l)
    ^ "}"

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render ?(reg = default) () =
  let samples = snapshot ~reg () in
  if samples = [] then "(no metrics recorded)\n"
  else begin
    let buf = Buffer.create 1024 in
    List.iter
      (fun s ->
        let lbl = labels_to_text s.s_labels in
        match s.s_point with
        | Counter_v v | Gauge_v v ->
          Buffer.add_string buf (Printf.sprintf "%s%s %s\n" s.s_name lbl (fmt_value v))
        | Histogram_v h ->
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.s_name lbl h.h_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.s_name lbl (fmt_value h.h_sum));
          (* cumulative buckets, Prometheus text-format style: each
             populated bound once plus the +Inf catch-all (= _count) *)
          let bucket_line bound cum =
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                 (labels_to_text (s.s_labels @ [ ("le", bound) ]))
                 cum)
          in
          let cum = ref 0 in
          List.iter
            (fun (ub, c) ->
              cum := !cum + c;
              bucket_line (fmt_value ub) !cum)
            h.h_buckets;
          bucket_line "+Inf" h.h_count;
          List.iter
            (fun (tag, q) ->
              match quantile h q with
              | Some v ->
                Buffer.add_string buf
                  (Printf.sprintf "%s_%s%s %s\n" s.s_name tag lbl (fmt_value v))
              | None -> ())
            [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ])
      samples;
    Buffer.contents buf
  end
