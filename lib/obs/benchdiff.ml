type point = {
  pt_id : string;
  pt_kind : string;
  pt_dims : int list;
  pt_config : string;
  pt_metrics : (string * float) list;
}

type doc = { doc_experiment : string; doc_quick : bool; doc_points : point list }

let schema = "axi4mlir-bench-v1"

let field kvs key = match List.assoc_opt key kvs with Some v -> v | None -> 0.0

let metrics_of_fields fields =
  let cycles = field fields "cycles" in
  let flops = field fields "flops" in
  [
    ("cycles", cycles);
    ("instructions", field fields "instructions");
    ("branches", field fields "branches");
    ("cache_references", field fields "l1_accesses" +. field fields "l2_accesses");
    ("l1_misses", field fields "l1_misses");
    ("l2_misses", field fields "l2_misses");
    ("dma_transactions", field fields "dma_transactions");
    ("dma_words", field fields "dma_words_sent" +. field fields "dma_words_received");
    ("accel_busy_cycles", field fields "accel_busy_cycles");
    ("flops", flops);
    ("gflops_per_cycle", if cycles > 0.0 then flops /. cycles else 0.0);
  ]

(* ------------------------------------------------------------------ *)
(* Config hashing                                                      *)
(* ------------------------------------------------------------------ *)

(* 64-bit FNV-1a. Deliberately hand-rolled rather than Hashtbl.hash:
   the result is persisted (bench artifacts, tune-cache keys) and must
   be identical across OCaml versions and platforms. See the .mli for
   the compatibility guarantee. *)
let stable_hash s =
  let offset_basis = 0xCBF29CE484222325L and prime = 0x100000001B3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let config_hash json = stable_hash (Json.to_string json)

(* ------------------------------------------------------------------ *)
(* Artifact I/O                                                        *)
(* ------------------------------------------------------------------ *)

let point_to_json p =
  Json.Obj
    [
      ("id", Json.String p.pt_id);
      ("kind", Json.String p.pt_kind);
      ("dims", Json.List (List.map (fun d -> Json.Int d) p.pt_dims));
      ("config", Json.String p.pt_config);
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) p.pt_metrics));
    ]

let to_json doc =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("experiment", Json.String doc.doc_experiment);
      ("quick", Json.Bool doc.doc_quick);
      ("points", Json.List (List.map point_to_json doc.doc_points));
    ]

let point_of_json json =
  match json with
  | Json.Obj _ ->
    {
      pt_id = Json.to_str (Json.member "id" json);
      pt_kind = Json.to_str (Json.member "kind" json);
      pt_dims = List.map Json.to_int (Json.to_list (Json.member "dims" json));
      pt_config = Json.to_str (Json.member "config" json);
      pt_metrics =
        List.map (fun (k, v) -> (k, Json.to_float v)) (Json.to_obj (Json.member "metrics" json));
    }
  | _ -> raise (Json.Type_error "bench point: expected an object")

let of_json_result json =
  match
    let s = Json.to_str (Json.member "schema" json) in
    if s <> schema then
      raise (Json.Type_error (Printf.sprintf "unsupported schema %s (want %s)" s schema));
    {
      doc_experiment = Json.to_str (Json.member "experiment" json);
      doc_quick = Json.to_bool (Json.member "quick" json);
      doc_points = List.map point_of_json (Json.to_list (Json.member "points" json));
    }
  with
  | doc -> Ok doc
  | exception Json.Type_error msg -> Error msg

let filename exp = Printf.sprintf "BENCH_%s.json" exp

let write_file path doc =
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:2 (to_json doc));
  output_char oc '\n';
  close_out oc

let read_file path =
  match
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Json.of_string text
  with
  | json -> (
    match of_json_result json with
    | Ok doc -> Ok doc
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg
  | exception Json.Parse_error msg -> Error (Printf.sprintf "%s: %s" path msg)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type direction = Lower_better | Higher_better | Exact

(* Relative headroom per metric. The simulator is deterministic, so
   these absorb deliberate cost-model tweaks, not noise: runtime-ish
   metrics get 2%, cache-miss counts (sensitive to small layout
   changes) 5%, and pure work/traffic metrics must match exactly. *)
let tolerances =
  [
    ("cycles", (0.02, Lower_better));
    ("instructions", (0.02, Lower_better));
    ("branches", (0.02, Lower_better));
    ("cache_references", (0.02, Lower_better));
    ("l1_misses", (0.05, Lower_better));
    ("l2_misses", (0.05, Lower_better));
    ("dma_transactions", (0.0, Exact));
    ("dma_words", (0.0, Exact));
    ("accel_busy_cycles", (0.02, Exact));
    ("flops", (0.0, Exact));
    ("gflops_per_cycle", (0.02, Higher_better));
  ]

type finding = {
  f_point : string;
  f_metric : string;
  f_baseline : float;
  f_fresh : float;
  f_rel : float;
}

type verdict = {
  v_experiment : string;
  v_compared : int;
  v_regressions : finding list;
  v_improvements : finding list;
  v_missing : string list;
  v_extra : string list;
}

let compare_docs ?(tolerances = tolerances) ~baseline ~fresh () =
  let compared = ref 0 in
  let regressions = ref [] and improvements = ref [] in
  let fresh_by_id = List.map (fun p -> (p.pt_id, p)) fresh.doc_points in
  let missing =
    List.filter_map
      (fun p -> if List.mem_assoc p.pt_id fresh_by_id then None else Some p.pt_id)
      baseline.doc_points
  in
  let base_ids = List.map (fun p -> p.pt_id) baseline.doc_points in
  let extra =
    List.filter_map
      (fun p -> if List.mem p.pt_id base_ids then None else Some p.pt_id)
      fresh.doc_points
  in
  List.iter
    (fun bp ->
      match List.assoc_opt bp.pt_id fresh_by_id with
      | None -> ()
      | Some fp ->
        List.iter
          (fun (metric, base) ->
            match List.assoc_opt metric fp.pt_metrics with
            | None -> ()
            | Some value ->
              incr compared;
              let rel =
                (value -. base) /. if Float.abs base > 0.0 then Float.abs base else 1.0
              in
              let tol, dir =
                match List.assoc_opt metric tolerances with
                | Some td -> td
                | None -> (0.0, Exact)
              in
              let finding =
                { f_point = bp.pt_id; f_metric = metric; f_baseline = base; f_fresh = value;
                  f_rel = rel }
              in
              let worse, better =
                match dir with
                | Lower_better -> (rel > tol, rel < -.tol)
                | Higher_better -> (rel < -.tol, rel > tol)
                | Exact -> (Float.abs rel > tol, false)
              in
              if worse then regressions := finding :: !regressions
              else if better then improvements := finding :: !improvements)
          bp.pt_metrics)
    baseline.doc_points;
  {
    v_experiment = baseline.doc_experiment;
    v_compared = !compared;
    v_regressions = List.rev !regressions;
    v_improvements = List.rev !improvements;
    v_missing = missing;
    v_extra = extra;
  }

let ok v = v.v_regressions = [] && v.v_missing = [] && v.v_extra = []

let render_finding verb f =
  Printf.sprintf "  %s %s %s: %g -> %g (%+.2f%%)" verb f.f_point f.f_metric f.f_baseline
    f.f_fresh (100.0 *. f.f_rel)

let render_verdict v =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d comparisons, %d regression(s), %d improvement(s)%s\n"
       v.v_experiment v.v_compared
       (List.length v.v_regressions)
       (List.length v.v_improvements)
       (if v.v_missing = [] && v.v_extra = [] then ""
        else
          Printf.sprintf ", %d missing, %d extra point(s)" (List.length v.v_missing)
            (List.length v.v_extra)));
  List.iter
    (fun f -> Buffer.add_string buf (render_finding "REGRESSION" f ^ "\n"))
    v.v_regressions;
  List.iter
    (fun f -> Buffer.add_string buf (render_finding "improvement" f ^ "\n"))
    v.v_improvements;
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "  MISSING %s (in baseline only)\n" id))
    v.v_missing;
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "  EXTRA %s (not in baseline)\n" id))
    v.v_extra;
  Buffer.contents buf
