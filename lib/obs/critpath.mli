(** Critical-path extraction and cycle attribution over the simulator's
    event DAG.

    A measured run leaves two records of where time went: the host's
    serial cycle counter, annotated by host-clock {e marks} (PIO
    transfer windows, token-wait stalls, DMA programming, status
    checks), and the asynchronous timeline's {e agent events} (token
    transfers on DMA channels, device compute windows), each carrying
    its issue order, its requested earliest start and an optional
    dependency edge. Together these form a DAG whose sinks are the
    last completions; the makespan is the latest of them.

    {!analyze} walks that DAG {e backwards} from the completion that
    defines the makespan, at every step following the edge that was
    actually binding:

    - {e program order}: the interval started exactly when its agent
      finished the previous interval ([Bound_agent]);
    - {e dependency}: it started exactly when the interval named by its
      [iv_dep] edge finished ([Bound_dep]) — a device compute waiting
      on its token send, a host stall waiting on a transfer;
    - {e host}: it started when the host issued it; the walk continues
      down the host's serial clock through the recorded marks, labelled
      host gaps becoming [Host_compute] ([Bound_host]).

    The result is a {e contiguous} chain of segments covering exactly
    [[0, makespan]]: the critical path. Every cycle of it is attributed
    to one of six closed categories, and {!verify} checks the exact
    invariants the fuzzer asserts on every case — the path telescopes
    to the makespan with no gaps or overlaps (exact float equality on
    the shared boundaries), and the per-category attribution sums back
    to the makespan.

    On top of the path, {!analyze} computes Amdahl-style what-if
    ceilings (zero-cost DMA, infinite DMA channels, perfect overlap)
    and names the binding resource — the host / DMA / accelerator group
    holding the largest share of the critical path. {!Doctor} renders
    all of this. *)

(** Where a critical-path cycle went. Closed set: every segment carries
    exactly one category and the six sum to the makespan. *)
type category =
  | Host_compute  (** host instructions outside any annotated interval *)
  | Dma_send  (** outbound transfer time: wire cycles, PIO, programming *)
  | Dma_recv  (** inbound transfer time: wire cycles, PIO, programming *)
  | Accel_compute  (** device busy windows and host stalls on them *)
  | Wait_stall  (** host blocked on an in-flight transfer or poll loop *)
  | Status_check  (** already-drained token checks (status register) *)

val categories : category list
(** All six, in rendering order. *)

val category_name : category -> string
(** Stable snake-case identifier used in JSON/metrics ("host_compute",
    "dma_send", ...). *)

(** One node of the event DAG, in neutral (simulator-independent)
    form; [Soc.critpath_input] converts timeline state into these. *)
type interval = {
  iv_seq : int;  (** unique issue order; [iv_dep] refers to these *)
  iv_agent : string;
  iv_label : string;
  iv_start : float;
  iv_finish : float;
  iv_not_before : float;  (** requested earliest start *)
  iv_dep : int option;  (** upstream event this one waited on *)
  iv_mark : bool;  (** host-clock annotation vs scheduled agent work *)
  iv_jump : bool;
      (** a mark whose extent shadows its [iv_dep]'s agent work (a
          token-wait stall): the walk jumps through it into the agent
          chain instead of attributing the mark itself *)
  iv_category : category;
  iv_offload : bool;
      (** host time that perfect offload/overlap would eliminate (PIO
          windows, stalls, polls) — DMA programming is not offloadable
          and keeps [false] *)
}

type input = {
  in_makespan : float;  (** the reported task-clock *)
  in_host_end : float;  (** host serial cycles at end of run *)
  in_dma_transfer : float;
      (** pure wire time of all DMA traffic over the run, CPU cycles *)
  in_accel_busy : float;
      (** total device compute over the run, CPU cycles *)
  in_intervals : interval list;
}

(** Which constraint bound a segment's start. *)
type bound =
  | Bound_entry  (** the walk's entry point (the makespan completion) *)
  | Bound_agent  (** the agent's own serialisation (program order) *)
  | Bound_dep  (** the explicit dependency edge *)
  | Bound_host  (** the host's serial clock *)

val bound_name : bound -> string

type segment = {
  sg_start : float;
  sg_finish : float;
  sg_category : category;
  sg_label : string;
  sg_agent : string;
  sg_bound : bound;
  sg_slack : float;
      (** for agent-bound transfer segments: how much earlier the
          transfer could have started on an idle channel
          ([iv_start - iv_not_before]); 0 elsewhere. Feeds the
          infinite-channels what-if. *)
}

val segment_cycles : segment -> float

(** The resource groups the diagnosis names. *)
type resource = Res_host | Res_dma | Res_accel

val resource_name : resource -> string
val resource_of_category : category -> resource

type whatif = {
  wf_name : string;  (** "zero-cost-dma" | "infinite-dma-channels" | "perfect-overlap" *)
  wf_bound_cycles : float;  (** estimated lower bound on the runtime *)
  wf_speedup : float option;
      (** makespan / bound, clamped to >= 1; [None] when the bound
          degenerates to zero (nothing would remain) *)
}

type report = {
  rp_makespan : float;
  rp_host_end : float;
  rp_segments : segment list;
      (** the critical path, oldest first; contiguous cover of
          [[0, makespan]] (empty iff the makespan is 0) *)
  rp_attribution : (category * float) list;  (** all six, {!categories} order *)
  rp_resources : (resource * float) list;
  rp_binding : resource;  (** largest resource share of the path *)
  rp_whatifs : whatif list;
}

val analyze : input -> (report, string) result
(** Extract the critical path and everything derived from it. [Error]
    means the input violates the DAG's structural assumptions (a
    non-contiguous walk) — never raised for an empty run, which yields
    an empty path. The returned report always passes {!verify}. *)

val verify : input -> report -> (unit, string) result
(** Check the exactness invariants independently of [analyze]'s own
    internal checks: the path starts at 0 and ends at the makespan with
    exact-float boundary sharing between consecutive segments, and the
    category attribution sums to the makespan within 1e-6 relative
    error (the only tolerance anywhere — boundary equality is exact). *)
