(** The "perf doctor": turns a {!Critpath} report into actionable
    output — a human-readable diagnosis naming the binding resource and
    the top-k critical operations, Amdahl-style what-if ceilings, a
    machine-readable [axi4mlir-critpath-v1] JSON artifact, highlight
    slices in the Chrome/Perfetto export, and [Analysis] remarks plus
    metrics counters the tuner can seed from.

    {2 The [axi4mlir-critpath-v1] schema}

    {!to_json} emits one self-describing object:

    {v
{ "schema": "axi4mlir-critpath-v1",
  "makespan_cycles": f, "host_serial_cycles": f,
  "binding_resource": "host" | "dma" | "accel",
  "attribution": { "<category>": cycles, ... all six },
  "resources":   { "host": f, "dma": f, "accel": f },
  "whatifs": [ { "name": s, "bound_cycles": f,
                 "speedup_ceiling": f | null }, ... ],
  "top": [ segment, ... k ], "critical_path": [ segment, ... ] }
    v}

    where a segment is [{ "start", "finish", "cycles", "category",
    "label", "agent", "bound" }]. Compatibility guarantee: within v1,
    fields are only ever {e added}; the six category names, the three
    resource names and the three what-if names are frozen. Consumers
    must ignore unknown fields and must key on names, not positions. *)

type diagnosis = {
  dg_report : Critpath.report;
  dg_top : Critpath.segment list;
      (** the top-k critical-path segments by duration (ties broken by
          earlier start), excluding zero-length ones *)
}

val diagnose : ?top_k:int -> Critpath.input -> (diagnosis, string) result
(** Run {!Critpath.analyze} and rank the top-k (default 5) critical
    operations. [Error] propagates analysis failures. *)

val binding_resource : diagnosis -> string
(** The binding resource's stable name ("host" | "dma" | "accel"). *)

val speedup_ceiling : diagnosis -> string -> float option
(** The speedup ceiling of the named what-if ("zero-cost-dma",
    "infinite-dma-channels", "perfect-overlap"); [None] for unknown
    names or degenerate (unbounded) ceilings. *)

val render : diagnosis -> string
(** The human-readable diagnosis: binding resource, category
    attribution table, top-k critical operations and what-if ceilings.
    Never empty — even an idle run renders its (host-bound) verdict. *)

val to_json : diagnosis -> Json.t
(** The [axi4mlir-critpath-v1] artifact (schema above). *)

val write_json : diagnosis -> path:string -> unit

val emit_remarks : ?loc:string -> diagnosis -> unit
(** Emit [Analysis] remarks into {!Remarks.default} (pass
    ["perf-doctor"]): one ["binding-resource"] remark with the per
    resource cycle split, and one ["speedup-ceiling"] remark per
    what-if. No-ops while the collector is disabled. *)

val emit_metrics : diagnosis -> unit
(** Record into {!Metrics.default}: the ["doctor.critpath_cycles"]
    counter labelled by category, the ["doctor.binding_resource"]
    counter labelled by resource, and one ["doctor.whatif_speedup"]
    gauge per what-if. No-ops while the registry is disabled. *)

val annotate_trace : Trace.t -> diagnosis -> unit
(** Highlight the critical path in the trace: one Complete slice per
    segment on {!Trace.critpath_track} (category as the Chrome [cat],
    binding constraint in the args) and a flow arrow — with a
    {!Trace.fresh_flow_id} — between each pair of consecutive
    segments, so the handoff points are visible edges in Perfetto. *)
