type category =
  | Host_compute
  | Dma_send
  | Dma_recv
  | Accel_compute
  | Wait_stall
  | Status_check

let categories =
  [ Host_compute; Dma_send; Dma_recv; Accel_compute; Wait_stall; Status_check ]

let category_name = function
  | Host_compute -> "host_compute"
  | Dma_send -> "dma_send"
  | Dma_recv -> "dma_recv"
  | Accel_compute -> "accel_compute"
  | Wait_stall -> "wait_stall"
  | Status_check -> "status_check"

type interval = {
  iv_seq : int;
  iv_agent : string;
  iv_label : string;
  iv_start : float;
  iv_finish : float;
  iv_not_before : float;
  iv_dep : int option;
  iv_mark : bool;
  iv_jump : bool;
  iv_category : category;
  iv_offload : bool;
}

type input = {
  in_makespan : float;
  in_host_end : float;
  in_dma_transfer : float;
  in_accel_busy : float;
  in_intervals : interval list;
}

type bound = Bound_entry | Bound_agent | Bound_dep | Bound_host

let bound_name = function
  | Bound_entry -> "entry"
  | Bound_agent -> "agent"
  | Bound_dep -> "dep"
  | Bound_host -> "host"

type segment = {
  sg_start : float;
  sg_finish : float;
  sg_category : category;
  sg_label : string;
  sg_agent : string;
  sg_bound : bound;
  sg_slack : float;
}

let segment_cycles sg = sg.sg_finish -. sg.sg_start

type resource = Res_host | Res_dma | Res_accel

let resource_name = function
  | Res_host -> "host"
  | Res_dma -> "dma"
  | Res_accel -> "accel"

let resource_of_category = function
  | Host_compute | Status_check -> Res_host
  | Dma_send | Dma_recv | Wait_stall -> Res_dma
  | Accel_compute -> Res_accel

type whatif = { wf_name : string; wf_bound_cycles : float; wf_speedup : float option }

type report = {
  rp_makespan : float;
  rp_host_end : float;
  rp_segments : segment list;
  rp_attribution : (category * float) list;
  rp_resources : (resource * float) list;
  rp_binding : resource;
  rp_whatifs : whatif list;
}

(* ------------------------------------------------------------------ *)
(* The backward walk                                                   *)
(* ------------------------------------------------------------------ *)

(* Marks are host-clock annotations: the host is serial, so they are
   pairwise disjoint and recording order is time order. We walk them by
   array index (strictly decreasing), never by time lookup alone, so
   zero-extent degenerate marks cannot loop the walk. *)

let walk inp =
  let marks =
    List.filter (fun iv -> iv.iv_mark) inp.in_intervals
    |> List.sort (fun a b ->
           match compare a.iv_finish b.iv_finish with
           | 0 -> compare a.iv_seq b.iv_seq
           | c -> c)
    |> Array.of_list
  in
  let events = List.filter (fun iv -> not iv.iv_mark) inp.in_intervals in
  let by_seq : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun iv -> Hashtbl.replace by_seq iv.iv_seq iv) events;
  (* Per-agent chains in issue order (agents are serial, so issue order
     is also time order within one agent). *)
  let chains : (string, interval array) Hashtbl.t = Hashtbl.create 8 in
  let pos : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun iv ->
      let prev = try Hashtbl.find chains iv.iv_agent with Not_found -> [||] in
      Hashtbl.replace pos iv.iv_seq (Array.length prev);
      Hashtbl.replace chains iv.iv_agent (Array.append prev [| iv |]))
    (List.sort (fun a b -> compare a.iv_seq b.iv_seq) events);
  let prev_on_agent iv =
    let chain = Hashtbl.find chains iv.iv_agent in
    let p = Hashtbl.find pos iv.iv_seq in
    if p > 0 then Some chain.(p - 1) else None
  in
  (* Largest index i such that marks.(0..i-1) all finish at or before t. *)
  let marks_upto t =
    let lo = ref 0 and hi = ref (Array.length marks) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if marks.(mid).iv_finish <= t then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let segs = ref [] in
  let push ?(slack = 0.0) ~bound ~category ~label ~agent start finish =
    segs :=
      {
        sg_start = start;
        sg_finish = finish;
        sg_category = category;
        sg_label = label;
        sg_agent = agent;
        sg_bound = bound;
        sg_slack = slack;
      }
      :: !segs
  in
  (* Each event step strictly decreases the sequence number and each
     mark step the mark index, so the walk terminates; the guard turns
     any violated assumption into a diagnosable error instead of a
     hang. *)
  let guard = ref ((2 * List.length inp.in_intervals) + Array.length marks + 16) in
  let step () =
    decr guard;
    if !guard < 0 then failwith "critpath: walk exceeded its step budget"
  in
  let rec on_event ~bound ev =
    step ();
    let slack =
      if bound = Bound_agent then Float.max 0.0 (ev.iv_start -. ev.iv_not_before)
      else 0.0
    in
    push ~slack ~bound ~category:ev.iv_category ~label:ev.iv_label ~agent:ev.iv_agent
      ev.iv_start ev.iv_finish;
    match prev_on_agent ev with
    | Some p when p.iv_finish = ev.iv_start -> on_event ~bound:Bound_agent p
    | _ -> (
      match Option.bind ev.iv_dep (Hashtbl.find_opt by_seq) with
      | Some d when d.iv_finish = ev.iv_start -> on_event ~bound:Bound_dep d
      | _ -> on_host ~mi:(marks_upto ev.iv_start) ev.iv_start)
  and on_host ~mi t =
    step ();
    if t > 0.0 then
      if mi = 0 then
        push ~bound:Bound_host ~category:Host_compute ~label:"host" ~agent:"host" 0.0 t
      else begin
        let m = marks.(mi - 1) in
        if m.iv_finish > t then
          failwith "critpath: mark extends past the host cursor";
        if m.iv_finish < t then
          push ~bound:Bound_host ~category:Host_compute ~label:"host" ~agent:"host"
            m.iv_finish t;
        let jump_target =
          if m.iv_jump then
            match Option.bind m.iv_dep (Hashtbl.find_opt by_seq) with
            | Some d when d.iv_finish = m.iv_finish -> Some d
            | _ -> None
          else None
        in
        match jump_target with
        | Some d -> on_event ~bound:Bound_dep d
        | None ->
          push ~bound:Bound_host ~category:m.iv_category ~label:m.iv_label
            ~agent:m.iv_agent m.iv_start m.iv_finish;
          on_host ~mi:(mi - 1) m.iv_start
      end
    else if t < 0.0 then failwith "critpath: walk ran past time zero"
  in
  if inp.in_makespan > 0.0 then begin
    let top =
      List.fold_left
        (fun acc iv ->
          match acc with
          | Some best
            when best.iv_finish > iv.iv_finish
                 || (best.iv_finish = iv.iv_finish && best.iv_seq > iv.iv_seq) ->
            acc
          | _ -> Some iv)
        None events
    in
    match top with
    | Some e when e.iv_finish >= inp.in_makespan && e.iv_finish > inp.in_host_end ->
      on_event ~bound:Bound_entry e
    | _ -> on_host ~mi:(Array.length marks) inp.in_makespan
  end;
  !segs

(* ------------------------------------------------------------------ *)
(* Attribution and what-ifs                                            *)
(* ------------------------------------------------------------------ *)

let attribution_of segments =
  List.map
    (fun cat ->
      ( cat,
        List.fold_left
          (fun acc sg -> if sg.sg_category = cat then acc +. segment_cycles sg else acc)
          0.0 segments ))
    categories

let resources_of attribution =
  List.map
    (fun res ->
      ( res,
        List.fold_left
          (fun acc (cat, c) -> if resource_of_category cat = res then acc +. c else acc)
          0.0 attribution ))
    [ Res_host; Res_dma; Res_accel ]

let binding_of resources =
  (* Strict comparison: ties keep the earlier (host-first) entry, so a
     pure-host run always reports the host. *)
  List.fold_left
    (fun (best, bc) (res, c) -> if c > bc then (res, c) else (best, bc))
    (Res_host, neg_infinity) resources
  |> fst

let whatifs inp segments attribution =
  let t_end = inp.in_makespan in
  let speedup bound =
    if bound > 0.0 then Some (Float.max 1.0 (t_end /. bound)) else None
  in
  let attributed cats =
    List.fold_left
      (fun acc (cat, c) -> if List.mem cat cats then acc +. c else acc)
      0.0 attribution
  in
  (* Zero-cost DMA: every transfer-related cycle on the path vanishes
     (wire time, PIO, programming, stalls, polls, status checks). *)
  let zero_dma_bound =
    Float.max 0.0 (t_end -. attributed [ Dma_send; Dma_recv; Wait_stall; Status_check ])
  in
  (* Infinite DMA channels: each transfer on the path starts as soon as
     its data is ready instead of queueing behind its channel — remove
     the recorded channel-serialisation slack. First-order estimate:
     downstream re-timing knock-ons are ignored. *)
  let channel_slack =
    List.fold_left
      (fun acc sg ->
        match sg.sg_category with
        | Dma_send | Dma_recv -> acc +. sg.sg_slack
        | _ -> acc)
      0.0 segments
  in
  let infinite_bound = Float.max 0.0 (t_end -. channel_slack) in
  (* Perfect overlap: host, DMA wires and device all run concurrently;
     the run cannot beat the busiest of the three. The host keeps its
     compute and its DMA programming (not offloadable) but sheds PIO
     windows, stalls, polls and status checks. *)
  let host_floor =
    List.fold_left
      (fun acc iv ->
        if iv.iv_mark && iv.iv_offload then acc -. (iv.iv_finish -. iv.iv_start)
        else acc)
      inp.in_host_end inp.in_intervals
    |> Float.max 0.0
  in
  let overlap_bound =
    Float.max host_floor (Float.max inp.in_dma_transfer inp.in_accel_busy)
  in
  [
    {
      wf_name = "zero-cost-dma";
      wf_bound_cycles = zero_dma_bound;
      wf_speedup = speedup zero_dma_bound;
    };
    {
      wf_name = "infinite-dma-channels";
      wf_bound_cycles = infinite_bound;
      wf_speedup = speedup infinite_bound;
    };
    {
      wf_name = "perfect-overlap";
      wf_bound_cycles = overlap_bound;
      wf_speedup = speedup overlap_bound;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let verify inp report =
  let t_end = inp.in_makespan in
  let fail fmt = Printf.ksprintf (fun s -> Error ("critpath invariant: " ^ s)) fmt in
  match report.rp_segments with
  | [] -> if t_end > 0.0 then fail "empty path for makespan %g" t_end else Ok ()
  | first :: _ as segs ->
    if first.sg_start <> 0.0 then fail "path starts at %g, not 0" first.sg_start
    else begin
      let rec contiguous = function
        | a :: (b :: _ as rest) ->
          if a.sg_finish <> b.sg_start then
            fail "gap/overlap at %g -> %g (%s -> %s)" a.sg_finish b.sg_start a.sg_label
              b.sg_label
          else contiguous rest
        | [ last ] ->
          if last.sg_finish <> t_end then
            fail "path ends at %g, not the makespan %g" last.sg_finish t_end
          else Ok ()
        | [] -> Ok ()
      in
      match contiguous segs with
      | Error _ as e -> e
      | Ok () ->
        let covered =
          List.fold_left (fun acc sg -> acc +. segment_cycles sg) 0.0 segs
        in
        let attributed =
          List.fold_left (fun acc (_, c) -> acc +. c) 0.0 report.rp_attribution
        in
        let tol = 1e-6 *. Float.max 1.0 t_end in
        if Float.abs (covered -. t_end) > tol then
          fail "segment cycles sum to %g, makespan is %g" covered t_end
        else if Float.abs (attributed -. t_end) > tol then
          fail "attribution sums to %g, makespan is %g" attributed t_end
        else Ok ()
    end

let analyze inp =
  match walk inp with
  | exception Failure msg -> Error msg
  | segments ->
    let attribution = attribution_of segments in
    let resources = resources_of attribution in
    let report =
      {
        rp_makespan = inp.in_makespan;
        rp_host_end = inp.in_host_end;
        rp_segments = segments;
        rp_attribution = attribution;
        rp_resources = resources;
        rp_binding = binding_of resources;
        rp_whatifs = whatifs inp segments attribution;
      }
    in
    (match verify inp report with Ok () -> Ok report | Error _ as e -> e)
