(** The [axi4mlir-graph-v1] whole-model run artifact.

    One JSON object per run: the graph structure, the residency plan,
    counter totals and per-node cycle/DMA attribution. The schema is
    {e add-only}: fields never change name, meaning or value type;
    extensions append new fields, and a breaking redesign bumps the
    schema string. The golden test pins exact bytes for a fixed run. *)

val schema : string

val to_json : Graph_exec.result -> Json.t

val render : Graph_exec.result -> string
(** [to_json] pretty-printed with [indent:1] plus a trailing newline —
    the exact bytes {!write} emits and the golden test compares. *)

val write : Graph_exec.result -> path:string -> unit
