(** Whole-model execution on one simulated SoC.

    Two modes over the same operand data (fills are label-seeded, so
    runs are reproducible and comparable):

    - [residency:false] — the per-kernel baseline: image-major,
      every node resets the engine and pays every transfer, exactly as
      if each layer were invoked standalone.
    - [residency:true] — plans with {!Graph_residency.schedule} and
      executes node-major, eliding the planned transfers through the
      device's residency regions. Elided transfers go through
      {!Dma_library.skip_resident}, so the DMA word counters genuinely
      shrink rather than being discounted after the fact.

    The residency run must be bit-identical to the baseline on every
    graph output — the engine computes resident patches in the exact
    element order of streamed ones — and the fuzz oracle and
    [bench/exp_graph] both enforce it. *)

type node_stat = {
  ns_node : int;
  ns_name : string;
  ns_op : string;
  ns_cycles : float;  (** host cycles attributed to this node (summed
                          over the batch) *)
  ns_dma_words : float;  (** DMA words sent + received by this node *)
  ns_skipped_words : int;  (** words elided by residency decisions *)
}

type result = {
  rs_graph : Graph_ir.t;
  rs_plan : Graph_residency.plan;
  rs_batch : int;
  rs_counters : Perf_counters.t;
  rs_node_stats : node_stat array;
  rs_skipped_words : int;
  rs_outputs : (int * float array array) list;
      (** per graph output: tensor id and one row-major array per
          image *)
}

val run : ?batch:int -> residency:bool -> Graph_ir.t -> result
(** Execute the graph (default batch 1). Raises [Failure] on invalid
    graphs, mixed-engine graphs, or a plan/executor desync. *)

val result_dma_words : result -> float
(** Total DMA words moved (sent + received). *)

val outputs_equal : result -> result -> bool
(** Bit-exact comparison of the two runs' graph outputs. *)
