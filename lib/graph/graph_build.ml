(* Whole-model proxy builders.

   The shapes are scaled-down proxies of the paper's models (the full
   ResNet-18 spatial extents would make the cycle-accurate simulation
   interactive-hostile), but the *structure* is faithful: the ResNet
   proxy has the real 20-convolution skeleton (stem + 8 basic blocks,
   three of them with a 1x1 downsample shortcut) and the TinyBERT proxy
   the real 8-matmuls-per-layer attention/FFN chain. Valid padding
   shrinks feature maps, so [Resize] glue nodes centre-crop / zero-pad
   between blocks to keep every stage's input at its nominal extent —
   the same role `same` padding plays in the reference models. *)

type builder = {
  mutable b_tensors : Graph_ir.tensor list; (* reversed *)
  mutable b_nodes : Graph_ir.node list; (* reversed *)
  mutable b_next_tensor : int;
  mutable b_next_node : int;
}

let make_builder () =
  { b_tensors = []; b_nodes = []; b_next_tensor = 0; b_next_node = 0 }

let add_tensor b ~name ~kind ~shape =
  let id = b.b_next_tensor in
  b.b_next_tensor <- id + 1;
  b.b_tensors <-
    { Graph_ir.tn_id = id; tn_name = name; tn_kind = kind; tn_shape = shape }
    :: b.b_tensors;
  id

let add_node b ~name ~op ~args ~out_name ~out_shape =
  let out =
    add_tensor b ~name:out_name ~kind:Graph_ir.Activation ~shape:out_shape
  in
  let id = b.b_next_node in
  b.b_next_node <- id + 1;
  b.b_nodes <-
    { Graph_ir.nd_id = id; nd_name = name; nd_op = op; nd_args = args; nd_out = out }
    :: b.b_nodes;
  out

let finish b ~name ~outputs =
  let g =
    {
      Graph_ir.g_name = name;
      g_tensors = Array.of_list (List.rev b.b_tensors);
      g_nodes = Array.of_list (List.rev b.b_nodes);
      g_outputs = outputs;
    }
  in
  match Graph_ir.validate g with
  | Ok () -> g
  | Error msg -> failwith (Printf.sprintf "graph builder bug (%s): %s" name msg)

let conv_out = Graph_ir.conv_out

(* One convolution: declares its weights tensor alongside the node. *)
let conv b ~name ~input ~ic ~hw ~oc ~fhw ~stride =
  let w =
    add_tensor b ~name:(name ^ ".w") ~kind:Graph_ir.Weights
      ~shape:[ oc; ic; fhw; fhw ]
  in
  let ohw = conv_out hw ~fhw ~stride in
  ( add_node b ~name ~op:(Graph_ir.Conv { stride }) ~args:[ input; w ]
      ~out_name:(name ^ ".out") ~out_shape:[ oc; ohw; ohw ],
    ohw )

let resize b ~name ~input ~shape =
  add_node b ~name ~op:Graph_ir.Resize ~args:[ input ] ~out_name:(name ^ ".out")
    ~out_shape:shape

(* A basic block at nominal extent [hw]:
   conv1 (3x3, [stride]) -> conv2 (3x3, s1) -> add the shortcut.
   [down] blocks double the channels with conv1 at stride 2 and take
   the shortcut through a 1x1 stride-2 projection; plain blocks use
   the identity shortcut. conv1's output feeds conv2 and nothing else —
   that edge is the accel->accel chaining opportunity. *)
let basic_block b ~name ~input ~ic ~hw ~oc ~down =
  let stride1 = if down then 2 else 1 in
  let c1, hw1 = conv b ~name:(name ^ ".conv1") ~input ~ic ~hw ~oc ~fhw:3 ~stride:stride1 in
  let c2, hw2 = conv b ~name:(name ^ ".conv2") ~input:c1 ~ic:oc ~hw:hw1 ~oc ~fhw:3 ~stride:1 in
  let shortcut =
    if down then
      fst (conv b ~name:(name ^ ".proj") ~input ~ic ~hw ~oc ~fhw:1 ~stride:2)
    else input
  in
  ( add_node b ~name:(name ^ ".add") ~op:Graph_ir.Residual_add
      ~args:[ c2; shortcut ] ~out_name:(name ^ ".out")
      ~out_shape:[ oc; hw2; hw2 ],
    hw2 )

let resnet18 ?(width = 8) () =
  if width < 1 then invalid_arg "Graph_build.resnet18: width must be >= 1";
  let b = make_builder () in
  let input = add_tensor b ~name:"image" ~kind:Graph_ir.Input ~shape:[ 3; 20; 20 ] in
  let stem, _ = conv b ~name:"stem" ~input ~ic:3 ~hw:20 ~oc:width ~fhw:7 ~stride:2 in
  (* stage nominal extents: 11 / 9 / 9 / 9 *)
  let stage b ~idx ~input ~ic ~hw ~oc ~down =
    let x =
      resize b ~name:(Printf.sprintf "stage%d.in" idx) ~input ~shape:[ ic; hw; hw ]
    in
    let y, _ =
      basic_block b
        ~name:(Printf.sprintf "stage%d.block1" idx)
        ~input:x ~ic ~hw ~oc ~down
    in
    let y =
      resize b ~name:(Printf.sprintf "stage%d.mid" idx) ~input:y ~shape:[ oc; hw; hw ]
    in
    basic_block b
      ~name:(Printf.sprintf "stage%d.block2" idx)
      ~input:y ~ic:oc ~hw ~oc ~down:false
  in
  let s1, _ = stage b ~idx:1 ~input:stem ~ic:width ~hw:11 ~oc:width ~down:false in
  let s2, _ = stage b ~idx:2 ~input:s1 ~ic:width ~hw:9 ~oc:(2 * width) ~down:true in
  let s3, _ = stage b ~idx:3 ~input:s2 ~ic:(2 * width) ~hw:9 ~oc:(4 * width) ~down:true in
  let s4, _ = stage b ~idx:4 ~input:s3 ~ic:(4 * width) ~hw:9 ~oc:(8 * width) ~down:true in
  finish b ~name:(Printf.sprintf "resnet18-w%d" width) ~outputs:[ s4 ]

let pad16 n = ((n + 15) / 16) * 16

let tinybert ?(seq = 32) ?(layers = 4) () =
  if seq < 1 then invalid_arg "Graph_build.tinybert: seq must be >= 1";
  if layers < 1 then invalid_arg "Graph_build.tinybert: layers must be >= 1";
  let seq = pad16 seq in
  let hidden = pad16 312 (* 320: TinyBERT's 312, padded to the v4 granularity *) in
  let ffn = 1200 in
  let b = make_builder () in
  let input =
    add_tensor b ~name:"embeddings" ~kind:Graph_ir.Input ~shape:[ seq; hidden ]
  in
  let weight name shape = add_tensor b ~name ~kind:Graph_ir.Weights ~shape in
  let matmul ~name ~a ~bt ~out_shape =
    add_node b ~name ~op:Graph_ir.Matmul ~args:[ a; bt ] ~out_name:(name ^ ".out")
      ~out_shape
  in
  let layer x i =
    let p fmt = Printf.ksprintf (fun s -> Printf.sprintf "layer%d.%s" i s) fmt in
    let proj name =
      matmul ~name:(p "%s" name) ~a:x
        ~bt:(weight (p "%s.w" name) [ hidden; hidden ])
        ~out_shape:[ seq; hidden ]
    in
    let q = proj "q" and k = proj "k" and v = proj "v" in
    let kt =
      add_node b ~name:(p "kT") ~op:Graph_ir.Transpose ~args:[ k ]
        ~out_name:(p "kT.out") ~out_shape:[ hidden; seq ]
    in
    let scores = matmul ~name:(p "scores") ~a:q ~bt:kt ~out_shape:[ seq; seq ] in
    let ctx = matmul ~name:(p "ctx") ~a:scores ~bt:v ~out_shape:[ seq; hidden ] in
    let proj_out =
      matmul ~name:(p "proj") ~a:ctx
        ~bt:(weight (p "proj.w") [ hidden; hidden ])
        ~out_shape:[ seq; hidden ]
    in
    let res1 =
      add_node b ~name:(p "res1") ~op:Graph_ir.Residual_add ~args:[ proj_out; x ]
        ~out_name:(p "res1.out") ~out_shape:[ seq; hidden ]
    in
    let ffn1 =
      matmul ~name:(p "ffn1") ~a:res1
        ~bt:(weight (p "ffn1.w") [ hidden; ffn ])
        ~out_shape:[ seq; ffn ]
    in
    let ffn2 =
      matmul ~name:(p "ffn2") ~a:ffn1
        ~bt:(weight (p "ffn2.w") [ ffn; hidden ])
        ~out_shape:[ seq; hidden ]
    in
    add_node b ~name:(p "res2") ~op:Graph_ir.Residual_add ~args:[ ffn2; res1 ]
      ~out_name:(p "res2.out") ~out_shape:[ seq; hidden ]
  in
  let out = ref input in
  for i = 1 to layers do
    out := layer !out i
  done;
  finish b
    ~name:(Printf.sprintf "tinybert-s%d-l%d" seq layers)
    ~outputs:[ !out ]

let of_name ?width name =
  match name with
  | "resnet18" -> Ok (resnet18 ?width ())
  | "tinybert" -> Ok (tinybert ())
  | other ->
    Error
      (Printf.sprintf "unknown graph model %S (expected resnet18 or tinybert)" other)
