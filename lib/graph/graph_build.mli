(** Whole-model proxy graphs.

    Scaled-down but structurally faithful builders for the paper's two
    models. Both run {!Graph_ir.validate} and raise on an internal
    inconsistency, so a returned graph is always well-formed. *)

val resnet18 : ?width:int -> unit -> Graph_ir.t
(** The 20-convolution ResNet-18 skeleton on a [3x20x20] input: stem
    (7x7, stride 2) then four stages of two basic blocks; stages 2-4
    open with a downsampling block (stride-2 conv1 plus a 1x1 stride-2
    projection shortcut). [width] (default 8) is the stage-1 channel
    count; later stages use 2/4/8x. [Resize] glue keeps each stage at
    its nominal extent (11/9/9/9) under valid padding. Each block's
    conv1->conv2 edge is single-consumer — the 8 accel->accel chaining
    opportunities the residency scheduler exploits. *)

val tinybert : ?seq:int -> ?layers:int -> unit -> Graph_ir.t
(** [layers] (default 4) transformer layers of 8 matmuls each
    (q/k/v/scores/ctx/proj/ffn1/ffn2) plus transpose and residual host
    ops; hidden 320 (TinyBERT's 312 padded to the v4 granularity 16),
    FFN 1200, [seq] (default 32) padded up to a multiple of 16. *)

val of_name : ?width:int -> string -> (Graph_ir.t, string) result
(** CLI entry: ["resnet18"] (honours [width]) or ["tinybert"]. *)
