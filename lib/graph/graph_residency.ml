let pass_name = "graph-residency"

type decision = {
  dc_node : int;
  dc_stationary : bool;
  dc_chain_in : bool;
  dc_keep_out : bool;
  dc_missed : (string * string) list;
}

type plan = {
  pl_batch : int;
  pl_residency : bool;
  pl_decisions : decision array;
}

let chained_edges p =
  Array.fold_left (fun acc d -> if d.dc_keep_out then acc + 1 else acc) 0 p.pl_decisions

let stationary_nodes p =
  Array.fold_left (fun acc d -> if d.dc_stationary then acc + 1 else acc) 0 p.pl_decisions

let fallback_nodes (g : Graph_ir.t) p =
  let n = ref 0 in
  Array.iteri
    (fun i nd ->
      let d = p.pl_decisions.(i) in
      if
        Graph_ir.is_accel nd.Graph_ir.nd_op
        && (not d.dc_stationary) && (not d.dc_chain_in) && not d.dc_keep_out
      then incr n)
    g.g_nodes;
  !n

let no_decision i =
  { dc_node = i; dc_stationary = false; dc_chain_in = false; dc_keep_out = false;
    dc_missed = [] }

let baseline ~batch (g : Graph_ir.t) =
  {
    pl_batch = batch;
    pl_residency = false;
    pl_decisions = Array.init (Array.length g.g_nodes) no_decision;
  }

(* The conv weight slice the driver loads per output channel. *)
let weight_slice_words (d : Graph_ir.conv_dims) = d.cd_ic * d.cd_fhw * d.cd_fhw

(* A chain candidate: conv output consumed by exactly one later conv as
   its image operand, and not itself a graph output the host must read. *)
let chain_candidate (g : Graph_ir.t) (nd : Graph_ir.node) =
  match nd.nd_op with
  | Graph_ir.Conv _ -> (
    if List.mem nd.nd_out g.g_outputs then None
    else
      match Graph_ir.consumers g nd.nd_out with
      | [ consumer ] -> (
        match (consumer.Graph_ir.nd_op, consumer.nd_args) with
        | Graph_ir.Conv _, arg0 :: _ when arg0 = nd.nd_out -> Some consumer
        | _ -> None)
      | _ -> None)
  | _ -> None

let schedule ~batch ~(device : Accel_device.t) (g : Graph_ir.t) =
  let n = Array.length g.g_nodes in
  let stationary = Array.make n false in
  let chain_in = Array.make n false in
  let keep_out = Array.make n false in
  let missed = Array.make n [] in
  let applied nd name args msg =
    Remarks.emit ~kind:Remarks.Applied ~pass:pass_name ~name ~loc:nd.Graph_ir.nd_name
      ~args msg
  in
  let miss i nd name reason =
    missed.(i) <- (name, reason) :: missed.(i);
    Remarks.emit ~kind:Remarks.Missed ~pass:pass_name ~name ~loc:nd.Graph_ir.nd_name
      reason
  in
  let w_region = Accel_device.find_region device "weights" in
  let act_region = Accel_device.find_region device "activations" in
  (* the activation image is single-tenant: a kept output occupies it
     until its consumer runs, so keep intervals must not overlap *)
  let act_busy_until = ref (-1) in
  Array.iteri
    (fun i nd ->
      match nd.Graph_ir.nd_op with
      | Graph_ir.Conv _ -> (
        let dims = Graph_ir.conv_dims g nd in
        let slice = weight_slice_words dims in
        (if batch > 1 then
           match w_region with
           | None ->
             miss i nd "weight-stationary" "device exposes no weights region"
           | Some r ->
             if slice <= r.Accel_device.rg_capacity_words then begin
               stationary.(i) <- true;
               applied nd "weight-stationary"
                 [ ("slice_words", Remarks.Int slice); ("batch", Remarks.Int batch) ]
                 (Printf.sprintf
                    "weight slice stays loaded across %d images (%d words/filter \
                     re-sent once instead of %d times)"
                    batch slice batch)
             end
             else
               miss i nd "weight-stationary"
                 (Printf.sprintf "weight slice %d words exceeds region capacity %d"
                    slice r.Accel_device.rg_capacity_words));
        match chain_candidate g nd with
        | None -> ()
        | Some consumer -> (
          let out_words = Graph_ir.words (Graph_ir.tensor g nd.nd_out) in
          if batch > 1 then
            miss i nd "chain-output"
              (Printf.sprintf "chaining is single-image (batch=%d)" batch)
          else
            match act_region with
            | None -> miss i nd "chain-output" "device exposes no activations region"
            | Some r ->
              if out_words > r.Accel_device.rg_capacity_words then
                miss i nd "chain-output"
                  (Printf.sprintf "output %d words exceeds region capacity %d"
                     out_words r.Accel_device.rg_capacity_words)
              else if i < !act_busy_until then
                miss i nd "chain-output"
                  "activation image busy with an earlier kept output"
              else begin
                keep_out.(i) <- true;
                chain_in.(consumer.Graph_ir.nd_id) <- true;
                act_busy_until := consumer.Graph_ir.nd_id;
                applied nd "chain-output"
                  [
                    ("words", Remarks.Int out_words);
                    ("consumer", Remarks.Str consumer.Graph_ir.nd_name);
                  ]
                  (Printf.sprintf
                     "output stays on the accelerator for %s (%d words never \
                      cross the bus)"
                     consumer.Graph_ir.nd_name out_words)
              end))
      | Graph_ir.Matmul ->
        if device.Accel_device.regions = [] then
          miss i nd "device-residency" "engine exposes no residency regions"
      | Graph_ir.Residual_add | Graph_ir.Resize | Graph_ir.Transpose -> ())
    g.g_nodes;
  let plan =
    {
      pl_batch = batch;
      pl_residency = true;
      pl_decisions =
        Array.init n (fun i ->
            {
              dc_node = i;
              dc_stationary = stationary.(i);
              dc_chain_in = chain_in.(i);
              dc_keep_out = keep_out.(i);
              dc_missed = List.rev missed.(i);
            });
    }
  in
  Metrics.incr "graph.nodes" ~by:(float_of_int n);
  Metrics.incr "graph.chained_edges" ~by:(float_of_int (chained_edges plan));
  Metrics.incr "graph.stationary_nodes" ~by:(float_of_int (stationary_nodes plan));
  Metrics.incr "graph.fallback_nodes" ~by:(float_of_int (fallback_nodes g plan));
  plan

let to_json (g : Graph_ir.t) p =
  let decision_json d =
    Json.Obj
      ([
         ("node", Json.Int d.dc_node);
         ("name", Json.String g.g_nodes.(d.dc_node).Graph_ir.nd_name);
         ("stationary", Json.Bool d.dc_stationary);
         ("chain_in", Json.Bool d.dc_chain_in);
         ("keep_out", Json.Bool d.dc_keep_out);
       ]
      @
      if d.dc_missed = [] then []
      else
        [
          ( "missed",
            Json.List
              (List.map
                 (fun (name, reason) ->
                   Json.Obj
                     [ ("name", Json.String name); ("reason", Json.String reason) ])
                 d.dc_missed) );
        ])
  in
  Json.Obj
    [
      ("batch", Json.Int p.pl_batch);
      ("residency", Json.Bool p.pl_residency);
      ("chained_edges", Json.Int (chained_edges p));
      ("stationary_nodes", Json.Int (stationary_nodes p));
      ("fallback_nodes", Json.Int (fallback_nodes g p));
      ( "decisions",
        Json.List (Array.to_list (Array.map decision_json p.pl_decisions)) );
    ]
