type tensor_kind = Input | Weights | Activation

type tensor = {
  tn_id : int;
  tn_name : string;
  tn_kind : tensor_kind;
  tn_shape : int list;
}

type op =
  | Conv of { stride : int }
  | Matmul
  | Residual_add
  | Resize
  | Transpose

type node = {
  nd_id : int;
  nd_name : string;
  nd_op : op;
  nd_args : int list;
  nd_out : int;
}

type t = {
  g_name : string;
  g_tensors : tensor array;
  g_nodes : node array;
  g_outputs : int list;
}

let kind_to_string = function
  | Input -> "input"
  | Weights -> "weights"
  | Activation -> "activation"

let op_name = function
  | Conv _ -> "conv"
  | Matmul -> "matmul"
  | Residual_add -> "residual_add"
  | Resize -> "resize"
  | Transpose -> "transpose"

let is_accel = function Conv _ | Matmul -> true | _ -> false

let tensor g id = g.g_tensors.(id)
let words tn = List.fold_left ( * ) 1 tn.tn_shape

let consumers g tid =
  Array.to_list g.g_nodes |> List.filter (fun nd -> List.mem tid nd.nd_args)

let producer g tid =
  let found = ref None in
  Array.iter (fun nd -> if nd.nd_out = tid then found := Some nd) g.g_nodes;
  !found

type conv_dims = {
  cd_ic : int;
  cd_ih : int;
  cd_iw : int;
  cd_oc : int;
  cd_fhw : int;
  cd_stride : int;
  cd_oh : int;
  cd_ow : int;
}

let conv_dims g nd =
  match (nd.nd_op, nd.nd_args) with
  | Conv { stride }, [ input; weights ] -> (
    match ((tensor g input).tn_shape, (tensor g weights).tn_shape, (tensor g nd.nd_out).tn_shape) with
    | [ ic; ih; iw ], [ oc; _; fh; _ ], [ _; oh; ow ] ->
      { cd_ic = ic; cd_ih = ih; cd_iw = iw; cd_oc = oc; cd_fhw = fh; cd_stride = stride;
        cd_oh = oh; cd_ow = ow }
    | _ -> failwith (Printf.sprintf "graph: %s: malformed conv shapes" nd.nd_name))
  | _ -> failwith (Printf.sprintf "graph: %s is not a conv node" nd.nd_name)

let matmul_dims g nd =
  match (nd.nd_op, nd.nd_args) with
  | Matmul, [ a; _b ] -> (
    match ((tensor g a).tn_shape, (tensor g nd.nd_out).tn_shape) with
    | [ m; k ], [ _; n ] -> (m, n, k)
    | _ -> failwith (Printf.sprintf "graph: %s: malformed matmul shapes" nd.nd_name))
  | _ -> failwith (Printf.sprintf "graph: %s is not a matmul node" nd.nd_name)

let node_macs g nd =
  match nd.nd_op with
  | Conv _ ->
    let d = conv_dims g nd in
    d.cd_oc * d.cd_oh * d.cd_ow * d.cd_ic * d.cd_fhw * d.cd_fhw
  | Matmul ->
    let m, n, k = matmul_dims g nd in
    m * n * k
  | Residual_add | Resize | Transpose -> 0

let macs g = Array.fold_left (fun acc nd -> acc + node_macs g nd) 0 g.g_nodes

let node_workload g nd =
  match nd.nd_op with
  | Conv { stride } ->
    let d = conv_dims g nd in
    Some
      (Tune_workload.Conv
         { ic = d.cd_ic; ih = d.cd_ih; iw = d.cd_iw; oc = d.cd_oc; fhw = d.cd_fhw; stride })
  | Matmul ->
    let m, n, k = matmul_dims g nd in
    Some (Tune_workload.Matmul { m; n; k })
  | Residual_add | Resize | Transpose -> None

(* Which accelerator a graph's offloaded nodes target. Mixed graphs are
   rejected: the simulated SoC attaches one engine per run. *)
let engine_kind g =
  let has_conv = ref false and has_mm = ref false in
  Array.iter
    (fun nd ->
      match nd.nd_op with
      | Conv _ -> has_conv := true
      | Matmul -> has_mm := true
      | _ -> ())
    g.g_nodes;
  match (!has_conv, !has_mm) with
  | true, true -> Error "graph mixes conv and matmul nodes (one engine per run)"
  | true, false -> Ok `Conv
  | false, true -> Ok `Matmul
  | false, false -> Error "graph has no accelerated nodes"

let conv_out edge ~fhw ~stride = ((edge - fhw) / stride) + 1

let validate g =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let n_tensors = Array.length g.g_tensors in
  let produced = Array.make n_tensors false in
  let rec check_nodes i =
    if i >= Array.length g.g_nodes then Ok ()
    else begin
      let nd = g.g_nodes.(i) in
      if nd.nd_id <> i then err "node %s: id %d out of order (expected %d)" nd.nd_name nd.nd_id i
      else if List.exists (fun a -> a < 0 || a >= n_tensors) (nd.nd_out :: nd.nd_args) then
        err "node %s: tensor id out of range" nd.nd_name
      else begin
        let out = tensor g nd.nd_out in
        let arg_ready a =
          match (tensor g a).tn_kind with
          | Activation -> produced.(a)
          | Input | Weights -> true
        in
        if out.tn_kind <> Activation then
          err "node %s: output %s is not an activation" nd.nd_name out.tn_name
        else if produced.(nd.nd_out) then
          err "node %s: output %s produced twice" nd.nd_name out.tn_name
        else if not (List.for_all arg_ready nd.nd_args) then
          err "node %s: uses an activation produced later (not topologically ordered)"
            nd.nd_name
        else
          let shapes = List.map (fun a -> (tensor g a).tn_shape) nd.nd_args in
          let shape_ok =
            match (nd.nd_op, shapes, out.tn_shape) with
            | Conv { stride }, [ [ ic; ih; iw ]; [ oc; wic; fh; fw ] ], [ ooc; oh; ow ] ->
              if stride < 1 then Error "stride must be >= 1"
              else if (tensor g (List.nth nd.nd_args 1)).tn_kind <> Weights then
                Error "conv second operand must be a weights tensor"
              else if wic <> ic then Error "filter input channels mismatch"
              else if fh <> fw then Error "square filters only"
              else if ih < fh || iw < fw then Error "input smaller than the filter"
              else if
                ooc <> oc
                || oh <> conv_out ih ~fhw:fh ~stride
                || ow <> conv_out iw ~fhw:fw ~stride
              then Error "output shape mismatch"
              else Ok ()
            | Matmul, [ [ m; k ]; [ k'; n ] ], [ om; on ] ->
              if k <> k' then Error "inner dimensions mismatch"
              else if om <> m || on <> n then Error "output shape mismatch"
              else Ok ()
            | Residual_add, [ x; y ], out_shape ->
              if List.length x <> List.length y then Error "rank mismatch"
              else if List.hd x <> List.hd y then Error "leading dimension mismatch"
              else if out_shape <> x then Error "output must take the first operand's shape"
              else Ok ()
            | Resize, [ src ], out_shape ->
              if List.length src <> 3 || List.length out_shape <> 3 then
                Error "resize is rank-3 only"
              else Ok ()
            | Transpose, [ [ m; n ] ], [ on; om ] ->
              if om <> m || on <> n then Error "output shape mismatch" else Ok ()
            | _ -> Error "operand count/rank mismatch"
          in
          match shape_ok with
          | Error msg -> err "node %s (%s): %s" nd.nd_name (op_name nd.nd_op) msg
          | Ok () ->
            produced.(nd.nd_out) <- true;
            check_nodes (i + 1)
      end
    end
  in
  match check_nodes 0 with
  | Error _ as e -> e
  | Ok () ->
    if g.g_outputs = [] then err "graph %s has no outputs" g.g_name
    else if
      List.exists (fun o -> o < 0 || o >= n_tensors || not produced.(o)) g.g_outputs
    then err "graph %s: an output tensor is never produced" g.g_name
    else Ok ()

let to_json g =
  let tensor_json tn =
    Json.Obj
      [
        ("id", Json.Int tn.tn_id);
        ("name", Json.String tn.tn_name);
        ("kind", Json.String (kind_to_string tn.tn_kind));
        ("shape", Json.List (List.map (fun d -> Json.Int d) tn.tn_shape));
      ]
  in
  let node_json nd =
    Json.Obj
      ([
         ("id", Json.Int nd.nd_id);
         ("name", Json.String nd.nd_name);
         ("op", Json.String (op_name nd.nd_op));
       ]
      @ (match nd.nd_op with
        | Conv { stride } -> [ ("stride", Json.Int stride) ]
        | _ -> [])
      @ [
          ("args", Json.List (List.map (fun a -> Json.Int a) nd.nd_args));
          ("out", Json.Int nd.nd_out);
        ])
  in
  Json.Obj
    [
      ("name", Json.String g.g_name);
      ("tensors", Json.List (Array.to_list (Array.map tensor_json g.g_tensors)));
      ("nodes", Json.List (Array.to_list (Array.map node_json g.g_nodes)));
      ("outputs", Json.List (List.map (fun o -> Json.Int o) g.g_outputs));
    ]
