(* The axi4mlir-graph-v1 artifact.

   Schema discipline is ADD-ONLY: tools parse these files across repo
   versions, so existing fields keep their names, meanings and value
   types forever; extensions add fields (or bump the schema string for
   a breaking redesign). The golden test pins the exact bytes for a
   fixed run, so an accidental rename/reorder fails loudly. *)

let schema = "axi4mlir-graph-v1"

let to_json (r : Graph_exec.result) =
  let c = r.Graph_exec.rs_counters in
  let node_json (s : Graph_exec.node_stat) =
    Json.Obj
      [
        ("id", Json.Int s.Graph_exec.ns_node);
        ("name", Json.String s.ns_name);
        ("op", Json.String s.ns_op);
        ("cycles", Json.Float s.ns_cycles);
        ("dma_words", Json.Float s.ns_dma_words);
        ("skipped_words", Json.Int s.ns_skipped_words);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("model", Json.String r.rs_graph.Graph_ir.g_name);
      ("batch", Json.Int r.rs_batch);
      ("residency", Json.Bool r.rs_plan.Graph_residency.pl_residency);
      ("graph", Graph_ir.to_json r.rs_graph);
      ("plan", Graph_residency.to_json r.rs_graph r.rs_plan);
      ( "totals",
        Json.Obj
          [
            ("cycles", Json.Float c.Perf_counters.cycles);
            ("dma_transactions", Json.Float c.Perf_counters.dma_transactions);
            ("dma_words_sent", Json.Float c.Perf_counters.dma_words_sent);
            ("dma_words_received", Json.Float c.Perf_counters.dma_words_received);
            ("dma_words_skipped", Json.Int r.rs_skipped_words);
            ("macs", Json.Int (Graph_ir.macs r.rs_graph));
          ] );
      ( "nodes",
        Json.List (Array.to_list (Array.map node_json r.rs_node_stats)) );
    ]

let render r = Json.to_string ~indent:1 (to_json r) ^ "\n"

let write r ~path =
  let oc = open_out_bin path in
  output_string oc (render r);
  close_out oc
