(* Whole-model executor.

   Runs a validated graph against one simulated SoC, either per-kernel
   (baseline: every node resets the engine and pays every transfer) or
   under a residency plan (see {!Graph_residency}). The conv driver is
   the manual Os-flow driver generalised with the two residency
   mechanisms; host ops (residual add / resize / transpose) charge the
   same cost in both modes, so any cycle or DMA-word difference between
   the two runs is attributable to the plan. *)

type node_stat = {
  ns_node : int;
  ns_name : string;
  ns_op : string;
  ns_cycles : float;
  ns_dma_words : float;
  ns_skipped_words : int;
}

type result = {
  rs_graph : Graph_ir.t;
  rs_plan : Graph_residency.plan;
  rs_batch : int;
  rs_counters : Perf_counters.t;
  rs_node_stats : node_stat array;
  rs_skipped_words : int;
  rs_outputs : (int * float array array) list;
}

let dma_words c =
  c.Perf_counters.dma_words_sent +. c.Perf_counters.dma_words_received

let result_dma_words r = dma_words r.rs_counters

(* Centre-mapped index: where output coordinate [i] of a [dst]-long
   dimension lands in a [src]-long one (negative / out of range means
   the zero-padding border). *)
let centre_map ~src ~dst i = i + ((src - dst) / 2)

let iter_coords shape f =
  let rank = List.length shape in
  let dims = Array.of_list shape in
  let coord = Array.make rank 0 in
  let rec go d = if d = rank then f (Array.to_list coord)
    else
      for i = 0 to dims.(d) - 1 do
        coord.(d) <- i;
        go (d + 1)
      done
  in
  go 0

let run ?(batch = 1) ~residency (g : Graph_ir.t) =
  if batch < 1 then invalid_arg "Graph_exec.run: batch must be >= 1";
  (match Graph_ir.validate g with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Graph_exec: invalid graph: %s" msg));
  let kind =
    match Graph_ir.engine_kind g with
    | Ok k -> k
    | Error msg -> failwith (Printf.sprintf "Graph_exec: %s" msg)
  in
  let accel =
    match kind with
    | `Conv -> Presets.conv ~flow:"Os" ()
    | `Matmul -> Presets.matmul ~version:Accel_matmul.V4 ~size:16 ()
  in
  let bench = Axi4mlir.create accel in
  let soc = bench.Axi4mlir.soc in
  let device = Dma_engine.device bench.Axi4mlir.engine in
  let plan =
    if residency then Graph_residency.schedule ~batch ~device g
    else Graph_residency.baseline ~batch g
  in
  (* Operand table: weights are shared across the batch, inputs and
     activations are per-image. Fills are label-seeded, so baseline and
     residency runs see identical data. *)
  let views : (int * int, Memref_view.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun tn ->
      match tn.Graph_ir.tn_kind with
      | Graph_ir.Weights ->
        let v = Axi4mlir.alloc_view bench ~label:tn.tn_name tn.tn_shape in
        for b = 0 to batch - 1 do
          Hashtbl.add views (tn.tn_id, b) v
        done
      | Graph_ir.Input ->
        for b = 0 to batch - 1 do
          let label = Printf.sprintf "%s#b%d" tn.tn_name b in
          Hashtbl.add views (tn.tn_id, b) (Axi4mlir.alloc_view bench ~label tn.tn_shape)
        done
      | Graph_ir.Activation ->
        for b = 0 to batch - 1 do
          let label = Printf.sprintf "%s#b%d" tn.tn_name b in
          Hashtbl.add views (tn.tn_id, b) (Axi4mlir.alloc_zero bench ~label tn.tn_shape)
        done)
    g.g_tensors;
  let view tid b = Hashtbl.find views (tid, b) in
  let n_nodes = Array.length g.g_nodes in
  let node_cycles = Array.make n_nodes 0.0 in
  let node_words = Array.make n_nodes 0.0 in
  let node_skipped = Array.make n_nodes 0 in
  let total_skipped = ref 0 in
  let lib = ref None in
  let the_lib () =
    match !lib with
    | Some l -> l
    | None ->
      let l =
        Dma_library.init soc ~dma_id:accel.Accel_config.dma.Accel_config.dma_id
          ~strategy:Dma_library.Specialized
      in
      lib := Some l;
      l
  in
  let skip i ~words ~what =
    Dma_library.skip_resident (the_lib ()) ~words ~what;
    node_skipped.(i) <- node_skipped.(i) + words;
    total_skipped := !total_skipped + words
  in
  (* --- the conv driver (manual Os flow + residency extensions) --- *)
  let send_two a bword =
    let l = the_lib () in
    let offset = Dma_library.stage_literal l a ~offset:0 in
    ignore (Dma_library.stage_literal l bword ~offset);
    Dma_library.flush_send l
  in
  let send_tile lit v =
    let l = the_lib () in
    Soc.alu soc 6;
    let offset = Dma_library.stage_literal l lit ~offset:0 in
    ignore
      (Dma_library.copy_to_dma_region_with l (Dma_library.manual_strategy v) v ~offset);
    Dma_library.flush_send l
  in
  let send_literals lits =
    let l = the_lib () in
    Soc.alu soc 6;
    let offset = ref 0 in
    List.iter (fun w -> offset := Dma_library.stage_literal l w ~offset:!offset) lits;
    Dma_library.flush_send l
  in
  let recv_tile v =
    let l = the_lib () in
    Soc.alu soc 6;
    ignore (Dma_library.stage_literal l Isa.cv_drain ~offset:0);
    Dma_library.flush_send l;
    let count = Memref_view.num_elements v in
    Dma_engine.start_recv (Dma_library.engine l) ~len_words:count;
    let data = Dma_engine.wait_recv (Dma_library.engine l) in
    Dma_library.copy_from_data_with l (Dma_library.manual_strategy v) v
      ~accumulate:false data
  in
  let loop count body =
    for i = 0 to count - 1 do
      Soc.loop_iteration soc;
      body i
    done
  in
  let run_conv nd (d : Graph_residency.decision) ~images =
    let dims = Graph_ir.conv_dims g nd in
    let input_id = List.nth nd.Graph_ir.nd_args 0 in
    let weights_id = List.nth nd.Graph_ir.nd_args 1 in
    let slice = dims.Graph_ir.cd_ic * dims.cd_fhw * dims.cd_fhw in
    let w_slice f =
      Memref_view.subview (view weights_id 0) ~offsets:[ f; 0; 0; 0 ]
        ~sizes:[ 1; dims.cd_ic; dims.cd_fhw; dims.cd_fhw ]
    in
    let patch b y x =
      Memref_view.subview (view input_id b)
        ~offsets:[ 0; dims.cd_stride * y; dims.cd_stride * x ]
        ~sizes:[ dims.cd_ic; dims.cd_fhw; dims.cd_fhw ]
    in
    let out_slice b f =
      Memref_view.subview (view nd.nd_out b) ~offsets:[ f; 0; 0 ]
        ~sizes:[ 1; dims.cd_oh; dims.cd_ow ]
    in
    if not residency then begin
      (* per-kernel: fresh engine state, every transfer explicit *)
      Dma_library.send_reset (the_lib ());
      send_two Isa.cv_set_fhw dims.cd_fhw;
      send_two Isa.cv_set_ic dims.cd_ic;
      List.iter
        (fun b ->
          loop dims.cd_oc (fun f ->
              send_tile Isa.cv_load_w (w_slice f);
              loop dims.cd_oh (fun y ->
                  loop dims.cd_ow (fun x -> send_tile Isa.cv_patch (patch b y x)));
              recv_tile (out_slice b f)))
        images
    end
    else begin
      let w_region = Accel_device.find_region device "weights" in
      let act_region = Accel_device.find_region device "activations" in
      send_two Isa.cv_set_fhw dims.cd_fhw;
      send_two Isa.cv_set_ic dims.cd_ic;
      if d.Graph_residency.dc_chain_in then
        send_two Isa.cv_set_stride dims.cd_stride;
      let ensure_slice f =
        match w_region with
        | None -> send_tile Isa.cv_load_w (w_slice f)
        | Some r -> (
          let tag = Printf.sprintf "w%d/f%d" weights_id f in
          match Accel_device.region_lookup r ~tag with
          | Some _ -> skip nd.nd_id ~words:(slice + 1) ~what:"weights"
          | None ->
            (* the engine holds one slice: single-tenant replacement *)
            (match Accel_device.region_replace r ~tag ~words:slice with
            | Ok _ -> ()
            | Error _ -> ());
            send_tile Isa.cv_load_w (w_slice f))
      in
      if d.dc_stationary then
        (* filter-major across the batch: each slice crosses once *)
        loop dims.cd_oc (fun f ->
            ensure_slice f;
            List.iter
              (fun b ->
                Soc.loop_iteration soc;
                loop dims.cd_oh (fun y ->
                    loop dims.cd_ow (fun x -> send_tile Isa.cv_patch (patch b y x)));
                recv_tile (out_slice b f))
              images)
      else
        List.iter
          (fun b ->
            if d.dc_chain_in then begin
              let in_tag = Printf.sprintf "t%d#b%d" input_id b in
              let in_words = Graph_ir.words (Graph_ir.tensor g input_id) in
              match act_region with
              | Some r when Accel_device.region_lookup r ~tag:in_tag <> None ->
                skip nd.nd_id ~words:in_words ~what:"chain"
              | _ ->
                failwith
                  (Printf.sprintf
                     "Graph_exec: %s expects a resident input but %s is not on the \
                      device (plan/executor desync)"
                     nd.nd_name in_tag)
            end;
            loop dims.cd_oc (fun f ->
                ensure_slice f;
                loop dims.cd_oh (fun y ->
                    loop dims.cd_ow (fun x ->
                        if d.dc_chain_in then
                          send_literals
                            [ Isa.cv_patch_resident; y; x ]
                        else send_tile Isa.cv_patch (patch b y x)));
                if not d.dc_keep_out then recv_tile (out_slice b f));
            if d.dc_keep_out then begin
              send_literals
                [ Isa.cv_accept; dims.cd_oc; dims.cd_oh; dims.cd_ow ];
              let out_words = Graph_ir.words (Graph_ir.tensor g nd.nd_out) in
              let out_tag = Printf.sprintf "t%d#b%d" nd.nd_out b in
              match act_region with
              | Some r -> (
                match Accel_device.region_replace r ~tag:out_tag ~words:out_words with
                | Ok _ -> skip nd.nd_id ~words:out_words ~what:"chain-output"
                | Error msg ->
                  failwith (Printf.sprintf "Graph_exec: %s: %s" nd.nd_name msg))
              | None ->
                failwith
                  (Printf.sprintf
                     "Graph_exec: %s keeps its output but the device has no \
                      activations region"
                     nd.nd_name)
            end)
          images
    end
  in
  (* --- matmul nodes: the real compile+interpret pipeline --- *)
  let compiled : (string, Ir.op * Axi4mlir.codegen_options) Hashtbl.t =
    Hashtbl.create 8
  in
  let best_options ~m ~n ~k =
    match Heuristics.best accel ~m ~n ~k with
    | Some c ->
      {
        Axi4mlir.default_codegen with
        flow = Some c.Heuristics.flow;
        tiles = Some [ c.Heuristics.tm; c.Heuristics.tn; c.Heuristics.tk ];
      }
    | None -> Axi4mlir.default_codegen
  in
  let run_matmul nd b =
    let m, n, k = Graph_ir.matmul_dims g nd in
    let key = Printf.sprintf "%d,%d,%d" m n k in
    let ir, options =
      match Hashtbl.find_opt compiled key with
      | Some v -> v
      | None ->
        let options = best_options ~m ~n ~k in
        let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
        Hashtbl.add compiled key (ir, options);
        (ir, options)
    in
    let a = view (List.nth nd.Graph_ir.nd_args 0) b in
    let bv = view (List.nth nd.nd_args 1) b in
    let c = view nd.nd_out b in
    Axi4mlir.run_matmul bench ~options ir ~a ~b:bv ~c
  in
  (* --- host ops (same charges in both modes) --- *)
  let run_residual nd b =
    let x = view (List.nth nd.Graph_ir.nd_args 0) b in
    let y = view (List.nth nd.nd_args 1) b in
    let out = view nd.nd_out b in
    let xs = x.Memref_view.shape and ys = y.Memref_view.shape in
    let offs = List.map2 (fun sd dd -> (sd - dd) / 2) ys xs in
    iter_coords xs (fun coord ->
        let src = List.map2 ( + ) coord offs in
        let inside = List.for_all2 (fun i d -> i >= 0 && i < d) src ys in
        let yv = if inside then Memref_view.get y src else 0.0 in
        Memref_view.set out coord (Memref_view.get x coord +. yv));
    let n = Memref_view.num_elements out in
    Soc.charge_l1_hits soc (3 * n);
    Soc.fpu soc n;
    Soc.branch soc n
  in
  let run_resize nd b =
    let src = view (List.nth nd.Graph_ir.nd_args 0) b in
    let out = view nd.nd_out b in
    let ss = src.Memref_view.shape and os = out.Memref_view.shape in
    iter_coords os (fun coord ->
        let sc = List.map2 (fun i (sd, dd) -> centre_map ~src:sd ~dst:dd i) coord
            (List.combine ss os)
        in
        let inside = List.for_all2 (fun i d -> i >= 0 && i < d) sc ss in
        Memref_view.set out coord (if inside then Memref_view.get src sc else 0.0));
    let n = Memref_view.num_elements out in
    Soc.charge_l1_hits soc (2 * n);
    Soc.alu soc n
  in
  let run_transpose nd b =
    let src = view (List.nth nd.Graph_ir.nd_args 0) b in
    let out = view nd.nd_out b in
    (match src.Memref_view.shape with
    | [ m; n ] ->
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          Memref_view.set out [ j; i ] (Memref_view.get src [ i; j ])
        done
      done
    | _ -> failwith "Graph_exec: transpose is rank-2 only");
    let n = Memref_view.num_elements out in
    Soc.charge_l1_hits soc (2 * n);
    Soc.alu soc n
  in
  let snap () =
    let c = soc.Soc.counters in
    (c.Perf_counters.cycles, dma_words c)
  in
  let with_stats i f =
    let c0, w0 = snap () in
    f ();
    let c1, w1 = snap () in
    node_cycles.(i) <- node_cycles.(i) +. (c1 -. c0);
    node_words.(i) <- node_words.(i) +. (w1 -. w0)
  in
  let exec_node nd ~images =
    let d = plan.Graph_residency.pl_decisions.(nd.Graph_ir.nd_id) in
    match nd.Graph_ir.nd_op with
    | Graph_ir.Conv _ -> run_conv nd d ~images
    | Graph_ir.Matmul -> List.iter (run_matmul nd) images
    | Graph_ir.Residual_add -> List.iter (run_residual nd) images
    | Graph_ir.Resize -> List.iter (run_resize nd) images
    | Graph_ir.Transpose -> List.iter (run_transpose nd) images
  in
  let counters =
    Axi4mlir.measure bench (fun () ->
        if residency then begin
          (match kind with
          | `Conv -> Dma_library.send_reset (the_lib ())
          | `Matmul -> ());
          (* node-major: a node sees the whole batch before the next *)
          let all = List.init batch (fun b -> b) in
          Array.iter
            (fun nd -> with_stats nd.Graph_ir.nd_id (fun () -> exec_node nd ~images:all))
            g.g_nodes
        end
        else
          (* image-major: one full per-kernel forward pass per image *)
          for b = 0 to batch - 1 do
            Array.iter
              (fun nd ->
                with_stats nd.Graph_ir.nd_id (fun () -> exec_node nd ~images:[ b ]))
              g.g_nodes
          done)
  in
  (match !lib with Some l -> Dma_library.free l | None -> ());
  let outputs =
    List.map
      (fun tid ->
        (tid, Array.init batch (fun b -> Memref_view.to_array (view tid b))))
      g.g_outputs
  in
  {
    rs_graph = g;
    rs_plan = plan;
    rs_batch = batch;
    rs_counters = counters;
    rs_node_stats =
      Array.init n_nodes (fun i ->
          {
            ns_node = i;
            ns_name = g.g_nodes.(i).Graph_ir.nd_name;
            ns_op = Graph_ir.op_name g.g_nodes.(i).Graph_ir.nd_op;
            ns_cycles = node_cycles.(i);
            ns_dma_words = node_words.(i);
            ns_skipped_words = node_skipped.(i);
          });
    rs_skipped_words = !total_skipped;
    rs_outputs = outputs;
  }

(* Bit-level equality: deep models can saturate to inf/nan, and
   structural [=] reports [nan <> nan] even when the two runs produced
   the exact same bytes. Comparing the IEEE-754 bit patterns is the
   comparison the "bit-identity" gate actually advertises. *)
let float_array_bits_equal (x : float array) (y : float array) =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  Array.iteri
    (fun i v ->
      if Int64.bits_of_float v <> Int64.bits_of_float y.(i) then ok := false)
    x;
  !ok

let outputs_equal a b =
  List.length a.rs_outputs = List.length b.rs_outputs
  && List.for_all2
       (fun (ta, xs) (tb, ys) ->
         ta = tb
         && Array.length xs = Array.length ys
         && Array.for_all2 float_array_bits_equal xs ys)
       a.rs_outputs b.rs_outputs
