(** Whole-model graph IR.

    A graph is a topologically ordered list of layer invocations
    (nodes) over a flat tensor table. Tensors are either model inputs,
    weights (constant across images of a batch) or activations
    (produced by exactly one node). Edges are implicit: node [nd] reads
    the tensors in [nd_args] and writes [nd_out], so a tensor id shared
    between one node's [nd_out] and another's [nd_args] is a dataflow
    edge — the thing the residency scheduler reasons about when it
    decides to keep a producer's output resident on the accelerator for
    its consumer.

    Ops are the minimal set the ResNet-18 and TinyBERT proxies need:
    [Conv] and [Matmul] are offloaded to the simulated engines;
    [Residual_add], [Resize] (shape glue between stages under valid
    padding) and [Transpose] run on the host. A graph targets exactly
    one engine kind — see {!engine_kind}. *)

type tensor_kind = Input | Weights | Activation

type tensor = {
  tn_id : int;
  tn_name : string;
  tn_kind : tensor_kind;
  tn_shape : int list;  (** conv activations [[c; h; w]], conv weights
                            [[oc; ic; fh; fw]], matmul [[rows; cols]] *)
}

type op =
  | Conv of { stride : int }
      (** valid padding, square filters; args = [[input; weights]] *)
  | Matmul  (** args = [[a; b]], [a : m*k], [b : k*n] *)
  | Residual_add
      (** args = [[x; y]]; output takes [x]'s shape, [y] is
          centre-cropped / zero-padded to match (host op) *)
  | Resize  (** rank-3 centre crop / zero pad to the output shape (host op) *)
  | Transpose  (** rank-2 transpose (host op) *)

type node = {
  nd_id : int;  (** equals the node's index in [g_nodes] *)
  nd_name : string;
  nd_op : op;
  nd_args : int list;
  nd_out : int;
}

type t = {
  g_name : string;
  g_tensors : tensor array;
  g_nodes : node array;  (** topological order; [validate] checks it *)
  g_outputs : int list;  (** activation ids the host must read back *)
}

val kind_to_string : tensor_kind -> string
val op_name : op -> string

val is_accel : op -> bool
(** Whether the op is offloaded to an accelerator engine. *)

val tensor : t -> int -> tensor
val words : tensor -> int

val consumers : t -> int -> node list
(** Nodes reading tensor [tid], in node order. *)

val producer : t -> int -> node option
(** The node writing tensor [tid] ([None] for inputs/weights). *)

type conv_dims = {
  cd_ic : int;
  cd_ih : int;
  cd_iw : int;
  cd_oc : int;
  cd_fhw : int;
  cd_stride : int;
  cd_oh : int;
  cd_ow : int;
}

val conv_dims : t -> node -> conv_dims
(** Raises on non-conv nodes. *)

val matmul_dims : t -> node -> int * int * int
(** [(m, n, k)]; raises on non-matmul nodes. *)

val node_macs : t -> node -> int
val macs : t -> int

val node_workload : t -> node -> Tune_workload.t option
(** The node as a tuning workload ([None] for host ops) — the bridge
    into {!Heuristics} and the serving oracle's cost proxies. *)

val engine_kind : t -> ([ `Conv | `Matmul ], string) result
(** The single engine this graph targets; [Error] for mixed or
    engine-free graphs. *)

val conv_out : int -> fhw:int -> stride:int -> int

val validate : t -> (unit, string) result
(** Structural and shape checking: ids in range and in topological
    order, activations produced exactly once before use, per-op shape
    rules, outputs produced. Builders run this; executors may assume
    it. *)

val to_json : t -> Json.t
(** Stable structural dump, embedded in the [axi4mlir-graph-v1]
    artifact. *)
