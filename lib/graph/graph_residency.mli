(** The residency scheduler pass.

    Walks a validated graph in topological order against one
    accelerator device and decides, per node, which transfers the
    executor may elide:

    - {e weight-stationary} ([dc_stationary], batch > 1 only): the node
      is driven filter-major across the whole batch, so each weight
      slice is loaded once per batch instead of once per image. Fires
      when the slice fits the device's ["weights"] region.
    - {e accel->accel chaining} ([dc_keep_out] on the producer /
      [dc_chain_in] on the consumer, batch = 1 only): a conv output
      with exactly one consumer — a later conv reading it as its image
      operand — stays in the device's ["activations"] region
      ([Isa.cv_accept]) and the consumer streams patch {e coordinates}
      ([Isa.cv_patch_resident]) instead of patch data; the intermediate
      tensor never crosses the bus in either direction. The image slot
      is single-tenant, so keep intervals must not overlap, and graph
      outputs are never kept (the host must read them).

    Every fired decision emits an [Applied] remark and every blocked
    opportunity a [Missed] remark with the reason, both under the
    ["graph-residency"] pass; the pass also bumps the [graph.nodes],
    [graph.chained_edges], [graph.stationary_nodes] and
    [graph.fallback_nodes] counters. Devices without regions (the
    matmul engines) plan as all-fallback — the executor then behaves
    exactly like the per-kernel path. *)

val pass_name : string
(** ["graph-residency"] — the pass every scheduler remark is filed
    under. *)

type decision = {
  dc_node : int;
  dc_stationary : bool;
  dc_chain_in : bool;
  dc_keep_out : bool;
  dc_missed : (string * string) list;  (** (remark name, reason) *)
}

type plan = {
  pl_batch : int;
  pl_residency : bool;  (** false for {!baseline} plans *)
  pl_decisions : decision array;  (** indexed by node id *)
}

val baseline : batch:int -> Graph_ir.t -> plan
(** The per-kernel plan: no residency, every transfer explicit. *)

val schedule : batch:int -> device:Accel_device.t -> Graph_ir.t -> plan
(** The residency plan for [device] (emits remarks and metrics as
    described above). *)

val chained_edges : plan -> int
val stationary_nodes : plan -> int

val fallback_nodes : Graph_ir.t -> plan -> int
(** Accelerated nodes with no residency decision at all. *)

val to_json : Graph_ir.t -> plan -> Json.t
