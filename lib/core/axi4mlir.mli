(** AXI4MLIR, end to end: the convenience facade a user starts from.

    Typical use (see [examples/quickstart.ml]):

    {[
      let accel = Presets.matmul ~version:Accel_matmul.V3 ~size:16 ~flow:"Cs" () in
      let bench = Axi4mlir.create accel in
      let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m:64 ~n:64 ~k:64 in
      let ir = Axi4mlir.compile_matmul bench ~m:64 ~n:64 ~k:64 () in
      Axi4mlir.run_matmul bench ir ~a ~b ~c;
      Printf.printf "%.3f ms\n" (Soc.now_ms bench.soc)
    ]}

    Everything here is a thin composition of the underlying libraries
    (configs, IR builders, pass pipelines, interpreter, SoC models),
    all of which remain directly usable. *)

type t = {
  soc : Soc.t;
  host : Host_config.t;
  accel : Accel_config.t;
  engine : Dma_engine.t;
}

val create : ?host:Host_config.t -> Accel_config.t -> t
(** Build a fresh simulated SoC (default host: {!Host_config.pynq_z2}),
    instantiate the configured accelerator and attach its DMA engine. *)

(** {1 Input construction} *)

val alloc_view : t -> label:string -> int list -> Memref_view.t
(** Allocate a buffer of the given shape in simulated memory, filled
    with deterministic pseudo-random data. *)

val alloc_zero : t -> label:string -> int list -> Memref_view.t
(** As {!alloc_view} but zero-initialised, for callers (the fuzzer)
    that supply their own operand data via {!Memref_view.fill_from}. *)

val alloc_matmul_operands :
  t -> m:int -> n:int -> k:int -> Memref_view.t * Memref_view.t * Memref_view.t
(** A(m,k), B(k,n) random; C(m,n) zero. *)

val alloc_conv_operands :
  ?stride:int ->
  t ->
  n:int ->
  ic:int ->
  ih:int ->
  iw:int ->
  oc:int ->
  fh:int ->
  fw:int ->
  Memref_view.t * Memref_view.t * Memref_view.t
(** I, W random; O zero (valid padding, the given stride). *)

(** {1 IR construction} *)

val build_matmul_module : ?func_name:string -> m:int -> n:int -> k:int -> unit -> Ir.op
(** A module with one function [@func_name(%A, %B, %C)] containing a
    [linalg.generic] matmul (default name ["matmul_call"]). *)

val build_conv_module :
  ?func_name:string ->
  ?stride:int ->
  n:int ->
  ic:int ->
  ih:int ->
  iw:int ->
  oc:int ->
  fh:int ->
  fw:int ->
  unit ->
  Ir.op

(** {1 Compilation} *)

type codegen_options = {
  flow : string option;  (** override the config's selected flow *)
  tiles : int list option;  (** flexible-engine tile override *)
  cpu_tiling : bool;
  copy_specialization : bool;
  coalesce_transfers : bool;  (** Sec. V: merge send chains into one DMA transaction *)
  double_buffer : bool;  (** Sec. V: ping-pong asynchronous input transfers *)
  to_runtime_calls : bool;
}

val default_codegen : codegen_options

val compile :
  t ->
  ?options:codegen_options ->
  ?stats:Pass.pass_stat list ref ->
  ?tracer:Trace.t ->
  Ir.op ->
  Ir.op
(** Run the AXI4MLIR pipeline on a module. Raises
    {!Pass.Pass_failure} if a pass breaks verification. [stats]
    collects per-pass timing/op-count records; [tracer] receives
    compile-track events (see {!Pass.run_pipeline}). *)

val compile_matmul : t -> ?options:codegen_options -> m:int -> n:int -> k:int -> unit -> Ir.op

val compile_cpu :
  ?stats:Pass.pass_stat list ref -> ?tracer:Trace.t -> Ir.op -> Ir.op
(** The mlir_CPU lowering (linalg -> loops). *)

(** {1 Observability} *)

val enable_tracing : t -> Trace.t
(** Switch the SoC's tracer on (it is created disabled) and return it.
    From then on DMA transfers, runtime-library copies, accelerator
    busy intervals and interpreter function spans are recorded against
    the simulated cycle clock. Note {!measure} clears recorded events
    when it resets the run state. *)

val tracer : t -> Trace.t
(** The SoC's tracer (enabled or not). *)

(** {1 Execution} *)

val sole_func_name : Ir.op -> string
(** The name of the module's single function; fails if there is not
    exactly one. *)

val run_func :
  t -> ?copy_strategy:Dma_library.strategy -> Ir.op -> string -> Interp.value list -> unit
(** Interpret a function of a compiled module on this SoC. *)

val run_matmul :
  t ->
  ?options:codegen_options ->
  Ir.op ->
  a:Memref_view.t ->
  b:Memref_view.t ->
  c:Memref_view.t ->
  unit
(** Invoke the module's single function on three memref arguments. The
    accel-dialect level (when [to_runtime_calls] was false) honours
    [options.copy_specialization] through the interpreter's copy
    strategy. *)

val measure : t -> (unit -> unit) -> Perf_counters.t
(** Reset the SoC run state, run the thunk, and return a snapshot of
    the counters. *)

val task_clock_ms : t -> Perf_counters.t -> float
