type t = {
  soc : Soc.t;
  host : Host_config.t;
  accel : Accel_config.t;
  engine : Dma_engine.t;
}

let create ?(host = Host_config.pynq_z2) accel =
  Dialects.register_all ();
  let soc = Soc.create ~cache_geometries:host.Host_config.caches () in
  let engine = Accel_config.attach soc accel in
  { soc; host; accel; engine }

let alloc_view t ~label shape =
  let n = List.fold_left ( * ) 1 shape in
  let buf = Sim_memory.alloc t.soc.Soc.memory ~label n in
  Gold.fill_deterministic ~seed:(Hashtbl.hash label) buf.Sim_memory.data;
  Memref_view.of_buffer buf shape

let alloc_zero t ~label shape =
  let n = List.fold_left ( * ) 1 shape in
  let buf = Sim_memory.alloc t.soc.Soc.memory ~label n in
  Memref_view.of_buffer buf shape

let alloc_matmul_operands t ~m ~n ~k =
  ( alloc_view t ~label:"A" [ m; k ],
    alloc_view t ~label:"B" [ k; n ],
    alloc_zero t ~label:"C" [ m; n ] )

let alloc_conv_operands ?(stride = 1) t ~n ~ic ~ih ~iw ~oc ~fh ~fw =
  let oh = Gold.conv_out ih ~fhw:fh ~stride and ow = Gold.conv_out iw ~fhw:fw ~stride in
  ( alloc_view t ~label:"I" [ n; ic; ih; iw ],
    alloc_view t ~label:"W" [ oc; ic; fh; fw ],
    alloc_zero t ~label:"O" [ n; oc; oh; ow ] )

let build_matmul_module ?(func_name = "matmul_call") ~m ~n ~k () =
  let a_ty = Ty.memref [ m; k ] Ty.F32 in
  let b_ty = Ty.memref [ k; n ] Ty.F32 in
  let c_ty = Ty.memref [ m; n ] Ty.F32 in
  let f =
    Func.func_op ~name:func_name ~args:[ a_ty; b_ty; c_ty ] (fun b args ->
        match args with
        | [ a; bv; c ] ->
          ignore (Linalg.matmul b ~a ~b:bv ~c);
          Func.return_op b []
        | _ -> assert false)
  in
  Ir.module_op [ f ]

let build_conv_module ?(func_name = "conv_call") ?(stride = 1) ~n ~ic ~ih ~iw ~oc ~fh ~fw () =
  let oh = Gold.conv_out ih ~fhw:fh ~stride and ow = Gold.conv_out iw ~fhw:fw ~stride in
  let i_ty = Ty.memref [ n; ic; ih; iw ] Ty.F32 in
  let w_ty = Ty.memref [ oc; ic; fh; fw ] Ty.F32 in
  let o_ty = Ty.memref [ n; oc; oh; ow ] Ty.F32 in
  let f =
    Func.func_op ~name:func_name ~args:[ i_ty; w_ty; o_ty ] (fun b args ->
        match args with
        | [ input; filter; output ] ->
          ignore (Linalg.conv_2d_nchw_fchw ~stride b ~input ~filter ~output);
          Func.return_op b []
        | _ -> assert false)
  in
  Ir.module_op [ f ]

type codegen_options = {
  flow : string option;
  tiles : int list option;
  cpu_tiling : bool;
  copy_specialization : bool;
  coalesce_transfers : bool;
  double_buffer : bool;
  to_runtime_calls : bool;
}

let default_codegen =
  {
    flow = None;
    tiles = None;
    cpu_tiling = true;
    copy_specialization = true;
    coalesce_transfers = false;
    double_buffer = false;
    to_runtime_calls = true;
  }

let pipeline_of t options =
  let match_options =
    {
      Match_annotate.flow = options.flow;
      tile_override = options.tiles;
      cpu_tiling = options.cpu_tiling;
      double_buffer = options.double_buffer;
      on_skip = Some (fun reason -> failwith ("AXI4MLIR: cannot offload: " ^ reason));
    }
  in
  Pipeline.make ~accel:t.accel ~host:t.host ~options:match_options
    ~copy_specialization:options.copy_specialization
    ~coalesce_transfers:options.coalesce_transfers
    ~to_runtime_calls:options.to_runtime_calls ()

let compile t ?(options = default_codegen) ?stats ?tracer m =
  Pipeline.run ?stats ?tracer (pipeline_of t options) m

let compile_matmul t ?(options = default_codegen) ~m ~n ~k () =
  compile t ~options (build_matmul_module ~m ~n ~k ())

let compile_cpu ?stats ?tracer m = Pipeline.run_cpu ?stats ?tracer m

let enable_tracing t = Soc.enable_tracing t.soc
let tracer t = t.soc.Soc.tracer

let sole_func_name m =
  match List.filter Func.is_func (Ir.module_body m) with
  | [ f ] -> Func.name_of f
  | fs ->
    failwith (Printf.sprintf "expected exactly one function in the module, found %d"
                (List.length fs))

let run_func t ?copy_strategy m name args =
  let interp = Interp.create ?copy_strategy t.soc m in
  ignore (Interp.invoke interp name args)

let run_matmul t ?(options = default_codegen) m ~a ~b ~c =
  let copy_strategy =
    if options.copy_specialization then Dma_library.Specialized else Dma_library.Generic
  in
  run_func t ~copy_strategy m (sole_func_name m) [ Interp.M a; Interp.M b; Interp.M c ]

let measure t thunk =
  Soc.reset_run_state t.soc;
  thunk ();
  (* Reported task_clock is the makespan: the host's own clock extended
     to cover any DMA/accelerator agent still busy past it. Identity
     for blocking runs (the timeline is empty there). *)
  Soc.absorb_makespan t.soc;
  Perf_counters.copy t.soc.Soc.counters

let task_clock_ms t counters =
  Perf_counters.task_clock_ms counters ~cpu_freq_mhz:t.host.Host_config.frequency_mhz
