(* Latency accounting, the rendered comparison table, the
   axi4mlir-serve-v1 artifact and the Perfetto export. *)

type dist = {
  d_mean : float;
  d_p50 : float;
  d_p95 : float;
  d_p99 : float;
  d_max : float;
}

(* Nearest-rank percentile: the ceil(p/100 * n)-th smallest sample. *)
let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (float_of_int p /. 100.0 *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let dist_of xs =
  match xs with
  | [] -> { d_mean = 0.0; d_p50 = 0.0; d_p95 = 0.0; d_p99 = 0.0; d_max = 0.0 }
  | _ ->
    {
      d_mean = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs);
      d_p50 = percentile 50 xs;
      d_p95 = percentile 95 xs;
      d_p99 = percentile 99 xs;
      d_max = List.fold_left Float.max neg_infinity xs;
    }

type accel_row = {
  ar_id : int;
  ar_engine : string;
  ar_busy : float;
  ar_util : float;
  ar_requests : int;
  ar_dispatches : int;
}

type summary = {
  sm_policy : Serve_policy.t;
  sm_requests : int;
  sm_completed : int;
  sm_rejected : int;
  sm_dispatches : int;
  sm_makespan : float;
  sm_throughput_rps : float option;
  sm_utilization : float option;
  sm_latency : dist;
  sm_queue : dist;
  sm_accels : accel_row list;
}

(* Engine preset names by accelerator index. Absent [engines] means
   the pre-platform homogeneous fleet: every slot is the default
   v4_16. A short [engines] list falls back the same way. *)
let default_engine = "v4_16"

let engine_at engines i =
  match engines with
  | None -> default_engine
  | Some names -> ( match List.nth_opt names i with Some e -> e | None -> default_engine)

let summarize ?engines ~freq_mhz policy (o : Serve_sim.outcome) =
  let completed = o.Serve_sim.oc_completed in
  let latencies =
    List.map
      (fun (r : Serve_sim.request_stat) -> r.Serve_sim.rs_finish -. r.rs_arrival)
      completed
  in
  let queues =
    List.map
      (fun (r : Serve_sim.request_stat) -> r.Serve_sim.rs_start -. r.rs_arrival)
      completed
  in
  let makespan = o.oc_makespan in
  let util busy = if makespan > 0.0 then busy /. makespan else 0.0 in
  let accels =
    List.map
      (fun (a : Serve_sim.accel_stat) ->
        {
          ar_id = a.Serve_sim.ac_id;
          ar_engine = engine_at engines a.Serve_sim.ac_id;
          ar_busy = a.ac_busy;
          ar_util = util a.ac_busy;
          ar_requests = a.ac_requests;
          ar_dispatches = a.ac_dispatches;
        })
      o.oc_accels
  in
  (* A run in which nothing completed has no makespan to divide by:
     rates and utilizations are undefined (rendered "n/a"), not 0. *)
  let mean_util =
    match accels with
    | _ when makespan <= 0.0 -> None
    | [] -> None
    | _ ->
      Some
        (List.fold_left (fun acc a -> acc +. a.ar_util) 0.0 accels
        /. float_of_int (List.length accels))
  in
  let throughput =
    if makespan > 0.0 then
      Some (float_of_int (List.length completed) /. (makespan /. (freq_mhz *. 1e6)))
    else None
  in
  {
    sm_policy = policy;
    sm_requests = List.length completed + List.length o.oc_rejected;
    sm_completed = List.length completed;
    sm_rejected = List.length o.oc_rejected;
    sm_dispatches = o.oc_dispatches;
    sm_makespan = makespan;
    sm_throughput_rps = throughput;
    sm_utilization = mean_util;
    sm_latency = dist_of latencies;
    sm_queue = dist_of queues;
    sm_accels = accels;
  }

type t = {
  rp_workloads : string list;
  rp_seed : int;
  rp_rps : float;
  rp_requests : int;
  rp_accels : int;
  rp_queue_cap : int option;
  rp_batch_max : int;
  rp_freq_mhz : float;
  rp_platform : string option;
  rp_summaries : summary list;
}

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render rp =
  let to_ms c = c /. (rp.rp_freq_mhz *. 1000.0) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "serving %d requests (%s) at %.1f req/s over %d accelerator(s), seed %d%s\n"
       rp.rp_requests
       (String.concat "+" rp.rp_workloads)
       rp.rp_rps rp.rp_accels rp.rp_seed
       (match rp.rp_queue_cap with
       | None -> ""
       | Some cap -> Printf.sprintf ", queue cap %d" cap));
  (match rp.rp_platform with
  | None -> ()
  | Some p -> Buffer.add_string buf (Printf.sprintf "platform: %s\n" p));
  let t =
    Tabulate.create
      [
        ("policy", Tabulate.Left);
        ("done", Tabulate.Right);
        ("rej", Tabulate.Right);
        ("kernels", Tabulate.Right);
        ("makespan", Tabulate.Right);
        ("req/s", Tabulate.Right);
        ("util", Tabulate.Right);
        ("p50 ms", Tabulate.Right);
        ("p95 ms", Tabulate.Right);
        ("p99 ms", Tabulate.Right);
      ]
  in
  List.iter
    (fun s ->
      Tabulate.add_row t
        [
          Serve_policy.to_string s.sm_policy;
          string_of_int s.sm_completed;
          string_of_int s.sm_rejected;
          string_of_int s.sm_dispatches;
          Tabulate.fmt_ms (to_ms s.sm_makespan);
          (match s.sm_throughput_rps with
          | None -> "n/a"
          | Some rps -> Printf.sprintf "%.1f" rps);
          (match s.sm_utilization with
          | None -> "n/a"
          | Some u -> Tabulate.fmt_pct u);
          Tabulate.fmt_ms (to_ms s.sm_latency.d_p50);
          Tabulate.fmt_ms (to_ms s.sm_latency.d_p95);
          Tabulate.fmt_ms (to_ms s.sm_latency.d_p99);
        ])
    rp.rp_summaries;
  let table = Tabulate.render t in
  Buffer.add_string buf table;
  if not (String.length table > 0 && table.[String.length table - 1] = '\n') then
    Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      List.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf
               "  %-5s accel%d [%s]: %s busy, %d request(s) in %d kernel(s)\n"
               (Serve_policy.to_string s.sm_policy)
               a.ar_id a.ar_engine (Tabulate.fmt_pct a.ar_util) a.ar_requests
               a.ar_dispatches))
        s.sm_accels)
    rp.rp_summaries;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Telemetry dashboard                                                 *)
(* ------------------------------------------------------------------ *)

let spark_width = 64

let render_dashboard ?(slos = []) ~policy tel =
  let ts = Serve_telemetry.timeseries tel in
  let n = Timeseries.n_windows ts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "-- %s telemetry: %d window(s) x %.0f cycles --\n"
       (Serve_policy.to_string policy) n
       (Serve_telemetry.window_width tel));
  if n = 0 then Buffer.add_string buf "  (nothing recorded)\n"
  else begin
    let row label curve stat =
      Buffer.add_string buf
        (Printf.sprintf "  %-12s |%s| %s\n" label
           (Timeseries.sparkline ~width:spark_width curve)
           stat)
    in
    let peak curve =
      Array.fold_left
        (fun m v -> match v with Some v when v > m -> v | _ -> m)
        0.0 curve
    in
    let last curve =
      Array.fold_left (fun acc v -> match v with Some _ -> v | None -> acc) None curve
    in
    let rate label series =
      let curve = Timeseries.values ts series in
      row label curve
        (Printf.sprintf "total %.0f, peak %.0f/window" (Timeseries.total ts series)
           (peak curve))
    in
    let level label series =
      let curve = Timeseries.values ts series in
      row label curve (Printf.sprintf "peak %.0f" (peak curve))
    in
    rate "arrivals" Serve_telemetry.s_arrivals;
    rate "completions" Serve_telemetry.s_completions;
    rate "rejections" Serve_telemetry.s_rejections;
    rate "kernels" Serve_telemetry.s_kernels;
    level "queue depth" Serve_telemetry.s_queue;
    level "in flight" Serve_telemetry.s_in_flight;
    let p99 =
      Timeseries.dist_rolling_percentile ts Serve_telemetry.s_latency ~p:99 ~windows:4
    in
    row "p99 latency" p99
      (match last p99 with
      | None -> "no samples"
      | Some v -> Printf.sprintf "last %.0f cycles (rolling x4)" v);
    let width = Serve_telemetry.window_width tel in
    for a = 0 to Serve_telemetry.accels tel - 1 do
      let curve = Serve_telemetry.busy_fraction tel a in
      let mean =
        Timeseries.total ts (Serve_telemetry.busy_series a)
        /. (width *. float_of_int n)
      in
      row (Printf.sprintf "accel%d busy" a) curve
        (Printf.sprintf "mean %.1f%%" (100.0 *. mean))
    done
  end;
  List.iter (fun ev -> Buffer.add_string buf (Slo.render ev)) slos;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The axi4mlir-serve-v1 artifact (add-only schema)                    *)
(* ------------------------------------------------------------------ *)

let dist_json d =
  Json.Obj
    [
      ("mean", Json.Float d.d_mean);
      ("p50", Json.Float d.d_p50);
      ("p95", Json.Float d.d_p95);
      ("p99", Json.Float d.d_p99);
      ("max", Json.Float d.d_max);
    ]

let summary_json s =
  Json.Obj
    [
      ("policy", Json.String (Serve_policy.to_string s.sm_policy));
      ("requests", Json.Int s.sm_requests);
      ("completed", Json.Int s.sm_completed);
      ("rejected", Json.Int s.sm_rejected);
      ("dispatches", Json.Int s.sm_dispatches);
      ("makespan_cycles", Json.Float s.sm_makespan);
      (* undefined rates serialize as 0, keeping the v1 field types —
         and existing golden bytes — unchanged *)
      ("throughput_rps", Json.Float (Option.value ~default:0.0 s.sm_throughput_rps));
      ("utilization", Json.Float (Option.value ~default:0.0 s.sm_utilization));
      ("latency_cycles", dist_json s.sm_latency);
      ("queue_cycles", dist_json s.sm_queue);
      ( "accels",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("id", Json.Int a.ar_id);
                   ("busy_cycles", Json.Float a.ar_busy);
                   ("utilization", Json.Float a.ar_util);
                   ("requests", Json.Int a.ar_requests);
                   ("dispatches", Json.Int a.ar_dispatches);
                   (* appended under the add-only rule *)
                   ("engine", Json.String a.ar_engine);
                 ])
             s.sm_accels) );
    ]

let to_json rp =
  Json.Obj
    [
      ("schema", Json.String "axi4mlir-serve-v1");
      ("workloads", Json.List (List.map (fun w -> Json.String w) rp.rp_workloads));
      ("seed", Json.Int rp.rp_seed);
      ("rps", Json.Float rp.rp_rps);
      ("requests", Json.Int rp.rp_requests);
      ("accels", Json.Int rp.rp_accels);
      ( "queue_cap",
        match rp.rp_queue_cap with None -> Json.Null | Some c -> Json.Int c );
      ("batch_max", Json.Int rp.rp_batch_max);
      ("cpu_freq_mhz", Json.Float rp.rp_freq_mhz);
      ("policies", Json.List (List.map summary_json rp.rp_summaries));
      (* appended under the add-only rule: the platform description's
         one-line summary, Null for a plain --accels run *)
      ( "platform",
        match rp.rp_platform with None -> Json.Null | Some p -> Json.String p );
    ]

let write_file path rp =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:1 (to_json rp));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)
(* ------------------------------------------------------------------ *)

let annotate_trace tracer (o : Serve_sim.outcome) =
  (* one slice per dispatch: completed stats repeat the dispatch per
     batch member, so dedupe on (accel, start) *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (r : Serve_sim.request_stat) ->
      let key = (r.Serve_sim.rs_accel, r.rs_start) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Trace.complete tracer ~cat:"serve"
          ~track:(Trace.serve_accel_track r.rs_accel)
          ~args:[ ("model", Trace.Str r.rs_model); ("batch", Trace.Int r.rs_batch) ]
          ~ts:r.rs_start
          ~dur:(r.rs_finish -. r.rs_start)
          (Printf.sprintf "%s x%d" r.rs_model r.rs_batch)
      end)
    o.Serve_sim.oc_completed;
  List.iter
    (fun (r : Serve_sim.request_stat) ->
      Trace.complete tracer ~cat:"serve_request" ~track:Trace.serve_request_track
        ~args:
          [
            ("model", Trace.Str r.Serve_sim.rs_model);
            ("accel", Trace.Int r.rs_accel);
            ("batch", Trace.Int r.rs_batch);
            ("queue_cycles", Trace.Num (r.rs_start -. r.rs_arrival));
          ]
        ~ts:r.rs_arrival
        ~dur:(r.rs_finish -. r.rs_arrival)
        (Printf.sprintf "req%03d %s" r.rs_id r.rs_model))
    o.oc_completed

let track_names (o : Serve_sim.outcome) =
  (Trace.serve_request_track, "requests")
  :: List.map
       (fun (a : Serve_sim.accel_stat) ->
         (Trace.serve_accel_track a.Serve_sim.ac_id,
          Printf.sprintf "accel%d" a.ac_id))
       o.Serve_sim.oc_accels

let write_trace ?telemetry ~freq_mhz path (o : Serve_sim.outcome) =
  let tracer = Trace.create () in
  Trace.enable tracer;
  annotate_trace tracer o;
  let names = track_names o in
  let names =
    match telemetry with
    | None -> names
    | Some tel ->
      Serve_telemetry.annotate_trace tel tracer;
      names @ [ (Trace.serve_telemetry_track, "telemetry") ]
  in
  Chrome_trace.write_file ~cpu_freq_mhz:freq_mhz ~track_names:names path
    (Trace.events tracer)
