(** The serving scheduler: dispatch a request stream across K
    accelerator instances on the simulated clock.

    Built on {!Timeline}: each accelerator instance is a timeline
    agent, a dispatch is one [Timeline.schedule] call (so the makespan
    and event log come from the same deterministic machinery the async
    DMA paths use), and every time-keeping decision is pure arithmetic
    on the simulated cycle clock — no wall time anywhere.

    The event loop is work-conserving by construction: whenever any
    request is queued, the earliest-free accelerator (ties broken by
    lowest index) is given work at
    [max (free time) (earliest queued arrival)]. The policy only
    chooses {e which} queued request(s) that accelerator takes — see
    {!Serve_policy}. Admission control is optional: with
    [sp_queue_cap = Some c], a request arriving while [c] or more
    admitted requests are still in flight (queued or executing) is
    rejected instead of queued.

    Invariants the test suite enforces (see [test/suite_serve.ml]):

    - {e conservation}: every generated request is completed or
      rejected, exactly once;
    - {e work conservation}: no accelerator has an idle gap that
      overlaps any completed request's queueing window
      [[arrival, start)];
    - {e FIFO order}: under [Fifo], each accelerator serves requests
      in arrival order;
    - {e accounting}: the per-accelerator busy cycles each fit inside
      the makespan, so their sum is at most [makespan * K]. *)

type params = {
  sp_accels : int;  (** accelerator instances; [>= 1] *)
  sp_policy : Serve_policy.t;
  sp_queue_cap : int option;
      (** max admitted-but-unfinished requests; [None] = unbounded *)
  sp_batch_max : int;
      (** max requests coalesced per [Batch] dispatch; [>= 1];
          ignored by [Fifo]/[Sjf] (always 1) *)
}

type request_stat = {
  rs_id : int;
  rs_model : string;
  rs_arrival : float;
  rs_accel : int;  (** serving accelerator index *)
  rs_batch : int;  (** size of the dispatch this request rode in *)
  rs_start : float;  (** service start (shared by the whole batch) *)
  rs_finish : float;  (** service finish (shared by the whole batch) *)
}

type rejection = { rj_id : int; rj_model : string; rj_arrival : float }

type accel_stat = {
  ac_id : int;
  ac_busy : float;  (** cycles spent serving *)
  ac_dispatches : int;  (** kernel invocations *)
  ac_requests : int;  (** requests served (>= dispatches under Batch) *)
}

type outcome = {
  oc_completed : request_stat list;  (** sorted by [rs_id] *)
  oc_rejected : rejection list;  (** sorted by [rj_id] *)
  oc_accels : accel_stat list;  (** by [ac_id] *)
  oc_makespan : float;  (** latest service finish; [0] if nothing ran *)
  oc_dispatches : int;
}

val validate : params -> (unit, string) result

val run :
  ?telemetry:Serve_telemetry.t ->
  ?service_at:(accel:int -> string -> batch:int -> float) ->
  ?predict_at:(accel:int -> string -> float) ->
  service:(string -> batch:int -> float) ->
  predict:(string -> float) ->
  params ->
  Serve_request.t list ->
  (outcome, string) result
(** Serve the stream to completion. [service model ~batch] is the
    cycles one dispatch costs (must be positive — a zero-cost kernel
    would let the loop spin without advancing time); [predict model]
    is the SJF ranking key. Both are injectable so property tests can
    drive the scheduler with synthetic oracles; production callers
    pass {!Serve_cost.service}/{!Serve_cost.predict}. [Error] on
    invalid params or a non-positive service time.

    [service_at] / [predict_at] make the fleet {e heterogeneous}: when
    given, the dispatch site uses [f ~accel:idx] for the instance the
    work-conserving rule just selected, so each slot can carry a
    different engine (a {!Platform_ir} instance list). SJF ranking and
    batch fair-share sizing then use the {e serving instance}'s
    predictions. When absent, the uniform [service]/[predict] are used
    unchanged — a homogeneous platform run takes the identical code
    path and produces a bit-identical outcome.

    [telemetry], when given, receives every arrival, rejection,
    dispatch and completion as it happens on the simulated clock
    ({!Serve_telemetry}); when absent each hook site is one match on
    an immediate — the zero-cost-when-disabled discipline of
    {!Trace}/{!Metrics}. Recording never influences scheduling, so an
    observed run's outcome is bit-identical to an unobserved one. *)
