(** Scheduling policies for the inference-serving simulator.

    All three policies are work-conserving — an accelerator never sits
    idle while a dispatchable request is queued — they differ only in
    {e which} queued request(s) the freed accelerator takes next:

    - [Fifo]: strict arrival order. The baseline every serving system
      starts from; long requests head-of-line-block short ones.
    - [Sjf]: shortest predicted job first, where the prediction comes
      from the same analytic cost model the tuner's greedy strategy
      ranks candidates with ({!Heuristics.best}'s [predicted_cycles]).
      Mis-prediction cannot deadlock anything: a wrong estimate only
      reorders the queue.
    - [Batch]: same-shape batching. Queued requests for the same model
      are coalesced into one kernel invocation with a batched leading
      dimension, so the DMA bring-up and any stationary-operand reuse
      are amortised across the group — the only policy that changes
      the total amount of simulated work, not just its order. *)

type t = Fifo | Sjf | Batch

val all : t list
(** In presentation order: [[Fifo; Sjf; Batch]]. *)

val to_string : t -> string
(** ["fifo"], ["sjf"], ["batch"] — the CLI names. *)

val describe : t -> string
(** One-line description for listings. *)

val of_string : string -> (t, string) result
(** Case-insensitive parse of a CLI name; [Error] lists the valid
    policies. *)
