(** The serving simulator's service-time oracle.

    Maps a model name to the simulated cycles one invocation costs, by
    running every layer of the model through the {e real}
    compile+simulate pipeline (the same path the bench experiments
    measure) — matmul layers on the flexible v4_16 engine under the
    [Best] heuristic's flow/tile choice, conv layers on the Conv2D
    engine under the [Os] flow with copy specialisation. Results are
    memoised per (layer, batch), so a serving run pays for each
    distinct kernel once no matter how many requests invoke it.

    Batching semantics ([batch > 1]): the batch's requests share the
    model, so a batched invocation runs each layer with a batched
    leading dimension — matmul [m -> batch * m] (the stationary [B]
    operand, the weights, is shared across the batch), conv
    [n -> batch] images. This is the mechanism by which the [Batch]
    policy reduces total work: DMA bring-up is paid once per batched
    kernel and stationary-operand transfers are amortised.

    Whole-model names expand through {!Tune_workload}: ["resnet18"] is
    the row-sampled convolution proxy list (the Fig. 16 sampling) and
    ["tinybert"] the distinct padded MatMul shape classes — one kernel
    per shape class, the Fig. 17 class-sampling, so a "model" here is
    the per-class representative work, not the full multiplied layer
    count. Any single-kernel spec ([matmul:M,N,K], [conv:...]) is also
    a valid model. *)

type t

val models_of_specs :
  ?rows:int ->
  ?seq:int ->
  string list ->
  ((string * Tune_workload.named list) list, string) result
(** Resolve CLI workload specs to named models with their layer lists.
    [rows] is the ResNet-18 row-sampling depth (default 2), [seq] the
    TinyBERT sequence length (default 128). The result preserves order
    and repeats (a repeated spec weights the request mix). [Error]
    names the offending spec. *)

val default_matmul_accel : unit -> Accel_config.t
(** The engine used when [create] gets no [matmul_accel]: the flexible
    v4_16 preset — the configuration every pre-platform serving run
    used. *)

val create :
  ?matmul_accel:Accel_config.t ->
  ?graphs:(string * Graph_ir.t) list ->
  ?graph_residency:bool ->
  (string * Tune_workload.named list) list ->
  t
(** An oracle over the given models, with an empty memo table.

    [matmul_accel] is the matmul engine this oracle costs with
    (default {!default_matmul_accel}) — a heterogeneous platform
    builds one oracle per distinct engine configuration. The conv
    engine is not configurable: every instance carries the same
    Sec. IV-D sidecar.

    [graphs] adds {e whole-model} entries: a request for such a model
    costs a full {!Graph_exec} forward pass (every layer, dataflow
    edges and all) rather than a per-shape-class layer sum —
    [graph_residency] (default true) selects the residency-planned
    execution. Graph names shadow nothing: they are looked up before
    the layer-list models. *)

val matmul_accel : t -> Accel_config.t
(** The engine configuration this oracle was created with. *)

val models : t -> string list
(** The model names, in [create] order (repeats preserved; graph
    models last). *)

val memo_stats : t -> int * int
(** [(hits, misses)] of the memo table across {!service} and
    {!predict} calls — also exported as the [serve.oracle_hits] /
    [serve.oracle_misses] metrics counters. Memo keys carry the
    engine-config fingerprint ({!Benchdiff.config_hash}) and the
    workload's canonical dimension list, so results can never leak
    across configurations or shape aliases. *)

val service : t -> string -> batch:int -> float
(** Measured cycles for one invocation of the model serving [batch]
    coalesced requests (see batching semantics above). Memoised.
    Raises [Failure] for an unknown model, a non-positive batch, or a
    workload the pipeline rejects (the message names the layer). *)

val service_parts : t -> string -> batch:int -> float * float
(** [(cycles, dma_words)] for one invocation: the same measured cycles
    as {!service}, plus the total DMA words the run moved
    (send + receive perf counters). The words let a platform model
    split a service time into its compute and transfer shares — the
    share a wider AXI beat or a contended DMA channel scales.
    Memoised under the same key as {!service}. *)

val predict : t -> string -> float
(** Cheap analytic estimate of [service ~batch:1], for the SJF policy:
    {!Heuristics.best}'s [predicted_cycles] for matmul layers, a
    MAC-count proxy for conv layers. Never runs the pipeline. *)
