(** Windowed telemetry for the serving simulator: what {!Serve_sim}
    records when a run is observed, and the four ways it surfaces —
    the ASCII dashboard ({!Serve_report.render_dashboard}), Perfetto
    counter tracks ({!annotate_trace}), the [axi4mlir-telemetry-v1]
    JSON artifact ({!write_file}) and the {!Slo} evaluations.

    A collector wraps one {!Timeseries.t} with a fixed series schema:

    - [arrivals], [completions], [rejections], [kernels] — {!Timeseries.Sum}
      event counts per window ([arrivals] counts every {e offered}
      request, admitted or not; [completions] land in the window of
      their finish time);
    - [queue_depth], [in_flight] — {!Timeseries.Max} level signals
      sampled at every dispatch decision;
    - [latency] — a distribution of per-request arrival-to-finish
      cycles, observed at finish time (so per-window and rolling p99
      are exact nearest-rank values);
    - [accel<i>_busy] — busy cycles per window per accelerator
      instance (service intervals are split across the windows they
      overlap, so a window's busy fraction is its value / width).

    {!Serve_sim.run} takes the collector as [?telemetry]; when absent,
    the scheduler pays nothing (the same zero-cost discipline as
    {!Trace} and {!Metrics}). Recording never influences scheduling.

    {2 The [axi4mlir-telemetry-v1] artifact}

    COMPATIBILITY RULE (same as [axi4mlir-serve-v1]): the schema is
    {e add-only} — new fields may be appended to any object; existing
    fields must never be renamed, re-typed, reordered or removed. A
    golden test under [test/golden/] pins the rendering byte for byte;
    bump the schema string if a breaking change is ever unavoidable. *)

type t

val create : window:float -> accels:int -> (t, string) result
(** A collector with the given window width in simulated cycles;
    [Error] when the width is not positive or [accels < 1]. *)

val window_width : t -> float

val accels : t -> int

val timeseries : t -> Timeseries.t
(** The underlying collector, for direct series access (dashboard
    rendering, tests). *)

(** The series names, exported so readers (dashboard, tests) never
    drift from the recording side. Part of the telemetry-v1 schema. *)

val s_arrivals : string
val s_completions : string
val s_rejections : string
val s_kernels : string
val s_queue : string
val s_in_flight : string
val s_latency : string

val busy_series : int -> string
(** [busy_series i] = ["accel<i>_busy"]. *)

(** {1 Recording hooks (called by {!Serve_sim})} *)

val on_arrival : t -> at:float -> unit
(** Every offered request, at its arrival time (before admission). *)

val on_reject : t -> at:float -> unit

val on_dispatch :
  t -> at:float -> accel:int -> start:float -> finish:float -> queue:int -> in_flight:int -> unit
(** One kernel dispatch: bumps [kernels] at the decision time [at],
    samples [queue_depth] (post-removal backlog) and [in_flight], and
    spreads the service interval [[start, finish]] over the
    [accel<i>_busy] windows it overlaps. *)

val on_complete : t -> finish:float -> latency:float -> unit
(** One request completion, in the window of its finish time. *)

(** {1 Views} *)

val busy_fraction : t -> int -> float option array
(** Per-window busy fraction of one accelerator instance
    (busy cycles / window width, in [[0, 1]]). *)

val totals : t -> (string * float) list
(** Whole-run reconciliation totals, in schema order: [arrivals],
    [completions], [rejections], [kernels] — each must equal the
    corresponding {!Serve_sim.outcome} count ({!Serve_report} and the
    bench gate check this exactly). *)

val slo_data : t -> Slo.spec -> Slo.window_data array
(** Per-window event counts against an objective: latency objectives
    read the [latency] distribution (bad = samples above the limit),
    availability objectives read [arrivals]/[rejections] (bad =
    rejected). *)

val evaluate : ?fire:float -> ?resolve:float -> t -> Slo.spec list -> Slo.eval list
(** {!Slo.evaluate} over {!slo_data} for each spec. *)

(** {1 Export} *)

val annotate_trace : t -> Trace.t -> unit
(** Emit one Perfetto counter sample per populated window onto
    {!Trace.serve_telemetry_track}: queue depth, in-flight count,
    per-window arrival/completion/rejection counts, rolling p99
    latency and per-accelerator busy fraction. *)

val to_json : (string * t * Slo.eval list) list -> Json.t
(** The [axi4mlir-telemetry-v1] document over per-policy collectors:
    schema string, then one entry per policy carrying its window
    width, series (dense per-window values), totals and SLO
    evaluations. *)

val write_file : string -> (string * t * Slo.eval list) list -> unit
(** [Json.to_string ~indent:1] plus a trailing newline — the
    byte-stable rendering the golden test pins. *)
