(** Serving-run accounting: latency distributions, the rendered
    per-policy comparison table, the byte-stable [axi4mlir-serve-v1]
    JSON artifact, and the Perfetto trace export.

    {2 The [axi4mlir-serve-v1] artifact}

    COMPATIBILITY RULE (same as [axi4mlir-critpath-v1]): the schema is
    {e add-only}. New fields may be appended to any object; existing
    fields must never be renamed, re-typed, reordered or removed —
    a golden test under [test/golden/] pins the rendering byte for
    byte. If a breaking change is ever unavoidable, bump the schema
    string. *)

type dist = {
  d_mean : float;
  d_p50 : float;
  d_p95 : float;
  d_p99 : float;
  d_max : float;
}

val percentile : int -> float list -> float
(** Nearest-rank percentile ([percentile 99 xs] = the smallest value
    with at least 99% of the samples at or below it); [0.] on the
    empty list. *)

val dist_of : float list -> dist

type accel_row = {
  ar_id : int;
  ar_engine : string;
      (** Table I engine preset name on this slot (["v4_16"] for the
          pre-platform homogeneous fleet) *)
  ar_busy : float;  (** cycles serving *)
  ar_util : float;  (** busy / makespan; [0.] for an empty run *)
  ar_requests : int;
  ar_dispatches : int;
}

type summary = {
  sm_policy : Serve_policy.t;
  sm_requests : int;  (** offered (generated) requests *)
  sm_completed : int;
  sm_rejected : int;
  sm_dispatches : int;  (** kernel invocations (< completed under Batch) *)
  sm_makespan : float;  (** cycles *)
  sm_throughput_rps : float option;
      (** completed per wall second at [freq_mhz]; [None] when nothing
          completed (no makespan to divide by — rendered "n/a", 0 in
          the JSON artifact to keep the v1 field type) *)
  sm_utilization : float option;
      (** mean accelerator utilization; [None] on an empty run *)
  sm_latency : dist;  (** per-request arrival-to-finish cycles *)
  sm_queue : dist;  (** per-request arrival-to-start cycles *)
  sm_accels : accel_row list;
}

val summarize :
  ?engines:string list ->
  freq_mhz:float ->
  Serve_policy.t ->
  Serve_sim.outcome ->
  summary
(** [engines] names the engine on each accelerator slot, by index (a
    platform's {!Platform_ir.instance_names}); absent (or too short),
    slots default to the homogeneous fleet's ["v4_16"]. *)

type t = {
  rp_workloads : string list;  (** the CLI specs, repeats preserved *)
  rp_seed : int;
  rp_rps : float;  (** offered load, requests per second *)
  rp_requests : int;
  rp_accels : int;
  rp_queue_cap : int option;
  rp_batch_max : int;
  rp_freq_mhz : float;
  rp_platform : string option;
      (** the platform description's one-line summary when the run was
          instantiated from one ([axi4mlir_serve --platform]); [None]
          for a plain [--accels] run. Serialized as the add-only
          ["platform"] field of the artifact. *)
  rp_summaries : summary list;
}

val render : t -> string
(** The per-policy comparison table plus per-accelerator utilization
    rows, as printed by [axi4mlir_serve --report]. *)

val render_dashboard :
  ?slos:Slo.eval list -> policy:Serve_policy.t -> Serve_telemetry.t -> string
(** The ASCII telemetry dashboard printed by [axi4mlir_serve
    --dashboard]: one sparkline row per series (arrival/completion/
    rejection/kernel rates, queue depth, in-flight count, rolling p99
    latency, per-accelerator busy fraction), each scaled to its own
    maximum, followed by one {!Slo.render} block per evaluation. *)

val to_json : t -> Json.t
(** The [axi4mlir-serve-v1] document (see the compatibility rule). *)

val write_file : string -> t -> unit
(** [Json.to_string ~indent:1] plus a trailing newline — the
    byte-stable rendering the golden test pins. *)

(** {2 Perfetto export} *)

val annotate_trace : Trace.t -> Serve_sim.outcome -> unit
(** Record the outcome onto an enabled tracer: one Complete slice per
    dispatch on its accelerator's {!Trace.serve_accel_track}, and one
    per-request lifetime span (arrival to finish, with queueing time
    and batch in the args) on {!Trace.serve_request_track}. *)

val track_names : Serve_sim.outcome -> (int * string) list
(** Thread-name metadata for {!Chrome_trace.write_file}. *)

val write_trace :
  ?telemetry:Serve_telemetry.t -> freq_mhz:float -> string -> Serve_sim.outcome -> unit
(** Write a standalone Chrome trace of the outcome to a path. With
    [telemetry], the per-window counter curves ride along on
    {!Trace.serve_telemetry_track} as Perfetto counter tracks. *)
