(** Deterministic request streams for the serving simulator.

    A stream is a Poisson-ish arrival process on the simulated cycle
    clock: inter-arrival gaps are exponentially distributed with a
    configurable mean, and each request picks a model uniformly from
    the stream's model list (repeat a name to weight the mix).

    Determinism follows {!Fuzz_rng}'s stream discipline: request [i]
    draws from its own splitmix64 stream [derive ~seed ~index:i], so
    the stream is identical across runs, insensitive to how many draws
    any one request consumes, and any request can be regenerated in
    isolation. *)

type t = {
  rq_id : int;  (** 0-based position; arrival order, the FIFO key *)
  rq_arrival : float;  (** arrival time in simulated host cycles *)
  rq_model : string;  (** model name, resolved by {!Serve_cost} *)
}

type stream = {
  st_seed : int;
  st_count : int;
  st_mean_gap : float;  (** mean inter-arrival gap in cycles; [> 0] *)
  st_models : string list;
      (** uniform choice per request; repeats weight the mix *)
}

val generate : stream -> (t list, string) result
(** The stream's requests in arrival order ([rq_arrival] is
    non-decreasing and [rq_id] increasing). [Error] on a negative
    count, a non-positive mean gap or an empty model list. *)
