(* Scheduling policies for the serving simulator. *)

type t = Fifo | Sjf | Batch

let all = [ Fifo; Sjf; Batch ]

let to_string = function Fifo -> "fifo" | Sjf -> "sjf" | Batch -> "batch"

let describe = function
  | Fifo -> "dispatch in strict arrival order"
  | Sjf -> "shortest predicted job first (cost-model estimate)"
  | Batch -> "coalesce same-model requests into one batched kernel"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fifo" -> Ok Fifo
  | "sjf" -> Ok Sjf
  | "batch" -> Ok Batch
  | other ->
    Error
      (Printf.sprintf "unknown scheduling policy %S (valid policies: %s)" other
         (String.concat ", " (List.map to_string all)))
