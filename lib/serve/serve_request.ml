(* Deterministic Poisson-ish request streams (splitmix64-seeded). *)

type t = { rq_id : int; rq_arrival : float; rq_model : string }

type stream = {
  st_seed : int;
  st_count : int;
  st_mean_gap : float;
  st_models : string list;
}

(* [Fuzz_rng.bits] yields 62 non-negative bits; (bits + 1) / 2^62 is
   uniform on (0, 1], so [-mean * log u] is a finite exponential gap
   (u = 1 gives gap 0, never an infinity). *)
let two_pow_62 = 4611686018427387904.0

let generate s =
  if s.st_count < 0 then
    Error (Printf.sprintf "request count must be non-negative (got %d)" s.st_count)
  else if not (s.st_mean_gap > 0.0) then
    Error
      (Printf.sprintf "mean inter-arrival gap must be positive (got %g cycles)"
         s.st_mean_gap)
  else if s.st_models = [] then Error "request stream needs at least one model"
  else begin
    let arrival = ref 0.0 in
    Ok
      (List.init s.st_count (fun i ->
           let rng = Fuzz_rng.derive ~seed:s.st_seed ~index:i in
           let u = (float_of_int (Fuzz_rng.bits rng) +. 1.0) /. two_pow_62 in
           let gap = -.(s.st_mean_gap *. log u) in
           let model = Fuzz_rng.pick rng s.st_models in
           arrival := !arrival +. gap;
           { rq_id = i; rq_arrival = !arrival; rq_model = model }))
  end
