(* The serving event loop: K timeline agents, a policy-ordered queue,
   optional admission control. Deterministic: every tie is broken by
   index or arrival order, and time only ever moves forward. *)

type params = {
  sp_accels : int;
  sp_policy : Serve_policy.t;
  sp_queue_cap : int option;
  sp_batch_max : int;
}

type request_stat = {
  rs_id : int;
  rs_model : string;
  rs_arrival : float;
  rs_accel : int;
  rs_batch : int;
  rs_start : float;
  rs_finish : float;
}

type rejection = { rj_id : int; rj_model : string; rj_arrival : float }

type accel_stat = {
  ac_id : int;
  ac_busy : float;
  ac_dispatches : int;
  ac_requests : int;
}

type outcome = {
  oc_completed : request_stat list;
  oc_rejected : rejection list;
  oc_accels : accel_stat list;
  oc_makespan : float;
  oc_dispatches : int;
}

let validate p =
  if p.sp_accels < 1 then
    Error (Printf.sprintf "need at least one accelerator instance (got %d)" p.sp_accels)
  else if p.sp_batch_max < 1 then
    Error (Printf.sprintf "batch size limit must be >= 1 (got %d)" p.sp_batch_max)
  else
    match p.sp_queue_cap with
    | Some cap when cap < 1 ->
      Error (Printf.sprintf "queue capacity must be >= 1 (got %d)" cap)
    | _ -> Ok ()

exception Bad_service of string

(* Policy selection over the queue (arrival order, all arrived by
   [now]). Returns the picked requests in arrival order.

   Batch sizing: a dispatch never coalesces more predicted work than
   an even share of the backlog's predicted total (sum of [predict]
   over the queue, divided by K). Under saturating load the share
   covers many requests and full [sp_batch_max] batches form; when the
   stream drains, the cap shrinks the lumps so the last dispatches
   spread across the accelerators instead of parking the whole tail on
   one — batching must never lose the makespan to load imbalance it
   created itself. *)
let pick p ~predict queue =
  match p.sp_policy with
  | Serve_policy.Fifo -> [ List.hd queue ]
  | Serve_policy.Sjf ->
    let key (r : Serve_request.t) = (predict r.Serve_request.rq_model, r.rq_id) in
    let best =
      List.fold_left
        (fun acc r -> if key r < key acc then r else acc)
        (List.hd queue) (List.tl queue)
    in
    [ best ]
  | Serve_policy.Batch ->
    (* the model with the most ready requests wins; ties go to the one
       whose earliest request arrived first (lowest id) *)
    let tally =
      List.fold_left
        (fun acc (r : Serve_request.t) ->
          let model = r.Serve_request.rq_model in
          let count, first_id =
            match List.assoc_opt model acc with
            | Some (c, f) -> (c + 1, f)
            | None -> (1, r.rq_id)
          in
          (model, (count, first_id)) :: List.remove_assoc model acc)
        [] queue
    in
    let chosen, _ =
      List.fold_left
        (fun (bm, (bc, bf)) (model, (c, f)) ->
          if c > bc || (c = bc && f < bf) then (model, (c, f)) else (bm, (bc, bf)))
        (List.hd tally) (List.tl tally)
    in
    let members =
      List.filter (fun (r : Serve_request.t) -> r.Serve_request.rq_model = chosen) queue
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    let queue_work =
      List.fold_left
        (fun acc (r : Serve_request.t) -> acc +. predict r.Serve_request.rq_model)
        0.0 queue
    in
    let per_request = predict chosen in
    let fair_count =
      if per_request > 0.0 then
        int_of_float (floor (queue_work /. float_of_int p.sp_accels /. per_request))
      else p.sp_batch_max
    in
    take (max 1 (min p.sp_batch_max fair_count)) members

let run ?telemetry ?service_at ?predict_at ~service ~predict p
    (requests : Serve_request.t list) =
  match validate p with
  | Error _ as e -> e
  | Ok () -> (
    (* Heterogeneity hooks: the accelerator index is known (earliest
       free) before the policy picks, so a per-instance oracle slots in
       at the dispatch site. Absent overrides fall back to the uniform
       oracles — the homogeneous path runs the exact same code. *)
    let service_for idx =
      match service_at with None -> service | Some f -> f ~accel:idx
    in
    let predict_for idx =
      match predict_at with None -> predict | Some f -> f ~accel:idx
    in
    (* Zero-cost when disabled: one match on an immediate per hook site,
       exactly the Trace/Metrics discipline. Recording never feeds back
       into scheduling decisions. *)
    let tel f = match telemetry with None -> () | Some tlm -> f tlm in
    let tl = Timeline.create () in
    let agents =
      Array.init p.sp_accels (fun i ->
          Timeline.add_agent tl ~name:(Printf.sprintf "accel%d" i))
    in
    let busy = Array.make p.sp_accels 0.0 in
    let dispatches = Array.make p.sp_accels 0 in
    let served = Array.make p.sp_accels 0 in
    let arrivals =
      ref
        (List.stable_sort
           (fun (a : Serve_request.t) (b : Serve_request.t) ->
             compare (a.Serve_request.rq_arrival, a.rq_id) (b.rq_arrival, b.rq_id))
           requests)
    in
    let queue = ref [] in
    let completed = ref [] in
    let rejected = ref [] in
    (* finish times of dispatched requests, for the in-flight count *)
    let finishes = ref [] in
    let in_flight_at t =
      List.length !queue + List.length (List.filter (fun f -> f > t) !finishes)
    in
    let admit_up_to now =
      let rec go () =
        match !arrivals with
        | (a : Serve_request.t) :: rest when a.Serve_request.rq_arrival <= now ->
          arrivals := rest;
          tel (fun tlm -> Serve_telemetry.on_arrival tlm ~at:a.rq_arrival);
          let admitted =
            match p.sp_queue_cap with
            | None -> true
            | Some cap -> in_flight_at a.rq_arrival < cap
          in
          if admitted then queue := !queue @ [ a ]
          else begin
            rejected :=
              { rj_id = a.rq_id; rj_model = a.rq_model; rj_arrival = a.rq_arrival }
              :: !rejected;
            tel (fun tlm -> Serve_telemetry.on_reject tlm ~at:a.rq_arrival)
          end;
          go ()
        | _ -> ()
      in
      go ()
    in
    let earliest_free () =
      let best = ref 0 in
      for i = 1 to p.sp_accels - 1 do
        if Timeline.busy_until agents.(i) < Timeline.busy_until agents.(!best) then
          best := i
      done;
      !best
    in
    let now = ref 0.0 in
    let running = ref true in
    match
      while !running do
        if !queue = [] then begin
          match !arrivals with
          | [] -> running := false
          | (a : Serve_request.t) :: _ ->
            now := Float.max !now a.Serve_request.rq_arrival;
            admit_up_to !now
        end
        else begin
          let idx = earliest_free () in
          (* the queue is in arrival order, so its head carries the
             earliest arrival: the accelerator can start then at the
             earliest. Requests arriving before that decision time are
             admitted first so the policy sees them. *)
          let t_d =
            Float.max
              (Timeline.busy_until agents.(idx))
              (List.hd !queue).Serve_request.rq_arrival
          in
          now := Float.max !now t_d;
          admit_up_to !now;
          let batch = pick p ~predict:(predict_for idx) !queue in
          queue :=
            List.filter
              (fun (r : Serve_request.t) ->
                not
                  (List.exists
                     (fun (m : Serve_request.t) -> m.Serve_request.rq_id = r.rq_id)
                     batch))
              !queue;
          let model = (List.hd batch).Serve_request.rq_model in
          let b = List.length batch in
          let dur = service_for idx model ~batch:b in
          if not (dur > 0.0) then
            raise
              (Bad_service
                 (Printf.sprintf "service cycles must be positive (%s, batch %d: %g)"
                    model b dur));
          let finish =
            Timeline.schedule tl agents.(idx) ~not_before:!now ~duration:dur
              ~label:(Printf.sprintf "%s x%d" model b)
              ()
          in
          let start = finish -. dur in
          busy.(idx) <- busy.(idx) +. dur;
          dispatches.(idx) <- dispatches.(idx) + 1;
          served.(idx) <- served.(idx) + b;
          List.iter
            (fun (r : Serve_request.t) ->
              finishes := finish :: !finishes;
              completed :=
                {
                  rs_id = r.Serve_request.rq_id;
                  rs_model = r.rq_model;
                  rs_arrival = r.rq_arrival;
                  rs_accel = idx;
                  rs_batch = b;
                  rs_start = start;
                  rs_finish = finish;
                }
                :: !completed)
            batch;
          tel (fun tlm ->
              (* queue depth after removal, in-flight including the
                 batch just scheduled (its finish is in the future) *)
              Serve_telemetry.on_dispatch tlm ~at:!now ~accel:idx ~start ~finish
                ~queue:(List.length !queue) ~in_flight:(in_flight_at !now);
              List.iter
                (fun (r : Serve_request.t) ->
                  Serve_telemetry.on_complete tlm ~finish
                    ~latency:(finish -. r.Serve_request.rq_arrival))
                batch)
        end
      done
    with
    | () ->
      let by_id f g = compare (f : int) g in
      Ok
        {
          oc_completed =
            List.sort (fun a b -> by_id a.rs_id b.rs_id) !completed;
          oc_rejected = List.sort (fun a b -> by_id a.rj_id b.rj_id) !rejected;
          oc_accels =
            List.init p.sp_accels (fun i ->
                {
                  ac_id = i;
                  ac_busy = busy.(i);
                  ac_dispatches = dispatches.(i);
                  ac_requests = served.(i);
                });
          oc_makespan = Timeline.makespan tl;
          oc_dispatches = Array.fold_left ( + ) 0 dispatches;
        }
    | exception Bad_service msg -> Error msg)
