(* Series names are part of the telemetry-v1 schema: renaming one is a
   breaking artifact change (see the .mli compatibility rule). *)
let s_arrivals = "arrivals"

let s_completions = "completions"

let s_rejections = "rejections"

let s_kernels = "kernels"

let s_queue = "queue_depth"

let s_in_flight = "in_flight"

let s_latency = "latency"

let busy_series accel = Printf.sprintf "accel%d_busy" accel

type t = { tl_ts : Timeseries.t; tl_accels : int }

let create ~window ~accels =
  if accels < 1 then Error (Printf.sprintf "telemetry needs accels >= 1 (got %d)" accels)
  else
    match Timeseries.create ~window with
    | Error e -> Error e
    | Ok ts -> Ok { tl_ts = ts; tl_accels = accels }

let window_width t = Timeseries.window_width t.tl_ts

let accels t = t.tl_accels

let timeseries t = t.tl_ts

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let on_arrival t ~at = Timeseries.record t.tl_ts ~agg:Sum ~series:s_arrivals ~t:at 1.0

let on_reject t ~at = Timeseries.record t.tl_ts ~agg:Sum ~series:s_rejections ~t:at 1.0

let on_complete t ~finish ~latency =
  Timeseries.record t.tl_ts ~agg:Sum ~series:s_completions ~t:finish 1.0;
  Timeseries.observe t.tl_ts ~series:s_latency ~t:finish latency

let on_dispatch t ~at ~accel ~start ~finish ~queue ~in_flight =
  Timeseries.record t.tl_ts ~agg:Sum ~series:s_kernels ~t:at 1.0;
  Timeseries.record t.tl_ts ~agg:Max ~series:s_queue ~t:at (float_of_int queue);
  Timeseries.record t.tl_ts ~agg:Max ~series:s_in_flight ~t:at (float_of_int in_flight);
  (* Spread the service interval over every window it overlaps, so a
     window's busy sum never exceeds its width. *)
  let width = Timeseries.window_width t.tl_ts in
  let series = busy_series accel in
  let start = Float.max 0.0 start in
  if finish > start then begin
    let w0 = int_of_float (start /. width) in
    let w1 = int_of_float (finish /. width) in
    for w = w0 to w1 do
      let lo = Float.max start (float_of_int w *. width) in
      let hi = Float.min finish (float_of_int (w + 1) *. width) in
      if hi > lo then
        Timeseries.record t.tl_ts ~agg:Sum ~series ~t:(float_of_int w *. width) (hi -. lo)
    done
  end

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

let busy_fraction t accel =
  let width = Timeseries.window_width t.tl_ts in
  Array.map
    (fun v -> Option.map (fun cycles -> cycles /. width) v)
    (Timeseries.values t.tl_ts (busy_series accel))

let totals t =
  List.map
    (fun name -> (name, Timeseries.total t.tl_ts name))
    [ s_arrivals; s_completions; s_rejections; s_kernels ]

let slo_data t (spec : Slo.spec) =
  match spec.so_objective with
  | Slo.Latency { limit; _ } -> (
    Timeseries.dist_counts_above t.tl_ts s_latency ~limit
    |> Array.map (fun (total, above) -> { Slo.wd_total = total; wd_bad = above }))
  | Slo.Availability _ ->
    let offered = Timeseries.counts t.tl_ts s_arrivals in
    let rejected = Timeseries.counts t.tl_ts s_rejections in
    Array.init (Array.length offered) (fun i ->
        { Slo.wd_total = offered.(i); wd_bad = rejected.(i) })

let evaluate ?fire ?resolve t specs =
  List.map (fun spec -> Slo.evaluate ?fire ?resolve spec (slo_data t spec)) specs

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let annotate_trace t trace =
  let n = Timeseries.n_windows t.tl_ts in
  if n > 0 then begin
    let track = Trace.serve_telemetry_track in
    let sample name i = function
      | None -> ()
      | Some v ->
        Trace.counter trace ~cat:"telemetry" ~track
          ~ts:(Timeseries.window_start t.tl_ts i) name v
    in
    let scalar label series =
      Array.iteri (fun i v -> sample label i v) (Timeseries.values t.tl_ts series)
    in
    let count_curve label series =
      Array.iteri
        (fun i c -> if c > 0 then sample label i (Some (float_of_int c)))
        (Timeseries.counts t.tl_ts series)
    in
    count_curve "serve.arrivals" s_arrivals;
    count_curve "serve.completions" s_completions;
    count_curve "serve.rejections" s_rejections;
    scalar "serve.queue_depth" s_queue;
    scalar "serve.in_flight" s_in_flight;
    Array.iteri
      (fun i v -> sample "serve.p99_latency" i v)
      (Timeseries.dist_rolling_percentile t.tl_ts s_latency ~p:99 ~windows:4);
    for a = 0 to t.tl_accels - 1 do
      Array.iteri
        (fun i v -> sample (Printf.sprintf "serve.accel%d_busy" a) i v)
        (busy_fraction t a)
    done
  end

let policy_to_json (name, t, evals) =
  Json.Obj
    [
      ("policy", Json.String name);
      ("window_cycles", Json.Float (window_width t));
      ("accels", Json.Int t.tl_accels);
      ("totals", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (totals t)));
      ("timeseries", Timeseries.to_json t.tl_ts);
      ("slos", Json.List (List.map Slo.to_json evals));
    ]

let to_json policies =
  Json.Obj
    [
      ("schema", Json.String "axi4mlir-telemetry-v1");
      ("policies", Json.List (List.map policy_to_json policies));
    ]

let write_file path policies =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:1 (to_json policies));
      output_char oc '\n')
